// Quickstart: build a small Internet, register with the traffic control
// service, deploy a distributed firewall for your server, and watch it
// drop unwanted traffic inside the network.
//
// Run:  build/examples/quickstart
#include <cstdio>

#include "attack/agent.h"
#include "core/tcsp.h"
#include "host/client.h"
#include "host/server.h"
#include "net/topo_gen.h"

using namespace adtc;

int main() {
  // 1. A world: 4 transit ASes, 24 stub ASes, deterministic seed.
  Network net(/*seed=*/1);
  TransitStubParams topo_params;
  topo_params.transit_count = 4;
  topo_params.stub_count = 24;
  const TopologyInfo topo = BuildTransitStub(net, topo_params);
  std::printf("world: %zu ASes, %zu links\n", net.node_count(),
              net.link_count());

  // 2. The management plane: number authority, TCSP, one NMS per AS.
  NumberAuthority authority;
  AllocateTopologyPrefixes(authority, net.node_count());
  Tcsp tcsp(net, authority, "quickstart-signing-key");
  std::vector<std::unique_ptr<IspNms>> nmses;
  for (NodeId node = 0; node < net.node_count(); ++node) {
    auto nms = std::make_unique<IspNms>("isp-" + std::to_string(node), net,
                                        &tcsp.validator());
    nms->ManageNode(node);
    tcsp.EnrollIsp(nms.get());
    nmses.push_back(std::move(nms));
  }

  // 3. Your server, its clients, and a nuisance UDP sender.
  const LinkParams access{MegabitsPerSecond(100), Milliseconds(2),
                          256 * 1024};
  const NodeId my_as = topo.stub_nodes[0];
  Server* server = SpawnHost<Server>(net, my_as, access);
  ClientConfig client_config;
  client_config.server = server->address();
  client_config.kind = RequestKind::kTcpHandshake;
  client_config.request_rate = 50.0;
  Client* client =
      SpawnHost<Client>(net, topo.stub_nodes[5], access, client_config);

  AttackDirective nuisance;
  nuisance.type = AttackType::kDirectFlood;
  nuisance.victim = server->address();
  nuisance.victim_port = 9999;  // junk port
  nuisance.flood_proto = Protocol::kUdp;
  nuisance.spoof = SpoofMode::kNone;
  nuisance.rate_pps = 500.0;
  nuisance.duration = Seconds(10);
  AgentHost* noise =
      SpawnHost<AgentHost>(net, topo.stub_nodes[9], access, nuisance);

  // 4. Register: the TCSP verifies with the number authority that "as<N>"
  //    really owns the prefix (Fig. 4).
  const auto cert = tcsp.Register(AsOrgName(my_as), {NodePrefix(my_as)});
  if (!cert.ok()) {
    std::printf("registration failed: %s\n",
                cert.status().ToString().c_str());
    return 1;
  }
  std::printf("registered '%s' as subscriber %u\n",
              cert.value().subject.c_str(), cert.value().subscriber);

  // 5. Deploy a distributed firewall: deny UDP to port 9999 on every
  //    adaptive device in the world (Fig. 5).
  ServiceRequest request;
  request.kind = ServiceKind::kDistributedFirewall;
  request.control_scope = {NodePrefix(my_as)};
  MatchRule deny;
  deny.proto = Protocol::kUdp;
  deny.dst_port_range = {{9999, 9999}};
  request.deny_rules = {deny};
  const DeploymentReport report = tcsp.DeployService(cert.value(), request);
  std::printf("firewall deployed on %zu devices across %zu ISPs\n",
              report.devices_configured, report.isps_configured);

  // 6. Run: legitimate handshakes flow, junk dies inside the network.
  client->Start();
  noise->StartFlood();
  net.Run(Seconds(10));

  const Metrics& metrics = net.metrics();
  std::printf("\nafter 10 simulated seconds:\n");
  std::printf("  client success ratio : %.1f%%\n",
              client->stats().SuccessRatio() * 100.0);
  std::printf("  client mean latency  : %.2f ms\n",
              client->stats().latency_ms.mean());
  std::printf("  junk packets filtered: %llu (of %llu sent)\n",
              static_cast<unsigned long long>(metrics.dropped(
                  TrafficClass::kAttack, DropReason::kFiltered)),
              static_cast<unsigned long long>(
                  metrics.sent(TrafficClass::kAttack)));
  std::printf("  junk reaching server : %llu\n",
              static_cast<unsigned long long>(
                  server->stats().requests_received -
                  server->stats().legit_requests_received));
  return 0;
}
