// Scenario driver: compose attack/defence experiments from the command
// line without writing code. Useful for exploring parameter spaces
// beyond the canned benchmarks.
//
//   build/examples/scenario_cli --topology=power-law --nodes=300
//       --attack=reflector --defence=tcs --adoption=0.5
//       --rate=200 --agents=30 --seed=7 --duration=10    (one line)
//
// Prints a metrics summary; exit code 0 on success.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "attack/scenario.h"
#include "core/tcsp.h"
#include "mitigation/ingress_filter.h"
#include "mitigation/pushback.h"
#include "net/topo_gen.h"

using namespace adtc;

namespace {

struct Options {
  std::string topology = "transit-stub";  // or power-law
  std::uint32_t nodes = 120;
  std::string attack = "reflector";  // direct | reflector | teardown | none
  std::string defence = "none";      // none | tcs | pushback | ingress
  double adoption = 1.0;
  double rate_pps = 200.0;
  std::uint32_t agents = 20;
  std::uint64_t seed = 1;
  std::int64_t duration_s = 10;
  std::string spoof = "random";  // none | random | subnet | victim
  bool help = false;
};

bool ParseFlag(const char* arg, const char* name, std::string& out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    out = arg + len + 1;
    return true;
  }
  return false;
}

Options ParseArgs(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--topology", value)) {
      options.topology = value;
    } else if (ParseFlag(argv[i], "--nodes", value)) {
      options.nodes = static_cast<std::uint32_t>(std::stoul(value));
    } else if (ParseFlag(argv[i], "--attack", value)) {
      options.attack = value;
    } else if (ParseFlag(argv[i], "--defence", value)) {
      options.defence = value;
    } else if (ParseFlag(argv[i], "--adoption", value)) {
      options.adoption = std::stod(value);
    } else if (ParseFlag(argv[i], "--rate", value)) {
      options.rate_pps = std::stod(value);
    } else if (ParseFlag(argv[i], "--agents", value)) {
      options.agents = static_cast<std::uint32_t>(std::stoul(value));
    } else if (ParseFlag(argv[i], "--seed", value)) {
      options.seed = std::stoull(value);
    } else if (ParseFlag(argv[i], "--duration", value)) {
      options.duration_s = std::stoll(value);
    } else if (ParseFlag(argv[i], "--spoof", value)) {
      options.spoof = value;
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      options.help = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s (try --help)\n", argv[i]);
      options.help = true;
    }
  }
  return options;
}

void PrintUsage() {
  std::puts(
      "scenario_cli — compose an ADTC experiment from flags\n"
      "  --topology=transit-stub|power-law   (default transit-stub)\n"
      "  --nodes=N                           ASes (default 120)\n"
      "  --attack=direct|reflector|none      (default reflector)\n"
      "  --spoof=none|random|subnet|victim   source spoofing (default random)\n"
      "  --defence=none|tcs|pushback|ingress (default none)\n"
      "  --adoption=F                        deploying fraction 0..1\n"
      "  --rate=PPS                          per-agent attack rate\n"
      "  --agents=N                          total attack agents\n"
      "  --seed=S --duration=SECONDS");
}

SpoofMode ParseSpoof(const std::string& name) {
  if (name == "none") return SpoofMode::kNone;
  if (name == "subnet") return SpoofMode::kSameSubnet;
  if (name == "victim") return SpoofMode::kVictim;
  return SpoofMode::kRandom;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = ParseArgs(argc, argv);
  if (options.help) {
    PrintUsage();
    return 2;
  }

  Network net(options.seed);
  TopologyInfo topo;
  if (options.topology == "power-law") {
    PowerLawParams params;
    params.node_count = options.nodes;
    topo = BuildPowerLaw(net, params);
  } else {
    TransitStubParams params;
    params.transit_count = std::max<std::uint32_t>(4, options.nodes / 16);
    params.stub_count = options.nodes - params.transit_count;
    topo = BuildTransitStub(net, params);
  }

  NumberAuthority authority;
  AllocateTopologyPrefixes(authority, net.node_count());
  Tcsp tcsp(net, authority, "cli-key");
  std::vector<std::unique_ptr<IspNms>> nmses;
  for (NodeId node = 0; node < net.node_count(); ++node) {
    auto nms = std::make_unique<IspNms>("isp-" + std::to_string(node), net,
                                        &tcsp.validator());
    tcsp.EnrollIsp(nms.get());
    nmses.push_back(std::move(nms));
  }

  ScenarioParams params;
  params.master_count = std::max<std::uint32_t>(1, options.agents / 10);
  params.agents_per_master =
      std::max<std::uint32_t>(1, options.agents / params.master_count);
  params.reflector_count = 15;
  params.client_count = 10;
  params.directive.rate_pps = options.rate_pps;
  params.directive.duration = Seconds(options.duration_s);
  params.directive.spoof = ParseSpoof(options.spoof);
  if (options.attack == "direct") {
    params.directive.type = AttackType::kDirectFlood;
  } else if (options.attack == "reflector") {
    params.directive.type = AttackType::kReflector;
    params.directive.reflector_proto = Protocol::kTcp;
  }
  Scenario scenario = BuildAttackScenario(net, topo, params);

  // Defence.
  std::unique_ptr<PushbackSystem> pushback;
  std::vector<std::unique_ptr<IngressFilter>> filters;
  if (options.defence == "tcs") {
    for (NodeId node = 0; node < net.node_count(); ++node) {
      if (net.rng().NextBool(options.adoption)) {
        nmses[node]->ManageNode(node);
      }
    }
    nmses[scenario.victim_node]->ManageNode(scenario.victim_node);
    const Prefix scope = NodePrefix(scenario.victim_node);
    const auto cert =
        tcsp.Register(AsOrgName(scenario.victim_node), {scope});
    if (!cert.ok()) {
      std::fprintf(stderr, "registration failed: %s\n",
                   cert.status().ToString().c_str());
      return 1;
    }
    ServiceRequest request;
    request.kind = ServiceKind::kRemoteIngressFiltering;
    request.control_scope = {scope};
    const auto report = tcsp.DeployService(cert.value(), request);
    if (!report.status.ok()) {
      std::fprintf(stderr, "deployment failed: %s\n",
                   report.status.ToString().c_str());
      return 1;
    }
    std::printf("tcs deployed on %zu devices\n", report.devices_configured);
  } else if (options.defence == "pushback") {
    pushback = std::make_unique<PushbackSystem>(net);
    pushback->EnableFraction(options.adoption);
    pushback->EnableOn(scenario.victim_node);
    pushback->Start();
  } else if (options.defence == "ingress") {
    const auto deploying =
        SampleAses(net.node_count(), options.adoption, net.rng());
    filters = DeployIngressFiltering(net, topo, deploying);
  }

  if (options.attack != "none") scenario.attacker->Launch();
  net.Run(Seconds(options.duration_s + 2));

  const Metrics& metrics = net.metrics();
  std::printf("\n== scenario result (seed %llu) ==\n",
              static_cast<unsigned long long>(options.seed));
  std::printf("topology          : %s, %zu ASes, %zu links\n",
              options.topology.c_str(), net.node_count(), net.link_count());
  std::printf("attack            : %s, %zu agents, %.0f pps each, spoof=%s\n",
              options.attack.c_str(), scenario.agents.size(),
              options.rate_pps, options.spoof.c_str());
  std::printf("defence           : %s (adoption %.0f%%)\n",
              options.defence.c_str(), options.adoption * 100);
  std::printf("client goodput    : %.1f%% (latency %.1f ms)\n",
              scenario.ClientSuccessRatio() * 100,
              scenario.ClientMeanLatencyMs());
  std::printf("attack sent       : %llu pkts\n",
              static_cast<unsigned long long>(
                  metrics.sent(TrafficClass::kAttack)));
  std::printf("attack filtered   : %llu pkts\n",
              static_cast<unsigned long long>(metrics.dropped(
                  TrafficClass::kAttack, DropReason::kFiltered)));
  std::printf("reflected at host : %llu pkts\n",
              static_cast<unsigned long long>(
                  metrics.delivered(TrafficClass::kReflected)));
  std::printf("attack byte-hops  : %.1f MB-hop\n",
              static_cast<double>(metrics.attack_byte_hops) / 1e6);
  if (metrics.attack_drop_hops.count() > 0) {
    std::printf("mean drop distance: %.2f hops\n",
                metrics.attack_drop_hops.mean());
  }
  return 0;
}
