// Ownership granularity demo: a web shop hosted inside an ISP's address
// space. The ISP suballocates a /32 to the shop at the number authority
// (Sec. 5.1's ownership databases), the shop registers that /32 with the
// TCSP and deploys a protection perimeter only in its network
// neighbourhood (radius-scoped placement, Sec. 5.1 "scope the deployment
// according to different criteria") — all without touching the ISP's own
// traffic or any co-hosted customer.
//
// Run:  build/examples/hosting_customer
#include <cstdio>

#include "attack/agent.h"
#include "core/tcsp.h"
#include "host/client.h"
#include "host/server.h"
#include "net/topo_gen.h"

using namespace adtc;

int main() {
  Network net(37);
  TransitStubParams topo_params;
  topo_params.transit_count = 4;
  topo_params.stub_count = 28;
  const TopologyInfo topo = BuildTransitStub(net, topo_params);

  NumberAuthority authority;
  AllocateTopologyPrefixes(authority, net.node_count());
  Tcsp tcsp(net, authority, "hosting-key");
  std::vector<std::unique_ptr<IspNms>> nmses;
  for (NodeId node = 0; node < net.node_count(); ++node) {
    auto nms = std::make_unique<IspNms>("isp-" + std::to_string(node), net,
                                        &tcsp.validator());
    nms->ManageNode(node);
    tcsp.EnrollIsp(nms.get());
    nmses.push_back(std::move(nms));
  }

  const LinkParams access{MegabitsPerSecond(100), Milliseconds(2),
                          256 * 1024};
  const NodeId hosting_as = topo.stub_nodes[0];

  // Two customers of the same hosting ISP, co-located in one /20.
  Server* shop = SpawnHost<Server>(net, hosting_as, access);
  Server* neighbour = SpawnHost<Server>(net, hosting_as, access);
  std::printf("hosting ISP %s: shop at %s, co-hosted neighbour at %s\n",
              AsOrgName(hosting_as).c_str(),
              shop->address().ToString().c_str(),
              neighbour->address().ToString().c_str());

  // 1. The hosting ISP delegates the shop's /32 at the number authority.
  const Prefix shop_prefix = Prefix::Host(shop->address());
  const Status sub = authority.Suballocate(shop_prefix, "web-shop",
                                           AsOrgName(hosting_as));
  std::printf("suballocation %s -> web-shop: %s\n",
              shop_prefix.ToString().c_str(), sub.ToString().c_str());
  if (!sub.ok()) return 1;

  // 2. The shop registers its /32 — the TCSP verifies against the
  //    authority, which now answers "web-shop" for that address.
  const auto cert = tcsp.Register("web-shop", {shop_prefix});
  if (!cert.ok()) {
    std::printf("registration failed: %s\n",
                cert.status().ToString().c_str());
    return 1;
  }
  // Claiming the whole hosting /20 would fail:
  const auto greedy = tcsp.Register("web-shop", {NodePrefix(hosting_as)});
  std::printf("greedy claim of the ISP's /20: %s\n",
              greedy.status().ToString().c_str());

  // 3. Deploy a firewall only within 2 hops of home (a local perimeter).
  ServiceRequest request;
  request.kind = ServiceKind::kDistributedFirewall;
  request.placement = PlacementPolicy::kWithinRadius;
  request.placement_radius = 2;
  request.control_scope = {shop_prefix};
  MatchRule deny_udp_junk;
  deny_udp_junk.proto = Protocol::kUdp;
  deny_udp_junk.dst_port_range = {{9999, 9999}};
  request.deny_rules = {deny_udp_junk};
  const DeploymentReport report = tcsp.DeployService(cert.value(), request);
  std::printf("perimeter deployed on %zu devices (radius 2)\n",
              report.devices_configured);

  // 4. Flood the shop's junk port; serve the neighbour normally.
  AttackDirective directive;
  directive.type = AttackType::kDirectFlood;
  directive.victim = shop->address();
  directive.victim_port = 9999;
  directive.flood_proto = Protocol::kUdp;
  directive.spoof = SpoofMode::kNone;
  directive.rate_pps = 400.0;
  directive.duration = Seconds(6);
  SpawnHost<AgentHost>(net, topo.stub_nodes[9], access, directive)
      ->StartFlood();

  ClientConfig shop_client_config;
  shop_client_config.server = shop->address();
  shop_client_config.kind = RequestKind::kTcpHandshake;
  shop_client_config.request_rate = 30.0;
  Client* shop_client = SpawnHost<Client>(net, topo.stub_nodes[5], access,
                                          shop_client_config);
  shop_client->Start();

  ClientConfig neighbour_config;
  neighbour_config.server = neighbour->address();
  neighbour_config.kind = RequestKind::kTcpHandshake;
  neighbour_config.request_rate = 30.0;
  Client* neighbour_client = SpawnHost<Client>(net, topo.stub_nodes[6],
                                               access, neighbour_config);
  neighbour_client->Start();

  net.Run(Seconds(8));

  const Metrics& metrics = net.metrics();
  std::printf("\nafter 8 s under junk flood:\n");
  std::printf("  shop clients      : %.1f%% ok\n",
              shop_client->stats().SuccessRatio() * 100);
  std::printf("  neighbour clients : %.1f%% ok (untouched by the shop's "
              "rules)\n",
              neighbour_client->stats().SuccessRatio() * 100);
  std::printf("  junk filtered     : %llu of %llu\n",
              static_cast<unsigned long long>(metrics.dropped(
                  TrafficClass::kAttack, DropReason::kFiltered)),
              static_cast<unsigned long long>(
                  metrics.sent(TrafficClass::kAttack)));
  return 0;
}
