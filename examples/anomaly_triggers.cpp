// Closed-loop anomaly handling demo: from in-device triggers to a full
// detect -> decide -> deploy -> withdraw cycle with no human in the loop.
//
//  * A DetectionController registers as the victim's delegate, deploys a
//    monitoring (statistics) service over its prefix and feeds the NMS
//    counter samples into an SPRT sequential detector.
//  * When a flood pushes the sampled rate past the attack hypothesis,
//    the controller swaps the monitoring deployment for a rate-limiting
//    firewall through the ordinary TCSP path — certificates, admission
//    analysis and plan proof included.
//  * When the flood ends and the offered load stays clear for the
//    configured streak (after the minimum hold), the mitigation is
//    withdrawn and monitoring resumes.
//
// Run:  build/examples/anomaly_triggers
#include <cstdio>

#include "attack/agent.h"
#include "core/tcsp.h"
#include "detect/controller.h"
#include "host/client.h"
#include "host/server.h"
#include "net/topo_gen.h"

using namespace adtc;

int main() {
  Network net(23);
  TransitStubParams topo_params;
  topo_params.transit_count = 4;
  topo_params.stub_count = 28;
  const TopologyInfo topo = BuildTransitStub(net, topo_params);

  NumberAuthority authority;
  AllocateTopologyPrefixes(authority, net.node_count());
  Tcsp tcsp(net, authority, "trigger-key");
  std::vector<std::unique_ptr<IspNms>> nmses;
  for (NodeId node = 0; node < net.node_count(); ++node) {
    auto nms = std::make_unique<IspNms>("isp-" + std::to_string(node), net,
                                        &tcsp.validator());
    nms->ManageNode(node);
    tcsp.EnrollIsp(nms.get());
    nmses.push_back(std::move(nms));
  }

  const LinkParams access{MegabitsPerSecond(100), Milliseconds(2),
                          256 * 1024};
  const NodeId my_as = topo.stub_nodes[0];
  ServerConfig server_config;
  server_config.cpu_capacity_rps = 2000.0;
  Server* server = SpawnHost<Server>(net, my_as, access, server_config);

  ClientConfig client_config;
  client_config.server = server->address();
  client_config.kind = RequestKind::kUdpRequest;
  client_config.request_rate = 40.0;
  Client* client =
      SpawnHost<Client>(net, topo.stub_nodes[6], access, client_config);

  // The flood the loop must catch: 4 s of 2500 pps UDP.
  AttackDirective directive;
  directive.type = AttackType::kDirectFlood;
  directive.victim = server->address();
  directive.flood_proto = Protocol::kUdp;
  directive.spoof = SpoofMode::kNone;
  directive.rate_pps = 2500.0;
  directive.duration = Seconds(4);
  AgentHost* agent =
      SpawnHost<AgentHost>(net, topo.stub_nodes[11], access, directive);

  // Arm the closed loop as the victim's designated party.
  const auto cert = tcsp.Register(AsOrgName(my_as), {NodePrefix(my_as)});
  if (!cert.ok()) return 1;
  detect::DetectionConfig detection;
  detection.sample_interval = Milliseconds(100);
  detection.sprt.lambda0_pps = 50.0;
  detection.sprt.lambda1_pps = 4000.0;
  detection.min_hold = Seconds(1);
  detection.clear_streak = 5;
  detection.action = detect::Action::kRateLimit;
  detection.rate_limit_pps = 100.0;
  detect::DetectionController controller(net, tcsp, detection);
  detect::MonitorOptions options;
  options.name = "victim-as";
  options.attack_probe = [agent] { return agent->flooding(); };
  const auto subscriber = controller.Monitor(cert.value(), options);
  if (!subscriber.ok()) {
    std::printf("monitor failed: %s\n",
                subscriber.status().message().c_str());
    return 1;
  }
  controller.Start();

  std::printf("phase 1: normal load (2 s), loop armed...\n");
  client->Start();
  net.Run(Seconds(2));
  std::printf("  onsets so far: %llu (benign traffic must not trigger)\n",
              static_cast<unsigned long long>(controller.stats().onsets));

  std::printf("phase 2: flood begins (4 s)...\n");
  agent->StartFlood();
  net.Run(Seconds(4));
  std::printf("  phase: %s\n",
              std::string(detect::PhaseName(controller.phase(
                  subscriber.value()))).c_str());

  std::printf("phase 3: flood over, waiting for withdrawal (3 s)...\n");
  net.Run(Seconds(3));

  const auto& stats = controller.stats();
  std::printf("\nclosed-loop summary\n");
  std::printf("  attack onsets detected  : %llu\n",
              static_cast<unsigned long long>(stats.onsets));
  std::printf("  auto-withdrawals        : %llu\n",
              static_cast<unsigned long long>(stats.withdrawals));
  std::printf("  false positives         : %llu\n",
              static_cast<unsigned long long>(stats.false_positives));
  if (!controller.decision_latencies_ms().empty()) {
    std::printf("  detection latency       : %.0f ms\n",
                controller.decision_latencies_ms().front());
  }
  std::printf("  final phase             : %s\n",
              std::string(detect::PhaseName(controller.phase(
                  subscriber.value()))).c_str());

  std::size_t detected = 0, deploys = 0, cleared = 0, withdrawn = 0;
  for (auto& nms : nmses) {
    detected += nms->events().CountOf(EventKind::kAttackDetected);
    deploys += nms->events().CountOf(EventKind::kAutoDeploy);
    cleared += nms->events().CountOf(EventKind::kAttackCleared);
    withdrawn += nms->events().CountOf(EventKind::kAutoWithdraw);
  }
  std::printf("\nmanagement-plane event fan-out (all %zu NMSes)\n",
              nmses.size());
  std::printf("  attack_detected=%zu auto_deploy=%zu attack_cleared=%zu "
              "auto_withdraw=%zu\n",
              detected, deploys, cleared, withdrawn);

  std::printf("\ndata-plane effect\n");
  std::printf("  flood delivered         : %llu of %llu sent\n",
              static_cast<unsigned long long>(
                  net.metrics().delivered(TrafficClass::kAttack)),
              static_cast<unsigned long long>(
                  net.metrics().sent(TrafficClass::kAttack)));
  std::printf("  client success          : %.1f%%\n",
              client->stats().SuccessRatio() * 100.0);
  return 0;
}
