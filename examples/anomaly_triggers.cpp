// Emerging applications demo (Sec. 4.4): distributed triggers that react
// to traffic anomalies automatically, plus in-network statistics for
// "network debugging and optimisation".
//
//  * An AnomalyReaction service arms a trigger on the subscriber's
//    inbound traffic; when a flood pushes the observed rate above the
//    threshold, a pre-staged rate limit activates — with no human in the
//    loop ("triggers can automatically activate predefined additional
//    configurations").
//  * A Statistics service collects per-port counters and sampled logs at
//    an in-network vantage point.
//
// Run:  build/examples/anomaly_triggers
#include <cstdio>

#include "attack/agent.h"
#include "core/tcsp.h"
#include "host/client.h"
#include "host/server.h"
#include "net/topo_gen.h"

using namespace adtc;

int main() {
  Network net(23);
  TransitStubParams topo_params;
  topo_params.transit_count = 4;
  topo_params.stub_count = 28;
  const TopologyInfo topo = BuildTransitStub(net, topo_params);

  NumberAuthority authority;
  AllocateTopologyPrefixes(authority, net.node_count());
  Tcsp tcsp(net, authority, "trigger-key");
  std::vector<std::unique_ptr<IspNms>> nmses;
  for (NodeId node = 0; node < net.node_count(); ++node) {
    auto nms = std::make_unique<IspNms>("isp-" + std::to_string(node), net,
                                        &tcsp.validator());
    nms->ManageNode(node);
    tcsp.EnrollIsp(nms.get());
    nmses.push_back(std::move(nms));
  }

  const LinkParams access{MegabitsPerSecond(100), Milliseconds(2),
                          256 * 1024};
  const NodeId my_as = topo.stub_nodes[0];
  ServerConfig server_config;
  server_config.cpu_capacity_rps = 2000.0;
  Server* server = SpawnHost<Server>(net, my_as, access, server_config);

  ClientConfig client_config;
  client_config.server = server->address();
  client_config.kind = RequestKind::kUdpRequest;
  client_config.request_rate = 40.0;
  Client* client =
      SpawnHost<Client>(net, topo.stub_nodes[6], access, client_config);

  // Anomaly reaction: trigger at 500 pps inbound, react with 100 pps cap.
  const auto cert = tcsp.Register(AsOrgName(my_as), {NodePrefix(my_as)});
  if (!cert.ok()) return 1;
  ServiceRequest reaction;
  reaction.kind = ServiceKind::kAnomalyReaction;
  reaction.placement = PlacementPolicy::kStubNodesOnly;
  reaction.control_scope = {NodePrefix(my_as)};
  reaction.trigger.rate_threshold_pps = 500.0;
  reaction.trigger.window = Milliseconds(250);
  reaction.reaction_rate_limit_pps = 100.0;
  if (!tcsp.DeployService(cert.value(), reaction).status.ok()) return 1;

  // Statistics on a second subscriber (a different AS watching its own
  // traffic mix).
  const NodeId other_as = topo.stub_nodes[3];
  const auto stats_cert =
      tcsp.Register(AsOrgName(other_as), {NodePrefix(other_as)});
  if (!stats_cert.ok()) return 1;
  ServiceRequest stats_request;
  stats_request.kind = ServiceKind::kStatistics;
  stats_request.control_scope = {NodePrefix(other_as)};
  stats_request.log_sample_one_in = 8;
  if (!tcsp.DeployService(stats_cert.value(), stats_request).status.ok()) {
    return 1;
  }
  Server* observed = SpawnHost<Server>(net, other_as, access);
  ClientConfig observed_client_config;
  observed_client_config.server = observed->address();
  observed_client_config.kind = RequestKind::kUdpRequest;
  observed_client_config.request_rate = 30.0;
  Client* observed_client = SpawnHost<Client>(net, topo.stub_nodes[9],
                                              access,
                                              observed_client_config);

  // The flood that trips the trigger.
  AttackDirective directive;
  directive.type = AttackType::kDirectFlood;
  directive.victim = server->address();
  directive.flood_proto = Protocol::kUdp;
  directive.spoof = SpoofMode::kNone;
  directive.rate_pps = 1500.0;
  directive.duration = Seconds(4);
  AgentHost* agent =
      SpawnHost<AgentHost>(net, topo.stub_nodes[11], access, directive);

  std::printf("phase 1: normal load (2 s)...\n");
  client->Start();
  observed_client->Start();
  net.Run(Seconds(2));

  std::printf("phase 2: flood begins (4 s)...\n");
  agent->StartFlood();
  net.Run(Seconds(5));

  // Inspect the trigger events collected by the victim AS's NMS.
  std::size_t triggers_fired = 0, reactions = 0;
  for (auto& nms : nmses) {
    triggers_fired += nms->events().CountOf(EventKind::kTriggerFired);
    reactions += nms->events().CountOf(EventKind::kRuleActivated);
  }
  std::printf("\ntrigger events fired    : %zu\n", triggers_fired);
  std::printf("auto-reactions activated: %zu\n", reactions);
  std::printf("flood packets delivered : %llu of %llu sent (rate limited)\n",
              static_cast<unsigned long long>(
                  net.metrics().delivered(TrafficClass::kAttack)),
              static_cast<unsigned long long>(
                  net.metrics().sent(TrafficClass::kAttack)));
  std::printf("client success          : %.1f%%\n",
              client->stats().SuccessRatio() * 100.0);

  // Read the statistics vantage point of the second subscriber.
  for (auto& nms : nmses) {
    AdaptiveDevice* device = nms->device(other_as);
    if (device == nullptr) continue;
    ModuleGraph* graph = device->StageGraph(
        stats_cert.value().subscriber, ProcessingStage::kDestinationOwner);
    if (graph == nullptr) continue;
    if (auto* stats = graph->FindModule<StatisticsModule>()) {
      std::printf("\nin-network statistics at as%u:\n", other_as);
      std::printf("  packets observed : %llu (%.0f B mean size)\n",
                  static_cast<unsigned long long>(stats->packets()),
                  stats->packet_size().mean());
      for (const auto& [port, count] : stats->by_dst_port()) {
        std::printf("  dst port %5u    : %llu packets\n", port,
                    static_cast<unsigned long long>(count));
      }
    }
    if (auto* logger = graph->FindModule<LoggerModule>()) {
      std::printf("  sampled log tail (1-in-%u sampling):\n%s",
                  stats_request.log_sample_one_in,
                  logger->trace().Dump(5).c_str());
    }
  }
  return 0;
}
