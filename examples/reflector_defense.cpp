// The paper's headline scenario (Secs. 2.2 + 4.3) as a narrative demo:
//
//   Phase 1 — a DDoS reflector attack floods a web site with SYN-ACKs
//             from innocent servers; clients time out.
//   Phase 2 — the site owner deploys worldwide remote ingress filtering
//             through the traffic control service; the spoofed requests
//             now die at the attackers' own uplinks and service recovers.
//
// Run:  build/examples/reflector_defense
#include <cstdio>

#include "attack/scenario.h"
#include "core/tcsp.h"
#include "net/topo_gen.h"

using namespace adtc;

namespace {

struct World {
  Network net;
  TopologyInfo topo;
  NumberAuthority authority;
  Tcsp tcsp;
  std::vector<std::unique_ptr<IspNms>> nmses;
  Scenario scenario;

  explicit World(std::uint64_t seed)
      : net(seed), tcsp(net, authority, "demo-key") {
    TransitStubParams params;
    params.transit_count = 4;
    params.stub_count = 40;
    topo = BuildTransitStub(net, params);
    AllocateTopologyPrefixes(authority, net.node_count());
    for (NodeId node = 0; node < net.node_count(); ++node) {
      auto nms = std::make_unique<IspNms>("isp-" + std::to_string(node),
                                          net, &tcsp.validator());
      nms->ManageNode(node);
      tcsp.EnrollIsp(nms.get());
      nmses.push_back(std::move(nms));
    }

    ScenarioParams sp;
    sp.master_count = 3;
    sp.agents_per_master = 10;
    sp.reflector_count = 15;
    sp.client_count = 8;
    sp.client_request_rate = 20.0;
    sp.directive.type = AttackType::kReflector;
    sp.directive.reflector_proto = Protocol::kTcp;
    sp.directive.rate_pps = 200.0;
    sp.directive.duration = Seconds(8);
    scenario = BuildAttackScenario(net, topo, sp);
  }

  void Report(const char* phase) {
    const Metrics& metrics = net.metrics();
    std::printf("%-28s clients %5.1f%% ok | reflected delivered %8llu | "
                "attack filtered %8llu\n",
                phase, scenario.ClientSuccessRatio() * 100.0,
                static_cast<unsigned long long>(
                    metrics.delivered(TrafficClass::kReflected)),
                static_cast<unsigned long long>(metrics.dropped(
                    TrafficClass::kAttack, DropReason::kFiltered)));
  }
};

}  // namespace

int main() {
  std::printf("== Phase 1: reflector attack, no defence ==\n");
  {
    World world(7);
    world.scenario.attacker->Launch();
    world.net.Run(Seconds(10));
    world.Report("undefended:");
    std::printf(
        "   (victim received %llu reflected packets from %zu innocent "
        "servers)\n",
        static_cast<unsigned long long>(
            world.net.metrics().delivered(TrafficClass::kReflected)),
        world.scenario.reflectors.size());
  }

  std::printf("\n== Phase 2: same attack, TCS ingress filtering ==\n");
  {
    World world(7);
    // The web-site owner registers and deploys the defence (Figs. 4-5).
    const Prefix scope = NodePrefix(world.scenario.victim_node);
    const auto cert =
        world.tcsp.Register(AsOrgName(world.scenario.victim_node), {scope});
    if (!cert.ok()) {
      std::printf("registration failed: %s\n",
                  cert.status().ToString().c_str());
      return 1;
    }
    ServiceRequest request;
    request.kind = ServiceKind::kRemoteIngressFiltering;
    request.control_scope = {scope};
    bool deployed = false;
    world.tcsp.DeployService(cert.value(), request,
                             CompletionPolicy::kLatencyModelled,
                             [&](const DeploymentReport& report) {
                               deployed = report.status.ok();
                               std::printf(
                                   "   deployment completed in %.0f ms "
                                   "across %zu ISPs / %zu devices\n",
                                   ToMilliseconds(report.Latency()),
                                   report.isps_configured,
                                   report.devices_configured);
                             });
    world.net.Run(Seconds(2));  // control-plane latency elapses
    if (!deployed) {
      std::printf("deployment did not complete\n");
      return 1;
    }
    world.scenario.attacker->Launch();
    world.net.Run(Seconds(10));
    world.Report("with TCS defence:");
    std::printf(
        "   (spoofed packets dropped after %.2f hops on average — right "
        "at the attackers' uplinks)\n",
        world.net.metrics().attack_drop_hops.mean());
  }
  return 0;
}
