// Forensics demo (Sec. 4.4 "Traceback"): the owner of an address range
// deploys the TCS traceback service; when spoofed traffic arrives it
// queries the in-network digest stores and reconstructs where the packets
// actually entered the Internet — despite the forged source address.
//
// Run:  build/examples/traceback_forensics
#include <cstdio>

#include "attack/agent.h"
#include "core/tcsp.h"
#include "core/traceback_service.h"
#include "host/host.h"
#include "net/topo_gen.h"

using namespace adtc;

namespace {

/// Keeps received packets so we can query them afterwards.
class EvidenceHost : public Host {
 public:
  void HandlePacket(Packet&& packet) override {
    evidence.push_back(std::move(packet));
  }
  std::vector<Packet> evidence;
};

}  // namespace

int main() {
  Network net(11);
  TransitStubParams topo_params;
  topo_params.transit_count = 4;
  topo_params.stub_count = 32;
  const TopologyInfo topo = BuildTransitStub(net, topo_params);

  NumberAuthority authority;
  AllocateTopologyPrefixes(authority, net.node_count());
  Tcsp tcsp(net, authority, "forensics-key");
  std::vector<std::unique_ptr<IspNms>> nmses;
  std::vector<IspNms*> isps;
  for (NodeId node = 0; node < net.node_count(); ++node) {
    auto nms = std::make_unique<IspNms>("isp-" + std::to_string(node), net,
                                        &tcsp.validator());
    nms->ManageNode(node);
    tcsp.EnrollIsp(nms.get());
    isps.push_back(nms.get());
    nmses.push_back(std::move(nms));
  }

  const LinkParams access{MegabitsPerSecond(100), Milliseconds(2),
                          256 * 1024};
  const NodeId victim_as = topo.stub_nodes[0];
  EvidenceHost* victim = SpawnHost<EvidenceHost>(net, victim_as, access);

  // The owner deploys the traceback service for its prefix.
  const auto cert = tcsp.Register(AsOrgName(victim_as),
                                  {NodePrefix(victim_as)});
  if (!cert.ok()) return 1;
  ServiceRequest request;
  request.kind = ServiceKind::kTraceback;
  request.control_scope = {NodePrefix(victim_as)};
  request.traceback.window = Seconds(2);
  request.traceback.window_count = 32;
  const DeploymentReport report = tcsp.DeployService(cert.value(), request);
  std::printf("traceback service on %zu devices\n",
              report.devices_configured);

  // Attackers in three different stub ASes fire spoofed packets.
  std::vector<AgentHost*> agents;
  for (NodeId agent_as : {topo.stub_nodes[7], topo.stub_nodes[13],
                          topo.stub_nodes[21]}) {
    AttackDirective directive;
    directive.type = AttackType::kDirectFlood;
    directive.victim = victim->address();
    directive.flood_proto = Protocol::kUdp;
    directive.spoof = SpoofMode::kRandom;  // forged sources
    directive.rate_pps = 50.0;
    directive.duration = Seconds(4);
    agents.push_back(SpawnHost<AgentHost>(net, agent_as, access, directive));
  }
  for (auto* agent : agents) agent->StartFlood();
  net.Run(Seconds(6));

  std::printf("victim collected %zu suspicious packets\n",
              victim->evidence.size());

  // Query the service for a handful of packets.
  TcsTracebackService traceback(net, isps, cert.value().subscriber);
  std::printf("digest stores: %zu vantage points, %.1f MB total\n",
              traceback.store_count(),
              static_cast<double>(traceback.TotalMemoryBytes()) / 1e6);

  std::size_t correct = 0, queried = 0;
  for (std::size_t i = 0; i < victim->evidence.size(); i += 37) {
    const Packet& packet = victim->evidence[i];
    const TraceResult result = traceback.Trace(packet, victim_as);
    const NodeId true_entry = net.host_node(packet.true_origin);
    bool found = false;
    for (NodeId origin : result.origin_nodes) found |= origin == true_entry;
    correct += found ? 1 : 0;
    queried++;
    if (queried <= 5) {
      std::printf(
          "  packet claims src=%s  -> trace entry AS(es):",
          packet.src.ToString().c_str());
      for (NodeId origin : result.origin_nodes) {
        std::printf(" as%u%s", origin,
                    origin == true_entry ? "(TRUE ORIGIN)" : "");
      }
      std::printf("\n");
    }
  }
  std::printf("traced %zu packets, true entry AS identified in %zu (%.0f%%)\n",
              queried, correct,
              queried ? 100.0 * static_cast<double>(correct) /
                            static_cast<double>(queried)
                      : 0.0);
  return 0;
}
