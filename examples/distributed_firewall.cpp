// Distributed-firewall demo (Secs. 4.2-4.3): header-field deny rules and
// protection against protocol-misuse attacks (spoofed TCP RST / ICMP
// unreachable session teardown), deployed worldwide by the traffic owner.
//
// Run:  build/examples/distributed_firewall
#include <cstdio>

#include "attack/agent.h"
#include "core/tcsp.h"
#include "host/server.h"
#include "host/session.h"
#include "net/topo_gen.h"

using namespace adtc;

namespace {

struct World {
  Network net;
  TopologyInfo topo;
  NumberAuthority authority;
  Tcsp tcsp;
  std::vector<std::unique_ptr<IspNms>> nmses;

  Server* server = nullptr;
  SessionHost* sessions = nullptr;
  AgentHost* rst_agent = nullptr;
  NodeId client_as = kInvalidNode;

  explicit World(std::uint64_t seed)
      : net(seed), tcsp(net, authority, "fw-key") {
    TransitStubParams params;
    params.transit_count = 4;
    params.stub_count = 28;
    topo = BuildTransitStub(net, params);
    AllocateTopologyPrefixes(authority, net.node_count());
    for (NodeId node = 0; node < net.node_count(); ++node) {
      auto nms = std::make_unique<IspNms>("isp-" + std::to_string(node),
                                          net, &tcsp.validator());
      nms->ManageNode(node);
      tcsp.EnrollIsp(nms.get());
      nmses.push_back(std::move(nms));
    }

    const LinkParams access{MegabitsPerSecond(100), Milliseconds(2),
                            256 * 1024};
    const NodeId server_as = topo.stub_nodes[0];
    client_as = topo.stub_nodes[5];
    server = SpawnHost<Server>(net, server_as, access);

    SessionHostConfig session_config;
    session_config.server = server->address();
    session_config.session_count = 32;
    sessions = SpawnHost<SessionHost>(net, client_as, access,
                                      session_config);

    // The attacker tears sessions down with RSTs spoofed as the server.
    AttackDirective directive;
    directive.type = AttackType::kTeardown;
    directive.teardown_targets = {sessions->address()};
    directive.teardown_claimed_server = server->address();
    directive.teardown_port_base = 20000;
    directive.teardown_port_range = 32;
    directive.rate_pps = 100.0;
    directive.duration = Seconds(6);
    rst_agent = SpawnHost<AgentHost>(net, topo.stub_nodes[11], access,
                                     directive);
  }

  /// The *client-side* organisation owns its addresses and deploys a
  /// firewall that drops forged teardown signalling aimed at them — in
  /// the network, long before it reaches the sessions.
  void DeployTeardownProtection() {
    const auto cert =
        tcsp.Register(AsOrgName(client_as), {NodePrefix(client_as)});
    if (!cert.ok()) {
      std::printf("registration failed: %s\n",
                  cert.status().ToString().c_str());
      return;
    }
    ServiceRequest request;
    request.kind = ServiceKind::kDistributedFirewall;
    request.control_scope = {NodePrefix(client_as)};
    // Deny inbound bare RSTs and ICMP unreachables — the two teardown
    // vectors named in Sec. 2 — toward the protected sessions.
    MatchRule deny_rst;
    deny_rst.proto = Protocol::kTcp;
    deny_rst.tcp_flags_all = tcp::kRst;
    MatchRule deny_unreachable;
    deny_unreachable.icmp = IcmpType::kDestUnreachable;
    request.deny_rules = {deny_rst, deny_unreachable};
    const DeploymentReport report = tcsp.DeployService(cert.value(),
                                                          request);
    std::printf("teardown protection on %zu devices: %s\n",
                report.devices_configured,
                report.status.ToString().c_str());
  }

  std::uint32_t Run() {
    sessions->Start();
    rst_agent->StartFlood();
    net.Run(Seconds(8));
    return sessions->alive_sessions();
  }
};

}  // namespace

int main() {
  std::printf("== RST/ICMP teardown attack on 32 long-lived sessions ==\n");
  {
    World world(31);
    const std::uint32_t alive = world.Run();
    std::printf("without protection: %u/32 sessions still alive, "
                "%llu teardowns accepted\n\n",
                alive,
                static_cast<unsigned long long>(
                    world.sessions->stats().teardowns_accepted));
  }
  {
    World world(31);
    world.DeployTeardownProtection();
    const std::uint32_t alive = world.Run();
    std::printf("with distributed firewall: %u/32 sessions alive, "
                "%llu forged packets filtered in-network\n",
                alive,
                static_cast<unsigned long long>(world.net.metrics().dropped(
                    TrafficClass::kAttack, DropReason::kFiltered)));
  }
  return 0;
}
