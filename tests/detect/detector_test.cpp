// Unit tests for the sequential detectors: threshold algebra, decision
// direction, reset-after-decision, and per-node state independence.
#include <gtest/gtest.h>

#include <cmath>

#include "detect/detector.h"

namespace adtc::detect {
namespace {

CounterSample At(NodeId node, SimTime at, SimDuration interval,
                 double packets) {
  return {node, at, interval, packets};
}

TEST(SprtDetectorTest, ThresholdsMatchWaldFormulae) {
  SprtDetector::Config config;
  config.alpha = 0.01;
  config.beta = 0.02;
  SprtDetector detector(config);
  EXPECT_DOUBLE_EQ(detector.UpperThreshold(),
                   std::log((1.0 - 0.02) / 0.01));
  EXPECT_DOUBLE_EQ(detector.LowerThreshold(),
                   std::log(0.02 / (1.0 - 0.01)));
  EXPECT_GT(detector.UpperThreshold(), 0.0);
  EXPECT_LT(detector.LowerThreshold(), 0.0);
}

TEST(SprtDetectorTest, AttackRateCrossesUpperThreshold) {
  SprtDetector::Config config;
  config.lambda0_pps = 50.0;
  config.lambda1_pps = 2000.0;
  SprtDetector detector(config);

  // Feed samples at the attack hypothesis rate: the LLR drifts up and
  // must decide "attack" within a handful of 100 ms samples.
  Verdict verdict = Verdict::kUndecided;
  int samples = 0;
  for (; samples < 50 && verdict == Verdict::kUndecided; ++samples) {
    verdict = detector.Observe(
        At(3, Milliseconds(100) * (samples + 1), Milliseconds(100), 200.0));
  }
  EXPECT_EQ(verdict, Verdict::kAttack);
  EXPECT_LT(samples, 10) << "SPRT should decide quickly at lambda1";
}

TEST(SprtDetectorTest, BenignRateCrossesLowerThreshold) {
  SprtDetector::Config config;
  config.lambda0_pps = 50.0;
  config.lambda1_pps = 2000.0;
  SprtDetector detector(config);

  Verdict verdict = Verdict::kUndecided;
  for (int i = 0; i < 50 && verdict == Verdict::kUndecided; ++i) {
    verdict = detector.Observe(
        At(3, Milliseconds(100) * (i + 1), Milliseconds(100), 5.0));
  }
  EXPECT_EQ(verdict, Verdict::kBenign);
}

TEST(SprtDetectorTest, FlashCrowdRateBelowDriftThresholdStaysBenign) {
  // The drift sign flips at r* = (l1-l0)/ln(l1/l0); for 50/2000 that is
  // ~529 pps. A 400 pps flash crowd sits below r*, so the test never
  // declares attack no matter how long it runs — this is the hypothesis
  // separation the closed-loop flash-crowd test leans on.
  SprtDetector::Config config;
  config.lambda0_pps = 50.0;
  config.lambda1_pps = 2000.0;
  SprtDetector detector(config);

  for (int i = 0; i < 600; ++i) {
    const Verdict verdict = detector.Observe(
        At(7, Milliseconds(100) * (i + 1), Milliseconds(100), 40.0));
    ASSERT_NE(verdict, Verdict::kAttack) << "sample " << i;
  }
}

TEST(SprtDetectorTest, ResetsAfterEachDecision) {
  SprtDetector::Config config;
  config.lambda0_pps = 50.0;
  config.lambda1_pps = 2000.0;
  SprtDetector detector(config);

  int decisions = 0;
  for (int i = 0; i < 40; ++i) {
    const Verdict verdict = detector.Observe(
        At(1, Milliseconds(100) * (i + 1), Milliseconds(100), 200.0));
    if (verdict == Verdict::kAttack) {
      decisions++;
      // The test re-arms from zero evidence after each decision.
      EXPECT_DOUBLE_EQ(detector.DecisionState(1), 0.0);
    }
  }
  EXPECT_GE(decisions, 2) << "a sustained attack re-decides repeatedly";
}

TEST(SprtDetectorTest, PerNodeStateIsIndependent) {
  SprtDetector detector({});
  // 53 packets per 100 ms sits just above the default drift threshold:
  // positive evidence that does not yet cross the decision boundary.
  // It must not leak into node 2's test.
  (void)detector.Observe(At(1, Milliseconds(100), Milliseconds(100), 53.0));
  EXPECT_GT(detector.DecisionState(1), 0.0);
  EXPECT_DOUBLE_EQ(detector.DecisionState(2), 0.0);
}

TEST(SprtDetectorTest, ResetClearsAllState) {
  SprtDetector detector({});
  (void)detector.Observe(At(1, Milliseconds(100), Milliseconds(100), 53.0));
  ASSERT_GT(detector.DecisionState(1), 0.0);
  detector.Reset();
  EXPECT_DOUBLE_EQ(detector.DecisionState(1), 0.0);
}

TEST(SprtDetectorTest, NonPositiveIntervalIsIgnored) {
  SprtDetector detector({});
  EXPECT_EQ(detector.Observe(At(1, 0, 0, 500.0)), Verdict::kUndecided);
  EXPECT_DOUBLE_EQ(detector.DecisionState(1), 0.0);
}

TEST(SprtDetectorTest, DeterministicAcrossInstances) {
  SprtDetector a({});
  SprtDetector b({});
  for (int i = 0; i < 20; ++i) {
    const CounterSample sample =
        At(4, Milliseconds(100) * (i + 1), Milliseconds(100), 30.0 + i);
    EXPECT_EQ(a.Observe(sample), b.Observe(sample)) << "sample " << i;
    EXPECT_DOUBLE_EQ(a.DecisionState(4), b.DecisionState(4));
  }
}

TEST(EwmaDetectorTest, BandsSeparateAttackClearAndUndecided) {
  EwmaDetector::Config config;
  config.threshold_pps = 1000.0;
  config.clear_fraction = 0.5;
  config.smoothing = 1.0;  // no memory: verdict tracks the raw rate
  EwmaDetector detector(config);

  EXPECT_EQ(detector.Observe(At(1, Milliseconds(100), Milliseconds(100),
                                200.0)),
            Verdict::kAttack);  // 2000 pps
  EXPECT_EQ(detector.Observe(At(1, Milliseconds(200), Milliseconds(100),
                                70.0)),
            Verdict::kUndecided);  // 700 pps: inside the hysteresis band
  EXPECT_EQ(detector.Observe(At(1, Milliseconds(300), Milliseconds(100),
                                10.0)),
            Verdict::kBenign);  // 100 pps
}

TEST(EwmaDetectorTest, SmoothingDelaysTheVerdict) {
  EwmaDetector::Config config;
  config.threshold_pps = 1000.0;
  config.smoothing = 0.3;
  EwmaDetector detector(config);

  // Seeded at a benign rate, a jump to 3000 pps takes a few samples to
  // pull the average over the threshold.
  EXPECT_EQ(detector.Observe(At(1, Milliseconds(100), Milliseconds(100),
                                10.0)),
            Verdict::kBenign);
  Verdict verdict = Verdict::kUndecided;
  int samples = 0;
  for (; samples < 20 && verdict != Verdict::kAttack; ++samples) {
    verdict = detector.Observe(At(
        1, Milliseconds(200) + Milliseconds(100) * samples,
        Milliseconds(100), 300.0));
  }
  EXPECT_EQ(verdict, Verdict::kAttack);
  EXPECT_GT(samples, 1) << "EWMA must not jump on a single sample";
}

}  // namespace
}  // namespace adtc::detect
