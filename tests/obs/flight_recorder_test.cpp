#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <sstream>

#include "obs/json.h"

namespace adtc::obs {
namespace {

VerdictRecord MakeRecord(SimTime at, bool dropped,
                         DatapathDropReason reason) {
  VerdictRecord record;
  record.at = at;
  record.node = 3;
  record.src = 0x0a000001;
  record.dst = 0x0a000002;
  record.src_port = 1234;
  record.dst_port = 80;
  record.protocol = 17;
  record.dropped = dropped;
  record.drop_reason = reason;
  record.cache_hit = false;
  record.redirected = true;
  record.stage2 = dropped;
  return record;
}

TEST(FlightRecorderTest, RecordsUpToCapacityThenOverwritesOldest) {
  FlightRecorder recorder(4);
  for (SimTime t = 0; t < 10; ++t) {
    recorder.Record(MakeRecord(t, false, DatapathDropReason::kNone));
  }
  EXPECT_EQ(recorder.capacity(), 4u);
  EXPECT_EQ(recorder.size(), 4u);
  EXPECT_EQ(recorder.total_recorded(), 10u);
  EXPECT_EQ(recorder.dropped_records(), 6u);
  // Snapshot unrolls the ring oldest-first: the last 4 records survive.
  const auto snapshot = recorder.Snapshot();
  ASSERT_EQ(snapshot.size(), 4u);
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    EXPECT_EQ(snapshot[i].at, static_cast<SimTime>(6 + i));
  }
}

TEST(FlightRecorderTest, ClearResetsEverything) {
  FlightRecorder recorder(2);
  recorder.Record(MakeRecord(1, true, DatapathDropReason::kBlacklist));
  recorder.Record(MakeRecord(2, false, DatapathDropReason::kNone));
  recorder.Record(MakeRecord(3, false, DatapathDropReason::kNone));
  recorder.Clear();
  EXPECT_EQ(recorder.size(), 0u);
  EXPECT_EQ(recorder.total_recorded(), 0u);
  EXPECT_EQ(recorder.dropped_records(), 0u);
  EXPECT_TRUE(recorder.Snapshot().empty());
}

TEST(FlightRecorderTest, WriteJsonlEmitsValidTaxonomyTaggedLines) {
  FlightRecorder recorder(8);
  recorder.Record(MakeRecord(100, true, DatapathDropReason::kRateLimit));
  recorder.Record(MakeRecord(200, false, DatapathDropReason::kNone));
  std::ostringstream out;
  recorder.WriteJsonl(out);

  std::istringstream in(out.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    const auto doc = JsonParse(line);
    ASSERT_TRUE(doc.has_value()) << line;
    EXPECT_EQ(doc->GetString("type"), "verdict");
    EXPECT_EQ(doc->GetNumber("node"), 3.0);
  }
  EXPECT_EQ(lines, 2u);
  EXPECT_NE(out.str().find("\"reason\":\"rate-limit\""), std::string::npos);
  EXPECT_NE(out.str().find("\"dropped\":true"), std::string::npos);
}

}  // namespace
}  // namespace adtc::obs
