#include "obs/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

namespace adtc::obs {
namespace {

TEST(JsonEscapeTest, EscapesSpecialsAndControls) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("line\nfeed\ttab"), "line\\nfeed\\ttab");
  EXPECT_EQ(JsonEscape(std::string("\x01", 1)), "\\u0001");
}

TEST(JsonNumberTest, IntegralDoublesPrintAsIntegers) {
  EXPECT_EQ(JsonNumber(0.0), "0");
  EXPECT_EQ(JsonNumber(42.0), "42");
  EXPECT_EQ(JsonNumber(-7.0), "-7");
}

TEST(JsonNumberTest, FractionsKeepPrecisionAndNonFiniteIsNull) {
  EXPECT_EQ(JsonNumber(0.5), "0.5");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonWriterTest, NestedStructureWithCommas) {
  std::ostringstream out;
  JsonWriter w(out);
  w.BeginObject();
  w.Field("name", "run\"1\"");
  w.Field("n", std::uint64_t{3});
  w.Key("values").BeginArray().Value(1.5).Value(std::int64_t{-2}).Null()
      .EndArray();
  w.Key("nested").BeginObject().Field("ok", true).EndObject();
  w.EndObject();
  EXPECT_EQ(out.str(),
            "{\"name\":\"run\\\"1\\\"\",\"n\":3,\"values\":[1.5,-2,null],"
            "\"nested\":{\"ok\":true}}");
}

TEST(JsonWriterTest, OutputIsSyntaxValid) {
  std::ostringstream out;
  JsonWriter w(out);
  w.BeginObject();
  w.Field("a", 1.25);
  w.Key("b").BeginArray().Value("x\ny").Value(false).Null().EndArray();
  w.EndObject();
  EXPECT_TRUE(JsonSyntaxValid(out.str())) << out.str();
}

TEST(JsonSyntaxValidTest, AcceptsValidDocuments) {
  EXPECT_TRUE(JsonSyntaxValid("{}"));
  EXPECT_TRUE(JsonSyntaxValid("[]"));
  EXPECT_TRUE(JsonSyntaxValid("  {\"a\": [1, -2.5e3, true, null]} "));
  EXPECT_TRUE(JsonSyntaxValid("\"just a string\\u00e9\""));
  EXPECT_TRUE(JsonSyntaxValid("0"));
  EXPECT_TRUE(JsonSyntaxValid("-0.125"));
}

TEST(JsonSyntaxValidTest, RejectsInvalidDocuments) {
  EXPECT_FALSE(JsonSyntaxValid(""));
  EXPECT_FALSE(JsonSyntaxValid("{"));
  EXPECT_FALSE(JsonSyntaxValid("{\"a\":}"));
  EXPECT_FALSE(JsonSyntaxValid("{\"a\":1,}"));
  EXPECT_FALSE(JsonSyntaxValid("[1 2]"));
  EXPECT_FALSE(JsonSyntaxValid("01"));
  EXPECT_FALSE(JsonSyntaxValid("{\"a\":1} extra"));
  EXPECT_FALSE(JsonSyntaxValid("\"unterminated"));
  EXPECT_FALSE(JsonSyntaxValid("\"bad\\q\""));
  EXPECT_FALSE(JsonSyntaxValid("nul"));
}

TEST(JsonParseTest, ParsesScalarsAndStructure) {
  const auto doc = JsonParse(
      "{\"name\":\"deploy\",\"id\":42,\"ok\":true,\"miss\":null,"
      "\"attrs\":{\"channel\":\"tcsp->nms\"},\"xs\":[1,-2.5,\"s\"]}");
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  EXPECT_EQ(doc->GetString("name"), "deploy");
  EXPECT_EQ(doc->GetNumber("id"), 42.0);
  EXPECT_TRUE(doc->GetBool("ok"));
  ASSERT_NE(doc->Get("miss"), nullptr);
  EXPECT_EQ(doc->Get("miss")->kind, JsonValue::Kind::kNull);
  const JsonValue* attrs = doc->Get("attrs");
  ASSERT_NE(attrs, nullptr);
  EXPECT_EQ(attrs->GetString("channel"), "tcsp->nms");
  const JsonValue* xs = doc->Get("xs");
  ASSERT_NE(xs, nullptr);
  ASSERT_EQ(xs->array.size(), 3u);
  EXPECT_EQ(xs->array[1].number_value, -2.5);
  EXPECT_EQ(xs->array[2].string_value, "s");
}

TEST(JsonParseTest, TypedAccessorsFallBackOnMismatch) {
  const auto doc = JsonParse("{\"n\":1,\"s\":\"x\"}");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->GetString("n", "fb"), "fb");   // number, asked as string
  EXPECT_EQ(doc->GetNumber("s", -1.0), -1.0);   // string, asked as number
  EXPECT_EQ(doc->GetString("absent", "fb"), "fb");
  EXPECT_EQ(doc->Get("absent"), nullptr);
}

TEST(JsonParseTest, DecodesEscapesIncludingUnicode) {
  const auto doc = JsonParse("\"a\\n\\\"b\\\\c\\u00e9\\u0041\"");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->string_value, "a\n\"b\\c\xc3\xa9""A");
}

TEST(JsonParseTest, RejectsWhatSyntaxValidRejects) {
  for (const char* bad :
       {"", "{", "{\"a\":}", "{\"a\":1,}", "[1 2]", "01",
        "{\"a\":1} extra", "\"unterminated", "\"bad\\q\"", "nul"}) {
    EXPECT_FALSE(JsonParse(bad).has_value()) << bad;
  }
}

TEST(JsonParseTest, RoundTripsWriterOutput) {
  std::ostringstream out;
  JsonWriter w(out);
  w.BeginObject()
      .Field("type", "span")
      .Field("id", std::uint64_t{7})
      .Field("ok", false)
      .Key("attrs")
      .BeginObject()
      .Field("fate", "lost")
      .EndObject()
      .EndObject();
  const auto doc = JsonParse(out.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->GetString("type"), "span");
  EXPECT_EQ(doc->GetNumber("id"), 7.0);
  EXPECT_FALSE(doc->GetBool("ok", true));
  EXPECT_EQ(doc->Get("attrs")->GetString("fate"), "lost");
}

TEST(JsonParseTest, DuplicateKeysKeepFirstOnLookup) {
  const auto doc = JsonParse("{\"k\":1,\"k\":2}");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->GetNumber("k"), 1.0);
}

}  // namespace
}  // namespace adtc::obs
