#include "obs/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

namespace adtc::obs {
namespace {

TEST(JsonEscapeTest, EscapesSpecialsAndControls) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("line\nfeed\ttab"), "line\\nfeed\\ttab");
  EXPECT_EQ(JsonEscape(std::string("\x01", 1)), "\\u0001");
}

TEST(JsonNumberTest, IntegralDoublesPrintAsIntegers) {
  EXPECT_EQ(JsonNumber(0.0), "0");
  EXPECT_EQ(JsonNumber(42.0), "42");
  EXPECT_EQ(JsonNumber(-7.0), "-7");
}

TEST(JsonNumberTest, FractionsKeepPrecisionAndNonFiniteIsNull) {
  EXPECT_EQ(JsonNumber(0.5), "0.5");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonWriterTest, NestedStructureWithCommas) {
  std::ostringstream out;
  JsonWriter w(out);
  w.BeginObject();
  w.Field("name", "run\"1\"");
  w.Field("n", std::uint64_t{3});
  w.Key("values").BeginArray().Value(1.5).Value(std::int64_t{-2}).Null()
      .EndArray();
  w.Key("nested").BeginObject().Field("ok", true).EndObject();
  w.EndObject();
  EXPECT_EQ(out.str(),
            "{\"name\":\"run\\\"1\\\"\",\"n\":3,\"values\":[1.5,-2,null],"
            "\"nested\":{\"ok\":true}}");
}

TEST(JsonWriterTest, OutputIsSyntaxValid) {
  std::ostringstream out;
  JsonWriter w(out);
  w.BeginObject();
  w.Field("a", 1.25);
  w.Key("b").BeginArray().Value("x\ny").Value(false).Null().EndArray();
  w.EndObject();
  EXPECT_TRUE(JsonSyntaxValid(out.str())) << out.str();
}

TEST(JsonSyntaxValidTest, AcceptsValidDocuments) {
  EXPECT_TRUE(JsonSyntaxValid("{}"));
  EXPECT_TRUE(JsonSyntaxValid("[]"));
  EXPECT_TRUE(JsonSyntaxValid("  {\"a\": [1, -2.5e3, true, null]} "));
  EXPECT_TRUE(JsonSyntaxValid("\"just a string\\u00e9\""));
  EXPECT_TRUE(JsonSyntaxValid("0"));
  EXPECT_TRUE(JsonSyntaxValid("-0.125"));
}

TEST(JsonSyntaxValidTest, RejectsInvalidDocuments) {
  EXPECT_FALSE(JsonSyntaxValid(""));
  EXPECT_FALSE(JsonSyntaxValid("{"));
  EXPECT_FALSE(JsonSyntaxValid("{\"a\":}"));
  EXPECT_FALSE(JsonSyntaxValid("{\"a\":1,}"));
  EXPECT_FALSE(JsonSyntaxValid("[1 2]"));
  EXPECT_FALSE(JsonSyntaxValid("01"));
  EXPECT_FALSE(JsonSyntaxValid("{\"a\":1} extra"));
  EXPECT_FALSE(JsonSyntaxValid("\"unterminated"));
  EXPECT_FALSE(JsonSyntaxValid("\"bad\\q\""));
  EXPECT_FALSE(JsonSyntaxValid("nul"));
}

}  // namespace
}  // namespace adtc::obs
