#include "obs/metrics_registry.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace adtc::obs {
namespace {

const MetricValue* Find(const MetricsSnapshot& snapshot,
                        std::string_view name) {
  const auto it = std::find_if(
      snapshot.begin(), snapshot.end(),
      [name](const MetricValue& v) { return v.name == name; });
  return it == snapshot.end() ? nullptr : &*it;
}

TEST(CounterTest, BehavesLikeUint64) {
  Counter c;
  EXPECT_EQ(c, 0u);
  ++c;
  c++;
  c += 3;
  c.Increment(5);
  EXPECT_EQ(c, 10u);
  EXPECT_EQ(c.value(), 10u);
  const std::uint64_t raw = c;  // implicit read keeps old call sites working
  EXPECT_EQ(raw, 10u);
  EXPECT_GT(c, 1u);
}

TEST(MetricsRegistryTest, SameNameReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("x.count");
  Counter& b = registry.GetCounter("x.count");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(registry.counter_count(), 1u);

  // Addresses stay stable as more instruments register (deque-backed).
  for (int i = 0; i < 100; ++i) {
    registry.GetCounter("c" + std::to_string(i));
  }
  EXPECT_EQ(&registry.GetCounter("x.count"), &a);
}

TEST(MetricsRegistryTest, FindDoesNotCreate) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.FindCounter("missing"), nullptr);
  EXPECT_EQ(registry.FindGauge("missing"), nullptr);
  EXPECT_EQ(registry.FindHistogram("missing"), nullptr);
  registry.GetCounter("present");
  EXPECT_NE(registry.FindCounter("present"), nullptr);
  EXPECT_EQ(registry.counter_count(), 1u);
}

TEST(MetricsRegistryTest, SnapshotReportsOwnedInstruments) {
  MetricsRegistry registry;
  registry.GetCounter("a.ticks") += 7;
  registry.GetGauge("a.depth").Set(2.5);
  Histogram& h = registry.GetHistogram("a.latency_ns", 0.0, 100.0, 10);
  for (int i = 0; i < 100; ++i) h.Add(i + 0.5);

  const MetricsSnapshot snapshot = registry.TakeSnapshot();
  const MetricValue* ticks = Find(snapshot, "a.ticks");
  ASSERT_NE(ticks, nullptr);
  EXPECT_DOUBLE_EQ(ticks->value, 7.0);
  const MetricValue* depth = Find(snapshot, "a.depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_DOUBLE_EQ(depth->value, 2.5);
  const MetricValue* count = Find(snapshot, "a.latency_ns.count");
  ASSERT_NE(count, nullptr);
  EXPECT_DOUBLE_EQ(count->value, 100.0);
  const MetricValue* p50 = Find(snapshot, "a.latency_ns.p50");
  ASSERT_NE(p50, nullptr);
  EXPECT_NEAR(p50->value, 50.0, 1.5);
  EXPECT_NE(Find(snapshot, "a.latency_ns.p99"), nullptr);
}

TEST(MetricsRegistryTest, SnapshotOrderIsDeterministic) {
  MetricsRegistry registry;
  registry.GetCounter("z.last");
  registry.GetCounter("a.first");
  const MetricsSnapshot s1 = registry.TakeSnapshot();
  const MetricsSnapshot s2 = registry.TakeSnapshot();
  ASSERT_EQ(s1.size(), s2.size());
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1[i].name, s2[i].name);
  }
  // Registration order, not lexical order.
  EXPECT_EQ(s1[0].name, "z.last");
  EXPECT_EQ(s1[1].name, "a.first");
}

TEST(MetricsRegistryTest, CollectorsAppendAndUnregisterByOwner) {
  MetricsRegistry registry;
  int owner_a = 0;
  int owner_b = 0;
  registry.AddCollector(&owner_a, [](MetricsSnapshot& out) {
    out.push_back({"a.metric", 1.0});
  });
  registry.AddCollector(&owner_b, [](MetricsSnapshot& out) {
    out.push_back({"b.metric", 2.0});
  });
  EXPECT_EQ(registry.collector_count(), 2u);
  EXPECT_NE(Find(registry.TakeSnapshot(), "a.metric"), nullptr);

  registry.RemoveCollectors(&owner_a);
  EXPECT_EQ(registry.collector_count(), 1u);
  const MetricsSnapshot after = registry.TakeSnapshot();
  EXPECT_EQ(Find(after, "a.metric"), nullptr);
  ASSERT_NE(Find(after, "b.metric"), nullptr);
  EXPECT_DOUBLE_EQ(Find(after, "b.metric")->value, 2.0);

  // Removing an owner with no collectors is a harmless no-op.
  registry.RemoveCollectors(&owner_a);
  EXPECT_EQ(registry.collector_count(), 1u);
}

TEST(MetricsRegistryTest, HistogramReusesFirstBounds) {
  MetricsRegistry registry;
  Histogram& first = registry.GetHistogram("h", 0.0, 10.0, 5);
  Histogram& again = registry.GetHistogram("h", 0.0, 99999.0, 77);
  EXPECT_EQ(&first, &again);
  again.Add(50.0);  // outside the original [0,10) -> overflow
  EXPECT_EQ(first.overflow(), 1u);
}

}  // namespace
}  // namespace adtc::obs
