#include "obs/trace_analysis.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/span.h"

namespace adtc::obs {
namespace {

Span MakeSpan(SpanId id, SpanId parent, std::string name, SimTime start,
              SimTime end, bool ok = true,
              std::vector<std::pair<std::string, std::string>> attrs = {}) {
  Span span;
  span.id = id;
  span.parent = parent;
  span.name = std::move(name);
  span.start = start;
  span.end = end;
  span.ok = ok;
  span.attributes = std::move(attrs);
  return span;
}

/// A well-formed single deployment: deploy -> call -> 2 attempts (first
/// lost its request) -> remote install; plus one untagged bystander.
std::vector<Span> WellFormedSpans() {
  const std::pair<std::string, std::string> tag{"deployment", "1:7"};
  std::vector<Span> spans;
  spans.push_back(MakeSpan(1, kNoSpan, "tcsp.deploy", 0, 400, true, {tag}));
  spans.push_back(MakeSpan(2, 1, "ctrl.call", 0, 300, true,
                           {tag, {"channel", "tcsp->nms:isp-0"}}));
  spans.push_back(MakeSpan(3, 2, "ctrl.attempt", 0, 100, false,
                           {tag,
                            {"channel", "tcsp->nms:isp-0"},
                            {"request", "lost"}}));
  spans.push_back(MakeSpan(4, 2, "ctrl.attempt", 100, 300, true,
                           {tag,
                            {"channel", "tcsp->nms:isp-0"},
                            {"request", "delivered"}}));
  spans.push_back(MakeSpan(5, 4, "nms.deploy", 150, 250, true, {tag}));
  spans.push_back(MakeSpan(6, kNoSpan, "tcsp.register", 0, 10));  // untagged
  return spans;
}

TEST(TraceAnalyzerTest, ReassemblesSingleRootedTimeline) {
  TraceAnalyzer analyzer;
  analyzer.Analyze(WellFormedSpans());

  ASSERT_EQ(analyzer.timelines().size(), 1u);
  const DeploymentTimeline& timeline = analyzer.timelines().at("1:7");
  EXPECT_TRUE(timeline.Complete());
  ASSERT_EQ(timeline.roots.size(), 1u);
  EXPECT_EQ(timeline.roots[0]->name, "tcsp.deploy");
  EXPECT_EQ(timeline.orphan_count, 0u);
  EXPECT_EQ(timeline.spans.size(), 5u);
  EXPECT_EQ(timeline.call_count, 1u);
  EXPECT_EQ(timeline.attempt_count, 2u);
  EXPECT_EQ(timeline.failed_span_count, 1u);
  EXPECT_EQ(timeline.ConvergenceLatency(), 400);
  EXPECT_DOUBLE_EQ(timeline.RetryAmplification(), 2.0);
  ASSERT_EQ(timeline.lost_by_channel.size(), 1u);
  EXPECT_EQ(timeline.lost_by_channel.at("tcsp->nms:isp-0"), 1u);

  const TraceSummary& summary = analyzer.summary();
  EXPECT_EQ(summary.deployment_count, 1u);
  EXPECT_EQ(summary.complete_count, 1u);
  EXPECT_EQ(summary.untagged_spans, 1u);
  EXPECT_TRUE(analyzer.AllComplete());
}

TEST(TraceAnalyzerTest, DetectsOrphansAndMultipleRoots) {
  const std::pair<std::string, std::string> tag{"deployment", "2:1"};
  std::vector<Span> spans;
  spans.push_back(MakeSpan(1, kNoSpan, "tcsp.deploy", 0, 100, true, {tag}));
  // Parent 99 is not part of this deployment's span set: severed.
  spans.push_back(MakeSpan(2, 99, "device.install", 50, 60, true, {tag}));

  TraceAnalyzer analyzer;
  analyzer.Analyze(spans);
  const DeploymentTimeline& timeline = analyzer.timelines().at("2:1");
  EXPECT_FALSE(timeline.Complete());
  EXPECT_EQ(timeline.roots.size(), 2u);
  EXPECT_EQ(timeline.orphan_count, 1u);
  EXPECT_FALSE(analyzer.AllComplete());
  EXPECT_EQ(analyzer.summary().orphan_spans, 1u);
}

TEST(TraceAnalyzerTest, GroupsIndependentDeployments) {
  std::vector<Span> spans;
  spans.push_back(MakeSpan(1, kNoSpan, "tcsp.deploy", 0, 100, true,
                           {{"deployment", "1:1"}}));
  spans.push_back(MakeSpan(2, kNoSpan, "nms.deploy", 0, 300, true,
                           {{"deployment", "3:9"}}));
  TraceAnalyzer analyzer;
  analyzer.Analyze(spans);
  EXPECT_EQ(analyzer.summary().deployment_count, 2u);
  EXPECT_EQ(analyzer.summary().complete_count, 2u);
  // Convergence percentiles come from per-deployment latencies {100,300}.
  EXPECT_EQ(analyzer.summary().convergence_p50, 100);
  EXPECT_EQ(analyzer.summary().convergence_p99, 300);
}

TEST(TraceAnalyzerTest, SendFateLostAttributesChannel) {
  const std::pair<std::string, std::string> tag{"deployment", "4:2"};
  std::vector<Span> spans;
  spans.push_back(MakeSpan(1, kNoSpan, "nms.deploy", 0, 50, true, {tag}));
  spans.push_back(MakeSpan(2, 1, "ctrl.send", 10, 10, false,
                           {tag,
                            {"channel", "nms:a->nms:b"},
                            {"fate", "lost"}}));
  spans.push_back(MakeSpan(3, 1, "ctrl.send", 10, 10, true,
                           {tag,
                            {"channel", "nms:a->nms:c"},
                            {"fate", "duplicated"}}));
  TraceAnalyzer analyzer;
  analyzer.Analyze(spans);
  const DeploymentTimeline& timeline = analyzer.timelines().at("4:2");
  EXPECT_EQ(timeline.send_count, 2u);
  // "duplicated" still got through — only the lost send is attributed.
  ASSERT_EQ(timeline.lost_by_channel.size(), 1u);
  EXPECT_EQ(timeline.lost_by_channel.at("nms:a->nms:b"), 1u);
}

TEST(TraceAnalyzerTest, RendersTimelineAndSummary) {
  TraceAnalyzer analyzer;
  const std::vector<Span> spans = WellFormedSpans();
  analyzer.Analyze(spans);
  const std::string rendered =
      analyzer.RenderTimeline(analyzer.timelines().at("1:7"));
  EXPECT_NE(rendered.find("tcsp.deploy"), std::string::npos);
  EXPECT_NE(rendered.find("ctrl.attempt"), std::string::npos);
  EXPECT_NE(rendered.find("request=lost"), std::string::npos);
  const std::string summary = analyzer.RenderSummary();
  EXPECT_NE(summary.find("deployments"), std::string::npos);
}

TEST(TraceAnalyzerTest, ReanalyzeReplacesPreviousState) {
  TraceAnalyzer analyzer;
  analyzer.Analyze(WellFormedSpans());
  analyzer.Analyze({});
  EXPECT_EQ(analyzer.summary().deployment_count, 0u);
  EXPECT_TRUE(analyzer.timelines().empty());
  EXPECT_TRUE(analyzer.AllComplete());  // vacuously
}

TEST(DurationPercentileTest, NearestRankOnUnsortedInput) {
  EXPECT_EQ(DurationPercentile({}, 50.0), 0);
  EXPECT_EQ(DurationPercentile({30, 10, 20}, 50.0), 20);
  EXPECT_EQ(DurationPercentile({30, 10, 20}, 99.0), 30);
  EXPECT_EQ(DurationPercentile({30, 10, 20}, 0.0), 10);
  EXPECT_EQ(DurationPercentile({5}, 95.0), 5);
}

}  // namespace
}  // namespace adtc::obs
