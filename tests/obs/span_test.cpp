#include "obs/span.h"

#include <gtest/gtest.h>

#include "obs/sink.h"

namespace adtc::obs {
namespace {

class TracerTest : public ::testing::Test {
 protected:
  TracerTest() {
    tracer_.SetSink(&sink_);
    tracer_.SetClock([this] { return now_; });
  }

  MemoryTelemetrySink sink_;
  Tracer tracer_;
  SimTime now_ = 0;
};

TEST_F(TracerTest, DisabledTracerNoOpsEverywhere) {
  Tracer off;
  off.SetClock([] { return SimTime{5}; });
  const SpanId id = off.StartSpan("anything");
  EXPECT_EQ(id, kNoSpan);
  off.SetNode(id, 3);
  off.Annotate(id, "k", "v");
  off.EndSpan(id);
  EXPECT_EQ(off.open_span_count(), 0u);
  // Scoped helpers tolerate both a null tracer and a disabled one.
  {
    ScopedSpan null_scope(nullptr, "x");
    ScopedSpan off_scope(&off, "y");
    EXPECT_EQ(off_scope.id(), kNoSpan);
    ScopedActivation activation(&off, kNoSpan);
  }
  EXPECT_EQ(off.active(), kNoSpan);
}

TEST_F(TracerTest, RecordsTimesStatusAndAttributes) {
  now_ = 100;
  const SpanId id = tracer_.StartSpan("op");
  ASSERT_NE(id, kNoSpan);
  EXPECT_EQ(tracer_.open_span_count(), 1u);
  tracer_.SetNode(id, 7);
  tracer_.SetSubscriber(id, 42);
  tracer_.Annotate(id, "mode", "async");
  now_ = 250;
  tracer_.EndSpan(id, /*ok=*/false);
  EXPECT_EQ(tracer_.open_span_count(), 0u);

  ASSERT_EQ(sink_.spans().size(), 1u);
  const Span& span = sink_.spans()[0];
  EXPECT_EQ(span.name, "op");
  EXPECT_EQ(span.start, 100);
  EXPECT_EQ(span.end, 250);
  EXPECT_EQ(span.Duration(), 150);
  EXPECT_FALSE(span.ok);
  EXPECT_EQ(span.node, 7u);
  EXPECT_EQ(span.subscriber, 42u);
  ASSERT_EQ(span.attributes.size(), 1u);
  EXPECT_EQ(span.attributes[0].first, "mode");
  EXPECT_EQ(span.attributes[0].second, "async");
}

TEST_F(TracerTest, ActiveStackParentsSynchronousChildren) {
  const SpanId root = tracer_.StartSpan("root");
  {
    ScopedActivation activation(&tracer_, root);
    const SpanId child = tracer_.StartSpan("child");
    tracer_.EndSpan(child);
  }
  const SpanId sibling = tracer_.StartSpan("sibling");  // no active parent
  tracer_.EndSpan(sibling);
  tracer_.EndSpan(root);

  ASSERT_EQ(sink_.spans().size(), 3u);
  const Span* child = sink_.SpansNamed("child")[0];
  EXPECT_EQ(child->parent, root);
  const Span* top = sink_.SpansNamed("sibling")[0];
  EXPECT_EQ(top->parent, kNoSpan);
}

TEST_F(TracerTest, ExplicitParentBeatsActiveStack) {
  const SpanId a = tracer_.StartSpan("a");
  const SpanId b = tracer_.StartSpan("b");
  ScopedActivation activation(&tracer_, b);
  const SpanId child = tracer_.StartSpan("child", a);
  tracer_.EndSpan(child);
  ASSERT_EQ(sink_.SpansNamed("child").size(), 1u);
  EXPECT_EQ(sink_.SpansNamed("child")[0]->parent, a);
  tracer_.EndSpan(b);
  tracer_.EndSpan(a);
}

TEST_F(TracerTest, ScopedSpanNestsAndReportsFailure) {
  {
    ScopedSpan outer(&tracer_, "outer");
    outer.SetNode(3);
    {
      ScopedSpan inner(&tracer_, "inner");
      inner.Fail();
    }
  }
  ASSERT_EQ(sink_.spans().size(), 2u);
  // Inner ends first (emission order), outer is its parent.
  const Span& inner = sink_.spans()[0];
  const Span& outer = sink_.spans()[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_FALSE(inner.ok);
  EXPECT_EQ(inner.parent, outer.id);
  EXPECT_TRUE(outer.ok);
  EXPECT_EQ(outer.node, 3u);
  EXPECT_EQ(tracer_.active(), kNoSpan);
}

TEST_F(TracerTest, EndingUnknownSpanIsSafe) {
  tracer_.EndSpan(kNoSpan);
  tracer_.EndSpan(9999);
  EXPECT_TRUE(sink_.spans().empty());
}

TEST_F(TracerTest, MemorySinkTreeQueries) {
  const SpanId root = tracer_.StartSpan("tcsp.deploy");
  SpanId nms = kNoSpan;
  {
    ScopedActivation activate_root(&tracer_, root);
    nms = tracer_.StartSpan("nms.deploy");
    {
      ScopedActivation activate_nms(&tracer_, nms);
      const SpanId install = tracer_.StartSpan("device.install");
      tracer_.EndSpan(install);
      const SpanId install2 = tracer_.StartSpan("device.install");
      tracer_.EndSpan(install2);
    }
    tracer_.EndSpan(nms);
  }
  tracer_.EndSpan(root);

  EXPECT_EQ(sink_.SpansNamed("device.install").size(), 2u);
  EXPECT_EQ(sink_.ChildrenOf(root).size(), 1u);
  EXPECT_EQ(sink_.ChildrenOf(nms).size(), 2u);
  EXPECT_TRUE(
      sink_.HasDescendantChain(root, {"nms.deploy", "device.install"}));
  EXPECT_FALSE(
      sink_.HasDescendantChain(root, {"device.install", "nms.deploy"}));
  EXPECT_FALSE(sink_.HasDescendantChain(root, {"missing"}));
}

}  // namespace
}  // namespace adtc::obs
