#include "obs/telemetry.h"

#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "obs/json.h"
#include "obs/wall_clock.h"
#include "sim/simulator.h"

namespace adtc::obs {
namespace {

TEST(TelemetryTest, DisabledByDefault) {
  Simulator sim;
  Telemetry telemetry(sim);
  EXPECT_FALSE(telemetry.tracing_enabled());
  EXPECT_FALSE(telemetry.profiling_enabled());
  EXPECT_EQ(telemetry.tracer().StartSpan("ignored"), kNoSpan);
}

TEST(TelemetryTest, AttachSinkEnablesTracingAndSampling) {
  Simulator sim;
  Telemetry telemetry(sim);
  MemoryTelemetrySink sink;
  telemetry.AttachSink(&sink);
  EXPECT_TRUE(telemetry.tracing_enabled());

  telemetry.registry().GetCounter("x") += 1;
  const SpanId id = telemetry.tracer().StartSpan("op");
  telemetry.tracer().EndSpan(id);
  telemetry.sampler().SampleNow();
  EXPECT_EQ(sink.spans().size(), 1u);
  EXPECT_EQ(sink.samples().size(), 1u);

  // Spans carry the simulated clock, not wall time.
  sim.Post(Milliseconds(5), [] {});
  sim.RunUntil(Milliseconds(5));
  const SpanId late = telemetry.tracer().StartSpan("late");
  telemetry.tracer().EndSpan(late);
  EXPECT_EQ(sink.spans()[1].start, Milliseconds(5));
}

TEST(TelemetryTest, JsonlTimelineWritesValidJsonLines) {
  const std::string path = ::testing::TempDir() + "/adtc_timeline.jsonl";
  Simulator sim;
  {
    // Scoped: destruction flushes the owned JSONL stream.
    Telemetry telemetry(sim);
    ASSERT_TRUE(telemetry.OpenJsonlTimeline(path));
    ASSERT_NE(telemetry.jsonl_sink(), nullptr);
    telemetry.registry().GetCounter("demo.count") += 3;
    const SpanId id = telemetry.tracer().StartSpan("demo.op");
    telemetry.tracer().Annotate(id, "key", "va\"lue");
    telemetry.tracer().EndSpan(id, /*ok=*/false);
    telemetry.sampler().SampleNow();
    EXPECT_EQ(telemetry.jsonl_sink()->lines_written(), 2u);
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    EXPECT_TRUE(JsonSyntaxValid(line)) << line;
    EXPECT_EQ(line.find("{\"type\":\""), 0u) << line;
  }
  EXPECT_EQ(lines, 2u);
}

TEST(TelemetryTest, OpenJsonlTimelineFailsCleanly) {
  Simulator sim;
  Telemetry telemetry(sim);
  EXPECT_FALSE(telemetry.OpenJsonlTimeline("/nonexistent-dir/x/y.jsonl"));
  EXPECT_EQ(telemetry.jsonl_sink(), nullptr);
  EXPECT_FALSE(telemetry.tracing_enabled());
}

TEST(TelemetryTest, MemorySinkIsBoundedAndCountsEvictions) {
  Simulator sim;
  Telemetry telemetry(sim);
  MemoryTelemetrySink sink(/*capacity=*/3);
  telemetry.AttachSink(&sink);
  for (int i = 0; i < 5; ++i) {
    const SpanId id =
        telemetry.tracer().StartSpan("op" + std::to_string(i));
    telemetry.tracer().EndSpan(id);
  }
  // Ring semantics: capacity retained, oldest evicted, evictions counted.
  EXPECT_EQ(sink.capacity(), 3u);
  ASSERT_EQ(sink.spans().size(), 3u);
  EXPECT_EQ(sink.dropped_records(), 2u);
  EXPECT_EQ(sink.spans().front().name, "op2");
  EXPECT_EQ(sink.spans().back().name, "op4");

  sink.Clear();
  EXPECT_TRUE(sink.spans().empty());
  EXPECT_EQ(sink.dropped_records(), 0u);
}

TEST(TelemetryTest, ExplicitFlushMakesTimelineReadableMidRun) {
  const std::string path = ::testing::TempDir() + "/adtc_flush.jsonl";
  Simulator sim;
  Telemetry telemetry(sim);
  ASSERT_TRUE(telemetry.OpenJsonlTimeline(path));
  const SpanId id = telemetry.tracer().StartSpan("mid.run");
  telemetry.tracer().EndSpan(id);
  // The telemetry object (and its buffered stream) is still alive; an
  // explicit flush must make the line visible to an external reader.
  telemetry.FlushSinks();
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_TRUE(JsonSyntaxValid(line)) << line;
  EXPECT_NE(line.find("mid.run"), std::string::npos);
}

TEST(ScopedWallTimerTest, RecordsIntoHistogramOnlyWhenEnabled) {
  Histogram hist(0.0, 1e9, 64);
  {
    ScopedWallTimer disabled(nullptr);
  }
  EXPECT_EQ(hist.total(), 0u);
  {
    ScopedWallTimer enabled(&hist);
  }
  EXPECT_EQ(hist.total(), 1u);
}

}  // namespace
}  // namespace adtc::obs
