#include "obs/sampler.h"

#include <gtest/gtest.h>

#include "obs/sink.h"
#include "sim/simulator.h"

namespace adtc::obs {
namespace {

TEST(TimeSeriesSamplerTest, PeriodicSamplesAreMonotonicInSimTime) {
  Simulator sim;
  MetricsRegistry registry;
  Counter& ticks = registry.GetCounter("ticks");
  MemoryTelemetrySink sink;
  TimeSeriesSampler sampler(sim, registry);
  sampler.AddSink(&sink);

  sim.PostEvery(Milliseconds(10), [&ticks] {
    ++ticks;
    return true;
  });
  sampler.Start(Milliseconds(25));
  EXPECT_TRUE(sampler.running());
  sim.RunUntil(Milliseconds(200));

  ASSERT_GE(sink.samples().size(), 7u);
  EXPECT_EQ(sampler.samples_taken(), sink.samples().size());
  SimTime last = -1;
  double last_ticks = -1.0;
  for (const TimeSeriesSample& sample : sink.samples()) {
    EXPECT_GT(sample.at, last);
    last = sample.at;
    ASSERT_FALSE(sample.values.empty());
    EXPECT_EQ(sample.values[0].name, "ticks");
    EXPECT_GE(sample.values[0].value, last_ticks);  // counters only grow
    last_ticks = sample.values[0].value;
  }
  EXPECT_GT(last_ticks, 0.0);
}

TEST(TimeSeriesSamplerTest, StopDetachesMidRun) {
  Simulator sim;
  MetricsRegistry registry;
  MemoryTelemetrySink sink;
  TimeSeriesSampler sampler(sim, registry);
  sampler.AddSink(&sink);
  sampler.Start(Milliseconds(10));
  sim.Post(Milliseconds(35), [&sampler] { sampler.Stop(); });
  sim.RunUntil(Milliseconds(200));
  EXPECT_FALSE(sampler.running());
  EXPECT_EQ(sink.samples().size(), 3u);  // t = 10, 20, 30
}

TEST(TimeSeriesSamplerTest, DestructionBeforeRunIsSafe) {
  Simulator sim;
  MetricsRegistry registry;
  {
    TimeSeriesSampler sampler(sim, registry);
    sampler.Start(Milliseconds(5));
  }
  // The scheduled periodic callback outlives the sampler; it must not
  // touch the dead object.
  sim.RunUntil(Milliseconds(50));
  SUCCEED();
}

TEST(TimeSeriesSamplerTest, SampleNowWorksWithoutStart) {
  Simulator sim;
  MetricsRegistry registry;
  registry.GetCounter("c") += 4;
  MemoryTelemetrySink sink;
  TimeSeriesSampler sampler(sim, registry);
  sampler.AddSink(&sink);
  sampler.SampleNow();
  ASSERT_EQ(sink.samples().size(), 1u);
  EXPECT_EQ(sink.samples()[0].at, sim.Now());
  ASSERT_EQ(sink.samples()[0].values.size(), 1u);
  EXPECT_DOUBLE_EQ(sink.samples()[0].values[0].value, 4.0);
}

TEST(TimeSeriesSamplerTest, RestartReplacesSchedule) {
  Simulator sim;
  MetricsRegistry registry;
  MemoryTelemetrySink sink;
  TimeSeriesSampler sampler(sim, registry);
  sampler.AddSink(&sink);
  sampler.Start(Milliseconds(100));
  sampler.Start(Milliseconds(10));  // replaces the 100 ms schedule
  sim.RunUntil(Milliseconds(45));
  EXPECT_EQ(sink.samples().size(), 4u);  // 10, 20, 30, 40 — not doubled
}

}  // namespace
}  // namespace adtc::obs
