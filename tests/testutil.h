// Shared helpers for the ADTC test suite.
#pragma once

#include <gtest/gtest.h>

#include "attack/scenario.h"
#include "net/network.h"
#include "net/topo_gen.h"

namespace adtc::testing {

/// A small deterministic transit-stub world for integration tests.
struct SmallWorld {
  Network net;
  TopologyInfo topo;

  explicit SmallWorld(std::uint64_t seed = 42,
                      std::uint32_t transit = 4, std::uint32_t stubs = 24)
      : net(seed) {
    TransitStubParams params;
    params.transit_count = transit;
    params.stub_count = stubs;
    params.extra_core_links = 2;
    topo = BuildTransitStub(net, params);
  }
};

/// Expects a Status to be OK, printing the message otherwise.
#define ADTC_EXPECT_OK(expr)                                     \
  do {                                                           \
    const ::adtc::Status status_ = (expr);                       \
    EXPECT_TRUE(status_.ok()) << "status: " << status_.ToString(); \
  } while (0)

#define ADTC_ASSERT_OK(expr)                                     \
  do {                                                           \
    const ::adtc::Status status_ = (expr);                       \
    ASSERT_TRUE(status_.ok()) << "status: " << status_.ToString(); \
  } while (0)

}  // namespace adtc::testing
