#include <gtest/gtest.h>

#include <algorithm>

#include "attack/agent.h"
#include "attack/c2.h"
#include "attack/scenario.h"
#include "attack/spoof.h"
#include "host/session.h"
#include "testutil.h"

namespace adtc {
namespace {

using testing::SmallWorld;

LinkParams FastLink() {
  return LinkParams{GigabitsPerSecond(1), Milliseconds(1), 1024 * 1024};
}

TEST(SpoofTest, NoneKeepsRealSource) {
  Rng rng(1);
  Packet p;
  const Ipv4Address self = HostAddress(5, 1);
  ApplySpoof(p, SpoofMode::kNone, self, HostAddress(9, 1), 20, rng);
  EXPECT_EQ(p.src, self);
  EXPECT_FALSE(p.spoofed_src);
}

TEST(SpoofTest, VictimModeUsesVictimAddress) {
  Rng rng(1);
  Packet p;
  const Ipv4Address victim = HostAddress(9, 1);
  ApplySpoof(p, SpoofMode::kVictim, HostAddress(5, 1), victim, 20, rng);
  EXPECT_EQ(p.src, victim);
  EXPECT_TRUE(p.spoofed_src);
}

TEST(SpoofTest, SameSubnetStaysInPrefix) {
  Rng rng(1);
  const Ipv4Address self = HostAddress(5, 1);
  for (int i = 0; i < 100; ++i) {
    Packet p;
    ApplySpoof(p, SpoofMode::kSameSubnet, self, HostAddress(9, 1), 20, rng);
    EXPECT_TRUE(NodePrefix(5).Contains(p.src));
  }
}

TEST(SpoofTest, RandomStaysInAllocatedSpace) {
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    Packet p;
    ApplySpoof(p, SpoofMode::kRandom, HostAddress(5, 1), HostAddress(9, 1),
               20, rng);
    EXPECT_LT(AddressNode(p.src), 20u);
    EXPECT_GE(AddressSlot(p.src), 1u);
  }
}

TEST(AgentTest, FloodsAtConfiguredRateAndStops) {
  Network net(3);
  const NodeId a = net.AddNode(NodeRole::kStub);
  const NodeId b = net.AddNode(NodeRole::kStub);
  net.Connect(a, b, FastLink(), LinkKind::kPeer);
  AttackDirective directive;
  directive.type = AttackType::kDirectFlood;
  directive.victim = HostAddress(b, 1);
  directive.rate_pps = 100.0;
  directive.duration = Seconds(2);
  directive.spoof = SpoofMode::kNone;
  auto* agent = SpawnHost<AgentHost>(net, a, FastLink(), directive);
  net.FinalizeRouting();
  agent->StartFlood();
  net.Run(Seconds(5));
  EXPECT_FALSE(agent->flooding());
  // ~200 packets expected (100 pps for 2 s, +-jitter).
  EXPECT_GT(agent->stats().attack_packets_sent, 150u);
  EXPECT_LT(agent->stats().attack_packets_sent, 260u);
}

TEST(AgentTest, ControlPacketTriggersFlood) {
  Network net(4);
  const NodeId a = net.AddNode(NodeRole::kStub);
  AttackDirective directive;
  directive.victim = HostAddress(a, 99);
  directive.duration = Seconds(1);
  directive.rate_pps = 10.0;
  auto* agent = SpawnHost<AgentHost>(net, a, FastLink(), directive);
  auto* sender = SpawnHost<AgentHost>(net, a, FastLink(), directive);
  net.FinalizeRouting();
  net.set_icmp_errors_enabled(false);
  Packet control = sender->MakePacket(agent->address(), Protocol::kUdp, 64);
  control.dst_port = kControlPort;
  control.klass = TrafficClass::kControl;
  sender->SendPacket(std::move(control));
  net.Run(Seconds(3));
  EXPECT_EQ(agent->stats().control_packets_received, 1u);
  EXPECT_GT(agent->stats().attack_packets_sent, 0u);
}

TEST(C2Test, AttackerMasterAgentChainAmplifies) {
  SmallWorld world(7);
  ScenarioParams params;
  params.master_count = 2;
  params.agents_per_master = 5;
  params.reflector_count = 4;
  params.client_count = 2;
  params.directive.type = AttackType::kDirectFlood;
  params.directive.rate_pps = 50.0;
  params.directive.duration = Seconds(1);
  Scenario scenario = BuildAttackScenario(world.net, world.topo, params);

  scenario.attacker->Launch();
  world.net.Run(Seconds(3));

  EXPECT_EQ(scenario.attacker->control_packets_sent(), 2u);
  std::uint64_t relayed = 0;
  for (const MasterHost* master : scenario.masters) {
    relayed += master->commands_relayed();
  }
  EXPECT_EQ(relayed, 10u);
  // 2 control packets unleashed ~50 pps x 10 agents x 1 s.
  EXPECT_GT(scenario.AttackPacketsSent(), 300u);
}

TEST(ScenarioTest, ReflectorAttackFloodsVictimWithReflectedTraffic) {
  SmallWorld world(11);
  ScenarioParams params;
  params.master_count = 2;
  params.agents_per_master = 8;
  params.reflector_count = 10;
  params.client_count = 2;
  params.directive.type = AttackType::kReflector;
  params.directive.reflector_proto = Protocol::kTcp;
  params.directive.rate_pps = 100.0;
  params.directive.duration = Seconds(2);
  Scenario scenario = BuildAttackScenario(world.net, world.topo, params);

  scenario.attacker->Launch();
  world.net.Run(Seconds(4));

  // The victim receives reflected SYN-ACKs from innocent servers.
  const auto& metrics = world.net.metrics();
  EXPECT_GT(metrics.delivered(TrafficClass::kReflected), 100u);
  // Reflectors got the spoofed SYNs (attack class reached them).
  std::uint64_t reflector_hits = 0;
  for (const Server* reflector : scenario.reflectors) {
    reflector_hits += reflector->stats().requests_received;
  }
  EXPECT_GT(reflector_hits, 500u);
  // And crucially: the attack packets carried the victim's address.
  EXPECT_GT(metrics.sent(TrafficClass::kAttack), 500u);
}

TEST(ScenarioTest, TeardownAttackKillsSessions) {
  SmallWorld world(13);
  // One session host talking to a server, plus a teardown agent.
  const NodeId server_node = world.topo.stub_nodes[0];
  const NodeId client_node = world.topo.stub_nodes[1];
  const NodeId agent_node = world.topo.stub_nodes[2];
  auto* server = SpawnHost<Server>(world.net, server_node, FastLink());
  SessionHostConfig session_config;
  session_config.server = server->address();
  session_config.session_count = 16;
  auto* sessions =
      SpawnHost<SessionHost>(world.net, client_node, FastLink(),
                             session_config);
  AttackDirective directive;
  directive.type = AttackType::kTeardown;
  directive.teardown_targets = {sessions->address()};
  directive.teardown_claimed_server = server->address();
  directive.teardown_port_base = 20000;
  directive.teardown_port_range = 16;
  directive.rate_pps = 50.0;
  directive.duration = Seconds(3);
  auto* agent =
      SpawnHost<AgentHost>(world.net, agent_node, FastLink(), directive);

  sessions->Start();
  agent->StartFlood();
  world.net.Run(Seconds(5));

  EXPECT_LT(sessions->alive_sessions(), 4u);
  EXPECT_GT(sessions->stats().teardowns_accepted, 12u);
}

TEST(ScenarioTest, ClientsHealthyWithoutAttack) {
  SmallWorld world(17);
  ScenarioParams params;
  params.client_count = 5;
  params.client_request_rate = 10.0;
  params.master_count = 1;
  params.agents_per_master = 1;
  params.reflector_count = 2;
  Scenario scenario = BuildAttackScenario(world.net, world.topo, params);
  world.net.Run(Seconds(3));
  EXPECT_GT(scenario.ClientSuccessRatio(), 0.95);
  EXPECT_GT(scenario.ClientMeanLatencyMs(), 0.0);
}

TEST(ScenarioTest, DirectSynFloodDegradesVictim) {
  SmallWorld world(19);
  ScenarioParams params;
  params.master_count = 3;
  params.agents_per_master = 10;
  params.client_count = 5;
  params.reflector_count = 2;
  params.victim_config.conn_table_size = 256;
  params.victim_config.syn_timeout = Seconds(3);
  params.directive.type = AttackType::kDirectFlood;
  params.directive.flood_proto = Protocol::kTcp;
  params.directive.spoof = SpoofMode::kRandom;
  params.directive.rate_pps = 200.0;
  params.directive.duration = Seconds(4);
  Scenario scenario = BuildAttackScenario(world.net, world.topo, params);

  // Health check before attack.
  world.net.Run(Seconds(1));
  scenario.attacker->Launch();
  world.net.Run(Seconds(5));

  EXPECT_LT(scenario.ClientSuccessRatio(), 0.8);
  EXPECT_GT(scenario.victim->stats().denied_conn_table +
                scenario.victim->stats().denied_cpu,
            100u);
}

}  // namespace
}  // namespace adtc
