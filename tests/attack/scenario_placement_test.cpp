#include <gtest/gtest.h>

#include <algorithm>

#include "attack/scenario.h"
#include "core/modules/rate_limit.h"
#include "testutil.h"

namespace adtc {
namespace {

using testing::SmallWorld;

TEST(ScenarioPlacementTest, AgentsNeverShareAsWithVictimOrClients) {
  for (std::uint64_t seed : {1ULL, 7ULL, 42ULL, 1000ULL}) {
    SmallWorld world(seed, 4, 40);
    ScenarioParams params;
    params.master_count = 3;
    params.agents_per_master = 8;
    params.client_count = 8;
    params.reflector_count = 6;
    Scenario scenario = BuildAttackScenario(world.net, world.topo, params);

    std::vector<NodeId> protected_nodes;
    protected_nodes.push_back(scenario.victim_node);
    for (HostId host : scenario.client_hosts) {
      protected_nodes.push_back(world.net.host_node(host));
    }
    for (HostId host : scenario.agent_hosts) {
      const NodeId agent_node = world.net.host_node(host);
      EXPECT_EQ(std::count(protected_nodes.begin(), protected_nodes.end(),
                           agent_node),
                0)
          << "agent in protected AS " << agent_node << " (seed " << seed
          << ")";
    }
  }
}

TEST(ScenarioPlacementTest, AttackerAndMastersAlsoAvoidProtectedAses) {
  SmallWorld world(5, 4, 40);
  ScenarioParams params;
  params.client_count = 8;
  Scenario scenario = BuildAttackScenario(world.net, world.topo, params);
  std::vector<NodeId> protected_nodes{scenario.victim_node};
  for (HostId host : scenario.client_hosts) {
    protected_nodes.push_back(world.net.host_node(host));
  }
  const NodeId attacker_node =
      world.net.host_node(scenario.attacker->id());
  EXPECT_EQ(std::count(protected_nodes.begin(), protected_nodes.end(),
                       attacker_node),
            0);
}

// --- RateLimitModule bounded tracking (the spoofed-flood defence) -----------

TEST(RateLimitTrackingTest, FreshSpoofedPrefixesShareAggregateWhenTableFull) {
  RateLimitModule module(/*rate_pps=*/10.0, /*burst=*/2.0,
                         RateLimitModule::Granularity::kPerSrcPrefix);
  module.set_max_tracked_prefixes(4);
  DeviceContext ctx;
  ctx.now = Seconds(1);

  // Four distinct tracked sources each get their own burst.
  for (std::uint32_t node = 0; node < 4; ++node) {
    Packet p;
    p.src = HostAddress(node, 1);
    p.dst = HostAddress(99, 1);
    EXPECT_EQ(module.OnPacket(p, ctx), kPortDefault) << node;
  }
  // Every further *new* prefix shares the aggregate bucket: its 2-token
  // burst exhausts after 2 packets no matter how many fresh sources show
  // up — a random-spoofed flood cannot farm fresh buckets.
  int passed = 0;
  for (std::uint32_t node = 100; node < 150; ++node) {
    Packet p;
    p.src = HostAddress(node, 1);
    p.dst = HostAddress(99, 1);
    passed += module.OnPacket(p, ctx) == kPortDefault ? 1 : 0;
  }
  EXPECT_EQ(passed, 2);
}

TEST(RateLimitTrackingTest, ReconfigureClampsExistingBuckets) {
  RateLimitModule module(1e12, 1e12,
                         RateLimitModule::Granularity::kPerSrcPrefix);
  DeviceContext ctx;
  ctx.now = Seconds(1);
  Packet p;
  p.src = HostAddress(1, 1);
  p.dst = HostAddress(2, 1);
  // Prime the bucket with an astronomic token count.
  EXPECT_EQ(module.OnPacket(p, ctx), kPortDefault);
  module.Reconfigure(10.0, 2.0);
  // Tightening takes effect immediately: only ~2 tokens remain.
  int passed = 0;
  for (int i = 0; i < 20; ++i) {
    Packet q = p;
    passed += module.OnPacket(q, ctx) == kPortDefault ? 1 : 0;
  }
  EXPECT_LE(passed, 2);
}

// --- routers as reflectors (Sec. 2.2) ----------------------------------------

class SinkHost : public Host {
 public:
  void HandlePacket(Packet&& packet) override {
    received.push_back(std::move(packet));
  }
  std::vector<Packet> received;
};

TEST(RouterReflectorTest, IcmpErrorsReflectToSpoofedVictim) {
  // "Some prominent examples [of reflectors] are ... routers. They return
  //  ... ICMP time exceeded or ICMP host unreachable messages upon
  //  certain IP packets."
  SmallWorld world(9);
  world.net.set_icmp_errors_enabled(true);
  const LinkParams access{GigabitsPerSecond(1), Milliseconds(1),
                          1024 * 1024};
  auto* victim = SpawnHost<SinkHost>(world.net, world.topo.stub_nodes[0],
                                     access);
  auto* agent = SpawnHost<SinkHost>(world.net, world.topo.stub_nodes[7],
                                    access);

  // The agent sends packets to nonexistent hosts with the victim's
  // address spoofed as source; routers reply to the victim.
  for (int i = 0; i < 5; ++i) {
    Packet probe = agent->MakePacket(
        HostAddress(world.topo.stub_nodes[11], 200 + i), Protocol::kUdp,
        64);
    probe.src = victim->address();
    probe.spoofed_src = true;
    probe.klass = TrafficClass::kAttack;
    agent->SendPacket(std::move(probe));
  }
  world.net.Run(Seconds(1));
  ASSERT_FALSE(victim->received.empty());
  for (const Packet& packet : victim->received) {
    EXPECT_EQ(packet.proto, Protocol::kIcmp);
    EXPECT_EQ(packet.icmp, IcmpType::kDestUnreachable);
    EXPECT_EQ(packet.klass, TrafficClass::kReflected);
    // The "reflector" is infrastructure: a router interface address.
    EXPECT_EQ(AddressSlot(packet.src), kHostsPerNode + 1);
  }
}

}  // namespace
}  // namespace adtc
