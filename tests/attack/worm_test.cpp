#include "attack/worm.h"

#include <gtest/gtest.h>

#include "host/server.h"
#include "testutil.h"

namespace adtc {
namespace {

using testing::SmallWorld;

LinkParams FastLink() {
  return LinkParams{GigabitsPerSecond(1), Milliseconds(1), 1024 * 1024};
}

TEST(WormTest, PatientZeroInfectsAndScans) {
  SmallWorld world(7);
  WormOutbreak outbreak(world.net, WormParams{20.0, 8, 404});
  outbreak.SeedPopulation(world.topo.stub_nodes, 40, FastLink());
  ASSERT_GT(outbreak.population(), 20u);
  outbreak.ReleaseWorm();
  EXPECT_EQ(outbreak.infected_count(), 1u);
  world.net.Run(Seconds(2));
  EXPECT_GT(outbreak.hosts().front()->probes_sent(), 10u);
}

TEST(WormTest, EpidemicSpreads) {
  SmallWorld world(11, 4, 40);
  WormOutbreak outbreak(world.net, WormParams{50.0, 4, 404});
  // Dense population: 3 hosts per stub in the low slots.
  outbreak.SeedPopulation(world.topo.stub_nodes, 120, FastLink());
  outbreak.ReleaseWorm();
  world.net.Run(Seconds(60));
  // At 50 probes/s over 44 nodes x 4 slots = 176 addresses with ~120
  // vulnerable, the epidemic saturates comfortably within a minute.
  EXPECT_GT(outbreak.infected_count(), outbreak.population() / 2);
  // The curve is monotone non-decreasing.
  const auto& curve = outbreak.infection_curve();
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].first, curve[i - 1].first);
    EXPECT_EQ(curve[i].second, curve[i - 1].second + 1);
  }
}

TEST(WormTest, EpidemicIsExponentialEarly) {
  SmallWorld world(13, 4, 40);
  WormOutbreak outbreak(world.net, WormParams{50.0, 4, 404});
  outbreak.SeedPopulation(world.topo.stub_nodes, 120, FastLink());
  outbreak.ReleaseWorm();
  world.net.Run(Seconds(120));
  const auto& curve = outbreak.infection_curve();
  ASSERT_GT(curve.size(), 20u);
  // Doubling time shrinks or stays similar while the susceptible pool is
  // large: time to go 2->4 should not be much smaller than 16->32
  // (i.e. growth is at least exponential-ish early on). We check the
  // weaker, robust property: the second half of infections happens
  // faster than the first half.
  const SimTime half_time = curve[curve.size() / 2].first;
  const SimTime full_time = curve.back().first;
  EXPECT_LT(full_time - half_time, half_time - curve.front().first + Seconds(1));
}

TEST(WormTest, InfectedHostsCanBeArmedAsAgents) {
  SmallWorld world(17, 4, 40);
  auto* victim = SpawnHost<Server>(world.net, world.topo.stub_nodes[0],
                                   FastLink());
  WormOutbreak outbreak(world.net, WormParams{50.0, 4, 404});
  outbreak.SeedPopulation(world.topo.stub_nodes, 100, FastLink());
  outbreak.ReleaseWorm();
  world.net.Run(Seconds(60));
  ASSERT_GT(outbreak.infected_count(), 10u);

  AttackDirective directive;
  directive.type = AttackType::kDirectFlood;
  directive.victim = victim->address();
  directive.flood_proto = Protocol::kUdp;
  directive.spoof = SpoofMode::kNone;
  directive.rate_pps = 20.0;
  directive.duration = Seconds(3);
  const std::size_t armed = outbreak.ArmInfected(directive);
  EXPECT_EQ(armed, outbreak.infected_count());

  const auto before = world.net.metrics().sent(TrafficClass::kAttack);
  world.net.Run(Seconds(5));
  const auto after = world.net.metrics().sent(TrafficClass::kAttack);
  // Tens of agents at 20 pps for 3 s: thousands of attack packets on top
  // of the scan noise.
  EXPECT_GT(after - before, armed * 20u);
}

TEST(WormTest, UninfectedHostsStayClean) {
  SmallWorld world(19);
  WormOutbreak outbreak(world.net, WormParams{10.0, 8, 404});
  outbreak.SeedPopulation(world.topo.stub_nodes, 20, FastLink());
  // No release: nothing happens.
  world.net.Run(Seconds(10));
  EXPECT_EQ(outbreak.infected_count(), 0u);
  EXPECT_EQ(world.net.metrics().sent(TrafficClass::kAttack), 0u);
}

}  // namespace
}  // namespace adtc
