#include "common/sha256.h"

#include <gtest/gtest.h>

#include <string>

namespace adtc {
namespace {

// FIPS 180-4 / NIST CAVP reference vectors.
TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(Sha256::ToHex(Sha256::Hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(Sha256::ToHex(Sha256::Hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(Sha256::ToHex(Sha256::Hash(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 hasher;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) hasher.Update(chunk);
  EXPECT_EQ(Sha256::ToHex(hasher.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  const std::string message =
      "The quick brown fox jumps over the lazy dog, repeatedly and with "
      "increasing enthusiasm, until the message spans several blocks.";
  const auto oneshot = Sha256::Hash(message);
  for (std::size_t split = 0; split <= message.size(); split += 7) {
    Sha256 hasher;
    hasher.Update(std::string_view(message).substr(0, split));
    hasher.Update(std::string_view(message).substr(split));
    EXPECT_EQ(hasher.Finish(), oneshot) << "split at " << split;
  }
}

TEST(Sha256Test, ExactBlockBoundary) {
  // 55, 56, 63, 64, 65 bytes cross the padding boundary cases.
  const char* expected_55 =
      "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318";
  EXPECT_EQ(Sha256::ToHex(Sha256::Hash(std::string(55, 'a'))), expected_55);
  // Sanity: neighbours differ.
  EXPECT_NE(Sha256::ToHex(Sha256::Hash(std::string(56, 'a'))), expected_55);
  EXPECT_NE(Sha256::ToHex(Sha256::Hash(std::string(64, 'a'))),
            Sha256::ToHex(Sha256::Hash(std::string(65, 'a'))));
}

TEST(Sha256Test, ResetAllowsReuse) {
  Sha256 hasher;
  hasher.Update("first");
  (void)hasher.Finish();
  hasher.Reset();
  hasher.Update("abc");
  EXPECT_EQ(Sha256::ToHex(hasher.Finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, DistinctInputsDistinctDigests) {
  EXPECT_NE(Sha256::Hash("a"), Sha256::Hash("b"));
  EXPECT_NE(Sha256::Hash("abc"), Sha256::Hash("abd"));
}

}  // namespace
}  // namespace adtc
