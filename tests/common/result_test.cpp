#include "common/result.h"

#include <gtest/gtest.h>

namespace adtc {
namespace {

TEST(StatusTest, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kOk);
  EXPECT_EQ(status.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status status = PermissionDenied("not yours");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kPermissionDenied);
  EXPECT_EQ(status.message(), "not yours");
  EXPECT_EQ(status.ToString(), "permission_denied: not yours");
}

TEST(StatusTest, AllHelpersProduceMatchingCodes) {
  EXPECT_EQ(InvalidArgument("x").code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(NotFound("x").code(), ErrorCode::kNotFound);
  EXPECT_EQ(SafetyViolation("x").code(), ErrorCode::kSafetyViolation);
  EXPECT_EQ(Unavailable("x").code(), ErrorCode::kUnavailable);
  EXPECT_EQ(AlreadyExists("x").code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(ResourceExhausted("x").code(), ErrorCode::kResourceExhausted);
  EXPECT_EQ(InternalError("x").code(), ErrorCode::kInternal);
}

TEST(StatusTest, ErrorCodeNamesAreStable) {
  EXPECT_EQ(ErrorCodeName(ErrorCode::kOk), "ok");
  EXPECT_EQ(ErrorCodeName(ErrorCode::kSafetyViolation), "safety_violation");
  EXPECT_EQ(ErrorCodeName(ErrorCode::kUnavailable), "unavailable");
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(result.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result(NotFound("missing"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(result.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("payload"));
  ASSERT_TRUE(result.ok());
  const std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

}  // namespace
}  // namespace adtc
