#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace adtc {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += a.Next() == b.Next() ? 1 : 0;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBelow(bound), bound);
    }
  }
}

TEST(RngTest, NextBelowOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(RngTest, NextInRangeInclusiveBounds) {
  Rng rng(99);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit over 1000 draws
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextBoolExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(RngTest, NextBoolApproximatesProbability) {
  Rng rng(11);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.NextBool(0.3) ? 1 : 0;
  const double rate = static_cast<double>(hits) / trials;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.1);
}

TEST(RngTest, ParetoRespectsScale) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.NextPareto(3.0, 1.5), 3.0);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.Fork();
  // The child must not replay the parent's stream.
  Rng parent_copy(21);
  (void)parent_copy.Next();  // advance past the Fork draw
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += child.Next() == parent_copy.Next() ? 1 : 0;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformBitsPassCoarseChiSquare) {
  // 16 buckets over the top 4 bits; chi-square should be sane.
  Rng rng(31);
  std::vector<int> buckets(16, 0);
  const int n = 160000;
  for (int i = 0; i < n; ++i) buckets[rng.Next() >> 60]++;
  double chi2 = 0.0;
  const double expected = n / 16.0;
  for (int count : buckets) {
    const double d = count - expected;
    chi2 += d * d / expected;
  }
  // 15 dof: 99.9th percentile ~ 37.7.
  EXPECT_LT(chi2, 37.7);
}

}  // namespace
}  // namespace adtc
