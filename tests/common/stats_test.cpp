#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace adtc {
namespace {

TEST(SummaryStatsTest, BasicMoments) {
  SummaryStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.Add(x);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(SummaryStatsTest, EmptyIsZero) {
  SummaryStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(SummaryStatsTest, MergeMatchesCombinedStream) {
  SummaryStats a, b, combined;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0;
    (i % 2 == 0 ? a : b).Add(x);
    combined.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.mean(), combined.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), combined.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
}

TEST(SummaryStatsTest, MergeWithEmpty) {
  SummaryStats a, empty;
  a.Add(1.0);
  a.Add(3.0);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  SummaryStats target;
  target.Merge(a);
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.mean(), 2.0);
}

TEST(SummaryStatsTest, MergeEmptyWithEmptyStaysEmpty) {
  SummaryStats a, b;
  a.Merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.variance(), 0.0);
  EXPECT_EQ(a.min(), 0.0);
  EXPECT_EQ(a.max(), 0.0);
  // Still usable after the empty merge: sentinels must not have leaked
  // into the observable state.
  a.Add(7.0);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.min(), 7.0);
  EXPECT_DOUBLE_EQ(a.max(), 7.0);
}

TEST(SummaryStatsTest, MergeIntoEmptyCopiesAllMoments) {
  SummaryStats src;
  for (double x : {1.0, 2.0, 3.0, 10.0}) src.Add(x);
  SummaryStats dst;
  dst.Merge(src);
  EXPECT_EQ(dst.count(), src.count());
  EXPECT_DOUBLE_EQ(dst.mean(), src.mean());
  EXPECT_DOUBLE_EQ(dst.variance(), src.variance());
  EXPECT_DOUBLE_EQ(dst.min(), 1.0);
  EXPECT_DOUBLE_EQ(dst.max(), 10.0);
}

TEST(HistogramTest, BucketsAndPercentiles) {
  Histogram hist(0.0, 100.0, 10);
  for (int i = 0; i < 100; ++i) hist.Add(i + 0.5);
  EXPECT_EQ(hist.total(), 100u);
  EXPECT_NEAR(hist.Percentile(0.5), 50.0, 1.5);
  EXPECT_NEAR(hist.Percentile(0.9), 90.0, 1.5);
  EXPECT_NEAR(hist.Percentile(0.99), 99.0, 1.5);
}

TEST(HistogramTest, UnderflowOverflow) {
  Histogram hist(0.0, 10.0, 10);
  hist.Add(-5.0);
  hist.Add(15.0);
  hist.Add(5.0);
  EXPECT_EQ(hist.underflow(), 1u);
  EXPECT_EQ(hist.overflow(), 1u);
  EXPECT_EQ(hist.total(), 3u);
}

TEST(HistogramTest, EmptyPercentileIsLowerBound) {
  Histogram hist(2.0, 10.0, 4);
  EXPECT_DOUBLE_EQ(hist.Percentile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(hist.Percentile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(hist.Percentile(1.0), 2.0);
}

TEST(HistogramTest, AllUnderflowPercentileIsLowerBound) {
  Histogram hist(10.0, 20.0, 5);
  hist.Add(1.0);
  hist.Add(-3.0);
  EXPECT_EQ(hist.underflow(), 2u);
  EXPECT_DOUBLE_EQ(hist.Percentile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(hist.Percentile(1.0), 10.0);
}

TEST(HistogramTest, AllOverflowPercentileIsUpperBound) {
  Histogram hist(0.0, 10.0, 5);
  hist.Add(50.0);
  hist.Add(60.0);
  EXPECT_EQ(hist.overflow(), 2u);
  EXPECT_DOUBLE_EQ(hist.Percentile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(hist.Percentile(1.0), 10.0);
  // fraction 0 targets zero samples, which is satisfied before any bucket
  EXPECT_DOUBLE_EQ(hist.Percentile(0.0), 0.0);
}

TEST(HistogramTest, PercentileFractionExtremesAndClamping) {
  Histogram hist(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) hist.Add(i + 0.5);
  EXPECT_DOUBLE_EQ(hist.Percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(hist.Percentile(1.0), 10.0);
  // Out-of-range fractions clamp rather than extrapolate.
  EXPECT_DOUBLE_EQ(hist.Percentile(-0.5), hist.Percentile(0.0));
  EXPECT_DOUBLE_EQ(hist.Percentile(1.5), hist.Percentile(1.0));
}

TEST(EwmaTest, FirstSampleInitialises) {
  Ewma ewma(0.5);
  EXPECT_FALSE(ewma.initialised());
  ewma.Add(10.0);
  EXPECT_TRUE(ewma.initialised());
  EXPECT_DOUBLE_EQ(ewma.value(), 10.0);
}

TEST(EwmaTest, ConvergesTowardConstant) {
  Ewma ewma(0.25);
  ewma.Add(0.0);
  for (int i = 0; i < 50; ++i) ewma.Add(100.0);
  EXPECT_NEAR(ewma.value(), 100.0, 0.01);
}

TEST(EwmaTest, ResetClears) {
  Ewma ewma(0.5);
  ewma.Add(5.0);
  ewma.Reset();
  EXPECT_FALSE(ewma.initialised());
  EXPECT_DOUBLE_EQ(ewma.value(), 0.0);
}

}  // namespace
}  // namespace adtc
