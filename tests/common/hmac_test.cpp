#include "common/hmac.h"

#include <gtest/gtest.h>

#include <vector>

namespace adtc {
namespace {

std::string Hex(const Sha256::Digest& digest) {
  return Sha256::ToHex(digest);
}

// RFC 4231 test vectors.
TEST(HmacTest, Rfc4231Case1) {
  const std::vector<std::uint8_t> key(20, 0x0b);
  EXPECT_EQ(
      Hex(HmacSha256(std::span<const std::uint8_t>(key.data(), key.size()),
                     std::span<const std::uint8_t>(
                         reinterpret_cast<const std::uint8_t*>("Hi There"),
                         8))),
      "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  EXPECT_EQ(Hex(HmacSha256("Jefe", "what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Case3) {
  const std::vector<std::uint8_t> key(20, 0xaa);
  const std::vector<std::uint8_t> data(50, 0xdd);
  EXPECT_EQ(
      Hex(HmacSha256(std::span<const std::uint8_t>(key.data(), key.size()),
                     std::span<const std::uint8_t>(data.data(), data.size()))),
      "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacTest, Rfc4231LongKey) {
  // Case 6: 131-byte key (forces key hashing).
  const std::vector<std::uint8_t> key(131, 0xaa);
  EXPECT_EQ(
      Hex(HmacSha256(
          std::span<const std::uint8_t>(key.data(), key.size()),
          std::span<const std::uint8_t>(
              reinterpret_cast<const std::uint8_t*>(
                  "Test Using Larger Than Block-Size Key - Hash Key First"),
              54))),
      "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, KeyMattersMessageMatters) {
  EXPECT_NE(HmacSha256("key1", "msg"), HmacSha256("key2", "msg"));
  EXPECT_NE(HmacSha256("key", "msg1"), HmacSha256("key", "msg2"));
}

TEST(HmacTest, DigestEqualsConstantTimeSemantics) {
  const auto a = HmacSha256("k", "m");
  auto b = a;
  EXPECT_TRUE(DigestEquals(a, b));
  b[31] ^= 1;
  EXPECT_FALSE(DigestEquals(a, b));
  b[31] ^= 1;
  b[0] ^= 0x80;
  EXPECT_FALSE(DigestEquals(a, b));
}

}  // namespace
}  // namespace adtc
