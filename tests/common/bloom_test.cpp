#include "common/bloom.h"

#include <gtest/gtest.h>

namespace adtc {
namespace {

TEST(BloomTest, NoFalseNegatives) {
  BloomFilter bloom(1000, 0.01);
  for (std::uint64_t key = 0; key < 1000; ++key) {
    bloom.Insert(key * 7919);
  }
  for (std::uint64_t key = 0; key < 1000; ++key) {
    EXPECT_TRUE(bloom.MayContain(key * 7919));
  }
}

TEST(BloomTest, FalsePositiveRateNearTarget) {
  BloomFilter bloom(10000, 0.01);
  for (std::uint64_t key = 0; key < 10000; ++key) {
    bloom.Insert(key);
  }
  std::uint64_t false_positives = 0;
  const std::uint64_t probes = 100000;
  for (std::uint64_t key = 1'000'000; key < 1'000'000 + probes; ++key) {
    false_positives += bloom.MayContain(key) ? 1 : 0;
  }
  const double rate = static_cast<double>(false_positives) / probes;
  EXPECT_LT(rate, 0.03);  // target 0.01, generous margin
  EXPECT_NEAR(bloom.EstimatedFalsePositiveRate(), 0.01, 0.01);
}

TEST(BloomTest, EmptyFilterContainsNothing) {
  BloomFilter bloom(100, 0.01);
  int hits = 0;
  for (std::uint64_t key = 0; key < 1000; ++key) {
    hits += bloom.MayContain(key) ? 1 : 0;
  }
  EXPECT_EQ(hits, 0);
}

TEST(BloomTest, ClearResets) {
  BloomFilter bloom(100, 0.01);
  bloom.Insert(42);
  EXPECT_TRUE(bloom.MayContain(42));
  bloom.Clear();
  EXPECT_FALSE(bloom.MayContain(42));
  EXPECT_EQ(bloom.inserted(), 0u);
}

TEST(BloomTest, SizingMonotonicInTargetRate) {
  BloomFilter loose(1000, 0.1);
  BloomFilter tight(1000, 0.001);
  EXPECT_GT(tight.bit_count(), loose.bit_count());
  EXPECT_GE(tight.hash_count(), loose.hash_count());
}

TEST(BloomTest, DegenerateParamsClamped) {
  BloomFilter bloom(0, 2.0);  // clamped to >=1 item, rate <= 0.5
  bloom.Insert(1);
  EXPECT_TRUE(bloom.MayContain(1));
  EXPECT_GE(bloom.bit_count(), 64u);
}

TEST(Mix64Test, MixesLowBitsIntoHighBits) {
  // Consecutive inputs should produce well-spread outputs.
  std::uint64_t previous = Mix64(0);
  int high_bits_changed = 0;
  for (std::uint64_t i = 1; i < 100; ++i) {
    const std::uint64_t mixed = Mix64(i);
    high_bits_changed += ((mixed ^ previous) >> 32) != 0 ? 1 : 0;
    previous = mixed;
  }
  EXPECT_GT(high_bits_changed, 95);
}

}  // namespace
}  // namespace adtc
