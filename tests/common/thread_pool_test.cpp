#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace adtc {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { counter++; }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto future = pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, DefaultsToAtLeastOneThread) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ParallelForTest, CoversAllIndicesExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(1000, [&hits](std::size_t i) { hits[i]++; });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ParallelForTest, ZeroCountIsNoop) {
  bool ran = false;
  ParallelFor(0, [&ran](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelForTest, SingleThreadFallback) {
  std::vector<int> order;
  ParallelFor(10, [&order](std::size_t i) { order.push_back(static_cast<int>(i)); },
              /*max_threads=*/1);
  // Sequential fallback preserves order.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelForTest, PropagatesFirstException) {
  EXPECT_THROW(
      ParallelFor(100,
                  [](std::size_t i) {
                    if (i == 37) throw std::logic_error("bad index");
                  },
                  4),
      std::logic_error);
}

TEST(ParallelForTest, ResultMatchesSequential) {
  // Monte-Carlo-style accumulation: parallel partial sums equal serial.
  std::vector<double> parallel_out(64, 0.0);
  ParallelFor(64, [&parallel_out](std::size_t i) {
    double acc = 0.0;
    for (int k = 0; k < 1000; ++k) acc += (i + 1) * 0.001;
    parallel_out[i] = acc;
  });
  for (std::size_t i = 0; i < 64; ++i) {
    double acc = 0.0;
    for (int k = 0; k < 1000; ++k) acc += (i + 1) * 0.001;
    EXPECT_DOUBLE_EQ(parallel_out[i], acc);
  }
}

}  // namespace
}  // namespace adtc
