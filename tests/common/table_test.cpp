#include "common/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace adtc {
namespace {

TEST(TableTest, RendersHeaderAndRows) {
  Table table("demo");
  table.SetHeader({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"beta", "22"});
  std::ostringstream out;
  table.Print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("=== demo ==="), std::string::npos);
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("22"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TableTest, NumFormatting) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Num(3.14159, 4), "3.1416");
  EXPECT_EQ(Table::Int(-42), "-42");
  EXPECT_EQ(Table::Pct(0.1234, 1), "12.3%");
  EXPECT_EQ(Table::Pct(1.0, 0), "100%");
}

TEST(TableTest, ColumnsAlign) {
  Table table;
  table.SetHeader({"a", "long-header"});
  table.AddRow({"longer-cell", "x"});
  std::ostringstream out;
  table.Print(out);
  // Every printed row has the same length (aligned columns).
  std::istringstream lines(out.str());
  std::string line;
  std::size_t width = 0;
  int rows = 0;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] != '|') continue;
    if (line[1] == '-') continue;  // rule line has its own format
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
    ++rows;
  }
  EXPECT_EQ(rows, 2);
}

TEST(TableTest, ShortRowsPadded) {
  Table table;
  table.SetHeader({"a", "b", "c"});
  table.AddRow({"only-one"});
  std::ostringstream out;
  table.Print(out);  // must not crash, missing cells empty
  EXPECT_NE(out.str().find("only-one"), std::string::npos);
}

}  // namespace
}  // namespace adtc
