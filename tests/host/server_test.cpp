#include "host/server.h"

#include <gtest/gtest.h>

#include "host/client.h"

namespace adtc {
namespace {

LinkParams FastLink() {
  return LinkParams{GigabitsPerSecond(1), Milliseconds(1), 1024 * 1024};
}

struct ServerWorld {
  Network net{42};
  NodeId a, b;
  Server* server;

  explicit ServerWorld(ServerConfig config = {}) {
    a = net.AddNode(NodeRole::kStub);
    b = net.AddNode(NodeRole::kStub);
    net.Connect(a, b, FastLink(), LinkKind::kPeer);
    server = SpawnHost<Server>(net, b, FastLink(), config);
    net.FinalizeRouting();
  }
};

class ProbeHost : public Host {
 public:
  void HandlePacket(Packet&& packet) override {
    received.push_back(std::move(packet));
  }
  std::vector<Packet> received;
};

TEST(ServerTest, SynGetsSynAck) {
  ServerWorld world;
  auto* probe = SpawnHost<ProbeHost>(world.net, world.a, FastLink());
  Packet syn = probe->MakePacket(world.server->address(), Protocol::kTcp, 40);
  syn.tcp_flags = tcp::kSyn;
  syn.dst_port = 80;
  syn.src_port = 5555;
  probe->SendPacket(std::move(syn));
  world.net.Run(Seconds(1));
  ASSERT_EQ(probe->received.size(), 1u);
  EXPECT_EQ(probe->received[0].tcp_flags, tcp::kSyn | tcp::kAck);
  EXPECT_EQ(probe->received[0].src, world.server->address());
  EXPECT_EQ(probe->received[0].dst_port, 5555);
  EXPECT_EQ(world.server->half_open_count(), 1u);
}

TEST(ServerTest, AckCompletesHandshakeAndFreesSlot) {
  ServerWorld world;
  auto* probe = SpawnHost<ProbeHost>(world.net, world.a, FastLink());
  Packet syn = probe->MakePacket(world.server->address(), Protocol::kTcp, 40);
  syn.tcp_flags = tcp::kSyn;
  syn.src_port = 5555;
  probe->SendPacket(std::move(syn));
  world.net.Run(Milliseconds(100));
  Packet ack = probe->MakePacket(world.server->address(), Protocol::kTcp, 40);
  ack.tcp_flags = tcp::kAck;
  ack.src_port = 5555;
  probe->SendPacket(std::move(ack));
  world.net.Run(Seconds(1));
  EXPECT_EQ(world.server->half_open_count(), 0u);
  EXPECT_EQ(world.server->stats().handshakes_completed, 1u);
}

TEST(ServerTest, ConnectionTableFillsUnderSynFlood) {
  ServerConfig config;
  config.conn_table_size = 16;
  config.syn_timeout = Seconds(30);  // no expiry within the test
  ServerWorld world(config);
  auto* probe = SpawnHost<ProbeHost>(world.net, world.a, FastLink());
  for (int i = 0; i < 50; ++i) {
    Packet syn =
        probe->MakePacket(world.server->address(), Protocol::kTcp, 40);
    syn.tcp_flags = tcp::kSyn;
    syn.src_port = static_cast<std::uint16_t>(1000 + i);
    probe->SendPacket(std::move(syn));
  }
  world.net.Run(Seconds(1));
  EXPECT_EQ(world.server->half_open_count(), 16u);
  EXPECT_EQ(world.server->stats().denied_conn_table, 34u);
}

TEST(ServerTest, HalfOpenEntriesExpire) {
  ServerConfig config;
  config.conn_table_size = 16;
  config.syn_timeout = Milliseconds(500);
  ServerWorld world(config);
  auto* probe = SpawnHost<ProbeHost>(world.net, world.a, FastLink());
  Packet syn = probe->MakePacket(world.server->address(), Protocol::kTcp, 40);
  syn.tcp_flags = tcp::kSyn;
  syn.src_port = 1000;
  probe->SendPacket(std::move(syn));
  world.net.Run(Seconds(2));
  // Expiry is lazy (on the next SYN); send one more to trigger it.
  Packet second =
      probe->MakePacket(world.server->address(), Protocol::kTcp, 40);
  second.tcp_flags = tcp::kSyn;
  second.src_port = 1001;
  probe->SendPacket(std::move(second));
  world.net.Run(Seconds(1));
  EXPECT_EQ(world.server->half_open_count(), 1u);  // only the fresh one
  EXPECT_EQ(world.server->stats().half_open_timeouts, 1u);
}

TEST(ServerTest, RstOnUnknownTcpSegment) {
  ServerWorld world;
  auto* probe = SpawnHost<ProbeHost>(world.net, world.a, FastLink());
  Packet stray = probe->MakePacket(world.server->address(), Protocol::kTcp,
                                   40);
  stray.tcp_flags = tcp::kFin;
  stray.src_port = 7777;
  probe->SendPacket(std::move(stray));
  world.net.Run(Seconds(1));
  ASSERT_EQ(probe->received.size(), 1u);
  EXPECT_EQ(probe->received[0].tcp_flags, tcp::kRst);
  EXPECT_EQ(world.server->stats().rsts_sent, 1u);
}

TEST(ServerTest, UdpServiceRepliesWithConfiguredSize) {
  ServerConfig config;
  config.udp_reply_bytes = 1500;  // DNS-style amplification
  ServerWorld world(config);
  auto* probe = SpawnHost<ProbeHost>(world.net, world.a, FastLink());
  Packet request =
      probe->MakePacket(world.server->address(), Protocol::kUdp, 60);
  request.dst_port = 80;
  request.src_port = 3333;
  probe->SendPacket(std::move(request));
  world.net.Run(Seconds(1));
  ASSERT_EQ(probe->received.size(), 1u);
  EXPECT_EQ(probe->received[0].size_bytes, 1500u);
  EXPECT_EQ(probe->received[0].dst_port, 3333);
}

TEST(ServerTest, UdpToWrongPortIgnored) {
  ServerWorld world;
  auto* probe = SpawnHost<ProbeHost>(world.net, world.a, FastLink());
  Packet request =
      probe->MakePacket(world.server->address(), Protocol::kUdp, 60);
  request.dst_port = 9999;
  probe->SendPacket(std::move(request));
  world.net.Run(Seconds(1));
  EXPECT_TRUE(probe->received.empty());
}

TEST(ServerTest, IcmpEchoReply) {
  ServerWorld world;
  auto* probe = SpawnHost<ProbeHost>(world.net, world.a, FastLink());
  Packet ping =
      probe->MakePacket(world.server->address(), Protocol::kIcmp, 64);
  ping.icmp = IcmpType::kEchoRequest;
  probe->SendPacket(std::move(ping));
  world.net.Run(Seconds(1));
  ASSERT_EQ(probe->received.size(), 1u);
  EXPECT_EQ(probe->received[0].icmp, IcmpType::kEchoReply);
}

TEST(ServerTest, CpuExhaustionDeniesService) {
  ServerConfig config;
  config.cpu_capacity_rps = 10.0;
  config.cpu_burst = 5.0;
  ServerWorld world(config);
  auto* probe = SpawnHost<ProbeHost>(world.net, world.a, FastLink());
  // 100 requests in a burst: only ~5 (burst) + handful (refill) served.
  for (int i = 0; i < 100; ++i) {
    Packet request =
        probe->MakePacket(world.server->address(), Protocol::kUdp, 60);
    request.dst_port = 80;
    request.src_port = static_cast<std::uint16_t>(1000 + i);
    probe->SendPacket(std::move(request));
  }
  world.net.Run(Seconds(1));
  EXPECT_GT(world.server->stats().denied_cpu, 80u);
  EXPECT_LT(probe->received.size(), 20u);
}

TEST(ServerTest, CpuHeadroomDropsUnderLoad) {
  ServerConfig config;
  config.cpu_capacity_rps = 100.0;
  config.cpu_burst = 50.0;
  ServerWorld world(config);
  EXPECT_NEAR(world.server->CpuHeadroom(), 1.0, 1e-9);
  auto* probe = SpawnHost<ProbeHost>(world.net, world.a, FastLink());
  for (int i = 0; i < 200; ++i) {
    Packet request =
        probe->MakePacket(world.server->address(), Protocol::kUdp, 60);
    request.dst_port = 80;
    probe->SendPacket(std::move(request));
  }
  world.net.Run(Milliseconds(50));
  EXPECT_LT(world.server->CpuHeadroom(), 0.2);
}

TEST(ServerTest, ReplyToAttackRequestIsReflectedClass) {
  ServerWorld world;
  auto* probe = SpawnHost<ProbeHost>(world.net, world.a, FastLink());
  Packet attack =
      probe->MakePacket(world.server->address(), Protocol::kTcp, 40);
  attack.tcp_flags = tcp::kSyn;
  attack.klass = TrafficClass::kAttack;
  probe->SendPacket(std::move(attack));
  world.net.Run(Seconds(1));
  ASSERT_EQ(probe->received.size(), 1u);
  EXPECT_EQ(probe->received[0].klass, TrafficClass::kReflected);
}

}  // namespace
}  // namespace adtc
