#include "host/client.h"

#include <gtest/gtest.h>

#include "host/server.h"
#include "host/session.h"

namespace adtc {
namespace {

LinkParams FastLink() {
  return LinkParams{GigabitsPerSecond(1), Milliseconds(1), 1024 * 1024};
}

struct ClientWorld {
  Network net{77};
  NodeId a, b;
  Server* server;
  Client* client;

  explicit ClientWorld(ClientConfig client_config = {},
                       ServerConfig server_config = {}) {
    a = net.AddNode(NodeRole::kStub);
    b = net.AddNode(NodeRole::kStub);
    net.Connect(a, b, FastLink(), LinkKind::kPeer);
    server = SpawnHost<Server>(net, b, FastLink(), server_config);
    client_config.server = server->address();
    client = SpawnHost<Client>(net, a, FastLink(), client_config);
    net.FinalizeRouting();
  }
};

TEST(ClientTest, TcpHandshakeSucceeds) {
  ClientConfig config;
  config.kind = RequestKind::kTcpHandshake;
  config.request_rate = 50.0;
  config.poisson = false;
  ClientWorld world(config);
  world.client->Start();
  world.net.Run(Seconds(2));
  world.client->Stop();
  EXPECT_GT(world.client->stats().requests_sent, 50u);
  EXPECT_NEAR(world.client->stats().SuccessRatio(), 1.0, 0.05);
  // Handshake completions freed the server's slots.
  EXPECT_GT(world.server->stats().handshakes_completed, 0u);
}

TEST(ClientTest, UdpRequestResponse) {
  ClientConfig config;
  config.kind = RequestKind::kUdpRequest;
  config.request_rate = 100.0;
  ClientWorld world(config);
  world.client->Start();
  world.net.Run(Seconds(2));
  EXPECT_NEAR(world.client->stats().SuccessRatio(), 1.0, 0.05);
  EXPECT_GT(world.client->stats().latency_ms.mean(), 0.0);
  // Two 1 ms links each way + serialisation: latency around 4-5 ms.
  EXPECT_LT(world.client->stats().latency_ms.mean(), 20.0);
}

TEST(ClientTest, IcmpEcho) {
  ClientConfig config;
  config.kind = RequestKind::kIcmpEcho;
  config.request_rate = 20.0;
  ClientWorld world(config);
  world.client->Start();
  world.net.Run(Seconds(2));
  EXPECT_NEAR(world.client->stats().SuccessRatio(), 1.0, 0.1);
}

TEST(ClientTest, TimeoutsWhenServerDown) {
  ClientConfig config;
  config.kind = RequestKind::kUdpRequest;
  config.request_rate = 20.0;
  config.timeout = Milliseconds(500);
  ClientWorld world(config);
  world.server->SetUp(false);
  world.client->Start();
  world.net.Run(Seconds(3));
  world.client->Stop();
  world.net.Run(Seconds(1));
  EXPECT_EQ(world.client->stats().responses_received, 0u);
  EXPECT_GT(world.client->stats().timeouts, 10u);
  EXPECT_EQ(world.client->stats().SuccessRatio(), 0.0);
}

TEST(ClientTest, SuccessDegradesWhenServerOverloaded) {
  ClientConfig config;
  config.kind = RequestKind::kUdpRequest;
  config.request_rate = 200.0;
  ServerConfig server_config;
  server_config.cpu_capacity_rps = 20.0;  // can serve only 10% of demand
  server_config.cpu_burst = 10.0;
  ClientWorld world(config, server_config);
  world.client->Start();
  world.net.Run(Seconds(3));
  EXPECT_LT(world.client->stats().SuccessRatio(), 0.5);
  EXPECT_GT(world.client->stats().SuccessRatio(), 0.0);
}

TEST(ClientTest, StopAtDeadline) {
  ClientConfig config;
  config.request_rate = 100.0;
  ClientWorld world(config);
  world.client->Start(0, Seconds(1));
  world.net.Run(Seconds(3));
  const auto sent = world.client->stats().requests_sent;
  EXPECT_GT(sent, 0u);
  world.net.Run(Seconds(3));
  EXPECT_EQ(world.client->stats().requests_sent, sent);  // no more sends
}

TEST(SessionHostTest, KeepalivesFlowAndSessionsStayUp) {
  Network net(5);
  const NodeId a = net.AddNode(NodeRole::kStub);
  const NodeId b = net.AddNode(NodeRole::kStub);
  net.Connect(a, b, FastLink(), LinkKind::kPeer);
  auto* server = SpawnHost<Server>(net, b, FastLink());
  SessionHostConfig config;
  config.server = server->address();
  config.session_count = 8;
  auto* sessions = SpawnHost<SessionHost>(net, a, FastLink(), config);
  net.FinalizeRouting();
  sessions->Start();
  net.Run(Seconds(2));
  EXPECT_EQ(sessions->alive_sessions(), 8u);
  EXPECT_GT(sessions->stats().keepalives_sent, 16u);
}

}  // namespace
}  // namespace adtc
