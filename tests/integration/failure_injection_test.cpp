// Failure injection: the system's behaviour when parts of it break at
// awkward moments — mid-attack service removal, quarantine under fire,
// TCSP loss between control-plane legs, crashing victims, and partial
// deployment failures.
#include <gtest/gtest.h>

#include "attack/scenario.h"
#include "core/tcsp.h"
#include "testutil.h"

namespace adtc {
namespace {

using testing::SmallWorld;

LinkParams FastLink() {
  return LinkParams{GigabitsPerSecond(1), Milliseconds(1), 1024 * 1024};
}

struct FailureWorld : SmallWorld {
  NumberAuthority authority;
  Tcsp tcsp;
  std::vector<std::unique_ptr<IspNms>> nmses;

  explicit FailureWorld(std::uint64_t seed)
      : SmallWorld(seed, 4, 40), tcsp(net, authority, "fi-key") {
    AllocateTopologyPrefixes(authority, net.node_count());
    for (NodeId node = 0; node < net.node_count(); ++node) {
      auto nms = std::make_unique<IspNms>("isp", net, &tcsp.validator());
      nms->ManageNode(node);
      tcsp.EnrollIsp(nms.get());
      nmses.push_back(std::move(nms));
    }
  }
};

TEST(FailureInjectionTest, RemovingDefenceMidAttackReopensTheFlood) {
  FailureWorld world(11);
  ScenarioParams params;
  params.master_count = 2;
  params.agents_per_master = 8;
  params.client_count = 0;
  params.reflector_count = 2;
  params.directive.type = AttackType::kDirectFlood;
  params.directive.spoof = SpoofMode::kVictim;
  params.directive.rate_pps = 100.0;
  params.directive.duration = Seconds(10);
  Scenario scenario = BuildAttackScenario(world.net, world.topo, params);

  const Prefix scope = NodePrefix(scenario.victim_node);
  const auto cert =
      world.tcsp.Register(AsOrgName(scenario.victim_node), {scope});
  ASSERT_TRUE(cert.ok());
  ServiceRequest request;
  request.kind = ServiceKind::kRemoteIngressFiltering;
  request.control_scope = {scope};
  ASSERT_TRUE(world.tcsp.DeployService(cert.value(), request).status.ok());

  scenario.attacker->Launch();
  world.net.Run(Seconds(4));
  const auto filtered_before = world.net.metrics().dropped(
      TrafficClass::kAttack, DropReason::kFiltered);
  const auto delivered_before =
      world.net.metrics().delivered(TrafficClass::kAttack);
  EXPECT_GT(filtered_before, 1000u);

  // Subscriber cancels (or is de-provisioned) mid-attack.
  ASSERT_TRUE(world.tcsp.RemoveService(cert.value().subscriber).ok());
  world.net.Run(Seconds(4));
  const auto filtered_after = world.net.metrics().dropped(
      TrafficClass::kAttack, DropReason::kFiltered);
  const auto delivered_after =
      world.net.metrics().delivered(TrafficClass::kAttack);
  // No more filtering; the flood flows again.
  EXPECT_LT(filtered_after - filtered_before, 50u);
  EXPECT_GT(delivered_after - delivered_before, 500u);
}

TEST(FailureInjectionTest, QuarantineFailsOpenNotClosed) {
  // A deployment whose module misbehaves loses control but traffic keeps
  // flowing — the network stays usable (Sec. 4.5's operator guarantee).
  FailureWorld world(13);
  class EvilAfterN : public Module {
   public:
    int OnPacket(Packet& p, const DeviceContext&) override {
      if (++seen_ > 100) p.ttl = 255;  // goes rogue after behaving
      return 0;
    }
    std::string_view type_name() const override { return "match"; }

   private:
    int seen_ = 0;
  };

  const NodeId home = world.topo.stub_nodes[0];
  auto* server = SpawnHost<Server>(world.net, home, FastLink());
  ClientConfig config;
  config.server = server->address();
  config.kind = RequestKind::kUdpRequest;
  config.request_rate = 100.0;
  auto* client = SpawnHost<Client>(world.net, world.topo.stub_nodes[5],
                                   FastLink(), config);
  const auto cert = world.tcsp.Register(AsOrgName(home), {NodePrefix(home)});
  ASSERT_TRUE(cert.ok());
  AdaptiveDevice* device = world.nmses[home]->device(home);
  ASSERT_TRUE(device
                  ->InstallDeployment(
                      {cert.value(),
                       {NodePrefix(home)},
                       std::nullopt,
                       ModuleGraph::Single(std::make_unique<EvilAfterN>())})
                  .ok());

  client->Start();
  world.net.Run(Seconds(4));
  EXPECT_TRUE(device->IsQuarantined(cert.value().subscriber));
  // Service continued despite the rogue module: fail open.
  EXPECT_GT(client->stats().SuccessRatio(), 0.95);
  EXPECT_EQ(device->stats().safety_violations, 1u);
}

TEST(FailureInjectionTest, TcspDiesBetweenRequestAndCompletion) {
  FailureWorld world(17);
  const NodeId home = world.topo.stub_nodes[0];
  const auto cert = world.tcsp.Register(AsOrgName(home), {NodePrefix(home)});
  ASSERT_TRUE(cert.ok());
  ServiceRequest request;
  request.kind = ServiceKind::kStatistics;
  request.control_scope = {NodePrefix(home)};

  bool completed = false;
  DeploymentReport report;
  world.tcsp.DeployService(cert.value(), request,
                           CompletionPolicy::kLatencyModelled,
                           [&](const DeploymentReport& r) {
                             completed = true;
                             report = r;
                           });
  // The TCSP goes down 1 ms in — after accepting the request, before the
  // ISP legs land. Already-scheduled instructions still execute (they
  // left the TCSP), so the deployment completes: the failure window is
  // only the acceptance instant.
  world.net.control().PostIn(Milliseconds(1),
                                [&] { world.tcsp.set_reachable(false); });
  world.net.Run(Seconds(5));
  ASSERT_TRUE(completed);
  EXPECT_TRUE(report.status.ok());
  // But any *new* request fails until the outage ends.
  const auto blocked = world.tcsp.DeployService(cert.value(), request);
  EXPECT_EQ(blocked.status.code(), ErrorCode::kUnavailable);
}

TEST(FailureInjectionTest, VictimCrashAndRecovery) {
  FailureWorld world(19);
  const NodeId home = world.topo.stub_nodes[0];
  auto* server = SpawnHost<Server>(world.net, home, FastLink());
  ClientConfig config;
  config.server = server->address();
  config.kind = RequestKind::kUdpRequest;
  config.request_rate = 50.0;
  config.timeout = Milliseconds(500);
  auto* client = SpawnHost<Client>(world.net, world.topo.stub_nodes[5],
                                   FastLink(), config);
  client->Start();
  world.net.control().Post(Seconds(2), [&] { server->SetUp(false); });
  world.net.control().Post(Seconds(4), [&] { server->SetUp(true); });
  world.net.Run(Seconds(6));
  // Outage window produced timeouts; service recovered afterwards.
  EXPECT_GT(client->stats().timeouts, 50u);
  EXPECT_GT(client->stats().responses_received, 150u);
  EXPECT_GT(world.net.metrics().dropped(TrafficClass::kLegitimate,
                                        DropReason::kHostDown),
            50u);
}

TEST(FailureInjectionTest, PartialDeploymentReportsError) {
  FailureWorld world(23);
  const NodeId home = world.topo.stub_nodes[0];
  const auto cert = world.tcsp.Register(AsOrgName(home), {NodePrefix(home)});
  ASSERT_TRUE(cert.ok());

  // Sabotage: one device already has a colliding deployment for the same
  // prefix under a different subscriber (operator misconfiguration).
  CertificateAuthority rogue_ca("fi-key");  // same key: passes verify
  const auto squatter =
      rogue_ca.Issue(9999, "squatter", {NodePrefix(home)}, 0, Seconds(1e6));
  const NodeId sabotaged = world.topo.stub_nodes[7];
  ASSERT_TRUE(world.nmses[sabotaged]
                  ->device(sabotaged)
                  ->InstallDeployment(
                      {squatter,
                       {NodePrefix(home)},
                       std::nullopt,
                       ModuleGraph::Single(std::make_unique<CounterModule>())})
                  .ok());

  ServiceRequest request;
  request.kind = ServiceKind::kStatistics;
  request.control_scope = {NodePrefix(home)};
  const auto report = world.tcsp.DeployService(cert.value(), request);
  // The collision surfaces as an explicit error, not silent partial
  // coverage.
  EXPECT_FALSE(report.status.ok());
  EXPECT_EQ(report.status.code(), ErrorCode::kAlreadyExists);
}

}  // namespace
}  // namespace adtc
