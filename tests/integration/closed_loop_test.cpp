// Closed-loop detection integration: SPRT detectors watching NMS counter
// samples auto-deploy mitigation through the normal TCSP path on attack
// onset and auto-withdraw it after a sustained all-clear — with
// hysteresis strong enough that pulsing attacks do not flap the
// deployment, and hypothesis separation wide enough that a flash crowd
// never triggers it at all.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "attack/agent.h"
#include "attack/flash_crowd.h"
#include "core/tcsp.h"
#include "detect/controller.h"
#include "host/client.h"
#include "host/server.h"
#include "net/topo_gen.h"

namespace adtc {
namespace {

using detect::DetectionConfig;
using detect::DetectionController;
using detect::MonitorOptions;

constexpr std::uint64_t kSeeds[] = {11, 22, 33};

const LinkParams kAccess{MegabitsPerSecond(100), Milliseconds(2),
                         256 * 1024};

struct LoopWorld {
  std::unique_ptr<Network> net;
  TopologyInfo topo;
  std::unique_ptr<NumberAuthority> authority;
  std::unique_ptr<Tcsp> tcsp;
  std::vector<std::unique_ptr<IspNms>> nmses;

  NodeId victim_node = 0;
  Server* server = nullptr;
  Client* client = nullptr;
};

LoopWorld MakeWorld(std::uint64_t seed) {
  LoopWorld w;
  w.net = std::make_unique<Network>(seed);
  TransitStubParams topo_params;
  topo_params.transit_count = 3;
  topo_params.stub_count = 14;
  w.topo = BuildTransitStub(*w.net, topo_params);
  w.authority = std::make_unique<NumberAuthority>();
  AllocateTopologyPrefixes(*w.authority, w.net->node_count());
  w.tcsp = std::make_unique<Tcsp>(*w.net, *w.authority, "loop-key");
  for (NodeId node = 0; node < w.net->node_count(); ++node) {
    auto nms = std::make_unique<IspNms>("isp-" + std::to_string(node),
                                        *w.net, &w.tcsp->validator());
    nms->ManageNode(node);
    w.tcsp->EnrollIsp(nms.get());
    w.nmses.push_back(std::move(nms));
  }

  w.victim_node = w.topo.stub_nodes[0];
  ServerConfig server_config;
  server_config.cpu_capacity_rps = 5000.0;
  w.server = SpawnHost<Server>(*w.net, w.victim_node, kAccess,
                               server_config);
  ClientConfig client_config;
  client_config.server = w.server->address();
  client_config.kind = RequestKind::kUdpRequest;
  client_config.request_rate = 25.0;
  w.client = SpawnHost<Client>(*w.net, w.topo.stub_nodes[5], kAccess,
                               client_config);
  return w;
}

DetectionConfig LoopConfig() {
  DetectionConfig config;
  config.sample_interval = Milliseconds(100);
  config.detector = detect::DetectorKind::kSprt;
  // Wide hypothesis separation: the SPRT's per-sample increments are
  // large at these rates, so a single 100 ms window only decides
  // "attack" above ~910 pps — transient queueing bursts riding on a
  // benign 400 pps crowd stay well below that bar.
  config.sprt.lambda0_pps = 50.0;
  config.sprt.lambda1_pps = 4000.0;
  config.min_hold = Seconds(1);
  config.clear_streak = 3;
  config.rearm_cooldown = Milliseconds(500);
  config.action = detect::Action::kRateLimit;
  config.rate_limit_pps = 100.0;
  return config;
}

AgentHost* SpawnFlood(LoopWorld& w, double rate_pps, SimDuration duration,
                      SimDuration pulse_period = 0,
                      SimDuration pulse_on = 0) {
  AttackDirective directive;
  directive.type = AttackType::kDirectFlood;
  directive.victim = w.server->address();
  directive.flood_proto = Protocol::kUdp;
  directive.spoof = SpoofMode::kNone;
  directive.rate_pps = rate_pps;
  directive.duration = duration;
  directive.pulse_period = pulse_period;
  directive.pulse_on = pulse_on;
  return SpawnHost<AgentHost>(*w.net, w.topo.stub_nodes[9], kAccess,
                              directive);
}

std::size_t CountEvents(const LoopWorld& w, EventKind kind) {
  std::size_t total = 0;
  for (const auto& nms : w.nmses) total += nms->events().CountOf(kind);
  return total;
}

TEST(ClosedLoopTest, OnsetAutoDeploysWithBoundedLatency) {
  for (const std::uint64_t seed : kSeeds) {
    LoopWorld w = MakeWorld(seed);
    AgentHost* agent = SpawnFlood(w, 3000.0, Seconds(30));

    DetectionController controller(*w.net, *w.tcsp, LoopConfig());
    const auto cert =
        w.tcsp->Register(AsOrgName(w.victim_node), {NodePrefix(w.victim_node)});
    ASSERT_TRUE(cert.ok());
    MonitorOptions options;
    options.name = "victim";
    options.attack_probe = [agent] { return agent->flooding(); };
    const auto subscriber = controller.Monitor(cert.value(), options);
    ASSERT_TRUE(subscriber.ok()) << subscriber.status().message();
    controller.Start();

    w.client->Start();
    w.net->Run(Seconds(1));  // benign warm-up: must not trigger
    EXPECT_EQ(controller.stats().onsets, 0u) << "seed " << seed;

    agent->StartFlood();
    w.net->Run(Seconds(3));

    EXPECT_GE(controller.stats().onsets, 1u) << "seed " << seed;
    EXPECT_EQ(controller.stats().false_positives, 0u) << "seed " << seed;
    EXPECT_EQ(controller.phase(subscriber.value()),
              detect::Phase::kMitigating)
        << "seed " << seed;
    EXPECT_GE(CountEvents(w, EventKind::kAttackDetected), 1u);
    EXPECT_GE(CountEvents(w, EventKind::kAutoDeploy), 1u);

    // Ground-truth latency: the SPRT needs only a few 100 ms samples at
    // 3000 pps, but allow slack for the sampling phase offset.
    ASSERT_FALSE(controller.decision_latencies_ms().empty());
    EXPECT_LT(controller.decision_latencies_ms().front(), 2000.0)
        << "seed " << seed;

    // The auto-deployed rate limit is actually filtering the flood.
    EXPECT_GT(w.net->metrics().dropped(TrafficClass::kAttack,
                                       DropReason::kFiltered),
              0u)
        << "seed " << seed;
  }
}

TEST(ClosedLoopTest, WithdrawsAfterSustainedAllClear) {
  for (const std::uint64_t seed : kSeeds) {
    LoopWorld w = MakeWorld(seed);
    AgentHost* agent = SpawnFlood(w, 3000.0, Seconds(2));

    DetectionController controller(*w.net, *w.tcsp, LoopConfig());
    const auto cert =
        w.tcsp->Register(AsOrgName(w.victim_node), {NodePrefix(w.victim_node)});
    ASSERT_TRUE(cert.ok());
    MonitorOptions options;
    options.attack_probe = [agent] { return agent->flooding(); };
    const auto subscriber = controller.Monitor(cert.value(), options);
    ASSERT_TRUE(subscriber.ok());
    controller.Start();

    w.client->Start();
    agent->StartFlood();
    // Flood for 2 s, then 4 s of quiet: min_hold (1 s) plus the clear
    // streak (3 ticks = 300 ms) both expire well inside that.
    w.net->Run(Seconds(6));

    EXPECT_GE(controller.stats().onsets, 1u) << "seed " << seed;
    EXPECT_GE(controller.stats().withdrawals, 1u) << "seed " << seed;
    EXPECT_EQ(controller.phase(subscriber.value()),
              detect::Phase::kMonitoring)
        << "seed " << seed;
    EXPECT_GE(CountEvents(w, EventKind::kAttackCleared), 1u);
    EXPECT_GE(CountEvents(w, EventKind::kAutoWithdraw), 1u);

    // After withdrawal the monitoring deployment is back: the victim's
    // device carries a statistics graph for the delegate again.
    bool monitor_back = false;
    for (const auto& nms : w.nmses) {
      AdaptiveDevice* device = nms->device(w.victim_node);
      if (device == nullptr) continue;
      ModuleGraph* graph = device->StageGraph(
          subscriber.value(), ProcessingStage::kDestinationOwner);
      if (graph != nullptr &&
          graph->FindModule<StatisticsModule>() != nullptr) {
        monitor_back = true;
      }
    }
    EXPECT_TRUE(monitor_back) << "seed " << seed;
  }
}

TEST(ClosedLoopTest, FlashCrowdDoesNotTriggerMitigation) {
  for (const std::uint64_t seed : kSeeds) {
    LoopWorld w = MakeWorld(seed);

    DetectionController controller(*w.net, *w.tcsp, LoopConfig());
    const auto cert =
        w.tcsp->Register(AsOrgName(w.victim_node), {NodePrefix(w.victim_node)});
    ASSERT_TRUE(cert.ok());
    MonitorOptions options;
    options.attack_probe = [] { return false; };  // never an attack
    const auto subscriber = controller.Monitor(cert.value(), options);
    ASSERT_TRUE(subscriber.ok());
    controller.Start();
    w.client->Start();

    // 40 normal users converge on the victim: ~400 pps aggregate, below
    // the SPRT drift threshold r* = (l1-l0)/ln(l1/l0) ~ 901 pps for the
    // 50/4000 hypotheses — breadth without per-source intensity must
    // drift the test toward "benign", not "attack".
    FlashCrowdParams crowd_params;
    crowd_params.server = w.server->address();
    crowd_params.client_count = 40;
    crowd_params.request_rate_per_client = 10.0;
    crowd_params.ramp = Seconds(1);
    std::vector<NodeId> crowd_nodes(w.topo.stub_nodes.begin() + 1,
                                    w.topo.stub_nodes.end());
    const FlashCrowd crowd =
        LaunchFlashCrowd(*w.net, crowd_nodes, crowd_params);
    EXPECT_EQ(crowd.clients.size(), 40u);

    w.net->Run(Seconds(6));

    EXPECT_EQ(controller.stats().onsets, 0u) << "seed " << seed;
    EXPECT_EQ(controller.stats().false_positives, 0u) << "seed " << seed;
    EXPECT_EQ(controller.phase(subscriber.value()),
              detect::Phase::kMonitoring)
        << "seed " << seed;
    EXPECT_EQ(CountEvents(w, EventKind::kAutoDeploy), 0u) << "seed " << seed;
    // The crowd itself was served, not collaterally damaged.
    EXPECT_GT(crowd.SuccessRatio(), 0.9) << "seed " << seed;
  }
}

TEST(ClosedLoopTest, PulsingAttackDoesNotFlapDeployment) {
  const std::uint64_t seed = kSeeds[0];
  LoopWorld w = MakeWorld(seed);
  // On-off flood: 500 ms bursts at 3000 pps, 500 ms silences, for 6 s.
  AgentHost* agent =
      SpawnFlood(w, 3000.0, Seconds(6), Seconds(1), Milliseconds(500));

  // Hysteresis sized against the pulse: the clear streak (8 ticks =
  // 800 ms) is longer than the 500 ms silences, so off-phases never
  // complete a withdrawal while the episode is live.
  DetectionConfig config = LoopConfig();
  config.min_hold = Seconds(2);
  config.clear_streak = 8;
  DetectionController controller(*w.net, *w.tcsp, config);
  const auto cert =
      w.tcsp->Register(AsOrgName(w.victim_node), {NodePrefix(w.victim_node)});
  ASSERT_TRUE(cert.ok());
  MonitorOptions options;
  options.attack_probe = [agent] { return agent->flooding(); };
  const auto subscriber = controller.Monitor(cert.value(), options);
  ASSERT_TRUE(subscriber.ok());
  controller.Start();

  w.client->Start();
  agent->StartFlood();
  w.net->Run(Seconds(10));

  // One onset, one withdrawal: the pulsing never flaps the deployment.
  // (Each lifecycle event fans out to every enrolled NMS, so the
  // network-wide event count for a single deploy is one per NMS.)
  EXPECT_EQ(controller.stats().deploy_failures, 0u);
  EXPECT_EQ(controller.stats().onsets, 1u);
  EXPECT_EQ(controller.stats().withdrawals, 1u);
  EXPECT_EQ(CountEvents(w, EventKind::kAutoDeploy), w.nmses.size());
  EXPECT_EQ(CountEvents(w, EventKind::kAutoWithdraw), w.nmses.size());
  EXPECT_EQ(controller.phase(subscriber.value()),
            detect::Phase::kMonitoring);
}

struct EndState {
  std::uint64_t legit_sent = 0;
  std::uint64_t legit_delivered = 0;
  std::uint64_t legit_filtered = 0;
  std::uint64_t responses = 0;

  bool operator==(const EndState&) const = default;
};

EndState RunBenignWorld(std::uint64_t seed, bool armed) {
  LoopWorld w = MakeWorld(seed);
  std::unique_ptr<DetectionController> controller;
  if (armed) {
    controller =
        std::make_unique<DetectionController>(*w.net, *w.tcsp, LoopConfig());
    const auto cert =
        w.tcsp->Register(AsOrgName(w.victim_node), {NodePrefix(w.victim_node)});
    EXPECT_TRUE(cert.ok());
    MonitorOptions options;
    options.attack_probe = [] { return false; };
    EXPECT_TRUE(controller->Monitor(cert.value(), options).ok());
    controller->Start();
  }
  w.client->Start();
  w.net->Run(Seconds(5));
  if (controller != nullptr) {
    EXPECT_EQ(controller->stats().onsets, 0u);
  }

  EndState state;
  state.legit_sent = w.net->metrics().sent(TrafficClass::kLegitimate);
  state.legit_delivered =
      w.net->metrics().delivered(TrafficClass::kLegitimate);
  state.legit_filtered = w.net->metrics().dropped(
      TrafficClass::kLegitimate, DropReason::kFiltered);
  state.responses = w.client->stats().responses_received;
  return state;
}

TEST(ClosedLoopTest, ArmedDetectorIsInvisibleWithoutAttack) {
  // Differential guard: an armed controller watching benign traffic must
  // not change what the data plane does — the monitoring graph is
  // pass-through and the controller itself draws no world randomness.
  for (const std::uint64_t seed : kSeeds) {
    const EndState without = RunBenignWorld(seed, /*armed=*/false);
    const EndState with = RunBenignWorld(seed, /*armed=*/true);
    EXPECT_EQ(without, with) << "seed " << seed;
    EXPECT_GT(with.legit_delivered, 0u);
    EXPECT_EQ(with.legit_filtered, 0u);
  }
}

}  // namespace
}  // namespace adtc
