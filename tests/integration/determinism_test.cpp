// Determinism and parallel-replicate safety: the experimental
// methodology's foundation. A (seed) fully determines a world; running
// replicates concurrently must produce bit-identical results to running
// them serially.
#include <gtest/gtest.h>

#include "attack/scenario.h"
#include "common/thread_pool.h"
#include "core/tcsp.h"
#include "testutil.h"

namespace adtc {
namespace {

struct RunSummary {
  std::uint64_t attack_sent = 0;
  std::uint64_t attack_filtered = 0;
  std::uint64_t legit_delivered = 0;
  std::uint64_t reflected_delivered = 0;
  std::uint64_t events_executed = 0;
  double goodput = 0;

  bool operator==(const RunSummary&) const = default;
};

RunSummary RunFullScenario(std::uint64_t seed) {
  Network net(seed);
  TransitStubParams topo_params;
  topo_params.transit_count = 4;
  topo_params.stub_count = 36;
  const TopologyInfo topo = BuildTransitStub(net, topo_params);

  NumberAuthority authority;
  AllocateTopologyPrefixes(authority, net.node_count());
  Tcsp tcsp(net, authority, "det-key");
  std::vector<std::unique_ptr<IspNms>> nmses;
  for (NodeId node = 0; node < net.node_count(); ++node) {
    auto nms = std::make_unique<IspNms>("isp", net, &tcsp.validator());
    nms->ManageNode(node);
    tcsp.EnrollIsp(nms.get());
    nmses.push_back(std::move(nms));
  }

  ScenarioParams params;
  params.master_count = 2;
  params.agents_per_master = 6;
  params.reflector_count = 8;
  params.client_count = 6;
  params.directive.type = AttackType::kReflector;
  params.directive.rate_pps = 100.0;
  params.directive.duration = Seconds(4);
  Scenario scenario = BuildAttackScenario(net, topo, params);

  const Prefix scope = NodePrefix(scenario.victim_node);
  const auto cert = tcsp.Register(AsOrgName(scenario.victim_node), {scope});
  EXPECT_TRUE(cert.ok());
  ServiceRequest request;
  request.kind = ServiceKind::kRemoteIngressFiltering;
  request.control_scope = {scope};
  EXPECT_TRUE(tcsp.DeployService(cert.value(), request).status.ok());

  scenario.attacker->Launch();
  net.Run(Seconds(6));

  const Metrics& metrics = net.metrics();
  RunSummary summary;
  summary.attack_sent = metrics.sent(TrafficClass::kAttack);
  summary.attack_filtered =
      metrics.dropped(TrafficClass::kAttack, DropReason::kFiltered);
  summary.legit_delivered = metrics.delivered(TrafficClass::kLegitimate);
  summary.reflected_delivered =
      metrics.delivered(TrafficClass::kReflected);
  summary.events_executed = net.engine().executed_events();
  summary.goodput = scenario.ClientSuccessRatio();
  return summary;
}

TEST(DeterminismTest, SameSeedSameWorldBitExact) {
  const RunSummary first = RunFullScenario(12345);
  const RunSummary second = RunFullScenario(12345);
  EXPECT_EQ(first, second);
  EXPECT_GT(first.attack_sent, 0u);  // and the world actually did things
}

TEST(DeterminismTest, DifferentSeedsDifferentWorlds) {
  const RunSummary a = RunFullScenario(1);
  const RunSummary b = RunFullScenario(2);
  EXPECT_NE(a, b);
}

TEST(DeterminismTest, ParallelReplicatesMatchSerialRuns) {
  // The bench harness runs replicates on a thread pool; every replicate
  // must be unaffected by its neighbours.
  const std::vector<std::uint64_t> seeds = {10, 20, 30, 40, 50, 60};
  std::vector<RunSummary> serial;
  serial.reserve(seeds.size());
  for (const std::uint64_t seed : seeds) {
    serial.push_back(RunFullScenario(seed));
  }
  std::vector<RunSummary> parallel(seeds.size());
  ParallelFor(seeds.size(), [&](std::size_t i) {
    parallel[i] = RunFullScenario(seeds[i]);
  });
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "seed " << seeds[i];
  }
}

TEST(DeterminismTest, MediumScaleWorldStaysTractable) {
  // A 500-AS power-law world with full TCS and an attack completes in
  // modest wall time — the scale used by E3 with headroom.
  Network net(777);
  PowerLawParams topo_params;
  topo_params.node_count = 500;
  const TopologyInfo topo = BuildPowerLaw(net, topo_params);
  NumberAuthority authority;
  AllocateTopologyPrefixes(authority, net.node_count());
  EXPECT_EQ(authority.allocation_count(), 500u);
  // Spot routing sanity at scale.
  EXPECT_NE(net.HopDistance(0, 499), UINT32_MAX);
}

}  // namespace
}  // namespace adtc
