// The sharded engine's acceptance gate: one seed, one world, run on 1,
// 2 and 4 shards, must end in the SAME state — every packet counter,
// every host's statistics, every trace tree. This holds because the
// world follows the shard-affinity contract of docs/sharding.md:
// per-entity RNG streams (forked at attach time, on the main thread),
// per-origin packet serials, co-located NMS+devices, and cross-shard
// links whose latency is at least the engine epoch.
//
// Deployments are installed through each region's IspNms directly
// (NMS and devices share a shard, so installation is synchronous and
// pre-run); the cross-shard TCSP path is exercised by the TSan stress
// test instead, where exact-counter equality is not asserted.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "attack/scenario.h"
#include "core/tcsp.h"
#include "obs/telemetry.h"
#include "obs/trace_analysis.h"

namespace adtc {
namespace {

constexpr std::uint32_t kRegions = 4;
constexpr std::uint32_t kStubsPerRegion = 6;
constexpr std::uint64_t kSeed = 2026;

std::uint32_t RegionOf(NodeId node) {
  return node < kRegions
             ? static_cast<std::uint32_t>(node)
             : static_cast<std::uint32_t>(node - kRegions) / kStubsPerRegion;
}

/// Every observable quantity of a finished run, flattened for equality.
struct WorldResult {
  std::vector<std::uint64_t> metrics;        // per-class sends/deliveries/drops
  std::vector<std::uint64_t> victim;         // server resource counters
  std::vector<std::uint64_t> clients;        // per-client request outcomes
  std::vector<double> client_latency;        // per-client latency summaries
  std::uint64_t attack_sent = 0;
  std::uint64_t executed_events = 0;
  std::uint64_t deployments_installed = 0;
  std::size_t span_count = 0;
  std::size_t trace_deployments = 0;
  bool traces_complete = false;

  bool operator==(const WorldResult&) const = default;
};

WorldResult RunShardedWorld(std::size_t num_shards) {
  Network net(kSeed, num_shards);
  RegionRingParams topo_params;
  topo_params.regions = kRegions;
  topo_params.stubs_per_region = kStubsPerRegion;
  const TopologyInfo topo = BuildRegionRing(net, topo_params);

  obs::MemoryTelemetrySink sink;
  net.telemetry().AttachSink(&sink);

  NumberAuthority authority;
  AllocateTopologyPrefixes(authority, net.node_count());
  Tcsp tcsp(net, authority, "shard-key");

  // One NMS per region: all of its managed nodes live on one shard.
  std::vector<std::unique_ptr<IspNms>> nmses;
  for (std::uint32_t r = 0; r < kRegions; ++r) {
    auto nms = std::make_unique<IspNms>("region-" + std::to_string(r), net,
                                        &tcsp.validator());
    for (NodeId node = 0; node < net.node_count(); ++node) {
      if (RegionOf(node) == r) nms->ManageNode(node);
    }
    nmses.push_back(std::move(nms));
  }

  ScenarioParams params;
  params.master_count = 1;
  params.agents_per_master = 8;
  params.reflector_count = 4;
  params.client_count = 8;
  params.client_request_rate = 25.0;
  params.directive.type = AttackType::kDirectFlood;
  params.directive.spoof = SpoofMode::kRandom;
  params.directive.rate_pps = 200.0;
  params.directive.duration = Seconds(2);
  Scenario scenario = BuildAttackScenario(net, topo, params);

  // Subscribe the victim and install ingress filtering region by region:
  // NMS -> device is same-shard, so every install completes inline here,
  // before the first event runs.
  const Prefix scope = NodePrefix(scenario.victim_node);
  const auto cert = tcsp.Register(AsOrgName(scenario.victim_node), {scope});
  EXPECT_TRUE(cert.ok());
  ServiceRequest request;
  request.kind = ServiceKind::kRemoteIngressFiltering;
  request.placement = PlacementPolicy::kAllManagedNodes;
  request.control_scope = {scope};
  for (auto& nms : nmses) {
    const Status status =
        nms->DeployService(cert.value(), request, {scenario.victim_node},
                           tcsp.certificate_authority());
    EXPECT_TRUE(status.ok()) << status.ToString();
  }

  scenario.attacker->Launch();
  net.Run(Seconds(4));

  WorldResult result;
  const Metrics metrics = net.metrics();
  for (std::size_t c = 0; c < kTrafficClassCount; ++c) {
    result.metrics.push_back(metrics.packets_sent[c]);
    result.metrics.push_back(metrics.packets_delivered[c]);
    result.metrics.push_back(metrics.bytes_sent[c]);
    result.metrics.push_back(metrics.bytes_delivered[c]);
    for (std::size_t r = 0; r < kDropReasonCount; ++r) {
      result.metrics.push_back(metrics.packets_dropped[c][r]);
    }
  }
  result.metrics.push_back(metrics.attack_byte_hops);
  result.metrics.push_back(metrics.legit_byte_hops);

  const ServerStats& v = scenario.victim->stats();
  result.victim = {v.requests_received, v.legit_requests_received,
                   v.replies_sent,      v.denied_cpu,
                   v.legit_denied_cpu,  v.denied_conn_table,
                   v.handshakes_completed};
  for (const Client* client : scenario.clients) {
    result.clients.push_back(client->stats().requests_sent);
    result.clients.push_back(client->stats().responses_received);
    result.clients.push_back(client->stats().timeouts);
    result.client_latency.push_back(client->stats().latency_ms.mean());
    result.client_latency.push_back(client->stats().latency_ms.max());
  }
  result.attack_sent = scenario.AttackPacketsSent();
  result.executed_events = net.engine().executed_events();
  for (const auto& nms : nmses) {
    result.deployments_installed += nms->stats().deployments_installed;
  }

  // Engine-level invariants of the run itself.
  const ShardedStats& engine_stats = net.engine().stats();
  EXPECT_EQ(engine_stats.late_cross_events, 0u)
      << "a component posted cross-shard below the epoch lookahead";
  if (num_shards > 1) {
    EXPECT_GT(engine_stats.cross_shard_events, 0u)
        << "the world was supposed to exercise cross-shard traffic";
    EXPECT_GT(engine_stats.epochs, 0u);
  }

  // Trace-tree completeness: the deployment spans reassemble into one
  // rooted tree per deployment, independent of the shard count.
  result.span_count = sink.spans().size();
  obs::TraceAnalyzer analyzer;
  analyzer.Analyze(sink.spans());
  result.trace_deployments = analyzer.summary().deployment_count;
  result.traces_complete = analyzer.AllComplete();
  return result;
}

TEST(ShardDeterminismTest, EndStateIsIdenticalFor1_2_4Shards) {
  const WorldResult one = RunShardedWorld(1);
  // The world actually did things worth comparing.
  EXPECT_GT(one.attack_sent, 0u);
  EXPECT_GT(one.metrics[0], 0u);  // legitimate packets sent
  EXPECT_GT(one.deployments_installed, 0u);
  EXPECT_TRUE(one.traces_complete);
  EXPECT_EQ(one.trace_deployments, kRegions);

  const WorldResult two = RunShardedWorld(2);
  const WorldResult four = RunShardedWorld(4);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, four);
}

TEST(ShardDeterminismTest, SameShardCountIsBitReproducible) {
  const WorldResult a = RunShardedWorld(4);
  const WorldResult b = RunShardedWorld(4);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace adtc
