// End-to-end reproduction of the paper's headline scenario (Sec. 4.3):
// a DDoS reflector attack against a web site, then the owner deploys
// worldwide ingress filtering through the traffic control service and the
// attack dies at the attackers' uplinks.
#include <gtest/gtest.h>

#include "attack/scenario.h"
#include "core/tcsp.h"
#include "core/traceback_service.h"
#include "testutil.h"

namespace adtc {
namespace {

using testing::SmallWorld;

struct DefenceWorld : SmallWorld {
  NumberAuthority authority;
  Tcsp tcsp;
  std::vector<std::unique_ptr<IspNms>> nmses;
  Scenario scenario;

  explicit DefenceWorld(std::uint64_t seed = 2025,
                        AttackType attack = AttackType::kReflector)
      : SmallWorld(seed, /*transit=*/4, /*stubs=*/40),
        tcsp(net, authority, "key") {
    AllocateTopologyPrefixes(authority, net.node_count());
    for (NodeId node = 0; node < net.node_count(); ++node) {
      auto nms = std::make_unique<IspNms>("isp-" + std::to_string(node), net,
                                          &tcsp.validator());
      nms->ManageNode(node);
      tcsp.EnrollIsp(nms.get());
      nmses.push_back(std::move(nms));
    }

    ScenarioParams params;
    params.master_count = 2;
    params.agents_per_master = 10;
    params.reflector_count = 12;
    params.client_count = 6;
    params.client_request_rate = 20.0;
    params.directive.type = attack;
    params.directive.rate_pps = 200.0;
    params.directive.duration = Seconds(6);
    params.directive.reflector_proto = Protocol::kTcp;
    params.directive.spoof = SpoofMode::kRandom;
    params.victim_config.cpu_capacity_rps = 3000.0;
    params.victim_config.cpu_burst = 300.0;
    scenario = BuildAttackScenario(net, topo, params);
  }

  /// Victim registers with the TCSP and deploys remote ingress filtering.
  OwnershipCertificate DeployDefence() {
    // The victim's ISP delegates the victim's /32 to it; for the test the
    // victim subscribes with its AS prefix (it hosts the whole site).
    const Prefix scope = NodePrefix(scenario.victim_node);
    auto cert = tcsp.Register(AsOrgName(scenario.victim_node), {scope});
    EXPECT_TRUE(cert.ok()) << cert.status().ToString();
    ServiceRequest request;
    request.kind = ServiceKind::kRemoteIngressFiltering;
    request.placement = PlacementPolicy::kAllManagedNodes;
    request.control_scope = {scope};
    const DeploymentReport report =
        tcsp.DeployService(cert.value(), request);
    EXPECT_TRUE(report.status.ok()) << report.status.ToString();
    return cert.value();
  }
};

TEST(ReflectorDefenceTest, AttackAloneFloodsVictimWithReflectedTraffic) {
  DefenceWorld world(101);
  world.scenario.attacker->Launch();
  world.net.Run(Seconds(8));
  const auto& metrics = world.net.metrics();
  // Reflected traffic reached the victim en masse...
  EXPECT_GT(metrics.delivered(TrafficClass::kReflected), 2000u);
  // ...and clients suffered.
  EXPECT_LT(world.scenario.ClientSuccessRatio(), 0.9);
}

TEST(ReflectorDefenceTest, TcsIngressFilteringStopsReflectorAttack) {
  DefenceWorld world(101);
  world.DeployDefence();
  world.scenario.attacker->Launch();
  world.net.Run(Seconds(8));

  const auto& metrics = world.net.metrics();
  // The spoofed requests died at the agents' uplink ASes, so reflectors
  // never amplified them: almost no reflected traffic reaches the victim.
  const std::uint64_t reflected =
      metrics.delivered(TrafficClass::kReflected);
  EXPECT_LT(reflected, 200u);
  // Attack packets were overwhelmingly filtered (not delivered).
  EXPECT_GT(metrics.dropped(TrafficClass::kAttack, DropReason::kFiltered),
            metrics.delivered(TrafficClass::kAttack));
  // Clients stay healthy.
  EXPECT_GT(world.scenario.ClientSuccessRatio(), 0.9);
}

TEST(ReflectorDefenceTest, FilteringHappensCloseToTheSource) {
  DefenceWorld world(103);
  world.DeployDefence();
  world.scenario.attacker->Launch();
  world.net.Run(Seconds(8));
  // Spoofed packets are dropped at their first filtering edge: mean hops
  // travelled before the drop must be tiny ("stops attack traffic close
  // to the source", Sec. 6).
  const auto& hops = world.net.metrics().attack_drop_hops;
  ASSERT_GT(hops.count(), 100u);
  EXPECT_LT(hops.mean(), 2.0);
}

TEST(ReflectorDefenceTest, LegitimateVictimTrafficUnaffected) {
  DefenceWorld world(105);
  world.DeployDefence();
  // No attack at all: the filter must not harm normal operation
  // (the victim's own replies carry its address as source and traverse
  // its home edge).
  world.net.Run(Seconds(6));
  EXPECT_GT(world.scenario.ClientSuccessRatio(), 0.95);
}

TEST(ReflectorDefenceTest, DirectSpoofedFloodAlsoFiltered) {
  DefenceWorld world(107, AttackType::kDirectFlood);
  world.DeployDefence();
  // Direct flood with the victim's address spoofed as source — the same
  // anti-spoof scope catches it when agents hide behind the victim.
  for (AgentHost* agent : world.scenario.agents) {
    agent->directive().spoof = SpoofMode::kVictim;
  }
  world.scenario.attacker->Launch();
  world.net.Run(Seconds(8));
  EXPECT_GT(world.net.metrics().dropped(TrafficClass::kAttack,
                                        DropReason::kFiltered),
            1000u);
}

TEST(ReflectorDefenceTest, TcsTracebackFindsSpoofedTrafficEntryPoints) {
  DefenceWorld world(109);
  // Deploy a traceback service over the victim's prefix (stores digests
  // of all packets claiming the victim's addresses).
  const Prefix scope = NodePrefix(world.scenario.victim_node);
  auto cert = world.tcsp.Register(AsOrgName(world.scenario.victim_node),
                                  {scope});
  ASSERT_TRUE(cert.ok());
  ServiceRequest request;
  request.kind = ServiceKind::kTraceback;
  request.control_scope = {scope};
  request.traceback.window = Seconds(2);
  request.traceback.window_count = 16;
  ASSERT_TRUE(world.tcsp.DeployService(cert.value(), request).status.ok());

  world.scenario.attacker->Launch();
  world.net.Run(Seconds(4));

  std::vector<IspNms*> isps;
  for (auto& nms : world.nmses) isps.push_back(nms.get());
  TcsTracebackService traceback(world.net, isps, cert.value().subscriber);
  EXPECT_GT(traceback.store_count(), 0u);

  // Reconstruct the entry point of a spoofed request observed at a
  // reflector: synthesise the packet the reflector would present.
  // (We use the agents' ground truth only to *check* the answer.)
  const AgentHost* agent = world.scenario.agents[0];
  ASSERT_GT(agent->stats().attack_packets_sent, 0u);
  const NodeId agent_node = world.net.host_node(agent->id());

  // The agent's spoofed packets carry src=victim. Find one by querying
  // digests is impractical without the packet, so trace from a reflector
  // node using a reconstructed digest is covered in the unit tests; here
  // we assert the vantage stores saw traffic at the agent's AS.
  bool agent_as_saw_traffic = false;
  for (auto& nms : world.nmses) {
    AdaptiveDevice* device = nms->device(agent_node);
    if (device == nullptr) continue;
    ModuleGraph* graph = device->StageGraph(cert.value().subscriber,
                                            ProcessingStage::kSourceOwner);
    if (graph == nullptr) continue;
    auto* store = graph->FindModule<TracebackStoreModule>();
    if (store != nullptr && store->digests_stored() > 0) {
      agent_as_saw_traffic = true;
    }
  }
  EXPECT_TRUE(agent_as_saw_traffic)
      << "the spoofed stream must be recorded where it entered";
}

}  // namespace
}  // namespace adtc
