// Shard-exchange stress: a multi-shard world driving every concurrent
// machine at once — data-plane traffic crossing the ring, the TCSP's
// cross-shard control channels deploying mid-run, the periodic
// time-series sampler reading per-shard metric cells from the control
// shard, and anti-entropy resync sweeps. Run under ThreadSanitizer by
// tests/sanitize_smoke.sh (TSAN_FILTER includes ShardStress*); it
// asserts convergence and conservation, not exact counters — the
// cross-shard TCSP path is timing-modelled, and its exact interleaving
// is the one thing the determinism differential deliberately avoids.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "attack/scenario.h"
#include "core/tcsp.h"
#include "obs/telemetry.h"

namespace adtc {
namespace {

constexpr std::uint32_t kRegions = 4;
constexpr std::uint32_t kStubsPerRegion = 4;

std::uint32_t RegionOf(NodeId node) {
  return node < kRegions
             ? static_cast<std::uint32_t>(node)
             : static_cast<std::uint32_t>(node - kRegions) / kStubsPerRegion;
}

TEST(ShardStressTest, CrossShardControlAndDataPlaneUnderLoad) {
  Network net(/*seed=*/7, /*num_shards=*/4);
  RegionRingParams topo_params;
  topo_params.regions = kRegions;
  topo_params.stubs_per_region = kStubsPerRegion;
  const TopologyInfo topo = BuildRegionRing(net, topo_params);

  obs::MemoryTelemetrySink sink;
  net.telemetry().AttachSink(&sink);

  NumberAuthority authority;
  AllocateTopologyPrefixes(authority, net.node_count());
  // Control-plane latencies over the engine epoch (the ring's 10 ms), so
  // TCSP -> NMS instructions legally cross shards mid-run.
  TcspConfig config;
  config.tcsp_to_isp_latency = Milliseconds(40);
  config.nms_peer_latency = Milliseconds(20);
  Tcsp tcsp(net, authority, "stress-key", config);

  std::vector<std::unique_ptr<IspNms>> nmses;
  for (std::uint32_t r = 0; r < kRegions; ++r) {
    auto nms = std::make_unique<IspNms>("region-" + std::to_string(r), net,
                                        &tcsp.validator());
    for (NodeId node = 0; node < net.node_count(); ++node) {
      if (RegionOf(node) == r) nms->ManageNode(node);
    }
    nms->set_peer_latency(config.nms_peer_latency);
    tcsp.EnrollIsp(nms.get());
    nmses.push_back(std::move(nms));
  }

  ScenarioParams params;
  params.master_count = 1;
  params.agents_per_master = 6;
  params.reflector_count = 4;
  params.client_count = 6;
  params.client_request_rate = 20.0;
  params.directive.type = AttackType::kDirectFlood;
  params.directive.rate_pps = 150.0;
  params.directive.duration = Seconds(2);
  Scenario scenario = BuildAttackScenario(net, topo, params);

  // Sampler on the control shard, reading the per-shard metric cells
  // while the workers write them.
  net.telemetry().sampler().Start(Milliseconds(50));

  scenario.attacker->Launch();
  net.Run(Seconds(1));

  // Deploy mid-run over the cross-shard TCSP channels.
  const Prefix scope = NodePrefix(scenario.victim_node);
  const auto cert = tcsp.Register(AsOrgName(scenario.victim_node), {scope});
  ASSERT_TRUE(cert.ok());
  ServiceRequest request;
  request.kind = ServiceKind::kRemoteIngressFiltering;
  request.placement = PlacementPolicy::kAllManagedNodes;
  request.control_scope = {scope};
  tcsp.DeployService(cert.value(), request, CompletionPolicy::kLatencyModelled,
                     [](const DeploymentReport&) {});
  for (auto& nms : nmses) nms->StartResync(Seconds(1));

  net.Run(Seconds(4));
  for (auto& nms : nmses) nms->StopResync();
  net.telemetry().sampler().Stop();
  net.Run(Seconds(1));

  // The world converged: every region carries the deployment.
  for (const auto& nms : nmses) {
    EXPECT_GT(nms->CountDeployments(cert.value().subscriber), 0u)
        << nms->name();
  }

  // Cross-shard machinery actually ran, and honoured the epoch contract.
  const ShardedStats& stats = net.engine().stats();
  EXPECT_GT(stats.cross_shard_events, 0u);
  EXPECT_GT(stats.epochs, 0u);
  EXPECT_EQ(stats.late_cross_events, 0u);

  // Packet conservation over the merged per-shard cells: nothing vanished
  // or duplicated across shard boundaries.
  const Metrics metrics = net.metrics();
  for (const TrafficClass klass :
       {TrafficClass::kLegitimate, TrafficClass::kAttack}) {
    EXPECT_GT(metrics.sent(klass), 0u);
    EXPECT_GE(metrics.sent(klass),
              metrics.delivered(klass) + metrics.dropped(klass) -
                  metrics.dropped(klass, DropReason::kHostOverload));
  }
  EXPECT_GT(sink.samples().size(), 0u);  // the sampler really sampled
}

}  // namespace
}  // namespace adtc
