// End-to-end telemetry: run the paper's attack+defence scenario with the
// full telemetry layer on — memory sink, JSONL timeline, periodic
// sampler, wall-clock profiling — and assert the recorded artefacts:
// a complete TCSP -> NMS -> device span tree, a monotone time series with
// per-class delivered/dropped metrics, and (via the bench harness) a
// machine-readable JSON result file.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "attack/scenario.h"
#include "core/tcsp.h"
#include "obs/json.h"
#include "testutil.h"

namespace adtc {
namespace {

using testing::SmallWorld;

struct TelemetryWorld : SmallWorld {
  NumberAuthority authority;
  Tcsp tcsp;
  std::vector<std::unique_ptr<IspNms>> nmses;
  Scenario scenario;
  obs::MemoryTelemetrySink sink;

  explicit TelemetryWorld(std::uint64_t seed = 2025)
      : SmallWorld(seed, /*transit=*/4, /*stubs=*/40),
        tcsp(net, authority, "key") {
    // Sinks attach before any control-plane activity so every span lands.
    net.telemetry().AttachSink(&sink);
    AllocateTopologyPrefixes(authority, net.node_count());
    for (NodeId node = 0; node < net.node_count(); ++node) {
      auto nms = std::make_unique<IspNms>("isp-" + std::to_string(node), net,
                                          &tcsp.validator());
      nms->ManageNode(node);
      tcsp.EnrollIsp(nms.get());
      nmses.push_back(std::move(nms));
    }

    ScenarioParams params;
    params.master_count = 2;
    params.agents_per_master = 10;
    params.reflector_count = 12;
    params.client_count = 6;
    params.client_request_rate = 20.0;
    params.directive.type = AttackType::kReflector;
    params.directive.rate_pps = 200.0;
    params.directive.duration = Seconds(6);
    params.directive.reflector_proto = Protocol::kTcp;
    params.directive.spoof = SpoofMode::kRandom;
    params.victim_config.cpu_capacity_rps = 3000.0;
    params.victim_config.cpu_burst = 300.0;
    scenario = BuildAttackScenario(net, topo, params);
  }

  OwnershipCertificate DeployDefence() {
    const Prefix scope = NodePrefix(scenario.victim_node);
    auto cert = tcsp.Register(AsOrgName(scenario.victim_node), {scope});
    EXPECT_TRUE(cert.ok()) << cert.status().ToString();
    ServiceRequest request;
    request.kind = ServiceKind::kRemoteIngressFiltering;
    request.placement = PlacementPolicy::kAllManagedNodes;
    request.control_scope = {scope};
    // Async deployment: the span tree must survive the simulator hops
    // between TCSP, each NMS, and each device install.
    DeploymentReport report;
    tcsp.DeployService(cert.value(), request,
                       CompletionPolicy::kLatencyModelled,
                       [&report](const DeploymentReport& r) { report = r; });
    net.Run(Seconds(2));
    EXPECT_TRUE(report.status.ok()) << report.status.ToString();
    return cert.value();
  }
};

double FindValue(const obs::TimeSeriesSample& sample, std::string_view name) {
  for (const obs::MetricValue& value : sample.values) {
    if (value.name == name) return value.value;
  }
  return -1.0;
}

TEST(TelemetryIntegrationTest, ScenarioRecordsSpanTreeAndTimeline) {
  const std::string timeline_path =
      ::testing::TempDir() + "/adtc_scenario_timeline.jsonl";
  {
    TelemetryWorld world(211);
    ASSERT_TRUE(world.net.telemetry().OpenJsonlTimeline(timeline_path));
    world.net.telemetry().EnableProfiling();
    world.net.telemetry().sampler().Start(Milliseconds(250));

    world.DeployDefence();
    world.scenario.attacker->Launch();
    world.net.Run(Seconds(8));

    // --- span tree: TCSP -> channel -> NMS -> channel -> device --------
    // Every management-plane hop rides a ControlChannel, and a traced
    // channel interposes one ctrl.call span (with a ctrl.attempt per try)
    // between caller and remote handler.
    const auto roots = world.sink.SpansNamed("tcsp.deploy");
    ASSERT_FALSE(roots.empty());
    bool complete_chain = false;
    for (const obs::Span* root : roots) {
      if (world.sink.HasDescendantChain(
              root->id, {"ctrl.call", "ctrl.attempt", "nms.deploy",
                         "ctrl.call", "ctrl.attempt", "device.install"})) {
        complete_chain = true;
      }
    }
    EXPECT_TRUE(complete_chain)
        << "no complete tcsp.deploy -> ctrl.call -> ctrl.attempt -> "
           "nms.deploy -> ctrl.call -> ctrl.attempt -> device.install chain";
    // Registration traced too, with its certificate-validation child.
    ASSERT_FALSE(world.sink.SpansNamed("tcsp.register").empty());
    EXPECT_TRUE(world.sink.HasDescendantChain(
        world.sink.SpansNamed("tcsp.register")[0]->id,
        {"tcsp.verify_ownership"}));
    // Every span closed before the world wound down.
    EXPECT_EQ(world.net.telemetry().tracer().open_span_count(), 0u);

    // --- sampler time series ------------------------------------------
    const auto& samples = world.sink.samples();
    ASSERT_GE(samples.size(), 10u);
    SimTime last = -1;
    double last_delivered = -1.0;
    for (const obs::TimeSeriesSample& sample : samples) {
      EXPECT_GT(sample.at, last);
      last = sample.at;
      const double delivered =
          FindValue(sample, "net.class.attack.delivered");
      ASSERT_GE(delivered, 0.0) << "per-class series missing";
      EXPECT_GE(delivered, last_delivered);
      last_delivered = delivered;
      ASSERT_GE(FindValue(sample, "net.class.legit.dropped"), 0.0);
      ASSERT_GE(FindValue(sample, "net.class.reflected.delivered"), 0.0);
    }
    // The attack actually showed up in the series.
    EXPECT_GT(FindValue(samples.back(), "net.class.attack.sent"), 0.0);

    // --- device + control-plane metrics flowed into the registry ------
    const auto snapshot = world.net.telemetry().registry().TakeSnapshot();
    bool saw_device_metric = false;
    bool saw_tcsp_metric = false;
    bool saw_profile_histogram = false;
    for (const obs::MetricValue& value : snapshot) {
      if (value.name.rfind("device.as", 0) == 0) saw_device_metric = true;
      if (value.name == "tcsp.deployments_completed" && value.value > 0.0) {
        saw_tcsp_metric = true;
      }
      if (value.name == "device.process_wall_ns.count" && value.value > 0.0) {
        saw_profile_histogram = true;
      }
    }
    EXPECT_TRUE(saw_device_metric);
    EXPECT_TRUE(saw_tcsp_metric);
    EXPECT_TRUE(saw_profile_histogram) << "profiling hooks never fired";
  }

  // --- JSONL timeline: every line is valid JSON of a known type --------
  std::ifstream in(timeline_path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t span_lines = 0;
  std::size_t sample_lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ASSERT_TRUE(obs::JsonSyntaxValid(line)) << line;
    if (line.rfind("{\"type\":\"span\"", 0) == 0) ++span_lines;
    if (line.rfind("{\"type\":\"sample\"", 0) == 0) ++sample_lines;
  }
  EXPECT_GT(span_lines, 0u);
  EXPECT_GE(sample_lines, 10u);
}

TEST(TelemetryIntegrationTest, BenchJsonOutputIsParseable) {
#ifndef ADTC_BENCH_DIR
  GTEST_SKIP() << "bench directory not provided by the build";
#else
  const std::string out_path = ::testing::TempDir() + "/t5_results.json";
  const std::string command = std::string(ADTC_BENCH_DIR) +
                              "/bench_t5_control_plane --json " + out_path +
                              " > /dev/null";
  const int rc = std::system(command.c_str());
  ASSERT_EQ(rc, 0) << command;
  std::ifstream in(out_path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_TRUE(obs::JsonSyntaxValid(json));
  EXPECT_NE(json.find("\"experiment\":\"T5\""), std::string::npos);
  EXPECT_NE(json.find("\"deploy_latency_ms"), std::string::npos);
#endif
}

}  // namespace
}  // namespace adtc
