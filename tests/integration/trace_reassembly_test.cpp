// Causal deployment tracing across async control-plane hops (the
// tentpole invariant of the forensics layer): under message loss,
// duplication, retry, relay fallback and anti-entropy resync, every
// span a deployment ever produced — on the TCSP, every NMS, every
// device channel, every peer relay — reassembles into a SINGLE rooted
// causal tree keyed by its DeploymentId tag, with no orphan spans.
#include <gtest/gtest.h>

#include "core/tcsp.h"
#include "obs/trace_analysis.h"
#include "sim/faults.h"
#include "testutil.h"

namespace adtc {
namespace {

using testing::SmallWorld;

struct TracedChaosWorld : SmallWorld {
  NumberAuthority authority;
  FaultInjector injector;
  Tcsp tcsp;
  std::vector<std::unique_ptr<IspNms>> nmses;
  obs::MemoryTelemetrySink sink;

  explicit TracedChaosWorld(std::uint64_t fault_seed, TcspConfig config)
      : SmallWorld(42, /*transit=*/3, /*stubs=*/12),
        injector(fault_seed),
        tcsp(net, authority, "trace-key", config) {
    net.telemetry().AttachSink(&sink);
    AllocateTopologyPrefixes(authority, net.node_count());
    for (NodeId node = 0; node < net.node_count(); ++node) {
      auto nms = std::make_unique<IspNms>(
          "isp-" + std::to_string(node), net, &tcsp.validator());
      nms->ManageNode(node);
      tcsp.EnrollIsp(nms.get());
      nmses.push_back(std::move(nms));
    }
    tcsp.AttachFaultInjector(&injector);
  }
};

class TraceReassemblyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TraceReassemblyTest, EveryDeploymentFormsOneRootedTree) {
  TcspConfig config;
  config.retry.initial_backoff = Milliseconds(20);
  config.retry.max_backoff = Milliseconds(500);
  config.retry.max_attempts = 6;
  config.retry.deadline = Seconds(20);
  config.relay_fallback = true;
  TracedChaosWorld world(GetParam(), config);

  ChannelFaults faults;
  faults.loss = 0.3;
  faults.duplicate = 0.2;
  faults.jitter_max = Milliseconds(30);
  world.injector.SetDefaultFaults(faults);
  world.injector.AddDeviceOutage(/*node=*/5, 0, Seconds(10));
  world.injector.AddTcspOutage(Seconds(2), Seconds(4));

  const auto cert1 = world.tcsp.Register("as7", {NodePrefix(7)});
  const auto cert2 = world.tcsp.Register("as9", {NodePrefix(9)});
  ASSERT_TRUE(cert1.ok() && cert2.ok());

  // Deployment 1: direct, but retried through heavy loss and recovered
  // on the crashed device by resync.
  ServiceRequest request1;
  request1.kind = ServiceKind::kRemoteIngressFiltering;
  request1.placement = PlacementPolicy::kAllManagedNodes;
  request1.control_scope = {NodePrefix(7)};
  world.tcsp.DeployService(cert1.value(), request1,
                           CompletionPolicy::kLatencyModelled,
                           [](const DeploymentReport&) {});
  for (auto& nms : world.nmses) nms->StartResync(Seconds(5));

  // Deployment 2: requested during the TCSP outage, so it takes the
  // peer-mesh relay path — its spans hop NMS to NMS via ctrl.send.
  world.net.Run(Seconds(3));
  ServiceRequest request2;
  request2.kind = ServiceKind::kRemoteIngressFiltering;
  request2.placement = PlacementPolicy::kAllManagedNodes;
  request2.control_scope = {NodePrefix(9)};
  const DeploymentReport report2 =
      world.tcsp.DeployService(cert2.value(), request2);
  ASSERT_EQ(report2.path, DeployPath::kRelayed);

  world.net.Run(Seconds(60));
  for (auto& nms : world.nmses) nms->StopResync();
  world.net.Run(Seconds(10));

  // No span leaked open across the whole chaotic run.
  EXPECT_EQ(world.net.telemetry().tracer().open_span_count(), 0u);

  obs::TraceAnalyzer analyzer;
  analyzer.Analyze(world.sink.spans());
  const obs::TraceSummary& summary = analyzer.summary();
  ASSERT_EQ(summary.deployment_count, 2u);
  for (const auto& [tag, timeline] : analyzer.timelines()) {
    EXPECT_TRUE(timeline.Complete())
        << "deployment " << tag << " reassembled into "
        << timeline.roots.size() << " roots with " << timeline.orphan_count
        << " orphan span(s)";
    // The chaos actually exercised the async machinery this test is
    // about: multiple RPCs, and spans from more than one component.
    EXPECT_GT(timeline.call_count, 1u) << tag;
    EXPECT_GE(timeline.spans.size(), 4u) << tag;
  }
  EXPECT_TRUE(analyzer.AllComplete());

  // Retries happened (loss was real), and the analyzer attributed the
  // lost messages to named channels.
  EXPECT_GT(summary.retry_amplification, 1.0);
  EXPECT_FALSE(summary.lost_by_channel.empty());

  // The relayed deployment's timeline contains peer-relay sends.
  bool saw_relay_sends = false;
  for (const auto& [tag, timeline] : analyzer.timelines()) {
    if (timeline.send_count > 0) saw_relay_sends = true;
  }
  EXPECT_TRUE(saw_relay_sends);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceReassemblyTest,
                         ::testing::Values(3u, 7u, 31u));

TEST(TraceReassemblyTest, ResyncRecoverySpansJoinTheDeploymentTree) {
  // A device down for the whole initial install window: only the
  // anti-entropy resync can converge it, and the recovery spans must
  // still attach to the same causal tree.
  TcspConfig config;
  config.retry.initial_backoff = Milliseconds(20);
  config.retry.max_backoff = Milliseconds(200);
  config.retry.max_attempts = 3;
  config.retry.deadline = Seconds(5);
  TracedChaosWorld world(/*fault_seed=*/11, config);
  world.injector.AddDeviceOutage(/*node=*/4, 0, Seconds(20));

  const auto cert = world.tcsp.Register("as7", {NodePrefix(7)});
  ASSERT_TRUE(cert.ok());
  ServiceRequest request;
  request.kind = ServiceKind::kRemoteIngressFiltering;
  request.placement = PlacementPolicy::kAllManagedNodes;
  request.control_scope = {NodePrefix(7)};
  world.tcsp.DeployService(cert.value(), request,
                           CompletionPolicy::kLatencyModelled,
                           [](const DeploymentReport&) {});
  for (auto& nms : world.nmses) nms->StartResync(Seconds(5));
  world.net.Run(Seconds(40));
  for (auto& nms : world.nmses) nms->StopResync();
  world.net.Run(Seconds(5));

  ASSERT_EQ(world.nmses[4]->CountDeployments(cert.value().subscriber), 1u);

  obs::TraceAnalyzer analyzer;
  analyzer.Analyze(world.sink.spans());
  ASSERT_EQ(analyzer.summary().deployment_count, 1u);
  const obs::DeploymentTimeline& timeline =
      analyzer.timelines().begin()->second;
  EXPECT_TRUE(timeline.Complete());
  // The recovery is visible as resync_install spans inside the tree.
  EXPECT_GT(timeline.resync_count, 0u);
}

}  // namespace
}  // namespace adtc
