// Whole-system chaos + adversary containment (the Sec. 4.5 threat model
// under the Sec. 5.1 availability argument, combined): data-plane link
// loss/corruption, a flapping link, a router crash/restart, lossy
// control channels AND a fully compromised ISP NMS running every misuse
// scenario at once — bogus deployments under forged certificates,
// mutated replays of a known instruction, stale credentials and a
// module that lies about its effect signature. The invariants:
//   * containment — adversary state exists only on the compromised
//     ISP's own devices (blast radius bounded), every outward offer is
//     rejected with the precise typed Status, and the lying module is
//     quarantined by the runtime guard;
//   * recovery — the crashed router reconverges via anti-entropy resync
//     while the attack is still running;
//   * service — the victim's legitimate traffic keeps flowing, and
//     runtime operations (statistics reads) still complete end to end
//     over the faulty channels;
//   * inertness — an attached injector with an all-zero plan leaves the
//     world's end-state metrics identical to no injector at all.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "analysis/containment.h"
#include "attack/adversary.h"
#include "attack/scenario.h"
#include "core/tcsp.h"
#include "sim/faults.h"
#include "testutil.h"

namespace adtc {
namespace {

using testing::SmallWorld;

LinkParams FastLink() {
  return LinkParams{GigabitsPerSecond(1), Milliseconds(1), 1024 * 1024};
}

struct ContainmentWorld : SmallWorld {
  NumberAuthority authority;
  FaultInjector injector;
  Tcsp tcsp;
  std::vector<std::unique_ptr<IspNms>> nmses;

  explicit ContainmentWorld(std::uint64_t fault_seed, TcspConfig config)
      : SmallWorld(42),
        injector(fault_seed),
        tcsp(net, authority, "chaos-key", config) {
    AllocateTopologyPrefixes(authority, net.node_count());
    for (NodeId node = 0; node < net.node_count(); ++node) {
      auto nms = std::make_unique<IspNms>(
          "isp-" + std::to_string(node), net, &tcsp.validator());
      nms->ManageNode(node);
      tcsp.EnrollIsp(nms.get());
      nmses.push_back(std::move(nms));
    }
    // Control plane and data plane share one fault plan (and one shard).
    tcsp.AttachFaultInjector(&injector);
    net.AttachFaultInjector(&injector);
  }

  std::size_t TotalDeployments(SubscriberId subscriber) const {
    std::size_t total = 0;
    for (const auto& nms : nmses) {
      total += nms->CountDeployments(subscriber);
    }
    return total;
  }
};

class ChaosContainmentTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosContainmentTest, AdversaryStaysContainedUnderFaults) {
  TcspConfig config;
  config.retry.initial_backoff = Milliseconds(20);
  config.retry.max_backoff = Milliseconds(500);
  config.retry.max_attempts = 6;
  config.retry.deadline = Seconds(20);
  ContainmentWorld world(GetParam(), config);

  // --- the fault plan: pressure on both planes ---------------------------
  LinkFaults link_faults;
  link_faults.loss = 0.01;
  link_faults.corrupt = 0.005;
  world.injector.SetDefaultLinkFaults(link_faults);
  world.injector.AddLinkFlap(0, Seconds(4), Seconds(4) + Milliseconds(500));
  ChannelFaults channel_faults;
  channel_faults.loss = 0.1;
  channel_faults.duplicate = 0.1;
  channel_faults.jitter_max = Milliseconds(10);
  world.injector.SetDefaultFaults(channel_faults);

  // --- the honest workload: a victim under flood, defended ---------------
  ScenarioParams params;
  params.master_count = 2;
  params.agents_per_master = 8;
  params.client_count = 0;
  params.reflector_count = 2;
  params.directive.type = AttackType::kDirectFlood;
  params.directive.spoof = SpoofMode::kVictim;
  params.directive.rate_pps = 100.0;
  params.directive.duration = Seconds(14);
  Scenario scenario = BuildAttackScenario(world.net, world.topo, params);
  const NodeId victim = scenario.victim_node;

  std::vector<NodeId> free_stubs;
  for (NodeId stub : world.topo.stub_nodes) {
    if (stub != victim) free_stubs.push_back(stub);
  }
  ASSERT_GE(free_stubs.size(), 4u);
  const NodeId evil = free_stubs[0];          // the compromised ISP
  const NodeId honest_origin = free_stubs[1]; // source of a captured instr
  const NodeId client_node = free_stubs[2];

  auto* victim_server = SpawnHost<Server>(world.net, victim, FastLink());
  ClientConfig victim_client_config;
  victim_client_config.server = victim_server->address();
  victim_client_config.kind = RequestKind::kUdpRequest;
  victim_client_config.request_rate = 100.0;
  auto* victim_client = SpawnHost<Client>(world.net, client_node, FastLink(),
                                          victim_client_config);
  // Traffic through the compromised ISP's device, to trip the lying
  // module's runtime mutation.
  auto* evil_server = SpawnHost<Server>(world.net, evil, FastLink());
  ClientConfig evil_client_config;
  evil_client_config.server = evil_server->address();
  evil_client_config.kind = RequestKind::kUdpRequest;
  evil_client_config.request_rate = 100.0;
  auto* evil_client = SpawnHost<Client>(world.net, free_stubs[3], FastLink(),
                                        evil_client_config);

  const auto victim_cert =
      world.tcsp.Register(AsOrgName(victim), {NodePrefix(victim)});
  ASSERT_TRUE(victim_cert.ok());
  ServiceRequest filtering;
  filtering.kind = ServiceKind::kRemoteIngressFiltering;
  filtering.placement = PlacementPolicy::kAllManagedNodes;
  filtering.control_scope = {NodePrefix(victim)};
  ASSERT_TRUE(
      world.tcsp.DeployService(victim_cert.value(), filtering).status.ok());

  // A known, widely-installed instruction the adversary will replay with
  // mutated content: every honest NMS records its id + digest.
  const auto honest_cert = world.tcsp.Register(AsOrgName(honest_origin),
                                               {NodePrefix(honest_origin)});
  ASSERT_TRUE(honest_cert.ok());
  DeploymentInstruction captured;
  captured.id = DeploymentId{DeploymentOriginTag("captured"), 1};
  captured.cert = honest_cert.value();
  captured.request.kind = ServiceKind::kStatistics;
  captured.request.placement = PlacementPolicy::kAllManagedNodes;
  captured.request.control_scope = {NodePrefix(honest_origin)};
  for (auto& nms : world.nmses) {
    ASSERT_TRUE(nms->ApplyDeployment(captured,
                                     world.tcsp.certificate_authority())
                    .ok());
  }

  // The victim's router crashes mid-attack; resync must re-converge it.
  world.injector.AddRouterRestart(victim, Seconds(6));
  world.nmses[victim]->ArmRouterRestarts();
  for (auto& nms : world.nmses) nms->StartResync(Seconds(3));
  // Keep the compromised ISP's detection upcall observable: losing the
  // one safety-violation event would only measure channel luck, not
  // containment.
  world.injector.SetChannelFaults(
      "dev:" + std::to_string(evil) + "->nms:isp-" + std::to_string(evil),
      ChannelFaults{});

  victim_client->Start();
  evil_client->Start();
  scenario.attacker->Launch();
  world.net.Run(Seconds(2));

  // --- the adversary: every misuse scenario from one compromised NMS ----
  Adversary adversary(*world.nmses[evil], world.tcsp.certificate_authority());

  // kLyingSignature: valid certificate, lying module, straight onto the
  // compromised ISP's devices.
  const auto evil_cert =
      world.tcsp.Register(AsOrgName(evil), {NodePrefix(evil)});
  ASSERT_TRUE(evil_cert.ok());
  EXPECT_EQ(adversary.InstallLyingDeployment(evil_cert.value(),
                                             /*misbehave_after=*/50),
            1u);

  // kForgedCertificate / kCompromisedNms: bogus deployment under a
  // fabricated certificate, applied locally and offered to every peer.
  const SubscriberId bogus_subscriber = 4242;
  const Adversary::BogusOutcome bogus = adversary.PushBogusDeployment(
      bogus_subscriber, {NodePrefix(world.topo.transit_nodes[0])},
      world.net.Now());
  EXPECT_EQ(bogus.own_devices_applied, 1u);
  ASSERT_EQ(bogus.peer_outcomes.size(), world.nmses.size() - 1);
  for (const Status& status : bogus.peer_outcomes) {
    EXPECT_EQ(status.code(), ErrorCode::kPermissionDenied)
        << status.ToString();
  }

  // kReplayedInstruction: the captured id, mutated.
  const std::vector<Status> replays = adversary.ReplayMutated(captured);
  ASSERT_EQ(replays.size(), world.nmses.size() - 1);
  for (const Status& status : replays) {
    EXPECT_EQ(status.code(), ErrorCode::kReplayDetected)
        << status.ToString();
  }

  // kExpiredCertificate: genuinely signed (same key as the TCSP), long
  // since expired.
  CertificateAuthority twin_ca("chaos-key");
  const SubscriberId stale_subscriber = 8888;
  const OwnershipCertificate stale =
      twin_ca.Issue(stale_subscriber, "stale-org", {NodePrefix(evil)},
                    /*now=*/0, /*validity=*/Milliseconds(1));
  ServiceRequest stale_request;
  stale_request.kind = ServiceKind::kStatistics;
  stale_request.control_scope = {NodePrefix(evil)};
  const std::vector<Status> stale_outcomes =
      adversary.OfferStaleCertificate(stale, stale_request);
  ASSERT_EQ(stale_outcomes.size(), world.nmses.size() - 1);
  for (const Status& status : stale_outcomes) {
    EXPECT_EQ(status.code(), ErrorCode::kExpired) << status.ToString();
  }

  // Let the chaos, the attack and the recovery machinery all play out.
  world.net.Run(Seconds(12));
  for (auto& nms : world.nmses) nms->StopResync();

  // A runtime operation still completes end to end over the faulty
  // channels: provisional return now, definitive result via the
  // completion callback once every ISP leg has been retried through.
  bool stats_read_done = false;
  Result<Tcsp::StatisticsReport> stats_read = Status(Unavailable("pending"));
  const auto provisional = world.tcsp.ReadStatistics(
      honest_cert.value().subscriber,
      [&](const Result<Tcsp::StatisticsReport>& result) {
        stats_read_done = true;
        stats_read = result;
      });
  world.net.Run(Seconds(10));
  ASSERT_TRUE(stats_read_done);
  ASSERT_TRUE(stats_read.ok()) << stats_read.status().ToString();
  EXPECT_GT(stats_read.value().vantage_points, 0u);

  // --- containment verdict ----------------------------------------------
  // The lying module was caught and quarantined on the offender.
  AdaptiveDevice* evil_device = world.nmses[evil]->device(evil);
  EXPECT_TRUE(evil_device->IsQuarantined(evil_cert.value().subscriber));
  EXPECT_GE(evil_device->stats().safety_violations, 1u);

  // The crashed victim router really restarted and reconverged.
  EXPECT_EQ(world.nmses[victim]->stats().device_restarts, 1u);
  EXPECT_TRUE(world.nmses[victim]->device(victim)->HasDeployment(
      victim_cert.value().subscriber));
  // The honest defence converged world-wide despite all of it.
  EXPECT_EQ(world.TotalDeployments(victim_cert.value().subscriber),
            world.net.node_count());

  // Ground truth for the blast radius: which devices carry any adversary
  // subscriber state.
  const std::vector<SubscriberId> adversary_subscribers = {
      bogus_subscriber, evil_cert.value().subscriber, stale_subscriber};
  analysis::ContainmentInputs inputs;
  inputs.total_devices = world.net.node_count();
  inputs.goodput_floor = 0.5;
  for (NodeId node = 0; node < world.net.node_count(); ++node) {
    const AdaptiveDevice* device = world.nmses[node]->device(node);
    bool affected = false;
    for (SubscriberId subscriber : adversary_subscribers) {
      affected = affected || device->HasDeployment(subscriber);
    }
    if (!affected) continue;
    if (node == evil) {
      inputs.offender_devices_affected++;
    } else {
      inputs.honest_devices_affected++;
    }
  }

  const analysis::ContainmentReport report = analysis::BuildContainmentReport(
      world.net.telemetry().registry().TakeSnapshot(), inputs);
  SCOPED_TRACE(report.ToString());
  EXPECT_TRUE(report.contained);
  EXPECT_EQ(report.honest_nodes_affected, 0u);
  EXPECT_GE(report.nodes_affected, 1u);
  EXPECT_LE(report.blast_radius,
            1.0 / static_cast<double>(world.net.node_count()));
  EXPECT_GE(report.replays_rejected, replays.size());
  EXPECT_GE(report.certs_expired_rejected, stale_outcomes.size());
  EXPECT_GE(report.certs_forged_rejected, bogus.peer_outcomes.size());
  EXPECT_GE(report.quarantines, 1u);
  EXPECT_EQ(report.device_restarts, 1u);
  EXPECT_GE(report.victim_goodput_retained, 0.5);
  // The chaos was real: the data plane actually lost packets to faults.
  EXPECT_GT(report.packets_lost + report.packets_corrupted +
                report.link_down_drops,
            0u);
  EXPECT_GT(world.injector.stats().messages_lost, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosContainmentTest,
                         ::testing::Values(11u, 23u, 47u));

/// Runs one honest fault-free workload and returns the end-state metric
/// snapshot, with an all-zero injector attached (when given) or none.
obs::MetricsSnapshot RunHonestWorld(FaultInjector* injector) {
  SmallWorld world(42);
  NumberAuthority authority;
  TcspConfig config;
  Tcsp tcsp(world.net, authority, "chaos-key", config);
  AllocateTopologyPrefixes(authority, world.net.node_count());
  std::vector<std::unique_ptr<IspNms>> nmses;
  for (NodeId node = 0; node < world.net.node_count(); ++node) {
    auto nms = std::make_unique<IspNms>(
        "isp-" + std::to_string(node), world.net, &tcsp.validator());
    nms->ManageNode(node);
    tcsp.EnrollIsp(nms.get());
    nmses.push_back(std::move(nms));
  }
  if (injector != nullptr) {
    tcsp.AttachFaultInjector(injector);
    world.net.AttachFaultInjector(injector);
  }

  ScenarioParams params;
  params.master_count = 2;
  params.agents_per_master = 6;
  params.client_count = 0;
  params.reflector_count = 2;
  params.directive.type = AttackType::kDirectFlood;
  params.directive.spoof = SpoofMode::kVictim;
  params.directive.rate_pps = 100.0;
  params.directive.duration = Seconds(6);
  Scenario scenario = BuildAttackScenario(world.net, world.topo, params);
  const NodeId victim = scenario.victim_node;

  auto* server = SpawnHost<Server>(world.net, victim, FastLink());
  ClientConfig client_config;
  client_config.server = server->address();
  client_config.kind = RequestKind::kUdpRequest;
  client_config.request_rate = 100.0;
  const NodeId client_node = world.topo.stub_nodes[0] == victim
                                 ? world.topo.stub_nodes[1]
                                 : world.topo.stub_nodes[0];
  auto* client =
      SpawnHost<Client>(world.net, client_node, FastLink(), client_config);

  const auto cert = tcsp.Register(AsOrgName(victim), {NodePrefix(victim)});
  EXPECT_TRUE(cert.ok());
  ServiceRequest request;
  request.kind = ServiceKind::kRemoteIngressFiltering;
  request.placement = PlacementPolicy::kAllManagedNodes;
  request.control_scope = {NodePrefix(victim)};
  EXPECT_TRUE(tcsp.DeployService(cert.value(), request).status.ok());

  client->Start();
  scenario.attacker->Launch();
  world.net.Run(Seconds(8));
  return world.net.telemetry().registry().TakeSnapshot();
}

/// Strips metrics that merely *observe* the injector (fault counters,
/// per-link fault cells, event totals) — everything else must be
/// bit-identical between an all-zero injector and none at all.
obs::MetricsSnapshot BehaviouralMetrics(const obs::MetricsSnapshot& in) {
  auto starts_with = [](const std::string& name, std::string_view prefix) {
    return name.size() >= prefix.size() &&
           std::string_view(name).substr(0, prefix.size()) == prefix;
  };
  obs::MetricsSnapshot out;
  for (const obs::MetricValue& metric : in) {
    if (starts_with(metric.name, "faults.") ||
        starts_with(metric.name, "sim.") ||
        starts_with(metric.name, "net.link") ||
        starts_with(metric.name, "net.drops.link-")) {
      continue;
    }
    out.push_back(metric);
  }
  return out;
}

TEST(ChaosContainmentTest, AllZeroInjectorLeavesEndStateIdentical) {
  // The inertness contract, checked differentially on end state (the
  // event *count* legitimately differs — channels schedule instead of
  // running inline — but every behavioural outcome must not).
  FaultInjector injector(9);
  const obs::MetricsSnapshot with_injector =
      BehaviouralMetrics(RunHonestWorld(&injector));
  const obs::MetricsSnapshot without =
      BehaviouralMetrics(RunHonestWorld(nullptr));
  ASSERT_EQ(with_injector.size(), without.size());
  for (std::size_t i = 0; i < without.size(); ++i) {
    EXPECT_EQ(with_injector[i].name, without[i].name);
    EXPECT_EQ(with_injector[i].value, without[i].value)
        << "metric " << without[i].name
        << " diverged under an all-zero injector";
  }
  // And the all-zero plan consumed no randomness while doing it.
  EXPECT_EQ(injector.stats().messages_lost, 0u);
  EXPECT_EQ(injector.stats().packets_lost, 0u);
  EXPECT_GT(injector.stats().messages_planned, 0u);
  EXPECT_GT(injector.stats().packets_planned, 0u);
}

}  // namespace
}  // namespace adtc
