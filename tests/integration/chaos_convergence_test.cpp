// Seeded chaos over the fault-injected control plane (Sec. 5.1): heavy
// message loss, duplication and jitter on every control channel, a TCSP
// outage window, and a device that is crashed through the first
// deployment. The invariants under test:
//   * eventual convergence — every managed device ends up carrying every
//     deployment despite the fault plan (retries + anti-entropy resync);
//   * exactly-once effects — no device applies an instruction twice and
//     no NMS double-counts an installation, no matter how many times the
//     channels re-deliver;
//   * graceful degradation — a deploy requested during the TCSP outage
//     takes the peer-mesh relay path instead of failing.
#include <gtest/gtest.h>

#include "core/tcsp.h"
#include "obs/trace_analysis.h"
#include "sim/faults.h"
#include "testutil.h"

namespace adtc {
namespace {

using testing::SmallWorld;

struct ChaosWorld : SmallWorld {
  NumberAuthority authority;
  FaultInjector injector;
  Tcsp tcsp;
  std::vector<std::unique_ptr<IspNms>> nmses;
  /// Records every control-plane span for the trace-completeness check.
  obs::MemoryTelemetrySink sink;

  explicit ChaosWorld(std::uint64_t fault_seed, TcspConfig config)
      : SmallWorld(42),
        injector(fault_seed),
        tcsp(net, authority, "tcsp-signing-key", config) {
    net.telemetry().AttachSink(&sink);
    AllocateTopologyPrefixes(authority, net.node_count());
    for (NodeId node = 0; node < net.node_count(); ++node) {
      auto nms = std::make_unique<IspNms>(
          "isp-" + std::to_string(node), net, &tcsp.validator());
      nms->ManageNode(node);
      tcsp.EnrollIsp(nms.get());
      nmses.push_back(std::move(nms));
    }
    tcsp.AttachFaultInjector(&injector);
  }

  std::size_t TotalDeployments(SubscriberId subscriber) const {
    std::size_t total = 0;
    for (const auto& nms : nmses) {
      total += nms->CountDeployments(subscriber);
    }
    return total;
  }
};

class ChaosConvergenceTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosConvergenceTest, ConvergesExactlyOnceUnderChaos) {
  TcspConfig config;
  config.retry.initial_backoff = Milliseconds(20);
  config.retry.max_backoff = Milliseconds(500);
  config.retry.max_attempts = 6;
  config.retry.deadline = Seconds(20);
  config.relay_fallback = true;
  ChaosWorld world(GetParam(), config);

  // 30% loss plus duplication and delivery jitter on every channel.
  ChannelFaults faults;
  faults.loss = 0.3;
  faults.duplicate = 0.2;
  faults.jitter_max = Milliseconds(30);
  world.injector.SetDefaultFaults(faults);
  // One device is crashed from the start and recovers at t=10s.
  const NodeId crashed = 5;
  world.injector.AddDeviceOutage(crashed, 0, Seconds(10));
  // The TCSP itself is under attack during [2s, 4s).
  world.injector.AddTcspOutage(Seconds(2), Seconds(4));

  // Both certificates are issued while the TCSP is up.
  const auto cert1 = world.tcsp.Register("as7", {NodePrefix(7)});
  const auto cert2 = world.tcsp.Register("as9", {NodePrefix(9)});
  ASSERT_TRUE(cert1.ok() && cert2.ok());

  ServiceRequest request1;
  request1.kind = ServiceKind::kRemoteIngressFiltering;
  request1.placement = PlacementPolicy::kAllManagedNodes;
  request1.control_scope = {NodePrefix(7)};

  bool completed = false;
  DeploymentReport report1;
  world.tcsp.DeployService(cert1.value(), request1,
                           CompletionPolicy::kLatencyModelled,
                           [&](const DeploymentReport& report) {
                             completed = true;
                             report1 = report;
                           });
  for (auto& nms : world.nmses) nms->StartResync(Seconds(5));

  // Into the TCSP outage window: the second deployment cannot reach the
  // TCSP and degrades to the peer-mesh relay.
  world.net.Run(Seconds(3));
  ServiceRequest request2;
  request2.kind = ServiceKind::kRemoteIngressFiltering;
  request2.placement = PlacementPolicy::kAllManagedNodes;
  request2.control_scope = {NodePrefix(9)};
  const DeploymentReport report2 =
      world.tcsp.DeployService(cert2.value(), request2);
  EXPECT_EQ(report2.path, DeployPath::kRelayed);
  EXPECT_EQ(world.tcsp.stats().relay_fallbacks, 1u);

  world.net.Run(Seconds(60));
  for (auto& nms : world.nmses) nms->StopResync();
  world.net.Run(Seconds(10));

  // The direct deployment completed (possibly with per-ISP retries).
  ASSERT_TRUE(completed);
  EXPECT_EQ(report1.isp_outcomes.size(), world.nmses.size());

  // Eventual convergence: every device carries both deployments.
  EXPECT_EQ(world.TotalDeployments(cert1.value().subscriber),
            world.net.node_count());
  EXPECT_EQ(world.TotalDeployments(cert2.value().subscriber),
            world.net.node_count());
  // The crashed device was recovered by the anti-entropy path.
  EXPECT_EQ(world.nmses[crashed]->CountDeployments(
                cert1.value().subscriber),
            1u);

  // Exactly-once effects: despite duplicated and retried instructions,
  // each device applied at most one effectful install per deployment and
  // each NMS counted each deployment once.
  for (const auto& nms : world.nmses) {
    for (NodeId node : nms->managed_nodes()) {
      const DeviceStats& stats = nms->device(node)->stats();
      EXPECT_LE(stats.installs_applied, 2u)
          << "device " << node << " applied an install twice";
      EXPECT_EQ(nms->device(node)->deployment_count(), 2u);
    }
    EXPECT_LE(nms->stats().deployments_installed, 2u);
    EXPECT_LE(nms->applied_instruction_count(), 2u);
  }

  // The chaos was real: messages were actually lost, and the control
  // plane worked around them.
  EXPECT_GT(world.injector.stats().messages_lost, 0u);
  EXPECT_GT(world.injector.stats().messages_duplicated, 0u);

  // Forensic completeness: after all the loss, duplication, relays and
  // resync sweeps, every deployment's spans still reassemble into a
  // single rooted causal tree (no orphan spans), and no span leaked
  // open.
  EXPECT_EQ(world.net.telemetry().tracer().open_span_count(), 0u);
  obs::TraceAnalyzer analyzer;
  analyzer.Analyze(world.sink.spans());
  EXPECT_EQ(analyzer.summary().deployment_count, 2u);
  for (const auto& [tag, timeline] : analyzer.timelines()) {
    EXPECT_TRUE(timeline.Complete())
        << "deployment " << tag << ": " << timeline.roots.size()
        << " roots, " << timeline.orphan_count << " orphan span(s)";
  }
  EXPECT_TRUE(analyzer.AllComplete());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosConvergenceTest,
                         ::testing::Values(3u, 7u, 31u));

TEST(ChaosConvergenceTest, RouterRestartRecoversViaResync) {
  // A router crash/restart wipes the adaptive device's RAM mid-attack:
  // module graphs, install records and flow-cache state are gone. The
  // anti-entropy machinery must notice and re-converge the device, and
  // the flow cache must repopulate from live traffic.
  TcspConfig config;
  ChaosWorld world(/*fault_seed=*/5, config);
  const NodeId home = world.topo.stub_nodes[0];
  const LinkParams fast{GigabitsPerSecond(1), Milliseconds(1), 1024 * 1024};
  auto* server = SpawnHost<Server>(world.net, home, fast);
  ClientConfig cconfig;
  cconfig.server = server->address();
  cconfig.kind = RequestKind::kUdpRequest;
  cconfig.request_rate = 200.0;
  auto* client = SpawnHost<Client>(world.net, world.topo.stub_nodes[5],
                                   fast, cconfig);

  const auto cert = world.tcsp.Register(AsOrgName(home), {NodePrefix(home)});
  ASSERT_TRUE(cert.ok());
  ServiceRequest request;
  request.kind = ServiceKind::kRemoteIngressFiltering;
  request.placement = PlacementPolicy::kAllManagedNodes;
  request.control_scope = {NodePrefix(home)};
  ASSERT_TRUE(world.tcsp.DeployService(cert.value(), request).status.ok());

  AdaptiveDevice* device = world.nmses[home]->device(home);
  client->Start();
  world.net.Run(Seconds(3));
  ASSERT_TRUE(device->HasDeployment(cert.value().subscriber));
  ASSERT_GT(device->flow_cache_size(), 0u);
  EXPECT_EQ(device->stats().installs_applied, 1u);

  // Crash at t=5s; arming is idempotent, so re-arming after adding the
  // restart to the already-attached injector schedules exactly one event.
  world.injector.AddRouterRestart(home, Seconds(5));
  world.nmses[home]->ArmRouterRestarts();
  world.nmses[home]->ArmRouterRestarts();
  for (auto& nms : world.nmses) nms->StartResync(Seconds(2));
  world.net.Run(Seconds(9));
  for (auto& nms : world.nmses) nms->StopResync();

  // The restart really happened and really wiped state...
  EXPECT_EQ(device->stats().restarts, 1u);
  EXPECT_EQ(world.nmses[home]->stats().device_restarts, 1u);
  // ...and the control plane re-converged the device: the deployment is
  // back (a second effectful install, not a replayed record) and the
  // flow cache repopulated from the still-running traffic.
  EXPECT_TRUE(device->HasDeployment(cert.value().subscriber));
  EXPECT_EQ(device->deployment_count(), 1u);
  EXPECT_EQ(device->stats().installs_applied, 2u);
  EXPECT_GT(device->flow_cache_size(), 0u);
}

TEST(ChaosConvergenceTest, FaultFreeInjectorIsBehaviourallyInert) {
  // Attaching an injector with an all-zero plan must not change the
  // outcome of a plain immediate deployment.
  TcspConfig config;
  ChaosWorld world(/*fault_seed=*/1, config);
  const auto cert = world.tcsp.Register("as7", {NodePrefix(7)});
  ASSERT_TRUE(cert.ok());
  ServiceRequest request;
  request.kind = ServiceKind::kRemoteIngressFiltering;
  request.placement = PlacementPolicy::kAllManagedNodes;
  request.control_scope = {NodePrefix(7)};
  world.tcsp.DeployService(cert.value(), request);
  world.net.Run(Seconds(5));
  EXPECT_EQ(world.TotalDeployments(cert.value().subscriber),
            world.net.node_count());
  EXPECT_EQ(world.injector.stats().messages_lost, 0u);
  for (const auto& nms : world.nmses) {
    EXPECT_EQ(nms->stats().install_retries, 0u);
  }
}

}  // namespace
}  // namespace adtc
