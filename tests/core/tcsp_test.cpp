#include "core/tcsp.h"

#include <gtest/gtest.h>

#include "core/traceback_service.h"
#include "sim/faults.h"
#include "testutil.h"

namespace adtc {
namespace {

using testing::SmallWorld;

/// A world with a number authority, a TCSP and one NMS per AS.
struct TcsWorld : SmallWorld {
  NumberAuthority authority;
  Tcsp tcsp;
  std::vector<std::unique_ptr<IspNms>> nmses;

  explicit TcsWorld(std::uint64_t seed = 42, TcspConfig config = {})
      : SmallWorld(seed), tcsp(net, authority, "tcsp-signing-key", config) {
    AllocateTopologyPrefixes(authority, net.node_count());
    // One ISP per AS, each managing its own router.
    for (NodeId node = 0; node < net.node_count(); ++node) {
      auto nms = std::make_unique<IspNms>("isp-" + std::to_string(node), net,
                                          &tcsp.validator());
      nms->ManageNode(node);
      tcsp.EnrollIsp(nms.get());
      nmses.push_back(std::move(nms));
    }
  }
};

TEST(TcspTest, RegistrationVerifiesOwnership) {
  TcsWorld world;
  // as7 registers for its own prefix: accepted.
  const auto good = world.tcsp.Register("as7", {NodePrefix(7)});
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  EXPECT_EQ(good.value().subject, "as7");
  ADTC_EXPECT_OK(world.tcsp.certificate_authority().Verify(
      good.value(), world.net.Now()));

  // as7 claiming as8's prefix: rejected.
  const auto theft = world.tcsp.Register("as7", {NodePrefix(8)});
  EXPECT_FALSE(theft.ok());
  EXPECT_EQ(theft.status().code(), ErrorCode::kPermissionDenied);

  EXPECT_EQ(world.tcsp.stats().registrations_accepted, 1u);
  EXPECT_EQ(world.tcsp.stats().registrations_rejected, 1u);
}

TEST(TcspTest, RegistrationRejectsBadIdentity) {
  TcsWorld world;
  const auto result =
      world.tcsp.Register("as7", {NodePrefix(7)}, /*identity_ok=*/false);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kPermissionDenied);
}

TEST(TcspTest, RegistrationRejectsEmptyClaim) {
  TcsWorld world;
  EXPECT_EQ(world.tcsp.Register("as7", {}).status().code(),
            ErrorCode::kInvalidArgument);
}

TEST(TcspTest, SubscriberIdsAreUnique) {
  TcsWorld world;
  const auto a = world.tcsp.Register("as1", {NodePrefix(1)});
  const auto b = world.tcsp.Register("as2", {NodePrefix(2)});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a.value().subscriber, b.value().subscriber);
}

TEST(TcspTest, ImmediateDeployConfiguresAllIsps) {
  TcsWorld world;
  const auto cert = world.tcsp.Register("as7", {NodePrefix(7)});
  ASSERT_TRUE(cert.ok());

  ServiceRequest request;
  request.kind = ServiceKind::kRemoteIngressFiltering;
  request.placement = PlacementPolicy::kAllManagedNodes;
  request.control_scope = {NodePrefix(7)};
  const DeploymentReport report =
      world.tcsp.DeployService(cert.value(), request);
  ASSERT_TRUE(report.status.ok()) << report.status.ToString();
  EXPECT_EQ(report.isps_configured, world.net.node_count());
  EXPECT_EQ(report.devices_configured, world.net.node_count());
  // Every device now has the deployment.
  for (auto& nms : world.nmses) {
    EXPECT_EQ(nms->CountDeployments(cert.value().subscriber), 1u);
  }
}

TEST(TcspTest, DeploymentReportCarriesAnalysisProof) {
  TcsWorld world;
  const auto cert = world.tcsp.Register("as7", {NodePrefix(7)});
  ASSERT_TRUE(cert.ok());
  ServiceRequest request;
  request.kind = ServiceKind::kRemoteIngressFiltering;
  request.placement = PlacementPolicy::kAllManagedNodes;
  request.control_scope = {NodePrefix(7)};
  const DeploymentReport report =
      world.tcsp.DeployService(cert.value(), request);
  ASSERT_TRUE(report.status.ok()) << report.status.ToString();
  EXPECT_EQ(report.analysis.status, analysis::AnalysisStatus::kProven);
  EXPECT_GT(report.analysis.modules_examined, 0u);
  EXPECT_GT(report.analysis.paths_covered, 0u);
  EXPECT_TRUE(report.analysis.violations.empty());
  // Every NMS admission of the per-stage graphs counted as a proof.
  EXPECT_GT(world.tcsp.validator().analysis_stats().graphs_verified, 0u);
  EXPECT_EQ(world.tcsp.validator().analysis_stats().graphs_rejected, 0u);
}

TEST(TcspTest, RuntimeViolationOfProvenDeploymentFlagsSoundness) {
  // The soundness-oracle loop: a deployment the analyzer proved safe is
  // later quarantined by the runtime guard (a module lied). The NMS must
  // flag the contradiction, count it on the shared validator, and log a
  // kAnalysisSoundness event next to the original violation.
  TcsWorld world;
  const auto cert = world.tcsp.Register("as7", {NodePrefix(7)});
  ASSERT_TRUE(cert.ok());
  ServiceRequest request;
  request.kind = ServiceKind::kRemoteIngressFiltering;
  request.placement = PlacementPolicy::kAllManagedNodes;
  request.control_scope = {NodePrefix(7)};
  const DeploymentReport report =
      world.tcsp.DeployService(cert.value(), request);
  ASSERT_TRUE(report.status.ok()) << report.status.ToString();
  ASSERT_TRUE(report.analysis.proven());

  IspNms& nms = *world.nmses.front();
  DeviceEvent quarantine;
  quarantine.kind = EventKind::kSafetyViolation;
  quarantine.subscriber = cert.value().subscriber;
  quarantine.detail = "invariant source_modified";
  nms.OnEvent(quarantine);

  EXPECT_EQ(nms.stats().soundness_flags, 1u);
  EXPECT_EQ(world.tcsp.validator().analysis_stats().soundness_violations, 1u);
  EXPECT_EQ(nms.events().CountOf(EventKind::kAnalysisSoundness), 1u);
  EXPECT_EQ(nms.events().CountOf(EventKind::kSafetyViolation), 1u);

  // A violation from a subscriber with no proven deployment is NOT a
  // soundness flag — nothing was proven about it.
  DeviceEvent unrelated = quarantine;
  unrelated.subscriber = cert.value().subscriber + 1;
  nms.OnEvent(unrelated);
  EXPECT_EQ(nms.stats().soundness_flags, 1u);
  EXPECT_EQ(world.tcsp.validator().analysis_stats().soundness_violations, 1u);
}

TEST(TcspTest, PlacementPolicyRestrictsNodes) {
  TcsWorld world;
  const auto cert = world.tcsp.Register("as7", {NodePrefix(7)});
  ASSERT_TRUE(cert.ok());
  ServiceRequest request;
  request.kind = ServiceKind::kRemoteIngressFiltering;
  request.placement = PlacementPolicy::kStubNodesOnly;
  request.control_scope = {NodePrefix(7)};
  const DeploymentReport report =
      world.tcsp.DeployService(cert.value(), request);
  ASSERT_TRUE(report.status.ok());
  EXPECT_EQ(report.devices_configured, world.topo.stub_nodes.size());
}

TEST(TcspTest, AsyncDeploymentModelsLatency) {
  TcsWorld world;
  const auto cert = world.tcsp.Register("as7", {NodePrefix(7)});
  ASSERT_TRUE(cert.ok());
  ServiceRequest request;
  request.kind = ServiceKind::kDistributedFirewall;
  request.control_scope = {NodePrefix(7)};
  MatchRule deny_udp;
  deny_udp.proto = Protocol::kUdp;
  request.deny_rules = {deny_udp};

  bool completed = false;
  DeploymentReport report;
  world.tcsp.DeployService(cert.value(), request,
                           CompletionPolicy::kLatencyModelled,
                           [&](const DeploymentReport& r) {
                             completed = true;
                             report = r;
                           });
  EXPECT_FALSE(completed);  // nothing happens synchronously
  world.net.Run(Seconds(5));
  ASSERT_TRUE(completed);
  ASSERT_TRUE(report.status.ok()) << report.status.ToString();
  EXPECT_GT(report.Latency(), Milliseconds(80));  // at least two legs
  EXPECT_EQ(report.isps_configured, world.net.node_count());
}

TEST(TcspTest, UnreachableTcspFailsRequests) {
  TcsWorld world;
  const auto cert = world.tcsp.Register("as7", {NodePrefix(7)});
  ASSERT_TRUE(cert.ok());
  world.tcsp.set_reachable(false);

  EXPECT_EQ(world.tcsp.Register("as8", {NodePrefix(8)}).status().code(),
            ErrorCode::kUnavailable);

  ServiceRequest request;
  request.kind = ServiceKind::kRemoteIngressFiltering;
  request.control_scope = {NodePrefix(7)};
  const DeploymentReport report =
      world.tcsp.DeployService(cert.value(), request);
  EXPECT_EQ(report.status.code(), ErrorCode::kUnavailable);
  EXPECT_GE(world.tcsp.stats().requests_while_unreachable, 2u);
}

TEST(TcspTest, PeerRelayWorksWithTcspDown) {
  TcsWorld world;
  // Register while the TCSP is still up (the certificate is durable).
  const auto cert = world.tcsp.Register("as7", {NodePrefix(7)});
  ASSERT_TRUE(cert.ok());
  world.tcsp.set_reachable(false);

  ServiceRequest request;
  request.kind = ServiceKind::kRemoteIngressFiltering;
  request.control_scope = {NodePrefix(7)};
  // The user contacts one ISP directly; the config floods the peer mesh.
  const std::vector<NodeId> home = Tcsp::HomeNodes(request.control_scope);
  ADTC_ASSERT_OK(world.nmses[0]->RelayDeploy(
      cert.value(), request, home, world.tcsp.certificate_authority()));

  std::size_t deployed = 0;
  for (auto& nms : world.nmses) {
    deployed += nms->CountDeployments(cert.value().subscriber);
  }
  EXPECT_EQ(deployed, world.net.node_count());
  EXPECT_GT(world.nmses[0]->stats().relays_forwarded, 0u);
}

TEST(TcspTest, RemoveServiceClearsAllDevices) {
  TcsWorld world;
  const auto cert = world.tcsp.Register("as7", {NodePrefix(7)});
  ASSERT_TRUE(cert.ok());
  ServiceRequest request;
  request.kind = ServiceKind::kStatistics;
  request.control_scope = {NodePrefix(7)};
  ASSERT_TRUE(world.tcsp.DeployService(cert.value(), request).status.ok());
  ADTC_ASSERT_OK(world.tcsp.RemoveService(cert.value().subscriber));
  for (auto& nms : world.nmses) {
    EXPECT_EQ(nms->CountDeployments(cert.value().subscriber), 0u);
  }
}

TEST(TcspTest, ExpiredCertificateRejectedAtDeploy) {
  TcsWorld world;
  const auto cert = world.tcsp.Register("as7", {NodePrefix(7)});
  ASSERT_TRUE(cert.ok());
  // Let simulated time pass beyond the certificate's validity.
  world.net.Run(Seconds(31LL * 24 * 3600));
  ServiceRequest request;
  request.kind = ServiceKind::kStatistics;
  request.control_scope = {NodePrefix(7)};
  const DeploymentReport report =
      world.tcsp.DeployService(cert.value(), request);
  EXPECT_EQ(report.status.code(), ErrorCode::kExpired);
}

TEST(TcspTest, HomeNodesDerivedFromScope) {
  const auto homes =
      Tcsp::HomeNodes({NodePrefix(3), NodePrefix(3), NodePrefix(9)});
  EXPECT_EQ(homes, (std::vector<NodeId>{3, 9}));
}

TEST(NmsTest, RejectsScopeOutsideCertificate) {
  TcsWorld world;
  const auto cert = world.tcsp.Register("as7", {NodePrefix(7)});
  ASSERT_TRUE(cert.ok());
  ServiceRequest request;
  request.kind = ServiceKind::kStatistics;
  request.control_scope = {NodePrefix(8)};  // not owned
  const DeploymentReport report =
      world.tcsp.DeployService(cert.value(), request);
  EXPECT_EQ(report.status.code(), ErrorCode::kPermissionDenied);
  EXPECT_GT(world.nmses[0]->stats().deployments_rejected, 0u);
}

TEST(TcspTest, EnrollIspWiresFullMeshWithoutDuplicates) {
  TcsWorld world;
  // Every enrolled NMS peers with every other exactly once.
  for (const auto& nms : world.nmses) {
    EXPECT_EQ(nms->peer_count(), world.nmses.size() - 1);
  }
  // Re-enrolling must not double the mesh, and AddPeer rejects self and
  // duplicate edges on its own.
  world.tcsp.EnrollIsp(world.nmses[0].get());
  world.tcsp.EnrollIsp(nullptr);
  EXPECT_EQ(world.tcsp.isp_count(), world.nmses.size());
  world.nmses[0]->AddPeer(world.nmses[0].get());
  world.nmses[0]->AddPeer(world.nmses[1].get());
  world.nmses[0]->AddPeer(nullptr);
  EXPECT_EQ(world.nmses[0]->peer_count(), world.nmses.size() - 1);
}

TEST(TcspTest, ReportAggregatesWorstOutcomeAcrossIsps) {
  TcspConfig config;
  config.retry.initial_backoff = Milliseconds(10);
  config.retry.max_attempts = 3;
  TcsWorld world(42, config);
  // One TCSP->NMS channel is a total blackhole; every other ISP is fine.
  FaultInjector injector(1);
  ChannelFaults blackhole;
  blackhole.loss = 1.0;
  injector.SetChannelFaults("tcsp->nms:isp-3", blackhole);
  world.tcsp.AttachFaultInjector(&injector);

  const auto cert = world.tcsp.Register("as7", {NodePrefix(7)});
  ASSERT_TRUE(cert.ok());
  ServiceRequest request;
  request.kind = ServiceKind::kRemoteIngressFiltering;
  request.placement = PlacementPolicy::kAllManagedNodes;
  request.control_scope = {NodePrefix(7)};
  // With a lossy channel the retries play out through the simulator, so
  // the final report arrives through the completion callback.
  bool completed = false;
  DeploymentReport report;
  world.tcsp.DeployService(cert.value(), request,
                           CompletionPolicy::kLatencyModelled,
                           [&](const DeploymentReport& r) {
                             completed = true;
                             report = r;
                           });
  world.net.Run(Seconds(30));
  ASSERT_TRUE(completed);

  // The report's status is the worst observed outcome, and the per-ISP
  // breakdown shows which ISP failed and how hard the TCSP tried.
  EXPECT_EQ(report.status.code(), ErrorCode::kUnavailable);
  ASSERT_EQ(report.isp_outcomes.size(), world.nmses.size());
  std::size_t failed = 0;
  for (const auto& outcome : report.isp_outcomes) {
    if (outcome.isp == "isp-3") {
      EXPECT_EQ(outcome.status.code(), ErrorCode::kUnavailable);
      EXPECT_EQ(outcome.attempts, config.retry.max_attempts);
      failed++;
    } else {
      EXPECT_TRUE(outcome.status.ok()) << outcome.isp;
    }
  }
  EXPECT_EQ(failed, 1u);
  EXPECT_GT(report.retries, 0u);
  EXPECT_EQ(world.tcsp.stats().deploy_retries, report.retries);
  // The unreachable ISP configured nothing; everyone else converged.
  EXPECT_EQ(world.nmses[3]->CountDeployments(cert.value().subscriber), 0u);
  EXPECT_EQ(world.nmses[0]->CountDeployments(cert.value().subscriber), 1u);
}

TEST(TcspTest, RelayFallbackDeploysThroughPeerMeshWhenTcspDown) {
  TcspConfig config;
  config.relay_fallback = true;
  TcsWorld world(42, config);
  FaultInjector injector(1);
  injector.AddTcspOutage(0, Seconds(10));
  world.tcsp.AttachFaultInjector(&injector);

  // The certificate was issued before the outage (carried by the user),
  // so the peer mesh can still validate it offline.
  CertificateAuthority offline_ca("tcsp-signing-key");
  const OwnershipCertificate cert =
      offline_ca.Issue(77, "as7", {NodePrefix(7)}, 0, Seconds(3600));

  ServiceRequest request;
  request.kind = ServiceKind::kRemoteIngressFiltering;
  request.placement = PlacementPolicy::kAllManagedNodes;
  request.control_scope = {NodePrefix(7)};
  const DeploymentReport report =
      world.tcsp.DeployService(cert, request);
  world.net.Run(Seconds(5));

  EXPECT_EQ(report.path, DeployPath::kRelayed);
  EXPECT_TRUE(report.status.ok()) << report.status.ToString();
  EXPECT_EQ(world.tcsp.stats().relay_fallbacks, 1u);
  // The instruction flooded the whole mesh: every device is configured
  // exactly once even though each NMS hears the offer from many peers.
  for (const auto& nms : world.nmses) {
    EXPECT_EQ(nms->CountDeployments(cert.subscriber), 1u);
    EXPECT_LE(nms->stats().deployments_installed, 1u);
  }
}

TEST(TcspTest, UnreachableTcspWithoutFallbackStaysUnavailable) {
  TcsWorld world;
  FaultInjector injector(1);
  injector.AddTcspOutage(0, Seconds(10));
  world.tcsp.AttachFaultInjector(&injector);
  CertificateAuthority offline_ca("tcsp-signing-key");
  const OwnershipCertificate cert =
      offline_ca.Issue(77, "as7", {NodePrefix(7)}, 0, Seconds(3600));
  ServiceRequest request;
  request.kind = ServiceKind::kRemoteIngressFiltering;
  request.control_scope = {NodePrefix(7)};
  const DeploymentReport report =
      world.tcsp.DeployService(cert, request);
  EXPECT_EQ(report.status.code(), ErrorCode::kUnavailable);
  EXPECT_EQ(report.path, DeployPath::kDirect);
  EXPECT_EQ(world.tcsp.stats().relay_fallbacks, 0u);
}

}  // namespace
}  // namespace adtc
