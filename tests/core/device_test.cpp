#include "core/adaptive_device.h"

#include <gtest/gtest.h>

#include "core/modules/basic.h"
#include "core/modules/match.h"
#include "testutil.h"

namespace adtc {
namespace {

CertificateAuthority& Ca() {
  static CertificateAuthority ca("tcsp-key");
  return ca;
}

OwnershipCertificate CertFor(SubscriberId subscriber, NodeId node) {
  return Ca().Issue(subscriber, "owner-of-" + std::to_string(node),
                    {NodePrefix(node)}, 0, Seconds(3600));
}

RouterContext Ctx(NodeId node = 0,
                  LinkKind in_kind = LinkKind::kPeer) {
  RouterContext ctx;
  ctx.node = node;
  ctx.in_kind = in_kind;
  ctx.now = Seconds(1);
  return ctx;
}

Packet PacketBetween(NodeId src_node, NodeId dst_node) {
  Packet p;
  p.src = HostAddress(src_node, 1);
  p.dst = HostAddress(dst_node, 1);
  p.proto = Protocol::kUdp;
  p.dst_port = 80;
  p.size_bytes = 100;
  return p;
}

/// Malicious modules for the runtime-guard tests.
class SrcRewriter : public Module {
 public:
  int OnPacket(Packet& p, const DeviceContext&) override {
    p.src = Ipv4Address(0xDEAD);
    return 0;
  }
  std::string_view type_name() const override { return "match"; }  // lies
};

class TtlBooster : public Module {
 public:
  int OnPacket(Packet& p, const DeviceContext&) override {
    p.ttl = 255;
    return 0;
  }
  std::string_view type_name() const override { return "match"; }
};

class Amplifier : public Module {
 public:
  int OnPacket(Packet& p, const DeviceContext&) override {
    p.size_bytes *= 10;
    return 0;
  }
  std::string_view type_name() const override { return "match"; }
};

TEST(AdaptiveDeviceTest, FastPathForUnmatchedTraffic) {
  AdaptiveDevice device(0);
  Packet p = PacketBetween(1, 2);
  EXPECT_EQ(device.Process(p, Ctx()), Verdict::kForward);
  EXPECT_EQ(device.stats().fast_path_packets, 1u);
  EXPECT_EQ(device.stats().redirected_packets, 0u);
}

TEST(AdaptiveDeviceTest, InstallRequiresScopeWithinCertificate) {
  AdaptiveDevice device(0);
  const auto cert = CertFor(1, 5);
  const Status status = device.InstallDeployment(
      {cert,
       {NodePrefix(6)},
       ModuleGraph::Single(std::make_unique<CounterModule>()),
       std::nullopt});
  EXPECT_EQ(status.code(), ErrorCode::kPermissionDenied);
  EXPECT_FALSE(device.HasDeployment(1));
}

TEST(AdaptiveDeviceTest, DestinationStageControlsInboundTraffic) {
  AdaptiveDevice device(0);
  const auto cert = CertFor(1, 5);
  // Owner of node 5 drops all UDP port 80 to itself.
  MatchRule rule;
  rule.proto = Protocol::kUdp;
  rule.dst_port_range = {{80, 80}};
  ADTC_ASSERT_OK(device.InstallDeployment(
      {cert,
       {NodePrefix(5)},
       std::nullopt,
       ModuleGraph::Single(std::make_unique<MatchModule>(rule))}));

  Packet inbound = PacketBetween(1, 5);
  EXPECT_EQ(device.Process(inbound, Ctx()), Verdict::kDrop);
  EXPECT_EQ(device.stats().redirected_packets, 1u);
  EXPECT_EQ(device.stats().stage2_runs, 1u);
  EXPECT_EQ(device.stats().stage1_runs, 0u);

  // Traffic not to/from node 5 is untouched.
  Packet unrelated = PacketBetween(1, 2);
  EXPECT_EQ(device.Process(unrelated, Ctx()), Verdict::kForward);
  EXPECT_EQ(device.stats().fast_path_packets, 1u);
}

TEST(AdaptiveDeviceTest, SourceStageControlsOutboundAndSpoofedTraffic) {
  AdaptiveDevice device(0);
  const auto cert = CertFor(1, 5);
  MatchRule all;
  ADTC_ASSERT_OK(device.InstallDeployment(
      {cert,
       {NodePrefix(5)},
       ModuleGraph::Single(std::make_unique<MatchModule>(all)),
       std::nullopt}));
  // A packet whose *source* claims node 5's space is stage-1 processed,
  // wherever it shows up.
  Packet claiming = PacketBetween(5, 2);
  EXPECT_EQ(device.Process(claiming, Ctx()), Verdict::kDrop);
  EXPECT_EQ(device.stats().stage1_runs, 1u);
}

TEST(AdaptiveDeviceTest, BothStagesRunWhenBothOwnersDeployed) {
  AdaptiveDevice device(0);
  ADTC_ASSERT_OK(device.InstallDeployment(
      {CertFor(1, 5),
       {NodePrefix(5)},
       ModuleGraph::Single(std::make_unique<CounterModule>()),
       std::nullopt}));
  ADTC_ASSERT_OK(device.InstallDeployment(
      {CertFor(2, 6),
       {NodePrefix(6)},
       std::nullopt,
       ModuleGraph::Single(std::make_unique<CounterModule>())}));

  Packet p = PacketBetween(5, 6);
  EXPECT_EQ(device.Process(p, Ctx()), Verdict::kForward);
  EXPECT_EQ(device.stats().stage1_runs, 1u);  // source owner (sub 1)
  EXPECT_EQ(device.stats().stage2_runs, 1u);  // destination owner (sub 2)
}

TEST(AdaptiveDeviceTest, SourceStageDropShortCircuitsStageTwo) {
  AdaptiveDevice device(0);
  MatchRule all;
  ADTC_ASSERT_OK(device.InstallDeployment(
      {CertFor(1, 5),
       {NodePrefix(5)},
       ModuleGraph::Single(std::make_unique<MatchModule>(all)),
       std::nullopt}));
  ADTC_ASSERT_OK(device.InstallDeployment(
      {CertFor(2, 6),
       {NodePrefix(6)},
       std::nullopt,
       ModuleGraph::Single(std::make_unique<CounterModule>())}));
  Packet p = PacketBetween(5, 6);
  EXPECT_EQ(device.Process(p, Ctx()), Verdict::kDrop);
  EXPECT_EQ(device.stats().stage2_runs, 0u);
}

TEST(AdaptiveDeviceTest, DuplicateDeploymentRejected) {
  AdaptiveDevice device(0);
  const auto cert = CertFor(1, 5);
  ADTC_ASSERT_OK(device.InstallDeployment(
      {cert,
       {NodePrefix(5)},
       ModuleGraph::Single(std::make_unique<CounterModule>()),
       std::nullopt}));
  EXPECT_EQ(device
                .InstallDeployment(
                    {cert,
                     {NodePrefix(5)},
                     ModuleGraph::Single(std::make_unique<CounterModule>()),
                     std::nullopt})
                .code(),
            ErrorCode::kAlreadyExists);
}

TEST(AdaptiveDeviceTest, ScopeCollisionBetweenSubscribersRejected) {
  AdaptiveDevice device(0);
  ADTC_ASSERT_OK(device.InstallDeployment(
      {CertFor(1, 5),
       {NodePrefix(5)},
       ModuleGraph::Single(std::make_unique<CounterModule>()),
       std::nullopt}));
  // A second subscriber with a certificate for the same prefix (e.g. a
  // forged-but-signed config mishap) cannot shadow the first.
  EXPECT_EQ(device
                .InstallDeployment(
                    {CertFor(2, 5),
                     {NodePrefix(5)},
                     ModuleGraph::Single(std::make_unique<CounterModule>()),
                     std::nullopt})
                .code(),
            ErrorCode::kAlreadyExists);
}

TEST(AdaptiveDeviceTest, RemoveDeploymentRestoresFastPath) {
  AdaptiveDevice device(0);
  MatchRule all;
  ADTC_ASSERT_OK(device.InstallDeployment(
      {CertFor(1, 5),
       {NodePrefix(5)},
       std::nullopt,
       ModuleGraph::Single(std::make_unique<MatchModule>(all))}));
  Packet p = PacketBetween(1, 5);
  EXPECT_EQ(device.Process(p, Ctx()), Verdict::kDrop);
  ADTC_ASSERT_OK(device.RemoveDeployment(1));
  Packet again = PacketBetween(1, 5);
  EXPECT_EQ(device.Process(again, Ctx()), Verdict::kForward);
  EXPECT_EQ(device.redirect_prefix_count(), 0u);
  EXPECT_EQ(device.RemoveDeployment(1).code(), ErrorCode::kNotFound);
}

TEST(AdaptiveDeviceTest, SourceRewriteQuarantinesDeployment) {
  EventBuffer events;
  AdaptiveDevice device(0, &events);
  ADTC_ASSERT_OK(device.InstallDeployment(
      {CertFor(1, 5),
       {NodePrefix(5)},
       std::nullopt,
       ModuleGraph::Single(std::make_unique<SrcRewriter>())}));
  Packet p = PacketBetween(1, 5);
  const Ipv4Address original_src = p.src;
  EXPECT_EQ(device.Process(p, Ctx()), Verdict::kForward);  // fail open
  EXPECT_EQ(p.src, original_src);                           // restored
  EXPECT_TRUE(device.IsQuarantined(1));
  EXPECT_EQ(device.stats().safety_violations, 1u);
  EXPECT_EQ(events.CountOf(EventKind::kSafetyViolation), 1u);

  // Quarantined deployment no longer processes anything.
  Packet second = PacketBetween(1, 5);
  EXPECT_EQ(device.Process(second, Ctx()), Verdict::kForward);
  EXPECT_EQ(device.stats().safety_violations, 1u);
}

TEST(AdaptiveDeviceTest, TtlModificationBlocked) {
  AdaptiveDevice device(0);
  ADTC_ASSERT_OK(device.InstallDeployment(
      {CertFor(1, 5),
       {NodePrefix(5)},
       std::nullopt,
       ModuleGraph::Single(std::make_unique<TtlBooster>())}));
  Packet p = PacketBetween(1, 5);
  p.ttl = 60;
  device.Process(p, Ctx());
  EXPECT_EQ(p.ttl, 60);
  EXPECT_TRUE(device.IsQuarantined(1));
}

TEST(AdaptiveDeviceTest, AmplificationBlocked) {
  AdaptiveDevice device(0);
  ADTC_ASSERT_OK(device.InstallDeployment(
      {CertFor(1, 5),
       {NodePrefix(5)},
       std::nullopt,
       ModuleGraph::Single(std::make_unique<Amplifier>())}));
  Packet p = PacketBetween(1, 5);
  p.size_bytes = 100;
  device.Process(p, Ctx());
  EXPECT_EQ(p.size_bytes, 100u);
  EXPECT_TRUE(device.IsQuarantined(1));
}

TEST(AdaptiveDeviceTest, StageGraphAccessor) {
  AdaptiveDevice device(0);
  ADTC_ASSERT_OK(device.InstallDeployment(
      {CertFor(1, 5),
       {NodePrefix(5)},
       ModuleGraph::Single(std::make_unique<CounterModule>()),
       std::nullopt}));
  EXPECT_NE(device.StageGraph(1, ProcessingStage::kSourceOwner), nullptr);
  EXPECT_EQ(device.StageGraph(1, ProcessingStage::kDestinationOwner),
            nullptr);
  EXPECT_EQ(device.StageGraph(9, ProcessingStage::kSourceOwner), nullptr);
}

TEST(AdaptiveDeviceTest, MostSpecificOwnerWins) {
  // AS owns the /20; a customer owns a /32 inside it. The customer's
  // deployment must control traffic to its host.
  AdaptiveDevice device(0);
  ADTC_ASSERT_OK(device.InstallDeployment(
      {CertFor(1, 5),
       {NodePrefix(5)},
       std::nullopt,
       ModuleGraph::Single(std::make_unique<CounterModule>())}));
  const Prefix host_prefix = Prefix::Host(HostAddress(5, 9));
  const auto host_cert =
      Ca().Issue(2, "customer", {host_prefix}, 0, Seconds(3600));
  MatchRule all;
  ADTC_ASSERT_OK(device.InstallDeployment(
      {host_cert,
       {host_prefix},
       std::nullopt,
       ModuleGraph::Single(std::make_unique<MatchModule>(all))}));

  Packet to_host = PacketBetween(1, 5);
  to_host.dst = HostAddress(5, 9);
  EXPECT_EQ(device.Process(to_host, Ctx()), Verdict::kDrop);  // customer rule

  Packet to_other = PacketBetween(1, 5);
  to_other.dst = HostAddress(5, 10);
  EXPECT_EQ(device.Process(to_other, Ctx()), Verdict::kForward);  // AS rule
}

TEST(AdaptiveDeviceTest, DropsAttributedPerTaxonomyReason) {
  AdaptiveDevice device(0);
  auto blacklist = std::make_unique<BlacklistModule>();
  blacklist->Add(Prefix::Host(HostAddress(9, 1)));
  MatchRule rule;
  rule.dst_port_range = {{7000, 7000}};
  std::vector<std::unique_ptr<Module>> modules;
  modules.push_back(std::move(blacklist));
  modules.push_back(std::make_unique<MatchModule>(rule));
  ADTC_ASSERT_OK(device.InstallDeployment(
      {CertFor(1, 5), {NodePrefix(5)}, std::nullopt,
       ModuleGraph::Chain(std::move(modules))}));

  Packet listed = PacketBetween(9, 5);
  EXPECT_EQ(device.Process(listed, Ctx()), Verdict::kDrop);
  Packet matched = PacketBetween(3, 5);
  matched.dst_port = 7000;
  EXPECT_EQ(device.Process(matched, Ctx()), Verdict::kDrop);
  Packet clean = PacketBetween(3, 5);
  EXPECT_EQ(device.Process(clean, Ctx()), Verdict::kForward);

  const DeviceStats& stats = device.stats();
  using R = DatapathDropReason;
  EXPECT_EQ(stats.drops_by_reason[static_cast<std::size_t>(R::kBlacklist)],
            1u);
  EXPECT_EQ(
      stats.drops_by_reason[static_cast<std::size_t>(R::kFirewallRule)], 1u);
  EXPECT_EQ(stats.dropped_packets, 2u);

  // Cached replays attribute the same reason as the original verdict.
  Packet listed_again = PacketBetween(9, 5);
  EXPECT_EQ(device.Process(listed_again, Ctx()), Verdict::kDrop);
  EXPECT_GT(device.stats().flow_cache_hits, 0u);
  EXPECT_EQ(stats.drops_by_reason[static_cast<std::size_t>(R::kBlacklist)],
            2u);
}

TEST(AdaptiveDeviceTest, FlightRecorderCapturesVerdicts) {
  AdaptiveDevice device(7);
  obs::FlightRecorder recorder(16);
  device.AttachFlightRecorder(&recorder);
  ASSERT_EQ(device.flight_recorder(), &recorder);
  auto blacklist = std::make_unique<BlacklistModule>();
  blacklist->Add(Prefix::Host(HostAddress(9, 1)));
  ADTC_ASSERT_OK(device.InstallDeployment(
      {CertFor(1, 5), {NodePrefix(5)}, std::nullopt,
       ModuleGraph::Single(std::move(blacklist))}));

  Packet fast = PacketBetween(1, 2);       // no redirect-table match
  Packet dropped = PacketBetween(9, 5);    // blacklist drop
  Packet forwarded = PacketBetween(3, 5);  // redirected, clean
  EXPECT_EQ(device.Process(fast, Ctx()), Verdict::kForward);
  EXPECT_EQ(device.Process(dropped, Ctx()), Verdict::kDrop);
  EXPECT_EQ(device.Process(forwarded, Ctx()), Verdict::kForward);
  // Replay the drop from the verdict cache: still recorded, as a hit.
  Packet dropped_again = PacketBetween(9, 5);
  EXPECT_EQ(device.Process(dropped_again, Ctx()), Verdict::kDrop);

  const auto records = recorder.Snapshot();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_FALSE(records[0].redirected);
  EXPECT_FALSE(records[0].dropped);
  EXPECT_TRUE(records[1].dropped);
  EXPECT_EQ(records[1].drop_reason, DatapathDropReason::kBlacklist);
  EXPECT_FALSE(records[1].cache_hit);
  EXPECT_TRUE(records[2].redirected);
  EXPECT_FALSE(records[2].dropped);
  EXPECT_TRUE(records[3].dropped);
  EXPECT_EQ(records[3].drop_reason, DatapathDropReason::kBlacklist);
  EXPECT_TRUE(records[3].cache_hit);
  for (const obs::VerdictRecord& record : records) {
    EXPECT_EQ(record.node, 7u);
    EXPECT_EQ(record.at, Seconds(1));
  }

  // Detaching restores the zero-cost path: nothing further is recorded.
  device.AttachFlightRecorder(nullptr);
  Packet later = PacketBetween(1, 2);
  (void)device.Process(later, Ctx());
  EXPECT_EQ(recorder.total_recorded(), 4u);
}

}  // namespace
}  // namespace adtc
