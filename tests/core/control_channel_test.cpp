#include "core/control_channel.h"

#include <gtest/gtest.h>

#include "core/adaptive_device.h"
#include "core/certificate.h"
#include "core/modules/observe.h"
#include "net/ip.h"
#include "sim/simulator.h"

namespace adtc {
namespace {

TEST(WorseStatusTest, RanksAvailabilityAboveBenignDuplicates) {
  const Status ok = Status::Ok();
  const Status dup = AlreadyExists("dup");
  const Status down = Unavailable("down");
  EXPECT_EQ(WorseStatus(ok, dup).code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(WorseStatus(dup, down).code(), ErrorCode::kUnavailable);
  EXPECT_EQ(WorseStatus(down, dup).code(), ErrorCode::kUnavailable);
  EXPECT_EQ(WorseStatus(ok, ok).code(), ErrorCode::kOk);
}

TEST(WorseStatusTest, TiesKeepTheFirstObserved) {
  const Status first = NotFound("first");
  const Status second = NotFound("second");
  EXPECT_EQ(WorseStatus(first, second).message(), "first");
}

TEST(RetryPolicyTest, BackoffDoublesAndCaps) {
  RetryPolicy policy;
  policy.initial_backoff = Milliseconds(10);
  policy.multiplier = 2.0;
  policy.max_backoff = Milliseconds(80);
  policy.jitter = 0.0;
  Rng rng(1);
  EXPECT_EQ(policy.BackoffAfter(1, rng), Milliseconds(10));
  EXPECT_EQ(policy.BackoffAfter(2, rng), Milliseconds(20));
  EXPECT_EQ(policy.BackoffAfter(3, rng), Milliseconds(40));
  EXPECT_EQ(policy.BackoffAfter(4, rng), Milliseconds(80));
  EXPECT_EQ(policy.BackoffAfter(9, rng), Milliseconds(80));  // stays capped
}

TEST(RetryPolicyTest, JitterStaysWithinSymmetricBounds) {
  RetryPolicy policy;
  policy.initial_backoff = Milliseconds(100);
  policy.multiplier = 1.0;
  policy.max_backoff = Milliseconds(100);
  policy.jitter = 0.2;
  Rng rng(7);
  SimDuration lo = Milliseconds(100), hi = 0;
  for (int i = 0; i < 1000; ++i) {
    const SimDuration backoff = policy.BackoffAfter(1, rng);
    EXPECT_GE(backoff, Milliseconds(80));
    EXPECT_LE(backoff, Milliseconds(120));
    lo = std::min(lo, backoff);
    hi = std::max(hi, backoff);
  }
  EXPECT_LT(lo, hi);  // jitter actually spreads the schedule
}

TEST(ControlChannelTest, FaultFreeZeroLatencyCallIsSynchronous) {
  Simulator sim;
  Rng rng(1);
  ControlChannel channel(sim, rng, "sync");
  int handler_runs = 0;
  Status got;
  CallOutcome outcome;
  channel.Call([&] { handler_runs++; return Status::Ok(); },
               [&](const Status& status, const CallOutcome& o) {
                 got = status;
                 outcome = o;
               },
               {});
  // Everything happened before Call returned, with no events queued.
  EXPECT_EQ(handler_runs, 1);
  EXPECT_TRUE(got.ok());
  EXPECT_EQ(outcome.attempts, 1u);
  EXPECT_EQ(sim.RunToCompletion(), 0u);
}

TEST(ControlChannelTest, GivesUpAfterAttemptBudgetOnTotalLoss) {
  Simulator sim;
  Rng rng(1);
  FaultInjector injector(5);
  ChannelFaults faults;
  faults.loss = 1.0;
  injector.SetDefaultFaults(faults);
  ControlChannel channel(sim, rng, "blackhole", &injector);
  ControlChannel::CallOptions opts;
  opts.retry.initial_backoff = Milliseconds(10);
  opts.retry.max_attempts = 3;
  opts.retry.deadline = Seconds(60);
  int handler_runs = 0;
  bool completed = false;
  Status got;
  CallOutcome outcome;
  channel.Call([&] { handler_runs++; return Status::Ok(); },
               [&](const Status& status, const CallOutcome& o) {
                 completed = true;
                 got = status;
                 outcome = o;
               },
               opts);
  sim.RunToCompletion();
  EXPECT_TRUE(completed);
  EXPECT_EQ(handler_runs, 0);  // nothing ever got through
  EXPECT_EQ(got.code(), ErrorCode::kUnavailable);
  EXPECT_EQ(outcome.attempts, 3u);
  EXPECT_FALSE(outcome.deadline_expired);
}

TEST(ControlChannelTest, DeadlineExpiryIsReported) {
  Simulator sim;
  Rng rng(1);
  FaultInjector injector(5);
  ChannelFaults faults;
  faults.loss = 1.0;
  injector.SetDefaultFaults(faults);
  ControlChannel channel(sim, rng, "blackhole", &injector);
  ControlChannel::CallOptions opts;
  opts.retry.initial_backoff = Milliseconds(40);
  opts.retry.jitter = 0.0;
  opts.retry.max_attempts = 100;
  opts.retry.deadline = Milliseconds(50);
  bool completed = false;
  Status got;
  CallOutcome outcome;
  channel.Call([] { return Status::Ok(); },
               [&](const Status& status, const CallOutcome& o) {
                 completed = true;
                 got = status;
                 outcome = o;
               },
               opts);
  sim.RunToCompletion();
  EXPECT_TRUE(completed);
  EXPECT_EQ(got.code(), ErrorCode::kUnavailable);
  EXPECT_TRUE(outcome.deadline_expired);
  EXPECT_LT(outcome.attempts, 100u);
}

TEST(ControlChannelTest, RetriesUntilTheLossClears) {
  Simulator sim;
  Rng rng(1);
  FaultInjector injector(5);
  ChannelFaults faults;
  faults.loss = 1.0;
  injector.SetChannelFaults("flaky", faults);
  ControlChannel channel(sim, rng, "flaky", &injector);
  ControlChannel::CallOptions opts;
  opts.retry.initial_backoff = Milliseconds(10);
  opts.retry.max_attempts = 10;
  // Heal the channel shortly after the first attempts are swallowed.
  sim.PostIn(Milliseconds(100), [&] {
    injector.SetChannelFaults("flaky", ChannelFaults{});
  });
  int handler_runs = 0;
  bool completed = false;
  CallOutcome outcome;
  Status got;
  channel.Call([&] { handler_runs++; return Status::Ok(); },
               [&](const Status& status, const CallOutcome& o) {
                 completed = true;
                 got = status;
                 outcome = o;
               },
               opts);
  sim.RunToCompletion();
  EXPECT_TRUE(completed);
  EXPECT_TRUE(got.ok()) << got.ToString();
  EXPECT_EQ(handler_runs, 1);
  EXPECT_GT(outcome.attempts, 1u);  // the lost attempts were retried
}

TEST(ControlChannelTest, DuplicatedRequestRunsHandlerTwiceCompletesOnce) {
  Simulator sim;
  Rng rng(1);
  FaultInjector injector(5);
  ChannelFaults faults;
  faults.duplicate = 1.0;
  injector.SetDefaultFaults(faults);
  ControlChannel channel(sim, rng, "dupe", &injector);
  int handler_runs = 0;
  int completions = 0;
  channel.Call([&] { handler_runs++; return Status::Ok(); },
               [&](const Status&, const CallOutcome&) { completions++; },
               {});
  sim.RunToCompletion();
  // Both request copies execute the handler — exactly-once effects are
  // the remote's job (DeploymentId dedup) — but `done` fires once.
  EXPECT_EQ(handler_runs, 2);
  EXPECT_EQ(completions, 1);
}

TEST(ControlChannelTest, DownRemoteBlackholesUntilRecovery) {
  Simulator sim;
  Rng rng(1);
  FaultInjector injector(5);
  injector.AddDeviceOutage(3, 0, Milliseconds(100));
  ControlChannel channel(sim, rng, "to-dev", &injector, [&] {
    return injector.DeviceUp(3, sim.Now());
  });
  ControlChannel::CallOptions opts;
  opts.retry.initial_backoff = Milliseconds(30);
  opts.retry.max_attempts = 10;
  int handler_runs = 0;
  Status got;
  channel.Call([&] { handler_runs++; return Status::Ok(); },
               [&](const Status& status, const CallOutcome&) { got = status; },
               opts);
  sim.RunToCompletion();
  EXPECT_TRUE(got.ok()) << got.ToString();
  EXPECT_EQ(handler_runs, 1);  // only the post-recovery delivery ran
}

// --- DeploymentId ---------------------------------------------------------

TEST(DeploymentIdTest, ValidityAndEquality) {
  EXPECT_FALSE(DeploymentId{}.valid());
  EXPECT_TRUE((DeploymentId{0, 1}).valid());
  EXPECT_EQ((DeploymentId{2, 3}), (DeploymentId{2, 3}));
  EXPECT_NE((DeploymentId{2, 3}), (DeploymentId{2, 4}));
  EXPECT_NE((DeploymentId{2, 3}), (DeploymentId{3, 3}));
}

TEST(DeploymentIdTest, OriginTagsAreNonZeroAndNameSpecific) {
  EXPECT_NE(DeploymentOriginTag("isp-0"), 0u);
  EXPECT_NE(DeploymentOriginTag("isp-0"), DeploymentOriginTag("isp-1"));
  EXPECT_EQ(DeploymentOriginTag("isp-0"), DeploymentOriginTag("isp-0"));
}

DeploymentSpec MakeSpec(const OwnershipCertificate& cert,
                        DeploymentId id) {
  DeploymentSpec spec;
  spec.cert = cert;
  spec.scope = cert.prefixes;
  spec.source_stage = ModuleGraph::Single(
      std::make_unique<StatisticsModule>());
  spec.label = "test";
  spec.deployment_id = id;
  return spec;
}

TEST(DeploymentIdTest, DeviceDeduplicatesRedeliveredInstalls) {
  CertificateAuthority ca("key");
  const OwnershipCertificate cert =
      ca.Issue(1, "as3", {NodePrefix(3)}, 0, Seconds(3600));
  AdaptiveDevice device(3);
  const DeploymentId id{7, 1};
  ASSERT_TRUE(device.InstallDeployment(MakeSpec(cert, id)).ok());
  // The same instruction arrives again (channel duplicate or retry):
  // the recorded outcome is replayed, nothing is re-applied.
  ASSERT_TRUE(device.InstallDeployment(MakeSpec(cert, id)).ok());
  EXPECT_EQ(device.deployment_count(), 1u);
  EXPECT_EQ(device.stats().installs_applied, 1u);
  EXPECT_EQ(device.stats().duplicate_installs, 1u);
  EXPECT_EQ(device.applied_install_count(), 1u);
}

TEST(DeploymentIdTest, DeviceReplaysRecordedFailures) {
  CertificateAuthority ca("key");
  const OwnershipCertificate cert =
      ca.Issue(1, "as3", {NodePrefix(3)}, 0, Seconds(3600));
  AdaptiveDevice device(3);
  ASSERT_TRUE(
      device.InstallDeployment(MakeSpec(cert, DeploymentId{7, 1})).ok());
  // A different id for the same subscriber fails (already installed) —
  // and every re-delivery of that id replays the same failure.
  const DeploymentId second{7, 2};
  const Status first_try =
      device.InstallDeployment(MakeSpec(cert, second));
  const Status replay = device.InstallDeployment(MakeSpec(cert, second));
  EXPECT_FALSE(first_try.ok());
  EXPECT_EQ(replay.code(), first_try.code());
  EXPECT_EQ(device.stats().duplicate_installs, 1u);
}

TEST(DeploymentIdTest, UnnumberedSpecsSkipTheDedupRecord) {
  CertificateAuthority ca("key");
  const OwnershipCertificate cert =
      ca.Issue(1, "as3", {NodePrefix(3)}, 0, Seconds(3600));
  AdaptiveDevice device(3);
  ASSERT_TRUE(
      device.InstallDeployment(MakeSpec(cert, DeploymentId{})).ok());
  EXPECT_EQ(device.applied_install_count(), 0u);
  EXPECT_EQ(device.deployment_count(), 1u);
}

}  // namespace
}  // namespace adtc
