// Delegation (Sec. 4.1): "Traffic control can be executed by a designated
// party on behalf of a network address owner" — e.g. a managed-security
// provider operating the defence for its customer.
#include <gtest/gtest.h>

#include "core/tcsp.h"
#include "host/client.h"
#include "host/server.h"
#include "testutil.h"

namespace adtc {
namespace {

using testing::SmallWorld;

struct DelegationWorld : SmallWorld {
  NumberAuthority authority;
  Tcsp tcsp;
  std::vector<std::unique_ptr<IspNms>> nmses;

  DelegationWorld() : SmallWorld(71), tcsp(net, authority, "dg-key") {
    AllocateTopologyPrefixes(authority, net.node_count());
    for (NodeId node = 0; node < net.node_count(); ++node) {
      auto nms = std::make_unique<IspNms>("isp", net, &tcsp.validator());
      nms->ManageNode(node);
      tcsp.EnrollIsp(nms.get());
      nmses.push_back(std::move(nms));
    }
  }
};

TEST(DelegationTest, DelegateGetsItsOwnSubscriberIdentity) {
  DelegationWorld world;
  const auto owner = world.tcsp.Register("as3", {NodePrefix(3)});
  ASSERT_TRUE(owner.ok());
  const auto delegate = world.tcsp.RegisterDelegate(
      owner.value(), "soc-provider", {NodePrefix(3)});
  ASSERT_TRUE(delegate.ok()) << delegate.status().ToString();
  EXPECT_NE(delegate.value().subscriber, owner.value().subscriber);
  EXPECT_EQ(delegate.value().subject, "soc-provider");
  ADTC_EXPECT_OK(world.tcsp.certificate_authority().Verify(
      delegate.value(), world.net.Now()));
}

TEST(DelegationTest, DelegateCanDeployForTheOwnersPrefixes) {
  DelegationWorld world;
  const auto owner = world.tcsp.Register("as3", {NodePrefix(3)});
  ASSERT_TRUE(owner.ok());
  const auto delegate = world.tcsp.RegisterDelegate(
      owner.value(), "soc-provider", {NodePrefix(3)});
  ASSERT_TRUE(delegate.ok());
  ServiceRequest request;
  request.kind = ServiceKind::kRemoteIngressFiltering;
  request.control_scope = {NodePrefix(3)};
  const auto report =
      world.tcsp.DeployService(delegate.value(), request);
  EXPECT_TRUE(report.status.ok()) << report.status.ToString();
  EXPECT_EQ(report.devices_configured, world.net.node_count());
}

TEST(DelegationTest, DelegationCannotExceedOwnership) {
  DelegationWorld world;
  const auto owner = world.tcsp.Register("as3", {NodePrefix(3)});
  ASSERT_TRUE(owner.ok());
  const auto overreach = world.tcsp.RegisterDelegate(
      owner.value(), "soc-provider", {NodePrefix(4)});
  EXPECT_FALSE(overreach.ok());
  EXPECT_EQ(overreach.status().code(), ErrorCode::kPermissionDenied);
}

TEST(DelegationTest, ForgedOwnerCertificateRejected) {
  DelegationWorld world;
  CertificateAuthority impostor("not-the-tcsp-key");
  const auto forged = impostor.Issue(99, "as3", {NodePrefix(3)},
                                     world.net.Now(), Seconds(3600));
  const auto result = world.tcsp.RegisterDelegate(
      forged, "soc-provider", {NodePrefix(3)});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kPermissionDenied);
}

TEST(DelegationTest, EmptyDelegationRejected) {
  DelegationWorld world;
  const auto owner = world.tcsp.Register("as3", {NodePrefix(3)});
  ASSERT_TRUE(owner.ok());
  EXPECT_EQ(world.tcsp.RegisterDelegate(owner.value(), "soc", {})
                .status()
                .code(),
            ErrorCode::kInvalidArgument);
}

TEST(RouterTelemetryTest, ContextExposesRouterState) {
  DelegationWorld world;
  DeviceContext ctx;
  ctx.net = &world.net;
  ctx.node = world.topo.stub_nodes[0];
  EXPECT_EQ(ctx.RouterForwardedPackets(), 0u);
  EXPECT_EQ(ctx.RouterDropShare(), 0.0);

  // Drive some traffic and observe the counters move.
  auto* a = SpawnHost<Server>(world.net, world.topo.stub_nodes[0],
                              LinkParams{GigabitsPerSecond(1),
                                         Milliseconds(1), 1024 * 1024});
  (void)a;
  ClientConfig config;
  config.server = a->address();
  config.kind = RequestKind::kUdpRequest;
  config.request_rate = 50.0;
  SpawnHost<Client>(world.net, world.topo.stub_nodes[5],
                    LinkParams{GigabitsPerSecond(1), Milliseconds(1),
                               1024 * 1024},
                    config)
      ->Start();
  world.net.Run(Seconds(2));
  EXPECT_GT(ctx.RouterForwardedPackets(), 50u);
  EXPECT_GE(ctx.RouterDropShare(), 0.0);
  EXPECT_LE(ctx.RouterDropShare(), 1.0);

  DeviceContext detached;  // null-safe
  EXPECT_EQ(detached.RouterForwardedPackets(), 0u);
  EXPECT_EQ(detached.RouterDropShare(), 0.0);
}

}  // namespace
}  // namespace adtc
