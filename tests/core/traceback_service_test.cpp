#include "core/traceback_service.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "attack/agent.h"
#include "core/tcsp.h"
#include "host/host.h"
#include "testutil.h"

namespace adtc {
namespace {

using testing::SmallWorld;

LinkParams FastLink() {
  return LinkParams{GigabitsPerSecond(1), Milliseconds(1), 1024 * 1024};
}

class EvidenceHost : public Host {
 public:
  void HandlePacket(Packet&& packet) override {
    evidence.push_back(std::move(packet));
  }
  std::vector<Packet> evidence;
};

struct TracebackWorld : SmallWorld {
  NumberAuthority authority;
  Tcsp tcsp;
  std::vector<std::unique_ptr<IspNms>> nmses;
  EvidenceHost* victim;
  NodeId victim_node;
  OwnershipCertificate cert;

  /// `adoption` selects which ASes host devices (1.0 = everywhere).
  explicit TracebackWorld(std::uint64_t seed, double adoption = 1.0)
      : SmallWorld(seed), tcsp(net, authority, "tb-key") {
    AllocateTopologyPrefixes(authority, net.node_count());
    for (NodeId node = 0; node < net.node_count(); ++node) {
      auto nms = std::make_unique<IspNms>("isp", net, &tcsp.validator());
      if (net.rng().NextBool(adoption)) nms->ManageNode(node);
      tcsp.EnrollIsp(nms.get());
      nmses.push_back(std::move(nms));
    }
    victim_node = topo.stub_nodes[0];
    // The victim's own AS always participates.
    nmses[victim_node]->ManageNode(victim_node);
    victim = SpawnHost<EvidenceHost>(net, victim_node, FastLink());

    auto result =
        tcsp.Register(AsOrgName(victim_node), {NodePrefix(victim_node)});
    EXPECT_TRUE(result.ok());
    cert = result.value();
    ServiceRequest request;
    request.kind = ServiceKind::kTraceback;
    request.control_scope = {NodePrefix(victim_node)};
    request.traceback.window = Seconds(2);
    request.traceback.window_count = 16;
    EXPECT_TRUE(tcsp.DeployService(cert, request).status.ok());
  }

  std::vector<IspNms*> Isps() {
    std::vector<IspNms*> out;
    for (auto& nms : nmses) out.push_back(nms.get());
    return out;
  }

  AgentHost* AddSpoofingAgent(NodeId node) {
    AttackDirective directive;
    directive.type = AttackType::kDirectFlood;
    directive.victim = victim->address();
    directive.flood_proto = Protocol::kUdp;
    directive.spoof = SpoofMode::kRandom;
    directive.rate_pps = 60.0;
    directive.duration = Seconds(3);
    auto* agent = SpawnHost<AgentHost>(net, node, FastLink(), directive);
    agent->StartFlood();
    return agent;
  }
};

TEST(TracebackServiceTest, CollectsStoresFromDeployedDevices) {
  TracebackWorld world(41);
  TcsTracebackService service(world.net, world.Isps(),
                              world.cert.subscriber);
  // Two stores (source+destination stage) per device, one device per AS.
  EXPECT_EQ(service.store_count(), world.net.node_count() * 2);
  // Digest windows allocate lazily: zero memory before any traffic ...
  EXPECT_EQ(service.TotalMemoryBytes(), 0u);
  // ... and real memory once the owner's packets flow.
  world.AddSpoofingAgent(world.topo.stub_nodes[5]);
  world.net.Run(Seconds(2));
  EXPECT_GT(service.TotalMemoryBytes(), 0u);
}

TEST(TracebackServiceTest, FindsTrueEntryDespiteSpoofing) {
  TracebackWorld world(43);
  const NodeId agent_node = world.topo.stub_nodes[7];
  world.AddSpoofingAgent(agent_node);
  world.net.Run(Seconds(4));
  ASSERT_FALSE(world.victim->evidence.empty());

  TcsTracebackService service(world.net, world.Isps(),
                              world.cert.subscriber);
  int hits = 0, queried = 0;
  for (std::size_t i = 0; i < world.victim->evidence.size(); i += 17) {
    const auto result =
        service.Trace(world.victim->evidence[i], world.victim_node);
    queried++;
    hits += std::find(result.origin_nodes.begin(),
                      result.origin_nodes.end(),
                      agent_node) != result.origin_nodes.end()
                ? 1
                : 0;
  }
  EXPECT_EQ(hits, queried);
}

TEST(TracebackServiceTest, PartialAdoptionTruncatesTrace) {
  // Only the victim's AS participates: traces dead-end right there.
  TracebackWorld world(47, /*adoption=*/0.0);
  world.AddSpoofingAgent(world.topo.stub_nodes[7]);
  world.net.Run(Seconds(4));
  ASSERT_FALSE(world.victim->evidence.empty());

  TcsTracebackService service(world.net, world.Isps(),
                              world.cert.subscriber);
  EXPECT_EQ(service.store_count(), 2u);  // victim AS only
  const auto result =
      service.Trace(world.victim->evidence.front(), world.victim_node);
  ASSERT_EQ(result.origin_nodes.size(), 1u);
  EXPECT_EQ(result.origin_nodes[0], world.victim_node);
}

TEST(TracebackServiceTest, UnknownPacketTracesNowhere) {
  TracebackWorld world(53);
  world.net.Run(Seconds(1));
  TcsTracebackService service(world.net, world.Isps(),
                              world.cert.subscriber);
  Packet phantom;
  phantom.src = HostAddress(world.victim_node, 1);
  phantom.dst = HostAddress(3, 1);
  phantom.serial = 999999;
  phantom.payload_hash = 123456;
  const auto result = service.Trace(phantom, world.victim_node);
  // The walk starts at the victim AS and finds no sightings upstream.
  EXPECT_EQ(result.origin_nodes,
            std::vector<NodeId>{world.victim_node});
}

TEST(TracebackServiceTest, NoDeploymentMeansNoStores) {
  TracebackWorld world(59);
  TcsTracebackService service(world.net, world.Isps(),
                              /*subscriber=*/9999);
  EXPECT_EQ(service.store_count(), 0u);
}

TEST(NmsEventsTest, SafetyEventsReachTheNms) {
  TracebackWorld world(61);
  // Install a deployment that violates at runtime via a direct device
  // install (bypassing the validator, as a buggy NMS might).
  class Evil : public Module {
   public:
    int OnPacket(Packet& p, const DeviceContext&) override {
      p.ttl = 255;
      return 0;
    }
    std::string_view type_name() const override { return "match"; }
  };
  CertificateAuthority ca("tb-key");  // not the TCSP's CA; device-local
  const NodeId node = world.topo.stub_nodes[3];
  const auto cert = world.tcsp.Register(AsOrgName(node), {NodePrefix(node)});
  ASSERT_TRUE(cert.ok());
  AdaptiveDevice* device = world.nmses[node]->device(node);
  ASSERT_NE(device, nullptr);
  ASSERT_TRUE(device
                  ->InstallDeployment(
                      {cert.value(),
                       {NodePrefix(node)},
                       std::nullopt,
                       ModuleGraph::Single(std::make_unique<Evil>())})
                  .ok());
  Packet p;
  p.src = HostAddress(1, 1);
  p.dst = HostAddress(node, 1);
  RouterContext ctx;
  ctx.node = node;
  device->Process(p, ctx);
  EXPECT_EQ(world.nmses[node]->events().CountOf(
                EventKind::kSafetyViolation),
            1u);
}

}  // namespace
}  // namespace adtc
