#include "core/events.h"

#include <gtest/gtest.h>

namespace adtc {
namespace {

DeviceEvent Note(int i) {
  DeviceEvent e;
  e.kind = EventKind::kLogNote;
  e.at = i;
  e.detail = "e" + std::to_string(i);
  return e;
}

TEST(EventBufferTest, UnderCapacityKeepsEverythingInOrder) {
  EventBuffer buffer(8);
  for (int i = 0; i < 5; ++i) buffer.OnEvent(Note(i));
  EXPECT_EQ(buffer.size(), 5u);
  EXPECT_EQ(buffer.dropped_events(), 0u);
  EXPECT_EQ(buffer.total_events(), 5u);
  const auto& events = buffer.events();
  ASSERT_EQ(events.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(events[i].at, i);
}

TEST(EventBufferTest, OverflowEvictsOldestAndCounts) {
  EventBuffer buffer(4);
  for (int i = 0; i < 10; ++i) buffer.OnEvent(Note(i));
  EXPECT_EQ(buffer.size(), 4u);
  EXPECT_EQ(buffer.capacity(), 4u);
  EXPECT_EQ(buffer.dropped_events(), 6u);
  EXPECT_EQ(buffer.total_events(), 10u);
  const auto& events = buffer.events();
  ASSERT_EQ(events.size(), 4u);
  // The four newest survive, oldest first.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(events[i].at, 6 + i);
}

TEST(EventBufferTest, EventsViewStaysCoherentAcrossInterleavedReads) {
  EventBuffer buffer(3);
  buffer.OnEvent(Note(0));
  EXPECT_EQ(buffer.events().size(), 1u);  // read before wraparound
  for (int i = 1; i < 7; ++i) buffer.OnEvent(Note(i));
  const auto& events = buffer.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].at, 4);
  EXPECT_EQ(events[2].at, 6);
  // A second read without writes returns the identical linearisation.
  EXPECT_EQ(&buffer.events(), &events);
  EXPECT_EQ(buffer.events()[0].at, 4);
}

TEST(EventBufferTest, CountOfSeesOnlyRetainedEvents) {
  EventBuffer buffer(3);
  DeviceEvent violation;
  violation.kind = EventKind::kSafetyViolation;
  buffer.OnEvent(violation);  // will be evicted
  for (int i = 0; i < 3; ++i) buffer.OnEvent(Note(i));
  EXPECT_EQ(buffer.CountOf(EventKind::kSafetyViolation), 0u);
  EXPECT_EQ(buffer.CountOf(EventKind::kLogNote), 3u);
}

TEST(EventBufferTest, ZeroCapacityClampsToOne) {
  EventBuffer buffer(0);
  EXPECT_EQ(buffer.capacity(), 1u);
  buffer.OnEvent(Note(1));
  buffer.OnEvent(Note(2));
  ASSERT_EQ(buffer.events().size(), 1u);
  EXPECT_EQ(buffer.events()[0].at, 2);
  EXPECT_EQ(buffer.dropped_events(), 1u);
}

TEST(EventBufferTest, ClearResetsEverything) {
  EventBuffer buffer(2);
  for (int i = 0; i < 5; ++i) buffer.OnEvent(Note(i));
  buffer.Clear();
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_TRUE(buffer.events().empty());
  EXPECT_EQ(buffer.dropped_events(), 0u);
  EXPECT_EQ(buffer.total_events(), 0u);
  buffer.OnEvent(Note(9));
  ASSERT_EQ(buffer.events().size(), 1u);
  EXPECT_EQ(buffer.events()[0].at, 9);
}

}  // namespace
}  // namespace adtc
