// Runtime operations of Fig. 5's third phase: activate, modify
// parameters and read logs through the TCSP.
#include <gtest/gtest.h>

#include "attack/agent.h"
#include "core/tcsp.h"
#include "host/client.h"
#include "host/server.h"
#include "testutil.h"

namespace adtc {
namespace {

using testing::SmallWorld;

LinkParams FastLink() {
  return LinkParams{GigabitsPerSecond(1), Milliseconds(1), 1024 * 1024};
}

struct OpsWorld : SmallWorld {
  NumberAuthority authority;
  Tcsp tcsp;
  std::vector<std::unique_ptr<IspNms>> nmses;
  Server* server;
  NodeId server_as;
  OwnershipCertificate cert;

  explicit OpsWorld(std::uint64_t seed = 5)
      : SmallWorld(seed), tcsp(net, authority, "ops-key") {
    AllocateTopologyPrefixes(authority, net.node_count());
    for (NodeId node = 0; node < net.node_count(); ++node) {
      auto nms = std::make_unique<IspNms>("isp-" + std::to_string(node),
                                          net, &tcsp.validator());
      nms->ManageNode(node);
      tcsp.EnrollIsp(nms.get());
      nmses.push_back(std::move(nms));
    }
    server_as = topo.stub_nodes[0];
    server = SpawnHost<Server>(net, server_as, FastLink());
    auto result = tcsp.Register(AsOrgName(server_as), {NodePrefix(server_as)});
    EXPECT_TRUE(result.ok());
    cert = result.value();
  }
};

TEST(RuntimeOpsTest, FirewallRulesCanBeDisarmedAndRearmed) {
  OpsWorld world;
  ServiceRequest request;
  request.kind = ServiceKind::kDistributedFirewall;
  request.control_scope = {NodePrefix(world.server_as)};
  MatchRule deny_udp;
  deny_udp.proto = Protocol::kUdp;
  request.deny_rules = {deny_udp};
  ASSERT_TRUE(world.tcsp.DeployService(world.cert, request).status.ok());

  ClientConfig client_config;
  client_config.server = world.server->address();
  client_config.kind = RequestKind::kUdpRequest;
  client_config.request_rate = 50.0;
  Client* client = SpawnHost<Client>(world.net, world.topo.stub_nodes[5],
                                     FastLink(), client_config);
  client->Start();

  // Armed: UDP blocked.
  world.net.Run(Seconds(2));
  EXPECT_LT(client->stats().SuccessRatio(), 0.05);

  // Disarm via the TCSP: traffic flows again.
  ADTC_ASSERT_OK(world.tcsp.SetFirewallRulesActive(
      world.cert.subscriber, false));
  const auto before = client->stats().responses_received;
  world.net.Run(Seconds(2));
  EXPECT_GT(client->stats().responses_received, before + 50);

  // Re-arm: blocked again.
  ADTC_ASSERT_OK(world.tcsp.SetFirewallRulesActive(
      world.cert.subscriber, true));
  const auto after_rearm = client->stats().responses_received;
  world.net.Run(Seconds(2));
  EXPECT_LT(client->stats().responses_received, after_rearm + 10);
}

TEST(RuntimeOpsTest, RateLimitParameterChange) {
  OpsWorld world;
  ServiceRequest request;
  request.kind = ServiceKind::kDistributedFirewall;
  request.control_scope = {NodePrefix(world.server_as)};
  request.inbound_rate_limit_pps = 1000.0;
  ASSERT_TRUE(world.tcsp.DeployService(world.cert, request).status.ok());

  AttackDirective directive;
  directive.type = AttackType::kDirectFlood;
  directive.victim = world.server->address();
  directive.flood_proto = Protocol::kUdp;
  directive.spoof = SpoofMode::kNone;
  directive.rate_pps = 200.0;
  directive.duration = Seconds(10);
  auto* agent = SpawnHost<AgentHost>(world.net, world.topo.stub_nodes[7],
                                     FastLink(), directive);
  agent->StartFlood();
  world.net.Run(Seconds(2));
  const auto unlimited = world.net.metrics().dropped(
      TrafficClass::kAttack, DropReason::kFiltered);
  EXPECT_EQ(unlimited, 0u);  // 200 pps < 1000 pps limit

  // Tighten the limit to 10 pps at runtime.
  ADTC_ASSERT_OK(world.tcsp.SetRateLimit(world.cert.subscriber, 10.0));
  world.net.Run(Seconds(4));
  EXPECT_GT(world.net.metrics().dropped(TrafficClass::kAttack,
                                        DropReason::kFiltered),
            200u);
}

TEST(RuntimeOpsTest, ReadStatisticsAggregatesVantagePoints) {
  OpsWorld world;
  ServiceRequest request;
  request.kind = ServiceKind::kStatistics;
  request.control_scope = {NodePrefix(world.server_as)};
  ASSERT_TRUE(world.tcsp.DeployService(world.cert, request).status.ok());

  ClientConfig client_config;
  client_config.server = world.server->address();
  client_config.kind = RequestKind::kUdpRequest;
  client_config.request_rate = 50.0;
  SpawnHost<Client>(world.net, world.topo.stub_nodes[5], FastLink(),
                    client_config)
      ->Start();
  world.net.Run(Seconds(3));

  const auto report = world.tcsp.ReadStatistics(world.cert.subscriber);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report.value().vantage_points, 0u);
  EXPECT_GT(report.value().packets, 100u);
  EXPECT_GT(report.value().bytes, report.value().packets * 30);

  const auto logs = world.tcsp.ReadLogs(world.cert.subscriber);
  ASSERT_TRUE(logs.ok());
  EXPECT_NE(logs.value().find("vantage"), std::string::npos);
}

TEST(RuntimeOpsTest, OpsFailWhenNothingDeployed) {
  OpsWorld world;
  EXPECT_EQ(world.tcsp.SetFirewallRulesActive(world.cert.subscriber, true)
                .code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(world.tcsp.SetRateLimit(world.cert.subscriber, 5.0).code(),
            ErrorCode::kNotFound);
  EXPECT_FALSE(world.tcsp.ReadStatistics(world.cert.subscriber).ok());
  EXPECT_FALSE(world.tcsp.ReadLogs(world.cert.subscriber).ok());
}

TEST(RuntimeOpsTest, OpsFailWhenTcspDown) {
  OpsWorld world;
  ServiceRequest request;
  request.kind = ServiceKind::kStatistics;
  request.control_scope = {NodePrefix(world.server_as)};
  ASSERT_TRUE(world.tcsp.DeployService(world.cert, request).status.ok());
  world.tcsp.set_reachable(false);
  EXPECT_EQ(world.tcsp.ReadStatistics(world.cert.subscriber)
                .status()
                .code(),
            ErrorCode::kUnavailable);
  EXPECT_EQ(world.tcsp.SetRateLimit(world.cert.subscriber, 5.0).code(),
            ErrorCode::kUnavailable);
}

}  // namespace
}  // namespace adtc
