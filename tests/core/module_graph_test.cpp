#include "core/module_graph.h"

#include <gtest/gtest.h>

#include "core/modules/basic.h"
#include "core/modules/match.h"
#include "testutil.h"

namespace adtc {
namespace {

Packet UdpPacket(std::uint16_t dst_port = 80) {
  Packet p;
  p.src = HostAddress(1, 1);
  p.dst = HostAddress(2, 1);
  p.proto = Protocol::kUdp;
  p.dst_port = dst_port;
  p.size_bytes = 100;
  return p;
}

DeviceContext Ctx() {
  DeviceContext ctx;
  ctx.now = Seconds(1);
  return ctx;
}

TEST(ModuleGraphTest, SingleCounterAccepts) {
  ModuleGraph graph = ModuleGraph::Single(std::make_unique<CounterModule>());
  ASSERT_TRUE(graph.validated());
  Packet p = UdpPacket();
  const DeviceContext ctx = Ctx();
  EXPECT_EQ(graph.Execute(p, ctx), Verdict::kForward);
  EXPECT_EQ(graph.packets_processed(), 1u);
  EXPECT_EQ(graph.packets_dropped(), 0u);
}

TEST(ModuleGraphTest, MatchPortOneDrops) {
  MatchRule rule;
  rule.proto = Protocol::kUdp;
  rule.dst_port_range = {{80, 80}};
  ModuleGraph graph =
      ModuleGraph::Single(std::make_unique<MatchModule>(rule));
  Packet hit = UdpPacket(80);
  Packet miss = UdpPacket(443);
  const DeviceContext ctx = Ctx();
  EXPECT_EQ(graph.Execute(hit, ctx), Verdict::kDrop);
  EXPECT_EQ(graph.Execute(miss, ctx), Verdict::kForward);
  EXPECT_EQ(graph.packets_dropped(), 1u);
}

TEST(ModuleGraphTest, ChainRunsInOrder) {
  std::vector<std::unique_ptr<Module>> modules;
  modules.push_back(std::make_unique<CounterModule>());
  modules.push_back(std::make_unique<CounterModule>());
  ModuleGraph graph = ModuleGraph::Chain(std::move(modules));
  Packet p = UdpPacket();
  const DeviceContext ctx = Ctx();
  EXPECT_EQ(graph.Execute(p, ctx), Verdict::kForward);
  EXPECT_EQ(static_cast<const CounterModule*>(graph.module(0))->packets(), 1u);
  EXPECT_EQ(static_cast<const CounterModule*>(graph.module(1))->packets(), 1u);
}

TEST(ModuleGraphTest, BranchingRoutesByPort) {
  // match(port 80) -> [1] blacklist-ish drop path with counter, [0] accept.
  ModuleGraph graph;
  MatchRule rule;
  rule.dst_port_range = {{80, 80}};
  const int match = graph.AddModule(std::make_unique<MatchModule>(rule));
  const int on_match = graph.AddModule(std::make_unique<CounterModule>());
  ASSERT_TRUE(graph.SetEntry(match).ok());
  ASSERT_TRUE(graph.WireTerminal(match, kPortDefault,
                                 ModuleGraph::Terminal::kAccept)
                  .ok());
  ASSERT_TRUE(graph.Wire(match, kPortAlt, on_match).ok());
  ASSERT_TRUE(graph.WireTerminal(on_match, kPortDefault,
                                 ModuleGraph::Terminal::kDrop)
                  .ok());
  ADTC_ASSERT_OK(graph.Validate());

  Packet hit = UdpPacket(80);
  Packet miss = UdpPacket(443);
  const DeviceContext ctx = Ctx();
  EXPECT_EQ(graph.Execute(hit, ctx), Verdict::kDrop);
  EXPECT_EQ(graph.Execute(miss, ctx), Verdict::kForward);
  EXPECT_EQ(static_cast<const CounterModule*>(graph.module(on_match))
                ->packets(),
            1u);
}

TEST(ModuleGraphTest, ValidateRejectsEmptyGraph) {
  ModuleGraph graph;
  EXPECT_EQ(graph.Validate().code(), ErrorCode::kInvalidArgument);
}

TEST(ModuleGraphTest, ValidateRejectsMissingEntry) {
  ModuleGraph graph;
  const int counter = graph.AddModule(std::make_unique<CounterModule>());
  (void)graph.WireTerminal(counter, 0, ModuleGraph::Terminal::kAccept);
  EXPECT_FALSE(graph.Validate().ok());
}

TEST(ModuleGraphTest, ValidateRejectsUnwiredPort) {
  ModuleGraph graph;
  MatchRule rule;
  const int match = graph.AddModule(std::make_unique<MatchModule>(rule));
  (void)graph.SetEntry(match);
  (void)graph.WireTerminal(match, 0, ModuleGraph::Terminal::kAccept);
  // Port 1 left unwired.
  EXPECT_FALSE(graph.Validate().ok());
}

TEST(ModuleGraphTest, ValidateRejectsCycle) {
  ModuleGraph graph;
  const int a = graph.AddModule(std::make_unique<CounterModule>());
  const int b = graph.AddModule(std::make_unique<CounterModule>());
  (void)graph.SetEntry(a);
  (void)graph.Wire(a, 0, b);
  (void)graph.Wire(b, 0, a);  // cycle
  const Status status = graph.Validate();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("cycle"), std::string::npos);
}

TEST(ModuleGraphTest, WireRejectsBadIds) {
  ModuleGraph graph;
  const int a = graph.AddModule(std::make_unique<CounterModule>());
  EXPECT_FALSE(graph.Wire(a, 0, 99).ok());
  EXPECT_FALSE(graph.Wire(99, 0, a).ok());
  EXPECT_FALSE(graph.Wire(a, 5, a).ok());  // port out of range
  EXPECT_FALSE(graph.SetEntry(-1).ok());
}

TEST(ModuleGraphTest, RewiringInvalidatesUntilRevalidated) {
  ModuleGraph graph = ModuleGraph::Single(std::make_unique<CounterModule>());
  EXPECT_TRUE(graph.validated());
  const int extra = graph.AddModule(std::make_unique<CounterModule>());
  EXPECT_FALSE(graph.validated());
  (void)graph.WireTerminal(extra, 0, ModuleGraph::Terminal::kAccept);
  ADTC_EXPECT_OK(graph.Validate());
}

TEST(ModuleGraphTest, FindModuleLocatesByType) {
  std::vector<std::unique_ptr<Module>> modules;
  modules.push_back(std::make_unique<CounterModule>());
  modules.push_back(std::make_unique<PayloadDeleteModule>());
  ModuleGraph graph = ModuleGraph::Chain(std::move(modules));
  EXPECT_NE(graph.FindModule<PayloadDeleteModule>(), nullptr);
  EXPECT_NE(graph.FindModule<CounterModule>(), nullptr);
  EXPECT_EQ(graph.FindModule<MatchModule>(), nullptr);
}

TEST(ModuleGraphTest, DeepChainExecutes) {
  std::vector<std::unique_ptr<Module>> modules;
  for (int i = 0; i < 30; ++i) {
    modules.push_back(std::make_unique<CounterModule>());
  }
  ModuleGraph graph = ModuleGraph::Chain(std::move(modules));
  Packet p = UdpPacket();
  const DeviceContext ctx = Ctx();
  EXPECT_EQ(graph.Execute(p, ctx), Verdict::kForward);
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(static_cast<const CounterModule*>(graph.module(i))->packets(),
              1u);
  }
}

}  // namespace
}  // namespace adtc
