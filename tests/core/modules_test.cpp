#include <gtest/gtest.h>

#include "core/modules/antispoof.h"
#include "core/modules/basic.h"
#include "core/modules/match.h"
#include "core/modules/observe.h"
#include "core/modules/rate_limit.h"
#include "core/modules/traceback.h"
#include "net/network.h"

namespace adtc {
namespace {

Packet UdpPacket(NodeId src_node = 1, NodeId dst_node = 2,
                 std::uint16_t dst_port = 80) {
  Packet p;
  p.src = HostAddress(src_node, 1);
  p.dst = HostAddress(dst_node, 1);
  p.proto = Protocol::kUdp;
  p.dst_port = dst_port;
  p.size_bytes = 100;
  p.serial = 1;
  p.payload_hash = 1;
  return p;
}

DeviceContext CtxAt(SimTime now, LinkKind in_kind = LinkKind::kAccessUp,
                    NodeId node = 1) {
  DeviceContext ctx;
  ctx.now = now;
  ctx.in_kind = in_kind;
  ctx.node = node;
  return ctx;
}

// --- MatchRule ---------------------------------------------------------------

TEST(MatchRuleTest, EmptyRuleMatchesEverything) {
  MatchRule rule;
  EXPECT_TRUE(rule.Matches(UdpPacket()));
}

TEST(MatchRuleTest, EachFieldConstrains) {
  Packet p = UdpPacket(1, 2, 80);
  p.proto = Protocol::kTcp;
  p.tcp_flags = tcp::kSyn;
  p.src_port = 1234;

  MatchRule rule;
  rule.src_prefix = NodePrefix(1);
  EXPECT_TRUE(rule.Matches(p));
  rule.src_prefix = NodePrefix(9);
  EXPECT_FALSE(rule.Matches(p));

  rule = MatchRule{};
  rule.dst_prefix = NodePrefix(2);
  EXPECT_TRUE(rule.Matches(p));
  rule.dst_prefix = NodePrefix(9);
  EXPECT_FALSE(rule.Matches(p));

  rule = MatchRule{};
  rule.proto = Protocol::kTcp;
  EXPECT_TRUE(rule.Matches(p));
  rule.proto = Protocol::kIcmp;
  EXPECT_FALSE(rule.Matches(p));

  rule = MatchRule{};
  rule.dst_port_range = {{79, 81}};
  EXPECT_TRUE(rule.Matches(p));
  rule.dst_port_range = {{81, 90}};
  EXPECT_FALSE(rule.Matches(p));

  rule = MatchRule{};
  rule.src_port_range = {{1234, 1234}};
  EXPECT_TRUE(rule.Matches(p));
  rule.src_port_range = {{1, 2}};
  EXPECT_FALSE(rule.Matches(p));

  rule = MatchRule{};
  rule.tcp_flags_all = tcp::kSyn;
  EXPECT_TRUE(rule.Matches(p));
  rule.tcp_flags_all = static_cast<std::uint8_t>(tcp::kSyn | tcp::kAck);
  EXPECT_FALSE(rule.Matches(p));

  rule = MatchRule{};
  rule.size_range = {{50, 150}};
  EXPECT_TRUE(rule.Matches(p));
  rule.size_range = {{200, 300}};
  EXPECT_FALSE(rule.Matches(p));

  rule = MatchRule{};
  rule.payload_hash = 1;
  EXPECT_TRUE(rule.Matches(p));
  rule.payload_hash = 2;
  EXPECT_FALSE(rule.Matches(p));
}

TEST(MatchRuleTest, TcpFlagsRequireTcp) {
  MatchRule rule;
  rule.tcp_flags_all = tcp::kRst;
  Packet p = UdpPacket();  // UDP
  EXPECT_FALSE(rule.Matches(p));
}

TEST(MatchRuleTest, IcmpTypeMatch) {
  MatchRule rule;
  rule.icmp = IcmpType::kDestUnreachable;
  Packet p = UdpPacket();
  p.proto = Protocol::kIcmp;
  p.icmp = IcmpType::kDestUnreachable;
  EXPECT_TRUE(rule.Matches(p));
  p.icmp = IcmpType::kEchoRequest;
  EXPECT_FALSE(rule.Matches(p));
}

TEST(MatchModuleTest, InactiveRuleNeverMatches) {
  MatchRule rule;  // matches everything
  MatchModule module(rule);
  module.set_active(false);
  Packet p = UdpPacket();
  const DeviceContext ctx = CtxAt(0);
  EXPECT_EQ(module.OnPacket(p, ctx), kPortDefault);
  module.set_active(true);
  EXPECT_EQ(module.OnPacket(p, ctx), kPortAlt);
  EXPECT_EQ(module.matched(), 1u);
}

TEST(MatchRuleTest, DescribeMentionsFields) {
  MatchRule rule;
  rule.src_prefix = NodePrefix(3);
  rule.proto = Protocol::kTcp;
  const std::string description = rule.Describe();
  EXPECT_NE(description.find("src="), std::string::npos);
  EXPECT_NE(description.find("tcp"), std::string::npos);
}

// --- Blacklist / PayloadDelete / Counter -------------------------------------

TEST(BlacklistModuleTest, FlagsListedSources) {
  BlacklistModule module;
  module.Add(HostAddress(5, 7));
  module.Add(NodePrefix(9));
  const DeviceContext ctx = CtxAt(0);

  Packet listed_host = UdpPacket();
  listed_host.src = HostAddress(5, 7);
  EXPECT_EQ(module.OnPacket(listed_host, ctx), kPortAlt);

  Packet listed_prefix = UdpPacket();
  listed_prefix.src = HostAddress(9, 123);
  EXPECT_EQ(module.OnPacket(listed_prefix, ctx), kPortAlt);

  Packet clean = UdpPacket();
  clean.src = HostAddress(5, 8);
  EXPECT_EQ(module.OnPacket(clean, ctx), kPortDefault);
  EXPECT_EQ(module.hits(), 2u);
}

TEST(BlacklistModuleTest, RemoveUnlists) {
  BlacklistModule module;
  module.Add(NodePrefix(9));
  EXPECT_TRUE(module.Remove(NodePrefix(9)));
  Packet p = UdpPacket();
  p.src = HostAddress(9, 1);
  const DeviceContext ctx = CtxAt(0);
  EXPECT_EQ(module.OnPacket(p, ctx), kPortDefault);
}

TEST(PayloadDeleteModuleTest, ShrinksToHeader) {
  PayloadDeleteModule module(40);
  Packet p = UdpPacket();
  p.size_bytes = 1500;
  p.payload_hash = 123;
  const DeviceContext ctx = CtxAt(0);
  EXPECT_EQ(module.OnPacket(p, ctx), kPortDefault);
  EXPECT_EQ(p.size_bytes, 40u);
  EXPECT_EQ(p.payload_hash, 0u);
  EXPECT_EQ(module.stripped_bytes(), 1460u);
}

TEST(PayloadDeleteModuleTest, NeverGrows) {
  PayloadDeleteModule module(40);
  Packet p = UdpPacket();
  p.size_bytes = 30;  // already below header size
  const DeviceContext ctx = CtxAt(0);
  module.OnPacket(p, ctx);
  EXPECT_EQ(p.size_bytes, 30u);
}

// --- AntiSpoof ---------------------------------------------------------------

TEST(AntiSpoofTest, OwnerModeFlagsSpoofAtForeignEdge) {
  AntiSpoofModule module(AntiSpoofModule::Mode::kProtectOwnerPrefixes);
  module.AddProtectedPrefix(NodePrefix(9));  // the victim's prefix
  module.AddLegitimateSourceNode(9);

  // Spoofed packet claiming the victim's address enters at node 3.
  Packet spoofed = UdpPacket();
  spoofed.src = HostAddress(9, 1);
  DeviceContext ctx = CtxAt(0, LinkKind::kAccessUp, /*node=*/3);
  EXPECT_EQ(module.OnPacket(spoofed, ctx), kPortAlt);

  // The same packet at the victim's own AS is legitimate.
  ctx.node = 9;
  EXPECT_EQ(module.OnPacket(spoofed, ctx), kPortDefault);

  // Unprotected sources always pass.
  Packet other = UdpPacket();
  other.src = HostAddress(4, 1);
  ctx.node = 3;
  EXPECT_EQ(module.OnPacket(other, ctx), kPortDefault);
}

TEST(AntiSpoofTest, TransitTrafficNeverChecked) {
  AntiSpoofModule module(AntiSpoofModule::Mode::kProtectOwnerPrefixes);
  module.AddProtectedPrefix(NodePrefix(9));
  Packet spoofed = UdpPacket();
  spoofed.src = HostAddress(9, 1);
  for (LinkKind kind : {LinkKind::kPeer, LinkKind::kProviderToCustomer}) {
    DeviceContext ctx = CtxAt(0, kind, 3);
    EXPECT_EQ(module.OnPacket(spoofed, ctx), kPortDefault)
        << LinkKindName(kind);
  }
  EXPECT_EQ(module.transit_passed(), 2u);
  EXPECT_EQ(module.spoofs_flagged(), 0u);
}

TEST(AntiSpoofTest, ConeModeDropsOutsideCone) {
  AntiSpoofModule module(AntiSpoofModule::Mode::kAllowedCone);
  module.AddAllowedPrefix(NodePrefix(3));
  module.AddAllowedPrefix(NodePrefix(4));
  DeviceContext ctx = CtxAt(0, LinkKind::kCustomerToProvider, 1);

  Packet inside = UdpPacket();
  inside.src = HostAddress(3, 5);
  EXPECT_EQ(module.OnPacket(inside, ctx), kPortDefault);

  Packet outside = UdpPacket();
  outside.src = HostAddress(7, 5);
  EXPECT_EQ(module.OnPacket(outside, ctx), kPortAlt);
}

// --- RateLimit / Sampler -------------------------------------------------------

TEST(RateLimitModuleTest, AggregateBucketLimits) {
  RateLimitModule module(/*rate_pps=*/10.0, /*burst=*/5.0);
  int passed = 0, exceeded = 0;
  for (int i = 0; i < 20; ++i) {
    Packet p = UdpPacket();
    const DeviceContext ctx = CtxAt(Milliseconds(i));  // 20 pkts in 20 ms
    (module.OnPacket(p, ctx) == kPortDefault ? passed : exceeded)++;
  }
  EXPECT_EQ(passed, 5);  // burst only; refill in 20 ms is ~0.2 tokens
  EXPECT_EQ(exceeded, 15);
}

TEST(RateLimitModuleTest, RefillRestoresFlow) {
  RateLimitModule module(/*rate_pps=*/100.0, /*burst=*/1.0);
  Packet p = UdpPacket();
  EXPECT_EQ(module.OnPacket(p, CtxAt(0)), kPortDefault);
  EXPECT_EQ(module.OnPacket(p, CtxAt(Microseconds(10))), kPortAlt);
  // 100 pps -> a token every 10 ms.
  EXPECT_EQ(module.OnPacket(p, CtxAt(Milliseconds(11))), kPortDefault);
}

TEST(RateLimitModuleTest, PerPrefixGranularityIsolatesSources) {
  RateLimitModule module(10.0, 1.0,
                         RateLimitModule::Granularity::kPerSrcPrefix);
  Packet from_a = UdpPacket(1);
  Packet from_b = UdpPacket(2);
  const DeviceContext ctx = CtxAt(0);
  EXPECT_EQ(module.OnPacket(from_a, ctx), kPortDefault);
  EXPECT_EQ(module.OnPacket(from_a, ctx), kPortAlt);   // a exhausted
  EXPECT_EQ(module.OnPacket(from_b, ctx), kPortDefault);  // b unaffected
}

TEST(SamplerModuleTest, EveryNthOnAltPort) {
  SamplerModule module(4);
  const DeviceContext ctx = CtxAt(0);
  int alt = 0;
  for (int i = 0; i < 20; ++i) {
    Packet p = UdpPacket();
    alt += module.OnPacket(p, ctx) == kPortAlt ? 1 : 0;
  }
  EXPECT_EQ(alt, 5);
}

// --- Observation ----------------------------------------------------------------

TEST(LoggerModuleTest, RecordsIntoTrace) {
  LoggerModule module(128);
  const DeviceContext ctx = CtxAt(Seconds(1));
  for (int i = 0; i < 10; ++i) {
    Packet p = UdpPacket();
    module.OnPacket(p, ctx);
  }
  EXPECT_EQ(module.trace().size(), 10u);
  EXPECT_GT(module.declared_overhead_bytes(), 0u);
}

TEST(StatisticsModuleTest, AggregatesWireDimensions) {
  StatisticsModule module;
  for (int i = 0; i < 6; ++i) {
    Packet p = UdpPacket(1, 2, i % 2 == 0 ? 80 : 443);
    module.OnPacket(p, CtxAt(Milliseconds(i * 100)));
  }
  Packet icmp = UdpPacket();
  icmp.proto = Protocol::kIcmp;
  module.OnPacket(icmp, CtxAt(Milliseconds(700)));

  EXPECT_EQ(module.packets(), 7u);
  EXPECT_EQ(module.bytes(), 700u);
  EXPECT_EQ(module.ByProtocol(Protocol::kUdp), 6u);
  EXPECT_EQ(module.ByProtocol(Protocol::kIcmp), 1u);
  EXPECT_EQ(module.by_dst_port().at(80), 4u);  // includes the ICMP packet
  EXPECT_EQ(module.by_dst_port().at(443), 3u);
  EXPECT_NEAR(module.MeanRate(Seconds(1)), 7.0, 0.5);
}

TEST(TriggerModuleTest, FiresAboveThresholdOnly) {
  TriggerModule::Config config;
  config.rate_threshold_pps = 100.0;
  config.window = Milliseconds(100);
  config.cooldown = Milliseconds(500);
  TriggerModule module(config);
  EventBuffer events;
  DeviceContext ctx = CtxAt(0);
  ctx.events = &events;

  // 10 pps for a second: below threshold, no firing.
  for (int i = 0; i < 10; ++i) {
    Packet p = UdpPacket();
    ctx.now = Milliseconds(i * 100);
    module.OnPacket(p, ctx);
  }
  EXPECT_EQ(module.fired_count(), 0u);

  // 1000 pps burst: fires (respecting cooldown).
  for (int i = 0; i < 1000; ++i) {
    Packet p = UdpPacket();
    ctx.now = Seconds(2) + Milliseconds(i);
    module.OnPacket(p, ctx);
  }
  EXPECT_GE(module.fired_count(), 1u);
  EXPECT_LE(module.fired_count(), 3u);  // cooldown caps it
  EXPECT_EQ(events.CountOf(EventKind::kTriggerFired), module.fired_count());
  EXPECT_GT(module.last_observed_rate(), 100.0);
}

TEST(TriggerModuleTest, ArmedActionRuns) {
  TriggerModule::Config config;
  config.rate_threshold_pps = 10.0;
  config.window = Milliseconds(100);
  TriggerModule module(config);
  int activations = 0;
  module.ArmAction([&activations](const DeviceContext&) { activations++; });
  DeviceContext ctx = CtxAt(0);
  for (int i = 0; i < 200; ++i) {
    Packet p = UdpPacket();
    ctx.now = Milliseconds(i);
    module.OnPacket(p, ctx);
  }
  EXPECT_GE(activations, 1);
}


TEST(TriggerModuleTest, CooldownBoundaryRefiresExactlyAtExpiry) {
  TriggerModule::Config config;
  config.rate_threshold_pps = 100.0;
  config.window = Milliseconds(100);
  config.cooldown = Milliseconds(500);
  TriggerModule module(config);
  DeviceContext ctx = CtxAt(0);

  // 200 pps sustained; windows close at every 100 ms multiple.
  // First close (t=100ms) fires; closes at 200..500 ms sit inside the
  // cooldown; the close at exactly last_fired + cooldown (t=600ms) must
  // fire again — the cooldown comparison is >=, not >.
  for (int i = 0; i <= 120; ++i) {
    Packet p = UdpPacket();
    ctx.now = Milliseconds(i * 5);
    module.OnPacket(p, ctx);
    if (i == 100) {
      EXPECT_EQ(module.fired_count(), 1u) << "fired during cooldown";
    }
  }
  EXPECT_EQ(module.fired_count(), 2u);
}

TEST(TriggerModuleTest, RearmFractionFiresOnceUntilRateSubsides) {
  TriggerModule::Config config;
  config.rate_threshold_pps = 100.0;
  config.window = Milliseconds(100);
  config.cooldown = 0;  // isolate the re-arm hysteresis from the cooldown
  config.rearm_below_fraction = 0.5;
  TriggerModule module(config);
  DeviceContext ctx = CtxAt(0);

  // A hovering anomaly (200 pps for a full second) fires exactly once:
  // the module disarms after the first firing and 200 pps never dips
  // below the 50 pps re-arm line.
  for (int i = 0; i <= 200; ++i) {
    Packet p = UdpPacket();
    ctx.now = Milliseconds(i * 5);
    module.OnPacket(p, ctx);
  }
  EXPECT_EQ(module.fired_count(), 1u);
  EXPECT_FALSE(module.armed());

  // One quiet window (10 pps < 50 pps) re-arms without firing...
  Packet quiet = UdpPacket();
  ctx.now = Milliseconds(1100);
  module.OnPacket(quiet, ctx);
  EXPECT_EQ(module.fired_count(), 1u);
  EXPECT_TRUE(module.armed());

  // ...so the next burst fires again.
  for (int i = 1; i <= 20; ++i) {
    Packet p = UdpPacket();
    ctx.now = Milliseconds(1100 + i * 5);
    module.OnPacket(p, ctx);
  }
  EXPECT_EQ(module.fired_count(), 2u);
  EXPECT_FALSE(module.armed());
}

TEST(TriggerModuleTest, CongestionThresholdFires) {
  // Telemetry-based triggering (Sec. 4.2 router state): a router whose
  // out-links drop heavily trips the trigger even at low packet rates.
  Network net(3);
  const NodeId a = net.AddNode(NodeRole::kStub);
  const NodeId b = net.AddNode(NodeRole::kStub);
  // Tiny, slow link: guaranteed queue drops.
  net.Connect(a, b, LinkParams{KilobitsPerSecond(64), Milliseconds(1), 512},
              LinkKind::kPeer);
  net.FinalizeRouting();

  TriggerModule::Config config;
  config.rate_threshold_pps = 1e12;     // rate path disabled
  config.drop_share_threshold = 0.2;    // congestion path armed
  config.window = Milliseconds(100);
  TriggerModule module(config);

  DeviceContext ctx;
  ctx.net = &net;
  ctx.node = a;

  // Congest the a->b link by injecting traffic at the router.
  for (int i = 0; i < 200; ++i) {
    Packet flood;
    flood.src = HostAddress(a, 1);
    flood.dst = HostAddress(b, 1);
    flood.size_bytes = 400;
    net.InjectAtNode(a, std::move(flood));
  }
  net.Run(Seconds(1));
  ASSERT_GT(ctx.RouterDropShare(), 0.2);

  // Feed the trigger a slow trickle: fires on congestion, not rate.
  for (int i = 0; i < 10; ++i) {
    Packet p = UdpPacket();
    ctx.now = Seconds(1) + Milliseconds(i * 50);
    module.OnPacket(p, ctx);
  }
  EXPECT_GE(module.fired_count(), 1u);
}

TEST(TracebackStoreModuleTest, SawRecentPackets) {
  TracebackStoreModule module;
  Packet p = UdpPacket();
  p.serial = 42;
  p.payload_hash = 42;
  const DeviceContext ctx = CtxAt(Seconds(1));
  module.OnPacket(p, ctx);
  EXPECT_TRUE(module.Saw(PacketDigest(p)));
  Packet other = UdpPacket();
  other.serial = 43;
  other.payload_hash = 43;
  EXPECT_FALSE(module.Saw(PacketDigest(other)));
}

TEST(TracebackStoreModuleTest, OldWindowsExpire) {
  TracebackStoreModule::Config config;
  config.window = Milliseconds(100);
  config.window_count = 2;
  TracebackStoreModule module(config);
  Packet old_packet = UdpPacket();
  old_packet.serial = 1;
  module.OnPacket(old_packet, CtxAt(0));
  // Roll far past the retention (2 windows of 100 ms).
  for (int i = 1; i <= 10; ++i) {
    Packet filler = UdpPacket();
    filler.serial = 100 + i;
    module.OnPacket(filler, CtxAt(Milliseconds(i * 100)));
  }
  EXPECT_FALSE(module.Saw(PacketDigest(old_packet)));
}

TEST(TracebackStoreModuleTest, SawDuringRespectsTimeRange) {
  TracebackStoreModule::Config config;
  config.window = Milliseconds(100);
  config.window_count = 16;
  TracebackStoreModule module(config);
  Packet p = UdpPacket();
  p.serial = 7;
  module.OnPacket(p, CtxAt(Milliseconds(250)));
  const std::uint64_t digest = PacketDigest(p);
  EXPECT_TRUE(module.SawDuring(digest, Milliseconds(200), Milliseconds(400)));
  EXPECT_FALSE(module.SawDuring(digest, Milliseconds(600), Milliseconds(900)));
}

}  // namespace
}  // namespace adtc
