// Parameterised property test of the fundamental safety rule (Sec. 4.1):
//
// "our system assures that a network user can only get control over the
//  IP packets he or she owns ... traffic owned by other parties is not
//  affected."
//
// For every deployable service kind, we deploy the most aggressive
// configuration for one subscriber and assert that traffic neither
// sourced at nor destined to the subscriber's prefix is bit-for-bit
// unaffected (same delivery count, same latency profile) compared to an
// identical world without the deployment.
#include <gtest/gtest.h>

#include "core/tcsp.h"
#include "host/client.h"
#include "host/server.h"
#include "testutil.h"

namespace adtc {
namespace {

using testing::SmallWorld;

LinkParams FastLink() {
  return LinkParams{GigabitsPerSecond(1), Milliseconds(1), 1024 * 1024};
}

ServiceRequest AggressiveRequest(ServiceKind kind, const Prefix& scope) {
  ServiceRequest request;
  request.kind = kind;
  request.control_scope = {scope};
  switch (kind) {
    case ServiceKind::kDistributedFirewall: {
      MatchRule deny_everything;  // empty rule matches all owned traffic
      request.deny_rules = {deny_everything};
      request.inbound_rate_limit_pps = 1.0;
      break;
    }
    case ServiceKind::kAnomalyReaction:
      request.trigger.rate_threshold_pps = 0.001;  // hair trigger
      request.trigger.window = Milliseconds(100);
      request.reaction_rate_limit_pps = 0.5;
      request.reaction_aggregate_factor = 1.0;
      break;
    default:
      break;
  }
  return request;
}

struct BystanderOutcome {
  std::uint64_t responses = 0;
  double mean_latency_ms = 0;
};

/// Runs a world where a bystander client/server pair (unrelated to the
/// subscriber) exchanges traffic; returns the bystander's outcome.
BystanderOutcome RunWorld(std::uint64_t seed,
                          std::optional<ServiceKind> deploy_kind) {
  SmallWorld world(seed);
  NumberAuthority authority;
  AllocateTopologyPrefixes(authority, world.net.node_count());
  Tcsp tcsp(world.net, authority, "prop-key");
  std::vector<std::unique_ptr<IspNms>> nmses;
  for (NodeId node = 0; node < world.net.node_count(); ++node) {
    auto nms = std::make_unique<IspNms>("isp", world.net,
                                        &tcsp.validator());
    nms->ManageNode(node);
    tcsp.EnrollIsp(nms.get());
    nmses.push_back(std::move(nms));
  }

  // The subscriber's own server (it will brutalise its own traffic).
  const NodeId sub_as = world.topo.stub_nodes[0];
  Server* sub_server = SpawnHost<Server>(world.net, sub_as, FastLink());
  ClientConfig sub_client_config;
  sub_client_config.server = sub_server->address();
  sub_client_config.kind = RequestKind::kUdpRequest;
  sub_client_config.request_rate = 50.0;
  SpawnHost<Client>(world.net, world.topo.stub_nodes[4], FastLink(),
                    sub_client_config)
      ->Start();

  // The bystanders: completely unrelated pair.
  const NodeId bys_as = world.topo.stub_nodes[9];
  Server* bys_server = SpawnHost<Server>(world.net, bys_as, FastLink());
  ClientConfig bys_config;
  bys_config.server = bys_server->address();
  bys_config.kind = RequestKind::kUdpRequest;
  bys_config.request_rate = 40.0;
  bys_config.poisson = false;  // deterministic cadence for exact compare
  Client* bystander = SpawnHost<Client>(
      world.net, world.topo.stub_nodes[14], FastLink(), bys_config);
  bystander->Start();

  if (deploy_kind) {
    const auto cert = tcsp.Register(AsOrgName(sub_as), {NodePrefix(sub_as)});
    EXPECT_TRUE(cert.ok());
    const auto report = tcsp.DeployService(
        cert.value(), AggressiveRequest(*deploy_kind, NodePrefix(sub_as)));
    EXPECT_TRUE(report.status.ok()) << report.status.ToString();
  }

  world.net.Run(Seconds(5));
  return {bystander->stats().responses_received,
          bystander->stats().latency_ms.mean()};
}

class OwnershipScopingTest
    : public ::testing::TestWithParam<ServiceKind> {};

TEST_P(OwnershipScopingTest, ForeignTrafficBitForBitUnaffected) {
  const ServiceKind kind = GetParam();
  const BystanderOutcome without = RunWorld(777, std::nullopt);
  const BystanderOutcome with = RunWorld(777, kind);
  // Identical seeds, identical worlds: the bystander's experience must be
  // *exactly* the same whether or not the subscriber deploys.
  EXPECT_EQ(with.responses, without.responses);
  EXPECT_DOUBLE_EQ(with.mean_latency_ms, without.mean_latency_ms);
  EXPECT_GT(without.responses, 100u);  // the bystander actually ran
}

INSTANTIATE_TEST_SUITE_P(
    AllServices, OwnershipScopingTest,
    ::testing::Values(ServiceKind::kRemoteIngressFiltering,
                      ServiceKind::kDistributedFirewall,
                      ServiceKind::kTraceback, ServiceKind::kStatistics,
                      ServiceKind::kAnomalyReaction),
    [](const ::testing::TestParamInfo<ServiceKind>& info) {
      std::string name(ServiceKindName(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace adtc
