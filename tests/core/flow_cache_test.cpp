// Flow verdict cache (core/adaptive_device.h): the cache must be
// invisible — every verdict and every packet mutation must be identical
// with the cache on and off, across installs, removals, quarantines and
// module reconfiguration. These tests pin the invalidation rules and run
// a differential cached-vs-uncached comparison over the same workload
// shapes bench_t4 measures.
#include <gtest/gtest.h>

#include <functional>

#include "core/adaptive_device.h"
#include "core/modules/basic.h"
#include "core/modules/match.h"
#include "testutil.h"

namespace adtc {
namespace {

CertificateAuthority& Ca() {
  static CertificateAuthority ca("flow-cache-key");
  return ca;
}

OwnershipCertificate CertFor(SubscriberId subscriber, NodeId node) {
  return Ca().Issue(subscriber, "owner-of-" + std::to_string(node),
                    {NodePrefix(node)}, 0, Seconds(3600));
}

RouterContext Ctx() {
  RouterContext ctx;
  ctx.node = 0;
  ctx.in_kind = LinkKind::kPeer;
  ctx.now = Seconds(1);
  return ctx;
}

Packet PacketBetween(NodeId src_node, NodeId dst_node,
                     std::uint16_t dst_port = 80,
                     std::uint32_t size = 512) {
  Packet p;
  p.src = HostAddress(src_node, 1);
  p.dst = HostAddress(dst_node, 1);
  p.proto = Protocol::kUdp;
  p.dst_port = dst_port;
  p.size_bytes = size;
  return p;
}

ModuleGraph MatchDropGraph(std::uint16_t port) {
  MatchRule rule;
  rule.proto = Protocol::kUdp;
  rule.dst_port_range = {{port, port}};
  return ModuleGraph::Single(std::make_unique<MatchModule>(rule));
}

TEST(FlowCacheTest, RepeatedFlowHitsCache) {
  AdaptiveDevice device(0);
  ADTC_ASSERT_OK(device.InstallDeployment({CertFor(1, 6),
                                           {NodePrefix(6)},
                                           std::nullopt,
                                           MatchDropGraph(80)}));
  Packet first = PacketBetween(1, 6);
  EXPECT_EQ(device.Process(first, Ctx()), Verdict::kDrop);
  EXPECT_EQ(device.stats().flow_cache_misses, 1u);
  EXPECT_EQ(device.stats().flow_cache_hits, 0u);
  EXPECT_EQ(device.flow_cache_size(), 1u);

  Packet second = PacketBetween(1, 6);
  EXPECT_EQ(device.Process(second, Ctx()), Verdict::kDrop);
  EXPECT_EQ(device.stats().flow_cache_hits, 1u);
  // The cached drop keeps every counter moving as if the modules ran.
  EXPECT_EQ(device.stats().redirected_packets, 2u);
  EXPECT_EQ(device.stats().stage2_runs, 2u);
  EXPECT_EQ(device.stats().dropped_packets, 2u);
  const ModuleGraph* graph =
      device.StageGraph(1, ProcessingStage::kDestinationOwner);
  ASSERT_NE(graph, nullptr);
  EXPECT_EQ(graph->packets_processed(), 2u);
  EXPECT_EQ(graph->packets_dropped(), 2u);
}

TEST(FlowCacheTest, FastPathFlowsAreCachedToo) {
  AdaptiveDevice device(0);
  ADTC_ASSERT_OK(device.InstallDeployment({CertFor(1, 6),
                                           {NodePrefix(6)},
                                           std::nullopt,
                                           MatchDropGraph(80)}));
  Packet a = PacketBetween(1, 2);
  Packet b = PacketBetween(1, 2);
  EXPECT_EQ(device.Process(a, Ctx()), Verdict::kForward);
  EXPECT_EQ(device.Process(b, Ctx()), Verdict::kForward);
  EXPECT_EQ(device.stats().fast_path_packets, 2u);
  EXPECT_EQ(device.stats().flow_cache_hits, 1u);
}

TEST(FlowCacheTest, DisablingTheCacheStopsHits) {
  AdaptiveDevice device(0);
  device.set_flow_cache_enabled(false);
  ADTC_ASSERT_OK(device.InstallDeployment({CertFor(1, 6),
                                           {NodePrefix(6)},
                                           std::nullopt,
                                           MatchDropGraph(80)}));
  for (int i = 0; i < 3; ++i) {
    Packet p = PacketBetween(1, 6);
    EXPECT_EQ(device.Process(p, Ctx()), Verdict::kDrop);
  }
  EXPECT_EQ(device.stats().flow_cache_hits, 0u);
  EXPECT_EQ(device.stats().flow_cache_misses, 0u);
  EXPECT_EQ(device.flow_cache_size(), 0u);
}

TEST(FlowCacheTest, RemovalEvictsCachedVerdict) {
  AdaptiveDevice device(0);
  ADTC_ASSERT_OK(device.InstallDeployment({CertFor(1, 6),
                                           {NodePrefix(6)},
                                           std::nullopt,
                                           MatchDropGraph(80)}));
  Packet warm = PacketBetween(1, 6);
  EXPECT_EQ(device.Process(warm, Ctx()), Verdict::kDrop);
  Packet hit = PacketBetween(1, 6);
  EXPECT_EQ(device.Process(hit, Ctx()), Verdict::kDrop);
  ASSERT_EQ(device.stats().flow_cache_hits, 1u);

  ADTC_ASSERT_OK(device.RemoveDeployment(1));
  Packet after = PacketBetween(1, 6);
  EXPECT_EQ(device.Process(after, Ctx()), Verdict::kForward);
  EXPECT_EQ(device.stats().flow_cache_hits, 1u);  // no stale replay
}

TEST(FlowCacheTest, InstallEvictsCachedLookups) {
  AdaptiveDevice device(0);
  // The flow 1->6 is cached as fast-path before any owner of 6 deploys.
  Packet warm = PacketBetween(1, 6);
  EXPECT_EQ(device.Process(warm, Ctx()), Verdict::kForward);
  ADTC_ASSERT_OK(device.InstallDeployment({CertFor(1, 6),
                                           {NodePrefix(6)},
                                           std::nullopt,
                                           MatchDropGraph(80)}));
  Packet after = PacketBetween(1, 6);
  EXPECT_EQ(device.Process(after, Ctx()), Verdict::kDrop);
}

TEST(FlowCacheTest, BlacklistMutationEvictsCachedVerdict) {
  AdaptiveDevice device(0);
  auto blacklist = std::make_unique<BlacklistModule>();
  BlacklistModule* list = blacklist.get();
  ADTC_ASSERT_OK(device.InstallDeployment(
      {CertFor(1, 5),
       {NodePrefix(5)},
       ModuleGraph::Single(std::move(blacklist)),
       std::nullopt}));

  // Not listed yet: forwarded, and the forward verdict is cached.
  Packet before = PacketBetween(5, 2);
  EXPECT_EQ(device.Process(before, Ctx()), Verdict::kForward);
  Packet cached = PacketBetween(5, 2);
  EXPECT_EQ(device.Process(cached, Ctx()), Verdict::kForward);
  ASSERT_EQ(device.stats().flow_cache_hits, 1u);

  // Listing the source bumps the graph's config revision; the cached
  // forward must not survive.
  list->Add(HostAddress(5, 1));
  Packet blocked = PacketBetween(5, 2);
  EXPECT_EQ(device.Process(blocked, Ctx()), Verdict::kDrop);

  // Unlisting restores forwarding the same way.
  EXPECT_TRUE(list->Remove(Prefix::Host(HostAddress(5, 1))));
  Packet unblocked = PacketBetween(5, 2);
  EXPECT_EQ(device.Process(unblocked, Ctx()), Verdict::kForward);
}

TEST(FlowCacheTest, RuleToggleEvictsCachedVerdict) {
  AdaptiveDevice device(0);
  MatchRule rule;
  rule.proto = Protocol::kUdp;
  rule.dst_port_range = {{80, 80}};
  auto match = std::make_unique<MatchModule>(rule);
  MatchModule* firewall = match.get();
  ADTC_ASSERT_OK(device.InstallDeployment(
      {CertFor(1, 6),
       {NodePrefix(6)},
       std::nullopt,
       ModuleGraph::Single(std::move(match))}));

  Packet warm = PacketBetween(1, 6);
  EXPECT_EQ(device.Process(warm, Ctx()), Verdict::kDrop);
  Packet hit = PacketBetween(1, 6);
  EXPECT_EQ(device.Process(hit, Ctx()), Verdict::kDrop);
  ASSERT_EQ(device.stats().flow_cache_hits, 1u);

  firewall->set_active(false);
  Packet disarmed = PacketBetween(1, 6);
  EXPECT_EQ(device.Process(disarmed, Ctx()), Verdict::kForward);
}

/// Misbehaves only for dst_port 666 (rewrites the source address, a
/// safety violation that quarantines the deployment); drops everything
/// else. Claims purity so well-behaved flows are fully cached — the test
/// then checks quarantine evicts them.
class ConditionallyEvilModule : public Module {
 public:
  int OnPacket(Packet& p, const DeviceContext&) override {
    if (p.dst_port == 666) {
      p.src = Ipv4Address(0xDEAD);
      return kPortDefault;
    }
    return kPortAlt;  // drop
  }
  std::string_view type_name() const override { return "match"; }
  int port_count() const override { return 2; }
  Cacheability cacheability() const override { return Cacheability::kPure; }
};

TEST(FlowCacheTest, QuarantineEvictsCachedVerdict) {
  AdaptiveDevice device(0);
  ADTC_ASSERT_OK(device.InstallDeployment(
      {CertFor(1, 6),
       {NodePrefix(6)},
       std::nullopt,
       ModuleGraph::Single(std::make_unique<ConditionallyEvilModule>())}));

  // A well-behaved flow is dropped and the drop is cached.
  Packet warm = PacketBetween(1, 6, /*dst_port=*/80);
  EXPECT_EQ(device.Process(warm, Ctx()), Verdict::kDrop);
  Packet hit = PacketBetween(1, 6, /*dst_port=*/80);
  EXPECT_EQ(device.Process(hit, Ctx()), Verdict::kDrop);
  ASSERT_EQ(device.stats().flow_cache_hits, 1u);

  // A different flow trips the runtime safety guard: quarantine.
  Packet evil = PacketBetween(1, 6, /*dst_port=*/666);
  EXPECT_EQ(device.Process(evil, Ctx()), Verdict::kForward);
  EXPECT_EQ(device.stats().safety_violations, 1u);
  ASSERT_TRUE(device.IsQuarantined(1));

  // The cached drop for the well-behaved flow must be gone: a
  // quarantined deployment no longer processes anything.
  Packet after = PacketBetween(1, 6, /*dst_port=*/80);
  EXPECT_EQ(device.Process(after, Ctx()), Verdict::kForward);
}

TEST(FlowCacheTest, StatefulStagesRerunOnEveryPacket) {
  AdaptiveDevice device(0);
  ADTC_ASSERT_OK(device.InstallDeployment(
      {CertFor(1, 6),
       {NodePrefix(6)},
       std::nullopt,
       ModuleGraph::Single(std::make_unique<CounterModule>())}));
  for (int i = 0; i < 4; ++i) {
    Packet p = PacketBetween(1, 6);
    EXPECT_EQ(device.Process(p, Ctx()), Verdict::kForward);
  }
  // Lookup results are still served from the cache (hits advance), but
  // the stateful stage physically executes each time.
  EXPECT_EQ(device.stats().flow_cache_hits, 3u);
  EXPECT_EQ(device.stats().stage2_runs, 4u);
  const ModuleGraph* graph =
      device.StageGraph(1, ProcessingStage::kDestinationOwner);
  ASSERT_NE(graph, nullptr);
  EXPECT_EQ(graph->packets_processed(), 4u);
  const CounterModule* counter =
      device.StageGraph(1, ProcessingStage::kDestinationOwner)
          ->FindModule<CounterModule>();
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->packets(), 4u);
}

TEST(FlowCacheTest, PayloadTruncationIsReplayedOnHits) {
  AdaptiveDevice device(0);
  ADTC_ASSERT_OK(device.InstallDeployment(
      {CertFor(1, 6),
       {NodePrefix(6)},
       std::nullopt,
       ModuleGraph::Single(std::make_unique<PayloadDeleteModule>(40))}));
  Packet miss = PacketBetween(1, 6, 80, /*size=*/512);
  EXPECT_EQ(device.Process(miss, Ctx()), Verdict::kForward);
  EXPECT_EQ(miss.size_bytes, 40u);

  Packet hit = PacketBetween(1, 6, 80, /*size=*/512);
  EXPECT_EQ(device.Process(hit, Ctx()), Verdict::kForward);
  EXPECT_EQ(device.stats().flow_cache_hits, 1u);
  EXPECT_EQ(hit.size_bytes, 40u);  // transform replayed without the module
}

TEST(FlowCacheTest, Stage1DropShortCircuitIsPreservedOnHits) {
  AdaptiveDevice device(0);
  MatchRule all;
  ADTC_ASSERT_OK(device.InstallDeployment(
      {CertFor(1, 5),
       {NodePrefix(5)},
       ModuleGraph::Single(std::make_unique<MatchModule>(all)),
       std::nullopt}));
  ADTC_ASSERT_OK(device.InstallDeployment(
      {CertFor(2, 6),
       {NodePrefix(6)},
       std::nullopt,
       ModuleGraph::Single(std::make_unique<CounterModule>())}));
  for (int i = 0; i < 3; ++i) {
    Packet p = PacketBetween(5, 6);
    EXPECT_EQ(device.Process(p, Ctx()), Verdict::kDrop);
  }
  // Stage 2 never runs — neither physically nor as replayed counters.
  EXPECT_EQ(device.stats().stage2_runs, 0u);
  EXPECT_EQ(device.StageGraph(2, ProcessingStage::kDestinationOwner)
                ->packets_processed(),
            0u);
}

// --- differential: cache on vs cache off ----------------------------------

/// Two identically configured devices, one with the cache disabled.
/// Every packet is processed by both; verdicts and packet mutations must
/// match exactly, whatever the workload does.
struct DifferentialHarness {
  AdaptiveDevice cached{0};
  AdaptiveDevice uncached{0};

  DifferentialHarness() { uncached.set_flow_cache_enabled(false); }

  /// Installs the same deployment shape on both devices.
  void Install(SubscriberId subscriber, NodeId node,
               const std::function<ModuleGraph()>& source,
               const std::function<ModuleGraph()>& destination) {
    DeploymentSpec a;
    a.cert = CertFor(subscriber, node);
    a.scope = {NodePrefix(node)};
    if (source) a.source_stage = source();
    if (destination) a.destination_stage = destination();
    DeploymentSpec b;
    b.cert = a.cert;
    b.scope = a.scope;
    if (source) b.source_stage = source();
    if (destination) b.destination_stage = destination();
    ADTC_ASSERT_OK(cached.InstallDeployment(std::move(a)));
    ADTC_ASSERT_OK(uncached.InstallDeployment(std::move(b)));
  }

  /// Feeds one packet to both devices; returns the (asserted equal)
  /// verdict.
  Verdict Feed(const Packet& packet) {
    Packet a = packet;
    Packet b = packet;
    const Verdict va = cached.Process(a, Ctx());
    const Verdict vb = uncached.Process(b, Ctx());
    EXPECT_EQ(va, vb) << "verdict diverged";
    EXPECT_EQ(a.size_bytes, b.size_bytes) << "packet mutation diverged";
    EXPECT_EQ(a.src, b.src);
    EXPECT_EQ(a.dst, b.dst);
    EXPECT_EQ(a.ttl, b.ttl);
    return va;
  }
};

ModuleGraph MixedRuleChain() {
  // Rules over several ports; port 80 and 3000 drop, the rest pass.
  std::vector<std::unique_ptr<Module>> modules;
  for (const std::uint16_t port : {80, 3000}) {
    MatchRule rule;
    rule.proto = Protocol::kUdp;
    rule.dst_port_range = {{port, port}};
    modules.push_back(std::make_unique<MatchModule>(rule));
  }
  modules.push_back(std::make_unique<PayloadDeleteModule>(64));
  return ModuleGraph::Chain(std::move(modules));
}

TEST(FlowCacheDifferentialTest, VerdictSequencesIdenticalAcrossWorkloads) {
  DifferentialHarness h;
  auto blacklist_graph = [] {
    auto module = std::make_unique<BlacklistModule>();
    module->Add(HostAddress(7, 1));
    return ModuleGraph::Single(std::move(module));
  };
  h.Install(1, 5, blacklist_graph, nullptr);
  h.Install(2, 6, nullptr, MixedRuleChain);

  std::size_t drops = 0;
  // Three passes over a mixed flow population: fast-path misses,
  // redirect-one-stage, redirect-two-stage, blacklisted sources, rule
  // hits and payload truncation — second and third passes replay from
  // the cache on the cached device.
  for (int pass = 0; pass < 3; ++pass) {
    for (const NodeId src : {NodeId{1}, NodeId{5}, NodeId{7}}) {
      for (const NodeId dst : {NodeId{2}, NodeId{6}}) {
        for (const std::uint16_t port : {80, 443, 3000, 9}) {
          const Verdict v =
              h.Feed(PacketBetween(src, dst, port, /*size=*/400));
          if (v == Verdict::kDrop) drops++;
        }
      }
    }
  }
  EXPECT_GT(drops, 0u);  // the workload actually exercises drops
  EXPECT_GT(h.cached.stats().flow_cache_hits, 0u);  // and the cache
}

TEST(FlowCacheDifferentialTest, MutationsMidStreamStayIdentical) {
  DifferentialHarness h;
  h.Install(2, 6, nullptr, MixedRuleChain);

  auto firewall = [](AdaptiveDevice& device) {
    return device.StageGraph(2, ProcessingStage::kDestinationOwner)
        ->FindModule<MatchModule>();
  };

  EXPECT_EQ(h.Feed(PacketBetween(1, 6, 80)), Verdict::kDrop);
  EXPECT_EQ(h.Feed(PacketBetween(1, 6, 80)), Verdict::kDrop);

  // Disarm the firewall on both devices mid-stream.
  firewall(h.cached)->set_active(false);
  firewall(h.uncached)->set_active(false);
  EXPECT_EQ(h.Feed(PacketBetween(1, 6, 80)), Verdict::kForward);

  // Re-arm: the drop comes back on both.
  firewall(h.cached)->set_active(true);
  firewall(h.uncached)->set_active(true);
  EXPECT_EQ(h.Feed(PacketBetween(1, 6, 80)), Verdict::kDrop);

  // Removal ends processing on both.
  ADTC_ASSERT_OK(h.cached.RemoveDeployment(2));
  ADTC_ASSERT_OK(h.uncached.RemoveDeployment(2));
  EXPECT_EQ(h.Feed(PacketBetween(1, 6, 80)), Verdict::kForward);
}

}  // namespace
}  // namespace adtc
