#include "core/certificate.h"

#include <gtest/gtest.h>

namespace adtc {
namespace {

OwnershipCertificate IssueSample(const CertificateAuthority& ca,
                                 SimTime now = Seconds(100)) {
  return ca.Issue(7, "acme-shop",
                  {*Prefix::Parse("10.5.0.0/16"), *Prefix::Parse("11.0.0.0/8")},
                  now, Seconds(3600));
}

TEST(CertificateTest, IssueAndVerify) {
  CertificateAuthority ca("secret-key");
  const auto cert = IssueSample(ca);
  EXPECT_TRUE(ca.Verify(cert, Seconds(200)).ok());
  EXPECT_EQ(cert.subscriber, 7u);
  EXPECT_EQ(cert.subject, "acme-shop");
}

TEST(CertificateTest, ExpiryWindowEnforced) {
  CertificateAuthority ca("secret-key");
  const auto cert = IssueSample(ca, Seconds(100));
  // Window violations are kExpired: genuine but stale, re-register.
  EXPECT_EQ(ca.Verify(cert, Seconds(99)).code(),
            ErrorCode::kExpired);  // not yet valid
  EXPECT_TRUE(ca.Verify(cert, Seconds(100)).ok());
  EXPECT_TRUE(ca.Verify(cert, Seconds(100) + Seconds(3599)).ok());
  EXPECT_EQ(ca.Verify(cert, Seconds(100) + Seconds(3600)).code(),
            ErrorCode::kExpired);
}

TEST(CertificateTest, TamperedPrefixesRejected) {
  CertificateAuthority ca("secret-key");
  auto cert = IssueSample(ca);
  cert.prefixes.push_back(*Prefix::Parse("12.0.0.0/8"));
  EXPECT_EQ(ca.Verify(cert, Seconds(200)).code(),
            ErrorCode::kPermissionDenied);
}

TEST(CertificateTest, TamperedSubjectRejected) {
  CertificateAuthority ca("secret-key");
  auto cert = IssueSample(ca);
  cert.subject = "evil-corp";
  EXPECT_EQ(ca.Verify(cert, Seconds(200)).code(),
            ErrorCode::kPermissionDenied);
}

TEST(CertificateTest, TamperedSubscriberRejected) {
  CertificateAuthority ca("secret-key");
  auto cert = IssueSample(ca);
  cert.subscriber = 8;
  EXPECT_EQ(ca.Verify(cert, Seconds(200)).code(),
            ErrorCode::kPermissionDenied);
}

TEST(CertificateTest, WrongKeyRejected) {
  CertificateAuthority ca("secret-key");
  CertificateAuthority impostor("other-key");
  const auto cert = IssueSample(ca);
  EXPECT_EQ(impostor.Verify(cert, Seconds(200)).code(),
            ErrorCode::kPermissionDenied);
  // A certificate forged by the impostor fails against the real CA.
  const auto forged = impostor.Issue(7, "acme-shop", cert.prefixes,
                                     Seconds(100), Seconds(3600));
  EXPECT_EQ(ca.Verify(forged, Seconds(200)).code(),
            ErrorCode::kPermissionDenied);
}

TEST(CertificateTest, CoversPrefixAndAddress) {
  CertificateAuthority ca("k");
  const auto cert = IssueSample(ca);
  EXPECT_TRUE(cert.CoversPrefix(*Prefix::Parse("10.5.1.0/24")));
  EXPECT_TRUE(cert.CoversPrefix(*Prefix::Parse("11.200.0.0/16")));
  EXPECT_FALSE(cert.CoversPrefix(*Prefix::Parse("10.0.0.0/8")));  // wider
  EXPECT_TRUE(cert.CoversAddress(*Ipv4Address::Parse("10.5.0.1")));
  EXPECT_FALSE(cert.CoversAddress(*Ipv4Address::Parse("10.6.0.1")));
}

TEST(CertificateTest, CanonicalBodyIndependentOfPrefixOrder) {
  CertificateAuthority ca("k");
  const auto a = ca.Issue(1, "s", {*Prefix::Parse("10.0.0.0/8"),
                                   *Prefix::Parse("11.0.0.0/8")},
                          0, Seconds(10));
  const auto b = ca.Issue(1, "s", {*Prefix::Parse("11.0.0.0/8"),
                                   *Prefix::Parse("10.0.0.0/8")},
                          0, Seconds(10));
  EXPECT_EQ(a.CanonicalBody(), b.CanonicalBody());
  EXPECT_EQ(a.signature, b.signature);
}

}  // namespace
}  // namespace adtc
