// Exhaustiveness guard for the enum-name tables the telemetry layer
// relies on: adding an enumerator without a name would silently emit "?"
// into JSONL timelines and event logs.
#include <gtest/gtest.h>

#include <set>
#include <string_view>

#include "analysis/effects.h"
#include "attack/adversary.h"
#include "common/drop_reason.h"
#include "core/events.h"
#include "core/safety.h"
#include "detect/controller.h"
#include "detect/detector.h"
#include "net/metrics.h"
#include "sim/faults.h"

namespace adtc {
namespace {

/// Shared distinct-and-named check over [0, count).
template <typename E, typename NameFn>
void CheckNames(std::size_t count, NameFn name_of, const char* enum_name) {
  std::set<std::string_view> seen;
  for (std::size_t i = 0; i < count; ++i) {
    const std::string_view name = name_of(static_cast<E>(i));
    EXPECT_FALSE(name.empty()) << enum_name << " enumerator " << i;
    EXPECT_NE(name, "?") << enum_name << " enumerator " << i << " is unnamed";
    EXPECT_TRUE(seen.insert(name).second)
        << "duplicate " << enum_name << " name: " << name;
  }
  EXPECT_EQ(seen.size(), count);
}

TEST(EnumNamesTest, DropReasonNamesDistinctAndNonEmpty) {
  std::set<std::string_view> seen;
  for (std::size_t i = 0; i < kDropReasonCount; ++i) {
    const std::string_view name = DropReasonName(static_cast<DropReason>(i));
    EXPECT_FALSE(name.empty()) << "DropReason enumerator " << i;
    EXPECT_NE(name, "?") << "DropReason enumerator " << i << " is unnamed";
    EXPECT_TRUE(seen.insert(name).second)
        << "duplicate DropReason name: " << name;
  }
  EXPECT_EQ(seen.size(), kDropReasonCount);
}

TEST(EnumNamesTest, EventKindNamesDistinctAndNonEmpty) {
  std::set<std::string_view> seen;
  for (std::size_t i = 0; i < kEventKindCount; ++i) {
    const std::string_view name = EventKindName(static_cast<EventKind>(i));
    EXPECT_FALSE(name.empty()) << "EventKind enumerator " << i;
    EXPECT_NE(name, "?") << "EventKind enumerator " << i << " is unnamed";
    EXPECT_TRUE(seen.insert(name).second)
        << "duplicate EventKind name: " << name;
  }
  EXPECT_EQ(seen.size(), kEventKindCount);
}

TEST(EnumNamesTest, InvariantViolationNamesDistinctAndNonEmpty) {
  CheckNames<InvariantViolation>(
      static_cast<std::size_t>(InvariantViolation::kCount_),
      InvariantViolationName, "InvariantViolation");
}

TEST(EnumNamesTest, InvariantKindNamesDistinctAndNonEmpty) {
  CheckNames<analysis::InvariantKind>(
      static_cast<std::size_t>(analysis::InvariantKind::kCount_),
      analysis::InvariantKindName, "InvariantKind");
}

TEST(EnumNamesTest, AnalysisStatusNamesDistinctAndNonEmpty) {
  CheckNames<analysis::AnalysisStatus>(
      static_cast<std::size_t>(analysis::AnalysisStatus::kCount_),
      analysis::AnalysisStatusName, "AnalysisStatus");
}

TEST(EnumNamesTest, DatapathDropReasonNamesDistinctAndNonEmpty) {
  CheckNames<DatapathDropReason>(kDatapathDropReasonCount,
                                 DatapathDropReasonName,
                                 "DatapathDropReason");
  // Out-of-range values degrade to the sentinel, never to garbage.
  EXPECT_STREQ(DatapathDropReasonName(DatapathDropReason::kCount_),
               "unknown");
}

TEST(EnumNamesTest, ContextRequirementNamesDistinctAndNonEmpty) {
  CheckNames<analysis::ContextRequirement>(
      static_cast<std::size_t>(analysis::ContextRequirement::kCount_),
      analysis::ContextRequirementName, "ContextRequirement");
}

TEST(EnumNamesTest, PlanInvariantKindNamesDistinctAndNonEmpty) {
  CheckNames<analysis::PlanInvariantKind>(
      static_cast<std::size_t>(analysis::PlanInvariantKind::kCount_),
      analysis::PlanInvariantKindName, "PlanInvariantKind");
}

TEST(EnumNamesTest, PlanStatusNamesDistinctAndNonEmpty) {
  CheckNames<analysis::PlanStatus>(
      static_cast<std::size_t>(analysis::PlanStatus::kCount_),
      analysis::PlanStatusName, "PlanStatus");
}

TEST(EnumNamesTest, PacketFateNamesDistinctAndNonEmpty) {
  CheckNames<PacketFate>(static_cast<std::size_t>(PacketFate::kCount_),
                         PacketFateName, "PacketFate");
  EXPECT_EQ(PacketFateName(PacketFate::kCount_), "unknown");
}

TEST(EnumNamesTest, AdversaryScenarioNamesDistinctAndNonEmpty) {
  CheckNames<AdversaryScenario>(
      static_cast<std::size_t>(AdversaryScenario::kCount_),
      AdversaryScenarioName, "AdversaryScenario");
  EXPECT_EQ(AdversaryScenarioName(AdversaryScenario::kCount_), "unknown");
}

TEST(EnumNamesTest, DetectVerdictNamesDistinctAndNonEmpty) {
  CheckNames<detect::Verdict>(
      static_cast<std::size_t>(detect::Verdict::kCount_),
      detect::VerdictName, "detect::Verdict");
  EXPECT_EQ(detect::VerdictName(detect::Verdict::kCount_), "unknown");
}

TEST(EnumNamesTest, DetectorKindNamesDistinctAndNonEmpty) {
  CheckNames<detect::DetectorKind>(
      static_cast<std::size_t>(detect::DetectorKind::kCount_),
      detect::DetectorKindName, "detect::DetectorKind");
  EXPECT_EQ(detect::DetectorKindName(detect::DetectorKind::kCount_),
            "unknown");
}

TEST(EnumNamesTest, DetectActionNamesDistinctAndNonEmpty) {
  CheckNames<detect::Action>(
      static_cast<std::size_t>(detect::Action::kCount_), detect::ActionName,
      "detect::Action");
  EXPECT_EQ(detect::ActionName(detect::Action::kCount_), "unknown");
}

TEST(EnumNamesTest, DetectPhaseNamesDistinctAndNonEmpty) {
  CheckNames<detect::Phase>(
      static_cast<std::size_t>(detect::Phase::kCount_), detect::PhaseName,
      "detect::Phase");
  EXPECT_EQ(detect::PhaseName(detect::Phase::kCount_), "unknown");
}

}  // namespace
}  // namespace adtc
