// Exhaustiveness guard for the enum-name tables the telemetry layer
// relies on: adding an enumerator without a name would silently emit "?"
// into JSONL timelines and event logs.
#include <gtest/gtest.h>

#include <set>
#include <string_view>

#include "core/events.h"
#include "net/metrics.h"

namespace adtc {
namespace {

TEST(EnumNamesTest, DropReasonNamesDistinctAndNonEmpty) {
  std::set<std::string_view> seen;
  for (std::size_t i = 0; i < kDropReasonCount; ++i) {
    const std::string_view name = DropReasonName(static_cast<DropReason>(i));
    EXPECT_FALSE(name.empty()) << "DropReason enumerator " << i;
    EXPECT_NE(name, "?") << "DropReason enumerator " << i << " is unnamed";
    EXPECT_TRUE(seen.insert(name).second)
        << "duplicate DropReason name: " << name;
  }
  EXPECT_EQ(seen.size(), kDropReasonCount);
}

TEST(EnumNamesTest, EventKindNamesDistinctAndNonEmpty) {
  std::set<std::string_view> seen;
  for (std::size_t i = 0; i < kEventKindCount; ++i) {
    const std::string_view name = EventKindName(static_cast<EventKind>(i));
    EXPECT_FALSE(name.empty()) << "EventKind enumerator " << i;
    EXPECT_NE(name, "?") << "EventKind enumerator " << i << " is unnamed";
    EXPECT_TRUE(seen.insert(name).second)
        << "duplicate EventKind name: " << name;
  }
  EXPECT_EQ(seen.size(), kEventKindCount);
}

}  // namespace
}  // namespace adtc
