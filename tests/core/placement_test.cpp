// Deployment-scoping criteria (Sec. 5.1): "The network user may scope the
// deployment according to different criteria."
#include <gtest/gtest.h>

#include "core/tcsp.h"
#include "testutil.h"

namespace adtc {
namespace {

using testing::SmallWorld;

struct PlacementWorld : SmallWorld {
  NumberAuthority authority;
  Tcsp tcsp;
  std::vector<std::unique_ptr<IspNms>> nmses;
  OwnershipCertificate cert;
  NodeId home;

  PlacementWorld() : SmallWorld(81), tcsp(net, authority, "pl-key") {
    AllocateTopologyPrefixes(authority, net.node_count());
    for (NodeId node = 0; node < net.node_count(); ++node) {
      auto nms = std::make_unique<IspNms>("isp", net, &tcsp.validator());
      nms->ManageNode(node);
      tcsp.EnrollIsp(nms.get());
      nmses.push_back(std::move(nms));
    }
    home = topo.stub_nodes[0];
    auto result = tcsp.Register(AsOrgName(home), {NodePrefix(home)});
    EXPECT_TRUE(result.ok());
    cert = result.value();
  }

  std::size_t DeployedDeviceCount() {
    std::size_t count = 0;
    for (auto& nms : nmses) count += nms->CountDeployments(cert.subscriber);
    return count;
  }

  ServiceRequest BaseRequest() {
    ServiceRequest request;
    request.kind = ServiceKind::kStatistics;
    request.control_scope = {NodePrefix(home)};
    return request;
  }
};

TEST(PlacementTest, WithinRadiusLimitsToNeighbourhood) {
  PlacementWorld world;
  ServiceRequest request = world.BaseRequest();
  request.placement = PlacementPolicy::kWithinRadius;
  request.placement_radius = 1;
  ASSERT_TRUE(world.tcsp.DeployService(world.cert, request).status.ok());

  // Exactly: home + its direct neighbours.
  const std::size_t expected =
      1 + world.net.node(world.home).neighbours.size() -
      0;  // hosts are not neighbours (separate links)
  // Count neighbours that are router nodes:
  std::size_t router_neighbours = 0;
  for (const auto& [n, l] : world.net.node(world.home).neighbours) {
    (void)l;
    router_neighbours += n < world.net.node_count() ? 1 : 0;
  }
  EXPECT_EQ(world.DeployedDeviceCount(), 1 + router_neighbours);
  (void)expected;

  // Every deployed node is within the radius.
  for (auto& nms : world.nmses) {
    for (NodeId node : nms->managed_nodes()) {
      if (nms->device(node)->HasDeployment(world.cert.subscriber)) {
        EXPECT_LE(world.net.HopDistance(world.home, node), 1u);
      }
    }
  }
}

TEST(PlacementTest, RadiusZeroIsHomeOnly) {
  PlacementWorld world;
  ServiceRequest request = world.BaseRequest();
  request.placement = PlacementPolicy::kWithinRadius;
  request.placement_radius = 0;
  ASSERT_TRUE(world.tcsp.DeployService(world.cert, request).status.ok());
  EXPECT_EQ(world.DeployedDeviceCount(), 1u);
}

TEST(PlacementTest, ExplicitNodesHonoured) {
  PlacementWorld world;
  ServiceRequest request = world.BaseRequest();
  request.placement = PlacementPolicy::kExplicitNodes;
  request.placement_nodes = {world.topo.stub_nodes[3],
                             world.topo.transit_nodes[0], world.home};
  ASSERT_TRUE(world.tcsp.DeployService(world.cert, request).status.ok());
  EXPECT_EQ(world.DeployedDeviceCount(), 3u);
  EXPECT_TRUE(world.nmses[world.topo.stub_nodes[3]]
                  ->device(world.topo.stub_nodes[3])
                  ->HasDeployment(world.cert.subscriber));
}

TEST(PlacementTest, RolePoliciesStillWork) {
  PlacementWorld world;
  ServiceRequest request = world.BaseRequest();
  request.placement = PlacementPolicy::kTransitNodesOnly;
  ASSERT_TRUE(world.tcsp.DeployService(world.cert, request).status.ok());
  EXPECT_EQ(world.DeployedDeviceCount(), world.topo.transit_nodes.size());
}

}  // namespace
}  // namespace adtc
