#include "core/safety.h"

#include <gtest/gtest.h>

#include "core/modules/antispoof.h"
#include "core/modules/basic.h"
#include "core/modules/match.h"
#include "testutil.h"

namespace adtc {
namespace {

OwnershipCertificate SampleCert() {
  CertificateAuthority ca("k");
  return ca.Issue(1, "acme", {NodePrefix(5)}, 0, Seconds(3600));
}

/// A module type that is not on the vetted catalog.
class RogueModule : public Module {
 public:
  int OnPacket(Packet&, const DeviceContext&) override { return 0; }
  std::string_view type_name() const override { return "rogue"; }
};

/// A "logging" module declaring outrageous per-packet overhead.
class ChattyModule : public Module {
 public:
  int OnPacket(Packet&, const DeviceContext&) override { return 0; }
  std::string_view type_name() const override { return "logger"; }
  std::uint32_t declared_overhead_bytes() const override { return 10000; }
};

TEST(SafetyValidatorTest, AcceptsWellFormedDeployment) {
  const SafetyValidator validator = MakeStandardValidator();
  ModuleGraph graph = ModuleGraph::Single(std::make_unique<CounterModule>());
  ADTC_EXPECT_OK(validator.ValidateDeployment(SampleCert(), {NodePrefix(5)},
                                              graph));
}

TEST(SafetyValidatorTest, RejectsForeignScope) {
  // The fundamental rule: no control over traffic you do not own.
  const SafetyValidator validator = MakeStandardValidator();
  ModuleGraph graph = ModuleGraph::Single(std::make_unique<CounterModule>());
  const Status status = validator.ValidateDeployment(
      SampleCert(), {NodePrefix(6)}, graph);
  EXPECT_EQ(status.code(), ErrorCode::kPermissionDenied);
}

TEST(SafetyValidatorTest, RejectsScopeWiderThanCertificate) {
  const SafetyValidator validator = MakeStandardValidator();
  ModuleGraph graph = ModuleGraph::Single(std::make_unique<CounterModule>());
  // /8 strictly contains the certified /20 — still foreign territory.
  const Status status = validator.ValidateDeployment(
      SampleCert(), {Prefix(Ipv4Address(NodePrefix(5).address().bits()), 8)},
      graph);
  EXPECT_EQ(status.code(), ErrorCode::kPermissionDenied);
}

TEST(SafetyValidatorTest, RejectsEmptyScope) {
  const SafetyValidator validator = MakeStandardValidator();
  ModuleGraph graph = ModuleGraph::Single(std::make_unique<CounterModule>());
  EXPECT_EQ(validator.ValidateDeployment(SampleCert(), {}, graph).code(),
            ErrorCode::kInvalidArgument);
}

TEST(SafetyValidatorTest, RejectsUnvettedModule) {
  const SafetyValidator validator = MakeStandardValidator();
  ModuleGraph graph = ModuleGraph::Single(std::make_unique<RogueModule>());
  const Status status = validator.ValidateDeployment(
      SampleCert(), {NodePrefix(5)}, graph);
  EXPECT_EQ(status.code(), ErrorCode::kSafetyViolation);
  EXPECT_NE(status.message().find("rogue"), std::string::npos);
}

TEST(SafetyValidatorTest, RejectsUnvalidatedGraph) {
  const SafetyValidator validator = MakeStandardValidator();
  ModuleGraph graph;  // empty, not validated
  EXPECT_FALSE(
      validator.ValidateDeployment(SampleCert(), {NodePrefix(5)}, graph)
          .ok());
}

TEST(SafetyValidatorTest, RejectsExcessiveOverhead) {
  const SafetyValidator validator = MakeStandardValidator();
  ModuleGraph graph = ModuleGraph::Single(std::make_unique<ChattyModule>());
  const Status status = validator.ValidateDeployment(
      SampleCert(), {NodePrefix(5)}, graph);
  EXPECT_EQ(status.code(), ErrorCode::kSafetyViolation);
  EXPECT_NE(status.message().find("overhead"), std::string::npos);
}

TEST(SafetyValidatorTest, RejectsModuleCountAboveCap) {
  SafetyLimits limits;
  limits.max_modules_per_graph = 3;
  SafetyValidator validator = MakeStandardValidator(limits);
  std::vector<std::unique_ptr<Module>> modules;
  for (int i = 0; i < 5; ++i) {
    modules.push_back(std::make_unique<CounterModule>());
  }
  ModuleGraph graph = ModuleGraph::Chain(std::move(modules));
  EXPECT_EQ(validator.ValidateDeployment(SampleCert(), {NodePrefix(5)}, graph)
                .code(),
            ErrorCode::kResourceExhausted);
}

TEST(SafetyValidatorTest, RejectsScopePrefixCountAboveCap) {
  SafetyLimits limits;
  limits.max_scope_prefixes = 2;
  SafetyValidator validator = MakeStandardValidator(limits);
  CertificateAuthority ca("k");
  const auto cert = ca.Issue(
      1, "acme", {NodePrefix(1), NodePrefix(2), NodePrefix(3)}, 0,
      Seconds(10));
  ModuleGraph graph = ModuleGraph::Single(std::make_unique<CounterModule>());
  EXPECT_EQ(validator
                .ValidateDeployment(
                    cert, {NodePrefix(1), NodePrefix(2), NodePrefix(3)},
                    graph)
                .code(),
            ErrorCode::kResourceExhausted);
}

TEST(SafetyValidatorTest, VettingIsExplicit) {
  SafetyValidator validator;
  EXPECT_FALSE(validator.IsVetted("match"));
  validator.VetModuleType("match");
  EXPECT_TRUE(validator.IsVetted("match"));
}

// --- static admission analysis -------------------------------------------------
//
// These modules *declare their misbehaviour truthfully* in their effect
// signatures. Before the static verifier existed, each of them passed
// admission (vetted type name, modest declared overhead) and was only
// stopped at runtime by SafetyGuard quarantine — after the first packet
// had already been processed. Now admission rejects them with a witness.

/// Declares it may emit two packets per input packet.
class DeclaredAmplifier : public Module {
 public:
  int OnPacket(Packet&, const DeviceContext&) override { return 0; }
  std::string_view type_name() const override { return "sampler"; }
  analysis::EffectSignature effect_signature() const override {
    analysis::EffectSignature sig;
    sig.rate_factor_max = 2.0;
    return sig;
  }
};

/// Declares it writes the source address.
class DeclaredSrcWriter : public Module {
 public:
  int OnPacket(Packet&, const DeviceContext&) override { return 0; }
  std::string_view type_name() const override { return "match"; }
  analysis::EffectSignature effect_signature() const override {
    analysis::EffectSignature sig;
    sig.header_writes = analysis::kNoHeaderWrites |
                        analysis::HeaderField::kSrc;
    return sig;
  }
};

/// Declares it may grow the packet by 8 wire bytes.
class DeclaredGrower : public Module {
 public:
  int OnPacket(Packet&, const DeviceContext&) override { return 0; }
  std::string_view type_name() const override { return "match"; }
  analysis::EffectSignature effect_signature() const override {
    analysis::EffectSignature sig;
    sig.wire_bytes_delta_max = 8;
    return sig;
  }
};

/// Requires a customer-edge guarantee but does NOT gate transit itself
/// (unlike the standard AntiSpoofModule, which passes transit internally).
class NonGatingEdgeChecker : public Module {
 public:
  int OnPacket(Packet&, const DeviceContext&) override { return 0; }
  std::string_view type_name() const override { return "anti-spoof"; }
  analysis::EffectSignature effect_signature() const override {
    analysis::EffectSignature sig;
    sig.context = analysis::ContextRequirement::kCustomerEdgeOnly;
    sig.self_gates_transit = false;
    return sig;
  }
};

/// A "logger" variant with a configurable overhead declaration.
class OverheadModule : public Module {
 public:
  explicit OverheadModule(std::uint32_t bytes) : bytes_(bytes) {}
  int OnPacket(Packet&, const DeviceContext&) override { return 0; }
  std::string_view type_name() const override { return "logger"; }
  std::uint32_t declared_overhead_bytes() const override { return bytes_; }

 private:
  std::uint32_t bytes_;
};

TEST(StaticAnalysisTest, RejectsDeclaredRateAmplificationAtAdmission) {
  const SafetyValidator validator = MakeStandardValidator();
  ModuleGraph graph =
      ModuleGraph::Single(std::make_unique<DeclaredAmplifier>());
  const DeploymentAnalysis result = validator.AnalyzeDeployment(
      SampleCert(), {NodePrefix(5)}, graph);
  EXPECT_EQ(result.status.code(), ErrorCode::kSafetyViolation);
  ASSERT_EQ(result.report.status, analysis::AnalysisStatus::kRejected);
  ASSERT_FALSE(result.report.violations.empty());
  EXPECT_EQ(result.report.violations.front().kind,
            analysis::InvariantKind::kRateAmplification);
  // The witness names the path to the offending module.
  EXPECT_FALSE(result.report.violations.front().witness_path.empty());
  EXPECT_NE(result.status.message().find("rate-amplification"),
            std::string::npos);
  EXPECT_DOUBLE_EQ(result.report.bounds.rate_factor, 2.0);
}

TEST(StaticAnalysisTest, RejectsDeclaredHeaderWriteAtAdmission) {
  const SafetyValidator validator = MakeStandardValidator();
  ModuleGraph graph =
      ModuleGraph::Single(std::make_unique<DeclaredSrcWriter>());
  const DeploymentAnalysis result = validator.AnalyzeDeployment(
      SampleCert(), {NodePrefix(5)}, graph);
  EXPECT_EQ(result.status.code(), ErrorCode::kSafetyViolation);
  ASSERT_FALSE(result.report.violations.empty());
  EXPECT_EQ(result.report.violations.front().kind,
            analysis::InvariantKind::kHeaderMutation);
}

TEST(StaticAnalysisTest, DeclaredWireGrowthIsHeaderMutation) {
  // The runtime guard forbids ANY size increase, so a declared positive
  // wire delta must reject for the same invariant — never be traded off
  // against the overhead allowance.
  const SafetyValidator validator = MakeStandardValidator();
  ModuleGraph graph = ModuleGraph::Single(std::make_unique<DeclaredGrower>());
  const DeploymentAnalysis result = validator.AnalyzeDeployment(
      SampleCert(), {NodePrefix(5)}, graph);
  EXPECT_EQ(result.status.code(), ErrorCode::kSafetyViolation);
  ASSERT_FALSE(result.report.violations.empty());
  EXPECT_EQ(result.report.violations.front().kind,
            analysis::InvariantKind::kHeaderMutation);
}

TEST(StaticAnalysisTest, RejectsPerPathOverheadAboveAllowance) {
  const SafetyValidator validator = MakeStandardValidator();
  std::vector<std::unique_ptr<Module>> chain;
  for (int i = 0; i < 3; ++i) {
    chain.push_back(std::make_unique<OverheadModule>(30));  // 90 > 64
  }
  ModuleGraph graph = ModuleGraph::Chain(std::move(chain));
  const DeploymentAnalysis result = validator.AnalyzeDeployment(
      SampleCert(), {NodePrefix(5)}, graph);
  EXPECT_EQ(result.status.code(), ErrorCode::kSafetyViolation);
  ASSERT_FALSE(result.report.violations.empty());
  EXPECT_EQ(result.report.violations.front().kind,
            analysis::InvariantKind::kByteAmplification);
  // The witness is the concrete module path whose sum breaks the cap.
  EXPECT_EQ(result.report.violations.front().witness_path.size(), 3u);
  EXPECT_EQ(result.report.bounds.bytes_out_delta, 90u);
}

TEST(StaticAnalysisTest, BranchedOverheadIsCountedPerPath) {
  // Two exclusive branches of 40 bytes each: the old whole-graph total
  // (80) would have rejected this, but no single packet can cross both
  // branches — the per-path analysis correctly admits it.
  const SafetyValidator validator = MakeStandardValidator();
  ModuleGraph graph;
  MatchRule udp;
  udp.proto = Protocol::kUdp;
  const int branch = graph.AddModule(std::make_unique<MatchModule>(udp));
  const int left = graph.AddModule(std::make_unique<OverheadModule>(40));
  const int right = graph.AddModule(std::make_unique<OverheadModule>(40));
  ADTC_ASSERT_OK(graph.SetEntry(branch));
  ADTC_ASSERT_OK(graph.Wire(branch, kPortDefault, left));
  ADTC_ASSERT_OK(graph.Wire(branch, kPortAlt, right));
  ADTC_ASSERT_OK(
      graph.WireTerminal(left, kPortDefault, ModuleGraph::Terminal::kAccept));
  ADTC_ASSERT_OK(graph.WireTerminal(right, kPortDefault,
                                    ModuleGraph::Terminal::kAccept));
  ADTC_ASSERT_OK(graph.Validate());
  const DeploymentAnalysis result = validator.AnalyzeDeployment(
      SampleCert(), {NodePrefix(5)}, graph);
  ADTC_EXPECT_OK(result.status);
  EXPECT_EQ(result.report.status, analysis::AnalysisStatus::kProven);
  EXPECT_EQ(result.report.bounds.bytes_out_delta, 40u);
  EXPECT_EQ(result.report.paths_covered, 2u);
}

TEST(StaticAnalysisTest, NonGatingEdgeModuleRejectedFromTransitContext) {
  const SafetyValidator validator = MakeStandardValidator();
  ModuleGraph graph =
      ModuleGraph::Single(std::make_unique<NonGatingEdgeChecker>());
  // Default context: transit packets can reach the deployment.
  const DeploymentAnalysis transit = validator.AnalyzeDeployment(
      SampleCert(), {NodePrefix(5)}, graph);
  EXPECT_EQ(transit.status.code(), ErrorCode::kSafetyViolation);
  ASSERT_FALSE(transit.report.violations.empty());
  EXPECT_EQ(transit.report.violations.front().kind,
            analysis::InvariantKind::kContextViolation);

  // The same graph is provable where the site guarantees customer-edge
  // arrivals only.
  analysis::AnalysisContext edge;
  edge.customer_edge_guaranteed = true;
  const DeploymentAnalysis guarded = validator.AnalyzeDeployment(
      SampleCert(), {NodePrefix(5)}, graph, edge);
  ADTC_EXPECT_OK(guarded.status);
}

TEST(StaticAnalysisTest, SelfGatingAntiSpoofProvableAnywhere) {
  // The standard module passes transit traffic internally, so its
  // customer-edge requirement is discharged at any vantage point.
  const SafetyValidator validator = MakeStandardValidator();
  ModuleGraph graph = ModuleGraph::Single(std::make_unique<AntiSpoofModule>(
      AntiSpoofModule::Mode::kProtectOwnerPrefixes));
  const DeploymentAnalysis result = validator.AnalyzeDeployment(
      SampleCert(), {NodePrefix(5)}, graph);
  ADTC_EXPECT_OK(result.status);
  EXPECT_EQ(result.report.status, analysis::AnalysisStatus::kProven);
}

TEST(StaticAnalysisTest, LyingModuleStillPassesAdmission) {
  // Signatures are claims: a module whose OnPacket misbehaves but whose
  // signature is benign is admitted — that is exactly why the runtime
  // guard stays as defence-in-depth and doubles as the soundness oracle.
  class LyingSrcRewriter : public Module {
   public:
    int OnPacket(Packet& p, const DeviceContext&) override {
      p.src = Ipv4Address(0xBAD);
      return 0;
    }
    std::string_view type_name() const override { return "match"; }
  };
  const SafetyValidator validator = MakeStandardValidator();
  ModuleGraph graph = ModuleGraph::Single(std::make_unique<LyingSrcRewriter>());
  const DeploymentAnalysis result = validator.AnalyzeDeployment(
      SampleCert(), {NodePrefix(5)}, graph);
  ADTC_EXPECT_OK(result.status);
  EXPECT_EQ(result.report.status, analysis::AnalysisStatus::kProven);
}

TEST(StaticAnalysisTest, StatsCountProofsAndRejections) {
  const SafetyValidator validator = MakeStandardValidator();
  ModuleGraph good = ModuleGraph::Single(std::make_unique<CounterModule>());
  ModuleGraph bad =
      ModuleGraph::Single(std::make_unique<DeclaredAmplifier>());
  (void)validator.AnalyzeDeployment(SampleCert(), {NodePrefix(5)}, good);
  (void)validator.AnalyzeDeployment(SampleCert(), {NodePrefix(5)}, bad);
  EXPECT_EQ(validator.analysis_stats().graphs_verified, 1u);
  EXPECT_EQ(validator.analysis_stats().graphs_rejected, 1u);
  EXPECT_GE(validator.analysis_stats().violations_found, 1u);
  validator.CountSoundnessViolation();
  EXPECT_EQ(validator.analysis_stats().soundness_violations, 1u);
}

TEST(StaticAnalysisTest, ReportSerialisesToJson) {
  const SafetyValidator validator = MakeStandardValidator();
  ModuleGraph graph =
      ModuleGraph::Single(std::make_unique<DeclaredAmplifier>());
  const DeploymentAnalysis result = validator.AnalyzeDeployment(
      SampleCert(), {NodePrefix(5)}, graph);
  const std::string json = result.report.ToJson();
  EXPECT_NE(json.find("\"status\":\"rejected\""), std::string::npos);
  EXPECT_NE(json.find("rate-amplification"), std::string::npos);
  EXPECT_NE(json.find("\"witness\":[0]"), std::string::npos);
  EXPECT_FALSE(result.report.ToString().empty());
}

// --- runtime invariants --------------------------------------------------------

TEST(EnforceInvariantsTest, NoChangeNoViolation) {
  Packet p;
  p.src = Ipv4Address(1);
  p.dst = Ipv4Address(2);
  p.ttl = 10;
  p.size_bytes = 100;
  const PacketInvariants before = PacketInvariants::Capture(p);
  EXPECT_EQ(EnforceInvariants(before, p), InvariantViolation::kNone);
}

TEST(EnforceInvariantsTest, SourceRewriteDetectedAndRestored) {
  Packet p;
  p.src = Ipv4Address(1);
  const PacketInvariants before = PacketInvariants::Capture(p);
  p.src = Ipv4Address(99);
  EXPECT_EQ(EnforceInvariants(before, p),
            InvariantViolation::kSourceModified);
  EXPECT_EQ(p.src, Ipv4Address(1));
}

TEST(EnforceInvariantsTest, DestinationRewriteDetectedAndRestored) {
  Packet p;
  p.dst = Ipv4Address(2);
  const PacketInvariants before = PacketInvariants::Capture(p);
  p.dst = Ipv4Address(77);
  EXPECT_EQ(EnforceInvariants(before, p),
            InvariantViolation::kDestinationModified);
  EXPECT_EQ(p.dst, Ipv4Address(2));
}

TEST(EnforceInvariantsTest, TtlChangeDetectedAndRestored) {
  Packet p;
  p.ttl = 64;
  const PacketInvariants before = PacketInvariants::Capture(p);
  p.ttl = 255;  // an attempt to extend packet lifetime
  EXPECT_EQ(EnforceInvariants(before, p), InvariantViolation::kTtlModified);
  EXPECT_EQ(p.ttl, 64);
}

TEST(EnforceInvariantsTest, SizeGrowthDetectedAndRestored) {
  Packet p;
  p.size_bytes = 100;
  const PacketInvariants before = PacketInvariants::Capture(p);
  p.size_bytes = 200;  // amplification attempt
  EXPECT_EQ(EnforceInvariants(before, p),
            InvariantViolation::kSizeIncreased);
  EXPECT_EQ(p.size_bytes, 100u);
}

TEST(EnforceInvariantsTest, SizeShrinkIsAllowed) {
  Packet p;
  p.size_bytes = 100;
  const PacketInvariants before = PacketInvariants::Capture(p);
  p.size_bytes = 40;  // payload deletion is fine
  EXPECT_EQ(EnforceInvariants(before, p), InvariantViolation::kNone);
  EXPECT_EQ(p.size_bytes, 40u);
}

TEST(EnforceInvariantsTest, FirstViolationReported) {
  Packet p;
  p.src = Ipv4Address(1);
  p.ttl = 64;
  const PacketInvariants before = PacketInvariants::Capture(p);
  p.src = Ipv4Address(9);
  p.ttl = 255;
  EXPECT_EQ(EnforceInvariants(before, p),
            InvariantViolation::kSourceModified);
  // Both restored regardless.
  EXPECT_EQ(p.src, Ipv4Address(1));
  EXPECT_EQ(p.ttl, 64);
}

}  // namespace
}  // namespace adtc
