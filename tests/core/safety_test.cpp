#include "core/safety.h"

#include <gtest/gtest.h>

#include "core/modules/basic.h"
#include "core/modules/match.h"
#include "testutil.h"

namespace adtc {
namespace {

OwnershipCertificate SampleCert() {
  CertificateAuthority ca("k");
  return ca.Issue(1, "acme", {NodePrefix(5)}, 0, Seconds(3600));
}

/// A module type that is not on the vetted catalog.
class RogueModule : public Module {
 public:
  int OnPacket(Packet&, const DeviceContext&) override { return 0; }
  std::string_view type_name() const override { return "rogue"; }
};

/// A "logging" module declaring outrageous per-packet overhead.
class ChattyModule : public Module {
 public:
  int OnPacket(Packet&, const DeviceContext&) override { return 0; }
  std::string_view type_name() const override { return "logger"; }
  std::uint32_t declared_overhead_bytes() const override { return 10000; }
};

TEST(SafetyValidatorTest, AcceptsWellFormedDeployment) {
  const SafetyValidator validator = MakeStandardValidator();
  ModuleGraph graph = ModuleGraph::Single(std::make_unique<CounterModule>());
  ADTC_EXPECT_OK(validator.ValidateDeployment(SampleCert(), {NodePrefix(5)},
                                              graph));
}

TEST(SafetyValidatorTest, RejectsForeignScope) {
  // The fundamental rule: no control over traffic you do not own.
  const SafetyValidator validator = MakeStandardValidator();
  ModuleGraph graph = ModuleGraph::Single(std::make_unique<CounterModule>());
  const Status status = validator.ValidateDeployment(
      SampleCert(), {NodePrefix(6)}, graph);
  EXPECT_EQ(status.code(), ErrorCode::kPermissionDenied);
}

TEST(SafetyValidatorTest, RejectsScopeWiderThanCertificate) {
  const SafetyValidator validator = MakeStandardValidator();
  ModuleGraph graph = ModuleGraph::Single(std::make_unique<CounterModule>());
  // /8 strictly contains the certified /20 — still foreign territory.
  const Status status = validator.ValidateDeployment(
      SampleCert(), {Prefix(Ipv4Address(NodePrefix(5).address().bits()), 8)},
      graph);
  EXPECT_EQ(status.code(), ErrorCode::kPermissionDenied);
}

TEST(SafetyValidatorTest, RejectsEmptyScope) {
  const SafetyValidator validator = MakeStandardValidator();
  ModuleGraph graph = ModuleGraph::Single(std::make_unique<CounterModule>());
  EXPECT_EQ(validator.ValidateDeployment(SampleCert(), {}, graph).code(),
            ErrorCode::kInvalidArgument);
}

TEST(SafetyValidatorTest, RejectsUnvettedModule) {
  const SafetyValidator validator = MakeStandardValidator();
  ModuleGraph graph = ModuleGraph::Single(std::make_unique<RogueModule>());
  const Status status = validator.ValidateDeployment(
      SampleCert(), {NodePrefix(5)}, graph);
  EXPECT_EQ(status.code(), ErrorCode::kSafetyViolation);
  EXPECT_NE(status.message().find("rogue"), std::string::npos);
}

TEST(SafetyValidatorTest, RejectsUnvalidatedGraph) {
  const SafetyValidator validator = MakeStandardValidator();
  ModuleGraph graph;  // empty, not validated
  EXPECT_FALSE(
      validator.ValidateDeployment(SampleCert(), {NodePrefix(5)}, graph)
          .ok());
}

TEST(SafetyValidatorTest, RejectsExcessiveOverhead) {
  const SafetyValidator validator = MakeStandardValidator();
  ModuleGraph graph = ModuleGraph::Single(std::make_unique<ChattyModule>());
  const Status status = validator.ValidateDeployment(
      SampleCert(), {NodePrefix(5)}, graph);
  EXPECT_EQ(status.code(), ErrorCode::kSafetyViolation);
  EXPECT_NE(status.message().find("overhead"), std::string::npos);
}

TEST(SafetyValidatorTest, RejectsModuleCountAboveCap) {
  SafetyLimits limits;
  limits.max_modules_per_graph = 3;
  SafetyValidator validator = MakeStandardValidator(limits);
  std::vector<std::unique_ptr<Module>> modules;
  for (int i = 0; i < 5; ++i) {
    modules.push_back(std::make_unique<CounterModule>());
  }
  ModuleGraph graph = ModuleGraph::Chain(std::move(modules));
  EXPECT_EQ(validator.ValidateDeployment(SampleCert(), {NodePrefix(5)}, graph)
                .code(),
            ErrorCode::kResourceExhausted);
}

TEST(SafetyValidatorTest, RejectsScopePrefixCountAboveCap) {
  SafetyLimits limits;
  limits.max_scope_prefixes = 2;
  SafetyValidator validator = MakeStandardValidator(limits);
  CertificateAuthority ca("k");
  const auto cert = ca.Issue(
      1, "acme", {NodePrefix(1), NodePrefix(2), NodePrefix(3)}, 0,
      Seconds(10));
  ModuleGraph graph = ModuleGraph::Single(std::make_unique<CounterModule>());
  EXPECT_EQ(validator
                .ValidateDeployment(
                    cert, {NodePrefix(1), NodePrefix(2), NodePrefix(3)},
                    graph)
                .code(),
            ErrorCode::kResourceExhausted);
}

TEST(SafetyValidatorTest, VettingIsExplicit) {
  SafetyValidator validator;
  EXPECT_FALSE(validator.IsVetted("match"));
  validator.VetModuleType("match");
  EXPECT_TRUE(validator.IsVetted("match"));
}

// --- runtime invariants --------------------------------------------------------

TEST(EnforceInvariantsTest, NoChangeNoViolation) {
  Packet p;
  p.src = Ipv4Address(1);
  p.dst = Ipv4Address(2);
  p.ttl = 10;
  p.size_bytes = 100;
  const PacketInvariants before = PacketInvariants::Capture(p);
  EXPECT_EQ(EnforceInvariants(before, p), InvariantViolation::kNone);
}

TEST(EnforceInvariantsTest, SourceRewriteDetectedAndRestored) {
  Packet p;
  p.src = Ipv4Address(1);
  const PacketInvariants before = PacketInvariants::Capture(p);
  p.src = Ipv4Address(99);
  EXPECT_EQ(EnforceInvariants(before, p),
            InvariantViolation::kSourceModified);
  EXPECT_EQ(p.src, Ipv4Address(1));
}

TEST(EnforceInvariantsTest, DestinationRewriteDetectedAndRestored) {
  Packet p;
  p.dst = Ipv4Address(2);
  const PacketInvariants before = PacketInvariants::Capture(p);
  p.dst = Ipv4Address(77);
  EXPECT_EQ(EnforceInvariants(before, p),
            InvariantViolation::kDestinationModified);
  EXPECT_EQ(p.dst, Ipv4Address(2));
}

TEST(EnforceInvariantsTest, TtlChangeDetectedAndRestored) {
  Packet p;
  p.ttl = 64;
  const PacketInvariants before = PacketInvariants::Capture(p);
  p.ttl = 255;  // an attempt to extend packet lifetime
  EXPECT_EQ(EnforceInvariants(before, p), InvariantViolation::kTtlModified);
  EXPECT_EQ(p.ttl, 64);
}

TEST(EnforceInvariantsTest, SizeGrowthDetectedAndRestored) {
  Packet p;
  p.size_bytes = 100;
  const PacketInvariants before = PacketInvariants::Capture(p);
  p.size_bytes = 200;  // amplification attempt
  EXPECT_EQ(EnforceInvariants(before, p),
            InvariantViolation::kSizeIncreased);
  EXPECT_EQ(p.size_bytes, 100u);
}

TEST(EnforceInvariantsTest, SizeShrinkIsAllowed) {
  Packet p;
  p.size_bytes = 100;
  const PacketInvariants before = PacketInvariants::Capture(p);
  p.size_bytes = 40;  // payload deletion is fine
  EXPECT_EQ(EnforceInvariants(before, p), InvariantViolation::kNone);
  EXPECT_EQ(p.size_bytes, 40u);
}

TEST(EnforceInvariantsTest, FirstViolationReported) {
  Packet p;
  p.src = Ipv4Address(1);
  p.ttl = 64;
  const PacketInvariants before = PacketInvariants::Capture(p);
  p.src = Ipv4Address(9);
  p.ttl = 255;
  EXPECT_EQ(EnforceInvariants(before, p),
            InvariantViolation::kSourceModified);
  // Both restored regardless.
  EXPECT_EQ(p.src, Ipv4Address(1));
  EXPECT_EQ(p.ttl, 64);
}

}  // namespace
}  // namespace adtc
