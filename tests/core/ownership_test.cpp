#include "core/ownership.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace adtc {
namespace {

TEST(NumberAuthorityTest, AllocateAndVerify) {
  NumberAuthority authority;
  ADTC_EXPECT_OK(authority.Allocate(*Prefix::Parse("10.0.0.0/8"), "acme"));
  ADTC_EXPECT_OK(
      authority.VerifyOwnership("acme", *Prefix::Parse("10.0.0.0/8")));
  ADTC_EXPECT_OK(
      authority.VerifyOwnership("acme", *Prefix::Parse("10.1.0.0/16")));
  // Covered by someone else vs not covered at all: distinct typed codes.
  EXPECT_EQ(
      authority.VerifyOwnership("evil", *Prefix::Parse("10.1.0.0/16")).code(),
      ErrorCode::kPermissionDenied);
  EXPECT_EQ(
      authority.VerifyOwnership("acme", *Prefix::Parse("11.0.0.0/8")).code(),
      ErrorCode::kNotFound);
}

TEST(NumberAuthorityTest, OverlapRejected) {
  NumberAuthority authority;
  ADTC_EXPECT_OK(authority.Allocate(*Prefix::Parse("10.0.0.0/8"), "acme"));
  const Status inside =
      authority.Allocate(*Prefix::Parse("10.1.0.0/16"), "other");
  EXPECT_EQ(inside.code(), ErrorCode::kAlreadyExists);
  const Status covering =
      authority.Allocate(*Prefix::Parse("0.0.0.0/0"), "other");
  EXPECT_EQ(covering.code(), ErrorCode::kAlreadyExists);
  // Disjoint allocation fine.
  ADTC_EXPECT_OK(authority.Allocate(*Prefix::Parse("11.0.0.0/8"), "other"));
}

TEST(NumberAuthorityTest, SameOwnerOverlapIdempotent) {
  NumberAuthority authority;
  ADTC_EXPECT_OK(authority.Allocate(*Prefix::Parse("10.0.0.0/8"), "acme"));
  ADTC_EXPECT_OK(authority.Allocate(*Prefix::Parse("10.1.0.0/16"), "acme"));
  EXPECT_EQ(authority.allocation_count(), 2u);
}

TEST(NumberAuthorityTest, SuballocationFlow) {
  NumberAuthority authority;
  ADTC_EXPECT_OK(authority.Allocate(*Prefix::Parse("10.0.0.0/8"), "isp"));
  // Only the real parent may delegate.
  EXPECT_EQ(authority
                .Suballocate(*Prefix::Parse("10.5.0.0/16"), "shop", "other")
                .code(),
            ErrorCode::kPermissionDenied);
  ADTC_EXPECT_OK(
      authority.Suballocate(*Prefix::Parse("10.5.0.0/16"), "shop", "isp"));
  ADTC_EXPECT_OK(
      authority.VerifyOwnership("shop", *Prefix::Parse("10.5.1.0/24")));
  // Longest match now answers the customer.
  EXPECT_EQ(authority.OwnerOf(*Ipv4Address::Parse("10.5.1.1")), "shop");
  EXPECT_EQ(authority.OwnerOf(*Ipv4Address::Parse("10.6.0.1")), "isp");
}

TEST(NumberAuthorityTest, SuballocationCollisionWithThirdParty) {
  NumberAuthority authority;
  ADTC_EXPECT_OK(authority.Allocate(*Prefix::Parse("10.0.0.0/8"), "isp"));
  ADTC_EXPECT_OK(
      authority.Suballocate(*Prefix::Parse("10.5.0.0/16"), "shop", "isp"));
  const Status clash = authority.Suballocate(*Prefix::Parse("10.5.0.0/15"),
                                             "rival", "isp");
  EXPECT_EQ(clash.code(), ErrorCode::kAlreadyExists);
}

TEST(NumberAuthorityTest, OwnerOfUnallocatedIsEmpty) {
  NumberAuthority authority;
  EXPECT_EQ(authority.OwnerOf(Ipv4Address(0x7f000001)), "");
}

TEST(NumberAuthorityTest, AllocationsOfLists) {
  NumberAuthority authority;
  ADTC_EXPECT_OK(authority.Allocate(*Prefix::Parse("10.0.0.0/8"), "acme"));
  ADTC_EXPECT_OK(authority.Allocate(*Prefix::Parse("192.168.0.0/16"), "acme"));
  ADTC_EXPECT_OK(authority.Allocate(*Prefix::Parse("11.0.0.0/8"), "zeta"));
  EXPECT_EQ(authority.AllocationsOf("acme").size(), 2u);
  EXPECT_EQ(authority.AllocationsOf("zeta").size(), 1u);
  EXPECT_TRUE(authority.AllocationsOf("nobody").empty());
}

TEST(NumberAuthorityTest, TopologyBootstrap) {
  NumberAuthority authority;
  AllocateTopologyPrefixes(authority, 50);
  EXPECT_EQ(authority.allocation_count(), 50u);
  ADTC_EXPECT_OK(authority.VerifyOwnership(AsOrgName(7), NodePrefix(7)));
  EXPECT_EQ(authority.VerifyOwnership(AsOrgName(7), NodePrefix(8)).code(),
            ErrorCode::kPermissionDenied);
  EXPECT_EQ(authority.OwnerOf(HostAddress(13, 5)), "as13");
}

}  // namespace
}  // namespace adtc
