#include "sim/faults.h"

#include <gtest/gtest.h>

namespace adtc {
namespace {

TEST(FaultInjectorTest, NoFaultsDeliversEverything) {
  FaultInjector injector(1);
  for (int i = 0; i < 100; ++i) {
    const MessageFate fate = injector.PlanMessage("any");
    EXPECT_TRUE(fate.deliver);
    EXPECT_FALSE(fate.duplicate);
    EXPECT_EQ(fate.extra_delay, 0);
  }
  EXPECT_EQ(injector.stats().messages_planned, 100u);
  EXPECT_EQ(injector.stats().messages_lost, 0u);
}

TEST(FaultInjectorTest, CertainLossDropsEveryMessage) {
  FaultInjector injector(1);
  ChannelFaults faults;
  faults.loss = 1.0;
  injector.SetDefaultFaults(faults);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(injector.PlanMessage("ch").deliver);
  }
  EXPECT_EQ(injector.stats().messages_lost, 50u);
}

TEST(FaultInjectorTest, CertainDuplicationDuplicatesEveryDelivery) {
  FaultInjector injector(1);
  ChannelFaults faults;
  faults.duplicate = 1.0;
  injector.SetDefaultFaults(faults);
  const MessageFate fate = injector.PlanMessage("ch");
  EXPECT_TRUE(fate.deliver);
  EXPECT_TRUE(fate.duplicate);
  EXPECT_EQ(injector.stats().messages_duplicated, 1u);
}

TEST(FaultInjectorTest, JitterStaysWithinConfiguredBound) {
  FaultInjector injector(7);
  ChannelFaults faults;
  faults.jitter_max = Milliseconds(25);
  injector.SetDefaultFaults(faults);
  bool any_delay = false;
  for (int i = 0; i < 200; ++i) {
    const MessageFate fate = injector.PlanMessage("ch");
    EXPECT_GE(fate.extra_delay, 0);
    EXPECT_LE(fate.extra_delay, Milliseconds(25));
    any_delay = any_delay || fate.extra_delay > 0;
  }
  EXPECT_TRUE(any_delay);
}

TEST(FaultInjectorTest, PerChannelPlanOverridesDefault) {
  FaultInjector injector(3);
  ChannelFaults lossy;
  lossy.loss = 1.0;
  injector.SetDefaultFaults(lossy);
  injector.SetChannelFaults("clean", ChannelFaults{});
  EXPECT_TRUE(injector.PlanMessage("clean").deliver);
  EXPECT_FALSE(injector.PlanMessage("other").deliver);
}

TEST(FaultInjectorTest, SameSeedReplaysIdenticalFates) {
  ChannelFaults faults;
  faults.loss = 0.4;
  faults.duplicate = 0.3;
  faults.jitter_max = Milliseconds(10);
  FaultInjector a(99), b(99);
  a.SetDefaultFaults(faults);
  b.SetDefaultFaults(faults);
  for (int i = 0; i < 500; ++i) {
    const MessageFate fa = a.PlanMessage("ch");
    const MessageFate fb = b.PlanMessage("ch");
    EXPECT_EQ(fa.deliver, fb.deliver);
    EXPECT_EQ(fa.duplicate, fb.duplicate);
    EXPECT_EQ(fa.extra_delay, fb.extra_delay);
    EXPECT_EQ(fa.duplicate_delay, fb.duplicate_delay);
  }
}

TEST(FaultInjectorTest, TcspOutageWindowIsHalfOpen) {
  FaultInjector injector(1);
  injector.AddTcspOutage(Seconds(2), Seconds(4));
  EXPECT_TRUE(injector.TcspUp(0));
  EXPECT_TRUE(injector.TcspUp(Seconds(2) - 1));
  EXPECT_FALSE(injector.TcspUp(Seconds(2)));
  EXPECT_FALSE(injector.TcspUp(Seconds(4) - 1));
  EXPECT_TRUE(injector.TcspUp(Seconds(4)));
}

TEST(FaultInjectorTest, DeviceOutagesArePerNode) {
  FaultInjector injector(1);
  injector.AddDeviceOutage(5, Seconds(1), Seconds(3));
  EXPECT_FALSE(injector.DeviceUp(5, Seconds(2)));
  EXPECT_TRUE(injector.DeviceUp(5, Seconds(3)));
  EXPECT_TRUE(injector.DeviceUp(6, Seconds(2)));  // other nodes unaffected
}

TEST(FaultInjectorTest, CertainLinkLossEatsEveryPacket) {
  FaultInjector injector(1);
  LinkFaults faults;
  faults.loss = 1.0;
  injector.SetDefaultLinkFaults(faults);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(injector.PlanPacket(3, 0), PacketFate::kLost);
  }
  EXPECT_EQ(injector.stats().packets_planned, 50u);
  EXPECT_EQ(injector.stats().packets_lost, 50u);
}

TEST(FaultInjectorTest, CertainCorruptionMarksEveryPacket) {
  FaultInjector injector(1);
  LinkFaults faults;
  faults.corrupt = 1.0;
  injector.SetLinkFaults(2, faults);
  EXPECT_EQ(injector.PlanPacket(2, 0), PacketFate::kCorrupted);
  // Only link 2 has the plan.
  EXPECT_EQ(injector.PlanPacket(9, 0), PacketFate::kDeliver);
  EXPECT_EQ(injector.stats().packets_corrupted, 1u);
}

TEST(FaultInjectorTest, LinkFlapWindowIsHalfOpenAndRandomless) {
  FaultInjector injector(1);
  injector.AddLinkFlap(4, Seconds(1), Seconds(2));
  EXPECT_TRUE(injector.LinkUp(4, Seconds(1) - 1));
  EXPECT_FALSE(injector.LinkUp(4, Seconds(1)));
  EXPECT_TRUE(injector.LinkUp(4, Seconds(2)));
  EXPECT_EQ(injector.PlanPacket(4, Seconds(1)), PacketFate::kLinkDown);
  EXPECT_EQ(injector.stats().link_down_drops, 1u);
  // The flap decision consumed no randomness: a twin injector that never
  // planned the flapped packet still agrees on the next faulty draw.
  FaultInjector twin(1);
  LinkFaults faults;
  faults.loss = 0.5;
  injector.SetDefaultLinkFaults(faults);
  twin.SetDefaultLinkFaults(faults);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(injector.PlanPacket(7, Seconds(5)),
              twin.PlanPacket(7, Seconds(5)));
  }
}

TEST(FaultInjectorTest, RouterRestartSchedulesArePerNodeInOrder) {
  FaultInjector injector(1);
  injector.AddRouterRestart(3, Seconds(8));
  injector.AddRouterRestart(3, Seconds(2));
  injector.AddRouterRestart(5, Seconds(4));
  ASSERT_EQ(injector.RouterRestartsFor(3).size(), 2u);
  EXPECT_EQ(injector.RouterRestartsFor(3)[0], Seconds(8));
  EXPECT_EQ(injector.RouterRestartsFor(3)[1], Seconds(2));
  ASSERT_EQ(injector.RouterRestartsFor(5).size(), 1u);
  EXPECT_TRUE(injector.RouterRestartsFor(9).empty());
}

TEST(FaultInjectorTest, SameSeedReplaysInterleavedMessageAndPacketFates) {
  // The message and packet planners share one RNG stream; determinism
  // must hold across an interleaved call sequence, not just per kind.
  ChannelFaults channel;
  channel.loss = 0.3;
  channel.duplicate = 0.2;
  channel.jitter_max = Milliseconds(10);
  LinkFaults link;
  link.loss = 0.25;
  link.corrupt = 0.25;
  FaultInjector a(1234), b(1234);
  a.SetDefaultFaults(channel);
  b.SetDefaultFaults(channel);
  a.SetDefaultLinkFaults(link);
  b.SetDefaultLinkFaults(link);
  for (int i = 0; i < 500; ++i) {
    if (i % 3 == 0) {
      const MessageFate fa = a.PlanMessage("ch");
      const MessageFate fb = b.PlanMessage("ch");
      EXPECT_EQ(fa.deliver, fb.deliver);
      EXPECT_EQ(fa.duplicate, fb.duplicate);
      EXPECT_EQ(fa.extra_delay, fb.extra_delay);
      EXPECT_EQ(fa.duplicate_delay, fb.duplicate_delay);
    } else {
      EXPECT_EQ(a.PlanPacket(i % 7, i), b.PlanPacket(i % 7, i));
    }
  }
  EXPECT_EQ(a.stats().packets_lost, b.stats().packets_lost);
  EXPECT_EQ(a.stats().packets_corrupted, b.stats().packets_corrupted);
  EXPECT_EQ(a.stats().messages_lost, b.stats().messages_lost);
}

TEST(FaultInjectorTest, AllZeroPlanConsumesNoRandomness) {
  // Plan thousands of messages and packets under an all-zero plan, then
  // enable faults: the subsequent draws must match a twin injector that
  // skipped the all-zero phase entirely. If the inert phase touched the
  // RNG, the streams would have diverged.
  FaultInjector warmed(77), fresh(77);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(warmed.PlanMessage("ch").deliver);
    EXPECT_EQ(warmed.PlanPacket(1, i), PacketFate::kDeliver);
  }
  EXPECT_EQ(warmed.stats().messages_planned, 1000u);
  EXPECT_EQ(warmed.stats().packets_planned, 1000u);
  ChannelFaults channel;
  channel.loss = 0.5;
  channel.jitter_max = Milliseconds(40);
  LinkFaults link;
  link.loss = 0.5;
  warmed.SetDefaultFaults(channel);
  fresh.SetDefaultFaults(channel);
  warmed.SetDefaultLinkFaults(link);
  fresh.SetDefaultLinkFaults(link);
  for (int i = 0; i < 300; ++i) {
    const MessageFate fw = warmed.PlanMessage("ch");
    const MessageFate ff = fresh.PlanMessage("ch");
    EXPECT_EQ(fw.deliver, ff.deliver);
    EXPECT_EQ(fw.extra_delay, ff.extra_delay);
    EXPECT_EQ(warmed.PlanPacket(1, i), fresh.PlanPacket(1, i));
  }
}

TEST(FaultInjectorTest, PartitionsAreSymmetricAndHealable) {
  FaultInjector injector(1);
  injector.Partition("isp-a", "isp-b");
  EXPECT_TRUE(injector.Partitioned("isp-a", "isp-b"));
  EXPECT_TRUE(injector.Partitioned("isp-b", "isp-a"));
  EXPECT_FALSE(injector.Partitioned("isp-a", "isp-c"));
  EXPECT_EQ(injector.stats().partition_blocks, 2u);
  injector.Heal("isp-b", "isp-a");
  EXPECT_FALSE(injector.Partitioned("isp-a", "isp-b"));
}

}  // namespace
}  // namespace adtc
