#include "sim/faults.h"

#include <gtest/gtest.h>

namespace adtc {
namespace {

TEST(FaultInjectorTest, NoFaultsDeliversEverything) {
  FaultInjector injector(1);
  for (int i = 0; i < 100; ++i) {
    const MessageFate fate = injector.PlanMessage("any");
    EXPECT_TRUE(fate.deliver);
    EXPECT_FALSE(fate.duplicate);
    EXPECT_EQ(fate.extra_delay, 0);
  }
  EXPECT_EQ(injector.stats().messages_planned, 100u);
  EXPECT_EQ(injector.stats().messages_lost, 0u);
}

TEST(FaultInjectorTest, CertainLossDropsEveryMessage) {
  FaultInjector injector(1);
  ChannelFaults faults;
  faults.loss = 1.0;
  injector.SetDefaultFaults(faults);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(injector.PlanMessage("ch").deliver);
  }
  EXPECT_EQ(injector.stats().messages_lost, 50u);
}

TEST(FaultInjectorTest, CertainDuplicationDuplicatesEveryDelivery) {
  FaultInjector injector(1);
  ChannelFaults faults;
  faults.duplicate = 1.0;
  injector.SetDefaultFaults(faults);
  const MessageFate fate = injector.PlanMessage("ch");
  EXPECT_TRUE(fate.deliver);
  EXPECT_TRUE(fate.duplicate);
  EXPECT_EQ(injector.stats().messages_duplicated, 1u);
}

TEST(FaultInjectorTest, JitterStaysWithinConfiguredBound) {
  FaultInjector injector(7);
  ChannelFaults faults;
  faults.jitter_max = Milliseconds(25);
  injector.SetDefaultFaults(faults);
  bool any_delay = false;
  for (int i = 0; i < 200; ++i) {
    const MessageFate fate = injector.PlanMessage("ch");
    EXPECT_GE(fate.extra_delay, 0);
    EXPECT_LE(fate.extra_delay, Milliseconds(25));
    any_delay = any_delay || fate.extra_delay > 0;
  }
  EXPECT_TRUE(any_delay);
}

TEST(FaultInjectorTest, PerChannelPlanOverridesDefault) {
  FaultInjector injector(3);
  ChannelFaults lossy;
  lossy.loss = 1.0;
  injector.SetDefaultFaults(lossy);
  injector.SetChannelFaults("clean", ChannelFaults{});
  EXPECT_TRUE(injector.PlanMessage("clean").deliver);
  EXPECT_FALSE(injector.PlanMessage("other").deliver);
}

TEST(FaultInjectorTest, SameSeedReplaysIdenticalFates) {
  ChannelFaults faults;
  faults.loss = 0.4;
  faults.duplicate = 0.3;
  faults.jitter_max = Milliseconds(10);
  FaultInjector a(99), b(99);
  a.SetDefaultFaults(faults);
  b.SetDefaultFaults(faults);
  for (int i = 0; i < 500; ++i) {
    const MessageFate fa = a.PlanMessage("ch");
    const MessageFate fb = b.PlanMessage("ch");
    EXPECT_EQ(fa.deliver, fb.deliver);
    EXPECT_EQ(fa.duplicate, fb.duplicate);
    EXPECT_EQ(fa.extra_delay, fb.extra_delay);
    EXPECT_EQ(fa.duplicate_delay, fb.duplicate_delay);
  }
}

TEST(FaultInjectorTest, TcspOutageWindowIsHalfOpen) {
  FaultInjector injector(1);
  injector.AddTcspOutage(Seconds(2), Seconds(4));
  EXPECT_TRUE(injector.TcspUp(0));
  EXPECT_TRUE(injector.TcspUp(Seconds(2) - 1));
  EXPECT_FALSE(injector.TcspUp(Seconds(2)));
  EXPECT_FALSE(injector.TcspUp(Seconds(4) - 1));
  EXPECT_TRUE(injector.TcspUp(Seconds(4)));
}

TEST(FaultInjectorTest, DeviceOutagesArePerNode) {
  FaultInjector injector(1);
  injector.AddDeviceOutage(5, Seconds(1), Seconds(3));
  EXPECT_FALSE(injector.DeviceUp(5, Seconds(2)));
  EXPECT_TRUE(injector.DeviceUp(5, Seconds(3)));
  EXPECT_TRUE(injector.DeviceUp(6, Seconds(2)));  // other nodes unaffected
}

TEST(FaultInjectorTest, PartitionsAreSymmetricAndHealable) {
  FaultInjector injector(1);
  injector.Partition("isp-a", "isp-b");
  EXPECT_TRUE(injector.Partitioned("isp-a", "isp-b"));
  EXPECT_TRUE(injector.Partitioned("isp-b", "isp-a"));
  EXPECT_FALSE(injector.Partitioned("isp-a", "isp-c"));
  EXPECT_EQ(injector.stats().partition_blocks, 2u);
  injector.Heal("isp-b", "isp-a");
  EXPECT_FALSE(injector.Partitioned("isp-a", "isp-b"));
}

}  // namespace
}  // namespace adtc
