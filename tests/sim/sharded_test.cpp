// Unit tests of the sharded lock-step engine: clock semantics on the
// single-shard fast path, cross-shard exchange at epoch barriers, late
// clamping, per-shard RNG stream seeding, and run-to-run determinism.
#include "sim/sharded.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace adtc {
namespace {

TEST(ShardedSingleTest, ClockAdvancesPerEventDuringInlineRun) {
  // Regression: the single-shard fast path runs events inline on the
  // main thread; ShardedSimulator::Now() must track the live per-event
  // clock there, not the stale pre-run barrier.
  ShardedSimulator engine(1);
  std::vector<SimTime> seen;
  engine.shard(0).Post(Milliseconds(10), [&] { seen.push_back(engine.Now()); });
  engine.shard(0).Post(Milliseconds(25), [&] { seen.push_back(engine.Now()); });
  engine.RunUntil(Milliseconds(100));
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], Milliseconds(10));
  EXPECT_EQ(seen[1], Milliseconds(25));
  EXPECT_EQ(engine.Now(), Milliseconds(100));  // horizon after the run
}

TEST(ShardedSingleTest, EventsPostedMidRunExecuteAtTheirTime) {
  ShardedSimulator engine(1);
  ShardRef s = engine.shard(0);
  SimTime chained = -1;
  s.Post(Milliseconds(5), [&] {
    s.PostIn(Milliseconds(7), [&] { chained = s.Now(); });
  });
  engine.RunToCompletion();
  EXPECT_EQ(chained, Milliseconds(12));
}

TEST(ShardedSingleTest, SingleShardSpawnsNoPoolAndCountsEvents) {
  ShardedSimulator engine(1);
  int runs = 0;
  for (int i = 0; i < 5; ++i) {
    engine.shard(0).Post(Milliseconds(i), [&] { runs++; });
  }
  EXPECT_EQ(engine.RunToCompletion(), 5u);
  EXPECT_EQ(engine.executed_events(), 5u);
  EXPECT_EQ(runs, 5);
  EXPECT_TRUE(engine.Empty());
}

TEST(ShardedMultiTest, MainThreadPostsLandOnTheAddressedShard) {
  ShardedSimulator engine(2);
  engine.SetEpoch(Milliseconds(1));
  std::vector<ShardId> ran_on;
  // Per-shard recording cells: each worker writes only its own slot.
  ShardId cell0 = kInvalidShard, cell1 = kInvalidShard;
  engine.shard(0).Post(Milliseconds(1), [&] { cell0 = engine.shard(0).id(); });
  engine.shard(1).Post(Milliseconds(1), [&] { cell1 = engine.shard(1).id(); });
  engine.RunToCompletion();
  EXPECT_EQ(cell0, 0u);
  EXPECT_EQ(cell1, 1u);
  (void)ran_on;
}

TEST(ShardedMultiTest, CrossShardPostCrossesAtTheBarrier) {
  ShardedSimulator engine(2);
  const SimDuration epoch = Milliseconds(10);
  engine.SetEpoch(epoch);
  SimTime delivered_at = -1;
  ShardRef s0 = engine.shard(0);
  ShardRef s1 = engine.shard(1);
  // An event on shard 1 addresses shard 0 one full epoch ahead — the
  // legal pattern for cross-shard messages (latency >= epoch).
  s1.Post(Milliseconds(3), [&, s0, s1] {
    s0.Post(s1.Now() + epoch, [&, s0] { delivered_at = s0.Now(); });
  });
  engine.RunToCompletion();
  EXPECT_EQ(delivered_at, Milliseconds(13));
  EXPECT_EQ(engine.stats().cross_shard_events, 1u);
  EXPECT_EQ(engine.stats().late_cross_events, 0u);
  EXPECT_GE(engine.stats().epochs, 1u);
}

TEST(ShardedMultiTest, LateCrossShardPostIsClampedAndCounted) {
  ShardedSimulator engine(2);
  engine.SetEpoch(Milliseconds(10));
  SimTime delivered_at = -1;
  ShardRef s0 = engine.shard(0);
  ShardRef s1 = engine.shard(1);
  // Contract violation on purpose: the target time (t+1ms) is inside the
  // current window, so the event is only seen at the barrier, clamped
  // forward, and flagged.
  s1.Post(Milliseconds(2), [&, s0, s1] {
    s0.Post(s1.Now() + Milliseconds(1), [&, s0] { delivered_at = s0.Now(); });
  });
  engine.RunToCompletion();
  ASSERT_GE(delivered_at, Milliseconds(3));
  EXPECT_EQ(engine.stats().cross_shard_events, 1u);
  EXPECT_EQ(engine.stats().late_cross_events, 1u);
}

TEST(ShardedMultiTest, ZeroEpochFallbackStillDeliversCrossShard) {
  // No declared lookahead: the engine degrades to one timestamp per
  // window, which keeps cross-shard delivery correct (if slow).
  ShardedSimulator engine(2);
  SimTime delivered_at = -1;
  ShardRef s0 = engine.shard(0);
  ShardRef s1 = engine.shard(1);
  s1.Post(Milliseconds(1), [&, s0, s1] {
    s0.Post(s1.Now() + Milliseconds(5), [&, s0] { delivered_at = s0.Now(); });
  });
  engine.RunToCompletion();
  EXPECT_EQ(delivered_at, Milliseconds(6));
  EXPECT_EQ(engine.stats().late_cross_events, 0u);
}

TEST(ShardedMultiTest, PerShardRngStreamsAreSeededAndIndependent) {
  ShardedSimulator a(4, /*seed=*/42);
  ShardedSimulator b(4, /*seed=*/42);
  ShardedSimulator c(4, /*seed=*/43);
  for (ShardId i = 0; i < 4; ++i) {
    auto* sa = static_cast<ShardedSimulator::Shard*>(a.shard(i).get());
    auto* sb = static_cast<ShardedSimulator::Shard*>(b.shard(i).get());
    auto* sc = static_cast<ShardedSimulator::Shard*>(c.shard(i).get());
    // Same engine seed -> identical stream per shard; different engine
    // seed -> different stream.
    EXPECT_EQ(sa->rng().Next(), sb->rng().Next()) << "shard " << i;
    EXPECT_NE(sa->rng().Next(), sc->rng().Next()) << "shard " << i;
  }
  // Distinct shards of one engine draw distinct streams.
  auto* s0 = static_cast<ShardedSimulator::Shard*>(a.shard(0).get());
  auto* s1 = static_cast<ShardedSimulator::Shard*>(a.shard(1).get());
  EXPECT_NE(s0->rng().Next(), s1->rng().Next());
}

// One ping-pong world: events bounce between two shards, each hop one
// epoch ahead, recording (shard, time) on each execution.
std::vector<std::pair<ShardId, SimTime>> RunPingPong(std::size_t shards) {
  ShardedSimulator engine(shards);
  const SimDuration epoch = Milliseconds(5);
  engine.SetEpoch(epoch);
  // trace[i] is written only by shard i's worker; merged after the run.
  std::vector<std::vector<std::pair<ShardId, SimTime>>> trace(shards);
  std::function<void(ShardId, int)> hop = [&](ShardId at, int remaining) {
    ShardRef self = engine.shard(at);
    trace[at].emplace_back(at, self.Now());
    if (remaining == 0) return;
    const ShardId next = static_cast<ShardId>((at + 1) % shards);
    engine.shard(next).Post(self.Now() + epoch,
                            [&hop, next, remaining] { hop(next, remaining - 1); });
  };
  engine.shard(0).Post(Milliseconds(1), [&hop] { hop(0, 12); });
  engine.RunToCompletion();
  std::vector<std::pair<ShardId, SimTime>> merged;
  for (const auto& t : trace) merged.insert(merged.end(), t.begin(), t.end());
  return merged;
}

TEST(ShardedMultiTest, RepeatedRunsAreBitReproducible) {
  const auto first = RunPingPong(3);
  const auto second = RunPingPong(3);
  EXPECT_EQ(first, second);
  ASSERT_EQ(first.size(), 13u);  // initial hop + 12 bounces
}

TEST(ShardedMultiTest, RunUntilStopsEveryClockAtTheHorizon) {
  ShardedSimulator engine(2);
  engine.SetEpoch(Milliseconds(1));
  int runs = 0;
  engine.shard(1).Post(Milliseconds(2), [&] { runs++; });
  engine.shard(0).Post(Seconds(2), [&] { runs++; });  // beyond horizon
  engine.RunUntil(Seconds(1));
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(engine.Now(), Seconds(1));
  EXPECT_EQ(engine.shard(0).Now(), Seconds(1));
  EXPECT_EQ(engine.shard(1).Now(), Seconds(1));
  EXPECT_FALSE(engine.Empty());  // the far event is still queued
  engine.Clear();
  EXPECT_TRUE(engine.Empty());
}

}  // namespace
}  // namespace adtc
