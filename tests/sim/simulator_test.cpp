#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace adtc {
namespace {

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Post(Milliseconds(30), [&order] { order.push_back(3); });
  sim.Post(Milliseconds(10), [&order] { order.push_back(1); });
  sim.Post(Milliseconds(20), [&order] { order.push_back(2); });
  sim.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, TiesBreakInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Post(Milliseconds(5), [&order, i] { order.push_back(i); });
  }
  sim.RunToCompletion();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, ClockAdvancesToEventTime) {
  Simulator sim;
  SimTime observed = -1;
  sim.Post(Seconds(2), [&] { observed = sim.Now(); });
  sim.RunToCompletion();
  EXPECT_EQ(observed, Seconds(2));
  EXPECT_EQ(sim.Now(), Seconds(2));
}

TEST(SimulatorTest, PostInIsRelative) {
  Simulator sim;
  SimTime at_inner = -1;
  sim.Post(Milliseconds(100), [&] {
    sim.PostIn(Milliseconds(50), [&] { at_inner = sim.Now(); });
  });
  sim.RunToCompletion();
  EXPECT_EQ(at_inner, Milliseconds(150));
}

TEST(SimulatorTest, PastSchedulingClampsToNow) {
  Simulator sim;
  SimTime ran_at = -1;
  sim.Post(Milliseconds(100), [&] {
    sim.Post(Milliseconds(10), [&] { ran_at = sim.Now(); });
  });
  sim.RunToCompletion();
  EXPECT_EQ(ran_at, Milliseconds(100));
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  int ran = 0;
  sim.Post(Milliseconds(10), [&] { ran++; });
  sim.Post(Milliseconds(20), [&] { ran++; });
  sim.Post(Milliseconds(30), [&] { ran++; });
  const std::uint64_t executed = sim.RunUntil(Milliseconds(20));
  EXPECT_EQ(executed, 2u);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(sim.Now(), Milliseconds(20));
  EXPECT_EQ(sim.PendingEvents(), 1u);
}

TEST(SimulatorTest, RunUntilAdvancesClockWithoutEvents) {
  Simulator sim;
  sim.RunUntil(Seconds(5));
  EXPECT_EQ(sim.Now(), Seconds(5));
}

TEST(SimulatorTest, PeriodicRunsUntilFalse) {
  Simulator sim;
  int ticks = 0;
  sim.PostEvery(Milliseconds(10), [&ticks] {
    ticks++;
    return ticks < 5;
  });
  sim.RunToCompletion();
  EXPECT_EQ(ticks, 5);
  EXPECT_EQ(sim.Now(), Milliseconds(50));
}

TEST(SimulatorTest, ClearDropsPendingEvents) {
  Simulator sim;
  int ran = 0;
  sim.Post(Milliseconds(10), [&] { ran++; });
  sim.Clear();
  sim.RunToCompletion();
  EXPECT_EQ(ran, 0);
  EXPECT_TRUE(sim.Empty());
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.PostIn(Milliseconds(1), recurse);
  };
  sim.PostIn(Milliseconds(1), recurse);
  sim.RunToCompletion();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.executed_events(), 100u);
}

}  // namespace
}  // namespace adtc
