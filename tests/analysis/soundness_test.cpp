// Differential soundness harness for the static verifier.
//
// Property under test: for *honest* modules — modules whose
// effect_signature() truthfully over-approximates what OnPacket does —
// a statically proven graph never trips the runtime guard. I.e. the
// static verdict is never more permissive than SafetyGuard's runtime
// observation; proven + quarantined can only mean a module lied.
//
// The harness generates random DAG-shaped module graphs out of synthetic
// modules with random behaviours, derives each signature truthfully from
// the behaviour, admits the graph through the real SafetyValidator, then
// executes a batch of random packets and checks EnforceInvariants (the
// exact check SafetyGuard applies around every execution).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>
#include <vector>

#include "core/safety.h"

namespace adtc {
namespace {

/// What a synthetic module actually does per packet.
struct Behavior {
  bool write_src = false;
  bool write_ttl = false;
  std::int32_t wire_delta = 0;     // applied to size_bytes (clamped at 1)
  std::uint32_t overhead = 0;      // declared management overhead
  bool customer_edge_only = false; // requires the edge guarantee
  int ports = 1;                   // 1 or 2; port chosen per packet
};

/// Executes its behaviour literally and declares it truthfully.
class SyntheticModule : public Module {
 public:
  SyntheticModule(Behavior behavior, std::uint64_t seed)
      : behavior_(behavior), rng_(seed) {}

  int OnPacket(Packet& packet, const DeviceContext&) override {
    if (behavior_.write_src) packet.src = Ipv4Address(packet.src.bits() ^ 1);
    if (behavior_.write_ttl && packet.ttl > 0) packet.ttl--;
    if (behavior_.wire_delta != 0) {
      const std::int64_t size =
          static_cast<std::int64_t>(packet.size_bytes) + behavior_.wire_delta;
      packet.size_bytes = static_cast<std::uint32_t>(std::max<std::int64_t>(
          1, size));
    }
    if (behavior_.ports == 1) return 0;
    return static_cast<int>(rng_() % 2);
  }

  // The vetted catalog gates on type names; the property under test is
  // the effect analysis, so synthetics reuse a vetted name.
  std::string_view type_name() const override { return "match"; }
  int port_count() const override { return behavior_.ports; }
  std::uint32_t declared_overhead_bytes() const override {
    return behavior_.overhead;
  }

  analysis::EffectSignature effect_signature() const override {
    analysis::EffectSignature sig;
    sig.header_writes = analysis::kNoHeaderWrites;
    if (behavior_.write_src) {
      sig.header_writes = sig.header_writes | analysis::HeaderField::kSrc;
    }
    if (behavior_.write_ttl) {
      sig.header_writes = sig.header_writes | analysis::HeaderField::kTtl;
    }
    if (behavior_.wire_delta > 0) {
      sig.header_writes =
          sig.header_writes | analysis::HeaderField::kSizeGrow;
    }
    sig.wire_bytes_delta_max = behavior_.wire_delta;
    sig.overhead_bytes_max = behavior_.overhead;
    sig.stateful = false;
    sig.context = behavior_.customer_edge_only
                      ? analysis::ContextRequirement::kCustomerEdgeOnly
                      : analysis::ContextRequirement::kNone;
    return sig;
  }

 private:
  Behavior behavior_;
  std::mt19937_64 rng_;
};

Behavior RandomBehavior(std::mt19937_64& rng) {
  Behavior b;
  // Most modules are benign so that a useful share of graphs is proven;
  // each hazard appears often enough to exercise every invariant.
  b.write_src = rng() % 8 == 0;
  b.write_ttl = rng() % 8 == 0;
  switch (rng() % 6) {
    case 0: b.wire_delta = static_cast<std::int32_t>(rng() % 32) + 1; break;
    case 1: b.wire_delta = -static_cast<std::int32_t>(rng() % 32); break;
    default: break;
  }
  b.overhead = static_cast<std::uint32_t>(rng() % 40);
  b.customer_edge_only = rng() % 8 == 0;
  b.ports = (rng() % 3 == 0) ? 2 : 1;
  return b;
}

/// Random DAG: module i only wires forward (to j > i) or to a terminal,
/// so ModuleGraph::Validate() accepts it and runtime execution is safe.
ModuleGraph RandomGraph(std::mt19937_64& rng) {
  ModuleGraph graph;
  const int count = 1 + static_cast<int>(rng() % 8);
  std::vector<int> ids;
  for (int i = 0; i < count; ++i) {
    ids.push_back(graph.AddModule(
        std::make_unique<SyntheticModule>(RandomBehavior(rng), rng())));
  }
  (void)graph.SetEntry(ids.front());
  for (int i = 0; i < count; ++i) {
    const int ports = graph.module(ids[i])->port_count();
    for (int port = 0; port < ports; ++port) {
      const bool last = i + 1 >= count;
      if (last || rng() % 3 == 0) {
        (void)graph.WireTerminal(ids[i], port,
                                 rng() % 4 == 0
                                     ? ModuleGraph::Terminal::kDrop
                                     : ModuleGraph::Terminal::kAccept);
      } else {
        const int target = i + 1 + static_cast<int>(rng() % (count - i - 1));
        (void)graph.Wire(ids[i], port, ids[target]);
      }
    }
  }
  (void)graph.Validate();
  return graph;
}

Packet RandomPacket(std::mt19937_64& rng) {
  Packet packet;
  packet.src = Ipv4Address(static_cast<std::uint32_t>(rng()));
  packet.dst = Ipv4Address(static_cast<std::uint32_t>(rng()));
  packet.ttl = static_cast<std::uint8_t>(1 + rng() % 64);
  packet.size_bytes = static_cast<std::uint32_t>(64 + rng() % 1400);
  return packet;
}

TEST(AnalysisSoundnessTest, ProvenGraphsNeverTripTheRuntimeGuard) {
  std::mt19937_64 rng(0xADCC5EED);
  CertificateAuthority ca("k");
  const OwnershipCertificate cert =
      ca.Issue(1, "acme", {NodePrefix(5)}, 0, Seconds(3600));
  const SafetyValidator validator = MakeStandardValidator();

  int proven = 0;
  int rejected = 0;
  for (int round = 0; round < 300; ++round) {
    ModuleGraph graph = RandomGraph(rng);
    ASSERT_TRUE(graph.validated());
    const DeploymentAnalysis admission =
        validator.AnalyzeDeployment(cert, {NodePrefix(5)}, graph);
    (admission.report.proven() ? proven : rejected)++;

    // Runtime side: execute a packet batch under the guard's own check.
    DeviceContext ctx;
    bool runtime_violation = false;
    for (int shot = 0; shot < 32 && !runtime_violation; ++shot) {
      Packet packet = RandomPacket(rng);
      const PacketInvariants before = PacketInvariants::Capture(packet);
      (void)graph.Execute(packet, ctx);
      runtime_violation =
          EnforceInvariants(before, packet) != InvariantViolation::kNone;
    }

    // The soundness property. (The converse is intentionally NOT
    // asserted: the static analysis is worst-case, so it may reject
    // graphs whose hazard never fired in this batch.)
    if (runtime_violation) {
      EXPECT_FALSE(admission.report.proven())
          << "round " << round
          << ": runtime guard tripped on a statically proven graph:\n"
          << admission.report.ToString();
    }
  }
  // The generator must exercise both verdicts for the test to mean much.
  EXPECT_GT(proven, 10);
  EXPECT_GT(rejected, 10);
}

TEST(AnalysisSoundnessTest, RejectionsAlwaysCiteAWitnessPath) {
  std::mt19937_64 rng(0x5AFE17);
  CertificateAuthority ca("k");
  const OwnershipCertificate cert =
      ca.Issue(1, "acme", {NodePrefix(5)}, 0, Seconds(3600));
  const SafetyValidator validator = MakeStandardValidator();
  for (int round = 0; round < 200; ++round) {
    ModuleGraph graph = RandomGraph(rng);
    const DeploymentAnalysis admission =
        validator.AnalyzeDeployment(cert, {NodePrefix(5)}, graph);
    if (admission.report.status != analysis::AnalysisStatus::kRejected) {
      continue;
    }
    ASSERT_FALSE(admission.report.violations.empty());
    for (const analysis::Violation& violation : admission.report.violations) {
      // Every witness starts at the entry and stays inside the graph.
      ASSERT_FALSE(violation.witness_path.empty());
      EXPECT_EQ(violation.witness_path.front(), graph.entry());
      for (int index : violation.witness_path) {
        EXPECT_GE(index, 0);
        EXPECT_LT(static_cast<std::size_t>(index), graph.module_count());
      }
    }
  }
}

}  // namespace
}  // namespace adtc
