// Unit tests for the admission-time static verifier, driving it directly
// through hand-built GraphViews — no ModuleGraph involved, exercising the
// structural cases ModuleGraph::Validate() would refuse to produce
// (cycles, dangling links, missing entries).
#include "analysis/verifier.h"

#include <gtest/gtest.h>

#include "obs/json.h"

namespace adtc::analysis {
namespace {

/// A module with `ports` output ports, all wired to terminals.
ModuleView Leaf(std::string name, EffectSignature sig = {},
                std::size_t ports = 1) {
  ModuleView mv;
  mv.type_name = std::move(name);
  mv.signature = sig;
  mv.ports.resize(ports);
  for (PortView& pv : mv.ports) {
    pv.wired = true;
    pv.is_terminal = true;
  }
  return mv;
}

/// Rewires port `port` of `mv` to module `next`.
void Link(ModuleView& mv, std::size_t port, int next) {
  mv.ports[port].wired = true;
  mv.ports[port].is_terminal = false;
  mv.ports[port].next = next;
}

GraphView SingleView(EffectSignature sig) {
  GraphView view;
  view.entry = 0;
  view.modules.push_back(Leaf("m", sig));
  return view;
}

TEST(VerifierTest, ProvesTrivialGraph) {
  const AnalysisReport report = VerifyGraph(SingleView({}), {}, {});
  EXPECT_TRUE(report.proven());
  EXPECT_EQ(report.modules_examined, 1u);
  EXPECT_EQ(report.paths_covered, 1u);
  EXPECT_DOUBLE_EQ(report.bounds.rate_factor, 1.0);
  EXPECT_EQ(report.bounds.bytes_out_delta, 0u);
}

TEST(VerifierTest, MissingEntryIsRejected) {
  GraphView view;  // entry = -1
  view.modules.push_back(Leaf("m"));
  const AnalysisReport report = VerifyGraph(view, {}, {});
  ASSERT_EQ(report.status, AnalysisStatus::kRejected);
  EXPECT_EQ(report.violations.front().kind, InvariantKind::kUnwiredPort);
}

TEST(VerifierTest, UnwiredPortIsRejectedWithWitness) {
  GraphView view;
  view.entry = 0;
  view.modules.push_back(Leaf("a"));
  view.modules.push_back(Leaf("b", {}, 2));
  Link(view.modules[0], 0, 1);
  view.modules[1].ports[1].wired = false;  // b's alt port dangles
  const AnalysisReport report = VerifyGraph(view, {}, {});
  ASSERT_EQ(report.status, AnalysisStatus::kRejected);
  const Violation& violation = report.violations.front();
  EXPECT_EQ(violation.kind, InvariantKind::kUnwiredPort);
  EXPECT_EQ(violation.witness_path, (std::vector<int>{0, 1}));
  EXPECT_EQ(WitnessToString(view, violation.witness_path), "entry:a -> b");
}

TEST(VerifierTest, DanglingLinkTargetIsRejected) {
  GraphView view;
  view.entry = 0;
  view.modules.push_back(Leaf("a"));
  Link(view.modules[0], 0, 7);  // no module #7
  const AnalysisReport report = VerifyGraph(view, {}, {});
  ASSERT_EQ(report.status, AnalysisStatus::kRejected);
  EXPECT_EQ(report.violations.front().kind, InvariantKind::kUnwiredPort);
}

TEST(VerifierTest, CycleIsNonTerminating) {
  GraphView view;
  view.entry = 0;
  view.modules.push_back(Leaf("a"));
  view.modules.push_back(Leaf("b"));
  Link(view.modules[0], 0, 1);
  Link(view.modules[1], 0, 0);  // b -> a closes the loop
  const AnalysisReport report = VerifyGraph(view, {}, {});
  ASSERT_EQ(report.status, AnalysisStatus::kRejected);
  const Violation& violation = report.violations.front();
  EXPECT_EQ(violation.kind, InvariantKind::kNonTerminating);
  // The witness walks the loop: a -> b -> a.
  EXPECT_EQ(violation.witness_path, (std::vector<int>{0, 1, 0}));
}

TEST(VerifierTest, SelfLoopIsNonTerminating) {
  GraphView view;
  view.entry = 0;
  view.modules.push_back(Leaf("a"));
  Link(view.modules[0], 0, 0);
  const AnalysisReport report = VerifyGraph(view, {}, {});
  ASSERT_EQ(report.status, AnalysisStatus::kRejected);
  EXPECT_EQ(report.violations.front().kind, InvariantKind::kNonTerminating);
}

TEST(VerifierTest, UnreachableModulesAreIgnored) {
  // An island module with declared header writes is harmless: no packet
  // can reach it.
  GraphView view;
  view.entry = 0;
  view.modules.push_back(Leaf("entry"));
  EffectSignature writer;
  writer.header_writes = kNoHeaderWrites | HeaderField::kSrc;
  view.modules.push_back(Leaf("island", writer));
  const AnalysisReport report = VerifyGraph(view, {}, {});
  EXPECT_TRUE(report.proven());
  EXPECT_EQ(report.modules_examined, 1u);
}

TEST(VerifierTest, RateFactorComposesMultiplicatively) {
  // 0.5 * 2.0 = 1.0: a sampler ahead of a duplicator nets out safe.
  GraphView view;
  view.entry = 0;
  EffectSignature half;
  half.rate_factor_max = 0.5;
  EffectSignature twice;
  twice.rate_factor_max = 2.0;
  view.modules.push_back(Leaf("sampler", half));
  view.modules.push_back(Leaf("dup", twice));
  Link(view.modules[0], 0, 1);
  const AnalysisReport report = VerifyGraph(view, {}, {});
  EXPECT_TRUE(report.proven());
  EXPECT_DOUBLE_EQ(report.bounds.rate_factor, 1.0);

  // Swap in a second duplicator: 0.5 * 2 * 2 = 2 > 1.
  view.modules.push_back(Leaf("dup2", twice));
  Link(view.modules[1], 0, 2);
  const AnalysisReport bad = VerifyGraph(view, {}, {});
  ASSERT_EQ(bad.status, AnalysisStatus::kRejected);
  EXPECT_EQ(bad.violations.front().kind, InvariantKind::kRateAmplification);
  EXPECT_EQ(bad.violations.front().witness_path,
            (std::vector<int>{0, 1, 2}));
}

TEST(VerifierTest, WorstPathDominatesDiamond) {
  // Diamond: entry branches to a cheap and an expensive middle, both
  // rejoin at a tail. The worst-case bytes bound must follow the
  // expensive branch, and the witness must name it.
  GraphView view;
  view.entry = 0;
  EffectSignature cheap;
  cheap.overhead_bytes_max = 1;
  EffectSignature expensive;
  expensive.overhead_bytes_max = 100;
  view.modules.push_back(Leaf("branch", {}, 2));
  view.modules.push_back(Leaf("cheap", cheap));
  view.modules.push_back(Leaf("expensive", expensive));
  view.modules.push_back(Leaf("tail"));
  Link(view.modules[0], 0, 1);
  Link(view.modules[0], 1, 2);
  Link(view.modules[1], 0, 3);
  Link(view.modules[2], 0, 3);
  AnalysisLimits limits;
  limits.max_overhead_bytes_per_packet = 64;
  const AnalysisReport report = VerifyGraph(view, {}, limits);
  ASSERT_EQ(report.status, AnalysisStatus::kRejected);
  const Violation& violation = report.violations.front();
  EXPECT_EQ(violation.kind, InvariantKind::kByteAmplification);
  EXPECT_EQ(violation.witness_path, (std::vector<int>{0, 2}));
  EXPECT_EQ(report.bounds.bytes_out_delta, 100u);
  EXPECT_EQ(report.paths_covered, 2u);

  // Raising the allowance over the worst path proves the same graph.
  limits.max_overhead_bytes_per_packet = 100;
  EXPECT_TRUE(VerifyGraph(view, {}, limits).proven());
}

TEST(VerifierTest, PathCountingIsExactOnLayeredBranches) {
  // k layers of 2-way branches rejoining: 2^k distinct paths, covered
  // without enumeration.
  constexpr int kLayers = 10;
  GraphView view;
  view.entry = 0;
  view.modules.push_back(Leaf("fan", {}, 2));
  int previous = 0;
  for (int layer = 1; layer < kLayers; ++layer) {
    const int left = static_cast<int>(view.modules.size());
    view.modules.push_back(Leaf("l", {}, 1));
    const int right = static_cast<int>(view.modules.size());
    view.modules.push_back(Leaf("r", {}, 1));
    const int join = static_cast<int>(view.modules.size());
    view.modules.push_back(Leaf("fan", {}, 2));
    Link(view.modules[previous], 0, left);
    Link(view.modules[previous], 1, right);
    Link(view.modules[left], 0, join);
    Link(view.modules[right], 0, join);
    previous = join;
  }
  const AnalysisReport report = VerifyGraph(view, {}, {});
  EXPECT_TRUE(report.proven());
  EXPECT_EQ(report.paths_covered, std::uint64_t{1} << kLayers);
}

TEST(VerifierTest, WireShrinkIsTrackedButNeverViolates) {
  EffectSignature shrink;
  shrink.wire_bytes_delta_max = -42;  // payload deletion
  const AnalysisReport report = VerifyGraph(SingleView(shrink), {}, {});
  EXPECT_TRUE(report.proven());
  EXPECT_EQ(report.bounds.wire_bytes_delta_min, -42);
}

TEST(VerifierTest, StatefulModulesCountedOnWorstPath) {
  GraphView view;
  view.entry = 0;
  EffectSignature stateful;
  stateful.stateful = true;
  stateful.overhead_bytes_max = 10;
  EffectSignature stateless;
  stateless.stateful = false;
  view.modules.push_back(Leaf("a", stateless));
  view.modules.push_back(Leaf("b", stateful));
  Link(view.modules[0], 0, 1);
  const AnalysisReport report = VerifyGraph(view, {}, {});
  EXPECT_TRUE(report.proven());
  EXPECT_EQ(report.bounds.stateful_modules, 1u);
}

TEST(VerifierTest, ContextGuaranteeDischargesEdgeRequirement) {
  EffectSignature edge_only;
  edge_only.context = ContextRequirement::kCustomerEdgeOnly;
  const GraphView view = SingleView(edge_only);

  AnalysisContext transit;  // default: transit reachable
  ASSERT_EQ(VerifyGraph(view, transit, {}).status, AnalysisStatus::kRejected);

  AnalysisContext edge;
  edge.customer_edge_guaranteed = true;
  EXPECT_TRUE(VerifyGraph(view, edge, {}).proven());
}

TEST(VerifierTest, ReportsEveryViolationNotJustTheFirst) {
  // One graph, two independent defects: a header writer AND a per-path
  // overhead blowout. Both must be reported.
  GraphView view;
  view.entry = 0;
  EffectSignature writer;
  writer.header_writes = kNoHeaderWrites | HeaderField::kTtl;
  EffectSignature chatty;
  chatty.overhead_bytes_max = 1000;
  view.modules.push_back(Leaf("w", writer));
  view.modules.push_back(Leaf("c", chatty));
  Link(view.modules[0], 0, 1);
  const AnalysisReport report = VerifyGraph(view, {}, {});
  ASSERT_EQ(report.status, AnalysisStatus::kRejected);
  ASSERT_EQ(report.violations.size(), 2u);
  EXPECT_EQ(report.violations[0].kind, InvariantKind::kHeaderMutation);
  EXPECT_EQ(report.violations[1].kind, InvariantKind::kByteAmplification);
}

TEST(VerifierTest, ReportJsonRoundTripsHostileModuleNames) {
  // Violation details embed module type names verbatim; a name carrying
  // quotes, backslashes, newlines and raw control bytes must still yield
  // parseable JSON with the detail string intact after a round trip.
  GraphView view;
  view.entry = 0;
  view.modules.push_back(
      Leaf("evil\"name\\with\nnewline\tand\x01control"));
  view.modules[0].ports[0].wired = false;  // forces a detail mentioning it
  const AnalysisReport report = VerifyGraph(view, {}, {});
  ASSERT_EQ(report.status, AnalysisStatus::kRejected);

  const std::string json = report.ToJson();
  const auto parsed = obs::JsonParse(json);
  ASSERT_TRUE(parsed.has_value()) << json;
  const obs::JsonValue* violations = parsed->Get("violations");
  ASSERT_NE(violations, nullptr);
  ASSERT_FALSE(violations->array.empty());
  EXPECT_EQ(violations->array.front().GetString("detail"),
            report.violations.front().detail);
}

TEST(VerifierTest, EmptyGraphIsRejectedNotCrashed) {
  // Degenerate input: no modules at all. The verifier must reject
  // cleanly ("no entry"), not index into an empty module table.
  const AnalysisReport report = VerifyGraph(GraphView{}, {}, {});
  ASSERT_EQ(report.status, AnalysisStatus::kRejected);
  EXPECT_EQ(report.modules_examined, 0u);
  EXPECT_EQ(report.violations.front().kind, InvariantKind::kUnwiredPort);
  EXPECT_TRUE(report.violations.front().witness_path.empty());
}

TEST(VerifierTest, IsolatedModuleOffTheEntryPathIsIgnored) {
  // A module no path reaches cannot affect any packet: the proof covers
  // the reachable subgraph only and the stray module is not examined.
  GraphView view;
  view.entry = 0;
  view.modules.push_back(Leaf("live"));
  EffectSignature nasty;
  nasty.rate_factor_max = 100.0;  // would be rejected if reachable
  view.modules.push_back(Leaf("stray", nasty));
  const AnalysisReport report = VerifyGraph(view, {}, {});
  EXPECT_TRUE(report.proven()) << report.ToString();
  EXPECT_EQ(report.modules_examined, 1u);
  EXPECT_DOUBLE_EQ(report.bounds.rate_factor, 1.0);
}

TEST(VerifierTest, EntryModuleWithNoPortsHasNoTerminal) {
  // "All entry, no terminal": the entry module exposes no output port,
  // so no packet can ever leave the graph — a structural rejection.
  GraphView view;
  view.entry = 0;
  ModuleView mv;
  mv.type_name = "sink";
  view.modules.push_back(std::move(mv));
  const AnalysisReport report = VerifyGraph(view, {}, {});
  ASSERT_EQ(report.status, AnalysisStatus::kRejected);
  EXPECT_EQ(report.violations.front().kind, InvariantKind::kUnwiredPort);
  EXPECT_EQ(report.violations.front().witness_path, (std::vector<int>{0}));
}

TEST(VerifierTest, EnumNamesAreStable) {
  EXPECT_EQ(InvariantKindName(InvariantKind::kRateAmplification),
            "rate-amplification");
  EXPECT_EQ(InvariantKindName(InvariantKind::kByteAmplification),
            "byte-amplification");
  EXPECT_EQ(InvariantKindName(InvariantKind::kHeaderMutation),
            "header-mutation");
  EXPECT_EQ(InvariantKindName(InvariantKind::kContextViolation),
            "context-violation");
  EXPECT_EQ(InvariantKindName(InvariantKind::kUnwiredPort), "unwired-port");
  EXPECT_EQ(InvariantKindName(InvariantKind::kNonTerminating),
            "non-terminating");
  EXPECT_EQ(AnalysisStatusName(AnalysisStatus::kNotRun), "not-run");
  EXPECT_EQ(AnalysisStatusName(AnalysisStatus::kProven), "proven");
  EXPECT_EQ(AnalysisStatusName(AnalysisStatus::kRejected), "rejected");
  EXPECT_EQ(ContextRequirementName(ContextRequirement::kNone), "none");
  EXPECT_EQ(ContextRequirementName(ContextRequirement::kCustomerEdgeOnly),
            "customer-edge-only");
}

}  // namespace
}  // namespace adtc::analysis
