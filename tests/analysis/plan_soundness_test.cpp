// Differential test of the plan verifier against the packet simulator:
// a statically *proven* plan (every attack ingress->victim path crosses a
// filter) must hold up dynamically — with honest modules, no attack
// packet reaches the victim, so the plan-soundness oracle
// (Tcsp::ReportUncoveredPathTraffic) never fires. The oracle itself is
// then exercised by making the proof stale (disarming the firewall) and
// reporting the ground truth the harness can see.
#include <gtest/gtest.h>

#include "attack/agent.h"
#include "core/tcsp.h"
#include "host/client.h"
#include "host/server.h"
#include "testutil.h"

namespace adtc {
namespace {

using testing::SmallWorld;

LinkParams FastLink() {
  return LinkParams{GigabitsPerSecond(1), Milliseconds(1), 1024 * 1024};
}

/// A random transit-stub world with full ISP coverage (one NMS per AS), a
/// victim server on a stub, and a UDP flood from several other stubs.
struct PlanWorld : SmallWorld {
  NumberAuthority authority;
  Tcsp tcsp;
  std::vector<std::unique_ptr<IspNms>> nmses;
  Server* server;
  NodeId server_as;
  OwnershipCertificate cert;

  explicit PlanWorld(std::uint64_t seed)
      : SmallWorld(seed), tcsp(net, authority, "plan-key") {
    AllocateTopologyPrefixes(authority, net.node_count());
    for (NodeId node = 0; node < net.node_count(); ++node) {
      auto nms = std::make_unique<IspNms>("isp-" + std::to_string(node),
                                          net, &tcsp.validator());
      nms->ManageNode(node);
      tcsp.EnrollIsp(nms.get());
      nmses.push_back(std::move(nms));
    }
    server_as = topo.stub_nodes[0];
    server = SpawnHost<Server>(net, server_as, FastLink());
    auto result = tcsp.Register(AsOrgName(server_as), {NodePrefix(server_as)});
    EXPECT_TRUE(result.ok());
    cert = result.value();
  }

  DeploymentReport DeployDenyUdp() {
    ServiceRequest request;
    request.kind = ServiceKind::kDistributedFirewall;
    request.placement = PlacementPolicy::kAllManagedNodes;
    request.control_scope = {NodePrefix(server_as)};
    MatchRule deny_udp;
    deny_udp.proto = Protocol::kUdp;
    request.deny_rules = {deny_udp};
    return tcsp.DeployService(cert, request);
  }

  /// Attaches flood agents (idle) — the ingress points the plan verifier
  /// sweeps are routers with attached hosts, so agents must exist before
  /// the deployment is admitted for their paths to be proven.
  void SpawnFloodAgents(std::size_t sources, double rate_pps) {
    AttackDirective directive;
    directive.type = AttackType::kDirectFlood;
    directive.victim = server->address();
    directive.flood_proto = Protocol::kUdp;
    directive.spoof = SpoofMode::kNone;
    directive.rate_pps = rate_pps;
    directive.duration = Seconds(60);
    for (std::size_t i = 0; i < sources; ++i) {
      const NodeId node =
          topo.stub_nodes[(i * 3 + 1) % topo.stub_nodes.size()];
      if (node == server_as) continue;
      agents.push_back(
          SpawnHost<AgentHost>(net, node, FastLink(), directive));
    }
  }

  void StartFloods() {
    for (AgentHost* agent : agents) agent->StartFlood();
  }

  std::vector<AgentHost*> agents;
};

TEST(PlanSoundnessTest, ProvenPlansNeverTripTheRuntimeGuard) {
  // Random topologies, honest modules: whenever the verifier proves
  // coverage, ground truth must agree — zero attack packets delivered
  // anywhere, so the harness never has cause to report uncovered-path
  // traffic and the soundness counter stays zero.
  for (const std::uint64_t seed : {11ULL, 29ULL, 63ULL}) {
    PlanWorld world(seed);
    world.SpawnFloodAgents(/*sources=*/6, /*rate_pps=*/100.0);
    const DeploymentReport report = world.DeployDenyUdp();
    ASSERT_TRUE(report.status.ok()) << report.status.ToString();
    ASSERT_TRUE(report.plan.proven())
        << "seed " << seed << ": " << report.plan.ToString();
    EXPECT_GT(report.plan.paths_examined, 0u);
    EXPECT_EQ(world.tcsp.validator().analysis_stats().plans_verified, 1u);
    EXPECT_EQ(world.tcsp.validator().analysis_stats().plans_rejected, 0u);

    world.StartFloods();
    world.net.Run(Seconds(2));

    // Ground truth: the flood only targets the victim, so any delivered
    // attack-class packet is exactly the event the coverage proof says
    // cannot happen. Report it if seen — the assertion is that honest
    // modules never produce it.
    const std::uint64_t leaked =
        world.net.metrics().delivered(TrafficClass::kAttack);
    if (leaked > 0) {
      world.tcsp.ReportUncoveredPathTraffic(world.cert.subscriber,
                                            world.server_as);
    }
    EXPECT_EQ(leaked, 0u) << "seed " << seed;
    EXPECT_EQ(
        world.tcsp.validator().analysis_stats().plan_soundness_violations,
        0u)
        << "seed " << seed;
  }
}

TEST(PlanSoundnessTest, StaleProofTripsTheOracleWhenTrafficLeaks) {
  PlanWorld world(11);
  world.SpawnFloodAgents(/*sources=*/6, /*rate_pps=*/100.0);
  const DeploymentReport report = world.DeployDenyUdp();
  ASSERT_TRUE(report.status.ok());
  ASSERT_TRUE(report.plan.proven()) << report.plan.ToString();

  // Disarm every firewall rule: the modules now pass the traffic the
  // admission-time proof assumed filtered.
  ADTC_ASSERT_OK(
      world.tcsp.SetFirewallRulesActive(world.cert.subscriber, false));
  world.StartFloods();
  world.net.Run(Seconds(2));

  const std::uint64_t leaked =
      world.net.metrics().delivered(TrafficClass::kAttack);
  ASSERT_GT(leaked, 0u);  // ground truth contradicts the proof

  EXPECT_TRUE(world.tcsp.ReportUncoveredPathTraffic(world.cert.subscriber,
                                                    world.server_as));
  EXPECT_EQ(
      world.tcsp.validator().analysis_stats().plan_soundness_violations, 1u);
  // The contradiction is fanned out to every enrolled NMS event log.
  for (const auto& nms : world.nmses) {
    EXPECT_EQ(nms->events().CountOf(EventKind::kPlanSoundness), 1u);
  }
}

TEST(PlanSoundnessTest, OracleIgnoresUnprovenSubscribers) {
  PlanWorld world(11);
  // No coverage-proven plan on record for this subscriber: reports are
  // no-ops (false, nothing counted).
  EXPECT_FALSE(world.tcsp.ReportUncoveredPathTraffic(world.cert.subscriber,
                                                     world.server_as));
  EXPECT_EQ(
      world.tcsp.validator().analysis_stats().plan_soundness_violations, 0u);

  // And a removed service retires its proof.
  ASSERT_TRUE(world.DeployDenyUdp().status.ok());
  ADTC_ASSERT_OK(world.tcsp.RemoveService(world.cert.subscriber));
  EXPECT_FALSE(world.tcsp.ReportUncoveredPathTraffic(world.cert.subscriber,
                                                     world.server_as));
}

}  // namespace
}  // namespace adtc
