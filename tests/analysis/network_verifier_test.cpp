// Unit tests for the network-wide deployment-plan verifier, driving it
// through hand-built NetworkView/PlanView snapshots — no Network or
// control plane involved, so every rejection class (uncovered path,
// cross-device loop, composed amplification/overhead, budget overrun)
// and the greedy feasible-placement suggestion can be exercised exactly.
#include "analysis/network_verifier.h"

#include <gtest/gtest.h>

#include "obs/json.h"

namespace adtc::analysis {
namespace {

/// A line topology 0 - 1 - ... - (n-1): next hop toward a higher node is
/// +1, toward a lower node -1. The simplest fully-routed view.
NetworkView LineNetwork(std::size_t n) {
  NetworkView net;
  net.node_count = n;
  net.next_hop.assign(n * n, -1);
  for (std::size_t from = 0; from < n; ++from) {
    for (std::size_t to = 0; to < n; ++to) {
      if (from == to) continue;
      net.next_hop[from * n + to] =
          static_cast<int>(to > from ? from + 1 : from - 1);
    }
  }
  return net;
}

/// A single pass-or-drop filter module: port 0 accepts, port 1 drops.
GraphView FilterGraph(double rate = 1.0, std::uint32_t overhead = 0) {
  GraphView view;
  view.entry = 0;
  ModuleView mv;
  mv.type_name = "match";
  mv.signature.rate_factor_max = rate;
  mv.signature.overhead_bytes_max = overhead;
  mv.ports.resize(2);
  for (PortView& pv : mv.ports) {
    pv.wired = true;
    pv.is_terminal = true;
  }
  mv.ports[1].terminal_drop = true;
  view.modules.push_back(std::move(mv));
  return view;
}

/// Accept-only observation module (no drop terminal anywhere).
GraphView ObserveGraph(double rate = 1.0, std::uint32_t overhead = 0) {
  GraphView view;
  view.entry = 0;
  ModuleView mv;
  mv.type_name = "counter";
  mv.signature.rate_factor_max = rate;
  mv.signature.overhead_bytes_max = overhead;
  mv.ports.resize(1);
  mv.ports[0].wired = true;
  mv.ports[0].is_terminal = true;
  view.modules.push_back(std::move(mv));
  return view;
}

PlacementView Place(int node, GraphView graph, std::uint32_t rules = 1) {
  PlacementView placement;
  placement.node = node;
  placement.graph = std::move(graph);
  placement.rules_required = rules;
  return placement;
}

bool HasViolation(const PlanReport& report, PlanInvariantKind kind) {
  for (const PlanViolation& violation : report.violations) {
    if (violation.kind == kind) return true;
  }
  return false;
}

const PlanViolation& FindViolation(const PlanReport& report,
                                   PlanInvariantKind kind) {
  for (const PlanViolation& violation : report.violations) {
    if (violation.kind == kind) return violation;
  }
  static const PlanViolation missing;
  return missing;
}

TEST(NetworkVerifierTest, PathQueriesFollowTheNextHopTable) {
  const NetworkView net = LineNetwork(4);
  EXPECT_EQ(net.NextHop(0, 3), 1);
  EXPECT_EQ(net.NextHop(3, 0), 2);
  EXPECT_EQ(net.Path(0, 3), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(net.Path(2, 2), (std::vector<int>{2}));
  EXPECT_TRUE(net.Path(0, 9).empty());  // out of range
}

TEST(NetworkVerifierTest, LoopingNextHopTableYieldsEmptyPath) {
  NetworkView net = LineNetwork(3);
  net.next_hop[0 * 3 + 2] = 1;
  net.next_hop[1 * 3 + 2] = 0;  // 0 <-> 1 orbit, never reaching 2
  EXPECT_TRUE(net.Path(0, 2).empty());
}

TEST(NetworkVerifierTest, ProvesCoveredPlan) {
  const NetworkView net = LineNetwork(4);
  PlanView plan;
  plan.placements.push_back(Place(2, FilterGraph()));
  plan.ingress_nodes = {0, 1};
  plan.victim_nodes = {3};
  const PlanReport report = VerifyDeploymentPlan(net, plan);
  EXPECT_TRUE(report.proven()) << report.ToString();
  EXPECT_EQ(report.paths_examined, 2u);
  EXPECT_EQ(report.placements_examined, 1u);
  EXPECT_DOUBLE_EQ(report.bounds.rate_product_max, 1.0);
}

TEST(NetworkVerifierTest, EmptyPlanWithNoPathsIsProven) {
  const PlanReport report = VerifyDeploymentPlan(NetworkView{}, PlanView{});
  EXPECT_TRUE(report.proven());
  EXPECT_EQ(report.paths_examined, 0u);
}

TEST(NetworkVerifierTest, UncoveredPathIsRejectedWithWitness) {
  const NetworkView net = LineNetwork(5);
  PlanView plan;
  // Filter at node 1 covers ingress 0 but not ingress 3 -> victim 4.
  plan.placements.push_back(Place(1, FilterGraph()));
  plan.ingress_nodes = {0, 3};
  plan.victim_nodes = {4};
  const PlanReport report = VerifyDeploymentPlan(net, plan);
  ASSERT_EQ(report.status, PlanStatus::kRejected);
  const PlanViolation& violation =
      FindViolation(report, PlanInvariantKind::kUncoveredPath);
  EXPECT_EQ(violation.kind, PlanInvariantKind::kUncoveredPath);
  EXPECT_EQ(violation.witness_nodes, (std::vector<int>{3, 4}));
  EXPECT_EQ(PlanWitnessToString(net, violation.witness_nodes),
            "AS3 -> AS4");
}

TEST(NetworkVerifierTest, ObservationGraphDoesNotCover) {
  const NetworkView net = LineNetwork(3);
  PlanView plan;
  plan.placements.push_back(Place(1, ObserveGraph()));
  plan.ingress_nodes = {0};
  plan.victim_nodes = {2};
  const PlanReport report = VerifyDeploymentPlan(net, plan);
  ASSERT_EQ(report.status, PlanStatus::kRejected);
  EXPECT_TRUE(HasViolation(report, PlanInvariantKind::kUncoveredPath));
}

TEST(NetworkVerifierTest, CoverageNotRequiredAcceptsObservationPlan) {
  const NetworkView net = LineNetwork(3);
  PlanView plan;
  plan.placements.push_back(Place(1, ObserveGraph()));
  plan.ingress_nodes = {0};
  plan.victim_nodes = {2};
  plan.require_coverage = false;
  EXPECT_TRUE(VerifyDeploymentPlan(net, plan).proven());
}

TEST(NetworkVerifierTest, FilterAtIngressOrVictimCovers) {
  const NetworkView net = LineNetwork(3);
  for (const int filter_node : {0, 2}) {
    PlanView plan;
    plan.placements.push_back(Place(filter_node, FilterGraph()));
    plan.ingress_nodes = {0};
    plan.victim_nodes = {2};
    EXPECT_TRUE(VerifyDeploymentPlan(net, plan).proven())
        << "filter at " << filter_node;
  }
}

TEST(NetworkVerifierTest, CrossDeviceRedirectLoopIsRejected) {
  const NetworkView net = LineNetwork(4);
  PlanView plan;
  PlacementView a = Place(1, FilterGraph());
  a.redirect_targets = {2};
  PlacementView b = Place(2, FilterGraph());
  b.redirect_targets = {1};  // 1 -> 2 -> 1 across devices
  plan.placements.push_back(std::move(a));
  plan.placements.push_back(std::move(b));
  plan.ingress_nodes = {0};
  plan.victim_nodes = {3};
  const PlanReport report = VerifyDeploymentPlan(net, plan);
  ASSERT_EQ(report.status, PlanStatus::kRejected);
  const PlanViolation& violation =
      FindViolation(report, PlanInvariantKind::kCrossDeviceLoop);
  EXPECT_EQ(violation.kind, PlanInvariantKind::kCrossDeviceLoop);
  EXPECT_EQ(violation.witness_nodes, (std::vector<int>{1, 2, 1}));
}

TEST(NetworkVerifierTest, SelfRedirectIsALoop) {
  const NetworkView net = LineNetwork(2);
  PlanView plan;
  PlacementView a = Place(0, FilterGraph());
  a.redirect_targets = {0};
  plan.placements.push_back(std::move(a));
  plan.ingress_nodes = {0};
  plan.victim_nodes = {1};
  EXPECT_TRUE(HasViolation(VerifyDeploymentPlan(net, plan),
                           PlanInvariantKind::kCrossDeviceLoop));
}

TEST(NetworkVerifierTest, AcyclicRedirectChainIsAccepted) {
  const NetworkView net = LineNetwork(4);
  PlanView plan;
  PlacementView a = Place(0, FilterGraph());
  a.redirect_targets = {1};
  PlacementView b = Place(1, FilterGraph());
  b.redirect_targets = {2, 3};
  plan.placements.push_back(std::move(a));
  plan.placements.push_back(std::move(b));
  plan.ingress_nodes = {0};
  plan.victim_nodes = {3};
  EXPECT_TRUE(VerifyDeploymentPlan(net, plan).proven());
}

TEST(NetworkVerifierTest, ComposedRateProductAboveOneIsRejected) {
  const NetworkView net = LineNetwork(4);
  PlanView plan;
  // The per-graph bound floors at x1 (a worst-case prefix max), so the
  // composed product toward the victim is 1.5 x 1.0 = 1.5 > 1.
  plan.placements.push_back(Place(1, FilterGraph(/*rate=*/1.5)));
  plan.placements.push_back(Place(2, FilterGraph(/*rate=*/0.9)));
  plan.ingress_nodes = {0};
  plan.victim_nodes = {3};
  const PlanReport report = VerifyDeploymentPlan(net, plan);
  ASSERT_EQ(report.status, PlanStatus::kRejected);
  const PlanViolation& violation =
      FindViolation(report, PlanInvariantKind::kComposedRateAmplification);
  EXPECT_EQ(violation.kind, PlanInvariantKind::kComposedRateAmplification);
  EXPECT_EQ(violation.witness_nodes, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_NEAR(report.bounds.rate_product_max, 1.5, 1e-9);
}

TEST(NetworkVerifierTest, ShrinkingCompositionStaysProven) {
  const NetworkView net = LineNetwork(4);
  PlanView plan;
  plan.placements.push_back(Place(1, FilterGraph(/*rate=*/0.5)));
  plan.placements.push_back(Place(2, FilterGraph(/*rate=*/1.0)));
  plan.ingress_nodes = {0};
  plan.victim_nodes = {3};
  const PlanReport report = VerifyDeploymentPlan(net, plan);
  EXPECT_TRUE(report.proven());
  EXPECT_DOUBLE_EQ(report.bounds.rate_product_max, 1.0);  // ingress 0 only
}

TEST(NetworkVerifierTest, ComposedOverheadAboveAllowanceIsRejected) {
  const NetworkView net = LineNetwork(5);
  PlanView plan;
  // 3 x 100 bytes: each under the per-graph 256 allowance, 300 composed.
  for (int node : {1, 2, 3}) {
    plan.placements.push_back(
        Place(node, FilterGraph(1.0, /*overhead=*/100)));
  }
  plan.ingress_nodes = {0};
  plan.victim_nodes = {4};
  const PlanReport report = VerifyDeploymentPlan(net, plan);
  ASSERT_EQ(report.status, PlanStatus::kRejected);
  EXPECT_TRUE(HasViolation(report, PlanInvariantKind::kComposedOverhead));
  EXPECT_EQ(report.bounds.overhead_bytes_max, 300u);
}

TEST(NetworkVerifierTest, OverBudgetRouterIsRejectedWithSuggestion) {
  const NetworkView net = LineNetwork(4);
  PlanView plan;
  // All 8 rules piled on router 1, which only budgets 4; routers 2 and 3
  // have room.
  plan.placements.push_back(Place(1, FilterGraph(), /*rules=*/8));
  plan.ingress_nodes = {0};
  plan.victim_nodes = {3};
  plan.budgets.assign(4, FilterBudget{16});
  plan.budgets[1].capacity = 4;
  const PlanReport report = VerifyDeploymentPlan(net, plan);
  ASSERT_EQ(report.status, PlanStatus::kRejected);
  const PlanViolation& violation =
      FindViolation(report, PlanInvariantKind::kBudgetExceeded);
  EXPECT_EQ(violation.kind, PlanInvariantKind::kBudgetExceeded);
  EXPECT_EQ(violation.witness_nodes, (std::vector<int>{1}));
  EXPECT_EQ(report.bounds.filters_required_max, 8u);
  // Greedy suggestion: the path 0->3 gets its filter from the node
  // closest to the source with spare room — node 0 (capacity 16 >= 8).
  ASSERT_EQ(report.suggested_placements.size(), 1u);
  EXPECT_EQ(report.suggested_placements[0].node, 0);
  EXPECT_EQ(report.suggested_placements[0].rules_required, 8u);
}

TEST(NetworkVerifierTest, NoSuggestionWhenNoBudgetFitsAnywhere) {
  const NetworkView net = LineNetwork(3);
  PlanView plan;
  plan.placements.push_back(Place(1, FilterGraph(), /*rules=*/8));
  plan.ingress_nodes = {0};
  plan.victim_nodes = {2};
  plan.budgets.assign(3, FilterBudget{2});  // nothing holds 8 rules
  const PlanReport report = VerifyDeploymentPlan(net, plan);
  ASSERT_EQ(report.status, PlanStatus::kRejected);
  EXPECT_TRUE(HasViolation(report, PlanInvariantKind::kBudgetExceeded));
  EXPECT_TRUE(report.suggested_placements.empty());
}

TEST(NetworkVerifierTest, SharedRouterSumsRuleDemand) {
  const NetworkView net = LineNetwork(3);
  PlanView plan;
  plan.placements.push_back(Place(1, FilterGraph(), /*rules=*/3));
  plan.placements.push_back(Place(1, FilterGraph(), /*rules=*/3));
  plan.ingress_nodes = {0};
  plan.victim_nodes = {2};
  plan.budgets.assign(3, FilterBudget{5});
  const PlanReport report = VerifyDeploymentPlan(net, plan);
  EXPECT_TRUE(HasViolation(report, PlanInvariantKind::kBudgetExceeded));
  EXPECT_EQ(report.bounds.filters_required_max, 6u);
}

TEST(NetworkVerifierTest, MalformedPlacementNodeIsReported) {
  const NetworkView net = LineNetwork(2);
  PlanView plan;
  plan.placements.push_back(Place(7, FilterGraph()));
  plan.ingress_nodes = {0};
  plan.victim_nodes = {1};
  const PlanReport report = VerifyDeploymentPlan(net, plan);
  ASSERT_EQ(report.status, PlanStatus::kRejected);
  EXPECT_TRUE(HasViolation(report, PlanInvariantKind::kMalformedPlan));
}

TEST(NetworkVerifierTest, NonTerminatingPlacementGraphIsMalformed) {
  const NetworkView net = LineNetwork(2);
  GraphView looping;
  looping.entry = 0;
  ModuleView mv;
  mv.type_name = "m";
  mv.ports.resize(1);
  mv.ports[0].wired = true;
  mv.ports[0].next = 0;  // self loop
  looping.modules.push_back(std::move(mv));
  PlanView plan;
  plan.placements.push_back(Place(0, std::move(looping)));
  plan.ingress_nodes = {0};
  plan.victim_nodes = {1};
  EXPECT_TRUE(HasViolation(VerifyDeploymentPlan(net, plan),
                           PlanInvariantKind::kMalformedPlan));
}

TEST(NetworkVerifierTest, UnreachableIngressIsNotAnAttackPath) {
  NetworkView net = LineNetwork(4);
  // Disconnect node 0 from everything.
  for (std::size_t to = 0; to < 4; ++to) net.next_hop[0 * 4 + to] = -1;
  PlanView plan;
  plan.placements.push_back(Place(2, FilterGraph()));
  plan.ingress_nodes = {0, 1};
  plan.victim_nodes = {3};
  const PlanReport report = VerifyDeploymentPlan(net, plan);
  EXPECT_TRUE(report.proven());
  EXPECT_EQ(report.paths_examined, 1u);  // only 1 -> 3
}

TEST(NetworkVerifierTest, ReportRoundTripsThroughJson) {
  const NetworkView net = LineNetwork(5);
  PlanView plan;
  plan.placements.push_back(Place(1, FilterGraph(/*rate=*/2.0)));
  plan.ingress_nodes = {0, 3};
  plan.victim_nodes = {4};
  plan.budgets.assign(5, FilterBudget{0});
  const PlanReport report = VerifyDeploymentPlan(net, plan);
  ASSERT_EQ(report.status, PlanStatus::kRejected);
  const std::string json = report.ToJson();
  EXPECT_TRUE(obs::JsonSyntaxValid(json)) << json;
  EXPECT_NE(json.find("\"status\":\"rejected\""), std::string::npos);
  EXPECT_NE(report.ToString().find("rejected"), std::string::npos);
}

TEST(NetworkVerifierTest, HandBuiltReportJsonRoundTripsHostileDetails) {
  // ToJson must escape whatever ends up in a violation detail; a
  // hand-built report with quotes, backslashes, newlines and raw control
  // bytes round-trips through the obs JSON parser bit-for-bit.
  PlanReport report;
  report.status = PlanStatus::kRejected;
  PlanViolation violation;
  violation.kind = PlanInvariantKind::kMalformedPlan;
  violation.detail = "quote\" backslash\\ newline\n tab\t ctl\x02 end";
  violation.witness_nodes = {1, 2};
  report.violations.push_back(violation);

  const std::string json = report.ToJson();
  const auto parsed = obs::JsonParse(json);
  ASSERT_TRUE(parsed.has_value()) << json;
  const obs::JsonValue* violations = parsed->Get("violations");
  ASSERT_NE(violations, nullptr);
  ASSERT_EQ(violations->array.size(), 1u);
  EXPECT_EQ(violations->array.front().GetString("detail"), violation.detail);
  EXPECT_EQ(violations->array.front().GetString("kind"), "malformed-plan");
}

TEST(NetworkVerifierTest, EnumNamesAreStable) {
  EXPECT_EQ(PlanInvariantKindName(PlanInvariantKind::kUncoveredPath),
            "uncovered-path");
  EXPECT_EQ(PlanInvariantKindName(PlanInvariantKind::kBudgetExceeded),
            "budget-exceeded");
  EXPECT_EQ(PlanStatusName(PlanStatus::kProven), "proven");
  EXPECT_EQ(PlanStatusName(PlanStatus::kNotRun), "not-run");
}

}  // namespace
}  // namespace adtc::analysis
