#include <gtest/gtest.h>

#include "attack/spoof.h"
#include "attack/directive.h"
#include "common/units.h"
#include "core/safety.h"
#include "core/service.h"
#include "net/metrics.h"

namespace adtc {
namespace {

TEST(UnitsTest, TimeConstructorsCompose) {
  EXPECT_EQ(Seconds(1), Milliseconds(1000));
  EXPECT_EQ(Milliseconds(1), Microseconds(1000));
  EXPECT_EQ(Microseconds(1), Nanoseconds(1000));
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(3)), 3.0);
  EXPECT_DOUBLE_EQ(ToMilliseconds(Seconds(2)), 2000.0);
}

TEST(UnitsTest, RateConstructorsCompose) {
  EXPECT_EQ(GigabitsPerSecond(1), MegabitsPerSecond(1000));
  EXPECT_EQ(MegabitsPerSecond(1), KilobitsPerSecond(1000));
}

TEST(UnitsTest, TransmissionDelayExact) {
  // 1500 bytes at 1 Gbps = 12 us.
  EXPECT_EQ(TransmissionDelay(1500, GigabitsPerSecond(1)),
            Microseconds(12));
  // 1000 bytes at 1 Mbps = 8 ms.
  EXPECT_EQ(TransmissionDelay(1000, MegabitsPerSecond(1)),
            Milliseconds(8));
}

TEST(UnitsTest, TransmissionDelayRoundsUp) {
  // 1 byte at 3 bits/s: 8/3 s -> ceil to whole ns.
  const SimDuration delay = TransmissionDelay(1, BitsPerSecond(3));
  EXPECT_GE(delay, Nanoseconds(2'666'666'666));
  EXPECT_LE(delay, Nanoseconds(2'666'666'667));
}

TEST(MetricsTest, AccessorsSumDropReasons) {
  Metrics metrics;
  Packet p;
  p.klass = TrafficClass::kAttack;
  p.size_bytes = 100;
  metrics.RecordSend(p);
  metrics.RecordDrop(p, DropReason::kQueueFull);
  metrics.RecordDrop(p, DropReason::kFiltered);
  EXPECT_EQ(metrics.sent(TrafficClass::kAttack), 1u);
  EXPECT_EQ(metrics.dropped(TrafficClass::kAttack), 2u);
  EXPECT_EQ(metrics.dropped(TrafficClass::kAttack, DropReason::kQueueFull),
            1u);
  EXPECT_EQ(metrics.dropped(TrafficClass::kAttack, DropReason::kFiltered),
            1u);
  EXPECT_EQ(metrics.dropped(TrafficClass::kLegitimate), 0u);
}

TEST(MetricsTest, FilteredAttackDropsFeedDistanceStats) {
  Metrics metrics;
  Packet p;
  p.klass = TrafficClass::kAttack;
  p.hops = 3;
  metrics.RecordDrop(p, DropReason::kFiltered);
  p.hops = 5;
  metrics.RecordDrop(p, DropReason::kFiltered);
  // Queue drops do not count toward filter-distance.
  p.hops = 100;
  metrics.RecordDrop(p, DropReason::kQueueFull);
  EXPECT_EQ(metrics.attack_drop_hops.count(), 2u);
  EXPECT_DOUBLE_EQ(metrics.attack_drop_hops.mean(), 4.0);
}

TEST(MetricsTest, ByteHopsSplitByClass) {
  Metrics metrics;
  Packet attack;
  attack.klass = TrafficClass::kAttack;
  attack.size_bytes = 100;
  Packet reflected = attack;
  reflected.klass = TrafficClass::kReflected;
  Packet legit = attack;
  legit.klass = TrafficClass::kLegitimate;
  Packet mgmt = attack;
  mgmt.klass = TrafficClass::kManagement;
  metrics.RecordHop(attack);
  metrics.RecordHop(reflected);
  metrics.RecordHop(legit);
  metrics.RecordHop(mgmt);
  EXPECT_EQ(metrics.attack_byte_hops, 200u);  // attack + reflected
  EXPECT_EQ(metrics.legit_byte_hops, 100u);
}

TEST(LinkStatsTest, UtilisationBounded) {
  LinkStats stats;
  stats.busy_time = Milliseconds(500);
  EXPECT_DOUBLE_EQ(stats.Utilisation(Seconds(1)), 0.5);
  EXPECT_DOUBLE_EQ(stats.Utilisation(0), 0.0);
}

TEST(NamesTest, EnumNamesAreStable) {
  EXPECT_EQ(DropReasonName(DropReason::kQueueFull), "queue_full");
  EXPECT_EQ(DropReasonName(DropReason::kHostOverload), "host_overload");
  EXPECT_EQ(LinkKindName(LinkKind::kAccessUp), "access-up");
  EXPECT_EQ(EventKindName(EventKind::kSafetyViolation),
            "safety_violation");
  EXPECT_EQ(AttackTypeName(AttackType::kReflector), "reflector");
  EXPECT_EQ(SpoofModeName(SpoofMode::kVictim), "victim");
  EXPECT_EQ(ServiceKindName(ServiceKind::kTraceback), "traceback");
  EXPECT_EQ(InvariantViolationName(InvariantViolation::kSizeIncreased),
            "size_increased");
}

}  // namespace
}  // namespace adtc
