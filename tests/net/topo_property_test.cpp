// Parameterised sweeps over topology-generator configurations: every
// generated world must be connected, role-partitioned, and structurally
// consistent (provider relations match link kinds).
#include <gtest/gtest.h>

#include "net/topo_gen.h"

namespace adtc {
namespace {

struct TopoCase {
  bool power_law;
  std::uint32_t size;
  std::uint64_t seed;
};

class TopologyPropertyTest : public ::testing::TestWithParam<TopoCase> {
 protected:
  void Build(Network& net, TopologyInfo& info) {
    const TopoCase& c = GetParam();
    if (c.power_law) {
      PowerLawParams params;
      params.node_count = c.size;
      info = BuildPowerLaw(net, params);
    } else {
      TransitStubParams params;
      params.transit_count = std::max<std::uint32_t>(3, c.size / 12);
      params.stub_count = c.size - params.transit_count;
      info = BuildTransitStub(net, params);
    }
  }
};

TEST_P(TopologyPropertyTest, FullyConnected) {
  Network net(GetParam().seed);
  TopologyInfo info;
  Build(net, info);
  for (NodeId node = 0; node < net.node_count(); ++node) {
    EXPECT_NE(net.HopDistance(0, node), UINT32_MAX) << "node " << node;
  }
}

TEST_P(TopologyPropertyTest, RolesPartitionNodes) {
  Network net(GetParam().seed);
  TopologyInfo info;
  Build(net, info);
  std::vector<int> seen(net.node_count(), 0);
  for (NodeId node : info.transit_nodes) seen[node]++;
  for (NodeId node : info.stub_nodes) seen[node]++;
  for (NodeId node = 0; node < net.node_count(); ++node) {
    EXPECT_EQ(seen[node], 1) << "node " << node;
  }
}

TEST_P(TopologyPropertyTest, ProviderRelationsMatchLinkKinds) {
  Network net(GetParam().seed);
  TopologyInfo info;
  Build(net, info);
  for (NodeId customer = 0; customer < net.node_count(); ++customer) {
    for (NodeId provider : info.providers[customer]) {
      bool found = false;
      for (const auto& [neighbour, link] : net.node(customer).neighbours) {
        if (neighbour == provider) {
          EXPECT_EQ(net.link(link).kind, LinkKind::kCustomerToProvider);
          found = true;
        }
      }
      EXPECT_TRUE(found) << customer << " -> " << provider;
      // And the reverse registration exists.
      const auto& customers = info.customers[provider];
      EXPECT_NE(std::find(customers.begin(), customers.end(), customer),
                customers.end());
    }
  }
}

TEST_P(TopologyPropertyTest, CustomerConesAreClosedUnderDescent) {
  Network net(GetParam().seed);
  TopologyInfo info;
  Build(net, info);
  // For a few roots: every member's customers are also members.
  for (NodeId root = 0; root < net.node_count();
       root += std::max<NodeId>(1, net.node_count() / 7)) {
    const auto cone = info.CustomerCone(root);
    std::vector<bool> in_cone(net.node_count(), false);
    for (NodeId member : cone) in_cone[member] = true;
    EXPECT_TRUE(in_cone[root]);
    for (NodeId member : cone) {
      for (NodeId customer : info.customers[member]) {
        EXPECT_TRUE(in_cone[customer])
            << customer << " missing from cone of " << root;
      }
    }
  }
}

TEST_P(TopologyPropertyTest, RoutingIsSymmetricInHopCount) {
  Network net(GetParam().seed);
  TopologyInfo info;
  Build(net, info);
  Rng rng(GetParam().seed);
  for (int i = 0; i < 50; ++i) {
    const NodeId a = static_cast<NodeId>(rng.NextBelow(net.node_count()));
    const NodeId b = static_cast<NodeId>(rng.NextBelow(net.node_count()));
    EXPECT_EQ(net.HopDistance(a, b), net.HopDistance(b, a));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TopologyPropertyTest,
    ::testing::Values(TopoCase{false, 40, 1}, TopoCase{false, 120, 2},
                      TopoCase{false, 300, 3}, TopoCase{true, 60, 4},
                      TopoCase{true, 200, 5}, TopoCase{true, 400, 6}),
    [](const ::testing::TestParamInfo<TopoCase>& info) {
      return std::string(info.param.power_law ? "PowerLaw" : "TransitStub") +
             std::to_string(info.param.size) + "_seed" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace adtc
