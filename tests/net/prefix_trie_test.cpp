#include "net/prefix_trie.h"

#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"

namespace adtc {
namespace {

TEST(PrefixTrieTest, ExactInsertAndMatch) {
  PrefixTrie<int> trie;
  trie.Insert(*Prefix::Parse("10.0.0.0/8"), 1);
  EXPECT_EQ(trie.size(), 1u);
  const int* value = trie.ExactMatch(*Prefix::Parse("10.0.0.0/8"));
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(*value, 1);
  EXPECT_EQ(trie.ExactMatch(*Prefix::Parse("10.0.0.0/9")), nullptr);
}

TEST(PrefixTrieTest, LongestMatchPrefersMostSpecific) {
  PrefixTrie<std::string> trie;
  trie.Insert(*Prefix::Parse("10.0.0.0/8"), "wide");
  trie.Insert(*Prefix::Parse("10.1.0.0/16"), "mid");
  trie.Insert(*Prefix::Parse("10.1.2.0/24"), "narrow");

  EXPECT_EQ(*trie.LongestMatch(*Ipv4Address::Parse("10.1.2.3")), "narrow");
  EXPECT_EQ(*trie.LongestMatch(*Ipv4Address::Parse("10.1.9.9")), "mid");
  EXPECT_EQ(*trie.LongestMatch(*Ipv4Address::Parse("10.200.0.1")), "wide");
  EXPECT_EQ(trie.LongestMatch(*Ipv4Address::Parse("11.0.0.1")), nullptr);
}

TEST(PrefixTrieTest, DefaultRouteSlashZero) {
  PrefixTrie<int> trie;
  trie.Insert(Prefix::Any(), 99);
  EXPECT_EQ(*trie.LongestMatch(Ipv4Address(0x12345678)), 99);
}

TEST(PrefixTrieTest, HostRoutes) {
  PrefixTrie<int> trie;
  trie.Insert(Prefix::Host(Ipv4Address(42)), 7);
  EXPECT_EQ(*trie.LongestMatch(Ipv4Address(42)), 7);
  EXPECT_EQ(trie.LongestMatch(Ipv4Address(43)), nullptr);
}

TEST(PrefixTrieTest, EraseRemovesOnlyExact) {
  PrefixTrie<int> trie;
  trie.Insert(*Prefix::Parse("10.0.0.0/8"), 1);
  trie.Insert(*Prefix::Parse("10.1.0.0/16"), 2);
  EXPECT_TRUE(trie.Erase(*Prefix::Parse("10.0.0.0/8")));
  EXPECT_FALSE(trie.Erase(*Prefix::Parse("10.0.0.0/8")));
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(*trie.LongestMatch(*Ipv4Address::Parse("10.1.2.3")), 2);
  EXPECT_EQ(trie.LongestMatch(*Ipv4Address::Parse("10.2.0.0")), nullptr);
}

TEST(PrefixTrieTest, InsertOverwrites) {
  PrefixTrie<int> trie;
  trie.Insert(*Prefix::Parse("10.0.0.0/8"), 1);
  trie.Insert(*Prefix::Parse("10.0.0.0/8"), 2);
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(*trie.LongestMatch(Ipv4Address(0x0a000001)), 2);
}

TEST(PrefixTrieTest, EntriesReturnsAll) {
  PrefixTrie<int> trie;
  trie.Insert(*Prefix::Parse("10.0.0.0/8"), 1);
  trie.Insert(*Prefix::Parse("192.168.0.0/16"), 2);
  trie.Insert(*Prefix::Parse("0.0.0.0/0"), 0);
  const auto entries = trie.Entries();
  ASSERT_EQ(entries.size(), 3u);
  // Lexicographic order: /0 first, then by bits.
  EXPECT_EQ(entries[0].first, Prefix::Any());
  EXPECT_EQ(entries[1].first, *Prefix::Parse("10.0.0.0/8"));
  EXPECT_EQ(entries[2].first, *Prefix::Parse("192.168.0.0/16"));
}

TEST(PrefixTrieTest, VisitCoveringWalksAncestors) {
  PrefixTrie<int> trie;
  trie.Insert(*Prefix::Parse("10.0.0.0/8"), 8);
  trie.Insert(*Prefix::Parse("10.1.0.0/16"), 16);
  trie.Insert(*Prefix::Parse("10.1.2.0/24"), 24);
  trie.Insert(*Prefix::Parse("10.9.0.0/16"), 99);  // not an ancestor

  std::vector<int> seen;
  trie.VisitCovering(*Prefix::Parse("10.1.2.0/24"),
                     [&seen](const Prefix&, const int& value) {
                       seen.push_back(value);
                       return true;
                     });
  EXPECT_EQ(seen, (std::vector<int>{8, 16, 24}));
}

TEST(PrefixTrieTest, VisitWithinWalksDescendants) {
  PrefixTrie<int> trie;
  trie.Insert(*Prefix::Parse("10.0.0.0/8"), 8);
  trie.Insert(*Prefix::Parse("10.1.0.0/16"), 16);
  trie.Insert(*Prefix::Parse("10.1.2.0/24"), 24);
  trie.Insert(*Prefix::Parse("11.0.0.0/8"), 11);

  std::vector<int> seen;
  trie.VisitWithin(*Prefix::Parse("10.0.0.0/8"),
                   [&seen](const Prefix&, const int& value) {
                     seen.push_back(value);
                     return true;
                   });
  EXPECT_EQ(seen, (std::vector<int>{8, 16, 24}));
}

TEST(PrefixTrieTest, VisitorEarlyStop) {
  PrefixTrie<int> trie;
  trie.Insert(*Prefix::Parse("10.0.0.0/8"), 1);
  trie.Insert(*Prefix::Parse("10.1.0.0/16"), 2);
  int visits = 0;
  const bool completed = trie.VisitCovering(
      *Prefix::Parse("10.1.0.0/16"), [&visits](const Prefix&, const int&) {
        visits++;
        return false;  // stop immediately
      });
  EXPECT_FALSE(completed);
  EXPECT_EQ(visits, 1);
}

TEST(PrefixTrieTest, ClearEmptiesEverything) {
  PrefixTrie<int> trie;
  trie.Insert(*Prefix::Parse("10.0.0.0/8"), 1);
  trie.Clear();
  EXPECT_TRUE(trie.empty());
  EXPECT_EQ(trie.LongestMatch(Ipv4Address(0x0a000001)), nullptr);
}

// Property test: trie longest-match agrees with brute force over random
// prefix sets.
TEST(PrefixTrieTest, PropertyMatchesBruteForce) {
  Rng rng(2024);
  for (int round = 0; round < 20; ++round) {
    PrefixTrie<std::size_t> trie;
    std::vector<Prefix> prefixes;
    for (int i = 0; i < 50; ++i) {
      const int length = static_cast<int>(rng.NextBelow(33));
      const Prefix prefix(Ipv4Address(static_cast<std::uint32_t>(rng.Next())),
                          length);
      // Skip duplicates (overwrite semantics would complicate the oracle).
      if (trie.ExactMatch(prefix) != nullptr) continue;
      trie.Insert(prefix, prefixes.size());
      prefixes.push_back(prefix);
    }
    for (int probe = 0; probe < 200; ++probe) {
      const Ipv4Address addr(static_cast<std::uint32_t>(rng.Next()));
      // Oracle: longest containing prefix wins.
      int best_length = -1;
      std::size_t best_index = 0;
      for (std::size_t i = 0; i < prefixes.size(); ++i) {
        if (prefixes[i].Contains(addr) &&
            prefixes[i].length() > best_length) {
          best_length = prefixes[i].length();
          best_index = i;
        }
      }
      const std::size_t* found = trie.LongestMatch(addr);
      if (best_length < 0) {
        EXPECT_EQ(found, nullptr);
      } else {
        ASSERT_NE(found, nullptr);
        EXPECT_EQ(*found, best_index);
      }
    }
  }
}

}  // namespace
}  // namespace adtc
