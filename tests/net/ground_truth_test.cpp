// Measurement-only fields must never influence behaviour: the ground
// truth convention of net/packet.h says no PacketProcessor or Module
// decides based on true_origin / spoofed_src / klass / in_reply_to.
// These tests feed identical wire packets with scrambled ground truth
// through the full core stack and the baselines and require identical
// verdicts.
#include <gtest/gtest.h>

#include "core/adaptive_device.h"
#include "core/modules/antispoof.h"
#include "core/modules/match.h"
#include "core/modules/rate_limit.h"
#include "mitigation/ingress_filter.h"
#include "testutil.h"

namespace adtc {
namespace {

Packet WirePacket() {
  Packet p;
  p.src = HostAddress(3, 1);
  p.dst = HostAddress(5, 1);
  p.proto = Protocol::kUdp;
  p.dst_port = 80;
  p.size_bytes = 100;
  p.serial = 1;
  p.payload_hash = 1;
  return p;
}

/// Same wire identity, different ground truth.
Packet ScrambleGroundTruth(Packet p) {
  p.true_origin = 4242;
  p.spoofed_src = !p.spoofed_src;
  p.klass = TrafficClass::kAttack;
  p.in_reply_to = 999;
  return p;
}

TEST(GroundTruthTest, AdaptiveDeviceVerdictIgnoresLabels) {
  CertificateAuthority ca("k");
  const auto cert = ca.Issue(1, "o", {NodePrefix(5)}, 0, Seconds(3600));

  // A firewall that drops UDP:80 to the owner.
  MatchRule rule;
  rule.proto = Protocol::kUdp;
  rule.dst_port_range = {{80, 80}};

  for (const bool expect_drop : {true, false}) {
    AdaptiveDevice device(0);
    MatchRule used = rule;
    if (!expect_drop) used.dst_port_range = {{443, 443}};
    ASSERT_TRUE(device
                    .InstallDeployment(
                        {cert,
                         {NodePrefix(5)},
                         std::nullopt,
                         ModuleGraph::Single(
                             std::make_unique<MatchModule>(used))})
                    .ok());
    RouterContext ctx;
    Packet plain = WirePacket();
    Packet scrambled = ScrambleGroundTruth(WirePacket());
    EXPECT_EQ(device.Process(plain, ctx), device.Process(scrambled, ctx));
    EXPECT_EQ(device.Process(plain, ctx),
              expect_drop ? Verdict::kDrop : Verdict::kForward);
  }
}

TEST(GroundTruthTest, AntiSpoofUsesOnlyWireAndContext) {
  AntiSpoofModule module(AntiSpoofModule::Mode::kProtectOwnerPrefixes);
  module.AddProtectedPrefix(NodePrefix(3));
  DeviceContext ctx;
  ctx.node = 7;
  ctx.in_kind = LinkKind::kAccessUp;

  Packet claims_protected = WirePacket();  // src in NodePrefix(3)
  Packet scrambled = ScrambleGroundTruth(claims_protected);
  scrambled.spoofed_src = false;  // even claiming "not spoofed"...
  EXPECT_EQ(module.OnPacket(claims_protected, ctx),
            module.OnPacket(scrambled, ctx));
  EXPECT_EQ(module.OnPacket(claims_protected, ctx), kPortAlt);
}

TEST(GroundTruthTest, IngressFilterIgnoresSpoofFlag) {
  testing::SmallWorld world(3);
  const NodeId stub = world.topo.stub_nodes[0];
  auto filters = DeployIngressFiltering(world.net, world.topo, {stub});
  RouterContext ctx;
  ctx.net = &world.net;
  ctx.node = stub;
  ctx.in_kind = LinkKind::kAccessUp;

  // Wire-legit packet labelled as spoofed attack: must pass.
  Packet labelled = WirePacket();
  labelled.src = HostAddress(stub, 1);
  labelled.spoofed_src = true;
  labelled.klass = TrafficClass::kAttack;
  EXPECT_EQ(filters[0]->Process(labelled, ctx), Verdict::kForward);

  // Wire-spoofed packet labelled clean: must drop.
  Packet clean_label = WirePacket();
  clean_label.src = HostAddress(stub + 1, 1);
  clean_label.spoofed_src = false;
  clean_label.klass = TrafficClass::kLegitimate;
  EXPECT_EQ(filters[0]->Process(clean_label, ctx), Verdict::kDrop);
}

TEST(GroundTruthTest, RateLimiterCountsPacketsNotClasses) {
  RateLimitModule module(1.0, 1.0);
  DeviceContext ctx;
  ctx.now = Seconds(1);
  Packet attack = WirePacket();
  attack.klass = TrafficClass::kAttack;
  Packet legit = WirePacket();
  legit.klass = TrafficClass::kLegitimate;
  // The single token goes to whichever arrives first, label-blind.
  EXPECT_EQ(module.OnPacket(attack, ctx), kPortDefault);
  EXPECT_EQ(module.OnPacket(legit, ctx), kPortAlt);
}

}  // namespace
}  // namespace adtc
