#include "net/packet.h"

#include <gtest/gtest.h>

namespace adtc {
namespace {

Packet SamplePacket() {
  Packet p;
  p.src = Ipv4Address(0x0a000001);
  p.dst = Ipv4Address(0x0a000002);
  p.proto = Protocol::kTcp;
  p.tcp_flags = tcp::kSyn;
  p.src_port = 1234;
  p.dst_port = 80;
  p.size_bytes = 40;
  p.serial = 77;
  p.payload_hash = 0xdeadbeef;
  return p;
}

TEST(PacketDigestTest, StableAcrossHops) {
  Packet p = SamplePacket();
  const std::uint64_t before = PacketDigest(p);
  p.ttl--;         // routers decrement TTL
  p.hops++;        // bookkeeping advances
  p.ppm.valid = true;  // markers scribble
  EXPECT_EQ(PacketDigest(p), before);
}

TEST(PacketDigestTest, SensitiveToWireIdentity) {
  const Packet base = SamplePacket();
  Packet p = base;
  p.serial = 78;
  EXPECT_NE(PacketDigest(p), PacketDigest(base));
  p = base;
  p.src = Ipv4Address(0x0b000001);
  EXPECT_NE(PacketDigest(p), PacketDigest(base));
  p = base;
  p.payload_hash ^= 1;
  EXPECT_NE(PacketDigest(p), PacketDigest(base));
  p = base;
  p.dst_port = 443;
  EXPECT_NE(PacketDigest(p), PacketDigest(base));
}

TEST(FlowKeyTest, GroupsByAggregate) {
  Packet a = SamplePacket();
  Packet b = SamplePacket();
  b.serial = 99;          // different packet ...
  b.payload_hash = 123;   // ... different payload
  EXPECT_EQ(FlowKey(a), FlowKey(b));  // same (src,dst,proto,port) aggregate
  b.dst_port = 443;
  EXPECT_NE(FlowKey(a), FlowKey(b));
}

TEST(PacketTest, TcpFlagHelpers) {
  Packet p = SamplePacket();
  EXPECT_TRUE(p.has_tcp_flag(tcp::kSyn));
  EXPECT_FALSE(p.has_tcp_flag(tcp::kAck));
  p.proto = Protocol::kUdp;
  EXPECT_FALSE(p.has_tcp_flag(tcp::kSyn));  // not TCP at all
}

TEST(PacketTest, NameFunctions) {
  EXPECT_EQ(ProtocolName(Protocol::kUdp), "udp");
  EXPECT_EQ(ProtocolName(Protocol::kTcp), "tcp");
  EXPECT_EQ(ProtocolName(Protocol::kIcmp), "icmp");
  EXPECT_EQ(TrafficClassName(TrafficClass::kAttack), "attack");
  EXPECT_EQ(TrafficClassName(TrafficClass::kReflected), "reflected");
}

}  // namespace
}  // namespace adtc
