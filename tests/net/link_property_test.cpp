// Parameterised property tests of the link model: delivery latency must
// match the analytic serialisation + propagation formula for any
// (rate, size, delay) combination, and byte accounting must balance.
#include <gtest/gtest.h>

#include "host/host.h"
#include "net/network.h"

namespace adtc {
namespace {

class SinkHost : public Host {
 public:
  void HandlePacket(Packet&& packet) override {
    arrivals.emplace_back(Now(), std::move(packet));
  }
  std::vector<std::pair<SimTime, Packet>> arrivals;
};

struct LinkCase {
  BitRate rate;
  SimDuration delay;
  std::uint32_t packet_bytes;
};

class LinkLatencyTest : public ::testing::TestWithParam<LinkCase> {};

TEST_P(LinkLatencyTest, SinglePacketLatencyMatchesAnalytic) {
  const LinkCase& c = GetParam();
  Network net(1);
  const NodeId a = net.AddNode(NodeRole::kStub);
  const NodeId b = net.AddNode(NodeRole::kStub);
  net.Connect(a, b, LinkParams{c.rate, c.delay, 10 * 1024 * 1024},
              LinkKind::kPeer);
  // Access links fast enough to be negligible but still modelled.
  const LinkParams access{GigabitsPerSecond(100), 0, 10 * 1024 * 1024};
  auto* src = SpawnHost<SinkHost>(net, a, access);
  auto* dst = SpawnHost<SinkHost>(net, b, access);
  net.FinalizeRouting();

  src->SendPacket(src->MakePacket(dst->address(), Protocol::kUdp,
                                  c.packet_bytes));
  net.Run(Seconds(10));
  ASSERT_EQ(dst->arrivals.size(), 1u);

  // access-up + core + access-down serialisation, plus propagation.
  const SimDuration expected =
      TransmissionDelay(c.packet_bytes, access.rate) * 2 +
      TransmissionDelay(c.packet_bytes, c.rate) + c.delay;
  const SimTime actual = dst->arrivals[0].first;
  EXPECT_NEAR(static_cast<double>(actual), static_cast<double>(expected),
              static_cast<double>(expected) * 0.01 + 10.0);
}

TEST_P(LinkLatencyTest, BackToBackPacketsSpacedBySerialisation) {
  const LinkCase& c = GetParam();
  Network net(2);
  const NodeId a = net.AddNode(NodeRole::kStub);
  const NodeId b = net.AddNode(NodeRole::kStub);
  net.Connect(a, b, LinkParams{c.rate, c.delay, 10 * 1024 * 1024},
              LinkKind::kPeer);
  const LinkParams access{GigabitsPerSecond(100), 0, 10 * 1024 * 1024};
  auto* src = SpawnHost<SinkHost>(net, a, access);
  auto* dst = SpawnHost<SinkHost>(net, b, access);
  net.FinalizeRouting();

  for (int i = 0; i < 5; ++i) {
    src->SendPacket(src->MakePacket(dst->address(), Protocol::kUdp,
                                    c.packet_bytes));
  }
  net.Run(Seconds(30));
  ASSERT_EQ(dst->arrivals.size(), 5u);
  // Consecutive arrivals are spaced by at least the bottleneck
  // serialisation time (the core link dominates the fast access links).
  const SimDuration spacing = TransmissionDelay(c.packet_bytes, c.rate);
  for (std::size_t i = 1; i < dst->arrivals.size(); ++i) {
    const SimDuration gap =
        dst->arrivals[i].first - dst->arrivals[i - 1].first;
    EXPECT_GE(gap + 2, spacing) << "between arrival " << i - 1 << " and "
                                << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RateSizeSweep, LinkLatencyTest,
    ::testing::Values(
        LinkCase{MegabitsPerSecond(1), Milliseconds(1), 100},
        LinkCase{MegabitsPerSecond(10), Milliseconds(5), 1500},
        LinkCase{MegabitsPerSecond(100), Milliseconds(20), 64},
        LinkCase{GigabitsPerSecond(1), Milliseconds(50), 1500},
        LinkCase{GigabitsPerSecond(10), Microseconds(100), 9000},
        LinkCase{KilobitsPerSecond(256), Milliseconds(2), 500}));

class LinkConservationTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(LinkConservationTest, EveryPacketAccountedExactlyOnce) {
  // Property: after the world drains, sent == delivered + dropped for
  // every traffic class (packets can neither vanish nor duplicate).
  const std::uint64_t seed = GetParam();
  Network net(seed);
  const NodeId a = net.AddNode(NodeRole::kStub);
  const NodeId b = net.AddNode(NodeRole::kStub);
  const NodeId c = net.AddNode(NodeRole::kTransit);
  net.Connect(a, c, LinkParams{MegabitsPerSecond(2), Milliseconds(1), 4096},
              LinkKind::kCustomerToProvider);
  net.Connect(c, b, LinkParams{MegabitsPerSecond(2), Milliseconds(1), 4096},
              LinkKind::kProviderToCustomer);
  const LinkParams access{MegabitsPerSecond(50), Milliseconds(1), 65536};
  auto* src = SpawnHost<SinkHost>(net, a, access);
  auto* dst = SpawnHost<SinkHost>(net, b, access);
  net.FinalizeRouting();
  net.set_icmp_errors_enabled(false);  // no secondary traffic

  Rng rng(seed);
  const int count = 200 + static_cast<int>(rng.NextBelow(400));
  for (int i = 0; i < count; ++i) {
    Packet p = src->MakePacket(dst->address(), Protocol::kUdp,
                               64 + static_cast<std::uint32_t>(
                                        rng.NextBelow(1400)));
    // A few packets target nonexistent hosts or have tiny TTLs.
    if (rng.NextBool(0.1)) p.dst = HostAddress(b, 200);
    if (rng.NextBool(0.05)) p.ttl = 1;
    src->SendPacket(std::move(p));
  }
  net.RunToCompletion();

  const Metrics& metrics = net.metrics();
  const auto klass = static_cast<std::size_t>(TrafficClass::kLegitimate);
  // kHostOverload double-counts (delivered then refused) and cannot occur
  // here (SinkHost has no resource model).
  EXPECT_EQ(metrics.packets_sent[klass],
            metrics.packets_delivered[klass] +
                metrics.dropped(TrafficClass::kLegitimate));
  EXPECT_EQ(metrics.packets_sent[klass],
            static_cast<std::uint64_t>(count));
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinkConservationTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

}  // namespace
}  // namespace adtc
