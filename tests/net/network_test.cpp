#include "net/network.h"

#include <gtest/gtest.h>

#include "host/host.h"

namespace adtc {
namespace {

/// Records everything delivered to it.
class SinkHost : public Host {
 public:
  void HandlePacket(Packet&& packet) override {
    received.push_back(std::move(packet));
  }
  std::vector<Packet> received;
};

LinkParams FastLink() {
  return LinkParams{GigabitsPerSecond(1), Milliseconds(1), 1024 * 1024};
}

/// Two routers, one host on each.
struct TwoNodeWorld {
  Network net{7};
  NodeId a, b;
  SinkHost* host_a;
  SinkHost* host_b;

  TwoNodeWorld() {
    a = net.AddNode(NodeRole::kStub);
    b = net.AddNode(NodeRole::kStub);
    net.Connect(a, b, FastLink(), LinkKind::kPeer);
    host_a = SpawnHost<SinkHost>(net, a, FastLink());
    host_b = SpawnHost<SinkHost>(net, b, FastLink());
    net.FinalizeRouting();
  }
};

TEST(NetworkTest, DeliversAcrossTwoNodes) {
  TwoNodeWorld world;
  Packet packet = world.host_a->MakePacket(world.host_b->address(),
                                           Protocol::kUdp, 100);
  world.host_a->SendPacket(std::move(packet));
  world.net.Run(Seconds(1));
  ASSERT_EQ(world.host_b->received.size(), 1u);
  EXPECT_EQ(world.host_b->received[0].src, world.host_a->address());
  EXPECT_EQ(world.host_b->received[0].size_bytes, 100u);
  EXPECT_EQ(world.net.metrics().delivered(TrafficClass::kLegitimate), 1u);
}

TEST(NetworkTest, DeliversToLocalHostSameNode) {
  Network net(9);
  const NodeId node = net.AddNode(NodeRole::kStub);
  // A lone node still routes to itself.
  auto* first = SpawnHost<SinkHost>(net, node, FastLink());
  auto* second = SpawnHost<SinkHost>(net, node, FastLink());
  net.FinalizeRouting();
  first->SendPacket(first->MakePacket(second->address(), Protocol::kUdp, 64));
  net.Run(Seconds(1));
  EXPECT_EQ(second->received.size(), 1u);
}

TEST(NetworkTest, TtlDecrementsPerRouterHop) {
  TwoNodeWorld world;
  Packet packet = world.host_a->MakePacket(world.host_b->address(),
                                           Protocol::kUdp, 64);
  packet.ttl = 64;
  world.host_a->SendPacket(std::move(packet));
  world.net.Run(Seconds(1));
  ASSERT_EQ(world.host_b->received.size(), 1u);
  // Two routers on the path (a and b); b performs local delivery without
  // spending TTL, a forwards and decrements.
  EXPECT_EQ(world.host_b->received[0].ttl, 63);
}

TEST(NetworkTest, TtlExpiryDropsPacket) {
  TwoNodeWorld world;
  world.net.set_icmp_errors_enabled(false);
  Packet packet = world.host_a->MakePacket(world.host_b->address(),
                                           Protocol::kUdp, 64);
  packet.ttl = 0;
  world.host_a->SendPacket(std::move(packet));
  world.net.Run(Seconds(1));
  EXPECT_TRUE(world.host_b->received.empty());
  EXPECT_EQ(world.net.metrics().dropped(TrafficClass::kLegitimate,
                                        DropReason::kTtlExpired),
            1u);
}

TEST(NetworkTest, TtlExpiryEmitsIcmpTimeExceeded) {
  TwoNodeWorld world;
  world.net.set_icmp_errors_enabled(true);
  Packet packet = world.host_a->MakePacket(world.host_b->address(),
                                           Protocol::kUdp, 64);
  packet.ttl = 0;
  world.host_a->SendPacket(std::move(packet));
  world.net.Run(Seconds(1));
  ASSERT_EQ(world.host_a->received.size(), 1u);
  EXPECT_EQ(world.host_a->received[0].proto, Protocol::kIcmp);
  EXPECT_EQ(world.host_a->received[0].icmp, IcmpType::kTimeExceeded);
}

TEST(NetworkTest, MissingHostGeneratesDestUnreachable) {
  TwoNodeWorld world;
  // Slot 50 under node b is unoccupied.
  Packet packet = world.host_a->MakePacket(HostAddress(world.b, 50),
                                           Protocol::kUdp, 64);
  world.host_a->SendPacket(std::move(packet));
  world.net.Run(Seconds(1));
  ASSERT_EQ(world.host_a->received.size(), 1u);
  EXPECT_EQ(world.host_a->received[0].icmp, IcmpType::kDestUnreachable);
  EXPECT_EQ(world.net.metrics().dropped(TrafficClass::kLegitimate,
                                        DropReason::kNoHost),
            1u);
}

TEST(NetworkTest, UnroutableAddressDropsNoRoute) {
  TwoNodeWorld world;
  world.net.set_icmp_errors_enabled(false);
  // A node id beyond the topology.
  Packet packet = world.host_a->MakePacket(HostAddress(999, 1),
                                           Protocol::kUdp, 64);
  world.host_a->SendPacket(std::move(packet));
  world.net.Run(Seconds(1));
  EXPECT_EQ(world.net.metrics().dropped(TrafficClass::kLegitimate,
                                        DropReason::kNoRoute),
            1u);
}

TEST(NetworkTest, DownHostBlackholes) {
  TwoNodeWorld world;
  world.host_b->SetUp(false);
  world.host_a->SendPacket(world.host_a->MakePacket(
      world.host_b->address(), Protocol::kUdp, 64));
  world.net.Run(Seconds(1));
  EXPECT_TRUE(world.host_b->received.empty());
  EXPECT_EQ(world.net.metrics().dropped(TrafficClass::kLegitimate,
                                        DropReason::kHostDown),
            1u);
}

TEST(NetworkTest, QueueOverflowDropsTail) {
  Network net(11);
  const NodeId a = net.AddNode(NodeRole::kStub);
  const NodeId b = net.AddNode(NodeRole::kStub);
  // Slow, tiny-buffer link: 1 Mbps, 2 KB buffer.
  net.Connect(a, b, LinkParams{MegabitsPerSecond(1), Milliseconds(1), 2048},
              LinkKind::kPeer);
  auto* src = SpawnHost<SinkHost>(net, a, FastLink());
  auto* dst = SpawnHost<SinkHost>(net, b, FastLink());
  net.FinalizeRouting();

  for (int i = 0; i < 100; ++i) {
    src->SendPacket(src->MakePacket(dst->address(), Protocol::kUdp, 1000));
  }
  net.Run(Seconds(5));
  EXPECT_LT(dst->received.size(), 100u);
  EXPECT_GT(dst->received.size(), 0u);
  EXPECT_GT(net.metrics().dropped(TrafficClass::kLegitimate,
                                  DropReason::kQueueFull),
            0u);
}

TEST(NetworkTest, SerialisationDelayOrdersDeliveries) {
  TwoNodeWorld world;
  for (int i = 0; i < 10; ++i) {
    Packet packet = world.host_a->MakePacket(world.host_b->address(),
                                             Protocol::kUdp, 1000);
    packet.dst_port = static_cast<std::uint16_t>(i);
    world.host_a->SendPacket(std::move(packet));
  }
  world.net.Run(Seconds(1));
  ASSERT_EQ(world.host_b->received.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(world.host_b->received[i].dst_port, i);  // FIFO preserved
  }
}

TEST(NetworkTest, ProcessorCanDropPackets) {
  struct DropAll : PacketProcessor {
    Verdict Process(Packet&, const RouterContext&) override {
      return Verdict::kDrop;
    }
    std::string_view name() const override { return "drop-all"; }
  };
  TwoNodeWorld world;
  DropAll dropper;
  world.net.AddProcessor(world.b, &dropper);
  world.host_a->SendPacket(world.host_a->MakePacket(
      world.host_b->address(), Protocol::kUdp, 64));
  world.net.Run(Seconds(1));
  EXPECT_TRUE(world.host_b->received.empty());
  EXPECT_EQ(world.net.metrics().dropped(TrafficClass::kLegitimate,
                                        DropReason::kFiltered),
            1u);
  EXPECT_EQ(world.net.node(world.b).filtered, 1u);
}

TEST(NetworkTest, RemoveProcessorRestoresFlow) {
  struct DropAll : PacketProcessor {
    Verdict Process(Packet&, const RouterContext&) override {
      return Verdict::kDrop;
    }
    std::string_view name() const override { return "drop-all"; }
  };
  TwoNodeWorld world;
  DropAll dropper;
  world.net.AddProcessor(world.b, &dropper);
  world.net.RemoveProcessor(world.b, &dropper);
  world.host_a->SendPacket(world.host_a->MakePacket(
      world.host_b->address(), Protocol::kUdp, 64));
  world.net.Run(Seconds(1));
  EXPECT_EQ(world.host_b->received.size(), 1u);
}

TEST(NetworkTest, HopDistanceAndPaths) {
  Network net(13);
  // Chain: 0 - 1 - 2 - 3.
  for (int i = 0; i < 4; ++i) net.AddNode(NodeRole::kTransit);
  for (NodeId i = 0; i < 3; ++i) {
    net.Connect(i, i + 1, FastLink(), LinkKind::kPeer);
  }
  net.FinalizeRouting();
  EXPECT_EQ(net.HopDistance(0, 3), 3u);
  EXPECT_EQ(net.HopDistance(0, 0), 0u);
  EXPECT_EQ(net.NextHop(0, 3), 1u);
  EXPECT_EQ(net.PathBetween(0, 3),
            (std::vector<NodeId>{0, 1, 2, 3}));
}

TEST(NetworkTest, HopCounterTracksPathLength) {
  Network net(17);
  for (int i = 0; i < 4; ++i) net.AddNode(NodeRole::kTransit);
  for (NodeId i = 0; i < 3; ++i) {
    net.Connect(i, i + 1, FastLink(), LinkKind::kPeer);
  }
  auto* src = SpawnHost<SinkHost>(net, 0, FastLink());
  auto* dst = SpawnHost<SinkHost>(net, 3, FastLink());
  net.FinalizeRouting();
  src->SendPacket(src->MakePacket(dst->address(), Protocol::kUdp, 64));
  net.Run(Seconds(1));
  ASSERT_EQ(dst->received.size(), 1u);
  EXPECT_EQ(dst->received[0].hops, 4);  // routers 0,1,2,3 all touched it
}

TEST(NetworkTest, MetricsCountBytesByClass) {
  TwoNodeWorld world;
  Packet attack = world.host_a->MakePacket(world.host_b->address(),
                                           Protocol::kUdp, 500);
  attack.klass = TrafficClass::kAttack;
  world.host_a->SendPacket(std::move(attack));
  world.net.Run(Seconds(1));
  EXPECT_EQ(world.net.metrics().bytes_sent[static_cast<std::size_t>(
                TrafficClass::kAttack)],
            500u);
  EXPECT_GT(world.net.metrics().attack_byte_hops, 0u);
}

TEST(NetworkTest, IcmpErrorsAreRateLimited) {
  TwoNodeWorld world;
  // 100 packets to a missing host: at most ~10 ICMP errors (bucket).
  for (int i = 0; i < 100; ++i) {
    world.host_a->SendPacket(world.host_a->MakePacket(
        HostAddress(world.b, 50), Protocol::kUdp, 64));
  }
  world.net.Run(Seconds(1));
  EXPECT_LE(world.host_a->received.size(), 12u);
  EXPECT_GE(world.host_a->received.size(), 1u);
}

}  // namespace
}  // namespace adtc
