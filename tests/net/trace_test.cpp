#include <algorithm>
#include "net/trace.h"

#include <gtest/gtest.h>

namespace adtc {
namespace {

Packet MakePkt(std::uint32_t src, std::uint16_t port, std::uint32_t size) {
  Packet p;
  p.src = Ipv4Address(src);
  p.dst = Ipv4Address(0x01020304);
  p.dst_port = port;
  p.size_bytes = size;
  return p;
}

TEST(PacketTraceTest, RecordsUpToCapacity) {
  PacketTrace trace(8);
  for (int i = 0; i < 5; ++i) {
    trace.Record(MakePkt(i, 80, 100), Milliseconds(i));
  }
  EXPECT_EQ(trace.size(), 5u);
  EXPECT_EQ(trace.total_recorded(), 5u);
}

TEST(PacketTraceTest, RingOverwritesOldest) {
  PacketTrace trace(4);
  for (std::uint32_t i = 0; i < 10; ++i) {
    trace.Record(MakePkt(i, 80, 100), Milliseconds(i));
  }
  EXPECT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace.total_recorded(), 10u);
  const auto snapshot = trace.Snapshot();
  ASSERT_EQ(snapshot.size(), 4u);
  // Oldest retained is i=6.
  EXPECT_EQ(snapshot.front().src.bits(), 6u);
  EXPECT_EQ(snapshot.back().src.bits(), 9u);
}

TEST(PacketTraceTest, TopPortsRanked) {
  PacketTrace trace(100);
  for (int i = 0; i < 10; ++i) trace.Record(MakePkt(1, 80, 100), 0);
  for (int i = 0; i < 5; ++i) trace.Record(MakePkt(1, 443, 100), 0);
  for (int i = 0; i < 2; ++i) trace.Record(MakePkt(1, 22, 100), 0);
  const auto top = trace.TopPorts(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, 80);
  EXPECT_EQ(top[0].second, 10u);
  EXPECT_EQ(top[1].first, 443);
}

TEST(PacketTraceTest, TopSourcesByBytes) {
  PacketTrace trace(100);
  trace.Record(MakePkt(0xAA, 80, 1000), 0);
  trace.Record(MakePkt(0xBB, 80, 100), 0);
  trace.Record(MakePkt(0xBB, 80, 100), 0);
  const auto top = trace.TopSources(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first.bits(), 0xAAu);
  EXPECT_EQ(top[0].second, 1000u);
  EXPECT_EQ(top[1].second, 200u);
}

TEST(PacketTraceTest, ObservedRate) {
  PacketTrace trace(100);
  // 11 packets over 1 second -> 11 pkt / 1 s.
  for (int i = 0; i <= 10; ++i) {
    trace.Record(MakePkt(1, 80, 100), Milliseconds(i * 100));
  }
  EXPECT_NEAR(trace.ObservedRate(), 11.0, 0.5);
}

TEST(PacketTraceTest, DumpHasOneLinePerRecord) {
  PacketTrace trace(100);
  for (int i = 0; i < 3; ++i) trace.Record(MakePkt(i, 80, 100), 0);
  const std::string dump = trace.Dump();
  EXPECT_EQ(std::count(dump.begin(), dump.end(), '\n'), 3);
}

TEST(PacketTraceTest, ClearResets) {
  PacketTrace trace(10);
  trace.Record(MakePkt(1, 80, 100), 0);
  trace.Clear();
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_EQ(trace.total_recorded(), 0u);
}

}  // namespace
}  // namespace adtc
