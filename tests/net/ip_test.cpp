#include "net/ip.h"

#include <gtest/gtest.h>

namespace adtc {
namespace {

TEST(Ipv4AddressTest, RoundTripsDottedQuad) {
  for (const char* text : {"0.0.0.0", "10.1.2.3", "255.255.255.255",
                           "192.168.0.1"}) {
    const auto addr = Ipv4Address::Parse(text);
    ASSERT_TRUE(addr.has_value()) << text;
    EXPECT_EQ(addr->ToString(), text);
  }
}

TEST(Ipv4AddressTest, RejectsMalformed) {
  for (const char* text :
       {"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "1..2.3",
        "1.2.3.4x"}) {
    EXPECT_FALSE(Ipv4Address::Parse(text).has_value()) << text;
  }
}

TEST(Ipv4AddressTest, BitsOrdering) {
  const auto addr = Ipv4Address::Parse("1.2.3.4");
  ASSERT_TRUE(addr);
  EXPECT_EQ(addr->bits(), 0x01020304u);
}

TEST(PrefixTest, MasksHostBits) {
  const Prefix prefix(Ipv4Address(0x0a0b0c0d), 16);
  EXPECT_EQ(prefix.address().bits(), 0x0a0b0000u);
  EXPECT_EQ(prefix.length(), 16);
}

TEST(PrefixTest, Contains) {
  const auto prefix = Prefix::Parse("10.20.0.0/16");
  ASSERT_TRUE(prefix);
  EXPECT_TRUE(prefix->Contains(*Ipv4Address::Parse("10.20.1.1")));
  EXPECT_TRUE(prefix->Contains(*Ipv4Address::Parse("10.20.255.255")));
  EXPECT_FALSE(prefix->Contains(*Ipv4Address::Parse("10.21.0.0")));
}

TEST(PrefixTest, SlashZeroMatchesEverything) {
  EXPECT_TRUE(Prefix::Any().Contains(Ipv4Address(0)));
  EXPECT_TRUE(Prefix::Any().Contains(Ipv4Address(~0u)));
}

TEST(PrefixTest, HostRoute) {
  const Ipv4Address addr(0x12345678);
  const Prefix host = Prefix::Host(addr);
  EXPECT_TRUE(host.Contains(addr));
  EXPECT_FALSE(host.Contains(Ipv4Address(0x12345679)));
}

TEST(PrefixTest, Covers) {
  const auto wide = *Prefix::Parse("10.0.0.0/8");
  const auto narrow = *Prefix::Parse("10.1.0.0/16");
  EXPECT_TRUE(wide.Covers(narrow));
  EXPECT_FALSE(narrow.Covers(wide));
  EXPECT_TRUE(wide.Covers(wide));
}

TEST(PrefixTest, ParseRejectsBadLength) {
  EXPECT_FALSE(Prefix::Parse("1.2.3.4/33").has_value());
  EXPECT_FALSE(Prefix::Parse("1.2.3.4/-1").has_value());
  EXPECT_FALSE(Prefix::Parse("1.2.3.4").has_value());
  EXPECT_FALSE(Prefix::Parse("1.2.3.4/1x").has_value());
}

TEST(AddressPlanTest, NodePrefixAndHostAddressesAgree) {
  const NodeId node = 37;
  const Prefix prefix = NodePrefix(node);
  EXPECT_EQ(prefix.length(), kNodePrefixLength);
  for (std::uint32_t slot : {1u, 2u, kHostsPerNode}) {
    const Ipv4Address addr = HostAddress(node, slot);
    EXPECT_TRUE(prefix.Contains(addr));
    EXPECT_EQ(AddressNode(addr), node);
    EXPECT_EQ(AddressSlot(addr), slot);
  }
  EXPECT_TRUE(prefix.Contains(RouterAddress(node)));
}

TEST(AddressPlanTest, DistinctNodesDistinctPrefixes) {
  EXPECT_FALSE(NodePrefix(1).Contains(HostAddress(2, 1)));
  EXPECT_NE(NodePrefix(1), NodePrefix(2));
}

}  // namespace
}  // namespace adtc
