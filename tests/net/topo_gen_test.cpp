#include "net/topo_gen.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace adtc {
namespace {

TEST(TransitStubTest, BuildsRequestedCounts) {
  Network net(1);
  TransitStubParams params;
  params.transit_count = 8;
  params.stub_count = 40;
  const TopologyInfo info = BuildTransitStub(net, params);
  EXPECT_EQ(info.transit_nodes.size(), 8u);
  EXPECT_EQ(info.stub_nodes.size(), 40u);
  EXPECT_EQ(net.node_count(), 48u);
}

TEST(TransitStubTest, EveryStubHasAProvider) {
  Network net(2);
  TransitStubParams params;
  const TopologyInfo info = BuildTransitStub(net, params);
  for (NodeId stub : info.stub_nodes) {
    EXPECT_FALSE(info.providers[stub].empty()) << "stub " << stub;
    EXPECT_EQ(net.node(stub).role, NodeRole::kStub);
  }
}

TEST(TransitStubTest, FullyConnected) {
  Network net(3);
  TransitStubParams params;
  params.transit_count = 6;
  params.stub_count = 30;
  BuildTransitStub(net, params);
  for (NodeId a = 0; a < net.node_count(); a += 7) {
    for (NodeId b = 0; b < net.node_count(); b += 5) {
      EXPECT_NE(net.HopDistance(a, b), UINT32_MAX)
          << a << " cannot reach " << b;
    }
  }
}

TEST(TransitStubTest, CustomerEdgesHaveCorrectKinds) {
  Network net(4);
  TransitStubParams params;
  params.multihome_probability = 0.0;
  const TopologyInfo info = BuildTransitStub(net, params);
  const NodeId stub = info.stub_nodes[0];
  const NodeId provider = info.providers[stub][0];
  // Stub's outgoing link toward provider: customer->provider.
  for (const auto& [neighbour, link] : net.node(stub).neighbours) {
    if (neighbour == provider) {
      EXPECT_EQ(net.link(link).kind, LinkKind::kCustomerToProvider);
    }
  }
  for (const auto& [neighbour, link] : net.node(provider).neighbours) {
    if (neighbour == stub) {
      EXPECT_EQ(net.link(link).kind, LinkKind::kProviderToCustomer);
    }
  }
}

TEST(TransitStubTest, DeterministicForSeed) {
  Network net1(99), net2(99);
  TransitStubParams params;
  const TopologyInfo a = BuildTransitStub(net1, params);
  const TopologyInfo b = BuildTransitStub(net2, params);
  EXPECT_EQ(net1.link_count(), net2.link_count());
  EXPECT_EQ(a.customers, b.customers);
}

TEST(PowerLawTest, BuildsRequestedNodeCount) {
  Network net(5);
  PowerLawParams params;
  params.node_count = 200;
  const TopologyInfo info = BuildPowerLaw(net, params);
  EXPECT_EQ(net.node_count(), 200u);
  EXPECT_EQ(info.transit_nodes.size() + info.stub_nodes.size(), 200u);
  EXPECT_FALSE(info.transit_nodes.empty());
  EXPECT_FALSE(info.stub_nodes.empty());
}

TEST(PowerLawTest, ConnectedAndHeavyTailed) {
  Network net(6);
  PowerLawParams params;
  params.node_count = 300;
  const TopologyInfo info = BuildPowerLaw(net, params);
  (void)info;
  // Connectivity.
  for (NodeId node = 0; node < net.node_count(); node += 13) {
    EXPECT_NE(net.HopDistance(0, node), UINT32_MAX);
  }
  // Heavy tail: the max degree should far exceed the mean (2m).
  std::size_t max_degree = 0;
  for (NodeId node = 0; node < net.node_count(); ++node) {
    max_degree = std::max(max_degree, net.node(node).neighbours.size());
  }
  EXPECT_GT(max_degree, 20u);
}

TEST(PowerLawTest, NewerNodesAreCustomersOfOlder) {
  Network net(7);
  PowerLawParams params;
  params.node_count = 100;
  const TopologyInfo info = BuildPowerLaw(net, params);
  for (NodeId node = 0; node < net.node_count(); ++node) {
    for (NodeId provider : info.providers[node]) {
      EXPECT_LT(provider, node);
    }
  }
}

TEST(CustomerConeTest, ConeContainsSelfAndDescendants) {
  Network net(8);
  TransitStubParams params;
  params.transit_count = 4;
  params.stub_count = 20;
  params.multihome_probability = 0.0;
  const TopologyInfo info = BuildTransitStub(net, params);
  // A stub's cone is just itself.
  const NodeId stub = info.stub_nodes[0];
  EXPECT_EQ(info.CustomerCone(stub), std::vector<NodeId>{stub});
  // A provider's cone contains all its customers.
  const NodeId provider = info.providers[stub][0];
  const auto cone = info.CustomerCone(provider);
  EXPECT_TRUE(std::find(cone.begin(), cone.end(), stub) != cone.end());
  EXPECT_TRUE(std::find(cone.begin(), cone.end(), provider) != cone.end());
  EXPECT_EQ(cone.size(), info.customers[provider].size() + 1);
}

TEST(PowerLawTest, ShortPathsSmallWorld) {
  Network net(9);
  PowerLawParams params;
  params.node_count = 300;
  BuildPowerLaw(net, params);
  // Power-law graphs have very short average paths.
  double total = 0;
  int samples = 0;
  for (NodeId a = 0; a < net.node_count(); a += 17) {
    for (NodeId b = 1; b < net.node_count(); b += 23) {
      const auto d = net.HopDistance(a, b);
      ASSERT_NE(d, UINT32_MAX);
      total += d;
      samples++;
    }
  }
  EXPECT_LT(total / samples, 6.0);
}

}  // namespace
}  // namespace adtc
