#!/usr/bin/env bash
# Sanitizer smoke: build the test suite with ASan+UBSan (-DADTC_SANITIZE=ON)
# in a separate tree and run the lifetime-sensitive subset: the telemetry
# layer (collector owners dying before the registry, sampler callbacks
# outliving the sampler, event-ring linearisation), the fault-injected
# control plane (retry closures capturing channel state across simulated
# time, duplicated deliveries, chaos-driven teardown ordering), the
# chaos-containment suite (data-plane fault plans, router restarts and
# the compromised-NMS adversary from docs/fault_injection.md), and the
# static-analysis layer (random-graph soundness harness) — without paying
# the sanitized build on every ctest invocation.
#
# A second phase rebuilds with ThreadSanitizer (-DADTC_SANITIZE_THREAD=ON)
# and runs the genuinely multi-threaded subset: the thread pool /
# ParallelFor plumbing, the batched datapath tests that ride on it, and
# the sharded-engine suite — the lock-step barrier exchange unit tests
# plus the ShardStress world that drives cross-shard control channels,
# the sampler, and resync sweeps concurrently (docs/sharding.md).
# ASan/UBSan stays the default first phase; set ADTC_SKIP_TSAN=1 to skip
# the TSan phase (e.g. on toolchains without libtsan).
#
# Usage: tests/sanitize_smoke.sh [source-dir] [build-dir]
# Also registered with CTest when configured with -DADTC_SANITIZE_SMOKE=ON.
set -euo pipefail

SRC_DIR="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
BUILD_DIR="${2:-${SRC_DIR}/build-sanitize}"
FILTER="${ADTC_SANITIZE_FILTER:-Telemetry*:*Sampler*:MetricsRegistry*:Tracer*:Json*:EventBuffer*:EnumNames*:CounterTest*:ScopedWallTimer*:FaultInjector*:ControlChannel*:RetryPolicy*:WorseStatus*:DeploymentId*:*ChaosConvergence*:*ChaosContainment*:VerifierTest*:NetworkVerifierTest*:PlanSoundnessTest*:AnalysisSoundnessTest*:StaticAnalysisTest*:FlightRecorder*:TraceAnalyzer*:DurationPercentile*:*TraceReassembly*:SprtDetector*:EwmaDetector*:ClosedLoop*}"
TSAN_FILTER="${ADTC_TSAN_FILTER:-ThreadPoolTest*:ParallelForTest*:NetworkTest*:AdaptiveDeviceTest*:FlowCache*:AnalysisSoundnessTest*:NetworkVerifierTest*:PlanSoundnessTest*:FlightRecorder*:ShardedSingleTest*:ShardedMultiTest*:ShardStressTest*:ShardDeterminismTest*:*ChaosContainment*:SprtDetector*:ClosedLoop*}"

cmake -S "${SRC_DIR}" -B "${BUILD_DIR}" -DADTC_SANITIZE=ON \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "${BUILD_DIR}" --target adtc_tests -j "$(nproc)"

export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}"
"${BUILD_DIR}/tests/adtc_tests" --gtest_filter="${FILTER}" \
    --gtest_brief=1
echo "sanitize smoke (asan+ubsan): OK"

if [[ "${ADTC_SKIP_TSAN:-0}" != "1" ]]; then
  TSAN_BUILD_DIR="${BUILD_DIR}-tsan"
  cmake -S "${SRC_DIR}" -B "${TSAN_BUILD_DIR}" -DADTC_SANITIZE_THREAD=ON \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build "${TSAN_BUILD_DIR}" --target adtc_tests -j "$(nproc)"
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
      "${TSAN_BUILD_DIR}/tests/adtc_tests" --gtest_filter="${TSAN_FILTER}" \
      --gtest_brief=1
  echo "sanitize smoke (tsan): OK"
fi
echo "sanitize smoke: OK"
