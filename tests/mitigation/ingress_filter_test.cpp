#include "mitigation/ingress_filter.h"

#include <gtest/gtest.h>

#include "attack/agent.h"
#include "host/host.h"
#include "testutil.h"

namespace adtc {
namespace {

using testing::SmallWorld;

LinkParams FastLink() {
  return LinkParams{GigabitsPerSecond(1), Milliseconds(1), 1024 * 1024};
}

class SinkHost : public Host {
 public:
  void HandlePacket(Packet&& packet) override {
    received.push_back(std::move(packet));
  }
  std::vector<Packet> received;
};

TEST(IngressFilterTest, SpoofedAccessTrafficDropped) {
  SmallWorld world(21);
  const NodeId src_node = world.topo.stub_nodes[0];
  const NodeId dst_node = world.topo.stub_nodes[1];
  auto* sender = SpawnHost<SinkHost>(world.net, src_node, FastLink());
  auto* sink = SpawnHost<SinkHost>(world.net, dst_node, FastLink());

  auto filters = DeployIngressFiltering(world.net, world.topo, {src_node});

  // Truthful packet passes.
  sender->SendPacket(sender->MakePacket(sink->address(), Protocol::kUdp, 64));
  // Spoofed packet dropped at the very first router.
  Packet spoofed = sender->MakePacket(sink->address(), Protocol::kUdp, 64);
  spoofed.src = HostAddress(world.topo.stub_nodes[5], 1);
  spoofed.spoofed_src = true;
  sender->SendPacket(std::move(spoofed));

  world.net.Run(Seconds(1));
  EXPECT_EQ(sink->received.size(), 1u);
  EXPECT_EQ(filters[0]->dropped(), 1u);
}

TEST(IngressFilterTest, ProviderChecksCustomerCone) {
  SmallWorld world(23);
  const NodeId stub = world.topo.stub_nodes[0];
  const NodeId provider = world.topo.providers[stub][0];
  const NodeId dst_node = world.topo.stub_nodes[3];
  auto* sender = SpawnHost<SinkHost>(world.net, stub, FastLink());
  auto* sink = SpawnHost<SinkHost>(world.net, dst_node, FastLink());

  // Filtering at the provider only (the stub itself does not filter).
  auto filters =
      DeployIngressFiltering(world.net, world.topo, {provider});

  Packet spoofed = sender->MakePacket(sink->address(), Protocol::kUdp, 64);
  spoofed.src = HostAddress(dst_node, 7);  // outside the stub's cone
  spoofed.spoofed_src = true;
  sender->SendPacket(std::move(spoofed));
  sender->SendPacket(sender->MakePacket(sink->address(), Protocol::kUdp, 64));

  world.net.Run(Seconds(1));
  ASSERT_EQ(sink->received.size(), 1u);
  EXPECT_FALSE(sink->received[0].spoofed_src);
}

TEST(IngressFilterTest, TransitTrafficNeverChecked) {
  SmallWorld world(25);
  // Filter deployed at a transit node; traffic passing *through* it from
  // a peer link must not be source-checked.
  const NodeId transit = world.topo.transit_nodes[0];
  auto filters = DeployIngressFiltering(world.net, world.topo, {transit});

  const NodeId src_node = world.topo.stub_nodes[0];
  const NodeId dst_node = world.topo.stub_nodes[1];
  auto* sender = SpawnHost<SinkHost>(world.net, src_node, FastLink());
  auto* sink = SpawnHost<SinkHost>(world.net, dst_node, FastLink());
  // Spoofed packet from a non-filtering stub: the transit core carries it
  // if it arrives over peer links (it may be dropped if it arrives on the
  // customer link of `transit` from src_node's cone — only when transit
  // is src's provider). Pick a source whose provider differs.
  NodeId safe_src = src_node;
  for (NodeId stub : world.topo.stub_nodes) {
    if (world.topo.providers[stub][0] != transit) {
      safe_src = stub;
      break;
    }
  }
  (void)sender;
  auto* safe_sender = SpawnHost<SinkHost>(world.net, safe_src, FastLink());
  Packet spoofed =
      safe_sender->MakePacket(sink->address(), Protocol::kUdp, 64);
  spoofed.src = HostAddress(world.topo.stub_nodes[9], 3);
  spoofed.spoofed_src = true;
  safe_sender->SendPacket(std::move(spoofed));
  world.net.Run(Seconds(1));
  EXPECT_EQ(sink->received.size(), 1u);  // survived the transit core
}

TEST(SampleAsesTest, FractionAndDeterminism) {
  Rng rng1(5), rng2(5);
  const auto a = SampleAses(100, 0.2, rng1);
  const auto b = SampleAses(100, 0.2, rng2);
  EXPECT_EQ(a.size(), 20u);
  EXPECT_EQ(a, b);
  Rng rng3(5);
  EXPECT_TRUE(SampleAses(100, 0.0, rng3).empty());
  Rng rng4(5);
  EXPECT_EQ(SampleAses(100, 1.0, rng4).size(), 100u);
}

TEST(IngressFilterTest, CoverageReducesSpoofedDelivery) {
  // Property: more deploying ASes -> monotonically less spoofed traffic
  // delivered (within noise). This is the E3 mechanism in miniature.
  double previous_rate = 1.0;
  for (const double fraction : {0.0, 0.5, 1.0}) {
    SmallWorld world(31);
    const NodeId victim_node = world.topo.stub_nodes[0];
    auto* victim = SpawnHost<SinkHost>(world.net, victim_node, FastLink());

    AttackDirective directive;
    directive.type = AttackType::kDirectFlood;
    directive.victim = victim->address();
    directive.rate_pps = 100.0;
    directive.duration = Seconds(2);
    directive.spoof = SpoofMode::kRandom;
    std::vector<AgentHost*> agents;
    for (int i = 1; i <= 8; ++i) {
      agents.push_back(SpawnHost<AgentHost>(
          world.net, world.topo.stub_nodes[i], FastLink(), directive));
    }

    auto deploying = SampleAses(world.net.node_count(), fraction,
                                world.net.rng());
    auto filters = DeployIngressFiltering(world.net, world.topo, deploying);

    for (auto* agent : agents) agent->StartFlood();
    world.net.Run(Seconds(3));

    const auto& metrics = world.net.metrics();
    const double delivered_rate =
        metrics.sent(TrafficClass::kAttack) > 0
            ? static_cast<double>(metrics.delivered(TrafficClass::kAttack)) /
                  static_cast<double>(metrics.sent(TrafficClass::kAttack))
            : 0.0;
    EXPECT_LE(delivered_rate, previous_rate + 0.05)
        << "fraction " << fraction;
    previous_rate = delivered_rate;
  }
  EXPECT_LT(previous_rate, 0.05);  // full coverage kills ~all spoofing
}

}  // namespace
}  // namespace adtc
