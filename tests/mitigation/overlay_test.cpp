#include "mitigation/overlay_sos.h"

#include <gtest/gtest.h>

#include "attack/agent.h"
#include "host/client.h"
#include "mitigation/i3_indirection.h"
#include "mitigation/local_filter.h"
#include "testutil.h"

namespace adtc {
namespace {

using testing::SmallWorld;

LinkParams FastLink() {
  return LinkParams{GigabitsPerSecond(1), Milliseconds(1), 1024 * 1024};
}

struct SosWorld : SmallWorld {
  Server* target;
  NodeId target_node;
  std::unique_ptr<SosSystem> sos;

  explicit SosWorld(std::uint64_t seed = 91) : SmallWorld(seed, 4, 30) {
    target_node = topo.stub_nodes[0];
    target = SpawnHost<Server>(net, target_node, FastLink());
    SosSystem::Config config;
    config.soap_count = 3;
    config.beacon_count = 3;
    config.servlet_count = 2;
    sos = std::make_unique<SosSystem>(net, topo, target, config);
  }
};

TEST(SosTest, ClientReachesTargetThroughOverlay) {
  SosWorld world;
  SosClient::Config config;
  config.soaps = world.sos->soap_addresses();
  config.request_rate = 20.0;
  auto* client = SpawnHost<SosClient>(world.net, world.topo.stub_nodes[5],
                                      FastLink(), config);
  client->Start();
  world.net.Run(Seconds(3));
  client->Stop();
  EXPECT_GT(client->requests_sent(), 20u);
  EXPECT_GT(client->SuccessRatio(), 0.9);
}

TEST(SosTest, OverlayAddsLatencyStretch) {
  SosWorld world;
  // Direct client (no perimeter bypass: the perimeter filter would block
  // it, so measure direct latency in a twin world without SOS).
  SmallWorld twin(91, 4, 30);
  const NodeId target_node = twin.topo.stub_nodes[0];
  auto* direct_target = SpawnHost<Server>(twin.net, target_node, FastLink());
  ClientConfig direct_config;
  direct_config.server = direct_target->address();
  direct_config.kind = RequestKind::kUdpRequest;
  direct_config.request_rate = 20.0;
  auto* direct_client = SpawnHost<Client>(
      twin.net, twin.topo.stub_nodes[5], FastLink(), direct_config);
  direct_client->Start();
  twin.net.Run(Seconds(3));

  SosClient::Config config;
  config.soaps = world.sos->soap_addresses();
  config.request_rate = 20.0;
  auto* overlay_client = SpawnHost<SosClient>(
      world.net, world.topo.stub_nodes[5], FastLink(), config);
  overlay_client->Start();
  world.net.Run(Seconds(3));

  ASSERT_GT(overlay_client->responses_received(), 10u);
  ASSERT_GT(direct_client->stats().responses_received, 10u);
  EXPECT_GT(overlay_client->latency_ms().mean(),
            direct_client->stats().latency_ms.mean() * 1.5);
}

TEST(SosTest, PerimeterBlocksDirectAttack) {
  SosWorld world;
  AttackDirective directive;
  directive.type = AttackType::kDirectFlood;
  directive.victim = world.target->address();
  directive.rate_pps = 300.0;
  directive.duration = Seconds(3);
  directive.spoof = SpoofMode::kNone;
  auto* agent = SpawnHost<AgentHost>(world.net, world.topo.stub_nodes[9],
                                     FastLink(), directive);
  agent->StartFlood();
  world.net.Run(Seconds(4));
  EXPECT_GT(world.sos->perimeter()->blocked(), 500u);
  EXPECT_EQ(world.target->stats().requests_received, 0u);
}

TEST(SosTest, SpoofingInsideAllowedPrefixLeaksThroughPerimeter) {
  // A perimeter that whitelists the target's own AS can be beaten by
  // spoofing sources inside that AS — an inherent limit of address-based
  // perimeters (and one reason the paper insists on anti-spoofing at the
  // *source* edge instead).
  SosWorld world;
  AttackDirective directive;
  directive.type = AttackType::kDirectFlood;
  directive.victim = world.target->address();
  directive.rate_pps = 300.0;
  directive.duration = Seconds(3);
  directive.spoof = SpoofMode::kRandom;  // occasionally hits the target /20
  auto* agent = SpawnHost<AgentHost>(world.net, world.topo.stub_nodes[9],
                                     FastLink(), directive);
  agent->StartFlood();
  world.net.Run(Seconds(4));
  EXPECT_GT(world.sos->perimeter()->blocked(), 500u);
  EXPECT_GT(world.target->stats().requests_received, 0u);  // the leak
}

TEST(SosTest, OverlayClientsSurviveDirectAttack) {
  SosWorld world;
  SosClient::Config config;
  config.soaps = world.sos->soap_addresses();
  config.request_rate = 20.0;
  auto* client = SpawnHost<SosClient>(world.net, world.topo.stub_nodes[5],
                                      FastLink(), config);
  AttackDirective directive;
  directive.type = AttackType::kDirectFlood;
  directive.victim = world.target->address();
  directive.rate_pps = 500.0;
  directive.duration = Seconds(4);
  auto* agent = SpawnHost<AgentHost>(world.net, world.topo.stub_nodes[9],
                                     FastLink(), directive);
  client->Start();
  agent->StartFlood();
  world.net.Run(Seconds(5));
  EXPECT_GT(client->SuccessRatio(), 0.85);
}

TEST(SosTest, TrustRelationshipsScaleWithMembersTimesOverlay) {
  EXPECT_EQ(SosSystem::TrustRelationships(1000, 8), 8000u);
  EXPECT_EQ(SosSystem::TrustRelationships(1'000'000, 50), 50'000'000u);
}

TEST(I3Test, TriggerIndirectionWorks) {
  SmallWorld world(93);
  const NodeId server_node = world.topo.stub_nodes[0];
  const NodeId i3_node_as = world.topo.stub_nodes[3];
  auto* server = SpawnHost<Server>(world.net, server_node, FastLink());
  auto* i3 = SpawnHost<I3Node>(world.net, i3_node_as, FastLink());
  i3->InsertTrigger(1, server->address(), server->config().service_port);

  I3Client::Config config;
  config.i3_node = i3->address();
  config.trigger = 1;
  config.request_rate = 20.0;
  auto* client = SpawnHost<I3Client>(world.net, world.topo.stub_nodes[6],
                                     FastLink(), config);
  client->Start();
  world.net.Run(Seconds(3));
  EXPECT_GT(client->SuccessRatio(), 0.9);
  EXPECT_GT(i3->forwarded(), 20u);
}

TEST(I3Test, UnknownTriggerBlackholes) {
  SmallWorld world(95);
  auto* server = SpawnHost<Server>(world.net, world.topo.stub_nodes[0],
                                   FastLink());
  auto* i3 = SpawnHost<I3Node>(world.net, world.topo.stub_nodes[3],
                               FastLink());
  i3->InsertTrigger(1, server->address(), 80);
  I3Client::Config config;
  config.i3_node = i3->address();
  config.trigger = 99;  // not registered
  config.request_rate = 20.0;
  config.timeout = Milliseconds(500);
  auto* client = SpawnHost<I3Client>(world.net, world.topo.stub_nodes[6],
                                     FastLink(), config);
  client->Start();
  world.net.Run(Seconds(2));
  EXPECT_EQ(client->responses_received(), 0u);
}

TEST(I3Test, PerimeterAdmitsOnlyI3Sources) {
  SmallWorld world(97);
  const NodeId server_node = world.topo.stub_nodes[0];
  auto* server = SpawnHost<Server>(world.net, server_node, FastLink());
  auto* i3 = SpawnHost<I3Node>(world.net, world.topo.stub_nodes[3],
                               FastLink());
  i3->InsertTrigger(1, server->address(), server->config().service_port);
  I3Perimeter perimeter(server->address(), {i3->address()});
  world.net.AddProcessor(server_node, &perimeter);

  // i3 path works.
  I3Client::Config config;
  config.i3_node = i3->address();
  config.trigger = 1;
  config.request_rate = 20.0;
  auto* client = SpawnHost<I3Client>(world.net, world.topo.stub_nodes[6],
                                     FastLink(), config);
  client->Start();
  // Direct flood dies at the perimeter.
  AttackDirective directive;
  directive.type = AttackType::kDirectFlood;
  directive.victim = server->address();
  directive.rate_pps = 200.0;
  directive.duration = Seconds(3);
  auto* agent = SpawnHost<AgentHost>(world.net, world.topo.stub_nodes[9],
                                     FastLink(), directive);
  agent->StartFlood();
  world.net.Run(Seconds(4));
  EXPECT_GT(client->SuccessRatio(), 0.85);
  EXPECT_GT(perimeter.blocked(), 300u);
}

TEST(LastHopFilterTest, InstallWorksWithHeadroom) {
  SmallWorld world(99);
  auto* victim = SpawnHost<Server>(world.net, world.topo.stub_nodes[0],
                                   FastLink());
  LastHopFilter filter(world.net, victim);
  MatchRule rule;
  rule.proto = Protocol::kUdp;
  ADTC_EXPECT_OK(filter.TryInstall(rule));
  EXPECT_EQ(filter.rule_count(), 1u);
}

TEST(LastHopFilterTest, InstallFailsUnderCpuExhaustion) {
  SmallWorld world(101);
  ServerConfig config;
  config.cpu_capacity_rps = 50.0;
  config.cpu_burst = 25.0;
  const NodeId victim_node = world.topo.stub_nodes[0];
  auto* victim = SpawnHost<Server>(world.net, victim_node, FastLink(),
                                   config);
  LastHopFilter filter(world.net, victim);

  AttackDirective directive;
  directive.type = AttackType::kDirectFlood;
  directive.victim = victim->address();
  directive.flood_proto = Protocol::kUdp;
  directive.rate_pps = 500.0;
  directive.duration = Seconds(4);
  auto* agent = SpawnHost<AgentHost>(world.net, world.topo.stub_nodes[7],
                                     FastLink(), directive);
  agent->StartFlood();
  world.net.Run(Seconds(2));

  MatchRule rule;
  rule.proto = Protocol::kUdp;
  const Status status = filter.TryInstall(rule);
  EXPECT_EQ(status.code(), ErrorCode::kResourceExhausted);
  EXPECT_EQ(filter.install_failures(), 1u);

  // The out-of-band ablation path always works.
  filter.ForceInstall(rule);
  world.net.Run(Seconds(2));
  EXPECT_GT(filter.dropped(), 100u);
}

TEST(LastHopFilterTest, FilterOnlyAffectsVictimTraffic) {
  SmallWorld world(103);
  const NodeId shared_node = world.topo.stub_nodes[0];
  auto* victim = SpawnHost<Server>(world.net, shared_node, FastLink());
  auto* neighbour = SpawnHost<Server>(world.net, shared_node, FastLink());
  LastHopFilter filter(world.net, victim);
  MatchRule all;
  filter.ForceInstall(all);

  ClientConfig config;
  config.server = neighbour->address();
  config.kind = RequestKind::kUdpRequest;
  config.request_rate = 20.0;
  auto* client = SpawnHost<Client>(world.net, world.topo.stub_nodes[4],
                                   FastLink(), config);
  client->Start();
  world.net.Run(Seconds(2));
  // The co-located neighbour is unaffected by the victim's rules.
  EXPECT_GT(client->stats().SuccessRatio(), 0.9);
}

}  // namespace
}  // namespace adtc
