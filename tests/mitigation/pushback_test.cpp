#include "mitigation/pushback.h"

#include <gtest/gtest.h>

#include "attack/agent.h"
#include "host/client.h"
#include "host/server.h"
#include "testutil.h"

namespace adtc {
namespace {

using testing::SmallWorld;

LinkParams FastLink() {
  return LinkParams{GigabitsPerSecond(1), Milliseconds(1), 1024 * 1024};
}

/// Victim with a deliberately thin access link so floods overload it.
struct PushbackWorld : SmallWorld {
  Server* victim;
  NodeId victim_node;
  std::vector<AgentHost*> agents;

  explicit PushbackWorld(std::uint64_t seed, double attack_pps,
                         SpoofMode spoof = SpoofMode::kNone,
                         LinkParams victim_access = {MegabitsPerSecond(2),
                                                     Milliseconds(2),
                                                     32 * 1024})
      : SmallWorld(seed, 4, 30) {
    victim_node = topo.stub_nodes[0];
    victim = SpawnHost<Server>(net, victim_node, victim_access);
    AttackDirective directive;
    directive.type = AttackType::kDirectFlood;
    directive.victim = victim->address();
    directive.rate_pps = attack_pps;
    directive.duration = Seconds(6);
    directive.spoof = spoof;
    directive.packet_bytes = 400;
    for (int i = 1; i <= 6; ++i) {
      agents.push_back(SpawnHost<AgentHost>(net, topo.stub_nodes[i],
                                            FastLink(), directive));
    }
  }

  void LaunchAll() {
    for (auto* agent : agents) agent->StartFlood();
  }
};

TEST(PushbackTest, DetectsCongestionAndInstallsRules) {
  PushbackWorld world(41, /*attack_pps=*/800.0);
  PushbackConfig config;
  config.drop_count_trigger = 50;
  PushbackSystem pushback(world.net, config);
  // Cooperating everywhere.
  for (NodeId node = 0; node < world.net.node_count(); ++node) {
    pushback.EnableOn(node);
  }
  pushback.Start();
  world.LaunchAll();
  world.net.Run(Seconds(6));

  EXPECT_GT(pushback.stats().reactions, 0u);
  EXPECT_GT(pushback.stats().rules_installed, 0u);
  EXPECT_GT(pushback.stats().packets_rate_limited, 0u);
  // Rules live at the victim's AS router (congested downlink owner).
  EXPECT_FALSE(pushback.ActiveLimitsAt(world.victim_node).empty());
}

TEST(PushbackTest, NoCongestionNoReaction) {
  // The paper's server-farm case: fat uplink, CPU dies first. Attack at
  // a rate that exhausts the server but never the 100 Mbps link.
  ServerConfig weak_server;
  weak_server.cpu_capacity_rps = 50.0;
  weak_server.cpu_burst = 25.0;
  PushbackWorld world(43, /*attack_pps=*/150.0, SpoofMode::kNone,
                      LinkParams{MegabitsPerSecond(100), Milliseconds(2),
                                 1024 * 1024});
  world.victim->config() = weak_server;

  PushbackConfig config;
  config.drop_count_trigger = 50;
  PushbackSystem pushback(world.net, config);
  for (NodeId node = 0; node < world.net.node_count(); ++node) {
    pushback.EnableOn(node);
  }
  pushback.Start();
  world.LaunchAll();
  world.net.Run(Seconds(6));

  // The victim was overwhelmed ...
  EXPECT_GT(world.victim->stats().denied_cpu, 100u);
  // ... but pushback saw no link drops and never engaged.
  EXPECT_EQ(pushback.stats().reactions, 0u);
  EXPECT_EQ(pushback.stats().rules_installed, 0u);
}

TEST(PushbackTest, SpoofedSourcesCauseCollateralAggregates) {
  PushbackWorld world(47, /*attack_pps=*/800.0, SpoofMode::kRandom);
  PushbackConfig config;
  config.drop_count_trigger = 50;
  config.top_k = 5;
  PushbackSystem pushback(world.net, config);
  for (NodeId node = 0; node < world.net.node_count(); ++node) {
    pushback.EnableOn(node);
  }
  pushback.Start();
  world.LaunchAll();
  world.net.Run(Seconds(6));

  ASSERT_GT(pushback.stats().rules_installed, 0u);
  std::vector<NodeId> agent_nodes;
  for (auto* agent : world.agents) {
    agent_nodes.push_back(world.net.host_node(agent->id()));
  }
  // With uniformly spoofed sources the "top aggregates" are innocent
  // prefixes: collateral.
  EXPECT_GT(pushback.CollateralAggregates(agent_nodes), 0u);
}

TEST(PushbackTest, TruthfulSourcesAreIdentifiedCorrectly) {
  PushbackWorld world(53, /*attack_pps=*/800.0, SpoofMode::kNone);
  PushbackConfig config;
  config.drop_count_trigger = 50;
  config.top_k = 3;
  PushbackSystem pushback(world.net, config);
  for (NodeId node = 0; node < world.net.node_count(); ++node) {
    pushback.EnableOn(node);
  }
  pushback.Start();
  world.LaunchAll();
  world.net.Run(Seconds(6));

  ASSERT_GT(pushback.stats().rules_installed, 0u);
  std::vector<NodeId> agent_nodes;
  for (auto* agent : world.agents) {
    agent_nodes.push_back(world.net.host_node(agent->id()));
  }
  // Without spoofing, the identified aggregates are the real agents'.
  EXPECT_EQ(pushback.CollateralAggregates(agent_nodes), 0u);
}

TEST(PushbackTest, PropagationStopsAtNonCooperatingRouter) {
  PushbackWorld world(59, /*attack_pps=*/800.0, SpoofMode::kNone);
  PushbackConfig config;
  config.drop_count_trigger = 50;
  PushbackSystem pushback(world.net, config);
  // Only the victim's AS cooperates; everything upstream does not.
  pushback.EnableOn(world.victim_node);
  pushback.Start();
  world.LaunchAll();
  world.net.Run(Seconds(6));

  EXPECT_GT(pushback.stats().rules_installed, 0u);
  EXPECT_GT(pushback.stats().propagation_blocked, 0u);
  // No upstream router carries rules.
  for (NodeId node = 0; node < world.net.node_count(); ++node) {
    if (node == world.victim_node) continue;
    EXPECT_TRUE(pushback.ActiveLimitsAt(node).empty());
  }
}

TEST(PushbackTest, RulesExpireAfterAttackEnds) {
  PushbackWorld world(61, /*attack_pps=*/800.0, SpoofMode::kNone);
  PushbackConfig config;
  config.drop_count_trigger = 50;
  config.rule_timeout = Seconds(2);
  PushbackSystem pushback(world.net, config);
  for (NodeId node = 0; node < world.net.node_count(); ++node) {
    pushback.EnableOn(node);
  }
  pushback.Start();
  world.LaunchAll();
  world.net.Run(Seconds(6));
  EXPECT_FALSE(pushback.ActiveLimitsAt(world.victim_node).empty());
  // Attack over (duration 6 s); rules age out.
  world.net.Run(Seconds(6));
  EXPECT_TRUE(pushback.ActiveLimitsAt(world.victim_node).empty());
}

TEST(PushbackTest, EnableFractionDeterministic) {
  Network net_a(71), net_b(71);
  for (int i = 0; i < 20; ++i) {
    net_a.AddNode(NodeRole::kStub);
    net_b.AddNode(NodeRole::kStub);
  }
  PushbackSystem a(net_a), b(net_b);
  a.EnableFraction(0.5);
  b.EnableFraction(0.5);
  for (NodeId node = 0; node < 20; ++node) {
    EXPECT_EQ(a.EnabledOn(node), b.EnabledOn(node));
  }
}

}  // namespace
}  // namespace adtc
