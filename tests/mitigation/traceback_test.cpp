#include <gtest/gtest.h>

#include <algorithm>

#include "attack/scenario.h"
#include "host/host.h"
#include "mitigation/traceback_ppm.h"
#include "mitigation/traceback_spie.h"
#include "net/reverse_path.h"
#include "testutil.h"

namespace adtc {
namespace {

using testing::SmallWorld;

LinkParams FastLink() {
  return LinkParams{GigabitsPerSecond(1), Milliseconds(1), 1024 * 1024};
}

class SinkHost : public Host {
 public:
  void HandlePacket(Packet&& packet) override {
    received.push_back(std::move(packet));
  }
  std::vector<Packet> received;
};

bool Contains(const std::vector<NodeId>& v, NodeId x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

TEST(ReversePathTest, SimpleChainReconstruction) {
  Network net(1);
  for (int i = 0; i < 5; ++i) net.AddNode(NodeRole::kTransit);
  for (NodeId i = 0; i < 4; ++i) {
    net.Connect(i, i + 1, FastLink(), LinkKind::kPeer);
  }
  net.FinalizeRouting();
  // Nodes 1..4 "saw" the packet; victim at 4, origin at 1.
  const auto result = ReconstructOrigins(net, 4, [](NodeId node) {
    return node >= 1;
  });
  EXPECT_TRUE(Contains(result.path_nodes, 2));
  ASSERT_EQ(result.origin_nodes.size(), 1u);
  EXPECT_EQ(result.origin_nodes[0], 1u);
}

TEST(ReversePathTest, BranchingAttackTree) {
  // Star: victim 0; two branches 0-1-2 and 0-3-4.
  Network net(2);
  for (int i = 0; i < 5; ++i) net.AddNode(NodeRole::kTransit);
  net.Connect(0, 1, FastLink(), LinkKind::kPeer);
  net.Connect(1, 2, FastLink(), LinkKind::kPeer);
  net.Connect(0, 3, FastLink(), LinkKind::kPeer);
  net.Connect(3, 4, FastLink(), LinkKind::kPeer);
  net.FinalizeRouting();
  const auto result = ReconstructOrigins(net, 0, [](NodeId node) {
    return node != 0;  // all other nodes saw it
  });
  EXPECT_EQ(result.origin_nodes.size(), 2u);
  EXPECT_TRUE(Contains(result.origin_nodes, 2));
  EXPECT_TRUE(Contains(result.origin_nodes, 4));
}

TEST(SpieTest, TracesDirectFloodToAgentAs) {
  SmallWorld world(81);
  SpieSystem spie(world.net);
  spie.EnableAll();

  const NodeId victim_node = world.topo.stub_nodes[0];
  const NodeId agent_node = world.topo.stub_nodes[5];
  auto* victim = SpawnHost<SinkHost>(world.net, victim_node, FastLink());
  auto* agent = SpawnHost<SinkHost>(world.net, agent_node, FastLink());

  Packet attack = agent->MakePacket(victim->address(), Protocol::kUdp, 100);
  attack.klass = TrafficClass::kAttack;
  attack.src = HostAddress(world.topo.stub_nodes[9], 3);  // spoofed!
  attack.spoofed_src = true;
  agent->SendPacket(std::move(attack));
  world.net.Run(Seconds(1));
  ASSERT_EQ(victim->received.size(), 1u);

  const auto trace = spie.Trace(victim->received[0], victim_node);
  // Despite the spoofed source, SPIE finds the true entry AS.
  EXPECT_TRUE(Contains(trace.origin_nodes, agent_node));
  EXPECT_FALSE(Contains(trace.origin_nodes, world.topo.stub_nodes[9]));
}

TEST(SpieTest, ReflectorAttackTracesToReflectorNotAgent) {
  // The E1 mechanism: the packet the victim holds was emitted by the
  // reflector, so its trace ends at the reflector's AS — not the agent's.
  SmallWorld world(83);
  SpieSystem spie(world.net);
  spie.EnableAll();

  const NodeId victim_node = world.topo.stub_nodes[0];
  const NodeId reflector_node = world.topo.stub_nodes[7];
  const NodeId agent_node = world.topo.stub_nodes[13];
  auto* victim = SpawnHost<SinkHost>(world.net, victim_node, FastLink());
  auto* reflector =
      SpawnHost<Server>(world.net, reflector_node, FastLink());

  AttackDirective directive;
  directive.type = AttackType::kReflector;
  directive.victim = victim->address();
  directive.reflectors = {reflector->address()};
  directive.reflector_proto = Protocol::kTcp;
  directive.reflector_port = reflector->config().service_port;
  directive.rate_pps = 100.0;
  directive.duration = Seconds(2);
  auto* agent =
      SpawnHost<AgentHost>(world.net, agent_node, FastLink(), directive);
  agent->StartFlood();
  world.net.Run(Seconds(3));

  ASSERT_FALSE(victim->received.empty());
  const Packet& reflected = victim->received.front();
  EXPECT_EQ(reflected.klass, TrafficClass::kReflected);
  const auto trace = spie.Trace(reflected, victim_node);
  // The trace finds the reflector's AS — the "wrong attack source".
  EXPECT_TRUE(Contains(trace.origin_nodes, reflector_node));
  EXPECT_FALSE(Contains(trace.origin_nodes, agent_node));
}

TEST(SpieTest, PartialDeploymentShortensTrace) {
  Network net(85);
  for (int i = 0; i < 6; ++i) net.AddNode(NodeRole::kTransit);
  for (NodeId i = 0; i < 5; ++i) {
    net.Connect(i, i + 1, FastLink(), LinkKind::kPeer);
  }
  auto* victim = SpawnHost<SinkHost>(net, 5, FastLink());
  auto* agent = SpawnHost<SinkHost>(net, 0, FastLink());
  net.FinalizeRouting();

  SpieSystem spie(net);
  // Only routers 3..5 participate.
  spie.EnableOn(3);
  spie.EnableOn(4);
  spie.EnableOn(5);

  Packet attack = agent->MakePacket(victim->address(), Protocol::kUdp, 100);
  agent->SendPacket(std::move(attack));
  net.Run(Seconds(1));
  ASSERT_EQ(victim->received.size(), 1u);
  const auto trace = spie.Trace(victim->received[0], 5);
  // The trace dead-ends at node 3 (first non-participating upstream).
  ASSERT_EQ(trace.origin_nodes.size(), 1u);
  EXPECT_EQ(trace.origin_nodes[0], 3u);
}

TEST(PpmTest, VictimReconstructsPathFromMarks) {
  Network net(87);
  for (int i = 0; i < 6; ++i) net.AddNode(NodeRole::kTransit);
  for (NodeId i = 0; i < 5; ++i) {
    net.Connect(i, i + 1, FastLink(), LinkKind::kPeer);
  }
  auto* victim = SpawnHost<SinkHost>(net, 5, FastLink());
  auto* agent = SpawnHost<SinkHost>(net, 0, FastLink());
  net.FinalizeRouting();

  PpmSystem ppm(net);
  ppm.EnableAll();

  // Thousands of packets so every edge gets sampled.
  for (int i = 0; i < 3000; ++i) {
    Packet attack = agent->MakePacket(victim->address(), Protocol::kUdp, 64);
    attack.klass = TrafficClass::kAttack;
    agent->SendPacket(std::move(attack));
  }
  net.Run(Seconds(10));
  for (const Packet& packet : victim->received) {
    ppm.Observe(packet);
  }
  ASSERT_GT(ppm.observed_marks(), 100u);
  const auto origins = ppm.InferredOrigins();
  // The agent's first-hop router (node 0) marks edges that never appear
  // as edge ends.
  ASSERT_FALSE(origins.empty());
  EXPECT_TRUE(Contains(origins, 0));
}

TEST(PpmTest, NoMarksNoOrigins) {
  Network net(89);
  PpmSystem ppm(net);
  EXPECT_TRUE(ppm.InferredOrigins().empty());
  EXPECT_EQ(ppm.observed_marks(), 0u);
}

TEST(PpmTest, MarkDistanceSaturates) {
  Network net(91);
  for (int i = 0; i < 3; ++i) net.AddNode(NodeRole::kTransit);
  net.Connect(0, 1, FastLink(), LinkKind::kPeer);
  net.Connect(1, 2, FastLink(), LinkKind::kPeer);
  net.FinalizeRouting();
  PpmSystem::Config config;
  config.marking_probability = 1.0;  // always mark: distance resets often
  PpmSystem ppm(net, config);
  ppm.EnableAll();
  auto* victim = SpawnHost<SinkHost>(net, 2, FastLink());
  auto* agent = SpawnHost<SinkHost>(net, 0, FastLink());
  agent->SendPacket(agent->MakePacket(victim->address(), Protocol::kUdp, 64));
  net.Run(Seconds(1));
  ASSERT_EQ(victim->received.size(), 1u);
  // With p=1 the last router always overwrites: the victim sees the
  // nearest router's mark with distance 0.
  EXPECT_TRUE(victim->received[0].ppm.valid);
  EXPECT_EQ(victim->received[0].ppm.edge_start, 2u);
  EXPECT_EQ(victim->received[0].ppm.distance, 0);
}

}  // namespace
}  // namespace adtc
