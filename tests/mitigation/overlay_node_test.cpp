// OverlayNode internals: forwarding chain, reply-path state and edge
// cases not covered by the end-to-end SOS tests.
#include <gtest/gtest.h>

#include <set>

#include "host/server.h"
#include "mitigation/overlay_sos.h"
#include "testutil.h"

namespace adtc {
namespace {

using testing::SmallWorld;

LinkParams FastLink() {
  return LinkParams{GigabitsPerSecond(1), Milliseconds(1), 1024 * 1024};
}

class ProbeHost : public Host {
 public:
  void HandlePacket(Packet&& packet) override {
    received.push_back(std::move(packet));
  }
  std::vector<Packet> received;
};

struct ChainWorld : SmallWorld {
  Server* target;
  OverlayNode* servlet;
  OverlayNode* beacon;
  OverlayNode* soap;
  ProbeHost* client;

  ChainWorld() : SmallWorld(5) {
    target = SpawnHost<Server>(net, topo.stub_nodes[0], FastLink());
    servlet = SpawnHost<OverlayNode>(net, topo.stub_nodes[3], FastLink(),
                                     OverlayNode::Role::kServlet,
                                     target->address(),
                                     target->config().service_port);
    beacon = SpawnHost<OverlayNode>(net, topo.stub_nodes[5], FastLink(),
                                    OverlayNode::Role::kBeacon,
                                    target->address(),
                                    target->config().service_port);
    beacon->SetNextHops({servlet->address()});
    soap = SpawnHost<OverlayNode>(net, topo.stub_nodes[7], FastLink(),
                                  OverlayNode::Role::kSoap,
                                  target->address(),
                                  target->config().service_port);
    soap->SetNextHops({beacon->address()});
    client = SpawnHost<ProbeHost>(net, topo.stub_nodes[9], FastLink());
  }

  void SendViaOverlay(std::uint64_t txn) {
    Packet request = client->MakePacket(soap->address(), Protocol::kUdp, 64);
    request.dst_port = kOverlayForwardPort;
    request.payload_hash = txn;
    client->SendPacket(std::move(request));
  }
};

TEST(OverlayNodeTest, FullChainDeliversAndRepliesRetracePath) {
  ChainWorld world;
  world.SendViaOverlay(/*txn=*/42);
  world.net.Run(Seconds(2));

  // Target was reached via SOAP -> beacon -> servlet.
  EXPECT_EQ(world.target->stats().requests_received, 1u);
  EXPECT_EQ(world.soap->forwarded(), 1u);
  EXPECT_EQ(world.beacon->forwarded(), 1u);
  EXPECT_EQ(world.servlet->forwarded(), 1u);

  // The reply came back to the client carrying the txn.
  ASSERT_EQ(world.client->received.size(), 1u);
  EXPECT_EQ(world.client->received[0].dst_port, kOverlayReplyPort);
  EXPECT_EQ(world.client->received[0].payload_hash, 42u);
  // ...from the SOAP (the client's entry point), not the target directly.
  EXPECT_EQ(world.client->received[0].src, world.soap->address());
}

TEST(OverlayNodeTest, DistinctTxnsKeptApart) {
  ChainWorld world;
  world.SendViaOverlay(1);
  world.SendViaOverlay(2);
  world.SendViaOverlay(3);
  world.net.Run(Seconds(2));
  ASSERT_EQ(world.client->received.size(), 3u);
  std::set<std::uint64_t> txns;
  for (const Packet& reply : world.client->received) {
    txns.insert(reply.payload_hash);
  }
  EXPECT_EQ(txns, (std::set<std::uint64_t>{1, 2, 3}));
}

TEST(OverlayNodeTest, ReplyPathStateIsConsumedOnce) {
  ChainWorld world;
  world.SendViaOverlay(7);
  world.net.Run(Seconds(2));
  ASSERT_EQ(world.client->received.size(), 1u);

  // Replaying the same reply txn at the SOAP finds no pending state:
  // nothing more reaches the client (no amplification through replays).
  Packet replay = world.client->MakePacket(world.soap->address(),
                                           Protocol::kUdp, 64);
  replay.dst_port = kOverlayReplyPort;
  replay.payload_hash = 7;
  world.client->SendPacket(std::move(replay));
  world.net.Run(Seconds(1));
  EXPECT_EQ(world.client->received.size(), 1u);
}

TEST(OverlayNodeTest, SoapWithoutNextHopsBlackholes) {
  SmallWorld world(9);
  auto* target = SpawnHost<Server>(world.net, world.topo.stub_nodes[0],
                                   FastLink());
  auto* lonely = SpawnHost<OverlayNode>(world.net, world.topo.stub_nodes[3],
                                        FastLink(),
                                        OverlayNode::Role::kSoap,
                                        target->address(), 80);
  auto* client = SpawnHost<ProbeHost>(world.net, world.topo.stub_nodes[5],
                                      FastLink());
  Packet request = client->MakePacket(lonely->address(), Protocol::kUdp, 64);
  request.dst_port = kOverlayForwardPort;
  request.payload_hash = 1;
  client->SendPacket(std::move(request));
  world.net.Run(Seconds(1));
  EXPECT_TRUE(client->received.empty());
  EXPECT_EQ(target->stats().requests_received, 0u);
}

TEST(OverlayNodeTest, BeaconRoundRobinsAcrossServlets) {
  SmallWorld world(11);
  auto* target = SpawnHost<Server>(world.net, world.topo.stub_nodes[0],
                                   FastLink());
  auto* servlet_a = SpawnHost<OverlayNode>(
      world.net, world.topo.stub_nodes[3], FastLink(),
      OverlayNode::Role::kServlet, target->address(), 80);
  auto* servlet_b = SpawnHost<OverlayNode>(
      world.net, world.topo.stub_nodes[4], FastLink(),
      OverlayNode::Role::kServlet, target->address(), 80);
  auto* beacon = SpawnHost<OverlayNode>(
      world.net, world.topo.stub_nodes[5], FastLink(),
      OverlayNode::Role::kBeacon, target->address(), 80);
  beacon->SetNextHops({servlet_a->address(), servlet_b->address()});
  auto* client = SpawnHost<ProbeHost>(world.net, world.topo.stub_nodes[9],
                                      FastLink());
  for (std::uint64_t txn = 1; txn <= 6; ++txn) {
    Packet request = client->MakePacket(beacon->address(), Protocol::kUdp,
                                        64);
    request.dst_port = kOverlayForwardPort;
    request.payload_hash = txn;
    client->SendPacket(std::move(request));
  }
  world.net.Run(Seconds(2));
  EXPECT_EQ(servlet_a->forwarded(), 3u);
  EXPECT_EQ(servlet_b->forwarded(), 3u);
  EXPECT_EQ(target->stats().requests_received, 6u);
}

}  // namespace
}  // namespace adtc
