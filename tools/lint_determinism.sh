#!/usr/bin/env bash
# Greps src/ for constructs that break simulator determinism: wall-clock
# reads, libc randomness, and range-iteration over unordered containers
# in one line (iteration order is implementation-defined, so any
# sim-visible effect ordered by it diverges across platforms).
#
# Usage: tools/lint_determinism.sh [src-subdir]
#   src-subdir  defaults to 'src' — pass e.g. 'src/core' to lint one
#               subsystem
#
# Intentional uses (e.g. the obs wall-clock profiling hooks, which never
# feed sim state) are suppressed via tools/determinism_allowlist.txt:
# one "path-substring:pattern-label" entry per line, '#' comments.
# Comment-only lines are ignored entirely.
set -euo pipefail

SRC_DIR="$(cd "$(dirname "$0")/.." && pwd)"
SUBDIR="${1:-src}"
ALLOWLIST="${SRC_DIR}/tools/determinism_allowlist.txt"

if [[ ! -d "${SRC_DIR}/${SUBDIR}" ]]; then
  echo "lint_determinism: no directory '${SUBDIR}'; skipping (OK)"
  exit 0
fi

# label<TAB>extended-regex — labels key the allowlist.
PATTERNS=$(cat <<'EOF'
wall-clock	\b(time|clock|gettimeofday)\s*\(
libc-rand	\b(rand|srand|random)\s*\(
random-device	std::random_device
chrono-now	(system_clock|steady_clock|high_resolution_clock)::now
unordered-iteration	for\s*\(.*:.*unordered_(map|set)
EOF
)

allowed() {  # $1 = file path, $2 = pattern label
  [[ -f "${ALLOWLIST}" ]] || return 1
  while IFS= read -r entry; do
    [[ -z "${entry}" || "${entry}" == \#* ]] && continue
    local path_part="${entry%%:*}" label_part="${entry#*:}"
    if [[ "$1" == *"${path_part}"* && "$2" == "${label_part}" ]]; then
      return 0
    fi
  done < "${ALLOWLIST}"
  return 1
}

STATUS=0
FINDINGS=0
while IFS=$'\t' read -r label regex; do
  [[ -z "${label}" ]] && continue
  while IFS=: read -r file line content; do
    [[ -z "${file}" ]] && continue
    # Strip the //-comment tail and re-test, so prose about "simulated
    # time (…)" never trips the lint — only code does.
    code="${content%%//*}"
    printf '%s' "${code}" | grep -qE "${regex}" || continue
    allowed "${file}" "${label}" && continue
    echo "lint_determinism: ${label}: ${file}:${line}:${content}"
    FINDINGS=$((FINDINGS + 1))
    STATUS=1
  done < <(cd "${SRC_DIR}" && grep -rnE "${regex}" "${SUBDIR}" \
             --include='*.h' --include='*.cpp' || true)
done <<< "${PATTERNS}"

if [[ ${STATUS} -ne 0 ]]; then
  echo "lint_determinism: ${FINDINGS} finding(s) — wall-clock/randomness" \
       "must flow through the sim clock and the world Rng (or be" \
       "allowlisted in tools/determinism_allowlist.txt)"
  exit 1
fi
echo "lint_determinism: clean (${SUBDIR})"
