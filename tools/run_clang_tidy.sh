#!/usr/bin/env bash
# Runs clang-tidy (using the checked-in .clang-tidy) over the project
# sources against a compile_commands.json.
#
# Usage: tools/run_clang_tidy.sh [build-dir] [path-filter-regex]
#   build-dir          defaults to ./build (created/configured if missing)
#   path-filter-regex  defaults to 'src/' — pass e.g. 'src/analysis' to
#                      lint one subsystem
#
# Exits 0 with a notice when clang-tidy is not installed, so CI recipes
# can call it unconditionally (the container ships only gcc).
set -euo pipefail

SRC_DIR="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-${SRC_DIR}/build}"
PATH_FILTER="${2:-src/}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy: clang-tidy not found on PATH; skipping (OK)"
  exit 0
fi

if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
  cmake -S "${SRC_DIR}" -B "${BUILD_DIR}" \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

mapfile -t FILES < <(cd "${SRC_DIR}" && git ls-files '*.cpp' \
    | grep -E "^${PATH_FILTER}" || true)
if [[ ${#FILES[@]} -eq 0 ]]; then
  echo "run_clang_tidy: no files match '${PATH_FILTER}'"
  exit 0
fi

STATUS=0
for file in "${FILES[@]}"; do
  clang-tidy -p "${BUILD_DIR}" --quiet "${SRC_DIR}/${file}" || STATUS=1
done

if [[ ${STATUS} -ne 0 ]]; then
  echo "run_clang_tidy: findings reported above"
  exit 1
fi
echo "run_clang_tidy: clean (${#FILES[@]} files)"
