// adtc_trace — offline forensics over ADTC JSONL telemetry timelines.
//
// Ingests the JSONL artefacts the telemetry layer writes (span lines
// from JsonlTelemetrySink, verdict lines from the datapath flight
// recorder, sample lines from the periodic sampler) and reassembles the
// causal story: one rooted tree per deployment, convergence-latency
// percentiles, retry-amplification factors, per-channel fault
// attribution, and the top datapath drop reasons.
//
// Modes:
//   adtc_trace <timeline.jsonl>...             full forensic report
//   adtc_trace --validate <timeline.jsonl>...  schema + completeness
//                                              check; nonzero exit on any
//                                              malformed line, unknown
//                                              record type, or deployment
//                                              whose spans do not form a
//                                              single rooted tree
//   adtc_trace --json <out> <timeline.jsonl>.. also write the aggregate
//                                              summary as JSON
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/drop_reason.h"
#include "common/types.h"
#include "obs/json.h"
#include "obs/span.h"
#include "obs/trace_analysis.h"

namespace adtc {
namespace {

struct Ingest {
  std::vector<obs::Span> spans;
  std::size_t sample_lines = 0;
  std::size_t verdict_lines = 0;
  std::size_t dropped_verdicts = 0;
  std::map<std::string, std::size_t> drop_reasons;  // dropped==true only
  std::vector<std::string> violations;              // schema problems

  void Violation(const std::string& file, std::size_t line_no,
                 const std::string& what) {
    violations.push_back(file + ":" + std::to_string(line_no) + ": " + what);
  }
};

bool IsKnownDropReason(const std::string& reason) {
  for (std::size_t i = 0; i < kDatapathDropReasonCount; ++i) {
    if (reason == DatapathDropReasonName(static_cast<DatapathDropReason>(i))) {
      return true;
    }
  }
  return false;
}

/// One "span" line back into an obs::Span. Returns std::nullopt (and
/// records violations) when required fields are missing or mistyped.
std::optional<obs::Span> ParseSpanLine(const obs::JsonValue& value,
                                       const std::string& file,
                                       std::size_t line_no, Ingest& ingest) {
  bool ok = true;
  const auto require_number = [&](const char* key) {
    const obs::JsonValue* v = value.Get(key);
    if (v == nullptr || !v->is_number()) {
      ingest.Violation(file, line_no,
                       std::string("span line missing numeric \"") + key +
                           "\"");
      ok = false;
      return 0.0;
    }
    return v->number_value;
  };
  obs::Span span;
  span.id = static_cast<obs::SpanId>(require_number("id"));
  span.parent = static_cast<obs::SpanId>(require_number("parent"));
  span.start = static_cast<SimTime>(require_number("start_ns"));
  span.end = static_cast<SimTime>(require_number("end_ns"));
  const obs::JsonValue* name = value.Get("name");
  if (name == nullptr || !name->is_string() || name->string_value.empty()) {
    ingest.Violation(file, line_no, "span line missing \"name\"");
    ok = false;
  } else {
    span.name = name->string_value;
  }
  const obs::JsonValue* okv = value.Get("ok");
  if (okv == nullptr || okv->kind != obs::JsonValue::Kind::kBool) {
    ingest.Violation(file, line_no, "span line missing boolean \"ok\"");
    ok = false;
  } else {
    span.ok = okv->bool_value;
  }
  if (ok && span.id == obs::kNoSpan) {
    ingest.Violation(file, line_no, "span line with id 0 (kNoSpan)");
    ok = false;
  }
  if (ok && span.end < span.start) {
    ingest.Violation(file, line_no, "span line with end_ns < start_ns");
    ok = false;
  }
  if (const obs::JsonValue* node = value.Get("node");
      node != nullptr && node->is_number()) {
    span.node = static_cast<NodeId>(node->number_value);
  }
  if (const obs::JsonValue* sub = value.Get("subscriber");
      sub != nullptr && sub->is_number()) {
    span.subscriber = static_cast<SubscriberId>(sub->number_value);
  }
  if (const obs::JsonValue* attrs = value.Get("attrs"); attrs != nullptr) {
    if (!attrs->is_object()) {
      ingest.Violation(file, line_no, "span \"attrs\" is not an object");
      ok = false;
    } else {
      for (const auto& [key, attr] : attrs->object) {
        if (!attr.is_string()) {
          ingest.Violation(file, line_no,
                           "span attr \"" + key + "\" is not a string");
          ok = false;
          continue;
        }
        span.attributes.emplace_back(key, attr.string_value);
      }
    }
  }
  if (!ok) return std::nullopt;
  return span;
}

void ParseVerdictLine(const obs::JsonValue& value, const std::string& file,
                      std::size_t line_no, Ingest& ingest) {
  ++ingest.verdict_lines;
  const obs::JsonValue* reason = value.Get("reason");
  if (reason == nullptr || !reason->is_string() ||
      !IsKnownDropReason(reason->string_value)) {
    ingest.Violation(file, line_no,
                     "verdict line with missing or unknown \"reason\"");
    return;
  }
  const obs::JsonValue* t = value.Get("t_ns");
  const obs::JsonValue* node = value.Get("node");
  if (t == nullptr || !t->is_number() || node == nullptr ||
      !node->is_number()) {
    ingest.Violation(file, line_no,
                     "verdict line missing numeric \"t_ns\"/\"node\"");
    return;
  }
  const obs::JsonValue* dropped = value.Get("dropped");
  if (dropped == nullptr || dropped->kind != obs::JsonValue::Kind::kBool) {
    ingest.Violation(file, line_no,
                     "verdict line missing boolean \"dropped\"");
    return;
  }
  if (dropped->bool_value) {
    if (reason->string_value ==
        DatapathDropReasonName(DatapathDropReason::kNone)) {
      ingest.Violation(file, line_no,
                       "dropped verdict with reason \"none\"");
      return;
    }
    ++ingest.dropped_verdicts;
    ++ingest.drop_reasons[reason->string_value];
  }
}

bool IngestFile(const std::string& path, Ingest& ingest) {
  std::ifstream in(path);
  if (!in.good()) {
    std::cerr << "adtc_trace: cannot open " << path << "\n";
    return false;
  }
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::optional<obs::JsonValue> value = obs::JsonParse(line);
    if (!value.has_value() || !value->is_object()) {
      ingest.Violation(path, line_no, "not a JSON object");
      continue;
    }
    const std::string type = value->GetString("type");
    if (type == "span") {
      if (auto span = ParseSpanLine(*value, path, line_no, ingest)) {
        ingest.spans.push_back(std::move(*span));
      }
    } else if (type == "sample") {
      ++ingest.sample_lines;
    } else if (type == "verdict") {
      ParseVerdictLine(*value, path, line_no, ingest);
    } else {
      ingest.Violation(path, line_no,
                       type.empty() ? "record without \"type\""
                                    : "unknown record type \"" + type + "\"");
    }
  }
  return true;
}

void WriteJsonSummary(const std::string& path, const Ingest& ingest,
                      const obs::TraceAnalyzer& analyzer) {
  std::ofstream out(path);
  if (!out.good()) {
    std::cerr << "adtc_trace: cannot write " << path << "\n";
    return;
  }
  const obs::TraceSummary& summary = analyzer.summary();
  obs::JsonWriter json(out);
  json.BeginObject()
      .Field("tool", "adtc_trace")
      .Field("deployments", static_cast<std::uint64_t>(summary.deployment_count))
      .Field("complete", static_cast<std::uint64_t>(summary.complete_count))
      .Field("spans", static_cast<std::uint64_t>(summary.total_spans))
      .Field("untagged_spans",
             static_cast<std::uint64_t>(summary.untagged_spans))
      .Field("orphan_spans", static_cast<std::uint64_t>(summary.orphan_spans))
      .Field("convergence_p50_ms",
             static_cast<double>(summary.convergence_p50) / 1e6)
      .Field("convergence_p95_ms",
             static_cast<double>(summary.convergence_p95) / 1e6)
      .Field("convergence_p99_ms",
             static_cast<double>(summary.convergence_p99) / 1e6)
      .Field("retry_amplification", summary.retry_amplification);
  json.Key("lost_by_channel").BeginObject();
  for (const auto& [channel, count] : summary.lost_by_channel) {
    json.Field(channel, static_cast<std::uint64_t>(count));
  }
  json.EndObject();
  json.Key("drop_reasons").BeginObject();
  for (const auto& [reason, count] : ingest.drop_reasons) {
    json.Field(reason, static_cast<std::uint64_t>(count));
  }
  json.EndObject();
  json.Field("verdicts", static_cast<std::uint64_t>(ingest.verdict_lines))
      .Field("dropped_verdicts",
             static_cast<std::uint64_t>(ingest.dropped_verdicts))
      .EndObject();
  out << "\n";
}

int Run(int argc, char** argv) {
  bool validate = false;
  std::string json_out;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--validate") {
      validate = true;
    } else if (arg == "--json") {
      if (i + 1 >= argc) {
        std::cerr << "adtc_trace: --json needs a path\n";
        return 2;
      }
      json_out = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: adtc_trace [--validate] [--json <out>] "
                   "<timeline.jsonl>...\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "adtc_trace: unknown option " << arg << "\n";
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::cerr << "usage: adtc_trace [--validate] [--json <out>] "
                 "<timeline.jsonl>...\n";
    return 2;
  }

  Ingest ingest;
  for (const std::string& file : files) {
    if (!IngestFile(file, ingest)) return 2;
  }

  obs::TraceAnalyzer analyzer;
  analyzer.Analyze(ingest.spans);

  if (!json_out.empty()) WriteJsonSummary(json_out, ingest, analyzer);

  if (validate) {
    // Schema violations first, then the causal-completeness invariant:
    // every deployment's spans must reassemble into a single rooted tree.
    std::size_t incomplete = 0;
    for (const auto& [tag, timeline] : analyzer.timelines()) {
      if (timeline.Complete()) continue;
      ++incomplete;
      std::cerr << "INCOMPLETE deployment " << tag << ": "
                << timeline.roots.size() << " roots, "
                << timeline.orphan_count << " orphan span(s)\n";
    }
    for (const std::string& violation : ingest.violations) {
      std::cerr << "VIOLATION " << violation << "\n";
    }
    if (!ingest.violations.empty() || incomplete > 0) {
      std::cerr << "FAIL: " << ingest.violations.size()
                << " schema violation(s), " << incomplete
                << " incomplete deployment timeline(s)\n";
      return 1;
    }
    std::cout << "OK: " << ingest.spans.size() << " spans, "
              << analyzer.summary().deployment_count
              << " deployments (all complete), " << ingest.verdict_lines
              << " verdicts, " << ingest.sample_lines << " samples\n";
    return 0;
  }

  // Report mode: per-deployment causal timelines, then the aggregates.
  for (const auto& [tag, timeline] : analyzer.timelines()) {
    std::cout << analyzer.RenderTimeline(timeline) << "\n";
  }
  std::cout << analyzer.RenderSummary();
  if (ingest.verdict_lines > 0) {
    std::cout << "\ndatapath verdicts: " << ingest.verdict_lines << " ("
              << ingest.dropped_verdicts << " dropped)\n";
    // Sort reasons by count, descending, for the "top drop reasons" view.
    std::vector<std::pair<std::size_t, std::string>> ranked;
    for (const auto& [reason, count] : ingest.drop_reasons) {
      ranked.emplace_back(count, reason);
    }
    std::sort(ranked.rbegin(), ranked.rend());
    for (const auto& [count, reason] : ranked) {
      std::cout << "  " << reason << ": " << count << "\n";
    }
  }
  if (!ingest.violations.empty()) {
    std::cout << "\nWARNING: " << ingest.violations.size()
              << " malformed line(s); run with --validate for details\n";
  }
  return 0;
}

}  // namespace
}  // namespace adtc

int main(int argc, char** argv) { return adtc::Run(argc, argv); }
