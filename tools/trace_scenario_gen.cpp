// trace_scenario_gen — produces a JSONL telemetry timeline for
// adtc_trace to analyze (and for the trace_schema_smoke ctest to
// validate).
//
// Runs a small fault-injected control-plane scenario — message loss,
// duplication and jitter on every channel, a TCSP outage forcing the
// peer-mesh relay fallback, a crashed device recovered by anti-entropy
// resync — with a JSONL sink attached, then appends datapath verdict
// lines from a flight-recorded device chewing through a mixed packet
// workload. The result exercises every record type the offline analyzer
// knows: span, sample, verdict.
//
//   trace_scenario_gen <out.jsonl> [fault_seed]
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/modules/basic.h"
#include "core/modules/match.h"
#include "core/ownership.h"
#include "core/tcsp.h"
#include "net/topo_gen.h"
#include "obs/flight_recorder.h"
#include "sim/faults.h"

namespace adtc {
namespace {

/// The chaos-convergence scenario in miniature: two deployments (one
/// direct, one relayed through the peer mesh while the TCSP is down)
/// over lossy channels, converged by retries and resync.
void RunControlPlaneScenario(const std::string& path,
                             std::uint64_t fault_seed) {
  Network net(/*seed=*/42);
  TransitStubParams params;
  params.transit_count = 3;
  params.stub_count = 9;
  TopologyInfo topo = BuildTransitStub(net, params);
  (void)topo;

  NumberAuthority authority;
  FaultInjector injector(fault_seed);
  TcspConfig config;
  config.retry.initial_backoff = Milliseconds(20);
  config.retry.max_backoff = Milliseconds(500);
  config.retry.max_attempts = 6;
  config.retry.deadline = Seconds(20);
  config.relay_fallback = true;
  Tcsp tcsp(net, authority, "trace-gen-key", config);

  if (!net.telemetry().OpenJsonlTimeline(path)) {
    std::cerr << "trace_scenario_gen: cannot open " << path << "\n";
    std::exit(2);
  }
  net.telemetry().sampler().Start(Milliseconds(500));

  AllocateTopologyPrefixes(authority, net.node_count());
  std::vector<std::unique_ptr<IspNms>> nmses;
  for (NodeId node = 0; node < net.node_count(); ++node) {
    auto nms = std::make_unique<IspNms>("isp-" + std::to_string(node), net,
                                        &tcsp.validator());
    nms->ManageNode(node);
    tcsp.EnrollIsp(nms.get());
    nmses.push_back(std::move(nms));
  }
  tcsp.AttachFaultInjector(&injector);

  ChannelFaults faults;
  faults.loss = 0.3;
  faults.duplicate = 0.2;
  faults.jitter_max = Milliseconds(30);
  injector.SetDefaultFaults(faults);
  injector.AddDeviceOutage(/*node=*/5, 0, Seconds(10));
  injector.AddTcspOutage(Seconds(2), Seconds(4));

  const auto cert1 = tcsp.Register("as7", {NodePrefix(7)});
  const auto cert2 = tcsp.Register("as9", {NodePrefix(9)});
  if (!cert1.ok() || !cert2.ok()) {
    std::cerr << "trace_scenario_gen: registration failed\n";
    std::exit(2);
  }

  ServiceRequest request1;
  request1.kind = ServiceKind::kRemoteIngressFiltering;
  request1.placement = PlacementPolicy::kAllManagedNodes;
  request1.control_scope = {NodePrefix(7)};
  tcsp.DeployService(cert1.value(), request1,
                     CompletionPolicy::kLatencyModelled,
                     [](const DeploymentReport&) {});
  for (auto& nms : nmses) nms->StartResync(Seconds(5));

  // Into the TCSP outage: the second deployment takes the relay path.
  net.Run(Seconds(3));
  ServiceRequest request2;
  request2.kind = ServiceKind::kRemoteIngressFiltering;
  request2.placement = PlacementPolicy::kAllManagedNodes;
  request2.control_scope = {NodePrefix(9)};
  (void)tcsp.DeployService(cert2.value(), request2);

  net.Run(Seconds(60));
  for (auto& nms : nmses) nms->StopResync();
  net.Run(Seconds(10));
  net.telemetry().FlushSinks();
}

/// Appends flight-recorder verdict lines: a standalone device with a
/// blacklist + port-match chain processing a deterministic packet mix
/// (fast-path misses, redirected forwards, blacklist and rule drops,
/// cached replays).
void AppendDatapathVerdicts(const std::string& path) {
  obs::FlightRecorder recorder(4096);
  AdaptiveDevice device(0);
  device.AttachFlightRecorder(&recorder);

  CertificateAuthority ca("trace-gen-dp-key");
  const auto cert = ca.Issue(1, "victim", {NodePrefix(6)}, 0, Seconds(1e6));

  auto blacklist = std::make_unique<BlacklistModule>();
  blacklist->Add(Prefix::Host(HostAddress(13, 1)));
  MatchRule rule;
  rule.dst_port_range = {{9000, 9100}};
  std::vector<std::unique_ptr<Module>> modules;
  modules.push_back(std::move(blacklist));
  modules.push_back(std::make_unique<MatchModule>(rule));
  DeploymentSpec spec;
  spec.cert = cert;
  spec.scope = {NodePrefix(6)};
  spec.destination_stage = ModuleGraph::Chain(std::move(modules));
  if (!device.InstallDeployment(std::move(spec)).ok()) {
    std::cerr << "trace_scenario_gen: datapath install failed\n";
    std::exit(2);
  }

  RouterContext ctx;
  for (int i = 0; i < 64; ++i) {
    Packet p;
    p.src = HostAddress(static_cast<NodeId>(10 + (i % 5)), 1);
    // Two in three packets hit the protected prefix; the rest miss.
    p.dst = HostAddress(i % 3 == 0 ? 2 : 6, 1);
    p.proto = Protocol::kUdp;
    p.src_port = static_cast<std::uint16_t>(40000 + (i % 4));
    p.dst_port = static_cast<std::uint16_t>(i % 7 == 0 ? 9050 : 80);
    p.size_bytes = 512;
    (void)device.Process(p, ctx);
  }

  std::ofstream out(path, std::ios::app);
  if (!out.good()) {
    std::cerr << "trace_scenario_gen: cannot append to " << path << "\n";
    std::exit(2);
  }
  recorder.WriteJsonl(out);
}

}  // namespace
}  // namespace adtc

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: trace_scenario_gen <out.jsonl> [fault_seed]\n";
    return 2;
  }
  const std::string path = argv[1];
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7u;
  adtc::RunControlPlaneScenario(path, seed);
  adtc::AppendDatapathVerdicts(path);
  std::cout << "trace_scenario_gen: wrote " << path << "\n";
  return 0;
}
