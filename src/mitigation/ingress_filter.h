// Classic ingress filtering (RFC 2267, Ferguson & Senie) — the proactive
// baseline of Sec. 3.2.
//
// A deploying AS checks every packet entering from a customer edge
// (directly attached hosts, or customer ASes) against the legitimate
// source space behind that edge (the customer cone). Spoofed sources are
// dropped at the first filtering AS they try to pass. Deployment is per
// AS — experiment E3 sweeps the deploying fraction to reproduce the
// Park & Lee "effective from ~20% coverage" shape.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/network.h"
#include "net/prefix_trie.h"
#include "net/topo_gen.h"

namespace adtc {

class IngressFilter : public PacketProcessor {
 public:
  explicit IngressFilter(NodeId node) : node_(node) {}

  /// Legitimate prefixes for traffic from directly attached hosts.
  void AllowFromAccess(const Prefix& prefix) {
    access_allowed_.Insert(prefix, true);
  }

  /// Legitimate prefixes for traffic arriving on a specific customer
  /// in-link (the customer's cone).
  void AllowFromLink(LinkId in_link, const std::vector<Prefix>& prefixes) {
    auto& trie = per_link_allowed_[in_link];
    for (const Prefix& prefix : prefixes) trie.Insert(prefix, true);
  }

  Verdict Process(Packet& packet, const RouterContext& ctx) override;
  std::string_view name() const override { return "ingress-filter"; }

  NodeId node() const { return node_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t passed() const { return passed_; }

 private:
  NodeId node_;
  PrefixTrie<bool> access_allowed_;
  std::unordered_map<LinkId, PrefixTrie<bool>> per_link_allowed_;
  std::uint64_t dropped_ = 0;
  std::uint64_t passed_ = 0;
};

/// Installs ingress filtering at every AS in `deploying`, with allowed
/// sets derived from the topology's provider/customer structure. The
/// returned filters own the per-edge state; keep them alive while the
/// world runs.
std::vector<std::unique_ptr<IngressFilter>> DeployIngressFiltering(
    Network& net, const TopologyInfo& topo,
    const std::vector<NodeId>& deploying);

/// Picks a deterministic random subset of all ASes of the given fraction.
std::vector<NodeId> SampleAses(std::size_t node_count, double fraction,
                               Rng& rng);

}  // namespace adtc
