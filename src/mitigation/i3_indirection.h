// i3-based DDoS defence (Stoica et al.; Lakshminarayanan et al.) as
// analysed in Sec. 3.1:
//
//  "i3 is implemented as an overlay that is used to route a client's
//   packets to a trigger and from there to the server. Due to performance
//   concerns, i3 would only be used if a server were under attack ...
//   To use i3 as a defence mechanism, IP addresses of the attacked
//   servers are assumed to be hidden from the attackers. It remains
//   unclear how server IP addresses can be hidden under attack, when
//   they are known under normal operation."
//
// Model: an I3Node host keeps a trigger table (trigger id -> server
// address) and proxies requests/replies. The protected server's AS
// router admits only i3-node sources once the defence engages. The
// paper's critique is captured by the `address_leaked` knob: if the
// attacker already knows (or learns) the server's address, the direct
// flood still arrives at the perimeter and burns the ingress path.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "host/host.h"
#include "host/server.h"
#include "net/prefix_trie.h"

namespace adtc {

inline constexpr std::uint16_t kI3Port = 9000;
inline constexpr std::uint16_t kI3ReplyPort = 9001;
inline constexpr std::uint16_t kI3ProxyPort = 9002;

/// An i3 infrastructure node: trigger-based indirection.
class I3Node : public Host {
 public:
  /// Registers trigger `id` pointing at `server` (the hidden address).
  void InsertTrigger(std::uint64_t trigger, Ipv4Address server,
                     std::uint16_t service_port);
  void RemoveTrigger(std::uint64_t trigger);

  void HandlePacket(Packet&& packet) override;

  std::uint64_t forwarded() const { return forwarded_; }
  std::size_t trigger_count() const { return triggers_.size(); }

 private:
  struct Trigger {
    Ipv4Address server;
    std::uint16_t port;
  };
  std::unordered_map<std::uint64_t, Trigger> triggers_;
  /// Serial of proxied request -> (txn, client) for the reply path.
  std::unordered_map<PacketSerial, std::pair<std::uint64_t, Ipv4Address>>
      pending_;
  std::uint64_t forwarded_ = 0;
};

/// Client that addresses the service by trigger id via an i3 node. The
/// (trigger, txn) pair is packed into payload_hash (see I3PackTxn).
class I3Client : public Host {
 public:
  struct Config {
    Ipv4Address i3_node;
    std::uint64_t trigger = 1;
    double request_rate = 10.0;
    SimDuration timeout = Seconds(2);
  };

  explicit I3Client(Config config) : config_(config) {}

  void Start(SimDuration after = 0);
  void Stop() { running_ = false; }
  void HandlePacket(Packet&& packet) override;

  std::uint64_t requests_sent() const { return sent_; }
  std::uint64_t responses_received() const { return received_; }
  const SummaryStats& latency_ms() const { return latency_ms_; }
  double SuccessRatio() const {
    return sent_ ? static_cast<double>(received_) /
                       static_cast<double>(sent_)
                 : 0.0;
  }

 private:
  void SendOne();
  void Sweep();

  Config config_;
  bool running_ = false;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
  std::uint32_t next_txn_ = 1;
  SummaryStats latency_ms_;
  std::unordered_map<std::uint64_t, std::pair<SimTime, SimTime>>
      outstanding_;
};

/// Packs/unpacks (trigger, txn) into the payload_hash field.
std::uint64_t I3PackTxn(std::uint64_t trigger, std::uint64_t txn);
std::uint64_t I3UnpackTrigger(std::uint64_t packed);

/// Ingress filter at the protected server's AS once the defence engages:
/// only i3-node addresses may reach the server.
class I3Perimeter : public PacketProcessor {
 public:
  I3Perimeter(Ipv4Address server, std::vector<Ipv4Address> i3_nodes);
  Verdict Process(Packet& packet, const RouterContext& ctx) override;
  std::string_view name() const override { return "i3-perimeter"; }
  std::uint64_t blocked() const { return blocked_; }

 private:
  Ipv4Address server_;
  PrefixTrie<bool> allowed_;
  std::uint64_t blocked_ = 0;
};

}  // namespace adtc
