// Probabilistic packet marking traceback (Savage et al., edge sampling) —
// the other reactive traceback baseline of Sec. 3.1.
//
// Participating routers overwrite a mark field with probability p (start
// of a new edge) or complete/extend an existing mark. The victim collects
// marks from received traffic and reconstructs the edge graph; inferred
// origins are edge-start routers that never appear as an edge end.
// As with SPIE, a reflector attack makes PPM converge on the
// *reflectors'* paths, not the agents'.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "net/network.h"

namespace adtc {

class PpmSystem {
 public:
  struct Config {
    double marking_probability = 0.04;  // Savage et al.'s p = 1/25
  };

  explicit PpmSystem(Network& net);
  PpmSystem(Network& net, Config config);

  void EnableOn(NodeId node);
  void EnableAll();

  /// Victim side: feed every received (suspicious) packet.
  void Observe(const Packet& packet);

  /// Edge-graph reconstruction from the observed marks.
  std::vector<NodeId> InferredOrigins() const;
  std::size_t observed_marks() const { return marked_observed_; }
  std::size_t distinct_edges() const { return edges_.size(); }

 private:
  /// One marker per participating router; each owns a private RNG stream
  /// (forked at enable time) so marking decisions run contention-free on
  /// the router's shard and are independent of the shard count.
  class Marker : public PacketProcessor {
   public:
    Marker(PpmSystem* system, NodeId node, Rng rng)
        : system_(system), node_(node), rng_(rng) {}
    Verdict Process(Packet& packet, const RouterContext& ctx) override;
    std::string_view name() const override { return "ppm-marker"; }

   private:
    PpmSystem* system_;
    NodeId node_;
    Rng rng_;
  };

  Network& net_;
  Config config_;
  std::vector<std::unique_ptr<Marker>> markers_;
  /// Observed (edge_start, edge_end) pairs with sample counts.
  std::map<std::pair<NodeId, NodeId>, std::uint64_t> edges_;
  std::set<NodeId> edge_starts_;
  std::set<NodeId> edge_ends_;
  std::size_t marked_observed_ = 0;
};

}  // namespace adtc
