// SOS — Secure Overlay Services (Keromytis et al.), with Mayday as its
// generalisation: the proactive overlay baseline of Sec. 3.2.
//
// Architecture implemented:
//   client -> SOAP (secure overlay access point) -> beacon -> secret
//   servlet -> target, with a perimeter filter at the target's AS router
//   admitting only the secret servlets' addresses. Replies retrace the
//   overlay chain. Attack traffic aimed directly at the target dies at
//   the perimeter; the overlay's cost is latency stretch and per-member
//   trust state — the quantities experiment E4 reports.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "host/host.h"
#include "host/server.h"
#include "net/prefix_trie.h"
#include "net/topo_gen.h"

namespace adtc {

inline constexpr std::uint16_t kOverlayForwardPort = 8000;
inline constexpr std::uint16_t kOverlayReplyPort = 8001;
/// Source port servlets use toward the target, so target replies are
/// distinguishable from overlay-forwarded requests.
inline constexpr std::uint16_t kServletProxyPort = 8002;

/// One overlay node; roles are assigned by SosSystem.
class OverlayNode : public Host {
 public:
  enum class Role : std::uint8_t { kSoap, kBeacon, kServlet };

  OverlayNode(Role role, Ipv4Address target, std::uint16_t target_port)
      : role_(role), target_(target), target_port_(target_port) {}

  void SetNextHops(std::vector<Ipv4Address> next) {
    next_hops_ = std::move(next);
  }
  Role role() const { return role_; }

  void HandlePacket(Packet&& packet) override;

  std::uint64_t forwarded() const { return forwarded_; }

 private:
  void ForwardRequest(const Packet& request);
  void ForwardReplyBack(std::uint64_t txn, const Packet& reply);

  Role role_;
  Ipv4Address target_;
  std::uint16_t target_port_;
  std::vector<Ipv4Address> next_hops_;
  std::uint64_t round_robin_ = 0;
  std::uint64_t forwarded_ = 0;

  /// txn id -> who to send the reply back to.
  std::unordered_map<std::uint64_t, Ipv4Address> reply_path_;
  /// servlet only: serial of request sent to target -> txn id.
  std::unordered_map<PacketSerial, std::uint64_t> target_requests_;
};

/// Client that reaches the protected service through the overlay.
class SosClient : public Host {
 public:
  struct Config {
    std::vector<Ipv4Address> soaps;
    double request_rate = 10.0;
    SimDuration timeout = Seconds(2);
    std::uint32_t request_bytes = 64;
  };

  explicit SosClient(Config config) : config_(std::move(config)) {}

  void Start(SimDuration after = 0);
  void Stop() { running_ = false; }
  void HandlePacket(Packet&& packet) override;

  std::uint64_t requests_sent() const { return sent_; }
  std::uint64_t responses_received() const { return received_; }
  const SummaryStats& latency_ms() const { return latency_ms_; }
  double SuccessRatio() const {
    return sent_ ? static_cast<double>(received_) /
                       static_cast<double>(sent_)
                 : 0.0;
  }

 private:
  void SendOne();
  void Sweep();

  Config config_;
  bool running_ = false;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t next_txn_ = 1;
  SummaryStats latency_ms_;
  std::unordered_map<std::uint64_t, std::pair<SimTime, SimTime>>
      outstanding_;  // txn -> (sent_at, expires_at)
};

/// Perimeter filter at the target's AS: only secret servlets (and local
/// hosts of the same AS) may reach the target address.
class PerimeterFilter : public PacketProcessor {
 public:
  PerimeterFilter(Ipv4Address target, std::vector<Ipv4Address> servlets);
  Verdict Process(Packet& packet, const RouterContext& ctx) override;
  std::string_view name() const override { return "sos-perimeter"; }

  std::uint64_t blocked() const { return blocked_; }

 private:
  Ipv4Address target_;
  PrefixTrie<bool> allowed_sources_;
  std::uint64_t blocked_ = 0;
};

/// Builds and wires a complete SOS deployment for one protected server.
class SosSystem {
 public:
  struct Config {
    std::uint32_t soap_count = 4;
    std::uint32_t beacon_count = 4;
    std::uint32_t servlet_count = 2;
    LinkParams overlay_access{MegabitsPerSecond(100), Milliseconds(2),
                              256 * 1024};
  };

  /// Spawns overlay nodes on random stub ASes and installs the perimeter
  /// filter at the target's AS router.
  SosSystem(Network& net, const TopologyInfo& topo, Server* target,
            Config config);

  const std::vector<Ipv4Address>& soap_addresses() const { return soaps_; }
  const std::vector<Ipv4Address>& servlet_addresses() const {
    return servlets_;
  }
  PerimeterFilter* perimeter() { return perimeter_.get(); }

  std::size_t overlay_size() const { return nodes_.size(); }
  /// Trust relationships each protected-communication group needs:
  /// every member must keep keys with every overlay node (the
  /// management-cost quantity of Sec. 3.2).
  static std::uint64_t TrustRelationships(std::uint64_t members,
                                          std::uint64_t overlay_size) {
    return members * overlay_size;
  }

 private:
  std::vector<OverlayNode*> nodes_;
  std::vector<Ipv4Address> soaps_;
  std::vector<Ipv4Address> servlets_;
  std::unique_ptr<PerimeterFilter> perimeter_;
};

}  // namespace adtc
