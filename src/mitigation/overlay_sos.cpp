#include "mitigation/overlay_sos.h"

#include <algorithm>

namespace adtc {

// --- OverlayNode -----------------------------------------------------------

void OverlayNode::HandlePacket(Packet&& packet) {
  if (packet.proto == Protocol::kUdp &&
      packet.dst_port == kOverlayForwardPort) {
    // Forward direction: remember where to send the reply, pass along.
    reply_path_[packet.payload_hash] = packet.src;
    ForwardRequest(packet);
    return;
  }
  if (packet.proto == Protocol::kUdp &&
      packet.dst_port == kOverlayReplyPort) {
    // Reply travelling back down the chain.
    ForwardReplyBack(packet.payload_hash, packet);
    return;
  }
  // Servlet only: reply from the target to a request we proxied.
  const auto it = target_requests_.find(packet.in_reply_to);
  if (it != target_requests_.end()) {
    const std::uint64_t txn = it->second;
    target_requests_.erase(it);
    ForwardReplyBack(txn, packet);
  }
}

void OverlayNode::ForwardRequest(const Packet& request) {
  forwarded_++;
  if (role_ == Role::kServlet) {
    // Last overlay hop: issue the real service request to the target.
    // Pre-stamp the serial so the target's reply can be correlated.
    Packet to_target = MakePacket(target_, Protocol::kUdp, request.size_bytes);
    to_target.dst_port = target_port_;
    to_target.src_port = kServletProxyPort;
    to_target.klass = request.klass;
    const PacketSerial serial = net().NextSerialFor(id());
    to_target.serial = serial;
    to_target.true_origin = id();
    to_target.sent_at = Now();
    to_target.payload_hash = serial;
    net().metrics_cell().RecordSend(to_target);
    target_requests_[serial] = request.payload_hash;
    SendPacket(std::move(to_target));
    return;
  }
  if (next_hops_.empty()) return;
  const Ipv4Address next = next_hops_[round_robin_++ % next_hops_.size()];
  Packet forward = MakePacket(next, Protocol::kUdp, request.size_bytes);
  forward.dst_port = kOverlayForwardPort;
  forward.payload_hash = request.payload_hash;  // txn id rides along
  forward.klass = request.klass;
  SendPacket(std::move(forward));
}

void OverlayNode::ForwardReplyBack(std::uint64_t txn, const Packet& reply) {
  const auto it = reply_path_.find(txn);
  if (it == reply_path_.end()) return;
  const Ipv4Address back = it->second;
  reply_path_.erase(it);
  Packet packet = MakePacket(back, Protocol::kUdp, reply.size_bytes);
  packet.dst_port = kOverlayReplyPort;
  packet.payload_hash = txn;
  packet.klass = reply.klass;
  SendPacket(std::move(packet));
}

// --- SosClient ---------------------------------------------------------------

void SosClient::Start(SimDuration after) {
  running_ = true;
  sched().PostIn(after, [this] { SendOne(); });
  sched().PostEvery(std::max<SimDuration>(config_.timeout / 4,
                                          Milliseconds(50)),
                         [this] {
                           Sweep();
                           return running_ || !outstanding_.empty();
                         });
}

void SosClient::SendOne() {
  if (!running_) return;
  if (!config_.soaps.empty()) {
    // Each request may enter via a different SOAP (resilience against a
    // flooded access point).
    const Ipv4Address soap =
        config_.soaps[rng().NextBelow(config_.soaps.size())];
    const std::uint64_t txn =
        (static_cast<std::uint64_t>(id()) << 32) | next_txn_++;
    Packet request = MakePacket(soap, Protocol::kUdp, config_.request_bytes);
    request.dst_port = kOverlayForwardPort;
    request.payload_hash = txn;
    request.klass = TrafficClass::kLegitimate;
    sent_++;
    const SimTime now = Now();
    outstanding_[txn] = {now, now + config_.timeout};
    SendPacket(std::move(request));
  }
  const double gap_s =
      rng().NextExponential(1.0 / std::max(config_.request_rate, 1e-9));
  sched().PostIn(
      std::max<SimDuration>(static_cast<SimDuration>(gap_s * 1e9),
                            Microseconds(1)),
      [this] { SendOne(); });
}

void SosClient::HandlePacket(Packet&& packet) {
  if (packet.proto != Protocol::kUdp ||
      packet.dst_port != kOverlayReplyPort) {
    return;
  }
  const auto it = outstanding_.find(packet.payload_hash);
  if (it == outstanding_.end()) return;
  received_++;
  latency_ms_.Add(ToMilliseconds(Now() - it->second.first));
  outstanding_.erase(it);
}

void SosClient::Sweep() {
  const SimTime now = Now();
  for (auto it = outstanding_.begin(); it != outstanding_.end();) {
    if (it->second.second <= now) {
      it = outstanding_.erase(it);
    } else {
      ++it;
    }
  }
}

// --- PerimeterFilter -----------------------------------------------------------

PerimeterFilter::PerimeterFilter(Ipv4Address target,
                                 std::vector<Ipv4Address> servlets)
    : target_(target) {
  for (Ipv4Address servlet : servlets) {
    allowed_sources_.Insert(Prefix::Host(servlet), true);
  }
  // The target's own AS (local management, same-site hosts) stays able
  // to reach it.
  allowed_sources_.Insert(NodePrefix(AddressNode(target)), true);
}

Verdict PerimeterFilter::Process(Packet& packet, const RouterContext& ctx) {
  (void)ctx;
  if (packet.dst != target_) return Verdict::kForward;
  if (allowed_sources_.ContainsAddress(packet.src)) return Verdict::kForward;
  blocked_++;
  return Verdict::kDrop;
}

// --- SosSystem --------------------------------------------------------------

SosSystem::SosSystem(Network& net, const TopologyInfo& topo, Server* target,
                     Config config) {
  const Ipv4Address target_addr = target->address();
  const std::uint16_t target_port = target->config().service_port;

  auto pick_stub = [&]() {
    return topo.stub_nodes[net.rng().NextBelow(topo.stub_nodes.size())];
  };

  std::vector<Ipv4Address> beacons;
  std::vector<OverlayNode*> servlet_nodes;
  for (std::uint32_t i = 0; i < config.servlet_count; ++i) {
    auto* servlet = SpawnHost<OverlayNode>(net, pick_stub(),
                                           config.overlay_access,
                                           OverlayNode::Role::kServlet,
                                           target_addr, target_port);
    nodes_.push_back(servlet);
    servlet_nodes.push_back(servlet);
    servlets_.push_back(servlet->address());
  }
  std::vector<OverlayNode*> beacon_nodes;
  for (std::uint32_t i = 0; i < config.beacon_count; ++i) {
    auto* beacon = SpawnHost<OverlayNode>(net, pick_stub(),
                                          config.overlay_access,
                                          OverlayNode::Role::kBeacon,
                                          target_addr, target_port);
    beacon->SetNextHops(servlets_);
    nodes_.push_back(beacon);
    beacon_nodes.push_back(beacon);
    beacons.push_back(beacon->address());
  }
  for (std::uint32_t i = 0; i < config.soap_count; ++i) {
    auto* soap = SpawnHost<OverlayNode>(net, pick_stub(),
                                        config.overlay_access,
                                        OverlayNode::Role::kSoap,
                                        target_addr, target_port);
    soap->SetNextHops(beacons);
    nodes_.push_back(soap);
    soaps_.push_back(soap->address());
  }

  perimeter_ = std::make_unique<PerimeterFilter>(target_addr, servlets_);
  net.AddProcessor(AddressNode(target_addr), perimeter_.get());
}

}  // namespace adtc
