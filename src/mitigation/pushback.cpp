#include "mitigation/pushback.h"

#include <algorithm>

namespace adtc {

PushbackSystem::PushbackSystem(Network& net, PushbackConfig config)
    : net_(net), config_(config) {
  net_.SetQueueDropObserver(
      [this](const Packet& packet, LinkId link) { OnQueueDrop(packet, link); });
  net_.telemetry().registry().AddCollector(
      this, [this](obs::MetricsSnapshot& out) {
        out.push_back({"pushback.reactions",
                       static_cast<double>(stats_.reactions)});
        out.push_back({"pushback.rules_installed",
                       static_cast<double>(stats_.rules_installed)});
        out.push_back({"pushback.messages_sent",
                       static_cast<double>(stats_.messages_sent)});
        out.push_back({"pushback.propagation_blocked",
                       static_cast<double>(stats_.propagation_blocked)});
        out.push_back({"pushback.packets_rate_limited",
                       static_cast<double>(stats_.packets_rate_limited)});
      });
}

PushbackSystem::~PushbackSystem() {
  net_.telemetry().registry().RemoveCollectors(this);
  net_.SetQueueDropObserver(nullptr);
}

void PushbackSystem::EnableOn(NodeId node) {
  if (limiters_.contains(node)) return;
  auto limiter = std::make_unique<Limiter>(this);
  net_.AddProcessor(node, limiter.get());
  limiters_.emplace(node, std::move(limiter));
}

void PushbackSystem::EnableFraction(double fraction) {
  fraction = std::clamp(fraction, 0.0, 1.0);
  for (NodeId node = 0; node < net_.node_count(); ++node) {
    if (net_.rng().NextBool(fraction)) EnableOn(node);
  }
}

bool PushbackSystem::EnabledOn(NodeId node) const {
  return limiters_.contains(node);
}

void PushbackSystem::Start() {
  if (started_) return;
  started_ = true;
  // The monitoring loop ticks on the control shard. Pushback keeps
  // global monitoring state (window_drops_ spans every cooperating
  // router), so it is single-shard-only (docs/sharding.md).
  net_.control().PostEvery(config_.window, [this] {
    MonitorTick();
    return true;
  });
}

void PushbackSystem::OnQueueDrop(const Packet& packet, LinkId link_id) {
  // Drops are attributed to the router that owns the congested out-link;
  // a router only reacts if it speaks the protocol.
  const Link& link = net_.link(link_id);
  if (link.from.is_host) return;
  const NodeId node = link.from.id;
  if (!limiters_.contains(node)) return;
  window_drops_[node][packet.src.bits() & PrefixMask(kNodePrefixLength)]++;
}

void PushbackSystem::MonitorTick() {
  const SimTime now = net_.Now();

  // Expire stale rules.
  for (auto& [node, limiter] : limiters_) {
    (void)node;
    for (auto it = limiter->rules.begin(); it != limiter->rules.end();) {
      if (it->second.expires_at <= now) {
        it = limiter->rules.erase(it);
      } else {
        ++it;
      }
    }
  }

  for (auto& [node, drops] : window_drops_) {
    std::uint64_t total = 0;
    for (const auto& [prefix, count] : drops) total += count;
    if (total < config_.drop_count_trigger) continue;
    stats_.reactions++;

    // Top-k aggregates by dropped-packet count (the paper's "class of
    // source addresses with the highest dropped packet count").
    std::vector<std::pair<std::uint32_t, std::uint64_t>> ranked(
        drops.begin(), drops.end());
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;  // deterministic ties
              });
    const std::size_t k = std::min(config_.top_k, ranked.size());
    for (std::size_t i = 0; i < k; ++i) {
      InstallRule(node, ranked[i].first, now, config_.max_depth);
    }
  }
  window_drops_.clear();
}

void PushbackSystem::InstallRule(NodeId node, std::uint32_t prefix_base,
                                 SimTime now, int remaining_depth) {
  auto it = limiters_.find(node);
  if (it == limiters_.end()) return;
  auto& rule = it->second->rules[prefix_base];
  rule.expires_at = net_.Now() + config_.rule_timeout;
  if (rule.refilled_at == 0) {
    rule.tokens = config_.limit_pps;
    rule.refilled_at = net_.Now();
  }
  stats_.rules_installed++;

  if (remaining_depth <= 0) return;
  // Inform the upstream router on the path toward the aggregate's origin.
  const NodeId origin = AddressNode(Ipv4Address(prefix_base));
  if (origin >= net_.node_count() || origin == node) return;
  const NodeId upstream = net_.NextHop(node, origin);
  if (upstream == kInvalidNode || upstream == node) return;
  stats_.messages_sent++;
  if (!limiters_.contains(upstream)) {
    // "If a router on a path between attacker(s) and victim does not
    //  speak the protocol, the pushback of filter rules stops."
    stats_.propagation_blocked++;
    return;
  }
  // The pushback message travels to the upstream router and the rule
  // install executes on *its* shard (rules are touched only by their
  // router's shard plus the control-shard expiry sweep).
  net_.shard_at(upstream).Post(
      net_.Now() + config_.message_delay,
      [this, upstream, prefix_base, remaining_depth] {
        InstallRule(upstream, prefix_base, net_.Now(),
                    remaining_depth - 1);
      });
  (void)now;
}

Verdict PushbackSystem::Limiter::Process(Packet& packet,
                                         const RouterContext& ctx) {
  if (rules.empty()) return Verdict::kForward;
  const std::uint32_t base = packet.src.bits() & PrefixMask(kNodePrefixLength);
  const auto it = rules.find(base);
  if (it == rules.end()) return Verdict::kForward;
  LimitRule& rule = it->second;
  const double elapsed_s =
      static_cast<double>(ctx.now - rule.refilled_at) / 1e9;
  rule.tokens = std::min(system_->config_.limit_pps,
                         rule.tokens + elapsed_s * system_->config_.limit_pps);
  rule.refilled_at = ctx.now;
  if (rule.tokens >= 1.0) {
    rule.tokens -= 1.0;
    return Verdict::kForward;
  }
  system_->stats_.packets_rate_limited++;
  return Verdict::kDrop;
}

std::vector<Prefix> PushbackSystem::ActiveLimitsAt(NodeId node) const {
  std::vector<Prefix> out;
  const auto it = limiters_.find(node);
  if (it == limiters_.end()) return out;
  for (const auto& [base, rule] : it->second->rules) {
    (void)rule;
    out.emplace_back(Ipv4Address(base), kNodePrefixLength);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t PushbackSystem::CollateralAggregates(
    const std::vector<NodeId>& agent_nodes) const {
  std::vector<bool> has_agent;
  for (NodeId node : agent_nodes) {
    if (has_agent.size() <= node) has_agent.resize(node + 1, false);
    has_agent[node] = true;
  }
  std::size_t collateral = 0;
  std::vector<std::uint32_t> seen;
  for (const auto& [node, limiter] : limiters_) {
    (void)node;
    for (const auto& [base, rule] : limiter->rules) {
      (void)rule;
      if (std::find(seen.begin(), seen.end(), base) != seen.end()) continue;
      seen.push_back(base);
      const NodeId origin = AddressNode(Ipv4Address(base));
      const bool agent_home =
          origin < has_agent.size() ? has_agent[origin] : false;
      if (!agent_home) collateral++;
    }
  }
  return collateral;
}

}  // namespace adtc
