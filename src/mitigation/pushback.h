// Pushback / aggregate-based congestion control (Mahajan et al.,
// Ioannidis & Bellovin) as analysed in Sec. 3.1 of the paper:
//
//  "Pushback performs monitoring by observing packet drop statistics in
//   individual routers. Once a link becomes overloaded to a certain
//   degree, the pushback logic ... classifies dropped packets according
//   to source addresses. The class of source addresses with the highest
//   dropped packet count is then considered to originate from the
//   attacker. Filter rules to rate limit packets from the identified
//   source address(es) are automatically installed ... Routers on the
//   path towards the source(s) of attack are informed ... If a router on
//   a path between attacker(s) and victim does not speak the protocol,
//   the pushback of filter rules stops to extend further."
//
// Exactly that is implemented: per-router drop monitoring windows, top-k
// source-/20 aggregate identification, local rate-limit rules with
// expiry, and recursive upstream propagation that halts at routers not
// speaking the protocol. Its failure modes under the paper's scenarios
// (no link overload; spoofed sources; partial deployment) fall out of
// the mechanism rather than being hard-coded.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/network.h"

namespace adtc {

struct PushbackConfig {
  SimDuration window = Milliseconds(500);
  /// Minimum queue drops in a window at one router to react at all.
  std::uint64_t drop_count_trigger = 100;
  /// How many top source aggregates to rate limit per reaction.
  std::size_t top_k = 3;
  /// Rate granted to each limited aggregate.
  double limit_pps = 50.0;
  /// Upstream propagation bound.
  int max_depth = 8;
  /// One-way pushback-message latency per hop.
  SimDuration message_delay = Milliseconds(20);
  /// Limits are removed if not refreshed for this long.
  SimDuration rule_timeout = Seconds(5);
};

/// Pushback counters; obs::Counter cells exported through the world
/// registry under "pushback.*".
struct PushbackStats {
  obs::Counter reactions;            // monitoring windows that acted
  obs::Counter rules_installed;      // local + propagated
  obs::Counter messages_sent;        // upstream pushback requests
  obs::Counter propagation_blocked;  // upstream router not speaking
  obs::Counter packets_rate_limited;
};

class PushbackSystem {
 public:
  PushbackSystem(Network& net, PushbackConfig config = {});
  ~PushbackSystem();

  /// Marks a router as speaking the pushback protocol.
  void EnableOn(NodeId node);
  /// Enables on a deterministic random fraction of all routers.
  void EnableFraction(double fraction);
  bool EnabledOn(NodeId node) const;

  /// Starts the periodic monitoring loop. Call once, after EnableOn().
  void Start();

  const PushbackStats& stats() const { return stats_; }

  /// Source prefixes currently rate limited at `node`.
  std::vector<Prefix> ActiveLimitsAt(NodeId node) const;
  /// Ground-truth collateral assessment: of all currently limited
  /// aggregates anywhere, how many /20s contain no attack agent?
  std::size_t CollateralAggregates(
      const std::vector<NodeId>& agent_nodes) const;

 private:
  struct LimitRule {
    double tokens;
    SimTime refilled_at;
    SimTime expires_at;
  };

  /// The rate-limiting datapath element at one cooperating router.
  class Limiter : public PacketProcessor {
   public:
    explicit Limiter(PushbackSystem* system) : system_(system) {}
    Verdict Process(Packet& packet, const RouterContext& ctx) override;
    std::string_view name() const override { return "pushback-limiter"; }

    std::unordered_map<std::uint32_t, LimitRule> rules;  // by /20 base

   private:
    PushbackSystem* system_;
  };

  void OnQueueDrop(const Packet& packet, LinkId link);
  void MonitorTick();
  void InstallRule(NodeId node, std::uint32_t prefix_base, SimTime now,
                   int remaining_depth);

  Network& net_;
  PushbackConfig config_;
  PushbackStats stats_;

  std::unordered_map<NodeId, std::unique_ptr<Limiter>> limiters_;
  /// Per cooperating router: queue drops by source /20 in this window.
  std::unordered_map<NodeId, std::unordered_map<std::uint32_t, std::uint64_t>>
      window_drops_;
  bool started_ = false;
};

}  // namespace adtc
