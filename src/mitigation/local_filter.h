// Victim-installed filtering at the last-hop router (Lakshminarayanan et
// al., "Taming IP packet flooding attacks" [11] in the paper).
//
// "The authors of [11] propose that attacked hosts set filter rules
//  limiting the traffic to specific ports at the last hop IP router ...
//  An interesting open question is, whether a host is still able to
//  configure filter rules, if its computing or memory resources are
//  exhausted under a DDoS attack." (Sec. 3.1)
//
// That open question is the mechanism here: installing a rule costs the
// victim CPU headroom. TryInstall() succeeds only while the victim still
// has at least `min_headroom` of its CPU burst available — under a hard
// flood the rules never make it in (experiment E5).
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/modules/match.h"
#include "host/server.h"
#include "net/network.h"

namespace adtc {

class LastHopFilter : public PacketProcessor {
 public:
  struct Config {
    /// CPU-burst fraction the victim needs to push a rule out.
    double min_headroom = 0.05;
  };

  /// Attaches at the victim's AS router; `victim` provides the headroom.
  LastHopFilter(Network& net, Server* victim);
  LastHopFilter(Network& net, Server* victim, Config config);

  /// The victim asks its last-hop router to deny matching traffic.
  /// Fails (kResourceExhausted) when the victim lacks the CPU to do so.
  Status TryInstall(const MatchRule& rule);

  /// Unconditional install (control-channel assumed out of band) — the
  /// ablation arm of experiment E5.
  void ForceInstall(const MatchRule& rule);

  Verdict Process(Packet& packet, const RouterContext& ctx) override;
  std::string_view name() const override { return "last-hop-filter"; }

  std::size_t rule_count() const { return rules_.size(); }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t install_failures() const { return install_failures_; }

 private:
  Network& net_;
  Server* victim_;
  Config config_;
  Ipv4Address victim_addr_;
  std::vector<MatchRule> rules_;
  std::uint64_t dropped_ = 0;
  std::uint64_t install_failures_ = 0;
};

}  // namespace adtc
