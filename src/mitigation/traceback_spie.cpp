#include "mitigation/traceback_spie.h"

namespace adtc {

SpieSystem::SpieSystem(Network& net, Config config)
    : net_(net), config_(config) {}

void SpieSystem::EnableOn(NodeId node) {
  if (collectors_.contains(node)) return;
  auto collector = std::make_unique<Collector>(config_);
  net_.AddProcessor(node, collector.get());
  collectors_.emplace(node, std::move(collector));
}

void SpieSystem::EnableAll() {
  for (NodeId node = 0; node < net_.node_count(); ++node) EnableOn(node);
}

TraceResult SpieSystem::Trace(const Packet& packet,
                              NodeId victim_node) const {
  const std::uint64_t digest = PacketDigest(packet);
  return ReconstructOrigins(net_, victim_node, [this, digest](NodeId node) {
    const auto it = collectors_.find(node);
    return it != collectors_.end() && it->second->store_.Saw(digest);
  });
}

std::size_t SpieSystem::MemoryBytes() const {
  std::size_t total = 0;
  for (const auto& [node, collector] : collectors_) {
    (void)node;
    total += collector->store_.MemoryBytes();
  }
  return total;
}

std::uint64_t SpieSystem::digests_stored() const {
  std::uint64_t total = 0;
  for (const auto& [node, collector] : collectors_) {
    (void)node;
    total += collector->store_.digests_stored();
  }
  return total;
}

}  // namespace adtc
