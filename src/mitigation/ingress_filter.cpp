#include "mitigation/ingress_filter.h"

#include <algorithm>

namespace adtc {

Verdict IngressFilter::Process(Packet& packet, const RouterContext& ctx) {
  switch (ctx.in_kind) {
    case LinkKind::kAccessUp: {
      if (!access_allowed_.ContainsAddress(packet.src)) {
        dropped_++;
        return Verdict::kDrop;
      }
      break;
    }
    case LinkKind::kCustomerToProvider: {
      const auto it = per_link_allowed_.find(ctx.in_link);
      if (it != per_link_allowed_.end() &&
          !it->second.ContainsAddress(packet.src)) {
        dropped_++;
        return Verdict::kDrop;
      }
      break;
    }
    default:
      break;  // transit / peer / downstream traffic: never source-checked
  }
  passed_++;
  return Verdict::kForward;
}

std::vector<std::unique_ptr<IngressFilter>> DeployIngressFiltering(
    Network& net, const TopologyInfo& topo,
    const std::vector<NodeId>& deploying) {
  std::vector<std::unique_ptr<IngressFilter>> filters;
  filters.reserve(deploying.size());
  for (NodeId node : deploying) {
    auto filter = std::make_unique<IngressFilter>(node);
    // Directly attached hosts may only source the AS's own prefix.
    filter->AllowFromAccess(NodePrefix(node));

    // Each customer edge may only source its customer cone.
    for (NodeId customer : topo.customers[node]) {
      // The in-link at `node` from `customer` is customer's outgoing link
      // toward `node`.
      LinkId in_link = kInvalidLink;
      for (const auto& [neighbour, link] : net.node(customer).neighbours) {
        if (neighbour == node) {
          in_link = link;
          break;
        }
      }
      if (in_link == kInvalidLink) continue;
      std::vector<Prefix> cone_prefixes;
      for (NodeId member : topo.CustomerCone(customer)) {
        cone_prefixes.push_back(NodePrefix(member));
      }
      filter->AllowFromLink(in_link, cone_prefixes);
    }

    net.AddProcessor(node, filter.get());
    filters.push_back(std::move(filter));
  }
  return filters;
}

std::vector<NodeId> SampleAses(std::size_t node_count, double fraction,
                               Rng& rng) {
  fraction = std::clamp(fraction, 0.0, 1.0);
  std::vector<NodeId> all(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    all[i] = static_cast<NodeId>(i);
  }
  for (std::size_t i = all.size(); i > 1; --i) {
    std::swap(all[i - 1], all[rng.NextBelow(i)]);
  }
  all.resize(static_cast<std::size_t>(fraction *
                                      static_cast<double>(node_count)));
  std::sort(all.begin(), all.end());
  return all;
}

}  // namespace adtc
