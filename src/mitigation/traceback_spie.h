// SPIE — hash-based IP traceback (Snoeren et al.), the reactive baseline
// of Sec. 3.1. Every participating router keeps time-sliced Bloom digests
// of all packets it forwarded; a victim presents a received packet and
// the system walks the topology backwards along routers whose digests
// contain it.
//
// The decisive property experiment E1 demonstrates: under a reflector
// attack the victim's packets were *emitted by reflectors*, so the trace
// terminates at the reflector's AS — "traceback mechanisms will yield a
// wrong attack source — the reflectors — ... if DDoS attacks involve
// reflectors" (Sec. 3.1).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/modules/traceback.h"
#include "net/network.h"
#include "net/reverse_path.h"

namespace adtc {

class SpieSystem {
 public:
  using Config = TracebackStoreModule::Config;

  explicit SpieSystem(Network& net, Config config = Config());

  /// Participates router `node` (collector on its datapath).
  void EnableOn(NodeId node);
  void EnableAll();
  bool EnabledOn(NodeId node) const { return collectors_.contains(node); }

  /// Reconstructs the attack graph for a packet received at
  /// `victim_node`. Origins are the leaves (see net/reverse_path.h).
  TraceResult Trace(const Packet& packet, NodeId victim_node) const;

  std::size_t MemoryBytes() const;
  std::uint64_t digests_stored() const;

 private:
  /// Datapath element: records every transiting packet's digest.
  class Collector : public PacketProcessor {
   public:
    explicit Collector(Config config) : store_(config) {}
    Verdict Process(Packet& packet, const RouterContext& ctx) override {
      DeviceContext device_ctx;
      device_ctx.now = ctx.now;
      store_.OnPacket(packet, device_ctx);
      return Verdict::kForward;
    }
    /// A tap never drops, so the batch hook skips per-packet verdict
    /// dispatch and builds the module context once per batch.
    void ProcessBatch(PacketBatch& batch, const RouterContext& ctx) override {
      DeviceContext device_ctx;
      device_ctx.now = ctx.now;
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (batch.alive(i)) store_.OnPacket(batch.packet(i), device_ctx);
      }
    }
    std::string_view name() const override { return "spie-collector"; }
    TracebackStoreModule store_;
  };

  Network& net_;
  Config config_;
  std::unordered_map<NodeId, std::unique_ptr<Collector>> collectors_;
};

}  // namespace adtc
