#include "mitigation/i3_indirection.h"

#include <algorithm>

namespace adtc {

std::uint64_t I3PackTxn(std::uint64_t trigger, std::uint64_t txn) {
  return (trigger << 40) | (txn & ((1ULL << 40) - 1));
}

std::uint64_t I3UnpackTrigger(std::uint64_t packed) { return packed >> 40; }

// --- I3Node ------------------------------------------------------------------

void I3Node::InsertTrigger(std::uint64_t trigger, Ipv4Address server,
                           std::uint16_t service_port) {
  triggers_[trigger] = {server, service_port};
}

void I3Node::RemoveTrigger(std::uint64_t trigger) {
  triggers_.erase(trigger);
}

void I3Node::HandlePacket(Packet&& packet) {
  if (packet.proto == Protocol::kUdp && packet.dst_port == kI3Port) {
    const std::uint64_t trigger = I3UnpackTrigger(packet.payload_hash);
    const auto it = triggers_.find(trigger);
    if (it == triggers_.end()) return;  // no such trigger: blackhole
    // Proxy the request to the hidden server address.
    Packet proxied = MakePacket(it->second.server, Protocol::kUdp,
                                packet.size_bytes);
    proxied.dst_port = it->second.port;
    proxied.src_port = kI3ProxyPort;
    proxied.klass = packet.klass;
    const PacketSerial serial = net().NextSerialFor(id());
    proxied.serial = serial;
    proxied.true_origin = id();
    proxied.sent_at = Now();
    proxied.payload_hash = serial;
    net().metrics_cell().RecordSend(proxied);
    pending_[serial] = {packet.payload_hash, packet.src};
    forwarded_++;
    SendPacket(std::move(proxied));
    return;
  }
  // A reply from a server to a proxied request.
  const auto it = pending_.find(packet.in_reply_to);
  if (it == pending_.end()) return;
  const auto [txn, client] = it->second;
  pending_.erase(it);
  Packet reply = MakePacket(client, Protocol::kUdp, packet.size_bytes);
  reply.dst_port = kI3ReplyPort;
  reply.payload_hash = txn;
  reply.klass = packet.klass;
  SendPacket(std::move(reply));
}

// --- I3Client ----------------------------------------------------------------

void I3Client::Start(SimDuration after) {
  running_ = true;
  sched().PostIn(after, [this] { SendOne(); });
  sched().PostEvery(std::max<SimDuration>(config_.timeout / 4,
                                          Milliseconds(50)),
                         [this] {
                           Sweep();
                           return running_ || !outstanding_.empty();
                         });
}

void I3Client::SendOne() {
  if (!running_) return;
  const std::uint64_t txn =
      I3PackTxn(config_.trigger,
                (static_cast<std::uint64_t>(id()) << 20) | next_txn_++);
  Packet request = MakePacket(config_.i3_node, Protocol::kUdp, 64);
  request.dst_port = kI3Port;
  request.payload_hash = txn;
  request.klass = TrafficClass::kLegitimate;
  sent_++;
  const SimTime now = Now();
  outstanding_[txn] = {now, now + config_.timeout};
  SendPacket(std::move(request));

  const double gap_s =
      rng().NextExponential(1.0 / std::max(config_.request_rate, 1e-9));
  sched().PostIn(
      std::max<SimDuration>(static_cast<SimDuration>(gap_s * 1e9),
                            Microseconds(1)),
      [this] { SendOne(); });
}

void I3Client::HandlePacket(Packet&& packet) {
  if (packet.proto != Protocol::kUdp || packet.dst_port != kI3ReplyPort) {
    return;
  }
  const auto it = outstanding_.find(packet.payload_hash);
  if (it == outstanding_.end()) return;
  received_++;
  latency_ms_.Add(ToMilliseconds(Now() - it->second.first));
  outstanding_.erase(it);
}

void I3Client::Sweep() {
  const SimTime now = Now();
  for (auto it = outstanding_.begin(); it != outstanding_.end();) {
    if (it->second.second <= now) {
      it = outstanding_.erase(it);
    } else {
      ++it;
    }
  }
}

// --- I3Perimeter --------------------------------------------------------------

I3Perimeter::I3Perimeter(Ipv4Address server,
                         std::vector<Ipv4Address> i3_nodes)
    : server_(server) {
  for (Ipv4Address node : i3_nodes) {
    allowed_.Insert(Prefix::Host(node), true);
  }
  allowed_.Insert(NodePrefix(AddressNode(server)), true);
}

Verdict I3Perimeter::Process(Packet& packet, const RouterContext& ctx) {
  (void)ctx;
  if (packet.dst != server_) return Verdict::kForward;
  if (allowed_.ContainsAddress(packet.src)) return Verdict::kForward;
  blocked_++;
  return Verdict::kDrop;
}

}  // namespace adtc
