#include "mitigation/local_filter.h"

namespace adtc {

LastHopFilter::LastHopFilter(Network& net, Server* victim)
    : LastHopFilter(net, victim, Config()) {}

LastHopFilter::LastHopFilter(Network& net, Server* victim, Config config)
    : net_(net),
      victim_(victim),
      config_(config),
      victim_addr_(victim->address()) {
  net_.AddProcessor(victim->attachment_node(), this);
}

Status LastHopFilter::TryInstall(const MatchRule& rule) {
  // Pushing a rule out needs the victim's own CPU (it must observe the
  // attack, build the rule and speak to the router) — exactly what the
  // flood is consuming.
  if (victim_->CpuHeadroom() < config_.min_headroom) {
    install_failures_++;
    return ResourceExhausted(
        "victim CPU exhausted; cannot configure last-hop rules");
  }
  rules_.push_back(rule);
  return Status::Ok();
}

void LastHopFilter::ForceInstall(const MatchRule& rule) {
  rules_.push_back(rule);
}

Verdict LastHopFilter::Process(Packet& packet, const RouterContext& ctx) {
  (void)ctx;
  if (packet.dst != victim_addr_) return Verdict::kForward;
  for (const MatchRule& rule : rules_) {
    if (rule.Matches(packet)) {
      dropped_++;
      return Verdict::kDrop;
    }
  }
  return Verdict::kForward;
}

}  // namespace adtc
