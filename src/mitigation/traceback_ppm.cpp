#include "mitigation/traceback_ppm.h"

namespace adtc {

PpmSystem::PpmSystem(Network& net) : PpmSystem(net, Config()) {}

PpmSystem::PpmSystem(Network& net, Config config)
    : net_(net), config_(config) {}

void PpmSystem::EnableOn(NodeId node) {
  auto marker = std::make_unique<Marker>(this, node, net_.rng().Fork());
  net_.AddProcessor(node, marker.get());
  markers_.push_back(std::move(marker));
}

void PpmSystem::EnableAll() {
  for (NodeId node = 0; node < net_.node_count(); ++node) EnableOn(node);
}

Verdict PpmSystem::Marker::Process(Packet& packet,
                                   const RouterContext& ctx) {
  (void)ctx;
  if (rng_.NextBool(system_->config_.marking_probability)) {
    // Start a new edge sample at this router.
    packet.ppm.edge_start = node_;
    packet.ppm.edge_end = kInvalidNode;
    packet.ppm.distance = 0;
    packet.ppm.valid = true;
  } else if (packet.ppm.valid) {
    if (packet.ppm.distance == 0 && packet.ppm.edge_end == kInvalidNode) {
      packet.ppm.edge_end = node_;
    }
    if (packet.ppm.distance < 255) packet.ppm.distance++;
  }
  return Verdict::kForward;
}

void PpmSystem::Observe(const Packet& packet) {
  if (!packet.ppm.valid) return;
  marked_observed_++;
  if (packet.ppm.edge_start == kInvalidNode) return;
  edge_starts_.insert(packet.ppm.edge_start);
  if (packet.ppm.edge_end != kInvalidNode) {
    edges_[{packet.ppm.edge_start, packet.ppm.edge_end}]++;
    edge_ends_.insert(packet.ppm.edge_end);
  }
}

std::vector<NodeId> PpmSystem::InferredOrigins() const {
  // Edge-start routers that never appear as an edge end had nothing
  // marked upstream of them: they are adjacent to the traffic's entry.
  std::vector<NodeId> origins;
  for (NodeId start : edge_starts_) {
    if (!edge_ends_.contains(start)) origins.push_back(start);
  }
  return origins;
}

}  // namespace adtc
