// Self-contained SHA-256 (FIPS 180-4).
//
// Used for capability certificates (HMAC), SPIE packet digests and Bloom
// filter hashing. Implemented locally so the library has zero external
// crypto dependencies; correctness is pinned to the FIPS test vectors in
// tests/common/sha256_test.cpp.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace adtc {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha256();

  /// Absorb more input. May be called repeatedly.
  void Update(std::span<const std::uint8_t> data);
  void Update(std::string_view data);

  /// Finalise and return the digest. The object must not be reused after
  /// Finish() without Reset().
  Digest Finish();

  void Reset();

  /// One-shot convenience.
  static Digest Hash(std::span<const std::uint8_t> data);
  static Digest Hash(std::string_view data);

  /// Lowercase hex encoding of a digest.
  static std::string ToHex(const Digest& digest);

 private:
  void ProcessBlock(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace adtc
