// Datapath drop-reason taxonomy.
//
// Every dropped packet gets an explicit reason: the policy family that
// killed it (blacklist, rate-limit, anti-spoof, ...), a transport cause
// (queue overflow), or an injected fault. The enum lives in common so the
// whole stack shares one taxonomy — net counts queue drops, core's module
// graph tags policy drops, and the obs flight recorder serialises the
// value per verdict. Distinct from net::DropReason, which classifies
// *delivery* failures inside the packet network; this classifies
// *verdicts* rendered by the traffic-control datapath.
#pragma once

#include <cstdint>

namespace adtc {

enum class DatapathDropReason : std::uint8_t {
  kNone = 0,        ///< Not dropped (accept verdicts carry this).
  kBlacklist,       ///< Source matched a blacklist module.
  kFirewallRule,    ///< A match/firewall rule's drop action fired.
  kRateLimit,       ///< Token-bucket rate limiter exhausted.
  kAntiSpoof,       ///< Failed reverse-path / anti-spoofing check.
  kModulePolicy,    ///< Some other module routed to the drop terminal.
  kQueueOverflow,   ///< Device or link queue was full.
  kFaultInjected,   ///< Dropped by the fault-injection layer.
  kLinkLoss,        ///< Injected data-plane link loss ate the packet.
  kLinkCorrupt,     ///< Injected in-flight corruption; CRC-dropped at arrival.
  kLinkDown,        ///< Link was inside an injected flap window.
  kCount_,          ///< Sentinel — keep last.
};

inline constexpr std::size_t kDatapathDropReasonCount =
    static_cast<std::size_t>(DatapathDropReason::kCount_);

/// Stable lower-case names, used as metric labels and in JSONL records.
inline const char* DatapathDropReasonName(DatapathDropReason reason) {
  switch (reason) {
    case DatapathDropReason::kNone: return "none";
    case DatapathDropReason::kBlacklist: return "blacklist";
    case DatapathDropReason::kFirewallRule: return "firewall-rule";
    case DatapathDropReason::kRateLimit: return "rate-limit";
    case DatapathDropReason::kAntiSpoof: return "anti-spoof";
    case DatapathDropReason::kModulePolicy: return "module-policy";
    case DatapathDropReason::kQueueOverflow: return "queue-overflow";
    case DatapathDropReason::kFaultInjected: return "fault-injected";
    case DatapathDropReason::kLinkLoss: return "link-loss";
    case DatapathDropReason::kLinkCorrupt: return "link-corrupt";
    case DatapathDropReason::kLinkDown: return "link-down";
    case DatapathDropReason::kCount_: break;
  }
  return "unknown";
}

}  // namespace adtc
