// Counting-free Bloom filter with double hashing (Kirsch–Mitzenmacher).
//
// Used by the SPIE traceback substrate (per-router packet digest rings) and
// the traceback module of the adaptive device. Sized from an expected
// element count and target false-positive rate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace adtc {

class BloomFilter {
 public:
  /// Constructs a filter dimensioned for `expected_items` insertions at the
  /// requested false-positive probability (clamped to [1e-9, 0.5]).
  BloomFilter(std::size_t expected_items, double false_positive_rate);

  /// Inserts a pre-hashed 64-bit key.
  void Insert(std::uint64_t key);

  /// True if the key may be present; false means definitely absent.
  bool MayContain(std::uint64_t key) const;

  void Clear();

  std::size_t bit_count() const { return bit_count_; }
  std::size_t hash_count() const { return hash_count_; }
  std::size_t inserted() const { return inserted_; }

  /// Estimated false-positive probability at the current fill level:
  /// (1 - e^{-kn/m})^k.
  double EstimatedFalsePositiveRate() const;

  /// Memory footprint of the bit array in bytes.
  std::size_t MemoryBytes() const { return bits_.size() * sizeof(std::uint64_t); }

 private:
  std::size_t bit_count_;
  std::size_t hash_count_;
  std::size_t inserted_ = 0;
  std::vector<std::uint64_t> bits_;
};

/// 64-bit finalising mix (used to derive the two double-hashing streams and
/// by callers that need a well-mixed key from structured fields).
std::uint64_t Mix64(std::uint64_t x);

}  // namespace adtc
