#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace adtc {

void SummaryStats::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void SummaryStats::Merge(const SummaryStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double SummaryStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double SummaryStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  assert(hi > lo && buckets > 0);
}

void Histogram::Add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const auto idx = static_cast<std::size_t>((x - lo_) / width_);
  ++counts_[std::min(idx, counts_.size() - 1)];
}

double Histogram::Percentile(double fraction) const {
  fraction = std::clamp(fraction, 0.0, 1.0);
  if (total_ == 0) return lo_;
  const double target = fraction * static_cast<double>(total_);
  double cumulative = static_cast<double>(underflow_);
  if (cumulative >= target) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      const double within = (target - cumulative) / static_cast<double>(counts_[i]);
      return lo_ + (static_cast<double>(i) + within) * width_;
    }
    cumulative = next;
  }
  return hi_;
}

void Ewma::Add(double x) {
  if (!initialised_) {
    value_ = x;
    initialised_ = true;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
}

void Ewma::Reset() {
  value_ = 0.0;
  initialised_ = false;
}

}  // namespace adtc
