#include "common/hmac.h"

#include <array>
#include <cstring>

namespace adtc {

Sha256::Digest HmacSha256(std::span<const std::uint8_t> key,
                          std::span<const std::uint8_t> message) {
  constexpr std::size_t kBlockSize = 64;
  std::array<std::uint8_t, kBlockSize> key_block{};

  if (key.size() > kBlockSize) {
    const Sha256::Digest hashed = Sha256::Hash(key);
    std::memcpy(key_block.data(), hashed.data(), hashed.size());
  } else {
    std::memcpy(key_block.data(), key.data(), key.size());
  }

  std::array<std::uint8_t, kBlockSize> ipad;
  std::array<std::uint8_t, kBlockSize> opad;
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    ipad[i] = static_cast<std::uint8_t>(key_block[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(key_block[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.Update(std::span<const std::uint8_t>(ipad.data(), ipad.size()));
  inner.Update(message);
  const Sha256::Digest inner_digest = inner.Finish();

  Sha256 outer;
  outer.Update(std::span<const std::uint8_t>(opad.data(), opad.size()));
  outer.Update(std::span<const std::uint8_t>(inner_digest.data(),
                                             inner_digest.size()));
  return outer.Finish();
}

Sha256::Digest HmacSha256(std::string_view key, std::string_view message) {
  return HmacSha256(
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(key.data()), key.size()),
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(message.data()),
          message.size()));
}

bool DigestEquals(const Sha256::Digest& a, const Sha256::Digest& b) {
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

}  // namespace adtc
