// Deterministic pseudo-random number generation for simulation.
//
// xoshiro256** (Blackman & Vigna) seeded through SplitMix64. Every simulated
// world owns its own Rng instance so that Monte-Carlo replicates can run on
// separate threads without synchronisation and a (seed, replicate) pair fully
// determines every table in EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <cassert>

namespace adtc {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  /// Re-seed; expands the 64-bit seed into the 256-bit state via SplitMix64.
  void Seed(std::uint64_t seed);

  /// Uniform 64-bit word (UniformRandomBitGenerator interface).
  std::uint64_t operator()() { return Next(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }

  std::uint64_t Next();

  /// Uniform integer in [0, bound). Requires bound > 0. Unbiased (Lemire).
  std::uint64_t NextBelow(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool NextBool(double p);

  /// Exponentially distributed double with the given mean (> 0).
  double NextExponential(double mean);

  /// Pareto-distributed double with scale xm > 0 and shape alpha > 0.
  /// Used for heavy-tailed flow sizes and power-law degree targets.
  double NextPareto(double xm, double alpha);

  /// Derive an independent child generator (for per-entity streams).
  Rng Fork();

 private:
  std::uint64_t state_[4];
};

}  // namespace adtc
