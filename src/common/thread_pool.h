// Fixed-size worker pool with a blocking task queue, plus ParallelFor.
//
// The simulator itself is single-threaded and deterministic; parallelism in
// this codebase is applied one level up, across *independent* simulated
// worlds (Monte-Carlo replicates, parameter sweeps in the bench harness).
// Each task owns all of its state, so no locking appears inside a replicate.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace adtc {

class ThreadPool {
 public:
  /// Starts `threads` workers (defaults to hardware concurrency, >= 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; the returned future completes when it ran.
  std::future<void> Submit(std::function<void()> task);

  std::size_t thread_count() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Runs body(i) for i in [0, count) distributed over a transient pool of at
/// most `max_threads` threads (0 = hardware concurrency). Blocks until all
/// iterations complete. Exceptions from the body propagate to the caller.
void ParallelFor(std::size_t count,
                 const std::function<void(std::size_t)>& body,
                 std::size_t max_threads = 0);

}  // namespace adtc
