#include "common/rng.h"

#include <cmath>

namespace adtc {
namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::Seed(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
  // All-zero state is invalid for xoshiro; SplitMix64 cannot produce four
  // zero outputs in a row, but guard anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::NextInRange(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range.
  const std::uint64_t draw = (span == 0) ? Next() : NextBelow(span);
  return lo + static_cast<std::int64_t>(draw);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextExponential(double mean) {
  assert(mean > 0.0);
  double u = NextDouble();
  // Avoid log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::NextPareto(double xm, double alpha) {
  assert(xm > 0.0 && alpha > 0.0);
  double u = NextDouble();
  if (u <= 0.0) u = 0x1.0p-53;
  return xm / std::pow(u, 1.0 / alpha);
}

Rng Rng::Fork() {
  return Rng(Next() ^ 0xd1b54a32d192ed03ULL);
}

}  // namespace adtc
