#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace adtc {

Table::Table(std::string title) : title_(std::move(title)) {}

void Table::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void Table::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string Table::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::Int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

std::string Table::Pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

void Table::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& cells) {
    os << "| ";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << cell;
      for (std::size_t pad = cell.size(); pad < widths[c]; ++pad) os << ' ';
      os << " | ";
    }
    os << '\n';
  };

  if (!title_.empty()) os << "=== " << title_ << " ===\n";
  print_row(header_);
  os << "|-";
  for (std::size_t c = 0; c < widths.size(); ++c) {
    for (std::size_t i = 0; i < widths[c]; ++i) os << '-';
    os << (c + 1 < widths.size() ? "-|-" : "-|");
  }
  os << "-\n";
  for (const auto& row : rows_) print_row(row);
  os.flush();
}

}  // namespace adtc
