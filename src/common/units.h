// Time and data-rate units used throughout the simulator.
//
// Simulated time is a signed 64-bit nanosecond count (SimTime). All rates
// are bits per second; all sizes are bytes. Helper constructors keep the
// call sites readable (`Milliseconds(5)`, `MegabitsPerSecond(100)`).
#pragma once

#include <cstdint>

namespace adtc {

/// Simulated time in nanoseconds since world start.
using SimTime = std::int64_t;
/// Duration in nanoseconds.
using SimDuration = std::int64_t;

inline constexpr SimTime kSimTimeMax = INT64_MAX;

constexpr SimDuration Nanoseconds(std::int64_t n) { return n; }
constexpr SimDuration Microseconds(std::int64_t n) { return n * 1'000; }
constexpr SimDuration Milliseconds(std::int64_t n) { return n * 1'000'000; }
constexpr SimDuration Seconds(std::int64_t n) { return n * 1'000'000'000; }

constexpr double ToSeconds(SimDuration d) {
  return static_cast<double>(d) / 1e9;
}
constexpr double ToMilliseconds(SimDuration d) {
  return static_cast<double>(d) / 1e6;
}

/// Data rate in bits per second.
using BitRate = std::int64_t;

constexpr BitRate BitsPerSecond(std::int64_t n) { return n; }
constexpr BitRate KilobitsPerSecond(std::int64_t n) { return n * 1'000; }
constexpr BitRate MegabitsPerSecond(std::int64_t n) { return n * 1'000'000; }
constexpr BitRate GigabitsPerSecond(std::int64_t n) { return n * 1'000'000'000; }

/// Serialisation delay of `bytes` on a link of rate `rate` (ns, rounded up).
constexpr SimDuration TransmissionDelay(std::int64_t bytes, BitRate rate) {
  // bytes * 8 bits / (rate bits/s) seconds -> ns.
  return (bytes * 8 * 1'000'000'000 + rate - 1) / rate;
}

}  // namespace adtc
