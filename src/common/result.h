// Minimal Status / Result<T> error-handling vocabulary.
//
// The control plane (registration, deployment, rule installation) reports
// recoverable failures through these types rather than exceptions, so that
// every rejection path (e.g. the safety validator refusing a rule) is
// explicit at the call site and testable.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace adtc {

enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,   // malformed input (bad prefix, bad config)
  kNotFound,          // unknown subscriber / device / service
  kPermissionDenied,  // ownership check failed, certificate invalid
  kSafetyViolation,   // rule/module rejected by the safety validator
  kUnavailable,       // peer unreachable (e.g. TCSP down)
  kAlreadyExists,     // duplicate registration / rule id
  kResourceExhausted, // device rule table or budget exceeded
  kExpired,           // certificate/lease outside its validity window
  kReplayDetected,    // known id re-delivered with different content
  kInternal,
};

/// Human-readable name of an ErrorCode ("ok", "safety_violation", ...).
std::string_view ErrorCodeName(ErrorCode code);

/// Operational severity for aggregating many outcomes into one (higher =
/// worse). The ordering groups codes by what the operator must do:
/// nothing (kOk) < benign duplicates (kAlreadyExists) < lookup/config
/// errors < credential problems < safety rejections < capacity and
/// availability failures < internal faults.
int ErrorSeverity(ErrorCode code);

/// A success-or-error outcome without a payload.
class Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != ErrorCode::kOk);
  }

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code>: <message>".
  std::string ToString() const;

 private:
  ErrorCode code_;
  std::string message_;
};

/// The worse of two statuses under ErrorSeverity (ties keep `a`, so the
/// first-observed failure of a given severity wins deterministically).
const Status& WorseStatus(const Status& a, const Status& b);

inline Status InvalidArgument(std::string msg) {
  return {ErrorCode::kInvalidArgument, std::move(msg)};
}
inline Status NotFound(std::string msg) {
  return {ErrorCode::kNotFound, std::move(msg)};
}
inline Status PermissionDenied(std::string msg) {
  return {ErrorCode::kPermissionDenied, std::move(msg)};
}
inline Status SafetyViolation(std::string msg) {
  return {ErrorCode::kSafetyViolation, std::move(msg)};
}
inline Status Unavailable(std::string msg) {
  return {ErrorCode::kUnavailable, std::move(msg)};
}
inline Status AlreadyExists(std::string msg) {
  return {ErrorCode::kAlreadyExists, std::move(msg)};
}
inline Status ResourceExhausted(std::string msg) {
  return {ErrorCode::kResourceExhausted, std::move(msg)};
}
inline Status Expired(std::string msg) {
  return {ErrorCode::kExpired, std::move(msg)};
}
inline Status ReplayDetected(std::string msg) {
  return {ErrorCode::kReplayDetected, std::move(msg)};
}
inline Status InternalError(std::string msg) {
  return {ErrorCode::kInternal, std::move(msg)};
}

/// A value-or-error outcome. `value()` asserts success.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}        // NOLINT(implicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT(implicit)
    assert(!status_.ok() && "use Result(T) for success");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& value_or(const T& fallback) const& {
    return ok() ? *value_ : fallback;
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace adtc
