#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

namespace adtc {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

void ParallelFor(std::size_t count,
                 const std::function<void(std::size_t)>& body,
                 std::size_t max_threads) {
  if (count == 0) return;
  if (max_threads == 0) {
    max_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  const std::size_t threads = std::min(max_threads, count);
  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (std::size_t t = 0; t + 1 < threads; ++t) pool.emplace_back(worker);
  worker();
  for (auto& thread : pool) thread.join();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace adtc
