// Fundamental identifier and scalar types shared across the ADTC libraries.
//
// Strong-typedef style wrappers are deliberately avoided for the hot-path
// ids (they are used as indices into contiguous arrays billions of times in
// simulation); instead we use distinct aliases plus sentinel constants and
// rely on API shape to keep them apart.
#pragma once

#include <cstdint>
#include <limits>

namespace adtc {

/// Index of a node (router) in a Topology. Dense, 0-based.
using NodeId = std::uint32_t;
/// Index of an end host attached to the topology. Dense, 0-based.
using HostId = std::uint32_t;
/// Index of a unidirectional link in a Topology. Dense, 0-based.
using LinkId = std::uint32_t;
/// Autonomous-system number of a node.
using AsNumber = std::uint32_t;
/// Monotonic per-world packet serial number (ground-truth identity).
using PacketSerial = std::uint64_t;
/// Identifier of a registered traffic-control service subscriber.
using SubscriberId = std::uint32_t;
/// Index of a simulation shard (one worker event loop). Dense, 0-based;
/// shard 0 is the control shard by convention (see docs/sharding.md).
using ShardId = std::uint32_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr HostId kInvalidHost = std::numeric_limits<HostId>::max();
inline constexpr LinkId kInvalidLink = std::numeric_limits<LinkId>::max();
inline constexpr SubscriberId kInvalidSubscriber =
    std::numeric_limits<SubscriberId>::max();
inline constexpr ShardId kInvalidShard = std::numeric_limits<ShardId>::max();

}  // namespace adtc
