#include "common/bloom.h"

#include <algorithm>
#include <cmath>

namespace adtc {

std::uint64_t Mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

BloomFilter::BloomFilter(std::size_t expected_items,
                         double false_positive_rate) {
  expected_items = std::max<std::size_t>(expected_items, 1);
  false_positive_rate = std::clamp(false_positive_rate, 1e-9, 0.5);
  const double ln2 = std::log(2.0);
  const double bits_per_item = -std::log(false_positive_rate) / (ln2 * ln2);
  bit_count_ = std::max<std::size_t>(
      64, static_cast<std::size_t>(std::ceil(bits_per_item *
                                             static_cast<double>(expected_items))));
  hash_count_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::lround(bits_per_item * ln2)));
  bits_.assign((bit_count_ + 63) / 64, 0);
}

void BloomFilter::Insert(std::uint64_t key) {
  const std::uint64_t h1 = Mix64(key);
  const std::uint64_t h2 = Mix64(key ^ 0x9e3779b97f4a7c15ULL) | 1;
  for (std::size_t i = 0; i < hash_count_; ++i) {
    const std::uint64_t bit = (h1 + i * h2) % bit_count_;
    bits_[bit >> 6] |= 1ULL << (bit & 63);
  }
  ++inserted_;
}

bool BloomFilter::MayContain(std::uint64_t key) const {
  const std::uint64_t h1 = Mix64(key);
  const std::uint64_t h2 = Mix64(key ^ 0x9e3779b97f4a7c15ULL) | 1;
  for (std::size_t i = 0; i < hash_count_; ++i) {
    const std::uint64_t bit = (h1 + i * h2) % bit_count_;
    if ((bits_[bit >> 6] & (1ULL << (bit & 63))) == 0) return false;
  }
  return true;
}

void BloomFilter::Clear() {
  std::fill(bits_.begin(), bits_.end(), 0);
  inserted_ = 0;
}

double BloomFilter::EstimatedFalsePositiveRate() const {
  const double k = static_cast<double>(hash_count_);
  const double n = static_cast<double>(inserted_);
  const double m = static_cast<double>(bit_count_);
  return std::pow(1.0 - std::exp(-k * n / m), k);
}

}  // namespace adtc
