#include "common/result.h"

namespace adtc {

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kPermissionDenied: return "permission_denied";
    case ErrorCode::kSafetyViolation: return "safety_violation";
    case ErrorCode::kUnavailable: return "unavailable";
    case ErrorCode::kAlreadyExists: return "already_exists";
    case ErrorCode::kResourceExhausted: return "resource_exhausted";
    case ErrorCode::kExpired: return "expired";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out(ErrorCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace adtc
