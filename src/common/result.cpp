#include "common/result.h"

namespace adtc {

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kPermissionDenied: return "permission_denied";
    case ErrorCode::kSafetyViolation: return "safety_violation";
    case ErrorCode::kUnavailable: return "unavailable";
    case ErrorCode::kAlreadyExists: return "already_exists";
    case ErrorCode::kResourceExhausted: return "resource_exhausted";
    case ErrorCode::kExpired: return "expired";
    case ErrorCode::kReplayDetected: return "replay_detected";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

int ErrorSeverity(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return 0;
    case ErrorCode::kAlreadyExists: return 1;
    case ErrorCode::kNotFound: return 2;
    case ErrorCode::kInvalidArgument: return 3;
    case ErrorCode::kExpired: return 4;
    case ErrorCode::kPermissionDenied: return 5;
    case ErrorCode::kReplayDetected: return 6;
    case ErrorCode::kSafetyViolation: return 7;
    case ErrorCode::kResourceExhausted: return 8;
    case ErrorCode::kUnavailable: return 9;
    case ErrorCode::kInternal: return 10;
  }
  return 10;
}

const Status& WorseStatus(const Status& a, const Status& b) {
  return ErrorSeverity(b.code()) > ErrorSeverity(a.code()) ? b : a;
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out(ErrorCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace adtc
