// Lightweight metric primitives: running summaries, fixed-bucket histograms
// and exponentially weighted moving averages.
//
// These are the measurement vocabulary of every experiment: clients report
// goodput and latency through SummaryStats, devices and routers expose
// Counters, and trigger modules watch Ewma rate estimates.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace adtc {

/// Streaming mean/variance/min/max (Welford).
class SummaryStats {
 public:
  void Add(double x);
  void Merge(const SummaryStats& other);

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Histogram over [lo, hi) with uniform buckets plus underflow/overflow.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void Add(double x);

  std::uint64_t total() const { return total_; }
  /// Value below which the given fraction (0..1) of samples fall
  /// (linear interpolation within a bucket).
  double Percentile(double fraction) const;

  const std::vector<std::uint64_t>& buckets() const { return counts_; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

/// Exponentially weighted moving average with configurable smoothing.
class Ewma {
 public:
  explicit Ewma(double alpha = 0.125) : alpha_(alpha) {}

  void Add(double x);
  double value() const { return value_; }
  bool initialised() const { return initialised_; }
  void Reset();

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialised_ = false;
};

}  // namespace adtc
