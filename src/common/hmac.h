// HMAC-SHA256 (RFC 2104) over the local SHA-256 implementation.
//
// The TCSP issues capability certificates by MACing the canonical
// certificate body with its private key; adaptive devices and ISP NMSes
// verify them with the same shared secret (the simulation stands in for a
// PKI — see DESIGN.md section 2).
#pragma once

#include <span>
#include <string_view>

#include "common/sha256.h"

namespace adtc {

/// Computes HMAC-SHA256(key, message).
Sha256::Digest HmacSha256(std::span<const std::uint8_t> key,
                          std::span<const std::uint8_t> message);

Sha256::Digest HmacSha256(std::string_view key, std::string_view message);

/// Constant-time digest comparison (avoids timing side channels in the
/// certificate verification path).
bool DigestEquals(const Sha256::Digest& a, const Sha256::Digest& b);

}  // namespace adtc
