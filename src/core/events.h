// Event plumbing between adaptive devices and the management plane.
//
// Devices emit events (trigger firings, safety violations, log notes);
// the ISP NMS collects them and forwards subscriber-visible ones via the
// TCSP (Fig. 3's "event/log" arrows).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.h"
#include "common/units.h"

namespace adtc {

enum class EventKind : std::uint8_t {
  kTriggerFired,      // a trigger module's condition was met
  kSafetyViolation,   // a module attempted a forbidden mutation
  kRuleActivated,     // pre-staged configuration switched on
  kLogNote,           // free-form module diagnostics
  /// Runtime guard contradicted a statically-proven property: the
  /// quarantined deployment had passed admission analysis, so a module's
  /// declared effect signature was wrong (analyzer-soundness oracle).
  kAnalysisSoundness,
  /// Attack traffic was observed reaching a victim whose deployment plan
  /// the network-wide verifier had proven covered — the plan analyzer's
  /// soundness oracle (a module's filtering claim was wrong, or the
  /// topology diverged from the admission-time snapshot).
  kPlanSoundness,
  /// Periodic cumulative counter sample published by the NMS for a
  /// monitored aggregate (value = packets seen by the subscriber's
  /// destination stage so far). Telemetry for the detection subsystem:
  /// forwarded to the event tap, never retained in the NMS event log.
  kCounterSample,
  /// A sequential detector crossed its attack threshold for an aggregate.
  kAttackDetected,
  /// Sustained all-clear on a previously attacked aggregate.
  kAttackCleared,
  /// The DetectionController auto-deployed mitigation through the TCSP.
  kAutoDeploy,
  /// The DetectionController withdrew an auto-deployed mitigation.
  kAutoWithdraw,
  kCount_,
};

inline constexpr std::size_t kEventKindCount =
    static_cast<std::size_t>(EventKind::kCount_);

std::string_view EventKindName(EventKind kind);

struct DeviceEvent {
  EventKind kind = EventKind::kLogNote;
  SimTime at = 0;
  NodeId node = kInvalidNode;
  SubscriberId subscriber = kInvalidSubscriber;
  std::string detail;
  double value = 0.0;  // e.g. observed rate for trigger events
};

/// Receiver of device events (implemented by the ISP NMS).
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void OnEvent(const DeviceEvent& event) = 0;
};

/// Buffering sink for tests and log readout: a bounded ring. Once
/// `capacity` events are retained, each new event evicts the oldest and
/// bumps the dropped-event counter — a long-running world can no longer
/// grow an NMS log without bound (the drops are themselves exported to
/// telemetry by the NMS collector).
class EventBuffer : public EventSink {
 public:
  explicit EventBuffer(std::size_t capacity = 65536)
      : capacity_(capacity > 0 ? capacity : 1) {}

  void OnEvent(const DeviceEvent& event) override {
    total_.fetch_add(1, std::memory_order_relaxed);
    dirty_ = true;
    if (ring_.size() < capacity_) {
      ring_.push_back(event);
      return;
    }
    ring_[head_] = event;
    head_ = (head_ + 1) % capacity_;
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Retained events, oldest first (linearised lazily after wraparound).
  const std::vector<DeviceEvent>& events() const {
    if (dirty_) {
      linear_.clear();
      linear_.reserve(ring_.size());
      for (std::size_t i = 0; i < ring_.size(); ++i) {
        linear_.push_back(ring_[(head_ + i) % ring_.size()]);
      }
      dirty_ = false;
    }
    return linear_;
  }

  /// Count of `kind` among the retained events.
  std::size_t CountOf(EventKind kind) const {
    std::size_t n = 0;
    for (const auto& e : ring_) n += e.kind == kind ? 1 : 0;
    return n;
  }

  std::size_t size() const { return ring_.size(); }
  std::size_t capacity() const { return capacity_; }
  /// Events evicted to make room (total_events - retained). The two
  /// totals are relaxed-atomic cells so the telemetry collector can
  /// read them cross-shard mid-window (docs/sharding.md).
  std::uint64_t dropped_events() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// All events ever offered to the buffer.
  std::uint64_t total_events() const {
    return total_.load(std::memory_order_relaxed);
  }

  void Clear() {
    ring_.clear();
    linear_.clear();
    head_ = 0;
    dropped_ = 0;
    total_ = 0;
    dirty_ = false;
  }

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;  // oldest retained event once the ring is full
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> total_{0};
  std::vector<DeviceEvent> ring_;
  mutable std::vector<DeviceEvent> linear_;
  mutable bool dirty_ = false;
};

}  // namespace adtc
