// Event plumbing between adaptive devices and the management plane.
//
// Devices emit events (trigger firings, safety violations, log notes);
// the ISP NMS collects them and forwards subscriber-visible ones via the
// TCSP (Fig. 3's "event/log" arrows).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.h"
#include "common/units.h"

namespace adtc {

enum class EventKind : std::uint8_t {
  kTriggerFired,      // a trigger module's condition was met
  kSafetyViolation,   // a module attempted a forbidden mutation
  kRuleActivated,     // pre-staged configuration switched on
  kLogNote,           // free-form module diagnostics
};

std::string_view EventKindName(EventKind kind);

struct DeviceEvent {
  EventKind kind = EventKind::kLogNote;
  SimTime at = 0;
  NodeId node = kInvalidNode;
  SubscriberId subscriber = kInvalidSubscriber;
  std::string detail;
  double value = 0.0;  // e.g. observed rate for trigger events
};

/// Receiver of device events (implemented by the ISP NMS).
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void OnEvent(const DeviceEvent& event) = 0;
};

/// Simple buffering sink for tests and log readout.
class EventBuffer : public EventSink {
 public:
  void OnEvent(const DeviceEvent& event) override {
    events_.push_back(event);
  }
  const std::vector<DeviceEvent>& events() const { return events_; }
  std::size_t CountOf(EventKind kind) const {
    std::size_t n = 0;
    for (const auto& e : events_) n += e.kind == kind ? 1 : 0;
    return n;
  }
  void Clear() { events_.clear(); }

 private:
  std::vector<DeviceEvent> events_;
};

}  // namespace adtc
