#include "core/certificate.h"

#include <algorithm>

namespace adtc {

std::string OwnershipCertificate::CanonicalBody() const {
  std::string body;
  body += "subscriber=" + std::to_string(subscriber) + ";";
  body += "subject=" + subject + ";";
  body += "prefixes=";
  for (const Prefix& prefix : prefixes) {
    body += prefix.ToString() + ",";
  }
  body += ";issued=" + std::to_string(issued_at);
  body += ";expires=" + std::to_string(expires_at);
  return body;
}

bool OwnershipCertificate::CoversPrefix(const Prefix& prefix) const {
  return std::any_of(prefixes.begin(), prefixes.end(),
                     [&](const Prefix& own) { return own.Covers(prefix); });
}

bool OwnershipCertificate::CoversAddress(Ipv4Address addr) const {
  return std::any_of(prefixes.begin(), prefixes.end(),
                     [&](const Prefix& own) { return own.Contains(addr); });
}

OwnershipCertificate CertificateAuthority::Issue(
    SubscriberId subscriber, std::string subject,
    std::vector<Prefix> prefixes, SimTime now, SimDuration validity) const {
  OwnershipCertificate cert;
  cert.subscriber = subscriber;
  cert.subject = std::move(subject);
  cert.prefixes = std::move(prefixes);
  // Canonical prefix order makes byte-identical bodies for identical sets.
  std::sort(cert.prefixes.begin(), cert.prefixes.end());
  cert.issued_at = now;
  cert.expires_at = now + validity;
  cert.signature = HmacSha256(key_, cert.CanonicalBody());
  return cert;
}

Status CertificateAuthority::Verify(const OwnershipCertificate& cert,
                                    SimTime now) const {
  // Signature first: an expired-but-forged certificate is forged.
  const Sha256::Digest expected = HmacSha256(key_, cert.CanonicalBody());
  if (!DigestEquals(expected, cert.signature)) {
    return PermissionDenied("certificate signature mismatch for '" +
                            cert.subject + "'");
  }
  if (now < cert.issued_at || now >= cert.expires_at) {
    return Expired("certificate of '" + cert.subject +
                   "' outside validity window");
  }
  return Status::Ok();
}

}  // namespace adtc
