#include "core/nms.h"

#include <algorithm>
#include <cassert>

#include "obs/span.h"
#include "obs/trace_context.h"

namespace adtc {
namespace {

std::uint64_t DeployKey(SubscriberId subscriber, ServiceKind kind) {
  return (static_cast<std::uint64_t>(subscriber) << 8) |
         static_cast<std::uint64_t>(kind);
}

}  // namespace

IspNms::IspNms(std::string isp_name, Network& net,
               const SafetyValidator* validator)
    : name_(std::move(isp_name)),
      net_(net),
      sched_(net.control()),
      validator_(validator),
      control_rng_(DeploymentOriginTag(name_)),
      origin_tag_(DeploymentOriginTag(name_)) {
  const std::string prefix = "nms." + name_ + ".";
  net_.telemetry().registry().AddCollector(
      this, [this, prefix](obs::MetricsSnapshot& out) {
        out.push_back({prefix + "deployments_installed",
                       static_cast<double>(stats_.deployments_installed)});
        out.push_back({prefix + "deployments_rejected",
                       static_cast<double>(stats_.deployments_rejected)});
        out.push_back({prefix + "relays_forwarded",
                       static_cast<double>(stats_.relays_forwarded)});
        out.push_back({prefix + "relays_received",
                       static_cast<double>(stats_.relays_received)});
        out.push_back({prefix + "events_received",
                       static_cast<double>(stats_.events_received)});
        out.push_back({prefix + "events_dropped",
                       static_cast<double>(event_log_.dropped_events())});
        out.push_back({prefix + "devices",
                       static_cast<double>(devices_.size())});
        out.push_back({prefix + "duplicate_instructions",
                       static_cast<double>(stats_.duplicate_instructions)});
        out.push_back({prefix + "install_retries",
                       static_cast<double>(stats_.install_retries)});
        out.push_back({prefix + "installs_deferred",
                       static_cast<double>(stats_.installs_deferred)});
        out.push_back({prefix + "retry_sweeps",
                       static_cast<double>(stats_.retry_sweeps)});
        out.push_back({prefix + "resync_rounds",
                       static_cast<double>(stats_.resync_rounds)});
        out.push_back({prefix + "resync_installs",
                       static_cast<double>(stats_.resync_installs)});
        out.push_back({prefix + "soundness_flags",
                       static_cast<double>(stats_.soundness_flags)});
      });
}

IspNms::~IspNms() {
  net_.telemetry().registry().RemoveCollectors(this);
}

void IspNms::ManageNode(NodeId node) {
  if (devices_.contains(node)) return;
  if (managed_.empty()) {
    sched_ = net_.shard_at(node);  // first device pins the NMS's shard
  } else {
    assert(net_.shard_at(node).SameShard(sched_) &&
           "an NMS and all its managed devices must share one shard");
  }
  auto device = std::make_unique<AdaptiveDevice>(node, this);
  device->BindTelemetry(&net_.telemetry());
  net_.AddProcessor(node, device.get());
  devices_.emplace(node, std::move(device));
  managed_.push_back(node);
}

AdaptiveDevice* IspNms::device(NodeId node) {
  const auto it = devices_.find(node);
  return it != devices_.end() ? it->second.get() : nullptr;
}

void IspNms::AttachFaultInjector(FaultInjector* injector) {
  injector_ = injector;
  // Channels capture the injector at construction; drop them so the next
  // use rebuilds against the new plan.
  device_channels_.clear();
  peer_channels_.clear();
}

void IspNms::AddPeer(IspNms* peer) {
  if (peer == nullptr || peer == this) return;
  if (std::find(peers_.begin(), peers_.end(), peer) != peers_.end()) {
    return;
  }
  peers_.push_back(peer);
}

std::string IspNms::DeviceChannelName(NodeId node) const {
  return "nms:" + name_ + "->dev:" + std::to_string(node);
}

ControlChannel& IspNms::DeviceChannel(NodeId node) {
  auto it = device_channels_.find(node);
  if (it == device_channels_.end()) {
    // NMS and device share a shard (ManageNode contract), so the
    // channel's both ends anchor there and the inline fast path holds.
    auto channel = std::make_unique<ControlChannel>(
        sched_, net_.shard_at(node), control_rng_, DeviceChannelName(node),
        injector_, [this, node] {
          return injector_ == nullptr ||
                 injector_->DeviceUp(node, net_.Now());
        });
    channel->SetTracer(&net_.telemetry().tracer());
    it = device_channels_.emplace(node, std::move(channel)).first;
  }
  return *it->second;
}

ControlChannel& IspNms::PeerChannel(IspNms* peer) {
  auto it = peer_channels_.find(peer);
  if (it == peer_channels_.end()) {
    // Peer relays cross management domains — and possibly shards: the
    // remote end is the peer NMS's shard. Cross-shard peers need
    // set_peer_latency >= the engine epoch.
    auto channel = std::make_unique<ControlChannel>(
        sched_, peer->sched(), control_rng_,
        "nms:" + name_ + "->nms:" + peer->name(), injector_);
    channel->SetTracer(&net_.telemetry().tracer());
    it = peer_channels_.emplace(peer, std::move(channel)).first;
  }
  return *it->second;
}

Status IspNms::DeployService(const OwnershipCertificate& cert,
                             const ServiceRequest& request,
                             const std::vector<NodeId>& home_nodes,
                             const CertificateAuthority& authority) {
  DeploymentInstruction instr;
  instr.id = DeploymentId{origin_tag_, next_local_seq_++};
  instr.cert = cert;
  instr.request = request;
  instr.home_nodes = home_nodes;
  return ApplyDeployment(instr, authority);
}

Status IspNms::ApplyDeployment(const DeploymentInstruction& instr,
                               const CertificateAuthority& authority) {
  if (instr.id.valid()) {
    if (const auto it = applied_.find(instr.id); it != applied_.end()) {
      stats_.duplicate_instructions++;
      return it->second;
    }
  }
  const Status status = ApplyDeploymentImpl(instr, authority);
  if (instr.id.valid()) {
    applied_.emplace(instr.id, status);
  }
  return status;
}

Status IspNms::ApplyDeploymentImpl(const DeploymentInstruction& instr,
                                   const CertificateAuthority& authority) {
  obs::Tracer* tracer = net_.telemetry().tracing_enabled()
                            ? &net_.telemetry().tracer()
                            : nullptr;
  obs::ScopedSpan span(tracer, "nms.deploy");
  span.SetSubscriber(instr.cert.subscriber);
  if (tracer != nullptr) {
    tracer->Annotate(span.id(), "isp", name_);
    AnnotateTrace(tracer, span.id(),
                  obs::TraceContext::ForDeployment(instr.id.origin,
                                                   instr.id.seq));
  }
  authority_ = &authority;
  {
    obs::ScopedSpan validate_span(tracer, "cert.validate");
    if (const Status verified =
            authority.Verify(instr.cert, net_.Now());
        !verified.ok()) {
      stats_.deployments_rejected++;
      validate_span.Fail();
      span.Fail();
      return verified;
    }
  }
  // Anti-spoofing must exempt every edge that can legitimately carry the
  // owner's addresses: the home ASes and their provider chains.
  std::vector<NodeId> legit_forwarders =
      LegitimateForwarderSet(net_, instr.home_nodes);
  // Analyze once against reference graphs (all devices get identically
  // shaped graphs for a given request). Devices sit at transit vantage
  // points too, so no customer-edge guarantee is claimed — the default
  // AnalysisContext.
  bool statically_proven = false;
  {
    obs::ScopedSpan analyze_span(tracer, "safety.analyze");
    StageGraphs reference =
        BuildStageGraphs(instr.request, legit_forwarders);
    const ModuleGraph* graph =
        reference.source_stage ? &*reference.source_stage
                               : (reference.destination_stage
                                      ? &*reference.destination_stage
                                      : nullptr);
    if (graph == nullptr) {
      stats_.deployments_rejected++;
      analyze_span.Fail();
      span.Fail();
      return InvalidArgument("service request produced no graphs");
    }
    const DeploymentAnalysis first = validator_->AnalyzeDeployment(
        instr.cert, instr.request.control_scope, *graph);
    if (!first.status.ok()) {
      stats_.deployments_rejected++;
      analyze_span.Fail();
      span.Fail();
      return first.status;
    }
    statically_proven = first.report.proven();
    if (reference.destination_stage && reference.source_stage) {
      const DeploymentAnalysis second = validator_->AnalyzeDeployment(
          instr.cert, instr.request.control_scope,
          *reference.destination_stage);
      if (!second.status.ok()) {
        stats_.deployments_rejected++;
        analyze_span.Fail();
        span.Fail();
        return second.status;
      }
      statically_proven = statically_proven && second.report.proven();
    }
  }

  DesiredDeployment desired;
  desired.instr = instr;
  desired.legit_forwarders = std::move(legit_forwarders);
  desired.statically_proven = statically_proven;
  desired.trace_anchor = span.id();
  const DeploymentId key = instr.id;
  desired_.insert_or_assign(key, std::move(desired));
  sweep_attempt_ = 0;  // a fresh deployment gets a fresh retry budget
  InstallRound(key);
  // Fault-free channels completed inline, so `worst` is final here; a
  // faulty channel reports later and converges through retries/resync,
  // in which case acceptance is what we can promise now.
  const DesiredDeployment& d = desired_.at(key);
  if (!d.worst.ok()) {
    stats_.deployments_rejected++;
    span.Fail();
    return d.worst;
  }
  return Status::Ok();
}

void IspNms::InstallRound(const DeploymentId& id) {
  const auto it = desired_.find(id);
  if (it == desired_.end()) return;
  const DesiredDeployment& d = it->second;
  const SubscriberId subscriber = d.instr.cert.subscriber;
  const ServiceRequest request = d.instr.request;
  for (NodeId node : managed_) {
    if (!PlacementSelectsNode(request, net_, node)) continue;
    if (devices_.at(node)->HasDeployment(subscriber)) continue;
    ControlChannel::CallOptions opts;
    opts.retry = retry_policy_;
    opts.trace = obs::TraceContext::ForDeployment(id.origin, id.seq,
                                                  d.trace_anchor);
    DeviceChannel(node).Call(
        [this, id, node] { return InstallOnDevice(id, node); },
        [this, id, node](const Status& status, const CallOutcome& outcome) {
          OnDeviceInstallResult(id, node, status, outcome);
        },
        opts);
  }
}

Status IspNms::InstallOnDevice(const DeploymentId& id, NodeId node) {
  const auto it = desired_.find(id);
  if (it == desired_.end()) {
    return NotFound("deployment no longer desired at " + name_);
  }
  const DesiredDeployment& d = it->second;
  AdaptiveDevice* dev = devices_.at(node).get();
  // Re-delivered copies of an already-landed install are a no-op.
  if (dev->HasDeployment(d.instr.cert.subscriber)) return Status::Ok();
  StageGraphs graphs =
      BuildStageGraphs(d.instr.request, d.legit_forwarders);
  DeploymentSpec spec;
  spec.cert = d.instr.cert;
  spec.scope = d.instr.request.control_scope;
  spec.source_stage = std::move(graphs.source_stage);
  spec.destination_stage = std::move(graphs.destination_stage);
  spec.label = std::string(ServiceKindName(d.instr.request.kind));
  spec.deployment_id = id;
  return dev->InstallDeployment(std::move(spec));
}

void IspNms::OnDeviceInstallResult(const DeploymentId& id, NodeId node,
                                   const Status& status,
                                   const CallOutcome& outcome) {
  (void)node;
  const auto it = desired_.find(id);
  if (it == desired_.end()) return;  // removed while in flight
  DesiredDeployment& d = it->second;
  if (outcome.attempts > 1) {
    stats_.install_retries += outcome.attempts - 1;
  }
  if (status.ok()) {
    if (!d.counted) {
      d.counted = true;
      stats_.deployments_installed++;
      deployed_keys_.insert(
          DeployKey(d.instr.cert.subscriber, d.instr.request.kind));
    }
    return;
  }
  d.worst = WorseStatus(d.worst, status);
  if (status.code() == ErrorCode::kUnavailable) {
    // Device crashed or every copy was lost; keep trying on a backoff
    // sweep until the budget runs out, then leave it to resync.
    stats_.installs_deferred++;
    ScheduleRetrySweep();
  }
}

void IspNms::ScheduleRetrySweep() {
  if (sweep_scheduled_ || sweep_attempt_ >= kMaxSweepAttempts) return;
  sweep_scheduled_ = true;
  const SimDuration delay =
      retry_policy_.BackoffAfter(++sweep_attempt_, control_rng_);
  sched_.PostIn(std::max<SimDuration>(delay, 1), [this] {
    sweep_scheduled_ = false;
    stats_.retry_sweeps++;
    (void)ResyncLocalDevices(/*from_resync=*/false);
    if (AnyInstallPending()) {
      ScheduleRetrySweep();
    } else {
      sweep_attempt_ = 0;
    }
  });
}

bool IspNms::AnyInstallPending() const {
  for (const auto& [id, d] : desired_) {
    (void)id;
    for (NodeId node : managed_) {
      if (!PlacementSelectsNode(d.instr.request, net_, node)) continue;
      if (!devices_.at(node)->HasDeployment(d.instr.cert.subscriber)) {
        return true;
      }
    }
  }
  return false;
}

std::size_t IspNms::ResyncLocalDevices(bool from_resync) {
  std::size_t installed = 0;
  const SimTime now = net_.Now();
  obs::Tracer* tracer = net_.telemetry().tracing_enabled()
                            ? &net_.telemetry().tracer()
                            : nullptr;
  for (auto& [id, d] : desired_) {
    for (NodeId node : managed_) {
      if (!PlacementSelectsNode(d.instr.request, net_, node)) continue;
      if (devices_.at(node)->HasDeployment(d.instr.cert.subscriber)) {
        continue;
      }
      if (injector_ != nullptr && !injector_->DeviceUp(node, now)) {
        continue;  // still down; a later round catches it
      }
      MessageFate fate;
      if (injector_ != nullptr) {
        fate = injector_->PlanMessage(DeviceChannelName(node));
      }
      // Each recovery attempt is a span under the deployment's local
      // anchor, with the injector's verdict on its single message — so
      // the offline timeline shows *how* convergence happened, not just
      // that it did.
      obs::SpanId span = obs::kNoSpan;
      if (tracer != nullptr) {
        span = tracer->StartSpan("nms.resync_install", d.trace_anchor);
        tracer->SetNode(span, node);
        tracer->Annotate(span, "channel", DeviceChannelName(node));
        tracer->Annotate(span, "sweep", from_resync ? "resync" : "retry");
        AnnotateTrace(tracer, span,
                      obs::TraceContext::ForDeployment(id.origin, id.seq));
        tracer->Annotate(
            span, "fate",
            !fate.deliver ? "lost"
                          : (fate.duplicate ? "duplicated" : "delivered"));
      }
      if (!fate.deliver) {
        if (tracer != nullptr) tracer->EndSpan(span, false);
        continue;
      }
      Status status;
      {
        const obs::ScopedActivation activation(tracer, span);
        status = InstallOnDevice(id, node);
        if (fate.duplicate) {
          (void)InstallOnDevice(id, node);  // device dedups by id
        }
      }
      if (tracer != nullptr) tracer->EndSpan(span, status.ok());
      if (status.ok()) {
        installed++;
        if (from_resync) stats_.resync_installs++;
        if (!d.counted) {
          d.counted = true;
          stats_.deployments_installed++;
          deployed_keys_.insert(
              DeployKey(d.instr.cert.subscriber, d.instr.request.kind));
        }
      }
    }
  }
  return installed;
}

std::size_t IspNms::ResyncNow() {
  stats_.resync_rounds++;
  const std::size_t installed = ResyncLocalDevices(/*from_resync=*/true);
  // Peer anti-entropy: re-offer everything we hold; a peer that already
  // has an instruction replays its record by id, one that missed it
  // (partition, lost relay) finally applies it.
  if (authority_ != nullptr) {
    for (const auto& [id, d] : desired_) {
      (void)id;
      RelayToPeers(d.instr, *authority_);
    }
  }
  return installed;
}

void IspNms::StartResync(SimDuration period) {
  if (resync_running_) return;
  resync_running_ = true;
  sched_.PostEvery(period, [this] {
    if (!resync_running_) return false;
    ResyncNow();
    return true;
  });
}

Status IspNms::RemoveService(SubscriberId subscriber) {
  bool removed = false;
  for (auto& [node, device] : devices_) {
    if (device->HasDeployment(subscriber)) {
      const Status status = device->RemoveDeployment(subscriber);
      if (!status.ok()) return status;
      removed = true;
    }
  }
  if (!removed) {
    return NotFound("subscriber has no deployments at " + name_);
  }
  std::erase_if(deployed_keys_, [subscriber](std::uint64_t key) {
    return (key >> 8) == subscriber;
  });
  // Stop converging toward the removed service.
  std::erase_if(desired_, [subscriber](const auto& entry) {
    return entry.second.instr.cert.subscriber == subscriber;
  });
  return Status::Ok();
}

Status IspNms::RelayDeploy(const OwnershipCertificate& cert,
                           const ServiceRequest& request,
                           const std::vector<NodeId>& home_nodes,
                           const CertificateAuthority& authority) {
  DeploymentInstruction instr;
  instr.id = DeploymentId{origin_tag_, next_local_seq_++};
  instr.cert = cert;
  instr.request = request;
  instr.home_nodes = home_nodes;
  return RelayDeploy(instr, authority);
}

Status IspNms::RelayDeploy(const DeploymentInstruction& instr,
                           const CertificateAuthority& authority) {
  if (instr.id.valid()) {
    if (const auto it = applied_.find(instr.id); it != applied_.end()) {
      stats_.duplicate_instructions++;
      return it->second;  // flood terminates: this hop already has it
    }
  }
  if (deployed_keys_.contains(
          DeployKey(instr.cert.subscriber, instr.request.kind))) {
    return Status::Ok();  // same service landed under an earlier id
  }
  stats_.relays_received++;
  const Status local = ApplyDeployment(instr, authority);
  if (!local.ok() && local.code() != ErrorCode::kAlreadyExists) {
    return local;
  }
  RelayToPeers(instr, authority);
  return Status::Ok();
}

void IspNms::RelayToPeers(const DeploymentInstruction& instr,
                          const CertificateAuthority& authority) {
  // Relay sends parent under this NMS's anchor for the instruction, so a
  // flood that crosses several peers stays one causal tree rooted at the
  // deployment's origin.
  obs::TraceContext trace;
  if (net_.telemetry().tracing_enabled() && instr.id.valid()) {
    const auto it = desired_.find(instr.id);
    trace = obs::TraceContext::ForDeployment(
        instr.id.origin, instr.id.seq,
        it != desired_.end() ? it->second.trace_anchor : obs::kNoSpan);
  }
  for (IspNms* peer : peers_) {
    stats_.relays_forwarded++;
    // Best effort: a peer rejecting (e.g. no matching nodes) does not
    // abort the flood. Partitions are checked at delivery time, so a
    // heal during flight lets the message through.
    const CertificateAuthority* auth = &authority;
    PeerChannel(peer).Send(
        [this, peer, instr, auth] {
          if (injector_ != nullptr &&
              injector_->Partitioned(name_, peer->name())) {
            return;
          }
          (void)peer->RelayDeploy(instr, *auth);
        },
        peer_latency_, trace);
  }
}

std::size_t IspNms::CountDeployments(SubscriberId subscriber) const {
  std::size_t count = 0;
  for (const auto& [node, device] : devices_) {
    (void)node;
    count += device->HasDeployment(subscriber) ? 1 : 0;
  }
  return count;
}

void IspNms::OnEvent(const DeviceEvent& event) {
  stats_.events_received++;
  event_log_.OnEvent(event);
  if (event.kind != EventKind::kSafetyViolation) return;
  // Soundness oracle: the guard quarantined a deployment whose graphs
  // the verifier had proven safe — some module's declared effect
  // signature was wrong. Flag it so the analyzer's trustworthiness is
  // continuously measured in production, not assumed.
  for (const auto& [id, d] : desired_) {
    (void)id;
    if (!d.statically_proven) continue;
    if (d.instr.cert.subscriber != event.subscriber) continue;
    validator_->CountSoundnessViolation();
    stats_.soundness_flags++;
    DeviceEvent flag = event;
    flag.kind = EventKind::kAnalysisSoundness;
    flag.detail = "runtime guard contradicted static proof: " + event.detail;
    event_log_.OnEvent(flag);
    break;
  }
}

}  // namespace adtc
