#include "core/nms.h"

#include <algorithm>
#include <cassert>

#include "obs/span.h"
#include "obs/trace_context.h"

namespace adtc {
namespace {

std::uint64_t DeployKey(SubscriberId subscriber, ServiceKind kind) {
  return (static_cast<std::uint64_t>(subscriber) << 8) |
         static_cast<std::uint64_t>(kind);
}

// FNV-1a, the same construction DeploymentSpecDigest uses device-side.
constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t FnvMix(std::uint64_t h, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    h = (h ^ ((value >> (i * 8)) & 0xff)) * kFnvPrime;
  }
  return h;
}

std::uint64_t FnvMix(std::uint64_t h, std::string_view bytes) {
  for (const char c : bytes) {
    h = (h ^ static_cast<unsigned char>(c)) * kFnvPrime;
  }
  return h;
}

}  // namespace

std::uint64_t InstructionDigest(const DeploymentInstruction& instr) {
  std::uint64_t h = kFnvOffset;
  h = FnvMix(h, instr.id.origin);
  h = FnvMix(h, instr.id.seq);
  h = FnvMix(h, static_cast<std::uint64_t>(instr.cert.subscriber));
  h = FnvMix(h, instr.cert.subject);
  h = FnvMix(h, static_cast<std::uint64_t>(instr.cert.expires_at));
  for (const std::uint8_t byte : instr.cert.signature) {
    h = (h ^ byte) * kFnvPrime;
  }
  h = FnvMix(h, static_cast<std::uint64_t>(instr.request.kind));
  for (const Prefix& prefix : instr.request.control_scope) {
    h = FnvMix(h, (static_cast<std::uint64_t>(prefix.address().bits()) << 8) |
                      prefix.length());
  }
  for (const NodeId node : instr.home_nodes) {
    h = FnvMix(h, static_cast<std::uint64_t>(node));
  }
  return h;
}

/// Forwards one device's events into DeliverEvent with the node id
/// attached, so the upcall can ride that device's event channel.
struct IspNms::DeviceEventProxy : EventSink {
  DeviceEventProxy(IspNms* nms, NodeId node) : nms(nms), node(node) {}
  void OnEvent(const DeviceEvent& event) override {
    nms->DeliverEvent(node, event);
  }
  IspNms* nms;
  NodeId node;
};

IspNms::IspNms(std::string isp_name, Network& net,
               const SafetyValidator* validator)
    : name_(std::move(isp_name)),
      net_(net),
      sched_(net.control()),
      validator_(validator),
      control_rng_(DeploymentOriginTag(name_)),
      origin_tag_(DeploymentOriginTag(name_)) {
  const std::string prefix = "nms." + name_ + ".";
  net_.telemetry().registry().AddCollector(
      this, [this, prefix](obs::MetricsSnapshot& out) {
        out.push_back({prefix + "deployments_installed",
                       static_cast<double>(stats_.deployments_installed)});
        out.push_back({prefix + "deployments_rejected",
                       static_cast<double>(stats_.deployments_rejected)});
        out.push_back({prefix + "relays_forwarded",
                       static_cast<double>(stats_.relays_forwarded)});
        out.push_back({prefix + "relays_received",
                       static_cast<double>(stats_.relays_received)});
        out.push_back({prefix + "events_received",
                       static_cast<double>(stats_.events_received)});
        out.push_back({prefix + "events_dropped",
                       static_cast<double>(event_log_.dropped_events())});
        out.push_back({prefix + "devices",
                       static_cast<double>(devices_.size())});
        out.push_back({prefix + "duplicate_instructions",
                       static_cast<double>(stats_.duplicate_instructions)});
        out.push_back({prefix + "install_retries",
                       static_cast<double>(stats_.install_retries)});
        out.push_back({prefix + "installs_deferred",
                       static_cast<double>(stats_.installs_deferred)});
        out.push_back({prefix + "retry_sweeps",
                       static_cast<double>(stats_.retry_sweeps)});
        out.push_back({prefix + "resync_rounds",
                       static_cast<double>(stats_.resync_rounds)});
        out.push_back({prefix + "resync_installs",
                       static_cast<double>(stats_.resync_installs)});
        out.push_back({prefix + "soundness_flags",
                       static_cast<double>(stats_.soundness_flags)});
        out.push_back({prefix + "replays_rejected",
                       static_cast<double>(stats_.replays_rejected)});
        out.push_back({prefix + "certs_expired_rejected",
                       static_cast<double>(stats_.certs_expired_rejected)});
        out.push_back({prefix + "certs_forged_rejected",
                       static_cast<double>(stats_.certs_forged_rejected)});
        out.push_back(
            {prefix + "quarantines_propagated",
             static_cast<double>(stats_.quarantines_propagated)});
        out.push_back({prefix + "device_restarts",
                       static_cast<double>(stats_.device_restarts)});
        out.push_back({prefix + "quarantine_latency",
                       static_cast<double>(max_quarantine_latency_)});
      });
}

IspNms::~IspNms() {
  net_.telemetry().registry().RemoveCollectors(this);
}

void IspNms::ManageNode(NodeId node) {
  if (devices_.contains(node)) return;
  if (managed_.empty()) {
    sched_ = net_.shard_at(node);  // first device pins the NMS's shard
  } else {
    assert(net_.shard_at(node).SameShard(sched_) &&
           "an NMS and all its managed devices must share one shard");
  }
  // Events travel device->proxy->event channel->OnEvent, so upcalls can
  // be lost/delayed like any other management message when an injector
  // is attached.
  auto proxy = std::make_unique<DeviceEventProxy>(this, node);
  auto device = std::make_unique<AdaptiveDevice>(node, proxy.get());
  device->BindTelemetry(&net_.telemetry());
  net_.AddProcessor(node, device.get());
  devices_.emplace(node, std::move(device));
  event_proxies_.emplace(node, std::move(proxy));
  managed_.push_back(node);
  ArmRouterRestartsFor(node);
}

AdaptiveDevice* IspNms::device(NodeId node) {
  const auto it = devices_.find(node);
  return it != devices_.end() ? it->second.get() : nullptr;
}

void IspNms::AttachFaultInjector(FaultInjector* injector) {
  injector_ = injector;
  // Channels capture the injector at construction; drop them so the next
  // use rebuilds against the new plan.
  device_channels_.clear();
  event_channels_.clear();
  peer_channels_.clear();
  ArmRouterRestarts();
}

void IspNms::ArmRouterRestarts() {
  if (injector_ == nullptr) return;
  for (NodeId node : managed_) {
    ArmRouterRestartsFor(node);
  }
}

void IspNms::ArmRouterRestartsFor(NodeId node) {
  if (injector_ == nullptr) return;
  const std::vector<SimTime>& restarts =
      injector_->RouterRestartsFor(node);
  std::size_t& armed = restarts_armed_[node];
  for (; armed < restarts.size(); ++armed) {
    const SimTime when = std::max(restarts[armed], sched_.Now());
    sched_.Post(when, [this, node] { RestartDevice(node); });
  }
}

void IspNms::RestartDevice(NodeId node) {
  AdaptiveDevice* dev = device(node);
  if (dev == nullptr) return;
  dev->Restart();
  stats_.device_restarts++;
  // The wiped device re-converges through the backoff sweep (and, if
  // running, the periodic resync) — same recovery path a crashed-then-
  // recovered device takes.
  sweep_attempt_ = 0;
  ScheduleRetrySweep();
}

void IspNms::AddPeer(IspNms* peer) {
  if (peer == nullptr || peer == this) return;
  if (std::find(peers_.begin(), peers_.end(), peer) != peers_.end()) {
    return;
  }
  peers_.push_back(peer);
}

std::string IspNms::DeviceChannelName(NodeId node) const {
  return "nms:" + name_ + "->dev:" + std::to_string(node);
}

const std::string& IspNms::DeviceChannelNameRef(NodeId node) {
  auto it = device_channel_names_.find(node);
  if (it == device_channel_names_.end()) {
    it = device_channel_names_.emplace(node, DeviceChannelName(node)).first;
  }
  return it->second;
}

ControlChannel& IspNms::DeviceChannel(NodeId node) {
  auto it = device_channels_.find(node);
  if (it == device_channels_.end()) {
    // NMS and device share a shard (ManageNode contract), so the
    // channel's both ends anchor there and the inline fast path holds.
    auto channel = std::make_unique<ControlChannel>(
        sched_, net_.shard_at(node), control_rng_, DeviceChannelName(node),
        injector_, [this, node] {
          return injector_ == nullptr ||
                 injector_->DeviceUp(node, net_.Now());
        });
    channel->SetTracer(&net_.telemetry().tracer());
    it = device_channels_.emplace(node, std::move(channel)).first;
  }
  return *it->second;
}

ControlChannel& IspNms::EventChannel(NodeId node) {
  auto it = event_channels_.find(node);
  if (it == event_channels_.end()) {
    // Upcall direction: the device's shard is the NMS's shard (ManageNode
    // contract), so both ends anchor on sched_.
    auto channel = std::make_unique<ControlChannel>(
        sched_, sched_, control_rng_,
        "dev:" + std::to_string(node) + "->nms:" + name_, injector_);
    channel->SetTracer(&net_.telemetry().tracer());
    it = event_channels_.emplace(node, std::move(channel)).first;
  }
  return *it->second;
}

ControlChannel& IspNms::PeerChannel(IspNms* peer) {
  auto it = peer_channels_.find(peer);
  if (it == peer_channels_.end()) {
    // Peer relays cross management domains — and possibly shards: the
    // remote end is the peer NMS's shard. Cross-shard peers need
    // set_peer_latency >= the engine epoch.
    auto channel = std::make_unique<ControlChannel>(
        sched_, peer->sched(), control_rng_,
        "nms:" + name_ + "->nms:" + peer->name(), injector_);
    channel->SetTracer(&net_.telemetry().tracer());
    it = peer_channels_.emplace(peer, std::move(channel)).first;
  }
  return *it->second;
}

Status IspNms::DeployService(const OwnershipCertificate& cert,
                             const ServiceRequest& request,
                             const std::vector<NodeId>& home_nodes,
                             const CertificateAuthority& authority) {
  DeploymentInstruction instr;
  instr.id = DeploymentId{origin_tag_, next_local_seq_++};
  instr.cert = cert;
  instr.request = request;
  instr.home_nodes = home_nodes;
  return ApplyDeployment(instr, authority);
}

Status IspNms::ApplyDeployment(const DeploymentInstruction& instr,
                               const CertificateAuthority& authority) {
  if (instr.id.valid()) {
    if (const auto it = applied_.find(instr.id); it != applied_.end()) {
      // A re-delivered copy must carry the same content as the first.
      // Anything else is an adversary re-using a known id to smuggle a
      // mutated instruction past the dedup shield.
      if (it->second.digest != InstructionDigest(instr)) {
        stats_.replays_rejected++;
        return ReplayDetected("deployment id re-used with mutated content at " +
                              name_);
      }
      stats_.duplicate_instructions++;
      return it->second.status;
    }
  }
  const Status status = ApplyDeploymentImpl(instr, authority);
  if (instr.id.valid()) {
    applied_.emplace(instr.id,
                     AppliedRecord{status, InstructionDigest(instr)});
  }
  return status;
}

Status IspNms::ApplyDeploymentImpl(const DeploymentInstruction& instr,
                                   const CertificateAuthority& authority) {
  obs::Tracer* tracer = net_.telemetry().tracing_enabled()
                            ? &net_.telemetry().tracer()
                            : nullptr;
  obs::ScopedSpan span(tracer, "nms.deploy");
  span.SetSubscriber(instr.cert.subscriber);
  if (tracer != nullptr) {
    tracer->Annotate(span.id(), "isp", name_);
    AnnotateTrace(tracer, span.id(),
                  obs::TraceContext::ForDeployment(instr.id.origin,
                                                   instr.id.seq));
  }
  authority_ = &authority;
  {
    obs::ScopedSpan validate_span(tracer, "cert.validate");
    if (const Status verified =
            authority.Verify(instr.cert, net_.Now());
        !verified.ok()) {
      stats_.deployments_rejected++;
      // Split by cause for the containment report: stale certificate
      // versus forged/unknown signature.
      if (verified.code() == ErrorCode::kExpired) {
        stats_.certs_expired_rejected++;
      } else {
        stats_.certs_forged_rejected++;
      }
      validate_span.Fail();
      span.Fail();
      return verified;
    }
  }
  // Anti-spoofing must exempt every edge that can legitimately carry the
  // owner's addresses: the home ASes and their provider chains.
  std::vector<NodeId> legit_forwarders =
      LegitimateForwarderSet(net_, instr.home_nodes);
  // Analyze once against reference graphs (all devices get identically
  // shaped graphs for a given request). Devices sit at transit vantage
  // points too, so no customer-edge guarantee is claimed — the default
  // AnalysisContext.
  bool statically_proven = false;
  {
    obs::ScopedSpan analyze_span(tracer, "safety.analyze");
    StageGraphs reference =
        BuildStageGraphs(instr.request, legit_forwarders);
    const ModuleGraph* graph =
        reference.source_stage ? &*reference.source_stage
                               : (reference.destination_stage
                                      ? &*reference.destination_stage
                                      : nullptr);
    if (graph == nullptr) {
      stats_.deployments_rejected++;
      analyze_span.Fail();
      span.Fail();
      return InvalidArgument("service request produced no graphs");
    }
    const DeploymentAnalysis first = validator_->AnalyzeDeployment(
        instr.cert, instr.request.control_scope, *graph);
    if (!first.status.ok()) {
      stats_.deployments_rejected++;
      analyze_span.Fail();
      span.Fail();
      return first.status;
    }
    statically_proven = first.report.proven();
    if (reference.destination_stage && reference.source_stage) {
      const DeploymentAnalysis second = validator_->AnalyzeDeployment(
          instr.cert, instr.request.control_scope,
          *reference.destination_stage);
      if (!second.status.ok()) {
        stats_.deployments_rejected++;
        analyze_span.Fail();
        span.Fail();
        return second.status;
      }
      statically_proven = statically_proven && second.report.proven();
    }
  }

  DesiredDeployment desired;
  desired.instr = instr;
  desired.legit_forwarders = std::move(legit_forwarders);
  desired.statically_proven = statically_proven;
  desired.trace_anchor = span.id();
  const DeploymentId key = instr.id;
  desired_.insert_or_assign(key, std::move(desired));
  sweep_attempt_ = 0;  // a fresh deployment gets a fresh retry budget
  InstallRound(key);
  // Fault-free channels completed inline, so `worst` is final here; a
  // faulty channel reports later and converges through retries/resync,
  // in which case acceptance is what we can promise now.
  const DesiredDeployment& d = desired_.at(key);
  if (!d.worst.ok()) {
    stats_.deployments_rejected++;
    span.Fail();
    return d.worst;
  }
  return Status::Ok();
}

void IspNms::InstallRound(const DeploymentId& id) {
  const auto it = desired_.find(id);
  if (it == desired_.end()) return;
  const DesiredDeployment& d = it->second;
  const SubscriberId subscriber = d.instr.cert.subscriber;
  const ServiceRequest request = d.instr.request;
  for (NodeId node : managed_) {
    if (!PlacementSelectsNode(request, net_, node)) continue;
    if (devices_.at(node)->HasDeployment(subscriber)) continue;
    ControlChannel::CallOptions opts;
    opts.retry = retry_policy_;
    opts.trace = obs::TraceContext::ForDeployment(id.origin, id.seq,
                                                  d.trace_anchor);
    DeviceChannel(node).Call(
        [this, id, node] { return InstallOnDevice(id, node); },
        [this, id, node](const Status& status, const CallOutcome& outcome) {
          OnDeviceInstallResult(id, node, status, outcome);
        },
        opts);
  }
}

Status IspNms::InstallOnDevice(const DeploymentId& id, NodeId node) {
  const auto it = desired_.find(id);
  if (it == desired_.end()) {
    return NotFound("deployment no longer desired at " + name_);
  }
  const DesiredDeployment& d = it->second;
  AdaptiveDevice* dev = devices_.at(node).get();
  // Re-delivered copies of an already-landed install are a no-op.
  if (dev->HasDeployment(d.instr.cert.subscriber)) return Status::Ok();
  StageGraphs graphs =
      BuildStageGraphs(d.instr.request, d.legit_forwarders);
  DeploymentSpec spec;
  spec.cert = d.instr.cert;
  spec.scope = d.instr.request.control_scope;
  spec.source_stage = std::move(graphs.source_stage);
  spec.destination_stage = std::move(graphs.destination_stage);
  spec.label = std::string(ServiceKindName(d.instr.request.kind));
  spec.deployment_id = id;
  return dev->InstallDeployment(std::move(spec));
}

void IspNms::OnDeviceInstallResult(const DeploymentId& id, NodeId node,
                                   const Status& status,
                                   const CallOutcome& outcome) {
  (void)node;
  const auto it = desired_.find(id);
  if (it == desired_.end()) return;  // removed while in flight
  DesiredDeployment& d = it->second;
  if (outcome.attempts > 1) {
    stats_.install_retries += outcome.attempts - 1;
  }
  if (status.ok()) {
    if (!d.counted) {
      d.counted = true;
      stats_.deployments_installed++;
      deployed_keys_.insert(
          DeployKey(d.instr.cert.subscriber, d.instr.request.kind));
    }
    return;
  }
  d.worst = WorseStatus(d.worst, status);
  if (status.code() == ErrorCode::kUnavailable) {
    // Device crashed or every copy was lost; keep trying on a backoff
    // sweep until the budget runs out, then leave it to resync.
    stats_.installs_deferred++;
    ScheduleRetrySweep();
  }
}

void IspNms::ScheduleRetrySweep() {
  if (sweep_scheduled_ || sweep_attempt_ >= kMaxSweepAttempts) return;
  sweep_scheduled_ = true;
  const SimDuration delay =
      retry_policy_.BackoffAfter(++sweep_attempt_, control_rng_);
  sched_.PostIn(std::max<SimDuration>(delay, 1), [this] {
    sweep_scheduled_ = false;
    stats_.retry_sweeps++;
    (void)ResyncLocalDevices(/*from_resync=*/false);
    if (AnyInstallPending()) {
      ScheduleRetrySweep();
    } else {
      sweep_attempt_ = 0;
    }
  });
}

bool IspNms::AnyInstallPending() const {
  for (const auto& [id, d] : desired_) {
    (void)id;
    for (NodeId node : managed_) {
      if (!PlacementSelectsNode(d.instr.request, net_, node)) continue;
      if (!devices_.at(node)->HasDeployment(d.instr.cert.subscriber)) {
        return true;
      }
    }
  }
  return false;
}

std::size_t IspNms::ResyncLocalDevices(bool from_resync) {
  std::size_t installed = 0;
  const SimTime now = net_.Now();
  obs::Tracer* tracer = net_.telemetry().tracing_enabled()
                            ? &net_.telemetry().tracer()
                            : nullptr;
  for (auto& [id, d] : desired_) {
    for (NodeId node : managed_) {
      if (!PlacementSelectsNode(d.instr.request, net_, node)) continue;
      if (devices_.at(node)->HasDeployment(d.instr.cert.subscriber)) {
        continue;
      }
      if (injector_ != nullptr && !injector_->DeviceUp(node, now)) {
        continue;  // still down; a later round catches it
      }
      MessageFate fate;
      if (injector_ != nullptr) {
        fate = injector_->PlanMessage(DeviceChannelNameRef(node));
      }
      // Each recovery attempt is a span under the deployment's local
      // anchor, with the injector's verdict on its single message — so
      // the offline timeline shows *how* convergence happened, not just
      // that it did.
      obs::SpanId span = obs::kNoSpan;
      if (tracer != nullptr) {
        span = tracer->StartSpan("nms.resync_install", d.trace_anchor);
        tracer->SetNode(span, node);
        tracer->Annotate(span, "channel", DeviceChannelName(node));
        tracer->Annotate(span, "sweep", from_resync ? "resync" : "retry");
        AnnotateTrace(tracer, span,
                      obs::TraceContext::ForDeployment(id.origin, id.seq));
        tracer->Annotate(
            span, "fate",
            !fate.deliver ? "lost"
                          : (fate.duplicate ? "duplicated" : "delivered"));
      }
      if (!fate.deliver) {
        if (tracer != nullptr) tracer->EndSpan(span, false);
        continue;
      }
      Status status;
      {
        const obs::ScopedActivation activation(tracer, span);
        status = InstallOnDevice(id, node);
        if (fate.duplicate) {
          (void)InstallOnDevice(id, node);  // device dedups by id
        }
      }
      if (tracer != nullptr) tracer->EndSpan(span, status.ok());
      if (status.ok()) {
        installed++;
        if (from_resync) stats_.resync_installs++;
        if (!d.counted) {
          d.counted = true;
          stats_.deployments_installed++;
          deployed_keys_.insert(
              DeployKey(d.instr.cert.subscriber, d.instr.request.kind));
        }
      }
    }
  }
  return installed;
}

std::size_t IspNms::ResyncNow() {
  stats_.resync_rounds++;
  const std::size_t installed = ResyncLocalDevices(/*from_resync=*/true);
  // Peer anti-entropy: re-offer everything we hold; a peer that already
  // has an instruction replays its record by id, one that missed it
  // (partition, lost relay) finally applies it.
  if (authority_ != nullptr) {
    for (const auto& [id, d] : desired_) {
      (void)id;
      RelayToPeers(d.instr, *authority_);
    }
  }
  return installed;
}

void IspNms::StartResync(SimDuration period) {
  if (resync_running_) return;
  resync_running_ = true;
  sched_.PostEvery(period, [this] {
    if (!resync_running_) return false;
    ResyncNow();
    return true;
  });
}

Status IspNms::RemoveService(SubscriberId subscriber) {
  bool removed = false;
  for (auto& [node, device] : devices_) {
    if (device->HasDeployment(subscriber)) {
      const Status status = device->RemoveDeployment(subscriber);
      if (!status.ok()) return status;
      removed = true;
    }
  }
  if (!removed) {
    return NotFound("subscriber has no deployments at " + name_);
  }
  std::erase_if(deployed_keys_, [subscriber](std::uint64_t key) {
    return (key >> 8) == subscriber;
  });
  // Stop converging toward the removed service.
  std::erase_if(desired_, [subscriber](const auto& entry) {
    return entry.second.instr.cert.subscriber == subscriber;
  });
  return Status::Ok();
}

Status IspNms::RelayDeploy(const OwnershipCertificate& cert,
                           const ServiceRequest& request,
                           const std::vector<NodeId>& home_nodes,
                           const CertificateAuthority& authority) {
  DeploymentInstruction instr;
  instr.id = DeploymentId{origin_tag_, next_local_seq_++};
  instr.cert = cert;
  instr.request = request;
  instr.home_nodes = home_nodes;
  return RelayDeploy(instr, authority);
}

Status IspNms::RelayDeploy(const DeploymentInstruction& instr,
                           const CertificateAuthority& authority) {
  if (instr.id.valid()) {
    if (const auto it = applied_.find(instr.id); it != applied_.end()) {
      if (it->second.digest != InstructionDigest(instr)) {
        // Mutated replay: reject AND refuse to forward — a compromised
        // peer cannot launder bogus content through the flood.
        stats_.replays_rejected++;
        return ReplayDetected(
            "relayed deployment id re-used with mutated content at " +
            name_);
      }
      stats_.duplicate_instructions++;
      // flood terminates: this hop already has it
      return it->second.status;
    }
  }
  if (deployed_keys_.contains(
          DeployKey(instr.cert.subscriber, instr.request.kind))) {
    return Status::Ok();  // same service landed under an earlier id
  }
  stats_.relays_received++;
  const Status local = ApplyDeployment(instr, authority);
  if (!local.ok() && local.code() != ErrorCode::kAlreadyExists) {
    return local;
  }
  RelayToPeers(instr, authority);
  return Status::Ok();
}

void IspNms::RelayToPeers(const DeploymentInstruction& instr,
                          const CertificateAuthority& authority) {
  // Relay sends parent under this NMS's anchor for the instruction, so a
  // flood that crosses several peers stays one causal tree rooted at the
  // deployment's origin.
  obs::TraceContext trace;
  if (net_.telemetry().tracing_enabled() && instr.id.valid()) {
    const auto it = desired_.find(instr.id);
    trace = obs::TraceContext::ForDeployment(
        instr.id.origin, instr.id.seq,
        it != desired_.end() ? it->second.trace_anchor : obs::kNoSpan);
  }
  for (IspNms* peer : peers_) {
    stats_.relays_forwarded++;
    // Best effort: a peer rejecting (e.g. no matching nodes) does not
    // abort the flood. Partitions are checked at delivery time, so a
    // heal during flight lets the message through.
    const CertificateAuthority* auth = &authority;
    PeerChannel(peer).Send(
        [this, peer, instr, auth] {
          if (injector_ != nullptr &&
              injector_->Partitioned(name_, peer->name())) {
            return;
          }
          (void)peer->RelayDeploy(instr, *auth);
        },
        peer_latency_, trace);
  }
}

std::size_t IspNms::ForEachStageGraph(
    SubscriberId subscriber,
    const std::function<void(NodeId, ProcessingStage, ModuleGraph&)>& fn) {
  std::size_t visited = 0;
  for (NodeId node : managed_) {
    AdaptiveDevice* dev = devices_.at(node).get();
    for (ProcessingStage stage : {ProcessingStage::kSourceOwner,
                                  ProcessingStage::kDestinationOwner}) {
      ModuleGraph* graph = dev->StageGraph(subscriber, stage);
      if (graph != nullptr) {
        fn(node, stage, *graph);
        ++visited;
      }
    }
  }
  return visited;
}

RuntimeOpResult IspNms::SetFirewallRulesActiveLocal(SubscriberId subscriber,
                                                    bool active) {
  RuntimeOpResult result;
  ForEachStageGraph(subscriber,
                    [&](NodeId, ProcessingStage, ModuleGraph& graph) {
                      for (std::size_t i = 0; i < graph.module_count();
                           ++i) {
                        if (auto* match = dynamic_cast<MatchModule*>(
                                graph.module(static_cast<int>(i)))) {
                          match->set_active(active);
                          ++result.touched;
                        }
                      }
                    });
  return result;
}

RuntimeOpResult IspNms::SetRateLimitLocal(SubscriberId subscriber,
                                          double rate_pps) {
  RuntimeOpResult result;
  ForEachStageGraph(
      subscriber, [&](NodeId, ProcessingStage, ModuleGraph& graph) {
        for (std::size_t i = 0; i < graph.module_count(); ++i) {
          if (auto* limiter = dynamic_cast<RateLimitModule*>(
                  graph.module(static_cast<int>(i)))) {
            limiter->Reconfigure(rate_pps,
                                 std::max(16.0, rate_pps / 10.0));
            ++result.touched;
          }
        }
      });
  return result;
}

RuntimeOpResult IspNms::ReadStatisticsLocal(SubscriberId subscriber) {
  RuntimeOpResult result;
  ForEachStageGraph(subscriber,
                    [&](NodeId, ProcessingStage, ModuleGraph& graph) {
                      if (auto* stats =
                              graph.FindModule<StatisticsModule>()) {
                        ++result.touched;
                        result.packets += stats->packets();
                        result.bytes += stats->bytes();
                      }
                    });
  return result;
}

RuntimeOpResult IspNms::ReadLogsLocal(SubscriberId subscriber,
                                      std::size_t max_lines_per_device) {
  RuntimeOpResult result;
  ForEachStageGraph(
      subscriber, [&](NodeId node, ProcessingStage, ModuleGraph& graph) {
        if (auto* logger = graph.FindModule<LoggerModule>()) {
          result.logs +=
              "--- vantage as" + std::to_string(node) + " ---\n";
          result.logs += logger->trace().Dump(max_lines_per_device);
          ++result.touched;
        }
      });
  return result;
}

std::size_t IspNms::CountDeployments(SubscriberId subscriber) const {
  std::size_t count = 0;
  for (const auto& [node, device] : devices_) {
    (void)node;
    count += device->HasDeployment(subscriber) ? 1 : 0;
  }
  return count;
}

std::size_t IspNms::PublishCounterSamples(SubscriberId subscriber) {
  std::size_t published = 0;
  for (NodeId node : managed_) {
    AdaptiveDevice* device = devices_.at(node).get();
    ModuleGraph* graph =
        device->StageGraph(subscriber, ProcessingStage::kDestinationOwner);
    if (graph == nullptr) continue;
    auto* stats = graph->FindModule<StatisticsModule>();
    if (stats == nullptr) continue;
    DeviceEvent event;
    event.kind = EventKind::kCounterSample;
    event.at = net_.Now();
    event.node = node;
    event.subscriber = subscriber;
    event.value = static_cast<double>(stats->packets());
    DeliverEvent(node, event);
    published++;
  }
  return published;
}

void IspNms::DeliverEvent(NodeId node, const DeviceEvent& event) {
  if (injector_ == nullptr) {
    OnEvent(event);
    return;
  }
  // Faulty world: the upcall is a real management message — it can be
  // lost or delayed, and containment reacts only when it lands.
  EventChannel(node).Send([this, event] { OnEvent(event); });
}

void IspNms::OnEvent(const DeviceEvent& event) {
  stats_.events_received++;
  if (event_tap_ != nullptr) event_tap_->OnEvent(event);
  // Counter samples are periodic telemetry for the tap, not operator
  // events — retaining them would evict the log's real entries.
  if (event.kind == EventKind::kCounterSample) return;
  event_log_.OnEvent(event);
  if (event.kind != EventKind::kSafetyViolation) return;
  // Containment fan-out: the runtime guard quarantined the offender on
  // the reporting device; spread the quarantine to every managed device
  // so the blast radius stops at first detection instead of growing one
  // violation at a time.
  for (NodeId node : managed_) {
    if (devices_.at(node)->Quarantine(event.subscriber)) {
      stats_.quarantines_propagated++;
    }
  }
  if (quarantined_subscribers_.insert(event.subscriber).second) {
    max_quarantine_latency_ =
        std::max(max_quarantine_latency_, net_.Now() - event.at);
  }
  // Soundness oracle: the guard quarantined a deployment whose graphs
  // the verifier had proven safe — some module's declared effect
  // signature was wrong. Flag it so the analyzer's trustworthiness is
  // continuously measured in production, not assumed.
  for (const auto& [id, d] : desired_) {
    (void)id;
    if (!d.statically_proven) continue;
    if (d.instr.cert.subscriber != event.subscriber) continue;
    validator_->CountSoundnessViolation();
    stats_.soundness_flags++;
    DeviceEvent flag = event;
    flag.kind = EventKind::kAnalysisSoundness;
    flag.detail = "runtime guard contradicted static proof: " + event.detail;
    event_log_.OnEvent(flag);
    break;
  }
}

}  // namespace adtc
