#include "core/nms.h"

namespace adtc {
namespace {

std::uint64_t DeployKey(SubscriberId subscriber, ServiceKind kind) {
  return (static_cast<std::uint64_t>(subscriber) << 8) |
         static_cast<std::uint64_t>(kind);
}

}  // namespace

IspNms::IspNms(std::string isp_name, Network& net,
               const SafetyValidator* validator)
    : name_(std::move(isp_name)), net_(net), validator_(validator) {
  const std::string prefix = "nms." + name_ + ".";
  net_.telemetry().registry().AddCollector(
      this, [this, prefix](obs::MetricsSnapshot& out) {
        out.push_back({prefix + "deployments_installed",
                       static_cast<double>(stats_.deployments_installed)});
        out.push_back({prefix + "deployments_rejected",
                       static_cast<double>(stats_.deployments_rejected)});
        out.push_back({prefix + "relays_forwarded",
                       static_cast<double>(stats_.relays_forwarded)});
        out.push_back({prefix + "relays_received",
                       static_cast<double>(stats_.relays_received)});
        out.push_back({prefix + "events_received",
                       static_cast<double>(stats_.events_received)});
        out.push_back({prefix + "events_dropped",
                       static_cast<double>(event_log_.dropped_events())});
        out.push_back({prefix + "devices",
                       static_cast<double>(devices_.size())});
      });
}

IspNms::~IspNms() {
  net_.telemetry().registry().RemoveCollectors(this);
}

void IspNms::ManageNode(NodeId node) {
  if (devices_.contains(node)) return;
  auto device = std::make_unique<AdaptiveDevice>(node, this);
  device->BindTelemetry(&net_.telemetry());
  net_.AddProcessor(node, device.get());
  devices_.emplace(node, std::move(device));
  managed_.push_back(node);
}

AdaptiveDevice* IspNms::device(NodeId node) {
  const auto it = devices_.find(node);
  return it != devices_.end() ? it->second.get() : nullptr;
}

Status IspNms::DeployService(const OwnershipCertificate& cert,
                             const ServiceRequest& request,
                             const std::vector<NodeId>& home_nodes,
                             const CertificateAuthority& authority) {
  obs::Tracer* tracer = net_.telemetry().tracing_enabled()
                            ? &net_.telemetry().tracer()
                            : nullptr;
  obs::ScopedSpan span(tracer, "nms.deploy");
  span.SetSubscriber(cert.subscriber);
  if (tracer != nullptr) {
    tracer->Annotate(span.id(), "isp", name_);
  }
  {
    obs::ScopedSpan validate_span(tracer, "cert.validate");
    if (const Status verified = authority.Verify(cert, net_.sim().Now());
        !verified.ok()) {
      stats_.deployments_rejected++;
      validate_span.Fail();
      span.Fail();
      return verified;
    }
  }
  // Anti-spoofing must exempt every edge that can legitimately carry the
  // owner's addresses: the home ASes and their provider chains.
  const std::vector<NodeId> legit_forwarders =
      LegitimateForwarderSet(net_, home_nodes);
  // Validate once against a reference graph (all devices get identically
  // shaped graphs for a given request).
  {
    StageGraphs reference = BuildStageGraphs(request, legit_forwarders);
    const ModuleGraph* graph =
        reference.source_stage ? &*reference.source_stage
                               : (reference.destination_stage
                                      ? &*reference.destination_stage
                                      : nullptr);
    if (graph == nullptr) {
      stats_.deployments_rejected++;
      span.Fail();
      return InvalidArgument("service request produced no graphs");
    }
    const Status status = validator_->ValidateDeployment(
        cert, request.control_scope, *graph);
    if (!status.ok()) {
      stats_.deployments_rejected++;
      span.Fail();
      return status;
    }
    if (reference.destination_stage && reference.source_stage) {
      const Status second = validator_->ValidateDeployment(
          cert, request.control_scope, *reference.destination_stage);
      if (!second.ok()) {
        stats_.deployments_rejected++;
        span.Fail();
        return second;
      }
    }
  }

  bool any_installed = false;
  for (NodeId node : managed_) {
    if (!PlacementSelectsNode(request, net_, node)) {
      continue;
    }
    AdaptiveDevice* dev = devices_.at(node).get();
    if (dev->HasDeployment(cert.subscriber)) continue;
    StageGraphs graphs = BuildStageGraphs(request, legit_forwarders);
    DeploymentSpec spec;
    spec.cert = cert;
    spec.scope = request.control_scope;
    spec.source_stage = std::move(graphs.source_stage);
    spec.destination_stage = std::move(graphs.destination_stage);
    spec.label = std::string(ServiceKindName(request.kind));
    const Status status = dev->InstallDeployment(std::move(spec));
    if (!status.ok()) {
      stats_.deployments_rejected++;
      span.Fail();
      return status;
    }
    any_installed = true;
  }
  if (any_installed) {
    stats_.deployments_installed++;
    deployed_keys_.insert(DeployKey(cert.subscriber, request.kind));
  }
  return Status::Ok();
}

Status IspNms::RemoveService(SubscriberId subscriber) {
  bool removed = false;
  for (auto& [node, device] : devices_) {
    if (device->HasDeployment(subscriber)) {
      const Status status = device->RemoveDeployment(subscriber);
      if (!status.ok()) return status;
      removed = true;
    }
  }
  if (!removed) {
    return NotFound("subscriber has no deployments at " + name_);
  }
  std::erase_if(deployed_keys_, [subscriber](std::uint64_t key) {
    return (key >> 8) == subscriber;
  });
  return Status::Ok();
}

Status IspNms::RelayDeploy(const OwnershipCertificate& cert,
                           const ServiceRequest& request,
                           const std::vector<NodeId>& home_nodes,
                           const CertificateAuthority& authority) {
  if (deployed_keys_.contains(DeployKey(cert.subscriber, request.kind))) {
    return Status::Ok();  // already have it; relay terminates here
  }
  stats_.relays_received++;
  const Status local = DeployService(cert, request, home_nodes, authority);
  if (!local.ok() && local.code() != ErrorCode::kAlreadyExists) {
    return local;
  }
  for (IspNms* peer : peers_) {
    stats_.relays_forwarded++;
    // Best effort: a peer rejecting (e.g. no matching nodes) does not
    // abort the flood.
    (void)peer->RelayDeploy(cert, request, home_nodes, authority);
  }
  return Status::Ok();
}

std::size_t IspNms::CountDeployments(SubscriberId subscriber) const {
  std::size_t count = 0;
  for (const auto& [node, device] : devices_) {
    (void)node;
    count += device->HasDeployment(subscriber) ? 1 : 0;
  }
  return count;
}

void IspNms::OnEvent(const DeviceEvent& event) {
  stats_.events_received++;
  event_log_.OnEvent(event);
}

}  // namespace adtc
