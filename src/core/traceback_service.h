// User-facing traceback built on the TCS (Sec. 4.4 "Traceback"):
// queries the subscriber's deployed TracebackStoreModules across all
// enrolled ISPs and reconstructs where a packet entered the network —
// "allow[ing] the network user to investigate the origin of spoofed
// network traffic".
#pragma once

#include <vector>

#include "core/modules/traceback.h"
#include "core/nms.h"
#include "net/reverse_path.h"

namespace adtc {

class TcsTracebackService {
 public:
  /// Gathers the subscriber's traceback stores from the ISPs' devices.
  /// Call after the traceback ServiceRequest has been deployed.
  TcsTracebackService(Network& net, const std::vector<IspNms*>& isps,
                      SubscriberId subscriber);

  /// Traces a received packet back from the querying user's AS.
  TraceResult Trace(const Packet& packet, NodeId victim_node) const;
  TraceResult TraceDigest(std::uint64_t digest, NodeId victim_node) const;

  std::size_t store_count() const { return store_count_; }
  /// Total Bloom memory across all vantage points (the paper's SPIE
  /// deployment-cost concern).
  std::size_t TotalMemoryBytes() const;

 private:
  Network& net_;
  /// stores_by_node_[node] = traceback stores on that node's device.
  std::vector<std::vector<const TracebackStoreModule*>> stores_by_node_;
  std::size_t store_count_ = 0;
};

}  // namespace adtc
