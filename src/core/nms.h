// ISP network-management system (Fig. 3): owns the adaptive devices on an
// ISP's routers, validates and installs deployments, collects device
// events, and relays configuration to peer ISPs when asked — the fallback
// path for when the TCSP itself is unreachable (Sec. 5.1).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/adaptive_device.h"
#include "core/service.h"
#include "net/network.h"

namespace adtc {

/// Management-plane counters; obs::Counter cells exported through the
/// world registry under "nms.<isp-name>.*".
struct NmsStats {
  obs::Counter deployments_installed;
  obs::Counter deployments_rejected;
  obs::Counter relays_forwarded;
  obs::Counter relays_received;
  obs::Counter events_received;
};

class IspNms : public EventSink {
 public:
  /// `validator` must outlive the NMS (typically owned by the Tcsp).
  IspNms(std::string isp_name, Network& net,
         const SafetyValidator* validator);
  ~IspNms() override;

  const std::string& name() const { return name_; }

  /// Puts an adaptive device next to the router at `node` and hooks it
  /// into the datapath (Fig. 2). Idempotent per node.
  void ManageNode(NodeId node);
  const std::vector<NodeId>& managed_nodes() const { return managed_; }
  AdaptiveDevice* device(NodeId node);

  /// Validates (certificate freshness + safety) and installs a service
  /// for a subscriber on every managed node selected by the placement
  /// policy. Home nodes = ASes legitimately originating the scope.
  Status DeployService(const OwnershipCertificate& cert,
                       const ServiceRequest& request,
                       const std::vector<NodeId>& home_nodes,
                       const CertificateAuthority& authority);

  Status RemoveService(SubscriberId subscriber);

  /// Peer-to-peer configuration forwarding: deploys locally, then asks
  /// every peer NMS to do the same (each ISP deploys at most once per
  /// subscriber/service — the relay terminates). Used when the TCSP is
  /// unreachable "e.g. because of an ongoing DDoS attack on the TCSP".
  Status RelayDeploy(const OwnershipCertificate& cert,
                     const ServiceRequest& request,
                     const std::vector<NodeId>& home_nodes,
                     const CertificateAuthority& authority);

  void AddPeer(IspNms* peer) { peers_.push_back(peer); }

  // EventSink: devices report here.
  void OnEvent(const DeviceEvent& event) override;
  const EventBuffer& events() const { return event_log_; }
  EventBuffer& events() { return event_log_; }

  const NmsStats& stats() const { return stats_; }
  std::size_t device_count() const { return devices_.size(); }
  /// Number of managed devices currently carrying this subscriber.
  std::size_t CountDeployments(SubscriberId subscriber) const;

 private:
  std::string name_;
  Network& net_;
  const SafetyValidator* validator_;
  std::vector<NodeId> managed_;
  std::unordered_map<NodeId, std::unique_ptr<AdaptiveDevice>> devices_;
  std::vector<IspNms*> peers_;
  /// (subscriber, kind) pairs already deployed — relay termination.
  std::unordered_set<std::uint64_t> deployed_keys_;
  EventBuffer event_log_;
  NmsStats stats_;
};

}  // namespace adtc
