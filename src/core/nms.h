// ISP network-management system (Fig. 3): owns the adaptive devices on an
// ISP's routers, validates and installs deployments, collects device
// events, and relays configuration to peer ISPs when asked — the fallback
// path for when the TCSP itself is unreachable (Sec. 5.1).
//
// Deployment is idempotent and fault-tolerant: every instruction carries
// a DeploymentId, the NMS and each device record the outcome per id, and
// re-delivered/duplicated copies replay the record instead of re-applying.
// NMS→device and NMS→peer messages ride ControlChannels, so an attached
// FaultInjector can lose, duplicate or delay them; failed device installs
// go to a backoff retry sweep, and a periodic anti-entropy resync
// (StartResync) re-installs whatever a crashed device or partitioned peer
// missed, converging the world to the desired configuration.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/adaptive_device.h"
#include "core/control_channel.h"
#include "core/deployment_id.h"
#include "core/service.h"
#include "net/network.h"

namespace adtc {

/// Everything one deployment needs, as it travels user→TCSP→NMS→peer.
/// The id makes every hop idempotent.
struct DeploymentInstruction {
  DeploymentId id;
  OwnershipCertificate cert;
  ServiceRequest request;
  std::vector<NodeId> home_nodes;
};

/// Content digest of an instruction (id + certificate + request shape).
/// The exactly-once record keys on DeploymentId; the digest catches an
/// adversary re-using a known id with *mutated* content — a replay
/// attack, rejected with ErrorCode::kReplayDetected instead of replayed.
std::uint64_t InstructionDigest(const DeploymentInstruction& instr);

/// Per-ISP outcome of one relayed runtime operation (activate/modify/
/// read-statistics/read-logs). The TCSP aggregates these across ISPs in
/// its once-only completion callback; re-delivered request copies simply
/// recompute the same value (the local ops are idempotent).
struct RuntimeOpResult {
  std::size_t touched = 0;    ///< modules / vantage points affected
  std::uint64_t packets = 0;  ///< statistics reads
  std::uint64_t bytes = 0;
  std::string logs;           ///< log reads
};

/// Management-plane counters; obs::Counter cells exported through the
/// world registry under "nms.<isp-name>.*".
struct NmsStats {
  obs::Counter deployments_installed;
  obs::Counter deployments_rejected;
  obs::Counter relays_forwarded;
  obs::Counter relays_received;
  obs::Counter events_received;
  obs::Counter duplicate_instructions;  // id already applied, replayed
  obs::Counter install_retries;         // extra device-channel attempts
  obs::Counter installs_deferred;       // device unreachable, left to resync
  obs::Counter retry_sweeps;            // backoff-driven local sweeps
  obs::Counter resync_rounds;           // periodic anti-entropy rounds
  obs::Counter resync_installs;         // installs recovered by resync
  /// Safety-guard quarantine of a deployment the analyzer had proven —
  /// a module's effect signature lied (soundness-oracle flag).
  obs::Counter soundness_flags;
  /// Known DeploymentId re-delivered with *different* content (mutated
  /// replay) — rejected, never applied, never forwarded to peers.
  obs::Counter replays_rejected;
  /// Certificate rejections split by cause: stale (kExpired) versus
  /// forged/unknown signature or out-of-scope (everything else).
  obs::Counter certs_expired_rejected;
  obs::Counter certs_forged_rejected;
  /// Per-device quarantines applied by the safety-violation fan-out
  /// (containment blast-radius numerator).
  obs::Counter quarantines_propagated;
  /// Injector-scheduled router crash/restarts executed (RAM wiped).
  obs::Counter device_restarts;
};

class IspNms : public EventSink {
 public:
  /// `validator` must outlive the NMS (typically owned by the Tcsp).
  IspNms(std::string isp_name, Network& net,
         const SafetyValidator* validator);
  ~IspNms() override;

  const std::string& name() const { return name_; }

  /// Puts an adaptive device next to the router at `node` and hooks it
  /// into the datapath (Fig. 2). Idempotent per node. Shard affinity:
  /// the first managed node pins this NMS to that node's shard, and every
  /// later node must live on the same shard — an ISP's management system
  /// and its devices are one sequential domain (docs/sharding.md).
  void ManageNode(NodeId node);

  /// The shard this NMS (timers, channels, device state) executes on.
  /// Control shard until the first ManageNode call pins it.
  ShardRef sched() const { return sched_; }
  const std::vector<NodeId>& managed_nodes() const { return managed_; }
  AdaptiveDevice* device(NodeId node);

  /// Declares the filter/ACL table capacity of a managed router. The
  /// TCSP's admission-time plan verifier checks each deployment's rule
  /// demand against these (unset nodes are unlimited — the pre-budget
  /// behaviour).
  void SetNodeFilterBudget(NodeId node, std::uint32_t capacity) {
    filter_budgets_[node] = capacity;
  }
  analysis::FilterBudget node_filter_budget(NodeId node) const {
    const auto it = filter_budgets_.find(node);
    return it == filter_budgets_.end() ? analysis::FilterBudget{}
                                       : analysis::FilterBudget{it->second};
  }

  /// Wires the control channels to a fault plan (nullptr detaches).
  /// Must outlive the NMS. Existing channels are rebuilt lazily. Also
  /// arms any router-restart schedule the plan carries for managed nodes.
  void AttachFaultInjector(FaultInjector* injector);
  FaultInjector* fault_injector() const { return injector_; }

  /// Schedules the injector's router crash/restart plan for every managed
  /// node as simulator events. Idempotent: re-arming only schedules
  /// restarts not yet armed, so it is safe to call after adding restarts
  /// to an already-attached injector.
  void ArmRouterRestarts();
  /// Crash+restart of the router's adaptive device now: installed module
  /// graphs, flow cache and install records are lost (RAM). The NMS's
  /// retry sweep / anti-entropy resync re-converges the device.
  void RestartDevice(NodeId node);

  /// Retry/backoff policy for NMS→device and retry sweeps.
  void set_retry_policy(const RetryPolicy& policy) {
    retry_policy_ = policy;
  }
  /// One-way latency of NMS→peer-NMS relays (0 = synchronous when no
  /// injector is attached).
  void set_peer_latency(SimDuration latency) { peer_latency_ = latency; }

  /// Validates (certificate freshness + safety) and installs a service
  /// for a subscriber on every managed node selected by the placement
  /// policy. Home nodes = ASes legitimately originating the scope.
  /// Allocates a local DeploymentId (this entry point is the
  /// un-numbered legacy surface; the TCSP stamps its own ids).
  Status DeployService(const OwnershipCertificate& cert,
                       const ServiceRequest& request,
                       const std::vector<NodeId>& home_nodes,
                       const CertificateAuthority& authority);

  /// Idempotent instruction application: the first delivery validates
  /// and installs; every later delivery of the same id replays the
  /// recorded status with zero side effects. `authority` must outlive
  /// the NMS (it is retained for resync re-validation of peers).
  Status ApplyDeployment(const DeploymentInstruction& instr,
                         const CertificateAuthority& authority);

  Status RemoveService(SubscriberId subscriber);

  /// Peer-to-peer configuration forwarding: applies locally, then offers
  /// the instruction to every peer NMS over the peer channels (each hop
  /// dedups by id — the relay terminates). Used when the TCSP is
  /// unreachable "e.g. because of an ongoing DDoS attack on the TCSP".
  Status RelayDeploy(const DeploymentInstruction& instr,
                     const CertificateAuthority& authority);
  /// Legacy user-originated entry: stamps a local id and relays.
  Status RelayDeploy(const OwnershipCertificate& cert,
                     const ServiceRequest& request,
                     const std::vector<NodeId>& home_nodes,
                     const CertificateAuthority& authority);

  /// Guarded against self- and duplicate peering: the mesh stays simple
  /// no matter how enrolment wires it.
  void AddPeer(IspNms* peer);
  std::size_t peer_count() const { return peers_.size(); }
  const std::vector<IspNms*>& peers() const { return peers_; }

  // --- runtime operations (Fig. 5, third phase; local side) ----------------
  // Executed at this NMS when a TCSP runtime-op relay lands on its
  // control channel. All idempotent, so at-least-once request delivery
  // is safe.
  /// Applies `fn` to every stage graph of the subscriber across managed
  /// devices; returns graphs visited.
  std::size_t ForEachStageGraph(
      SubscriberId subscriber,
      const std::function<void(NodeId, ProcessingStage, ModuleGraph&)>& fn);
  RuntimeOpResult SetFirewallRulesActiveLocal(SubscriberId subscriber,
                                              bool active);
  RuntimeOpResult SetRateLimitLocal(SubscriberId subscriber,
                                    double rate_pps);
  RuntimeOpResult ReadStatisticsLocal(SubscriberId subscriber);
  RuntimeOpResult ReadLogsLocal(SubscriberId subscriber,
                                std::size_t max_lines_per_device);

  // --- anti-entropy resync -------------------------------------------------
  /// One resync round now: re-installs desired deployments on every up
  /// device that misses them and re-offers them to all peers (peers
  /// dedup by id). Returns the number of device installs recovered.
  std::size_t ResyncNow();
  /// Periodic resync every `period` until StopResync().
  void StartResync(SimDuration period);
  void StopResync() { resync_running_ = false; }
  bool resync_running() const { return resync_running_; }

  // EventSink: devices report here.
  void OnEvent(const DeviceEvent& event) override;
  /// Detection intake: every event delivered to this NMS is forwarded to
  /// the tap (the DetectionController) before log retention. nullptr
  /// detaches; the tap must outlive the NMS or detach in its destructor.
  void SetEventTap(EventSink* tap) { event_tap_ = tap; }
  EventSink* event_tap() const { return event_tap_; }
  /// Publishes one kCounterSample upcall per managed device carrying
  /// `subscriber`'s destination stage (value = cumulative packets seen
  /// by the stage's StatisticsModule). Returns samples published. The
  /// samples ride DeliverEvent, so with an injector attached they
  /// inherit loss and delay like every other management message.
  std::size_t PublishCounterSamples(SubscriberId subscriber);
  /// Device upcall entry: rides the per-device event channel when an
  /// injector is attached (so event reports inherit loss/delay like every
  /// other management message), inline OnEvent otherwise.
  void DeliverEvent(NodeId node, const DeviceEvent& event);
  const EventBuffer& events() const { return event_log_; }
  EventBuffer& events() { return event_log_; }

  /// Worst observed containment latency: safety-violation event time to
  /// NMS-wide quarantine fan-out, in SimTime ticks (0 if none).
  SimDuration max_quarantine_latency() const {
    return max_quarantine_latency_;
  }

  const NmsStats& stats() const { return stats_; }
  std::size_t device_count() const { return devices_.size(); }
  /// Number of managed devices currently carrying this subscriber.
  std::size_t CountDeployments(SubscriberId subscriber) const;
  /// Instructions applied (for tests asserting exactly-once counting).
  std::size_t applied_instruction_count() const { return applied_.size(); }

 private:
  /// A validated instruction this NMS is responsible for converging.
  struct DesiredDeployment {
    DeploymentInstruction instr;
    std::vector<NodeId> legit_forwarders;
    Status worst;          // worst device outcome observed so far
    bool counted = false;  // deployments_installed already bumped
    /// Every stage graph was proven safe by the static verifier at
    /// admission — a later runtime safety violation is then an
    /// analyzer-soundness event, not mere defence-in-depth.
    bool statically_proven = false;
    /// This NMS's "nms.deploy" span for the instruction — the local
    /// causal anchor that later install calls, resync recoveries and
    /// peer re-offers parent under, keeping every span of a deployment
    /// in one rooted tree. kNoSpan when tracing was off at admission.
    obs::SpanId trace_anchor = obs::kNoSpan;
  };

  static constexpr std::size_t kMaxSweepAttempts = 16;

  /// The effectful path behind the id-dedup shield.
  Status ApplyDeploymentImpl(const DeploymentInstruction& instr,
                             const CertificateAuthority& authority);
  /// Sends one install attempt per selected, still-missing device
  /// through its channel.
  void InstallRound(const DeploymentId& id);
  /// Builds the spec and installs on one device (idempotent via the
  /// device's own id record). Safe to run on re-delivered copies.
  Status InstallOnDevice(const DeploymentId& id, NodeId node);
  void OnDeviceInstallResult(const DeploymentId& id, NodeId node,
                             const Status& status,
                             const CallOutcome& outcome);
  /// Device-level sweep used by both the backoff retry path and the
  /// periodic resync. Returns installs recovered.
  std::size_t ResyncLocalDevices(bool from_resync);
  bool AnyInstallPending() const;
  void ScheduleRetrySweep();
  void RelayToPeers(const DeploymentInstruction& instr,
                    const CertificateAuthority& authority);

  ControlChannel& DeviceChannel(NodeId node);
  ControlChannel& PeerChannel(IspNms* peer);
  /// Device→NMS event upcall channel (built lazily, like DeviceChannel).
  ControlChannel& EventChannel(NodeId node);
  std::string DeviceChannelName(NodeId node) const;
  /// Cached channel name — the per-attempt resync/retry hot path asks
  /// the injector per message and must not allocate a fresh string each
  /// time.
  const std::string& DeviceChannelNameRef(NodeId node);
  /// Arms not-yet-scheduled restarts for one node.
  void ArmRouterRestartsFor(NodeId node);

  /// Forwards a device's events into DeliverEvent with the node id
  /// attached (devices only know their sink, not their channel).
  struct DeviceEventProxy;

  std::string name_;
  Network& net_;
  ShardRef sched_;
  const SafetyValidator* validator_;
  FaultInjector* injector_ = nullptr;
  /// Control-plane randomness (backoff jitter, channel dice) is drawn
  /// from a private stream so the world's packet Rng is untouched.
  Rng control_rng_;
  RetryPolicy retry_policy_;
  SimDuration peer_latency_ = 0;
  std::vector<NodeId> managed_;
  /// Declared ACL capacity per managed node (absent = unlimited).
  std::unordered_map<NodeId, std::uint32_t> filter_budgets_;
  std::unordered_map<NodeId, std::unique_ptr<AdaptiveDevice>> devices_;
  std::unordered_map<NodeId, std::unique_ptr<DeviceEventProxy>>
      event_proxies_;
  std::vector<IspNms*> peers_;
  std::unordered_map<NodeId, std::unique_ptr<ControlChannel>>
      device_channels_;
  std::unordered_map<NodeId, std::unique_ptr<ControlChannel>>
      event_channels_;
  std::unordered_map<IspNms*, std::unique_ptr<ControlChannel>>
      peer_channels_;
  std::unordered_map<NodeId, std::string> device_channel_names_;
  /// Restart events already turned into simulator posts, per node.
  std::unordered_map<NodeId, std::size_t> restarts_armed_;
  /// (subscriber, kind) pairs already deployed — legacy relay
  /// termination for un-numbered requests.
  std::unordered_set<std::uint64_t> deployed_keys_;
  /// Outcome + content digest per instruction id — the exactly-once
  /// record, digest-armored against mutated replays.
  struct AppliedRecord {
    Status status;
    std::uint64_t digest = 0;
  };
  std::unordered_map<DeploymentId, AppliedRecord, DeploymentIdHash>
      applied_;
  std::unordered_map<DeploymentId, DesiredDeployment, DeploymentIdHash>
      desired_;
  const CertificateAuthority* authority_ = nullptr;  // for resync re-offers
  std::uint64_t origin_tag_;
  std::uint64_t next_local_seq_ = 1;
  bool sweep_scheduled_ = false;
  std::size_t sweep_attempt_ = 0;
  bool resync_running_ = false;
  EventSink* event_tap_ = nullptr;
  EventBuffer event_log_;
  /// Subscribers already swept by the quarantine fan-out (latency is
  /// measured on the first violation only).
  std::unordered_set<SubscriberId> quarantined_subscribers_;
  SimDuration max_quarantine_latency_ = 0;
  NmsStats stats_;
};

}  // namespace adtc
