// Directed-graph composition of device modules (Click/Chameleon style,
// Sec. 5.2). Each module's output ports are wired either to another
// module or to a terminal verdict; Validate() checks the graph is
// complete and acyclic before it may process traffic.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/component.h"

namespace adtc {

class ModuleGraph {
 public:
  enum class Terminal : std::uint8_t { kAccept, kDrop };

  ModuleGraph() = default;
  ModuleGraph(ModuleGraph&&) = default;
  ModuleGraph& operator=(ModuleGraph&&) = default;

  /// Adds a module; returns its graph-local id.
  int AddModule(std::unique_ptr<Module> module);

  /// Sets where packets enter the graph.
  Status SetEntry(int module_id);

  /// Wires `from`'s output `port` to module `to`.
  Status Wire(int from, int port, int to);
  /// Wires `from`'s output `port` to a terminal verdict.
  Status WireTerminal(int from, int port, Terminal terminal);

  /// Checks: an entry exists, every port of every module is wired, and
  /// the module graph is acyclic. Must pass before Execute().
  Status Validate();
  bool validated() const { return validated_; }

  /// Runs the packet through the graph. Requires validated().
  Verdict Execute(Packet& packet, const DeviceContext& ctx);

  /// Like Execute(), but also reports the modules the packet actually
  /// visited (in order). The flow cache uses this to decide whether a
  /// verdict is cacheable: only the *executed path* matters, so a graph
  /// may mix pure and stateful branches and still cache flows that never
  /// reach the stateful side.
  Verdict Execute(Packet& packet, const DeviceContext& ctx,
                  std::vector<int>* visited);

  /// Bumped whenever any bound module's configuration mutates (blacklist
  /// edits, rule toggles). Cached verdicts store the revision they were
  /// filled at and miss when it moves. Stable across graph moves: the
  /// cell lives on the heap because ModuleGraph itself is moved into
  /// Deployment records after construction.
  std::uint64_t config_revision() const { return *config_revision_; }

  /// Counter maintenance for a flow-cache hit that bypassed Execute():
  /// keeps packets_processed()/packets_dropped() meaning "packets this
  /// graph decided on" whether or not the modules physically ran.
  void RecordCachedExecution(bool dropped) {
    packets_processed_++;
    if (dropped) packets_dropped_++;
  }

  std::size_t module_count() const { return modules_.size(); }
  Module* module(int id) { return modules_[id].module.get(); }
  const Module* module(int id) const { return modules_[id].module.get(); }

  /// Read-only structural inspection, used by the admission verifier to
  /// snapshot the wiring into an analysis::GraphView.
  struct PortLink {
    bool wired = false;
    bool is_terminal = false;
    Terminal terminal = Terminal::kAccept;
    int next = -1;
  };
  int entry() const { return entry_; }
  std::size_t port_link_count(int id) const {
    return modules_[static_cast<std::size_t>(id)].edges.size();
  }
  PortLink port_link(int id, int port) const {
    const Edge& edge =
        modules_[static_cast<std::size_t>(id)].edges[static_cast<std::size_t>(port)];
    return PortLink{edge.wired, edge.is_terminal, edge.terminal, edge.next};
  }

  /// Looks up the first module of dynamic type M (nullptr if none) — used
  /// by services to reach their observation modules after deployment.
  template <typename M>
  M* FindModule() {
    for (auto& entry : modules_) {
      if (auto* typed = dynamic_cast<M*>(entry.module.get())) return typed;
    }
    return nullptr;
  }

  /// Sum of declared per-packet overhead bytes over all modules (the
  /// quantity the safety validator caps).
  std::uint32_t TotalDeclaredOverhead() const;

  std::uint64_t packets_processed() const { return packets_processed_; }
  std::uint64_t packets_dropped() const { return packets_dropped_; }

  /// Taxonomy attribution of the most recent Execute(): the drop_reason()
  /// of the module that routed the packet to the drop terminal, or kNone
  /// when the packet was accepted. Valid until the next Execute().
  DatapathDropReason last_drop_reason() const { return last_drop_reason_; }

  /// Convenience: single-module graph `module -> accept`, with port 1
  /// (if any) wired to drop.
  static ModuleGraph Single(std::unique_ptr<Module> module);
  /// Convenience: linear chain; every module's port 0 goes to the next
  /// (last -> accept) and port 1 (if present) goes to drop.
  static ModuleGraph Chain(std::vector<std::unique_ptr<Module>> modules);

 private:
  struct Edge {
    bool is_terminal = false;
    Terminal terminal = Terminal::kAccept;
    int next = -1;
    bool wired = false;
  };
  struct Entry {
    std::unique_ptr<Module> module;
    std::vector<Edge> edges;  // indexed by port
  };

  std::vector<Entry> modules_;
  int entry_ = -1;
  bool validated_ = false;
  std::uint64_t packets_processed_ = 0;
  std::uint64_t packets_dropped_ = 0;
  DatapathDropReason last_drop_reason_ = DatapathDropReason::kNone;
  /// Heap cell so the address modules bind to survives graph moves.
  std::unique_ptr<std::uint64_t> config_revision_ =
      std::make_unique<std::uint64_t>(0);
};

}  // namespace adtc
