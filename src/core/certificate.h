// Capability certificates binding a network user to the IP prefixes they
// may control (Sec. 5.1: "the binding of a network user to the set of IP
// addresses owned ... could be implemented with digital certificates
// signed by the TCSP").
//
// The certificate body is serialised canonically and MACed with the
// TCSP's signing key (HMAC-SHA256 stands in for a public-key signature;
// every verifier in the simulation is TCSP-provisioned, so a shared-key
// MAC preserves the trust structure — see DESIGN.md Sec. 2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/hmac.h"
#include "common/result.h"
#include "common/types.h"
#include "common/units.h"
#include "net/ip.h"

namespace adtc {

struct OwnershipCertificate {
  SubscriberId subscriber = kInvalidSubscriber;
  std::string subject;            // registered organisation name
  std::vector<Prefix> prefixes;   // the controllable address space
  SimTime issued_at = 0;
  SimTime expires_at = 0;
  Sha256::Digest signature{};

  /// Canonical byte string covered by the signature.
  std::string CanonicalBody() const;

  /// True if `prefix` lies inside the certified address space.
  bool CoversPrefix(const Prefix& prefix) const;
  bool CoversAddress(Ipv4Address addr) const;
};

/// Signs/verifies certificates with the TCSP key.
class CertificateAuthority {
 public:
  explicit CertificateAuthority(std::string signing_key)
      : key_(std::move(signing_key)) {}

  /// Fills in the signature over the canonical body.
  OwnershipCertificate Issue(SubscriberId subscriber, std::string subject,
                             std::vector<Prefix> prefixes, SimTime now,
                             SimDuration validity) const;

  /// Signature + validity-window check. Distinguishes the two rejection
  /// classes the control plane reacts differently to: kExpired (the
  /// subscriber should re-register; certificate is otherwise genuine) vs
  /// kPermissionDenied (forged or tampered — never retry).
  Status Verify(const OwnershipCertificate& cert, SimTime now) const;

 private:
  std::string key_;
};

}  // namespace adtc
