#include "core/modules/antispoof.h"

namespace adtc {

int AntiSpoofModule::OnPacket(Packet& packet, const DeviceContext& ctx) {
  // Never source-check transit traffic: only the edge where traffic
  // *enters* the Internet knows which sources are legitimate.
  if (!ctx.FromCustomerEdge()) {
    transit_passed_++;
    return kPortDefault;
  }

  switch (mode_) {
    case Mode::kProtectOwnerPrefixes: {
      if (!protected_.ContainsAddress(packet.src)) return kPortDefault;
      // The claim is legitimate only where the owner's real traffic can
      // enter this customer edge: at the owner's home AS itself (access
      // edge) or on a customer link coming from an AS whose customer
      // cone contains the owner (its provider chain).
      const auto is_legit = [this](NodeId node) {
        return node != kInvalidNode && node < legit_nodes_.size() &&
               legit_nodes_[node];
      };
      const NodeId edge_origin = ctx.in_kind == LinkKind::kAccessUp
                                     ? ctx.node
                                     : ctx.in_from_node;
      if (is_legit(edge_origin) ||
          (ctx.in_kind == LinkKind::kAccessUp &&
           AddressNode(packet.src) == ctx.node)) {
        return kPortDefault;
      }
      spoofs_flagged_++;
      return kPortAlt;
    }
    case Mode::kAllowedCone: {
      if (allowed_.ContainsAddress(packet.src)) return kPortDefault;
      spoofs_flagged_++;
      return kPortAlt;
    }
  }
  return kPortDefault;
}

}  // namespace adtc
