#include "core/modules/match.h"

namespace adtc {

bool MatchRule::Matches(const Packet& packet) const {
  if (src_prefix && !src_prefix->Contains(packet.src)) return false;
  if (dst_prefix && !dst_prefix->Contains(packet.dst)) return false;
  if (proto && packet.proto != *proto) return false;
  if (dst_port_range && (packet.dst_port < dst_port_range->first ||
                         packet.dst_port > dst_port_range->second)) {
    return false;
  }
  if (src_port_range && (packet.src_port < src_port_range->first ||
                         packet.src_port > src_port_range->second)) {
    return false;
  }
  if (tcp_flags_all) {
    if (packet.proto != Protocol::kTcp) return false;
    if ((packet.tcp_flags & *tcp_flags_all) != *tcp_flags_all) return false;
  }
  if (icmp) {
    if (packet.proto != Protocol::kIcmp || packet.icmp != *icmp) return false;
  }
  if (size_range && (packet.size_bytes < size_range->first ||
                     packet.size_bytes > size_range->second)) {
    return false;
  }
  if (payload_hash && packet.payload_hash != *payload_hash) return false;
  return true;
}

std::string MatchRule::Describe() const {
  std::string out;
  if (src_prefix) out += "src=" + src_prefix->ToString() + " ";
  if (dst_prefix) out += "dst=" + dst_prefix->ToString() + " ";
  if (proto) out += "proto=" + std::string(ProtocolName(*proto)) + " ";
  if (dst_port_range) {
    out += "dport=" + std::to_string(dst_port_range->first) + "-" +
           std::to_string(dst_port_range->second) + " ";
  }
  if (tcp_flags_all) out += "flags=" + std::to_string(*tcp_flags_all) + " ";
  if (icmp) out += "icmp ";
  if (out.empty()) out = "any ";
  out.pop_back();
  return out;
}

int MatchModule::OnPacket(Packet& packet, const DeviceContext& ctx) {
  (void)ctx;
  if (!active_ || !rule_.Matches(packet)) return kPortDefault;
  matched_++;
  return kPortAlt;
}

}  // namespace adtc
