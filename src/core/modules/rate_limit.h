// Traffic rate limiting (token bucket), optionally per source aggregate,
// plus a deterministic 1-in-N sampler.
//
// Safety note (Sec. 4.5): a rate limiter can only *remove* packets from
// the stream — it has no way to increase rate or size, so it is trivially
// amplification-safe.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>

#include "core/component.h"
#include "net/ip.h"

namespace adtc {

struct TokenBucket {
  double tokens = 0.0;
  SimTime refilled_at = 0;
  bool initialised = false;

  /// Takes one token if available, refilling at `rate_pps` up to `burst`.
  bool TryConsume(SimTime now, double rate_pps, double burst) {
    if (!initialised) {
      initialised = true;
      refilled_at = now;
      tokens = burst;
    }
    const double elapsed_s = static_cast<double>(now - refilled_at) / 1e9;
    tokens = std::min(burst, tokens + elapsed_s * rate_pps);
    refilled_at = now;
    if (tokens < 1.0) return false;
    tokens -= 1.0;
    return true;
  }
};

/// Port 0 while within rate, port 1 when the bucket is empty.
class RateLimitModule : public Module {
 public:
  enum class Granularity : std::uint8_t {
    kAggregate,    // one bucket for everything reaching the module
    kPerSrcPrefix  // one bucket per source /20 (the node prefix)
  };

  RateLimitModule(double rate_pps, double burst,
                  Granularity granularity = Granularity::kAggregate)
      : rate_pps_(rate_pps), burst_(burst), granularity_(granularity) {}

  /// Bound on tracked per-source buckets (device memory is finite).
  /// Once exceeded, unseen sources share the aggregate bucket — which is
  /// precisely what defeats random-spoofed floods: each forged source
  /// would otherwise arrive with a fresh, full bucket.
  void set_max_tracked_prefixes(std::size_t max) {
    max_tracked_prefixes_ = max;
  }

  int OnPacket(Packet& packet, const DeviceContext& ctx) override;
  std::string_view type_name() const override { return "rate-limit"; }
  DatapathDropReason drop_reason() const override {
    return DatapathDropReason::kRateLimit;
  }
  int port_count() const override { return 2; }
  /// Token buckets are cross-packet state; can only remove packets, so
  /// rate factor stays at the pass-through worst case of 1.
  analysis::EffectSignature effect_signature() const override {
    analysis::EffectSignature sig;
    sig.stateful = true;
    return sig;
  }

  void set_rate(double rate_pps) { rate_pps_ = rate_pps; }
  /// Atomically retargets rate and burst, clamping already-accumulated
  /// tokens to the new burst (so tightening takes effect immediately —
  /// what the anomaly-reaction trigger relies on).
  void Reconfigure(double rate_pps, double burst) {
    rate_pps_ = rate_pps;
    burst_ = burst;
    aggregate_.tokens = std::min(aggregate_.tokens, burst);
    for (auto& [prefix, bucket] : per_prefix_) {
      (void)prefix;
      bucket.tokens = std::min(bucket.tokens, burst);
    }
  }
  double rate() const { return rate_pps_; }
  std::uint64_t passed() const { return passed_; }
  std::uint64_t exceeded() const { return exceeded_; }

 private:
  double rate_pps_;
  double burst_;
  Granularity granularity_;
  std::size_t max_tracked_prefixes_ = 4096;
  TokenBucket aggregate_;
  std::unordered_map<std::uint32_t, TokenBucket> per_prefix_;
  std::uint64_t passed_ = 0;
  std::uint64_t exceeded_ = 0;
};

/// Deterministic 1-in-N sampler: every Nth packet leaves on port 1 (e.g.
/// toward a logger), the rest pass on port 0. Used to bound observation
/// overhead on high-rate streams.
class SamplerModule : public Module {
 public:
  explicit SamplerModule(std::uint32_t one_in_n) : n_(one_in_n ? one_in_n : 1) {}

  int OnPacket(Packet& packet, const DeviceContext& ctx) override {
    (void)packet;
    (void)ctx;
    if (++count_ % n_ == 0) return kPortAlt;
    return kPortDefault;
  }
  std::string_view type_name() const override { return "sampler"; }
  int port_count() const override { return 2; }
  /// The modulo counter is state; every packet still leaves on exactly
  /// one port, so no duplication.
  analysis::EffectSignature effect_signature() const override {
    analysis::EffectSignature sig;
    sig.stateful = true;
    return sig;
  }

 private:
  std::uint32_t n_;
  std::uint64_t count_ = 0;
};

}  // namespace adtc
