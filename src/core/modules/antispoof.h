// Anti-spoofing module: the worldwide remotely deployable ingress
// filtering of Secs. 4.2-4.3.
//
// The module only acts on traffic arriving from a *customer edge* of the
// hosting router (access hosts or customer ASes) — "we can e.g. only
// prevent source spoofing effectively, if the adaptive device is aware of
// whether it processes transit traffic of autonomous systems or only
// traffic from customers of a peripheral ISP" (Sec. 4.2). Transit traffic
// always passes (port 0).
//
// Two operating modes:
//  * Owner mode (the paper's reflector defence): drop customer-edge
//    packets that *claim* a protected source address the customer cannot
//    legitimately hold — i.e. spoofed packets carrying the subscriber's
//    (victim's) addresses, stopped right at the attacker's uplink.
//  * Cone mode (classic RFC 2267): the allowed set is the customer cone
//    behind the edge; anything outside is spoofed.
#pragma once

#include <cstdint>

#include "core/component.h"
#include "net/prefix_trie.h"

namespace adtc {

class AntiSpoofModule : public Module {
 public:
  enum class Mode : std::uint8_t {
    /// Port 1 when a customer-edge packet's src is inside the protected
    /// set but the edge is not the legitimate home of that set.
    kProtectOwnerPrefixes,
    /// Port 1 when a customer-edge packet's src is outside the allowed
    /// (customer-cone) set.
    kAllowedCone,
  };

  explicit AntiSpoofModule(Mode mode) : mode_(mode) {}

  /// Owner mode: addresses being protected against spoofing.
  void AddProtectedPrefix(const Prefix& prefix) {
    protected_.Insert(prefix, true);
    BumpConfigRevision();
  }
  /// Owner mode: edges that legitimately source the protected prefixes
  /// (the subscriber's own uplink AS) must be exempted.
  void AddLegitimateSourceNode(NodeId node) {
    if (legit_nodes_.size() <= node) legit_nodes_.resize(node + 1, false);
    legit_nodes_[node] = true;
    BumpConfigRevision();
  }

  /// Cone mode: legitimate source space behind this router's edges.
  void AddAllowedPrefix(const Prefix& prefix) {
    allowed_.Insert(prefix, true);
    BumpConfigRevision();
  }

  int OnPacket(Packet& packet, const DeviceContext& ctx) override;
  std::string_view type_name() const override { return "anti-spoof"; }
  DatapathDropReason drop_reason() const override {
    return DatapathDropReason::kAntiSpoof;
  }
  int port_count() const override { return 2; }
  /// Branches on packet.src and the arrival edge (kind + neighbour), all
  /// part of the flow key; configuration mutators bump the revision.
  Cacheability cacheability() const override { return Cacheability::kPure; }
  /// Source checking is only meaningful for customer-edge arrivals
  /// (Sec. 4.2) — but this module gates that itself: OnPacket passes
  /// transit traffic unexamined, so it is provably safe to reach from
  /// any vantage point (self_gates_transit discharges the requirement).
  analysis::EffectSignature effect_signature() const override {
    analysis::EffectSignature sig;
    sig.stateful = false;
    sig.context = analysis::ContextRequirement::kCustomerEdgeOnly;
    sig.self_gates_transit = true;
    return sig;
  }

  std::uint64_t spoofs_flagged() const { return spoofs_flagged_; }
  std::uint64_t transit_passed() const { return transit_passed_; }

 private:
  Mode mode_;
  PrefixTrie<bool> protected_;
  PrefixTrie<bool> allowed_;
  std::vector<bool> legit_nodes_;
  std::uint64_t spoofs_flagged_ = 0;
  std::uint64_t transit_passed_ = 0;
};

}  // namespace adtc
