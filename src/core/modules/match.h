// Header/payload match rules and the branching MatchModule.
//
// "Rules that match traffic by header fields, payload (or payload hashes),
//  or timing characteristics etc. can be installed, configured and
//  activated instantly." (Sec. 4.2)
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/component.h"
#include "net/ip.h"

namespace adtc {

/// Conjunctive packet predicate over wire fields. Empty optionals match
/// anything.
struct MatchRule {
  std::optional<Prefix> src_prefix;
  std::optional<Prefix> dst_prefix;
  std::optional<Protocol> proto;
  std::optional<std::pair<std::uint16_t, std::uint16_t>> dst_port_range;
  std::optional<std::pair<std::uint16_t, std::uint16_t>> src_port_range;
  /// All set bits must be present in the packet's TCP flags.
  std::optional<std::uint8_t> tcp_flags_all;
  std::optional<IcmpType> icmp;
  std::optional<std::pair<std::uint32_t, std::uint32_t>> size_range;
  /// Exact payload-hash match (stands in for payload content matching).
  std::optional<std::uint64_t> payload_hash;

  bool Matches(const Packet& packet) const;
  std::string Describe() const;

  /// True when the rule consults only fields of the flow key (addresses,
  /// protocol, ports). Rules over per-packet payload characteristics
  /// (TCP flags, ICMP type, size, payload hash) can differ between
  /// packets of one flow and therefore defeat verdict caching.
  bool FlowDeterministic() const {
    return !tcp_flags_all && !icmp && !size_range && !payload_hash;
  }
};

/// Port kPortAlt (1) when the rule matches, kPortDefault (0) otherwise.
/// Wiring port 1 to Terminal::kDrop makes it a firewall deny rule; wiring
/// it to a rate limiter makes it a traffic-shaping classifier.
class MatchModule : public Module {
 public:
  explicit MatchModule(MatchRule rule) : rule_(std::move(rule)) {}

  int OnPacket(Packet& packet, const DeviceContext& ctx) override;
  std::string_view type_name() const override { return "match"; }
  int port_count() const override { return 2; }
  Cacheability cacheability() const override {
    return rule_.FlowDeterministic() ? Cacheability::kPure
                                     : Cacheability::kStateful;
  }
  DatapathDropReason drop_reason() const override {
    return DatapathDropReason::kFirewallRule;
  }
  /// Branch-only: even a non-flow-deterministic rule keeps no state
  /// across packets, writes nothing and emits nothing.
  analysis::EffectSignature effect_signature() const override {
    analysis::EffectSignature sig;
    sig.stateful = false;
    return sig;
  }

  const MatchRule& rule() const { return rule_; }
  std::uint64_t matched() const { return matched_; }

  /// Rules can be armed/disarmed without rewiring the graph — this is the
  /// switch pre-staged configurations flip during attacks (Sec. 4.2).
  void set_active(bool active) {
    if (active_ != active) {
      active_ = active;
      BumpConfigRevision();
    }
  }
  bool active() const { return active_; }

 private:
  MatchRule rule_;
  bool active_ = true;
  std::uint64_t matched_ = 0;
};

}  // namespace adtc
