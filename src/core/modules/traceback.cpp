#include "core/modules/traceback.h"

namespace adtc {

TracebackStoreModule::TracebackStoreModule() : TracebackStoreModule(Config()) {}

TracebackStoreModule::TracebackStoreModule(Config config)
    : config_(config) {}

void TracebackStoreModule::Roll(SimTime now) {
  if (windows_.empty() ||
      now - windows_.back().start >= config_.window) {
    windows_.push_back(
        Window{now, BloomFilter(config_.expected_packets_per_window,
                                config_.false_positive_rate)});
    while (windows_.size() > config_.window_count) {
      windows_.pop_front();
    }
  }
}

int TracebackStoreModule::OnPacket(Packet& packet,
                                   const DeviceContext& ctx) {
  Roll(ctx.now);
  windows_.back().bloom.Insert(PacketDigest(packet));
  digests_stored_++;
  return kPortDefault;
}

bool TracebackStoreModule::Saw(std::uint64_t digest) const {
  for (const Window& window : windows_) {
    if (window.bloom.MayContain(digest)) return true;
  }
  return false;
}

bool TracebackStoreModule::SawDuring(std::uint64_t digest, SimTime from,
                                     SimTime to) const {
  for (const Window& window : windows_) {
    const SimTime window_end = window.start + config_.window;
    if (window_end < from || window.start > to) continue;
    if (window.bloom.MayContain(digest)) return true;
  }
  return false;
}

std::size_t TracebackStoreModule::MemoryBytes() const {
  std::size_t total = 0;
  for (const Window& window : windows_) {
    total += window.bloom.MemoryBytes();
  }
  return total;
}

}  // namespace adtc
