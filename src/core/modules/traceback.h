// SPIE-style packet-digest backlog as a device module (Sec. 4.4:
// "Our system could be used to implement a worldwide packet traceback
//  service such as SPIE by storing a backlog of packet hashes").
//
// The module keeps a ring of time-sliced Bloom filters holding digests of
// the owner's traffic seen at this vantage point. The TracebackService
// (core/service.h) queries the modules across nodes to reconstruct the
// path of a given packet.
#pragma once

#include <cstdint>
#include <deque>

#include "common/bloom.h"
#include "core/component.h"

namespace adtc {

class TracebackStoreModule : public Module {
 public:
  struct Config {
    SimDuration window = Seconds(1);
    std::size_t window_count = 16;
    std::size_t expected_packets_per_window = 100000;
    double false_positive_rate = 0.001;
  };

  TracebackStoreModule();
  explicit TracebackStoreModule(Config config);

  int OnPacket(Packet& packet, const DeviceContext& ctx) override;
  std::string_view type_name() const override { return "traceback-store"; }
  std::uint32_t declared_overhead_bytes() const override { return 0; }
  /// Digests stay on-device (queried on demand), so no per-packet
  /// management overhead despite the substantial local state.
  analysis::EffectSignature effect_signature() const override {
    analysis::EffectSignature sig;
    sig.stateful = true;
    return sig;
  }

  /// Was a packet with this digest seen here within the retained history?
  bool Saw(std::uint64_t digest) const;
  /// Restricted to windows overlapping [from, to].
  bool SawDuring(std::uint64_t digest, SimTime from, SimTime to) const;

  std::uint64_t digests_stored() const { return digests_stored_; }
  std::size_t MemoryBytes() const;

 private:
  void Roll(SimTime now);

  Config config_;
  struct Window {
    SimTime start;
    BloomFilter bloom;
  };
  std::deque<Window> windows_;
  std::uint64_t digests_stored_ = 0;
};

}  // namespace adtc
