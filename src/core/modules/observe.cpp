#include "core/modules/observe.h"

namespace adtc {

int StatisticsModule::OnPacket(Packet& packet, const DeviceContext& ctx) {
  packets_++;
  bytes_ += packet.size_bytes;
  by_proto_[static_cast<std::size_t>(packet.proto)]++;
  by_dst_port_[packet.dst_port]++;
  packet_size_.Add(static_cast<double>(packet.size_bytes));
  if (first_seen_ < 0) first_seen_ = ctx.now;
  last_seen_ = ctx.now;
  return kPortDefault;
}

double StatisticsModule::MeanRate(SimTime now) const {
  if (first_seen_ < 0) return 0.0;
  const SimDuration span = now - first_seen_;
  if (span <= 0) return 0.0;
  return static_cast<double>(packets_) / ToSeconds(span);
}

int TriggerModule::OnPacket(Packet& packet, const DeviceContext& ctx) {
  (void)packet;
  if (window_start_ < 0) window_start_ = ctx.now;
  window_count_++;

  const SimDuration elapsed = ctx.now - window_start_;
  if (elapsed >= config_.window) {
    last_rate_ = static_cast<double>(window_count_) / ToSeconds(elapsed);
    window_start_ = ctx.now;
    window_count_ = 0;

    const bool cooled =
        last_fired_ < 0 || ctx.now - last_fired_ >= config_.cooldown;
    const bool rate_anomaly = last_rate_ > config_.rate_threshold_pps;
    const bool congestion_anomaly =
        config_.drop_share_threshold <= 1.0 &&
        ctx.RouterDropShare() > config_.drop_share_threshold;
    if (!armed_ &&
        last_rate_ <
            config_.rearm_below_fraction * config_.rate_threshold_pps) {
      armed_ = true;
    }
    if ((rate_anomaly || congestion_anomaly) && cooled && armed_) {
      last_fired_ = ctx.now;
      fired_count_++;
      if (config_.rearm_below_fraction > 0.0) armed_ = false;
      ctx.Emit(EventKind::kTriggerFired,
               std::string(rate_anomaly ? "rate" : "congestion") +
                   " above threshold at node " + std::to_string(ctx.node),
               rate_anomaly ? last_rate_ : ctx.RouterDropShare());
      if (action_) action_(ctx);
    }
  }
  return kPortDefault;
}

}  // namespace adtc
