// Observation modules: logging, statistics and triggers (Sec. 4.2, 4.4).
//
// These are the modules whose management-plane output is permitted to
// exceed the bytes-in budget by "a reasonable amount of additional
// traffic" (Sec. 4.5 footnote); each declares its per-packet overhead so
// the safety validator can cap the total.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "common/stats.h"
#include "core/component.h"
#include "net/trace.h"

namespace adtc {

/// Records (a sample of) the owner's traffic into a bounded PacketTrace —
/// the "logging data" service and forensic-support capability.
class LoggerModule : public Module {
 public:
  explicit LoggerModule(std::size_t capacity = 8192) : trace_(capacity) {}

  int OnPacket(Packet& packet, const DeviceContext& ctx) override {
    trace_.Record(packet, ctx.now);
    return kPortDefault;
  }
  std::string_view type_name() const override { return "logger"; }
  std::uint32_t declared_overhead_bytes() const override { return 24; }
  /// One 24-byte trace record per packet to the management plane.
  analysis::EffectSignature effect_signature() const override {
    analysis::EffectSignature sig;
    sig.stateful = true;
    sig.overhead_bytes_max = declared_overhead_bytes();
    return sig;
  }

  const PacketTrace& trace() const { return trace_; }
  PacketTrace& trace() { return trace_; }

 private:
  PacketTrace trace_;
};

/// Aggregate counters by wire-visible dimensions (never ground truth):
/// packets/bytes, per protocol, per destination port, mean packet size.
class StatisticsModule : public Module {
 public:
  int OnPacket(Packet& packet, const DeviceContext& ctx) override;
  std::string_view type_name() const override { return "statistics"; }
  std::uint32_t declared_overhead_bytes() const override { return 2; }
  /// Aggregates are periodically exported: ~2 bytes/packet amortised.
  analysis::EffectSignature effect_signature() const override {
    analysis::EffectSignature sig;
    sig.stateful = true;
    sig.overhead_bytes_max = declared_overhead_bytes();
    return sig;
  }

  std::uint64_t packets() const { return packets_; }
  std::uint64_t bytes() const { return bytes_; }
  std::uint64_t ByProtocol(Protocol proto) const {
    return by_proto_[static_cast<std::size_t>(proto)];
  }
  const std::map<std::uint16_t, std::uint64_t>& by_dst_port() const {
    return by_dst_port_;
  }
  const SummaryStats& packet_size() const { return packet_size_; }
  /// Observed rate (packets/s) over the module's lifetime so far.
  double MeanRate(SimTime now) const;

 private:
  std::uint64_t packets_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t by_proto_[3] = {0, 0, 0};
  std::map<std::uint16_t, std::uint64_t> by_dst_port_;
  SummaryStats packet_size_;
  SimTime first_seen_ = -1;
  SimTime last_seen_ = 0;
};

/// Fires an event when the observed packet rate over a sliding window
/// exceeds a threshold; can also run an armed action (activating a
/// pre-staged rule — "triggers can automatically activate predefined
/// additional configurations", Sec. 4.2).
class TriggerModule : public Module {
 public:
  struct Config {
    double rate_threshold_pps = 1000.0;
    SimDuration window = Milliseconds(500);
    /// Minimum gap between two firings.
    SimDuration cooldown = Seconds(2);
    /// Also fire when the hosting router's queue-drop share exceeds this
    /// (uses the operator-exposed telemetry of Sec. 4.2; > 1 disables).
    double drop_share_threshold = 2.0;
    /// Fire-once-then-cooldown hysteresis: when > 0, a firing disarms
    /// the trigger until a full window's rate falls below this fraction
    /// of rate_threshold_pps — a rate hovering at the threshold fires
    /// once instead of emitting a kTriggerFired storm every cooldown.
    /// <= 0 keeps the legacy cooldown-only behaviour.
    double rearm_below_fraction = 0.0;
  };

  explicit TriggerModule(Config config) : config_(config) {}

  /// Action invoked on every firing (after the event is emitted).
  void ArmAction(std::function<void(const DeviceContext&)> action) {
    action_ = std::move(action);
  }

  int OnPacket(Packet& packet, const DeviceContext& ctx) override;
  std::string_view type_name() const override { return "trigger"; }
  std::uint32_t declared_overhead_bytes() const override { return 1; }
  /// Rare event emission, bounded by cooldown: ≤ 1 byte/packet.
  analysis::EffectSignature effect_signature() const override {
    analysis::EffectSignature sig;
    sig.stateful = true;
    sig.overhead_bytes_max = declared_overhead_bytes();
    return sig;
  }

  std::uint64_t fired_count() const { return fired_count_; }
  double last_observed_rate() const { return last_rate_; }
  /// False while hysteresis holds the trigger disarmed after a firing.
  bool armed() const { return armed_; }

 private:
  Config config_;
  std::function<void(const DeviceContext&)> action_;
  SimTime window_start_ = -1;
  std::uint64_t window_count_ = 0;
  SimTime last_fired_ = -1;
  std::uint64_t fired_count_ = 0;
  double last_rate_ = 0.0;
  bool armed_ = true;
};

}  // namespace adtc
