// Small firewall-flavoured modules: source blacklisting and payload
// deletion (both named in Sec. 4.2's module list).
#pragma once

#include <cstdint>
#include <unordered_set>

#include "core/component.h"
#include "net/prefix_trie.h"

namespace adtc {

/// "source IP blacklisting": port 1 for packets whose source is on the
/// list. Entries can be exact hosts or whole prefixes.
class BlacklistModule : public Module {
 public:
  void Add(const Prefix& prefix) {
    listed_.Insert(prefix, true);
    BumpConfigRevision();
  }
  void Add(Ipv4Address addr) { Add(Prefix::Host(addr)); }
  bool Remove(const Prefix& prefix) {
    const bool erased = listed_.Erase(prefix);
    if (erased) BumpConfigRevision();
    return erased;
  }
  std::size_t size() const { return listed_.size(); }

  int OnPacket(Packet& packet, const DeviceContext& ctx) override {
    (void)ctx;
    if (listed_.ContainsAddress(packet.src)) {
      hits_++;
      return kPortAlt;
    }
    return kPortDefault;
  }
  std::string_view type_name() const override { return "blacklist"; }
  int port_count() const override { return 2; }
  /// Branches only on packet.src against the (revision-tracked) list.
  Cacheability cacheability() const override { return Cacheability::kPure; }
  DatapathDropReason drop_reason() const override {
    return DatapathDropReason::kBlacklist;
  }
  /// Pass-or-branch, no writes, no duplication, no overhead.
  analysis::EffectSignature effect_signature() const override {
    analysis::EffectSignature sig;
    sig.stateful = false;
    return sig;
  }

  std::uint64_t hits() const { return hits_; }

 private:
  PrefixTrie<bool> listed_;
  std::uint64_t hits_ = 0;
};

/// "payload deletion": strips the payload, leaving the header skeleton.
/// Size only ever shrinks (the amplification-safety direction of
/// Sec. 4.5); addresses and TTL are untouched.
class PayloadDeleteModule : public Module {
 public:
  explicit PayloadDeleteModule(std::uint32_t header_bytes = 40)
      : header_bytes_(header_bytes) {}

  int OnPacket(Packet& packet, const DeviceContext& ctx) override {
    (void)ctx;
    if (packet.size_bytes > header_bytes_) {
      stripped_bytes_ += packet.size_bytes - header_bytes_;
      packet.size_bytes = header_bytes_;
      packet.payload_hash = 0;
    }
    return kPortDefault;
  }
  std::string_view type_name() const override { return "payload-delete"; }
  /// Always takes port 0; the packet rewrite (truncate to header_bytes_)
  /// is flow-independent, so a cache hit replays it via cache_truncate_to.
  Cacheability cacheability() const override {
    return Cacheability::kPureTransform;
  }
  std::uint32_t cache_truncate_to() const override { return header_bytes_; }
  /// Only ever shrinks the packet: worst-case wire delta is 0, never
  /// positive, so no kSizeGrow header write is declared.
  analysis::EffectSignature effect_signature() const override {
    analysis::EffectSignature sig;
    sig.stateful = false;
    sig.wire_bytes_delta_max = 0;
    return sig;
  }

  std::uint64_t stripped_bytes() const { return stripped_bytes_; }

 private:
  std::uint32_t header_bytes_;
  std::uint64_t stripped_bytes_ = 0;
};

/// Pure counter pass-through (cheap observability primitive).
class CounterModule : public Module {
 public:
  int OnPacket(Packet& packet, const DeviceContext& ctx) override {
    (void)ctx;
    packets_++;
    bytes_ += packet.size_bytes;
    return kPortDefault;
  }
  std::string_view type_name() const override { return "counter"; }
  /// Keeps cross-packet totals but emits nothing and mutates nothing.
  analysis::EffectSignature effect_signature() const override {
    analysis::EffectSignature sig;
    sig.stateful = true;
    return sig;
  }

  std::uint64_t packets() const { return packets_; }
  std::uint64_t bytes() const { return bytes_; }

 private:
  std::uint64_t packets_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace adtc
