#include "core/modules/rate_limit.h"

namespace adtc {

int RateLimitModule::OnPacket(Packet& packet, const DeviceContext& ctx) {
  TokenBucket* bucket = &aggregate_;
  if (granularity_ == Granularity::kPerSrcPrefix) {
    const std::uint32_t key =
        packet.src.bits() & PrefixMask(kNodePrefixLength);
    const auto it = per_prefix_.find(key);
    if (it != per_prefix_.end()) {
      bucket = &it->second;
    } else if (per_prefix_.size() < max_tracked_prefixes_) {
      bucket = &per_prefix_[key];
    }
    // else: table full — the source shares the aggregate bucket.
  }
  if (bucket->TryConsume(ctx.now, rate_pps_, burst_)) {
    passed_++;
    return kPortDefault;
  }
  exceeded_++;
  return kPortAlt;
}

}  // namespace adtc
