#include "core/adaptive_device.h"

#include "net/network.h"

namespace adtc {

AdaptiveDevice::AdaptiveDevice(NodeId node, EventSink* events)
    : node_(node), events_(events) {}

Status AdaptiveDevice::InstallDeployment(
    const OwnershipCertificate& cert, std::vector<Prefix> scope,
    std::optional<ModuleGraph> source_stage,
    std::optional<ModuleGraph> destination_stage) {
  if (cert.subscriber == kInvalidSubscriber) {
    return InvalidArgument("certificate carries no subscriber id");
  }
  if (scope.empty()) {
    return InvalidArgument("deployment scope is empty");
  }
  // Defence in depth: the device itself never accepts scope outside the
  // certified ownership, regardless of what the NMS checked.
  for (const Prefix& prefix : scope) {
    if (!cert.CoversPrefix(prefix)) {
      return PermissionDenied("scope prefix " + prefix.ToString() +
                              " outside certificate of '" + cert.subject +
                              "'");
    }
  }
  if ((source_stage && !source_stage->validated()) ||
      (destination_stage && !destination_stage->validated())) {
    return InvalidArgument("stage graph not validated");
  }
  if (deployments_.contains(cert.subscriber)) {
    return AlreadyExists("subscriber already deployed on this device");
  }
  for (const Prefix& prefix : scope) {
    const SubscriberId* existing = src_redirect_.ExactMatch(prefix);
    if (existing != nullptr && *existing != cert.subscriber) {
      return AlreadyExists("redirect prefix " + prefix.ToString() +
                           " already claimed on this device");
    }
  }

  for (const Prefix& prefix : scope) {
    src_redirect_.Insert(prefix, cert.subscriber);
    dst_redirect_.Insert(prefix, cert.subscriber);
  }
  Deployment deployment;
  deployment.cert = cert;
  deployment.scope = std::move(scope);
  deployment.source_stage = std::move(source_stage);
  deployment.destination_stage = std::move(destination_stage);
  deployments_.emplace(cert.subscriber, std::move(deployment));
  return Status::Ok();
}

Status AdaptiveDevice::RemoveDeployment(SubscriberId subscriber) {
  const auto it = deployments_.find(subscriber);
  if (it == deployments_.end()) {
    return NotFound("no deployment for subscriber " +
                    std::to_string(subscriber));
  }
  for (const Prefix& prefix : it->second.scope) {
    src_redirect_.Erase(prefix);
    dst_redirect_.Erase(prefix);
  }
  deployments_.erase(it);
  return Status::Ok();
}

bool AdaptiveDevice::IsQuarantined(SubscriberId subscriber) const {
  const auto it = deployments_.find(subscriber);
  return it != deployments_.end() && it->second.quarantined;
}

ModuleGraph* AdaptiveDevice::StageGraph(SubscriberId subscriber,
                                        ProcessingStage stage) {
  const auto it = deployments_.find(subscriber);
  if (it == deployments_.end()) return nullptr;
  auto& graph = stage == ProcessingStage::kSourceOwner
                    ? it->second.source_stage
                    : it->second.destination_stage;
  return graph ? &*graph : nullptr;
}

Verdict AdaptiveDevice::RunStage(Deployment& deployment,
                                 ProcessingStage stage, Packet& packet,
                                 const RouterContext& ctx) {
  auto& graph = stage == ProcessingStage::kSourceOwner
                    ? deployment.source_stage
                    : deployment.destination_stage;
  if (!graph || deployment.quarantined) return Verdict::kForward;

  DeviceContext device_ctx;
  device_ctx.net = ctx.net;
  device_ctx.node = ctx.node;
  device_ctx.role = ctx.role;
  device_ctx.in_kind = ctx.in_kind;
  if (ctx.net != nullptr && ctx.in_link != kInvalidLink) {
    const LinkTarget& from = ctx.net->link(ctx.in_link).from;
    if (!from.is_host) device_ctx.in_from_node = from.id;
  }
  device_ctx.now = ctx.now;
  device_ctx.subscriber = deployment.cert.subscriber;
  device_ctx.stage = stage;
  device_ctx.events = events_;

  if (stage == ProcessingStage::kSourceOwner) {
    stats_.stage1_runs++;
  } else {
    stats_.stage2_runs++;
  }

  const PacketInvariants before = PacketInvariants::Capture(packet);
  const Verdict verdict = graph->Execute(packet, device_ctx);
  const InvariantViolation violation = EnforceInvariants(before, packet);
  if (violation != InvariantViolation::kNone) {
    stats_.safety_violations++;
    deployment.quarantined = true;
    device_ctx.Emit(EventKind::kSafetyViolation,
                    std::string(InvariantViolationName(violation)) +
                        " by deployment of '" + deployment.cert.subject +
                        "' — quarantined");
    // Fail open: the offending deployment loses control, traffic flows.
    return Verdict::kForward;
  }
  return verdict;
}

Verdict AdaptiveDevice::Process(Packet& packet, const RouterContext& ctx) {
  const SubscriberId* src_owner = src_redirect_.LongestMatch(packet.src);
  const SubscriberId* dst_owner = dst_redirect_.LongestMatch(packet.dst);
  if (src_owner == nullptr && dst_owner == nullptr) {
    stats_.fast_path_packets++;
    return Verdict::kForward;
  }
  stats_.redirected_packets++;

  // Stage 1: control by the source-address owner.
  if (src_owner != nullptr) {
    const auto it = deployments_.find(*src_owner);
    if (it != deployments_.end()) {
      it->second.packets_seen++;
      if (RunStage(it->second, ProcessingStage::kSourceOwner, packet, ctx) ==
          Verdict::kDrop) {
        stats_.dropped_packets++;
        return Verdict::kDrop;
      }
    }
  }
  // Stage 2: control by the destination-address owner.
  if (dst_owner != nullptr) {
    const auto it = deployments_.find(*dst_owner);
    if (it != deployments_.end()) {
      if (src_owner == nullptr || *src_owner != *dst_owner) {
        it->second.packets_seen++;
      }
      if (RunStage(it->second, ProcessingStage::kDestinationOwner, packet,
                   ctx) == Verdict::kDrop) {
        stats_.dropped_packets++;
        return Verdict::kDrop;
      }
    }
  }
  return Verdict::kForward;
}

}  // namespace adtc
