#include "core/adaptive_device.h"

#include <algorithm>

#include "net/network.h"
#include "obs/trace_context.h"

namespace adtc {
namespace {

/// FNV-1a accumulation helpers for DeploymentSpecDigest.
constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void FnvMix(std::uint64_t& h, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (i * 8)) & 0xff;
    h *= kFnvPrime;
  }
}

void FnvMix(std::uint64_t& h, std::string_view bytes) {
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime;
  }
}

}  // namespace

std::uint64_t DeploymentSpecDigest(const DeploymentSpec& spec) {
  std::uint64_t h = kFnvOffset;
  FnvMix(h, spec.deployment_id.origin);
  FnvMix(h, spec.deployment_id.seq);
  FnvMix(h, spec.cert.subscriber);
  FnvMix(h, spec.cert.subject);
  FnvMix(h, static_cast<std::uint64_t>(spec.cert.expires_at));
  for (const std::uint8_t byte : spec.cert.signature) {
    h ^= byte;
    h *= kFnvPrime;
  }
  for (const Prefix& prefix : spec.scope) {
    FnvMix(h, (static_cast<std::uint64_t>(prefix.address().bits()) << 8) |
                  static_cast<std::uint64_t>(prefix.length()));
  }
  return h;
}

AdaptiveDevice::AdaptiveDevice(NodeId node, EventSink* events)
    : node_(node), events_(events) {}

AdaptiveDevice::~AdaptiveDevice() { BindTelemetry(nullptr); }

void AdaptiveDevice::BindTelemetry(obs::Telemetry* telemetry) {
  if (telemetry_ != nullptr) {
    telemetry_->registry().RemoveCollectors(this);
  }
  telemetry_ = telemetry;
  if (telemetry_ == nullptr) {
    process_wall_ns_ = stage_wall_ns_ = lookup_wall_ns_ = nullptr;
    return;
  }
  auto& registry = telemetry_->registry();
  // Wall-clock nanoseconds per operation; 0–100 µs covers the datapath.
  process_wall_ns_ =
      &registry.GetHistogram("device.process_wall_ns", 0.0, 1e5, 250);
  stage_wall_ns_ =
      &registry.GetHistogram("device.stage_wall_ns", 0.0, 1e5, 250);
  lookup_wall_ns_ =
      &registry.GetHistogram("device.lookup_wall_ns", 0.0, 1e5, 250);
  const std::string prefix = "device.as" + std::to_string(node_) + ".";
  registry.AddCollector(this, [this, prefix](obs::MetricsSnapshot& out) {
    out.push_back({prefix + "fast_path_packets",
                   static_cast<double>(stats_.fast_path_packets)});
    out.push_back({prefix + "redirected_packets",
                   static_cast<double>(stats_.redirected_packets)});
    out.push_back(
        {prefix + "stage1_runs", static_cast<double>(stats_.stage1_runs)});
    out.push_back(
        {prefix + "stage2_runs", static_cast<double>(stats_.stage2_runs)});
    out.push_back({prefix + "dropped_packets",
                   static_cast<double>(stats_.dropped_packets)});
    out.push_back({prefix + "safety_violations",
                   static_cast<double>(stats_.safety_violations)});
    out.push_back({prefix + "flow_cache_hits",
                   static_cast<double>(stats_.flow_cache_hits)});
    out.push_back({prefix + "flow_cache_misses",
                   static_cast<double>(stats_.flow_cache_misses)});
    out.push_back({prefix + "flow_cache_entries",
                   static_cast<double>(flow_cache_entries_gauge_.value())});
    out.push_back({prefix + "installs_applied",
                   static_cast<double>(stats_.installs_applied)});
    out.push_back({prefix + "duplicate_installs",
                   static_cast<double>(stats_.duplicate_installs)});
    out.push_back({prefix + "replays_rejected",
                   static_cast<double>(stats_.replays_rejected)});
    out.push_back({prefix + "restarts",
                   static_cast<double>(stats_.restarts)});
    out.push_back({prefix + "quarantines",
                   static_cast<double>(stats_.quarantines)});
    out.push_back({prefix + "deployments",
                   static_cast<double>(deployments_gauge_.value())});
    out.push_back({prefix + "redirect_prefixes",
                   static_cast<double>(redirect_prefixes_gauge_.value())});
    for (std::size_t i = 1; i < kDatapathDropReasonCount; ++i) {
      out.push_back(
          {prefix + "drops." +
               DatapathDropReasonName(static_cast<DatapathDropReason>(i)),
           static_cast<double>(stats_.drops_by_reason[i])});
    }
  });
}

Status AdaptiveDevice::InstallDeployment(DeploymentSpec spec) {
  // Exactly-once: a duplicated or retried instruction (same id) replays
  // the recorded outcome without touching tables or counters — but only
  // when the content matches the record. A known id carrying different
  // content is a replayed/mutated instruction (a compromised relay
  // re-using a legitimate DeploymentId) and is rejected outright.
  if (spec.deployment_id.valid()) {
    const auto it = applied_installs_.find(spec.deployment_id);
    if (it != applied_installs_.end()) {
      if (it->second.digest != DeploymentSpecDigest(spec)) {
        stats_.replays_rejected++;
        return ReplayDetected("deployment id re-used with mutated content");
      }
      stats_.duplicate_installs++;
      return it->second.status;
    }
  }
  const DeploymentId id = spec.deployment_id;
  const std::uint64_t digest = DeploymentSpecDigest(spec);
  const Status status = InstallDeploymentImpl(std::move(spec));
  if (id.valid()) applied_installs_.emplace(id, InstallRecord{status, digest});
  return status;
}

void AdaptiveDevice::Restart() {
  deployments_.clear();
  applied_installs_.clear();
  src_redirect_ = PrefixTrie<SubscriberId>();
  dst_redirect_ = PrefixTrie<SubscriberId>();
  flow_cache_.clear();
  // Generation keeps moving forward (never resets): an entry somehow
  // surviving in a caller's hands can never validate against post-restart
  // state.
  InvalidateFlowCache();
  deployments_gauge_ = 0;
  redirect_prefixes_gauge_ = 0;
  flow_cache_entries_gauge_ = 0;
  stats_.restarts++;
}

bool AdaptiveDevice::Quarantine(SubscriberId subscriber) {
  const auto it = deployments_.find(subscriber);
  if (it == deployments_.end() || it->second.quarantined) return false;
  it->second.quarantined = true;
  stats_.quarantines++;
  InvalidateFlowCache();
  return true;
}

Status AdaptiveDevice::InstallDeploymentImpl(DeploymentSpec spec) {
  const OwnershipCertificate& cert = spec.cert;
  if (cert.subscriber == kInvalidSubscriber) {
    return InvalidArgument("certificate carries no subscriber id");
  }
  if (spec.scope.empty()) {
    return InvalidArgument("deployment scope is empty");
  }
  // Defence in depth: the device itself never accepts scope outside the
  // certified ownership, regardless of what the NMS checked.
  for (const Prefix& prefix : spec.scope) {
    if (!cert.CoversPrefix(prefix)) {
      return PermissionDenied("scope prefix " + prefix.ToString() +
                              " outside certificate of '" + cert.subject +
                              "'");
    }
  }
  if ((spec.source_stage && !spec.source_stage->validated()) ||
      (spec.destination_stage && !spec.destination_stage->validated())) {
    return InvalidArgument("stage graph not validated");
  }
  if (deployments_.contains(cert.subscriber)) {
    return AlreadyExists("subscriber already deployed on this device");
  }
  // Leaf of the control-plane trace: TCSP deploy → NMS configure →
  // per-device install (Fig. 5's last arrow).
  obs::ScopedSpan span(
      telemetry_ != nullptr && telemetry_->tracing_enabled()
          ? &telemetry_->tracer()
          : nullptr,
      "device.install");
  span.SetNode(node_);
  span.SetSubscriber(cert.subscriber);
  if (spec.deployment_id.valid() && telemetry_ != nullptr &&
      telemetry_->tracing_enabled()) {
    AnnotateTrace(&telemetry_->tracer(), span.id(),
                  obs::TraceContext::ForDeployment(spec.deployment_id.origin,
                                                   spec.deployment_id.seq));
  }
  for (const Prefix& prefix : spec.scope) {
    const SubscriberId* existing = src_redirect_.ExactMatch(prefix);
    if (existing != nullptr && *existing != cert.subscriber) {
      span.Fail();
      return AlreadyExists("redirect prefix " + prefix.ToString() +
                           " already claimed on this device");
    }
  }

  for (const Prefix& prefix : spec.scope) {
    src_redirect_.Insert(prefix, cert.subscriber);
    dst_redirect_.Insert(prefix, cert.subscriber);
  }
  Deployment deployment;
  deployment.cert = cert;
  deployment.scope = std::move(spec.scope);
  deployment.source_stage = std::move(spec.source_stage);
  deployment.destination_stage = std::move(spec.destination_stage);
  deployment.label = std::move(spec.label);
  deployments_.emplace(cert.subscriber, std::move(deployment));
  deployments_gauge_ = deployments_.size();
  redirect_prefixes_gauge_ = src_redirect_.size();
  InvalidateFlowCache();
  stats_.installs_applied++;
  return Status::Ok();
}

Status AdaptiveDevice::RemoveDeployment(SubscriberId subscriber) {
  const auto it = deployments_.find(subscriber);
  if (it == deployments_.end()) {
    return NotFound("no deployment for subscriber " +
                    std::to_string(subscriber));
  }
  for (const Prefix& prefix : it->second.scope) {
    src_redirect_.Erase(prefix);
    dst_redirect_.Erase(prefix);
  }
  deployments_.erase(it);
  deployments_gauge_ = deployments_.size();
  redirect_prefixes_gauge_ = src_redirect_.size();
  // Generation first, then the map can shrink: any entry holding a
  // pointer into the erased node is already unreachable.
  InvalidateFlowCache();
  flow_cache_.clear();
  flow_cache_entries_gauge_ = 0;
  return Status::Ok();
}

bool AdaptiveDevice::IsQuarantined(SubscriberId subscriber) const {
  const auto it = deployments_.find(subscriber);
  return it != deployments_.end() && it->second.quarantined;
}

ModuleGraph* AdaptiveDevice::StageGraph(SubscriberId subscriber,
                                        ProcessingStage stage) {
  const auto it = deployments_.find(subscriber);
  if (it == deployments_.end()) return nullptr;
  auto& graph = stage == ProcessingStage::kSourceOwner
                    ? it->second.source_stage
                    : it->second.destination_stage;
  return graph ? &*graph : nullptr;
}

AdaptiveDevice::StageRun AdaptiveDevice::RunStage(Deployment& deployment,
                                                  ProcessingStage stage,
                                                  Packet& packet,
                                                  const RouterContext& ctx,
                                                  NodeId in_from_node,
                                                  bool collect_cacheability) {
  StageRun run;
  auto& graph = stage == ProcessingStage::kSourceOwner
                    ? deployment.source_stage
                    : deployment.destination_stage;
  if (!graph || deployment.quarantined) return run;
  run.ran = true;
  const obs::ScopedWallTimer stage_timer(
      telemetry_ != nullptr && telemetry_->profiling_enabled()
          ? stage_wall_ns_
          : nullptr);

  DeviceContext device_ctx;
  device_ctx.net = ctx.net;
  device_ctx.node = ctx.node;
  device_ctx.role = ctx.role;
  device_ctx.in_kind = ctx.in_kind;
  device_ctx.in_from_node = in_from_node;
  device_ctx.now = ctx.now;
  device_ctx.subscriber = deployment.cert.subscriber;
  device_ctx.stage = stage;
  device_ctx.events = events_;

  if (stage == ProcessingStage::kSourceOwner) {
    stats_.stage1_runs++;
  } else {
    stats_.stage2_runs++;
  }

  const PacketInvariants before = PacketInvariants::Capture(packet);
  if (collect_cacheability) {
    visited_scratch_.clear();
    run.verdict = graph->Execute(packet, device_ctx, &visited_scratch_);
    for (const int id : visited_scratch_) {
      switch (graph->module(id)->cacheability()) {
        case Cacheability::kPure:
          break;
        case Cacheability::kPureTransform: {
          const std::uint32_t to = graph->module(id)->cache_truncate_to();
          if (to != 0) {
            run.truncate_to =
                run.truncate_to == 0 ? to : std::min(run.truncate_to, to);
          }
          break;
        }
        case Cacheability::kStateful:
          run.pure = false;
          break;
      }
    }
  } else {
    run.verdict = graph->Execute(packet, device_ctx);
  }
  if (run.verdict == Verdict::kDrop) {
    run.drop_reason = graph->last_drop_reason();
  }
  const InvariantViolation violation = EnforceInvariants(before, packet);
  if (violation != InvariantViolation::kNone) {
    stats_.safety_violations++;
    deployment.quarantined = true;
    stats_.quarantines++;
    // Quarantine changes this deployment's treatment for every flow that
    // touches it; cached verdicts from before the violation are void.
    InvalidateFlowCache();
    device_ctx.Emit(EventKind::kSafetyViolation,
                    std::string(InvariantViolationName(violation)) +
                        " by deployment of '" + deployment.cert.subject +
                        "' — quarantined");
    // Fail open: the offending deployment loses control, traffic flows.
    run.verdict = Verdict::kForward;
    run.drop_reason = DatapathDropReason::kNone;
    run.pure = false;
    return run;
  }
  return run;
}

Verdict AdaptiveDevice::ReplayCachedVerdict(FlowCacheEntry& entry,
                                            Packet& packet) {
  // Mirror the uncached counter updates exactly, including the
  // stage-1-drop short circuit that keeps stage-2 counters untouched.
  if (!entry.redirected) {
    stats_.fast_path_packets++;
    return Verdict::kForward;
  }
  stats_.redirected_packets++;
  if (entry.src_dep != nullptr) {
    entry.src_dep->packets_seen++;
    if (entry.stage1_ran) {
      stats_.stage1_runs++;
      entry.src_dep->source_stage->RecordCachedExecution(entry.drop_stage ==
                                                         1);
    }
    if (entry.drop_stage == 1) {
      stats_.dropped_packets++;
      stats_.drops_by_reason[static_cast<std::size_t>(entry.drop_reason)]++;
      return Verdict::kDrop;
    }
  }
  if (entry.dst_dep != nullptr) {
    if (entry.dst_dep != entry.src_dep) {
      entry.dst_dep->packets_seen++;
    }
    if (entry.stage2_ran) {
      stats_.stage2_runs++;
      entry.dst_dep->destination_stage->RecordCachedExecution(
          entry.drop_stage == 2);
    }
    if (entry.drop_stage == 2) {
      stats_.dropped_packets++;
      stats_.drops_by_reason[static_cast<std::size_t>(entry.drop_reason)]++;
      return Verdict::kDrop;
    }
  }
  if (entry.truncate_to != 0 && packet.size_bytes > entry.truncate_to) {
    packet.size_bytes = entry.truncate_to;
    packet.payload_hash = 0;
  }
  return Verdict::kForward;
}

Verdict AdaptiveDevice::Process(Packet& packet, const RouterContext& ctx) {
  // Profiling is a single cached-bool test per packet when disabled — the
  // timers only read the wall clock once enabled.
  const bool profiling =
      telemetry_ != nullptr && telemetry_->profiling_enabled();
  const obs::ScopedWallTimer process_timer(profiling ? process_wall_ns_
                                                     : nullptr);

  NodeId in_from_node = kInvalidNode;
  if (ctx.net != nullptr && ctx.in_link != kInvalidLink) {
    const LinkTarget& from = ctx.net->link(ctx.in_link).from;
    if (!from.is_host) in_from_node = from.id;
  }

  const FlowKey key{packet.src,      packet.dst,  packet.proto,
                    packet.src_port, packet.dst_port,
                    ctx.in_kind,     in_from_node};
  FlowCacheEntry* entry = nullptr;
  if (flow_cache_enabled_) {
    const auto it = flow_cache_.find(key);
    if (it != flow_cache_.end()) {
      if (EntryCurrent(it->second)) {
        entry = &it->second;
      } else {
        flow_cache_.erase(it);
        flow_cache_entries_gauge_ = flow_cache_.size();
      }
    }
  }
  if (entry != nullptr && entry->full_verdict) {
    stats_.flow_cache_hits++;
    const Verdict cached = ReplayCachedVerdict(*entry, packet);
    if (recorder_ != nullptr) {
      RecordFlight(packet, ctx, cached, entry->drop_reason,
                   /*cache_hit=*/true, entry->redirected, entry->stage2_ran);
    }
    return cached;
  }

  // Resolve the redirect tables and deployment records — from the partial
  // cache entry when one exists (saving both LPM walks and map probes),
  // from the tries otherwise.
  Deployment* src_dep = nullptr;
  Deployment* dst_dep = nullptr;
  bool redirected = false;
  if (entry != nullptr) {
    stats_.flow_cache_hits++;
    src_dep = entry->src_dep;
    dst_dep = entry->dst_dep;
    redirected = entry->redirected;
  } else {
    if (flow_cache_enabled_) stats_.flow_cache_misses++;
    const SubscriberId* src_owner;
    const SubscriberId* dst_owner;
    {
      const obs::ScopedWallTimer lookup_timer(profiling ? lookup_wall_ns_
                                                        : nullptr);
      src_owner = src_redirect_.LongestMatch(packet.src);
      dst_owner = dst_redirect_.LongestMatch(packet.dst);
    }
    redirected = src_owner != nullptr || dst_owner != nullptr;
    if (src_owner != nullptr) {
      const auto it = deployments_.find(*src_owner);
      if (it != deployments_.end()) src_dep = &it->second;
    }
    if (dst_owner != nullptr) {
      const auto it = deployments_.find(*dst_owner);
      if (it != deployments_.end()) dst_dep = &it->second;
    }
  }

  // Execute, remembering everything a cache fill needs. `fill` is off for
  // partial-entry hits (the entry already exists) and when caching is
  // disabled.
  const bool fill = flow_cache_enabled_ && entry == nullptr;
  const std::uint64_t fill_generation = generation_;
  Verdict verdict = Verdict::kForward;
  std::uint8_t drop_stage = 0;
  DatapathDropReason drop_reason = DatapathDropReason::kNone;
  bool stage1_ran = false;
  bool stage2_ran = false;
  bool pure = true;
  std::uint32_t truncate_to = 0;

  if (!redirected) {
    stats_.fast_path_packets++;
  } else {
    stats_.redirected_packets++;
    // Stage 1: control by the source-address owner.
    if (src_dep != nullptr) {
      src_dep->packets_seen++;
      const StageRun run = RunStage(*src_dep, ProcessingStage::kSourceOwner,
                                    packet, ctx, in_from_node, fill);
      stage1_ran = run.ran;
      pure = pure && run.pure;
      truncate_to = run.truncate_to != 0
                        ? (truncate_to == 0
                               ? run.truncate_to
                               : std::min(truncate_to, run.truncate_to))
                        : truncate_to;
      if (run.verdict == Verdict::kDrop) {
        stats_.dropped_packets++;
        stats_.drops_by_reason[static_cast<std::size_t>(run.drop_reason)]++;
        verdict = Verdict::kDrop;
        drop_stage = 1;
        drop_reason = run.drop_reason;
      }
    }
    // Stage 2: control by the destination-address owner.
    if (drop_stage == 0 && dst_dep != nullptr) {
      if (dst_dep != src_dep) {
        dst_dep->packets_seen++;
      }
      const StageRun run =
          RunStage(*dst_dep, ProcessingStage::kDestinationOwner, packet, ctx,
                   in_from_node, fill);
      stage2_ran = run.ran;
      pure = pure && run.pure;
      truncate_to = run.truncate_to != 0
                        ? (truncate_to == 0
                               ? run.truncate_to
                               : std::min(truncate_to, run.truncate_to))
                        : truncate_to;
      if (run.verdict == Verdict::kDrop) {
        stats_.dropped_packets++;
        stats_.drops_by_reason[static_cast<std::size_t>(run.drop_reason)]++;
        verdict = Verdict::kDrop;
        drop_stage = 2;
        drop_reason = run.drop_reason;
      }
    }
  }

  // Fill — unless the configuration moved underneath us (a quarantine
  // fired during this very packet), in which case the observed behaviour
  // no longer describes the flow's future treatment.
  if (fill && generation_ == fill_generation) {
    if (flow_cache_.size() >= kMaxFlowCacheEntries) flow_cache_.clear();
    FlowCacheEntry fresh;
    fresh.generation = generation_;
    fresh.src_dep = src_dep;
    fresh.dst_dep = dst_dep;
    fresh.src_revision =
        src_dep != nullptr && src_dep->source_stage
            ? src_dep->source_stage->config_revision()
            : 0;
    fresh.dst_revision =
        dst_dep != nullptr && dst_dep->destination_stage
            ? dst_dep->destination_stage->config_revision()
            : 0;
    fresh.redirected = redirected;
    fresh.full_verdict = pure;
    fresh.verdict = verdict;
    fresh.drop_stage = drop_stage;
    fresh.drop_reason = drop_reason;
    fresh.stage1_ran = stage1_ran;
    fresh.stage2_ran = stage2_ran;
    fresh.truncate_to = truncate_to;
    flow_cache_[key] = fresh;
    flow_cache_entries_gauge_ = flow_cache_.size();
  }
  if (recorder_ != nullptr) {
    RecordFlight(packet, ctx, verdict, drop_reason,
                 /*cache_hit=*/entry != nullptr, redirected, stage2_ran);
  }
  return verdict;
}

void AdaptiveDevice::RecordFlight(const Packet& packet,
                                  const RouterContext& ctx, Verdict verdict,
                                  DatapathDropReason reason, bool cache_hit,
                                  bool redirected, bool stage2) {
  obs::VerdictRecord record;
  record.at = ctx.now;
  record.node = node_;
  record.src = packet.src.bits();
  record.dst = packet.dst.bits();
  record.src_port = packet.src_port;
  record.dst_port = packet.dst_port;
  record.protocol = static_cast<std::uint8_t>(packet.proto);
  record.dropped = verdict == Verdict::kDrop;
  record.drop_reason = reason;
  record.cache_hit = cache_hit;
  record.redirected = redirected;
  record.stage2 = stage2;
  recorder_->Record(record);
}

}  // namespace adtc
