#include "core/adaptive_device.h"

#include "net/network.h"

namespace adtc {

AdaptiveDevice::AdaptiveDevice(NodeId node, EventSink* events)
    : node_(node), events_(events) {}

AdaptiveDevice::~AdaptiveDevice() { BindTelemetry(nullptr); }

void AdaptiveDevice::BindTelemetry(obs::Telemetry* telemetry) {
  if (telemetry_ != nullptr) {
    telemetry_->registry().RemoveCollectors(this);
  }
  telemetry_ = telemetry;
  if (telemetry_ == nullptr) {
    process_wall_ns_ = stage_wall_ns_ = lookup_wall_ns_ = nullptr;
    return;
  }
  auto& registry = telemetry_->registry();
  // Wall-clock nanoseconds per operation; 0–100 µs covers the datapath.
  process_wall_ns_ =
      &registry.GetHistogram("device.process_wall_ns", 0.0, 1e5, 250);
  stage_wall_ns_ =
      &registry.GetHistogram("device.stage_wall_ns", 0.0, 1e5, 250);
  lookup_wall_ns_ =
      &registry.GetHistogram("device.lookup_wall_ns", 0.0, 1e5, 250);
  const std::string prefix = "device.as" + std::to_string(node_) + ".";
  registry.AddCollector(this, [this, prefix](obs::MetricsSnapshot& out) {
    out.push_back({prefix + "fast_path_packets",
                   static_cast<double>(stats_.fast_path_packets)});
    out.push_back({prefix + "redirected_packets",
                   static_cast<double>(stats_.redirected_packets)});
    out.push_back(
        {prefix + "stage1_runs", static_cast<double>(stats_.stage1_runs)});
    out.push_back(
        {prefix + "stage2_runs", static_cast<double>(stats_.stage2_runs)});
    out.push_back({prefix + "dropped_packets",
                   static_cast<double>(stats_.dropped_packets)});
    out.push_back({prefix + "safety_violations",
                   static_cast<double>(stats_.safety_violations)});
    out.push_back({prefix + "deployments",
                   static_cast<double>(deployments_.size())});
    out.push_back({prefix + "redirect_prefixes",
                   static_cast<double>(src_redirect_.size())});
  });
}

Status AdaptiveDevice::InstallDeployment(
    const OwnershipCertificate& cert, std::vector<Prefix> scope,
    std::optional<ModuleGraph> source_stage,
    std::optional<ModuleGraph> destination_stage) {
  if (cert.subscriber == kInvalidSubscriber) {
    return InvalidArgument("certificate carries no subscriber id");
  }
  if (scope.empty()) {
    return InvalidArgument("deployment scope is empty");
  }
  // Defence in depth: the device itself never accepts scope outside the
  // certified ownership, regardless of what the NMS checked.
  for (const Prefix& prefix : scope) {
    if (!cert.CoversPrefix(prefix)) {
      return PermissionDenied("scope prefix " + prefix.ToString() +
                              " outside certificate of '" + cert.subject +
                              "'");
    }
  }
  if ((source_stage && !source_stage->validated()) ||
      (destination_stage && !destination_stage->validated())) {
    return InvalidArgument("stage graph not validated");
  }
  if (deployments_.contains(cert.subscriber)) {
    return AlreadyExists("subscriber already deployed on this device");
  }
  // Leaf of the control-plane trace: TCSP deploy → NMS configure →
  // per-device install (Fig. 5's last arrow).
  obs::ScopedSpan span(
      telemetry_ != nullptr && telemetry_->tracing_enabled()
          ? &telemetry_->tracer()
          : nullptr,
      "device.install");
  span.SetNode(node_);
  span.SetSubscriber(cert.subscriber);
  for (const Prefix& prefix : scope) {
    const SubscriberId* existing = src_redirect_.ExactMatch(prefix);
    if (existing != nullptr && *existing != cert.subscriber) {
      span.Fail();
      return AlreadyExists("redirect prefix " + prefix.ToString() +
                           " already claimed on this device");
    }
  }

  for (const Prefix& prefix : scope) {
    src_redirect_.Insert(prefix, cert.subscriber);
    dst_redirect_.Insert(prefix, cert.subscriber);
  }
  Deployment deployment;
  deployment.cert = cert;
  deployment.scope = std::move(scope);
  deployment.source_stage = std::move(source_stage);
  deployment.destination_stage = std::move(destination_stage);
  deployments_.emplace(cert.subscriber, std::move(deployment));
  return Status::Ok();
}

Status AdaptiveDevice::RemoveDeployment(SubscriberId subscriber) {
  const auto it = deployments_.find(subscriber);
  if (it == deployments_.end()) {
    return NotFound("no deployment for subscriber " +
                    std::to_string(subscriber));
  }
  for (const Prefix& prefix : it->second.scope) {
    src_redirect_.Erase(prefix);
    dst_redirect_.Erase(prefix);
  }
  deployments_.erase(it);
  return Status::Ok();
}

bool AdaptiveDevice::IsQuarantined(SubscriberId subscriber) const {
  const auto it = deployments_.find(subscriber);
  return it != deployments_.end() && it->second.quarantined;
}

ModuleGraph* AdaptiveDevice::StageGraph(SubscriberId subscriber,
                                        ProcessingStage stage) {
  const auto it = deployments_.find(subscriber);
  if (it == deployments_.end()) return nullptr;
  auto& graph = stage == ProcessingStage::kSourceOwner
                    ? it->second.source_stage
                    : it->second.destination_stage;
  return graph ? &*graph : nullptr;
}

Verdict AdaptiveDevice::RunStage(Deployment& deployment,
                                 ProcessingStage stage, Packet& packet,
                                 const RouterContext& ctx) {
  auto& graph = stage == ProcessingStage::kSourceOwner
                    ? deployment.source_stage
                    : deployment.destination_stage;
  if (!graph || deployment.quarantined) return Verdict::kForward;
  const obs::ScopedWallTimer stage_timer(
      telemetry_ != nullptr && telemetry_->profiling_enabled()
          ? stage_wall_ns_
          : nullptr);

  DeviceContext device_ctx;
  device_ctx.net = ctx.net;
  device_ctx.node = ctx.node;
  device_ctx.role = ctx.role;
  device_ctx.in_kind = ctx.in_kind;
  if (ctx.net != nullptr && ctx.in_link != kInvalidLink) {
    const LinkTarget& from = ctx.net->link(ctx.in_link).from;
    if (!from.is_host) device_ctx.in_from_node = from.id;
  }
  device_ctx.now = ctx.now;
  device_ctx.subscriber = deployment.cert.subscriber;
  device_ctx.stage = stage;
  device_ctx.events = events_;

  if (stage == ProcessingStage::kSourceOwner) {
    stats_.stage1_runs++;
  } else {
    stats_.stage2_runs++;
  }

  const PacketInvariants before = PacketInvariants::Capture(packet);
  const Verdict verdict = graph->Execute(packet, device_ctx);
  const InvariantViolation violation = EnforceInvariants(before, packet);
  if (violation != InvariantViolation::kNone) {
    stats_.safety_violations++;
    deployment.quarantined = true;
    device_ctx.Emit(EventKind::kSafetyViolation,
                    std::string(InvariantViolationName(violation)) +
                        " by deployment of '" + deployment.cert.subject +
                        "' — quarantined");
    // Fail open: the offending deployment loses control, traffic flows.
    return Verdict::kForward;
  }
  return verdict;
}

Verdict AdaptiveDevice::Process(Packet& packet, const RouterContext& ctx) {
  // Profiling is a single cached-bool test per packet when disabled — the
  // timers only read the wall clock once enabled.
  const bool profiling =
      telemetry_ != nullptr && telemetry_->profiling_enabled();
  const obs::ScopedWallTimer process_timer(profiling ? process_wall_ns_
                                                     : nullptr);
  const SubscriberId* src_owner;
  const SubscriberId* dst_owner;
  {
    const obs::ScopedWallTimer lookup_timer(profiling ? lookup_wall_ns_
                                                      : nullptr);
    src_owner = src_redirect_.LongestMatch(packet.src);
    dst_owner = dst_redirect_.LongestMatch(packet.dst);
  }
  if (src_owner == nullptr && dst_owner == nullptr) {
    stats_.fast_path_packets++;
    return Verdict::kForward;
  }
  stats_.redirected_packets++;

  // Stage 1: control by the source-address owner.
  if (src_owner != nullptr) {
    const auto it = deployments_.find(*src_owner);
    if (it != deployments_.end()) {
      it->second.packets_seen++;
      if (RunStage(it->second, ProcessingStage::kSourceOwner, packet, ctx) ==
          Verdict::kDrop) {
        stats_.dropped_packets++;
        return Verdict::kDrop;
      }
    }
  }
  // Stage 2: control by the destination-address owner.
  if (dst_owner != nullptr) {
    const auto it = deployments_.find(*dst_owner);
    if (it != deployments_.end()) {
      if (src_owner == nullptr || *src_owner != *dst_owner) {
        it->second.packets_seen++;
      }
      if (RunStage(it->second, ProcessingStage::kDestinationOwner, packet,
                   ctx) == Verdict::kDrop) {
        stats_.dropped_packets++;
        return Verdict::kDrop;
      }
    }
  }
  return Verdict::kForward;
}

}  // namespace adtc
