#include "core/service.h"

#include <algorithm>

#include "net/network.h"

namespace adtc {

std::string_view ServiceKindName(ServiceKind kind) {
  switch (kind) {
    case ServiceKind::kRemoteIngressFiltering: return "remote-ingress-filtering";
    case ServiceKind::kDistributedFirewall: return "distributed-firewall";
    case ServiceKind::kTraceback: return "traceback";
    case ServiceKind::kStatistics: return "statistics";
    case ServiceKind::kAnomalyReaction: return "anomaly-reaction";
  }
  return "?";
}

bool PlacementSelects(PlacementPolicy policy, NodeRole role) {
  switch (policy) {
    case PlacementPolicy::kAllManagedNodes:
      return true;
    case PlacementPolicy::kStubNodesOnly:
      return role == NodeRole::kStub;
    case PlacementPolicy::kTransitNodesOnly:
      return role == NodeRole::kTransit;
    case PlacementPolicy::kWithinRadius:
    case PlacementPolicy::kExplicitNodes:
      // Role-agnostic policies: without request context, treat as
      // candidate (callers with context use PlacementSelectsNode).
      return true;
  }
  return false;
}

bool PlacementSelectsNode(const ServiceRequest& request, const Network& net,
                          NodeId node) {
  switch (request.placement) {
    case PlacementPolicy::kWithinRadius: {
      for (const Prefix& prefix : request.control_scope) {
        const NodeId home = AddressNode(prefix.address());
        if (home < net.node_count() &&
            net.HopDistance(home, node) <= request.placement_radius) {
          return true;
        }
      }
      return false;
    }
    case PlacementPolicy::kExplicitNodes:
      return std::find(request.placement_nodes.begin(),
                       request.placement_nodes.end(),
                       node) != request.placement_nodes.end();
    default:
      return PlacementSelects(request.placement, net.node(node).role);
  }
}

std::vector<NodeId> LegitimateForwarderSet(
    const Network& net, const std::vector<NodeId>& home_nodes) {
  std::vector<bool> seen(net.node_count(), false);
  std::vector<NodeId> stack;
  for (NodeId home : home_nodes) {
    if (home < net.node_count() && !seen[home]) {
      seen[home] = true;
      stack.push_back(home);
    }
  }
  std::vector<NodeId> out;
  while (!stack.empty()) {
    const NodeId at = stack.back();
    stack.pop_back();
    out.push_back(at);
    for (const auto& [neighbour, link] : net.node(at).neighbours) {
      if (net.link(link).kind == LinkKind::kCustomerToProvider &&
          !seen[neighbour]) {
        seen[neighbour] = true;
        stack.push_back(neighbour);
      }
    }
  }
  return out;
}

namespace {

ModuleGraph BuildIngressFilteringStage(
    const ServiceRequest& request, const std::vector<NodeId>& home_nodes) {
  auto antispoof = std::make_unique<AntiSpoofModule>(
      AntiSpoofModule::Mode::kProtectOwnerPrefixes);
  for (const Prefix& prefix : request.control_scope) {
    antispoof->AddProtectedPrefix(prefix);
  }
  for (NodeId node : home_nodes) {
    antispoof->AddLegitimateSourceNode(node);
  }
  // anti-spoof: port 0 pass -> accept; port 1 (spoof) -> drop.
  return ModuleGraph::Single(std::move(antispoof));
}

ModuleGraph BuildFirewallStage(const ServiceRequest& request) {
  ModuleGraph graph;
  // Offered-load observation sits ahead of every rule and the limiter so
  // its counters see the pre-mitigation rate (see observe_offered_load).
  int offered_stats = -1;
  if (request.observe_offered_load) {
    offered_stats = graph.AddModule(std::make_unique<StatisticsModule>());
  }
  std::vector<int> rule_ids;
  for (const MatchRule& rule : request.deny_rules) {
    rule_ids.push_back(graph.AddModule(std::make_unique<MatchModule>(rule)));
  }
  int limiter = -1;
  if (request.inbound_rate_limit_pps) {
    limiter = graph.AddModule(std::make_unique<RateLimitModule>(
        *request.inbound_rate_limit_pps,
        std::max(32.0, *request.inbound_rate_limit_pps / 10.0)));
  }
  const int counter = graph.AddModule(std::make_unique<CounterModule>());

  // Chain: [offered-load stats] -> rule -> ... -> [limiter] -> counter ->
  // accept; every match (port 1) and limiter-exceeded drops.
  int previous = -1;
  if (offered_stats >= 0) {
    (void)graph.SetEntry(offered_stats);
    previous = offered_stats;
  }
  for (int id : rule_ids) {
    if (previous < 0) {
      (void)graph.SetEntry(id);
    } else {
      (void)graph.Wire(previous, kPortDefault, id);
    }
    (void)graph.WireTerminal(id, kPortAlt, ModuleGraph::Terminal::kDrop);
    previous = id;
  }
  const int tail = limiter >= 0 ? limiter : counter;
  if (previous < 0) {
    (void)graph.SetEntry(tail);
  } else {
    (void)graph.Wire(previous, kPortDefault, tail);
  }
  if (limiter >= 0) {
    (void)graph.WireTerminal(limiter, kPortAlt,
                             ModuleGraph::Terminal::kDrop);
    (void)graph.Wire(limiter, kPortDefault, counter);
  }
  (void)graph.WireTerminal(counter, kPortDefault,
                           ModuleGraph::Terminal::kAccept);
  (void)graph.Validate();
  return graph;
}

ModuleGraph BuildTracebackStage(const ServiceRequest& request) {
  return ModuleGraph::Single(
      std::make_unique<TracebackStoreModule>(request.traceback));
}

ModuleGraph BuildStatisticsStage(const ServiceRequest& request) {
  ModuleGraph graph;
  const int stats = graph.AddModule(std::make_unique<StatisticsModule>());
  const int sampler = graph.AddModule(
      std::make_unique<SamplerModule>(request.log_sample_one_in));
  const int logger = graph.AddModule(
      std::make_unique<LoggerModule>(request.log_capacity));
  (void)graph.SetEntry(stats);
  (void)graph.Wire(stats, kPortDefault, sampler);
  (void)graph.Wire(sampler, kPortAlt, logger);  // the 1-in-N sample
  (void)graph.WireTerminal(sampler, kPortDefault,
                           ModuleGraph::Terminal::kAccept);
  (void)graph.WireTerminal(logger, kPortDefault,
                           ModuleGraph::Terminal::kAccept);
  (void)graph.Validate();
  return graph;
}

ModuleGraph BuildAnomalyReactionStage(const ServiceRequest& request) {
  // Two-level pre-staged reaction:
  //  * a per-source limiter caps truthful heavy hitters surgically
  //    (well-behaved flows keep their own full bucket);
  //  * an aggregate backstop bounds the total — this is what bites when
  //    sources are randomly spoofed and each forged /20 would otherwise
  //    start with a fresh bucket (the same blindness the paper attributes
  //    to pushback's source classification, Sec. 3.1).
  // Both are effectively off until the trigger fires.
  ModuleGraph graph;
  auto trigger_module = std::make_unique<TriggerModule>(request.trigger);
  auto per_source_module = std::make_unique<RateLimitModule>(
      /*rate_pps=*/1e12, /*burst=*/1e12,
      RateLimitModule::Granularity::kPerSrcPrefix);
  auto aggregate_module = std::make_unique<RateLimitModule>(
      /*rate_pps=*/1e12, /*burst=*/1e12);
  RateLimitModule* per_source_raw = per_source_module.get();
  RateLimitModule* aggregate_raw = aggregate_module.get();
  const double reaction_rate = request.reaction_rate_limit_pps;
  const double aggregate_rate =
      request.reaction_rate_limit_pps * request.reaction_aggregate_factor;
  trigger_module->ArmAction([per_source_raw, aggregate_raw, reaction_rate,
                             aggregate_rate](const DeviceContext& ctx) {
    if (per_source_raw->rate() > reaction_rate) {
      per_source_raw->Reconfigure(reaction_rate,
                                  std::max(16.0, reaction_rate / 10.0));
      aggregate_raw->Reconfigure(aggregate_rate,
                                 std::max(32.0, aggregate_rate / 10.0));
      ctx.Emit(EventKind::kRuleActivated,
               "anomaly reaction: rate limit engaged", reaction_rate);
    }
  });
  const int trigger = graph.AddModule(std::move(trigger_module));
  const int per_source = graph.AddModule(std::move(per_source_module));
  const int aggregate = graph.AddModule(std::move(aggregate_module));
  (void)graph.SetEntry(trigger);
  (void)graph.Wire(trigger, kPortDefault, per_source);
  (void)graph.Wire(per_source, kPortDefault, aggregate);
  (void)graph.WireTerminal(per_source, kPortAlt,
                           ModuleGraph::Terminal::kDrop);
  (void)graph.WireTerminal(aggregate, kPortDefault,
                           ModuleGraph::Terminal::kAccept);
  (void)graph.WireTerminal(aggregate, kPortAlt,
                           ModuleGraph::Terminal::kDrop);
  (void)graph.Validate();
  return graph;
}

}  // namespace

StageGraphs BuildStageGraphs(const ServiceRequest& request,
                             const std::vector<NodeId>& home_nodes) {
  StageGraphs graphs;
  switch (request.kind) {
    case ServiceKind::kRemoteIngressFiltering:
      // Spoofed packets carry the subscriber's address as *source*.
      graphs.source_stage =
          BuildIngressFilteringStage(request, home_nodes);
      break;
    case ServiceKind::kDistributedFirewall:
      graphs.destination_stage = BuildFirewallStage(request);
      break;
    case ServiceKind::kTraceback:
      // Observe the owner's traffic in both directions.
      graphs.source_stage = BuildTracebackStage(request);
      graphs.destination_stage = BuildTracebackStage(request);
      break;
    case ServiceKind::kStatistics:
      graphs.destination_stage = BuildStatisticsStage(request);
      break;
    case ServiceKind::kAnomalyReaction:
      graphs.destination_stage = BuildAnomalyReactionStage(request);
      break;
  }
  return graphs;
}

}  // namespace adtc
