#include "core/traceback_service.h"

namespace adtc {

TcsTracebackService::TcsTracebackService(Network& net,
                                         const std::vector<IspNms*>& isps,
                                         SubscriberId subscriber)
    : net_(net), stores_by_node_(net.node_count()) {
  for (IspNms* nms : isps) {
    for (NodeId node : nms->managed_nodes()) {
      AdaptiveDevice* device = nms->device(node);
      if (device == nullptr) continue;
      for (ProcessingStage stage : {ProcessingStage::kSourceOwner,
                                    ProcessingStage::kDestinationOwner}) {
        ModuleGraph* graph = device->StageGraph(subscriber, stage);
        if (graph == nullptr) continue;
        if (auto* store = graph->FindModule<TracebackStoreModule>()) {
          stores_by_node_[node].push_back(store);
          store_count_++;
        }
      }
    }
  }
}

TraceResult TcsTracebackService::TraceDigest(std::uint64_t digest,
                                             NodeId victim_node) const {
  return ReconstructOrigins(net_, victim_node, [this, digest](NodeId node) {
    for (const TracebackStoreModule* store : stores_by_node_[node]) {
      if (store->Saw(digest)) return true;
    }
    return false;
  });
}

TraceResult TcsTracebackService::Trace(const Packet& packet,
                                       NodeId victim_node) const {
  return TraceDigest(PacketDigest(packet), victim_node);
}

std::size_t TcsTracebackService::TotalMemoryBytes() const {
  std::size_t total = 0;
  for (const auto& stores : stores_by_node_) {
    for (const TracebackStoreModule* store : stores) {
      total += store->MemoryBytes();
    }
  }
  return total;
}

}  // namespace adtc
