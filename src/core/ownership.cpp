#include "core/ownership.h"

namespace adtc {

Status NumberAuthority::Allocate(const Prefix& prefix, std::string owner) {
  // Overlap = an existing allocation covering this prefix or lying within
  // it. Either way it must belong to the same owner.
  Status conflict = Status::Ok();
  auto check = [&](const Prefix& existing, const std::string& holder) {
    if (holder != owner) {
      conflict = AlreadyExists("prefix " + prefix.ToString() +
                               " overlaps allocation " +
                               existing.ToString() + " held by " + holder);
      return false;  // stop
    }
    return true;
  };
  allocations_.VisitCovering(prefix, check);
  if (conflict.ok()) allocations_.VisitWithin(prefix, check);
  if (!conflict.ok()) return conflict;

  allocations_.Insert(prefix, std::move(owner));
  return Status::Ok();
}

Status NumberAuthority::Suballocate(const Prefix& prefix, std::string owner,
                                    std::string_view parent_owner) {
  if (const Status held = VerifyOwnership(parent_owner, prefix);
      !held.ok()) {
    return PermissionDenied(std::string(parent_owner) +
                            " holds no allocation covering " +
                            prefix.ToString() + " (" + held.ToString() + ")");
  }
  // Nothing *inside* the delegated range may belong to a third party.
  Status conflict = Status::Ok();
  allocations_.VisitWithin(
      prefix, [&](const Prefix& existing, const std::string& holder) {
        if (holder != owner && holder != parent_owner) {
          conflict = AlreadyExists("suballocation " + prefix.ToString() +
                                   " collides with " + existing.ToString() +
                                   " held by " + holder);
          return false;
        }
        return true;
      });
  if (!conflict.ok()) return conflict;
  allocations_.Insert(prefix, std::move(owner));
  return Status::Ok();
}

Status NumberAuthority::VerifyOwnership(std::string_view owner,
                                        const Prefix& prefix) const {
  // The claimed prefix must lie fully inside an allocation held by owner;
  // all candidate allocations are on the trie path above `prefix`.
  bool verified = false;
  bool covered = false;
  allocations_.VisitCovering(
      prefix, [&](const Prefix& /*existing*/, const std::string& holder) {
        covered = true;
        if (holder == owner) {
          verified = true;
          return false;  // stop
        }
        return true;
      });
  if (verified) return Status::Ok();
  if (!covered) {
    return NotFound("no allocation covers " + prefix.ToString());
  }
  return PermissionDenied("allocations covering " + prefix.ToString() +
                          " are held by another organisation");
}

std::string NumberAuthority::OwnerOf(Ipv4Address addr) const {
  const std::string* owner = allocations_.LongestMatch(addr);
  return owner != nullptr ? *owner : std::string();
}

std::vector<Prefix> NumberAuthority::AllocationsOf(
    std::string_view owner) const {
  std::vector<Prefix> out;
  for (const auto& [prefix, holder] : allocations_.Entries()) {
    if (holder == owner) out.push_back(prefix);
  }
  return out;
}

std::string AsOrgName(NodeId node) {
  return "as" + std::to_string(node);
}

void AllocateTopologyPrefixes(NumberAuthority& authority,
                              std::size_t node_count) {
  for (NodeId node = 0; node < node_count; ++node) {
    const Status status =
        authority.Allocate(NodePrefix(node), AsOrgName(node));
    (void)status;  // fresh registry: cannot fail
  }
}

}  // namespace adtc
