#include "core/tcsp.h"

#include <algorithm>
#include <memory>

namespace adtc {

Tcsp::Tcsp(Network& net, NumberAuthority& authority,
           std::string signing_key, TcspConfig config)
    : net_(net),
      authority_(authority),
      ca_(std::move(signing_key)),
      validator_(MakeStandardValidator()),
      config_(config) {
  net_.telemetry().registry().AddCollector(
      this, [this](obs::MetricsSnapshot& out) {
        out.push_back({"tcsp.registrations_accepted",
                       static_cast<double>(stats_.registrations_accepted)});
        out.push_back({"tcsp.registrations_rejected",
                       static_cast<double>(stats_.registrations_rejected)});
        out.push_back({"tcsp.deployments_completed",
                       static_cast<double>(stats_.deployments_completed)});
        out.push_back({"tcsp.deployments_failed",
                       static_cast<double>(stats_.deployments_failed)});
        out.push_back(
            {"tcsp.requests_while_unreachable",
             static_cast<double>(stats_.requests_while_unreachable)});
        out.push_back(
            {"tcsp.enrolled_isps", static_cast<double>(isps_.size())});
        out.push_back({"tcsp.deploy_retries",
                       static_cast<double>(stats_.deploy_retries)});
        out.push_back({"tcsp.relay_fallbacks",
                       static_cast<double>(stats_.relay_fallbacks)});
        out.push_back({"tcsp.runtime_ops",
                       static_cast<double>(stats_.runtime_ops)});
        const AnalysisStats& analysis = validator_.analysis_stats();
        out.push_back({"analysis.graphs_verified",
                       static_cast<double>(analysis.graphs_verified)});
        out.push_back({"analysis.graphs_rejected",
                       static_cast<double>(analysis.graphs_rejected)});
        out.push_back({"analysis.violations_found",
                       static_cast<double>(analysis.violations_found)});
        out.push_back({"analysis.soundness_violations",
                       static_cast<double>(analysis.soundness_violations)});
        out.push_back({"analysis.plans_verified",
                       static_cast<double>(analysis.plans_verified)});
        out.push_back({"analysis.plans_rejected",
                       static_cast<double>(analysis.plans_rejected)});
        out.push_back(
            {"analysis.plan_soundness_violations",
             static_cast<double>(analysis.plan_soundness_violations)});
        if (injector_ != nullptr) {
          const FaultInjectorStats& fs = injector_->stats();
          out.push_back({"faults.messages_planned",
                         static_cast<double>(fs.messages_planned)});
          out.push_back({"faults.messages_lost",
                         static_cast<double>(fs.messages_lost)});
          out.push_back({"faults.messages_duplicated",
                         static_cast<double>(fs.messages_duplicated)});
          out.push_back({"faults.messages_delayed",
                         static_cast<double>(fs.messages_delayed)});
          out.push_back({"faults.messages_reordered",
                         static_cast<double>(fs.messages_reordered)});
          out.push_back({"faults.partition_blocks",
                         static_cast<double>(fs.partition_blocks)});
          out.push_back({"faults.packets_planned",
                         static_cast<double>(fs.packets_planned)});
          out.push_back({"faults.packets_lost",
                         static_cast<double>(fs.packets_lost)});
          out.push_back({"faults.packets_corrupted",
                         static_cast<double>(fs.packets_corrupted)});
          out.push_back({"faults.link_down_drops",
                         static_cast<double>(fs.link_down_drops)});
        }
      });
}

Tcsp::~Tcsp() { net_.telemetry().registry().RemoveCollectors(this); }

/// Tracer of this world if any telemetry sink is attached, else nullptr
/// (spans no-op).
obs::Tracer* Tcsp::tracer() const {
  return net_.telemetry().tracing_enabled() ? &net_.telemetry().tracer()
                                            : nullptr;
}

void Tcsp::EnrollIsp(IspNms* nms) {
  if (nms == nullptr) return;
  for (IspNms* existing : isps_) {
    if (existing == nms) return;  // already enrolled
  }
  for (IspNms* existing : isps_) {
    existing->AddPeer(nms);
    nms->AddPeer(existing);
  }
  isps_.push_back(nms);
  nms->set_retry_policy(config_.retry);
  nms->set_peer_latency(config_.nms_peer_latency);
  if (injector_ != nullptr) {
    nms->AttachFaultInjector(injector_);
  }
}

void Tcsp::AttachFaultInjector(FaultInjector* injector) {
  injector_ = injector;
  isp_channels_.clear();  // rebuilt lazily against the new plan
  for (IspNms* nms : isps_) {
    nms->AttachFaultInjector(injector);
  }
}

bool Tcsp::TcspReachable() const {
  return reachable_ &&
         (injector_ == nullptr || injector_->TcspUp(net_.Now()));
}

ControlChannel& Tcsp::IspChannel(IspNms* nms) {
  auto it = isp_channels_.find(nms);
  if (it == isp_channels_.end()) {
    auto channel = std::make_unique<ControlChannel>(
        net_.control(), nms->sched(), control_rng_,
        "tcsp->nms:" + nms->name(), injector_);
    // The tracer's address is stable for the world's lifetime and no-ops
    // without a sink, so the channel is always wired for tracing.
    channel->SetTracer(&net_.telemetry().tracer());
    it = isp_channels_.emplace(nms, std::move(channel)).first;
  }
  return *it->second;
}

Result<OwnershipCertificate> Tcsp::Register(const std::string& subject,
                                            std::vector<Prefix> claimed,
                                            bool identity_ok) {
  obs::ScopedSpan span(tracer(), "tcsp.register");
  if (tracer() != nullptr) {
    tracer()->Annotate(span.id(), "subject", subject);
  }
  if (!TcspReachable()) {
    stats_.requests_while_unreachable++;
    span.Fail();
    return Status(Unavailable("TCSP unreachable"));
  }
  // "The TCSP checks the identity of the network user" — modelled as a
  // boolean outcome of the offline/online CA-style verification.
  if (!identity_ok) {
    stats_.registrations_rejected++;
    span.Fail();
    return Status(PermissionDenied("identity verification failed"));
  }
  if (claimed.empty()) {
    stats_.registrations_rejected++;
    span.Fail();
    return Status(InvalidArgument("no prefixes claimed"));
  }
  // "the TcSP checks with Internet number authorities if the IP addresses
  //  are indeed owned by the service requester."
  {
    obs::ScopedSpan verify_span(tracer(), "tcsp.verify_ownership");
    for (const Prefix& prefix : claimed) {
      if (const Status held = authority_.VerifyOwnership(subject, prefix);
          !held.ok()) {
        stats_.registrations_rejected++;
        verify_span.Fail();
        span.Fail();
        return Status(held.code(), "ownership of " + prefix.ToString() +
                                       " not verified for '" + subject +
                                       "': " + held.message());
      }
    }
  }
  stats_.registrations_accepted++;
  return ca_.Issue(next_subscriber_++, subject, std::move(claimed),
                   net_.Now(), config_.certificate_validity);
}

void Tcsp::RegisterAsync(
    std::string subject, std::vector<Prefix> claimed,
    std::function<void(Result<OwnershipCertificate>)> done) {
  const SimDuration total = config_.user_to_tcsp_latency +
                            config_.authority_query_latency +
                            config_.user_to_tcsp_latency;
  net_.control().PostIn(
      total, [this, subject = std::move(subject),
              claimed = std::move(claimed), done = std::move(done)] {
        done(Register(subject, claimed));
      });
}

Result<OwnershipCertificate> Tcsp::RegisterDelegate(
    const OwnershipCertificate& owner_cert, std::string delegate_name,
    std::vector<Prefix> delegated_prefixes) {
  if (!TcspReachable()) {
    stats_.requests_while_unreachable++;
    return Status(Unavailable("TCSP unreachable"));
  }
  if (const Status verified = ca_.Verify(owner_cert, net_.Now());
      !verified.ok()) {
    stats_.registrations_rejected++;
    return verified;
  }
  if (delegated_prefixes.empty()) {
    stats_.registrations_rejected++;
    return Status(InvalidArgument("no prefixes delegated"));
  }
  // A party may only hand over what it itself controls.
  for (const Prefix& prefix : delegated_prefixes) {
    if (!owner_cert.CoversPrefix(prefix)) {
      stats_.registrations_rejected++;
      return Status(PermissionDenied(
          "delegated prefix " + prefix.ToString() +
          " outside the owner's certified address space"));
    }
  }
  stats_.registrations_accepted++;
  return ca_.Issue(next_subscriber_++, std::move(delegate_name),
                   std::move(delegated_prefixes), net_.Now(),
                   config_.certificate_validity);
}

std::vector<NodeId> Tcsp::HomeNodes(const std::vector<Prefix>& prefixes) {
  std::vector<NodeId> nodes;
  for (const Prefix& prefix : prefixes) {
    const NodeId node = AddressNode(prefix.address());
    bool seen = false;
    for (NodeId existing : nodes) seen = seen || existing == node;
    if (!seen) nodes.push_back(node);
  }
  return nodes;
}

DeploymentReport Tcsp::DeployService(
    const OwnershipCertificate& cert, const ServiceRequest& request,
    CompletionPolicy policy,
    std::function<void(const DeploymentReport&)> done) {
  const bool modelled = policy == CompletionPolicy::kLatencyModelled;
  const SimTime requested_at = net_.Now();
  // The deploy span stays open across the scheduled ISP callbacks; its id
  // is captured explicitly (the active-span stack does not survive
  // scheduler Post hops).
  obs::SpanId deploy_span = obs::kNoSpan;
  if (tracer() != nullptr) {
    deploy_span = tracer()->StartSpan("tcsp.deploy");
    tracer()->SetSubscriber(deploy_span, cert.subscriber);
    tracer()->Annotate(deploy_span, "mode",
                       modelled ? "latency-modelled" : "immediate");
  }
  // Hands the finished report to the caller: synchronously for
  // kImmediate, after the user->TCSP response latency for
  // kLatencyModelled.
  auto deliver = [this, modelled](
                     const DeploymentReport& report,
                     std::function<void(const DeploymentReport&)>& cb) {
    if (!cb) return;
    if (!modelled) {
      cb(report);
      return;
    }
    net_.control().PostIn(config_.user_to_tcsp_latency,
                          [report, cb = std::move(cb)] { cb(report); });
  };

  // Every deployment gets one instruction with one id, shared by every
  // ISP: however many times any channel re-delivers it, each NMS and
  // device applies it exactly once.
  DeploymentInstruction instr;
  instr.id = DeploymentId{0, next_deployment_seq_++};
  instr.cert = cert;
  instr.request = request;
  instr.home_nodes = HomeNodes(request.control_scope);

  // The causal identity every hop of this deployment stamps its spans
  // with: channels open call/attempt spans under the deploy root, and
  // the offline analyzer reassembles the lifecycle by this tag.
  const obs::TraceContext trace = obs::TraceContext::ForDeployment(
      instr.id.origin, instr.id.seq, deploy_span);
  AnnotateTrace(tracer(), deploy_span, trace);

  // Static admission analysis, attached to the report either way the
  // deployment travels. Each NMS re-runs the authoritative gate on the
  // same shared validator before installing anything.
  const analysis::AnalysisReport analysis =
      AnalyzeRequest(cert, request, instr.home_nodes);

  if (!TcspReachable()) {
    stats_.requests_while_unreachable++;
    if (config_.relay_fallback && !isps_.empty()) {
      return RelayFallback(instr, analysis, requested_at, deploy_span,
                           done);
    }
    if (tracer() != nullptr) tracer()->EndSpan(deploy_span, /*ok=*/false);
    DeploymentReport report;
    report.status = Unavailable("TCSP unreachable");
    report.analysis = analysis;
    report.requested_at = requested_at;
    report.completed_at = requested_at;
    deliver(report, done);
    return report;
  }

  // Network-wide plan admission ahead of fan-out: snapshot the concrete
  // placement (which routers get which graphs, under which ACL budgets)
  // and prove path coverage, cross-device termination, composed
  // rate/overhead bounds and budget feasibility. A rejected plan never
  // reaches an ISP; the witness path travels back on the report.
  analysis::PlanReport plan;  // stays kNotRun unless analyzable
  analysis::PlanView plan_view;
  const bool plan_analyzable = config_.verify_plan && !isps_.empty() &&
                               net_.routing_ready() &&
                               BuildPlanView(request, instr.home_nodes,
                                             &plan_view);
  if (plan_analyzable) {
    const analysis::NetworkView net_view = BuildNetworkView(net_);
    plan = validator_.AnalyzePlan(net_view, plan_view);
    if (plan.status == analysis::PlanStatus::kRejected) {
      stats_.deployments_failed++;
      if (tracer() != nullptr) tracer()->EndSpan(deploy_span, /*ok=*/false);
      DeploymentReport rejected;
      const analysis::PlanViolation& first = plan.violations.front();
      rejected.status = SafetyViolation(
          "static plan analysis rejected deployment: " +
          std::string(analysis::PlanInvariantKindName(first.kind)) + " — " +
          first.detail + " [witness: " +
          analysis::PlanWitnessToString(net_view, first.witness_nodes) +
          "]");
      rejected.analysis = analysis;
      rejected.plan = std::move(plan);
      rejected.requested_at = requested_at;
      rejected.completed_at = net_.Now();
      deliver(rejected, done);
      return rejected;
    }
    if (plan.proven() && plan_view.require_coverage) {
      // The coverage proof becomes the plan-soundness oracle's ground
      // truth: attack traffic later observed at these victims would
      // contradict it (ReportUncoveredPathTraffic).
      proven_plans_[cert.subscriber] = instr.home_nodes;
    }
  }

  // The request reaches the TCSP, which instructs every ISP in parallel
  // over its control channel; each ISP configures its selected devices
  // sequentially. The report completes when the slowest ISP answered
  // (or its retry budget ran out). Every ISP is attempted even after a
  // failure; the report carries the worst observed outcome.
  auto report = std::make_shared<DeploymentReport>();
  report->requested_at = requested_at;
  report->analysis = analysis;
  report->plan = std::move(plan);

  if (isps_.empty()) {
    report->completed_at = requested_at;
    stats_.deployments_completed++;
    if (tracer() != nullptr) tracer()->EndSpan(deploy_span);
    deliver(*report, done);
    return *report;
  }

  report->isp_outcomes.resize(isps_.size());
  auto pending = std::make_shared<std::size_t>(isps_.size());
  auto done_shared =
      std::make_shared<std::function<void(const DeploymentReport&)>>(
          std::move(done));

  for (std::size_t i = 0; i < isps_.size(); ++i) {
    IspNms* nms = isps_[i];
    report->isp_outcomes[i].isp = nms->name();
    ControlChannel::CallOptions opts;
    opts.retry = config_.retry;
    opts.trace = trace;
    if (modelled) {
      // Count configurable devices for this ISP to model config time.
      std::size_t selected = 0;
      for (NodeId node : nms->managed_nodes()) {
        if (PlacementSelectsNode(request, net_, node)) {
          ++selected;
        }
      }
      opts.request_latency =
          config_.user_to_tcsp_latency + config_.tcsp_to_isp_latency +
          static_cast<SimDuration>(selected) * config_.device_config_time;
      // The NMS's acknowledgement rides the same control network back.
      // (Also keeps a cross-shard ISP channel inside the epoch contract:
      // a zero-latency response leg cannot legally cross shards.)
      opts.response_latency = config_.tcsp_to_isp_latency;
    }
    IspChannel(nms).Call(
        [this, instr, nms]() -> Status {
          // The channel runs this with its per-try "ctrl.attempt" span
          // active, so the NMS/device spans created inside parent under
          // the delivering attempt. A retried or duplicated copy re-runs
          // this handler; ApplyDeployment replays its record by id
          // instead of re-installing.
          return nms->ApplyDeployment(instr, ca_);
        },
        [this, report, pending, done_shared, deploy_span, nms, i,
         subscriber = cert.subscriber](const Status& status,
                                       const CallOutcome& outcome) {
          IspOutcome& slot = report->isp_outcomes[i];
          slot.status = status;
          slot.attempts = outcome.attempts;
          if (outcome.attempts > 1) {
            const std::uint32_t extra = outcome.attempts - 1;
            report->retries += extra;
            stats_.deploy_retries += extra;
          }
          report->status = WorseStatus(report->status, status);
          if (status.ok()) {
            report->isps_configured++;
            slot.devices_configured = nms->CountDeployments(subscriber);
            report->devices_configured += slot.devices_configured;
          }
          if (--*pending == 0) {
            report->completed_at = net_.Now();
            if (report->status.ok()) {
              stats_.deployments_completed++;
            } else {
              stats_.deployments_failed++;
            }
            if (tracer() != nullptr) {
              tracer()->EndSpan(deploy_span, report->status.ok());
            }
            if (*done_shared) (*done_shared)(*report);
          }
        },
        opts);
  }
  // kImmediate with no injector: every channel completed inline above
  // and the report is final. Otherwise: provisional snapshot
  // (completed_at still 0) and the outcome arrives through `done`.
  return *report;
}

analysis::AnalysisReport Tcsp::AnalyzeRequest(
    const OwnershipCertificate& cert, const ServiceRequest& request,
    const std::vector<NodeId>& home_nodes) const {
  StageGraphs reference = BuildStageGraphs(
      request, LegitimateForwarderSet(net_, home_nodes));
  analysis::AnalysisReport merged;  // stays kNotRun with no graphs
  for (const auto* stage : {&reference.source_stage,
                            &reference.destination_stage}) {
    if (!stage->has_value()) continue;
    DeploymentAnalysis one = validator_.AnalyzeDeployment(
        cert, request.control_scope, **stage);
    // First rejection wins (it carries the witness); otherwise keep the
    // first stage's proof.
    if (merged.status == analysis::AnalysisStatus::kNotRun ||
        (!one.report.proven() && merged.proven())) {
      merged = std::move(one.report);
    }
  }
  return merged;
}

namespace {

/// Filter-table entries one stage graph of `request` consumes on its
/// router — the ACL-budget currency of *Optimal Filtering for DDoS
/// Attacks* (deny rules dominate; everything else is one entry).
std::uint32_t RulesRequired(const ServiceRequest& request) {
  switch (request.kind) {
    case ServiceKind::kDistributedFirewall:
      return static_cast<std::uint32_t>(request.deny_rules.size()) +
             (request.inbound_rate_limit_pps.has_value() ? 1u : 0u);
    case ServiceKind::kRemoteIngressFiltering:
      return std::max<std::uint32_t>(
          1, static_cast<std::uint32_t>(request.control_scope.size()));
    case ServiceKind::kAnomalyReaction:
      return 2;  // per-source limiter + aggregate backstop
    case ServiceKind::kTraceback:
    case ServiceKind::kStatistics:
      return 1;
  }
  return 1;
}

/// Filtering services promise to stop attack traffic; observation
/// services only watch it. Coverage is additionally only *required* when
/// the user asked for blanket placement — an explicitly narrowed
/// placement (one stub, a radius) is the user opting into partial
/// coverage, which the verifier reports through bounds, not rejection.
bool RequiresCoverage(const ServiceRequest& request) {
  const bool filtering =
      request.kind == ServiceKind::kRemoteIngressFiltering ||
      request.kind == ServiceKind::kDistributedFirewall ||
      request.kind == ServiceKind::kAnomalyReaction;
  return filtering && request.placement == PlacementPolicy::kAllManagedNodes;
}

}  // namespace

bool Tcsp::BuildPlanView(const ServiceRequest& request,
                         const std::vector<NodeId>& home_nodes,
                         analysis::PlanView* out) const {
  StageGraphs reference = BuildStageGraphs(
      request, LegitimateForwarderSet(net_, home_nodes));
  if (!reference.source_stage.has_value() &&
      !reference.destination_stage.has_value()) {
    return false;
  }
  const std::uint32_t rules = RulesRequired(request);
  out->budgets.assign(net_.node_count(), analysis::FilterBudget{});
  for (IspNms* nms : isps_) {
    for (NodeId node : nms->managed_nodes()) {
      out->budgets[node] = nms->node_filter_budget(node);
      if (!PlacementSelectsNode(request, net_, node)) continue;
      for (const auto* stage : {&reference.source_stage,
                                &reference.destination_stage}) {
        if (!stage->has_value()) continue;
        analysis::PlacementView placement;
        placement.node = static_cast<int>(node);
        placement.graph = BuildGraphView(**stage);
        placement.rules_required = rules;
        out->placements.push_back(std::move(placement));
      }
    }
  }
  if (out->placements.empty()) return false;
  // Attack ingress = every router with attached hosts: hosts are the
  // only packet sources in this world, so those routers are where
  // adversarial traffic enters the topology.
  std::vector<char> seen(net_.node_count(), 0);
  for (std::size_t h = 0; h < net_.host_count(); ++h) {
    const NodeId node = net_.host_node(static_cast<HostId>(h));
    if (!seen[node]) {
      seen[node] = 1;
      out->ingress_nodes.push_back(static_cast<int>(node));
    }
  }
  for (NodeId victim : home_nodes) {
    out->victim_nodes.push_back(static_cast<int>(victim));
  }
  out->require_coverage = RequiresCoverage(request);
  return true;
}

bool Tcsp::ReportUncoveredPathTraffic(SubscriberId subscriber,
                                      NodeId at_node) {
  const auto it = proven_plans_.find(subscriber);
  if (it == proven_plans_.end()) return false;
  validator_.CountPlanSoundnessViolation();
  DeviceEvent flag;
  flag.kind = EventKind::kPlanSoundness;
  flag.at = net_.Now();
  flag.node = at_node;
  flag.subscriber = subscriber;
  flag.detail =
      "attack traffic reached victim node " + std::to_string(at_node) +
      " along a path the plan verifier had proven covered";
  for (IspNms* nms : isps_) {
    nms->OnEvent(flag);
  }
  return true;
}

DeploymentReport Tcsp::RelayFallback(
    const DeploymentInstruction& instr,
    const analysis::AnalysisReport& analysis, SimTime requested_at,
    obs::SpanId deploy_span,
    const std::function<void(const DeploymentReport&)>& done) {
  stats_.relay_fallbacks++;
  if (tracer() != nullptr) {
    tracer()->Annotate(deploy_span, "path", "relayed");
  }
  DeploymentReport report;
  report.path = DeployPath::kRelayed;
  report.analysis = analysis;
  report.requested_at = requested_at;
  // The user contacts the first enrolled ISP directly; the instruction
  // floods the peer mesh from there (and anti-entropy resync catches
  // any peer a faulty relay missed).
  IspNms* entry = isps_.front();
  Status status;
  {
    obs::ScopedActivation activation(tracer(), deploy_span);
    status = entry->RelayDeploy(instr, ca_);
  }
  report.status = status;
  for (IspNms* nms : isps_) {
    IspOutcome outcome;
    outcome.isp = nms->name();
    // attempts == 0 marks ISPs reached via the mesh, not instructed
    // directly; their status is unknowable from an unreachable TCSP, so
    // only the device snapshot is reported.
    outcome.attempts = nms == entry ? 1 : 0;
    outcome.status = nms == entry ? status : Status::Ok();
    outcome.devices_configured =
        nms->CountDeployments(instr.cert.subscriber);
    if (outcome.devices_configured > 0) report.isps_configured++;
    report.devices_configured += outcome.devices_configured;
    report.isp_outcomes.push_back(std::move(outcome));
  }
  report.completed_at = net_.Now();
  if (report.status.ok()) {
    stats_.deployments_completed++;
  } else {
    stats_.deployments_failed++;
  }
  if (tracer() != nullptr) {
    tracer()->EndSpan(deploy_span, report.status.ok());
  }
  if (done) done(report);
  return report;
}

std::size_t Tcsp::ForEachStageGraph(
    SubscriberId subscriber,
    const std::function<void(NodeId, ProcessingStage, ModuleGraph&)>& fn) {
  std::size_t visited = 0;
  for (IspNms* nms : isps_) {
    for (NodeId node : nms->managed_nodes()) {
      AdaptiveDevice* device = nms->device(node);
      if (device == nullptr) continue;
      for (ProcessingStage stage : {ProcessingStage::kSourceOwner,
                                    ProcessingStage::kDestinationOwner}) {
        ModuleGraph* graph = device->StageGraph(subscriber, stage);
        if (graph != nullptr) {
          fn(node, stage, *graph);
          ++visited;
        }
      }
    }
  }
  return visited;
}

namespace {

/// Shared fan-out state for one relayed runtime operation: per-ISP
/// overwrite slots (so a duplicated request copy is idempotent) and a
/// once-only completion when the last ISP answered.
struct RuntimeOpState {
  std::vector<RuntimeOpResult> slots;
  Status worst;
  std::size_t pending = 0;
  bool final_known = false;
  Status final_status;
};

}  // namespace

Status Tcsp::SetFirewallRulesActive(
    SubscriberId subscriber, bool active,
    std::function<void(const Status&)> done) {
  if (!TcspReachable()) {
    stats_.requests_while_unreachable++;
    const Status status = Unavailable("TCSP unreachable");
    if (done) done(status);
    return status;
  }
  stats_.runtime_ops++;
  const Status none = NotFound("no firewall rules deployed for subscriber " +
                               std::to_string(subscriber));
  if (isps_.empty()) {
    if (done) done(none);
    return none;
  }
  auto state = std::make_shared<RuntimeOpState>();
  state->slots.resize(isps_.size());
  state->pending = isps_.size();
  auto done_shared =
      std::make_shared<std::function<void(const Status&)>>(std::move(done));
  for (std::size_t i = 0; i < isps_.size(); ++i) {
    IspNms* nms = isps_[i];
    ControlChannel::CallOptions opts;
    opts.retry = config_.retry;
    IspChannel(nms).Call(
        [nms, subscriber, active, state, i]() -> Status {
          state->slots[i] =
              nms->SetFirewallRulesActiveLocal(subscriber, active);
          return Status::Ok();
        },
        [state, done_shared, none](const Status& status,
                                   const CallOutcome&) {
          state->worst = WorseStatus(state->worst, status);
          if (--state->pending > 0) return;
          std::size_t touched = 0;
          for (const RuntimeOpResult& slot : state->slots) {
            touched += slot.touched;
          }
          state->final_status =
              state->worst.ok() && touched == 0 ? none : state->worst;
          state->final_known = true;
          if (*done_shared) (*done_shared)(state->final_status);
        },
        opts);
  }
  // Fault-free same-shard channels completed inline; otherwise the
  // outcome is still converging through retries and arrives via `done`.
  if (state->final_known) return state->final_status;
  return Unavailable("runtime operation in flight");
}

Status Tcsp::SetRateLimit(SubscriberId subscriber, double rate_pps,
                          std::function<void(const Status&)> done) {
  if (!TcspReachable()) {
    stats_.requests_while_unreachable++;
    const Status status = Unavailable("TCSP unreachable");
    if (done) done(status);
    return status;
  }
  stats_.runtime_ops++;
  const Status none = NotFound("no rate limiters deployed for subscriber " +
                               std::to_string(subscriber));
  if (isps_.empty()) {
    if (done) done(none);
    return none;
  }
  auto state = std::make_shared<RuntimeOpState>();
  state->slots.resize(isps_.size());
  state->pending = isps_.size();
  auto done_shared =
      std::make_shared<std::function<void(const Status&)>>(std::move(done));
  for (std::size_t i = 0; i < isps_.size(); ++i) {
    IspNms* nms = isps_[i];
    ControlChannel::CallOptions opts;
    opts.retry = config_.retry;
    IspChannel(nms).Call(
        [nms, subscriber, rate_pps, state, i]() -> Status {
          state->slots[i] = nms->SetRateLimitLocal(subscriber, rate_pps);
          return Status::Ok();
        },
        [state, done_shared, none](const Status& status,
                                   const CallOutcome&) {
          state->worst = WorseStatus(state->worst, status);
          if (--state->pending > 0) return;
          std::size_t touched = 0;
          for (const RuntimeOpResult& slot : state->slots) {
            touched += slot.touched;
          }
          state->final_status =
              state->worst.ok() && touched == 0 ? none : state->worst;
          state->final_known = true;
          if (*done_shared) (*done_shared)(state->final_status);
        },
        opts);
  }
  if (state->final_known) return state->final_status;
  return Unavailable("runtime operation in flight");
}

Result<Tcsp::StatisticsReport> Tcsp::ReadStatistics(
    SubscriberId subscriber,
    std::function<void(const Result<StatisticsReport>&)> done) {
  if (!TcspReachable()) {
    stats_.requests_while_unreachable++;
    const Result<StatisticsReport> result =
        Status(Unavailable("TCSP unreachable"));
    if (done) done(result);
    return result;
  }
  stats_.runtime_ops++;
  if (isps_.empty()) {
    const Result<StatisticsReport> result =
        Status(NotFound("no statistics service deployed"));
    if (done) done(result);
    return result;
  }
  auto state = std::make_shared<RuntimeOpState>();
  state->slots.resize(isps_.size());
  state->pending = isps_.size();
  auto done_shared = std::make_shared<
      std::function<void(const Result<StatisticsReport>&)>>(std::move(done));
  auto final_result = std::make_shared<Result<StatisticsReport>>(
      Status(Unavailable("runtime operation in flight")));
  for (std::size_t i = 0; i < isps_.size(); ++i) {
    IspNms* nms = isps_[i];
    ControlChannel::CallOptions opts;
    opts.retry = config_.retry;
    IspChannel(nms).Call(
        [nms, subscriber, state, i]() -> Status {
          state->slots[i] = nms->ReadStatisticsLocal(subscriber);
          return Status::Ok();
        },
        [state, done_shared, final_result](const Status& status,
                                           const CallOutcome&) {
          state->worst = WorseStatus(state->worst, status);
          if (--state->pending > 0) return;
          StatisticsReport report;
          for (const RuntimeOpResult& slot : state->slots) {
            report.vantage_points += slot.touched;
            report.packets += slot.packets;
            report.bytes += slot.bytes;
          }
          if (!state->worst.ok()) {
            *final_result = state->worst;
          } else if (report.vantage_points == 0) {
            *final_result = Status(NotFound("no statistics service deployed"));
          } else {
            *final_result = report;
          }
          state->final_known = true;
          if (*done_shared) (*done_shared)(*final_result);
        },
        opts);
  }
  return *final_result;
}

Result<std::string> Tcsp::ReadLogs(
    SubscriberId subscriber, std::size_t max_lines_per_device,
    std::function<void(const Result<std::string>&)> done) {
  if (!TcspReachable()) {
    stats_.requests_while_unreachable++;
    const Result<std::string> result =
        Status(Unavailable("TCSP unreachable"));
    if (done) done(result);
    return result;
  }
  stats_.runtime_ops++;
  if (isps_.empty()) {
    const Result<std::string> result =
        Status(NotFound("no logging service deployed"));
    if (done) done(result);
    return result;
  }
  auto state = std::make_shared<RuntimeOpState>();
  state->slots.resize(isps_.size());
  state->pending = isps_.size();
  auto done_shared =
      std::make_shared<std::function<void(const Result<std::string>&)>>(
          std::move(done));
  auto final_result = std::make_shared<Result<std::string>>(
      Status(Unavailable("runtime operation in flight")));
  for (std::size_t i = 0; i < isps_.size(); ++i) {
    IspNms* nms = isps_[i];
    ControlChannel::CallOptions opts;
    opts.retry = config_.retry;
    IspChannel(nms).Call(
        [nms, subscriber, max_lines_per_device, state, i]() -> Status {
          state->slots[i] =
              nms->ReadLogsLocal(subscriber, max_lines_per_device);
          return Status::Ok();
        },
        [state, done_shared, final_result](const Status& status,
                                           const CallOutcome&) {
          state->worst = WorseStatus(state->worst, status);
          if (--state->pending > 0) return;
          std::string logs;
          std::size_t loggers = 0;
          // Slots concatenate in enrolment order, so the aggregate is
          // deterministic no matter which channel answered last.
          for (const RuntimeOpResult& slot : state->slots) {
            logs += slot.logs;
            loggers += slot.touched;
          }
          if (!state->worst.ok()) {
            *final_result = state->worst;
          } else if (loggers == 0) {
            *final_result = Status(NotFound("no logging service deployed"));
          } else {
            *final_result = std::move(logs);
          }
          state->final_known = true;
          if (*done_shared) (*done_shared)(*final_result);
        },
        opts);
  }
  return *final_result;
}

Status Tcsp::RemoveService(SubscriberId subscriber) {
  if (!TcspReachable()) {
    stats_.requests_while_unreachable++;
    return Unavailable("TCSP unreachable");
  }
  bool any = false;
  for (IspNms* nms : isps_) {
    const Status status = nms->RemoveService(subscriber);
    if (status.ok()) any = true;
  }
  if (any) proven_plans_.erase(subscriber);
  return any ? Status::Ok()
             : NotFound("subscriber has no deployments anywhere");
}

}  // namespace adtc
