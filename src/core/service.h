// High-level traffic-control services and their mapping onto module
// graphs ("The TCSP maps the request to service components", Sec. 5.1).
//
// A ServiceRequest is what the network user expresses; BuildStageGraphs()
// turns it into per-device source/destination stage graphs. Services:
//
//  * RemoteIngressFiltering — the paper's headline defence (Sec. 4.3):
//    anti-spoof modules at customer edges worldwide drop packets that
//    spoof the subscriber's addresses. Deployed in the *source-owner*
//    stage: spoofed packets carry the victim's address as src, so the
//    victim is their (source-)owner and may control them.
//  * DistributedFirewall — deny rules + optional rate limit on traffic
//    *to* the subscriber (destination-owner stage).
//  * Traceback — SPIE-style digest stores on the owner's traffic.
//  * Statistics — counters plus sampled logging.
//  * AnomalyReaction — trigger that activates a pre-staged rate limit.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/module_graph.h"
#include "core/modules/antispoof.h"
#include "core/modules/basic.h"
#include "core/modules/match.h"
#include "core/modules/observe.h"
#include "core/modules/rate_limit.h"
#include "core/modules/traceback.h"

namespace adtc {

enum class ServiceKind : std::uint8_t {
  kRemoteIngressFiltering,
  kDistributedFirewall,
  kTraceback,
  kStatistics,
  kAnomalyReaction,
};

std::string_view ServiceKindName(ServiceKind kind);

/// Where the TCSP should place the service ("The network user may scope
/// the deployment according to different criteria (e.g. only on border
/// routers of stub networks)", Sec. 5.1).
enum class PlacementPolicy : std::uint8_t {
  kAllManagedNodes,
  kStubNodesOnly,     // border routers of stub networks
  kTransitNodesOnly,  // backbone vantage points
  kWithinRadius,      // ASes within `placement_radius` hops of the scope's
                      // home (local protection perimeter)
  kExplicitNodes,     // exactly the ASes in `placement_nodes`
};

struct ServiceRequest {
  ServiceKind kind = ServiceKind::kDistributedFirewall;
  PlacementPolicy placement = PlacementPolicy::kAllManagedNodes;

  /// Prefixes whose traffic the service controls; must lie inside the
  /// subscriber's certificate (the validator rejects otherwise).
  std::vector<Prefix> control_scope;

  /// kWithinRadius: hop distance from the scope's home ASes.
  std::uint32_t placement_radius = 2;
  /// kExplicitNodes: the requested ASes.
  std::vector<NodeId> placement_nodes;

  // --- distributed firewall ---
  std::vector<MatchRule> deny_rules;
  std::optional<double> inbound_rate_limit_pps;
  /// Prepends a StatisticsModule to the firewall stage so the *offered*
  /// (pre-filter) load stays observable while mitigation is installed —
  /// the detection controller's withdrawal decision reads it (a counter
  /// placed after the limiter would only ever see the capped rate and
  /// the controller would flap under a sustained attack).
  bool observe_offered_load = false;

  // --- anomaly reaction ---
  TriggerModule::Config trigger;
  /// Per-source rate limit activated when the trigger fires.
  double reaction_rate_limit_pps = 1000.0;
  /// The aggregate backstop engages at reaction_rate x this factor —
  /// the line of defence against spoofed-source floods.
  double reaction_aggregate_factor = 10.0;

  // --- traceback ---
  TracebackStoreModule::Config traceback;

  // --- statistics ---
  std::uint32_t log_sample_one_in = 16;
  std::size_t log_capacity = 4096;
};

/// Per-device graphs for a request. Either stage may be absent.
struct StageGraphs {
  std::optional<ModuleGraph> source_stage;
  std::optional<ModuleGraph> destination_stage;
};

/// Builds the module graphs the request needs on a device at `node`.
/// `home_nodes` are the ASes that legitimately originate the protected
/// prefixes (the subscriber's uplinks) — required by ingress filtering to
/// exempt the owner's real traffic.
StageGraphs BuildStageGraphs(const ServiceRequest& request,
                             const std::vector<NodeId>& home_nodes);

/// True if the policy selects a node of the given role.
/// (Role-based policies only; radius/explicit policies need the request
/// context — use PlacementSelectsNode.)
bool PlacementSelects(PlacementPolicy policy, NodeRole role);

/// Full placement decision for a node under a request (handles the
/// radius and explicit-list policies; falls back to the role policies).
bool PlacementSelectsNode(const ServiceRequest& request, const Network& net,
                          NodeId node);

/// Home nodes plus every AS on their provider chains (reached by
/// following customer->provider links upward). This is the set of
/// customer edges that may legitimately carry the owner's addresses as
/// source — the anti-spoof exemption set.
std::vector<NodeId> LegitimateForwarderSet(
    const Network& net, const std::vector<NodeId>& home_nodes);

}  // namespace adtc
