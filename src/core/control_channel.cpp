#include "core/control_channel.h"

#include <algorithm>

namespace adtc {

SimDuration RetryPolicy::BackoffAfter(std::size_t attempt,
                                      Rng& rng) const {
  double base = static_cast<double>(std::max<SimDuration>(initial_backoff, 0));
  const double cap = static_cast<double>(std::max<SimDuration>(max_backoff, 0));
  for (std::size_t i = 1; i < attempt && base < cap; ++i) {
    base *= std::max(multiplier, 1.0);
  }
  base = std::min(base, cap);
  const double j = std::clamp(jitter, 0.0, 1.0);
  const double factor = 1.0 - j + 2.0 * j * rng.NextDouble();
  return static_cast<SimDuration>(base * factor);
}

struct ControlChannel::CallState {
  std::function<Status()> request;
  std::function<void(const Status&, const CallOutcome&)> done;
  CallOptions opts;
  SimTime start = 0;
  CallOutcome outcome;
  bool completed = false;
};

ControlChannel::ControlChannel(Simulator& sim, Rng& rng, std::string name,
                               FaultInjector* injector,
                               std::function<bool()> remote_up)
    : sim_(sim),
      rng_(rng),
      name_(std::move(name)),
      injector_(injector),
      remote_up_(std::move(remote_up)) {}

void ControlChannel::Call(
    std::function<Status()> request,
    std::function<void(const Status&, const CallOutcome&)> done,
    const CallOptions& options) {
  // Fault-free zero-latency channels are plain function calls — the
  // default (kImmediate, no injector) control plane stays synchronous.
  if (injector_ == nullptr && options.request_latency == 0 &&
      options.response_latency == 0) {
    CallOutcome outcome;
    outcome.attempts = 1;
    outcome.messages_sent = 1;
    const Status status = (remote_up_ && !remote_up_())
                              ? Unavailable("remote down on " + name_)
                              : request();
    done(status, outcome);
    return;
  }
  auto state = std::make_shared<CallState>();
  state->request = std::move(request);
  state->done = std::move(done);
  state->opts = options;
  state->start = sim_.Now();
  TryAttempt(state);
}

void ControlChannel::TryAttempt(const std::shared_ptr<CallState>& state) {
  if (state->completed) return;
  state->outcome.attempts++;
  SendRequestCopies(state);
  // Retry timer: one round trip plus this attempt's backoff. If the
  // response arrives first the timer no-ops; if it fires first we either
  // retry or give up (attempt budget / deadline).
  const SimDuration rto =
      state->opts.request_latency + state->opts.response_latency +
      state->opts.retry.BackoffAfter(state->outcome.attempts, rng_);
  sim_.ScheduleAfter(rto, [this, state] {
    if (state->completed) return;
    const RetryPolicy& retry = state->opts.retry;
    const bool budget_spent = state->outcome.attempts >= retry.max_attempts;
    const bool past_deadline =
        sim_.Now() - state->start >= retry.deadline;
    if (budget_spent || past_deadline) {
      state->outcome.deadline_expired = past_deadline;
      Complete(state,
               Unavailable("no response on " + name_ + " after " +
                           std::to_string(state->outcome.attempts) +
                           " attempts"));
      return;
    }
    TryAttempt(state);
  });
}

void ControlChannel::SendRequestCopies(
    const std::shared_ptr<CallState>& state) {
  MessageFate fate;
  if (injector_ != nullptr) fate = injector_->PlanMessage(name_);
  state->outcome.messages_sent++;
  if (fate.deliver) {
    sim_.ScheduleAfter(state->opts.request_latency + fate.extra_delay,
                       [this, state] { DeliverRequest(state); });
  }
  if (fate.duplicate) {
    state->outcome.messages_sent++;
    sim_.ScheduleAfter(
        state->opts.request_latency + fate.duplicate_delay,
        [this, state] { DeliverRequest(state); });
  }
}

void ControlChannel::DeliverRequest(
    const std::shared_ptr<CallState>& state) {
  // A dead remote blackholes the message; the retry timer notices.
  if (remote_up_ && !remote_up_()) return;
  // Duplicated / retried copies execute the handler again on purpose —
  // exactly-once *effects* are the remote's job (DeploymentId dedup).
  const Status status = state->request();
  MessageFate fate;
  if (injector_ != nullptr) fate = injector_->PlanMessage(name_);
  if (fate.deliver) {
    sim_.ScheduleAfter(state->opts.response_latency + fate.extra_delay,
                       [this, state, status] { Complete(state, status); });
  }
  if (fate.duplicate) {
    sim_.ScheduleAfter(
        state->opts.response_latency + fate.duplicate_delay,
        [this, state, status] { Complete(state, status); });
  }
}

void ControlChannel::Complete(const std::shared_ptr<CallState>& state,
                              const Status& status) {
  if (state->completed) return;
  state->completed = true;
  state->done(status, state->outcome);
}

void ControlChannel::Send(std::function<void()> deliver,
                          SimDuration latency) {
  if (injector_ == nullptr && latency == 0) {
    deliver();
    return;
  }
  MessageFate fate;
  if (injector_ != nullptr) fate = injector_->PlanMessage(name_);
  if (fate.deliver) {
    sim_.ScheduleAfter(latency + fate.extra_delay, deliver);
  }
  if (fate.duplicate) {
    sim_.ScheduleAfter(latency + fate.duplicate_delay, std::move(deliver));
  }
}

}  // namespace adtc
