#include "core/control_channel.h"

#include <algorithm>

namespace adtc {

SimDuration RetryPolicy::BackoffAfter(std::size_t attempt,
                                      Rng& rng) const {
  double base = static_cast<double>(std::max<SimDuration>(initial_backoff, 0));
  const double cap = static_cast<double>(std::max<SimDuration>(max_backoff, 0));
  for (std::size_t i = 1; i < attempt && base < cap; ++i) {
    base *= std::max(multiplier, 1.0);
  }
  base = std::min(base, cap);
  const double j = std::clamp(jitter, 0.0, 1.0);
  const double factor = 1.0 - j + 2.0 * j * rng.NextDouble();
  return static_cast<SimDuration>(base * factor);
}

struct ControlChannel::CallState {
  std::function<Status()> request;
  std::function<void(const Status&, const CallOutcome&)> done;
  CallOptions opts;
  SimTime start = 0;
  CallOutcome outcome;
  bool completed = false;
  /// Tracing state (kNoSpan when the call is untraced): the per-call
  /// root span and the currently open per-try span.
  obs::SpanId call_span = obs::kNoSpan;
  obs::SpanId attempt_span = obs::kNoSpan;
};

ControlChannel::ControlChannel(ShardRef local, ShardRef remote, Rng& rng,
                               std::string name, FaultInjector* injector,
                               std::function<bool()> remote_up)
    : local_(local),
      remote_(remote),
      rng_(rng),
      name_(std::move(name)),
      injector_(injector),
      remote_up_(std::move(remote_up)) {}

obs::SpanId ControlChannel::StartCallSpan(const CallOptions& options) {
  if (tracer_ == nullptr || !options.trace.valid()) return obs::kNoSpan;
  const obs::SpanId span =
      tracer_->StartSpan("ctrl.call", options.trace.parent_span);
  if (span != obs::kNoSpan) {
    tracer_->Annotate(span, "channel", name_);
    AnnotateTrace(tracer_, span, options.trace);
  }
  return span;
}

void ControlChannel::Call(
    std::function<Status()> request,
    std::function<void(const Status&, const CallOutcome&)> done,
    const CallOptions& options) {
  // Fault-free zero-latency same-shard channels are plain function
  // calls — the default (kImmediate, no injector) control plane stays
  // synchronous.
  if (injector_ == nullptr && options.request_latency == 0 &&
      options.response_latency == 0 && local_.SameShard(remote_)) {
    const obs::SpanId call_span = StartCallSpan(options);
    obs::SpanId attempt_span = obs::kNoSpan;
    if (call_span != obs::kNoSpan) {
      attempt_span = tracer_->StartSpan("ctrl.attempt", call_span);
      Annotate(attempt_span, "channel", name_);
      Annotate(attempt_span, "attempt", "1");
      AnnotateTrace(tracer_, attempt_span, options.trace);
    }
    CallOutcome outcome;
    outcome.attempts = 1;
    outcome.messages_sent = 1;
    Status status;
    if (remote_up_ && !remote_up_()) {
      status = Unavailable("remote down on " + name_);
      Annotate(attempt_span, "remote", "down");
    } else {
      const obs::ScopedActivation activation(tracer_, attempt_span);
      status = request();
    }
    EndSpan(attempt_span, status.ok());
    Annotate(call_span, "attempts", "1");
    EndSpan(call_span, status.ok());
    done(status, outcome);
    return;
  }
  auto state = std::make_shared<CallState>();
  state->request = std::move(request);
  state->done = std::move(done);
  state->opts = options;
  state->start = local_.Now();
  state->call_span = StartCallSpan(options);
  TryAttempt(state);
}

void ControlChannel::TryAttempt(const std::shared_ptr<CallState>& state) {
  if (state->completed) return;
  // A still-open previous attempt span means its response never came
  // back before the retry timer fired — close it as failed.
  EndSpan(state->attempt_span, false);
  state->attempt_span = obs::kNoSpan;
  state->outcome.attempts++;
  if (state->call_span != obs::kNoSpan) {
    state->attempt_span =
        tracer_->StartSpan("ctrl.attempt", state->call_span);
    Annotate(state->attempt_span, "channel", name_);
    Annotate(state->attempt_span, "attempt",
             std::to_string(state->outcome.attempts));
    AnnotateTrace(tracer_, state->attempt_span, state->opts.trace);
  }
  SendRequestCopies(state);
  // Retry timer: one round trip plus this attempt's backoff. If the
  // response arrives first the timer no-ops; if it fires first we either
  // retry or give up (attempt budget / deadline).
  const SimDuration rto =
      state->opts.request_latency + state->opts.response_latency +
      state->opts.retry.BackoffAfter(state->outcome.attempts, rng_);
  local_.PostIn(rto, [this, state] {
    if (state->completed) return;
    const RetryPolicy& retry = state->opts.retry;
    const bool budget_spent = state->outcome.attempts >= retry.max_attempts;
    const bool past_deadline =
        local_.Now() - state->start >= retry.deadline;
    if (budget_spent || past_deadline) {
      state->outcome.deadline_expired = past_deadline;
      Complete(state,
               Unavailable("no response on " + name_ + " after " +
                           std::to_string(state->outcome.attempts) +
                           " attempts"));
      return;
    }
    TryAttempt(state);
  });
}

void ControlChannel::SendRequestCopies(
    const std::shared_ptr<CallState>& state) {
  MessageFate fate;
  if (injector_ != nullptr) fate = injector_->PlanMessage(name_);
  state->outcome.messages_sent++;
  // The fault outcome of this try's request leg, as the injector decided
  // it — the forensic record of *why* a deployment needed retries.
  Annotate(state->attempt_span, "request",
           fate.deliver ? "delivered" : "lost");
  if (fate.duplicate) Annotate(state->attempt_span, "request_dup", "1");
  // A late copy of this attempt can arrive after the next attempt has
  // opened; capture the span now so the delivery stays attributed to the
  // try that sent it.
  const obs::SpanId attempt_span = state->attempt_span;
  // Request legs leave the local shard now and land on the remote shard;
  // the arrival instant is computed from the *local* clock (the only one
  // this thread may read) — exactly a cross-shard link's semantics.
  const SimTime now = local_.Now();
  if (fate.deliver) {
    remote_.Post(
        now + state->opts.request_latency + fate.extra_delay,
        [this, state, attempt_span] { DeliverRequest(state, attempt_span); });
  }
  if (fate.duplicate) {
    state->outcome.messages_sent++;
    remote_.Post(
        now + state->opts.request_latency + fate.duplicate_delay,
        [this, state, attempt_span] { DeliverRequest(state, attempt_span); });
  }
}

void ControlChannel::DeliverRequest(const std::shared_ptr<CallState>& state,
                                    obs::SpanId attempt_span) {
  // A dead remote blackholes the message; the retry timer notices.
  if (remote_up_ && !remote_up_()) {
    Annotate(attempt_span, "remote", "down");
    return;
  }
  // Duplicated / retried copies execute the handler again on purpose —
  // exactly-once *effects* are the remote's job (DeploymentId dedup).
  // The attempt span is active while the handler runs so remote-side
  // spans (nms.deploy, device.install) parent under the delivering try.
  Status status;
  {
    const obs::ScopedActivation activation(tracer_, attempt_span);
    status = state->request();
  }
  MessageFate fate;
  if (injector_ != nullptr) fate = injector_->PlanMessage(name_);
  if (!fate.deliver) Annotate(attempt_span, "response", "lost");
  // Response legs run on the remote shard, so the departure instant is
  // the remote clock; completion lands back on the caller's shard.
  const SimTime now = remote_.Now();
  if (fate.deliver) {
    local_.Post(now + state->opts.response_latency + fate.extra_delay,
                [this, state, status] { Complete(state, status); });
  }
  if (fate.duplicate) {
    local_.Post(now + state->opts.response_latency + fate.duplicate_delay,
                [this, state, status] { Complete(state, status); });
  }
}

void ControlChannel::Complete(const std::shared_ptr<CallState>& state,
                              const Status& status) {
  if (state->completed) return;
  state->completed = true;
  EndSpan(state->attempt_span, status.ok());
  if (state->call_span != obs::kNoSpan) {
    Annotate(state->call_span, "attempts",
             std::to_string(state->outcome.attempts));
    Annotate(state->call_span, "messages",
             std::to_string(state->outcome.messages_sent));
    if (state->outcome.deadline_expired) {
      Annotate(state->call_span, "deadline", "expired");
    }
    EndSpan(state->call_span, status.ok());
  }
  state->done(status, state->outcome);
}

void ControlChannel::Send(std::function<void()> deliver, SimDuration latency,
                          obs::TraceContext trace) {
  obs::SpanId span = obs::kNoSpan;
  if (tracer_ != nullptr && trace.valid()) {
    span = tracer_->StartSpan("ctrl.send", trace.parent_span);
    Annotate(span, "channel", name_);
    if (span != obs::kNoSpan) AnnotateTrace(tracer_, span, trace);
  }
  if (injector_ == nullptr && latency == 0 && local_.SameShard(remote_)) {
    Annotate(span, "fate", "delivered");
    EndSpan(span, true);
    const obs::ScopedActivation activation(tracer_, span);
    deliver();
    return;
  }
  MessageFate fate;
  if (injector_ != nullptr) fate = injector_->PlanMessage(name_);
  Annotate(span, "fate", fate.deliver
                             ? (fate.duplicate ? "duplicated" : "delivered")
                             : "lost");
  // The span closes when the message's fate is sealed, not when the
  // delayed delivery runs — a one-way send has no response to wait for.
  // Delivery callbacks still activate it so remote spans parent here.
  EndSpan(span, fate.deliver);
  const SimTime now = local_.Now();
  if (fate.deliver) {
    remote_.Post(now + latency + fate.extra_delay, [this, span, deliver] {
      const obs::ScopedActivation activation(tracer_, span);
      deliver();
    });
  }
  if (fate.duplicate) {
    remote_.Post(now + latency + fate.duplicate_delay,
                 [this, span, deliver = std::move(deliver)] {
                   const obs::ScopedActivation activation(tracer_, span);
                   deliver();
                 });
  }
}

}  // namespace adtc
