#include "core/component.h"

#include "net/network.h"

namespace adtc {

std::uint64_t DeviceContext::RouterForwardedPackets() const {
  if (net == nullptr || node == kInvalidNode) return 0;
  return net->node(node).forwarded;
}

std::uint64_t DeviceContext::RouterFilteredPackets() const {
  if (net == nullptr || node == kInvalidNode) return 0;
  return net->node(node).filtered;
}

double DeviceContext::RouterDropShare() const {
  if (net == nullptr || node == kInvalidNode) return 0.0;
  std::uint64_t forwarded = 0;
  std::uint64_t dropped = 0;
  for (const auto& [neighbour, link] : net->node(node).neighbours) {
    (void)neighbour;
    forwarded += net->link(link).stats.forwarded_packets;
    dropped += net->link(link).stats.dropped_packets;
  }
  const std::uint64_t total = forwarded + dropped;
  return total > 0 ? static_cast<double>(dropped) /
                         static_cast<double>(total)
                   : 0.0;
}

}  // namespace adtc
