// The misuse-prevention layer of Sec. 4.5.
//
// Two halves:
//  * SafetyValidator — static admission control run at install time:
//    ownership scoping (the fundamental rule: control only over owned
//    traffic), vetted module types, graph well-formedness, bounded
//    management-plane overhead, resource caps — and, on top, the static
//    dataflow verifier (src/analysis/verifier.h): abstract interpretation
//    over the module graph proving the Sec. 4.5 invariants (no rate or
//    byte amplification on any path, no header mutation reachable,
//    context requirements met) from the modules' declared effect
//    signatures, yielding a machine-readable AnalysisReport with witness
//    paths for every rejection.
//  * SafetyGuard — runtime invariant enforcement around every module-graph
//    execution: source/destination/TTL immutability and no-size-growth.
//    A violating deployment is quarantined (fails open to plain
//    forwarding) and the operator is notified — the network stays
//    manageable by the network operator no matter what a subscriber
//    installs. Because admission already *proved* those properties from
//    the declared signatures, any runtime violation means a module lied —
//    the guard doubles as a continuous soundness oracle for the analyzer
//    (counted in analysis.soundness_violations).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "analysis/network_verifier.h"
#include "analysis/verifier.h"
#include "common/result.h"
#include "core/certificate.h"
#include "core/module_graph.h"
#include "obs/metrics_registry.h"

namespace adtc {

class Network;

struct SafetyLimits {
  std::uint32_t max_modules_per_graph = 32;
  /// Cap on declared per-packet management overhead (bytes) per graph —
  /// the "reasonable amount of additional traffic" allowance.
  std::uint32_t max_overhead_bytes_per_packet = 64;
  /// Redirect-scope prefixes per deployment (device table headroom).
  std::uint32_t max_scope_prefixes = 64;
};

/// Admission counters, exported through the obs registry as "analysis.*"
/// by whoever owns the validator (the Tcsp registers the collector).
struct AnalysisStats {
  obs::Counter graphs_verified;   // admissions that ended in a proof
  obs::Counter graphs_rejected;   // admissions rejected (any reason)
  obs::Counter violations_found;  // individual invariant violations
  /// Runtime guard contradicted a statically-proven property — a module
  /// lied in its effect signature. The analyzer's soundness oracle.
  obs::Counter soundness_violations;
  /// Network-wide plan analyses (analysis/network_verifier.h) that ended
  /// in a proof / a rejection at TCSP admission.
  obs::Counter plans_verified;
  obs::Counter plans_rejected;
  /// Observed attack traffic reached a victim along a path the plan
  /// verifier had proven covered — the plan analyzer's soundness oracle.
  obs::Counter plan_soundness_violations;
};

/// Full admission outcome: the Status callers gate on plus the verifier's
/// machine-readable report (bounds, violations, witness paths), which the
/// TCSP attaches to the DeploymentReport.
struct DeploymentAnalysis {
  Status status;
  analysis::AnalysisReport report;
};

/// Snapshots a validated graph's wiring and the modules' declared effect
/// signatures into the verifier's structural view.
analysis::GraphView BuildGraphView(const ModuleGraph& graph);

/// Snapshots the routed topology into the plan verifier's structural
/// view (flattened next-hop table + "AS<n>" names). Requires
/// FinalizeRouting() to have run.
analysis::NetworkView BuildNetworkView(const Network& net);

class SafetyValidator {
 public:
  explicit SafetyValidator(SafetyLimits limits = {});

  /// The vetted module catalog ("new service modules ... must be checked
  /// for security compliance before deployment"). Types not on the list
  /// are rejected outright.
  void VetModuleType(std::string type_name);
  bool IsVetted(std::string_view type_name) const;

  /// Admission check for a deployment:
  ///  1. every scope prefix lies inside the certificate's address space;
  ///  2. the graph validated (complete, acyclic) and within module caps;
  ///  3. every module type is vetted;
  ///  4. the static verifier proves the Sec. 4.5 invariants over every
  ///     entry->terminal path under `ctx` (see analysis/verifier.h) —
  ///     including the per-path overhead allowance, which subsumes the
  ///     old whole-graph TotalDeclaredOverhead() cap.
  /// The returned report is kNotRun when a pre-analysis check (1-3)
  /// already rejected the deployment.
  DeploymentAnalysis AnalyzeDeployment(
      const OwnershipCertificate& cert, const std::vector<Prefix>& scope,
      const ModuleGraph& graph,
      const analysis::AnalysisContext& ctx = {}) const;

  /// Status-only convenience over AnalyzeDeployment (no context
  /// guarantee: transit packets assumed reachable, the safe default).
  Status ValidateDeployment(const OwnershipCertificate& cert,
                            const std::vector<Prefix>& scope,
                            const ModuleGraph& graph) const;

  const SafetyLimits& limits() const { return limits_; }

  /// Runs the network-wide plan verifier and counts the outcome in the
  /// "analysis.plans_*" registry cells. kNotRun plans count as neither.
  analysis::PlanReport AnalyzePlan(const analysis::NetworkView& net_view,
                                   const analysis::PlanView& plan,
                                   const analysis::PlanLimits& limits = {})
      const;

  const AnalysisStats& analysis_stats() const { return stats_; }
  /// Called by the management plane when the runtime guard quarantines a
  /// deployment the analyzer had proven safe (see NMS event handling).
  void CountSoundnessViolation() const { ++stats_.soundness_violations; }
  /// Called when uncovered-path traffic is observed against a plan the
  /// network verifier had proven covered (see Tcsp event handling).
  void CountPlanSoundnessViolation() const {
    ++stats_.plan_soundness_violations;
  }

 private:
  SafetyLimits limits_;
  std::unordered_set<std::string> vetted_;
  /// Mutable: admission is logically const (no validator state changes),
  /// the counters are telemetry.
  mutable AnalysisStats stats_;
};

/// Returns a validator pre-loaded with the standard module catalog.
SafetyValidator MakeStandardValidator(SafetyLimits limits = {});

/// Wire-field snapshot for the runtime immutability check.
struct PacketInvariants {
  Ipv4Address src;
  Ipv4Address dst;
  std::uint8_t ttl = 0;
  std::uint32_t size_bytes = 0;

  static PacketInvariants Capture(const Packet& packet) {
    return {packet.src, packet.dst, packet.ttl, packet.size_bytes};
  }
};

enum class InvariantViolation : std::uint8_t {
  kNone = 0,
  kSourceModified,
  kDestinationModified,
  kTtlModified,
  kSizeIncreased,
  kCount_,
};

std::string_view InvariantViolationName(InvariantViolation violation);

/// Compares the packet against its pre-execution snapshot and *restores*
/// violated fields (the packet continues as if untouched). Returns the
/// first violation found.
InvariantViolation EnforceInvariants(const PacketInvariants& before,
                                  Packet& packet);

}  // namespace adtc
