// The misuse-prevention layer of Sec. 4.5.
//
// Two halves:
//  * SafetyValidator — static admission control run at install time:
//    ownership scoping (the fundamental rule: control only over owned
//    traffic), vetted module types, graph well-formedness, bounded
//    management-plane overhead, resource caps.
//  * SafetyGuard — runtime invariant enforcement around every module-graph
//    execution: source/destination/TTL immutability and no-size-growth.
//    A violating deployment is quarantined (fails open to plain
//    forwarding) and the operator is notified — the network stays
//    manageable by the network operator no matter what a subscriber
//    installs.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "core/certificate.h"
#include "core/module_graph.h"

namespace adtc {

struct SafetyLimits {
  std::uint32_t max_modules_per_graph = 32;
  /// Cap on declared per-packet management overhead (bytes) per graph —
  /// the "reasonable amount of additional traffic" allowance.
  std::uint32_t max_overhead_bytes_per_packet = 64;
  /// Redirect-scope prefixes per deployment (device table headroom).
  std::uint32_t max_scope_prefixes = 64;
};

class SafetyValidator {
 public:
  explicit SafetyValidator(SafetyLimits limits = {});

  /// The vetted module catalog ("new service modules ... must be checked
  /// for security compliance before deployment"). Types not on the list
  /// are rejected outright.
  void VetModuleType(std::string type_name);
  bool IsVetted(std::string_view type_name) const;

  /// Admission check for a deployment:
  ///  1. every scope prefix lies inside the certificate's address space;
  ///  2. the graph validated (complete, acyclic) and within module caps;
  ///  3. every module type is vetted;
  ///  4. total declared overhead within the allowance.
  Status ValidateDeployment(const OwnershipCertificate& cert,
                            const std::vector<Prefix>& scope,
                            const ModuleGraph& graph) const;

  const SafetyLimits& limits() const { return limits_; }

 private:
  SafetyLimits limits_;
  std::unordered_set<std::string> vetted_;
};

/// Returns a validator pre-loaded with the standard module catalog.
SafetyValidator MakeStandardValidator(SafetyLimits limits = {});

/// Wire-field snapshot for the runtime immutability check.
struct PacketInvariants {
  Ipv4Address src;
  Ipv4Address dst;
  std::uint8_t ttl = 0;
  std::uint32_t size_bytes = 0;

  static PacketInvariants Capture(const Packet& packet) {
    return {packet.src, packet.dst, packet.ttl, packet.size_bytes};
  }
};

enum class InvariantViolation : std::uint8_t {
  kNone = 0,
  kSourceModified,
  kDestinationModified,
  kTtlModified,
  kSizeIncreased,
};

std::string_view InvariantViolationName(InvariantViolation violation);

/// Compares the packet against its pre-execution snapshot and *restores*
/// violated fields (the packet continues as if untouched). Returns the
/// first violation found.
InvariantViolation EnforceInvariants(const PacketInvariants& before,
                                  Packet& packet);

}  // namespace adtc
