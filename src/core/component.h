// The component model of the adaptive device (Sec. 5.2): services are
// composed of components "arranged as directed graphs", each performing
// some well-defined packet processing, with functionality restricted as
// described in Sec. 4.5.
//
// A Module inspects (and within safety limits transforms) one packet and
// returns an output port; the ModuleGraph routes the packet to the next
// module or to a terminal (accept/drop). Mutation of src/dst/TTL is
// forbidden — declared here, enforced at runtime by the AdaptiveDevice's
// safety guard regardless of what a module actually does.
#pragma once

#include <cstdint>
#include <string_view>

#include "analysis/effects.h"
#include "common/drop_reason.h"
#include "common/types.h"
#include "common/units.h"
#include "core/events.h"
#include "net/packet.h"
#include "net/router.h"

namespace adtc {

/// Which half of the two-stage pipeline is running (Sec. 4.1/Fig. 6):
/// stage 1 acts for the owner of the source address, stage 2 for the
/// owner of the destination address.
enum class ProcessingStage : std::uint8_t { kSourceOwner, kDestinationOwner };

/// Everything a module may consult besides the packet itself. Includes
/// the "contextual information depending on where [the device] is
/// attached to the network" (Sec. 4.2): node, AS role, arrival edge type.
struct DeviceContext {
  Network* net = nullptr;
  NodeId node = kInvalidNode;
  NodeRole role = NodeRole::kStub;
  LinkKind in_kind = LinkKind::kPeer;
  /// For packets arriving from another AS: the neighbouring node the
  /// packet came from (kInvalidNode for access links / injected traffic).
  NodeId in_from_node = kInvalidNode;
  SimTime now = 0;
  SubscriberId subscriber = kInvalidSubscriber;
  ProcessingStage stage = ProcessingStage::kSourceOwner;
  /// Event channel to the management plane (may be null in benches).
  EventSink* events = nullptr;

  /// True if the packet entered this router from a customer or directly
  /// attached host (the only place anti-spoofing may act; transit traffic
  /// must never be source-checked, Sec. 4.2).
  bool FromCustomerEdge() const { return IsCustomerEdgeKind(in_kind); }

  // --- router telemetry (Sec. 4.2) ----------------------------------------
  // "if made available by the network operator, the router's state and
  //  configuration (e.g. static routing information, packet drop rates,
  //  congestion parameters, traffic mix, router load etc.) can also be
  //  provided."

  /// Packets the hosting router forwarded so far (router load).
  std::uint64_t RouterForwardedPackets() const;
  /// Packets dropped by processors at this router.
  std::uint64_t RouterFilteredPackets() const;
  /// Queue-drop share across the router's outgoing links:
  /// dropped / (forwarded + dropped), 0 when idle — a congestion signal.
  double RouterDropShare() const;

  void Emit(EventKind kind, std::string detail, double value = 0.0) const {
    if (events == nullptr) return;
    DeviceEvent event;
    event.kind = kind;
    event.at = now;
    event.node = node;
    event.subscriber = subscriber;
    event.detail = std::move(detail);
    event.value = value;
    events->OnEvent(event);
  }
};

/// Conventional port meanings (modules may define more).
inline constexpr int kPortDefault = 0;  // "pass" / "no match"
inline constexpr int kPortAlt = 1;      // "match" / "exceeded"

/// How a module's behaviour relates to the flow verdict cache.
///
/// A flow here is the exact tuple (src, dst, proto, src_port, dst_port,
/// arrival-edge kind, arrival neighbour) — everything a pure module may
/// branch on. Against that key:
///
///  - kPure:          the port chosen depends only on the flow key and the
///                    module's *configuration* (which bumps the config
///                    revision when mutated). Packet left unmodified.
///  - kPureTransform: like kPure, but the module rewrites the packet in a
///                    flow-deterministic way that the cache can replay
///                    (today: payload truncation to `cache_truncate_to()`).
///  - kStateful:      anything else — counters feeding triggers, rate
///                    limiters, samplers, traceback stores, loggers. A
///                    single stateful module on the executed path makes the
///                    whole verdict uncacheable.
///
/// The conservative default is kStateful: a module must opt in to being
/// cached, never the reverse.
enum class Cacheability : std::uint8_t { kPure, kPureTransform, kStateful };

class Module {
 public:
  virtual ~Module() = default;

  /// Processes one packet; returns the output port the packet leaves on
  /// (< port_count()).
  virtual int OnPacket(Packet& packet, const DeviceContext& ctx) = 0;

  virtual std::string_view type_name() const = 0;
  virtual int port_count() const { return 1; }

  /// Upper bound on extra management-plane bytes this module may emit per
  /// processed packet (log records, trigger events). The safety validator
  /// caps the per-graph sum (Sec. 4.5, footnote 1: only "a reasonable
  /// amount of additional traffic" for logging/statistics/triggers).
  virtual std::uint32_t declared_overhead_bytes() const { return 0; }

  /// Whether a verdict involving this module may be served from the flow
  /// cache. See Cacheability; the default deliberately disables caching.
  virtual Cacheability cacheability() const { return Cacheability::kStateful; }

  /// The taxonomy entry recorded when a packet reaches the drop terminal
  /// through this module — how the forensic flight recorder and the
  /// per-reason drop counters attribute the kill. Policy modules that
  /// have a more specific family (blacklist, rate-limit, anti-spoof, ...)
  /// override this; kModulePolicy is the honest generic default.
  virtual DatapathDropReason drop_reason() const {
    return DatapathDropReason::kModulePolicy;
  }

  /// For kPureTransform modules: the packet size (bytes) the module
  /// truncates payloads to, so a cache hit can replay the transform
  /// without running the module. Ignored for other cacheability classes.
  virtual std::uint32_t cache_truncate_to() const { return 0; }

  /// The module type's declared worst-case effects — what the admission
  /// verifier (src/analysis/verifier.h) composes to prove the Sec. 4.5
  /// invariants over the whole graph before deployment. Like
  /// declared_overhead_bytes(), this is a *claim*: an honest signature
  /// makes the static proof sound, a lying one is caught by the runtime
  /// safety guard and flagged as an analyzer-soundness violation.
  ///
  /// The default derives the most conservative honest signature from the
  /// traits above: no header writes, no duplication, overhead as
  /// declared, stateful iff not cacheable-pure.
  virtual analysis::EffectSignature effect_signature() const {
    analysis::EffectSignature sig;
    sig.overhead_bytes_max = declared_overhead_bytes();
    sig.stateful = cacheability() == Cacheability::kStateful;
    return sig;
  }

  /// Called by ModuleGraph::AddModule to hand the module the graph's
  /// shared config-revision cell. Modules that allow post-deployment
  /// reconfiguration (blacklist edits, rule toggles) must call
  /// BumpConfigRevision() from every mutator so cached verdicts derived
  /// from the old configuration are invalidated.
  void BindConfigRevision(std::uint64_t* cell) { config_revision_ = cell; }

 protected:
  void BumpConfigRevision() {
    if (config_revision_ != nullptr) ++*config_revision_;
  }

 private:
  std::uint64_t* config_revision_ = nullptr;
};

}  // namespace adtc
