// The component model of the adaptive device (Sec. 5.2): services are
// composed of components "arranged as directed graphs", each performing
// some well-defined packet processing, with functionality restricted as
// described in Sec. 4.5.
//
// A Module inspects (and within safety limits transforms) one packet and
// returns an output port; the ModuleGraph routes the packet to the next
// module or to a terminal (accept/drop). Mutation of src/dst/TTL is
// forbidden — declared here, enforced at runtime by the AdaptiveDevice's
// safety guard regardless of what a module actually does.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/types.h"
#include "common/units.h"
#include "core/events.h"
#include "net/packet.h"
#include "net/router.h"

namespace adtc {

/// Which half of the two-stage pipeline is running (Sec. 4.1/Fig. 6):
/// stage 1 acts for the owner of the source address, stage 2 for the
/// owner of the destination address.
enum class ProcessingStage : std::uint8_t { kSourceOwner, kDestinationOwner };

/// Everything a module may consult besides the packet itself. Includes
/// the "contextual information depending on where [the device] is
/// attached to the network" (Sec. 4.2): node, AS role, arrival edge type.
struct DeviceContext {
  Network* net = nullptr;
  NodeId node = kInvalidNode;
  NodeRole role = NodeRole::kStub;
  LinkKind in_kind = LinkKind::kPeer;
  /// For packets arriving from another AS: the neighbouring node the
  /// packet came from (kInvalidNode for access links / injected traffic).
  NodeId in_from_node = kInvalidNode;
  SimTime now = 0;
  SubscriberId subscriber = kInvalidSubscriber;
  ProcessingStage stage = ProcessingStage::kSourceOwner;
  /// Event channel to the management plane (may be null in benches).
  EventSink* events = nullptr;

  /// True if the packet entered this router from a customer or directly
  /// attached host (the only place anti-spoofing may act; transit traffic
  /// must never be source-checked, Sec. 4.2).
  bool FromCustomerEdge() const {
    return in_kind == LinkKind::kAccessUp ||
           in_kind == LinkKind::kCustomerToProvider;
  }

  // --- router telemetry (Sec. 4.2) ----------------------------------------
  // "if made available by the network operator, the router's state and
  //  configuration (e.g. static routing information, packet drop rates,
  //  congestion parameters, traffic mix, router load etc.) can also be
  //  provided."

  /// Packets the hosting router forwarded so far (router load).
  std::uint64_t RouterForwardedPackets() const;
  /// Packets dropped by processors at this router.
  std::uint64_t RouterFilteredPackets() const;
  /// Queue-drop share across the router's outgoing links:
  /// dropped / (forwarded + dropped), 0 when idle — a congestion signal.
  double RouterDropShare() const;

  void Emit(EventKind kind, std::string detail, double value = 0.0) const {
    if (events == nullptr) return;
    DeviceEvent event;
    event.kind = kind;
    event.at = now;
    event.node = node;
    event.subscriber = subscriber;
    event.detail = std::move(detail);
    event.value = value;
    events->OnEvent(event);
  }
};

/// Conventional port meanings (modules may define more).
inline constexpr int kPortDefault = 0;  // "pass" / "no match"
inline constexpr int kPortAlt = 1;      // "match" / "exceeded"

class Module {
 public:
  virtual ~Module() = default;

  /// Processes one packet; returns the output port the packet leaves on
  /// (< port_count()).
  virtual int OnPacket(Packet& packet, const DeviceContext& ctx) = 0;

  virtual std::string_view type_name() const = 0;
  virtual int port_count() const { return 1; }

  /// Upper bound on extra management-plane bytes this module may emit per
  /// processed packet (log records, trigger events). The safety validator
  /// caps the per-graph sum (Sec. 4.5, footnote 1: only "a reasonable
  /// amount of additional traffic" for logging/statistics/triggers).
  virtual std::uint32_t declared_overhead_bytes() const { return 0; }
};

}  // namespace adtc
