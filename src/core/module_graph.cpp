#include "core/module_graph.h"

#include <cassert>

namespace adtc {

std::string_view EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kTriggerFired: return "trigger_fired";
    case EventKind::kSafetyViolation: return "safety_violation";
    case EventKind::kRuleActivated: return "rule_activated";
    case EventKind::kLogNote: return "log_note";
    case EventKind::kAnalysisSoundness: return "analysis_soundness";
    case EventKind::kPlanSoundness: return "plan_soundness";
    case EventKind::kCounterSample: return "counter_sample";
    case EventKind::kAttackDetected: return "attack_detected";
    case EventKind::kAttackCleared: return "attack_cleared";
    case EventKind::kAutoDeploy: return "auto_deploy";
    case EventKind::kAutoWithdraw: return "auto_withdraw";
    case EventKind::kCount_: break;
  }
  return "?";
}

int ModuleGraph::AddModule(std::unique_ptr<Module> module) {
  assert(module != nullptr);
  module->BindConfigRevision(config_revision_.get());
  Entry entry;
  entry.edges.resize(static_cast<std::size_t>(module->port_count()));
  entry.module = std::move(module);
  modules_.push_back(std::move(entry));
  validated_ = false;
  return static_cast<int>(modules_.size()) - 1;
}

Status ModuleGraph::SetEntry(int module_id) {
  if (module_id < 0 || module_id >= static_cast<int>(modules_.size())) {
    return InvalidArgument("entry module id out of range");
  }
  entry_ = module_id;
  validated_ = false;
  return Status::Ok();
}

Status ModuleGraph::Wire(int from, int port, int to) {
  if (from < 0 || from >= static_cast<int>(modules_.size()) || to < 0 ||
      to >= static_cast<int>(modules_.size())) {
    return InvalidArgument("module id out of range");
  }
  auto& edges = modules_[from].edges;
  if (port < 0 || port >= static_cast<int>(edges.size())) {
    return InvalidArgument("port out of range for module " +
                           std::string(modules_[from].module->type_name()));
  }
  edges[port] = Edge{false, Terminal::kAccept, to, true};
  validated_ = false;
  return Status::Ok();
}

Status ModuleGraph::WireTerminal(int from, int port, Terminal terminal) {
  if (from < 0 || from >= static_cast<int>(modules_.size())) {
    return InvalidArgument("module id out of range");
  }
  auto& edges = modules_[from].edges;
  if (port < 0 || port >= static_cast<int>(edges.size())) {
    return InvalidArgument("port out of range");
  }
  edges[port] = Edge{true, terminal, -1, true};
  validated_ = false;
  return Status::Ok();
}

Status ModuleGraph::Validate() {
  if (modules_.empty()) return InvalidArgument("empty module graph");
  if (entry_ < 0) return InvalidArgument("no entry module set");
  for (std::size_t i = 0; i < modules_.size(); ++i) {
    for (std::size_t p = 0; p < modules_[i].edges.size(); ++p) {
      if (!modules_[i].edges[p].wired) {
        return InvalidArgument(
            "unwired port " + std::to_string(p) + " on module " +
            std::string(modules_[i].module->type_name()));
      }
    }
  }
  // Cycle detection: iterative DFS with colouring.
  enum class Colour : std::uint8_t { kWhite, kGrey, kBlack };
  std::vector<Colour> colour(modules_.size(), Colour::kWhite);
  std::vector<std::pair<int, std::size_t>> stack;  // (module, next edge)
  stack.emplace_back(entry_, 0);
  colour[entry_] = Colour::kGrey;
  while (!stack.empty()) {
    auto& [at, edge_index] = stack.back();
    if (edge_index >= modules_[at].edges.size()) {
      colour[at] = Colour::kBlack;
      stack.pop_back();
      continue;
    }
    const Edge& edge = modules_[at].edges[edge_index++];
    if (edge.is_terminal) continue;
    if (colour[edge.next] == Colour::kGrey) {
      return InvalidArgument("module graph contains a cycle through " +
                             std::string(modules_[edge.next].module
                                             ->type_name()));
    }
    if (colour[edge.next] == Colour::kWhite) {
      colour[edge.next] = Colour::kGrey;
      stack.emplace_back(edge.next, 0);
    }
  }
  validated_ = true;
  return Status::Ok();
}

Verdict ModuleGraph::Execute(Packet& packet, const DeviceContext& ctx) {
  return Execute(packet, ctx, nullptr);
}

Verdict ModuleGraph::Execute(Packet& packet, const DeviceContext& ctx,
                             std::vector<int>* visited) {
  assert(validated_ && "Validate() must pass before Execute()");
  packets_processed_++;
  last_drop_reason_ = DatapathDropReason::kNone;
  int at = entry_;
  // Acyclic: at most module_count() steps.
  for (std::size_t step = 0; step <= modules_.size(); ++step) {
    Entry& entry = modules_[at];
    if (visited != nullptr) visited->push_back(at);
    int port = entry.module->OnPacket(packet, ctx);
    if (port < 0 || port >= static_cast<int>(entry.edges.size())) {
      port = 0;  // defensive: treat a bogus port as the default
    }
    const Edge& edge = entry.edges[port];
    if (edge.is_terminal) {
      if (edge.terminal == Terminal::kDrop) {
        packets_dropped_++;
        // `entry` is the module whose port fed the drop terminal, so its
        // declared family is the drop's attribution.
        last_drop_reason_ = entry.module->drop_reason();
        return Verdict::kDrop;
      }
      return Verdict::kForward;
    }
    at = edge.next;
  }
  assert(false && "validated graph exceeded step bound");
  return Verdict::kForward;
}

std::uint32_t ModuleGraph::TotalDeclaredOverhead() const {
  std::uint32_t total = 0;
  for (const auto& entry : modules_) {
    total += entry.module->declared_overhead_bytes();
  }
  return total;
}

ModuleGraph ModuleGraph::Single(std::unique_ptr<Module> module) {
  ModuleGraph graph;
  const int id = graph.AddModule(std::move(module));
  (void)graph.SetEntry(id);
  (void)graph.WireTerminal(id, kPortDefault, Terminal::kAccept);
  if (graph.module(id)->port_count() > 1) {
    for (int p = 1; p < graph.module(id)->port_count(); ++p) {
      (void)graph.WireTerminal(id, p, Terminal::kDrop);
    }
  }
  (void)graph.Validate();
  return graph;
}

ModuleGraph ModuleGraph::Chain(
    std::vector<std::unique_ptr<Module>> modules) {
  ModuleGraph graph;
  std::vector<int> ids;
  ids.reserve(modules.size());
  for (auto& module : modules) {
    ids.push_back(graph.AddModule(std::move(module)));
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const int id = ids[i];
    if (i + 1 < ids.size()) {
      (void)graph.Wire(id, kPortDefault, ids[i + 1]);
    } else {
      (void)graph.WireTerminal(id, kPortDefault, Terminal::kAccept);
    }
    for (int p = 1; p < graph.module(id)->port_count(); ++p) {
      (void)graph.WireTerminal(id, p, Terminal::kDrop);
    }
  }
  if (!ids.empty()) (void)graph.SetEntry(ids.front());
  (void)graph.Validate();
  return graph;
}

}  // namespace adtc
