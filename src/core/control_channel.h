// The control-channel abstraction every management-plane message rides.
//
// In-process function calls cannot be lost, duplicated or delayed, so
// the original control plane could not exercise the paper's availability
// claims. A ControlChannel models one directed management link
// (user→TCSP, TCSP→NMS, NMS→peer-NMS, NMS→device): messages are
// scheduled through the simulator with the channel's latency, and — when
// a FaultInjector is attached — each message first asks the injector for
// its fate (loss, duplication, extra delay).
//
// `Call` is the reliable request/response primitive: it retries with
// capped exponential backoff plus jitter until the response arrives, the
// attempt budget is spent, or the per-request deadline passes. Retries
// can re-deliver the request after a lost *response*, so every remote
// handler passed to Call must be idempotent — deployment instructions
// achieve that with DeploymentId dedup at the NMS and device.
//
// Fast path: a same-shard channel with no injector and zero latency
// completes synchronously inline, which is what keeps the default
// (fault-free, kImmediate) control plane byte-identical to the pre-fault
// behaviour.
//
// Sharding (docs/sharding.md): a channel is anchored to two ShardRefs —
// `local` (the caller: retry timers, the done callback) and `remote`
// (the responder: the request handler runs there). Cross-shard channels
// must declare latency >= the engine's epoch so deliveries land beyond
// the exchange barrier; each side reads only its own shard's clock.
// FaultInjector-backed channels are single-shard only (the injector's
// RNG is unsynchronised).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/rng.h"
#include "obs/span.h"
#include "obs/trace_context.h"
#include "sim/faults.h"
#include "sim/scheduler.h"

namespace adtc {

/// Capped exponential backoff with symmetric jitter and a deadline.
struct RetryPolicy {
  SimDuration initial_backoff = Milliseconds(50);
  double multiplier = 2.0;
  SimDuration max_backoff = Seconds(2);
  /// Each backoff is drawn uniformly from [base*(1-jitter), base*(1+jitter)].
  double jitter = 0.2;
  std::size_t max_attempts = 8;
  /// Hard wall from the first attempt; expiry completes with kUnavailable.
  SimDuration deadline = Seconds(30);

  /// Backoff after the `attempt`-th try (1-based). Deterministic given
  /// the rng state; always in [0, max_backoff*(1+jitter)].
  SimDuration BackoffAfter(std::size_t attempt, Rng& rng) const;
};

/// Metadata about how a reliable call went.
struct CallOutcome {
  std::uint32_t attempts = 0;       // tries started (>= 1)
  std::uint32_t messages_sent = 0;  // request copies handed to the channel
  bool deadline_expired = false;
};

class ControlChannel {
 public:
  /// `remote_up` is evaluated at request-delivery time; a down remote
  /// swallows the message (no response, so the caller retries).
  /// `injector` may be nullptr (fault-free channel). Both must outlive
  /// the channel. `local` is the caller's shard, `remote` the
  /// responder's; for a cross-shard pair the channel's latencies must be
  /// >= the engine epoch.
  ControlChannel(ShardRef local, ShardRef remote, Rng& rng,
                 std::string name, FaultInjector* injector = nullptr,
                 std::function<bool()> remote_up = nullptr);

  /// Same-shard convenience: both endpoints on `sched`.
  ControlChannel(Scheduler& sched, Rng& rng, std::string name,
                 FaultInjector* injector = nullptr,
                 std::function<bool()> remote_up = nullptr)
      : ControlChannel(ShardRef(&sched), ShardRef(&sched), rng,
                       std::move(name), injector, std::move(remote_up)) {}

  struct CallOptions {
    SimDuration request_latency = 0;
    SimDuration response_latency = 0;
    RetryPolicy retry;
    /// Causal identity of the deployment this call belongs to. With a
    /// valid context (and a tracer with a sink) the channel opens one
    /// "ctrl.call" span parented under `trace.parent_span` plus one
    /// "ctrl.attempt" span per try, each annotated with the
    /// fault-injector fate of its request/response messages.
    obs::TraceContext trace;
  };

  /// Reliable request/response. `request` runs remote-side when a
  /// request copy gets through and the remote is up; its Status rides
  /// the response leg back. `done` fires exactly once: with the remote
  /// Status, or kUnavailable if attempts/deadline ran out first. With no
  /// injector and zero latencies everything happens synchronously before
  /// Call returns.
  void Call(std::function<Status()> request,
            std::function<void(const Status&, const CallOutcome&)> done,
            const CallOptions& options);

  /// One-way best-effort message: applies the channel's fault plan and
  /// latency, no retries, no response. Synchronous when the channel is
  /// fault-free with zero latency. A valid `trace` records the message
  /// as a "ctrl.send" span annotated with its fate, and the delivery
  /// callback runs with that span active so remote-side spans parent
  /// under it.
  void Send(std::function<void()> deliver, SimDuration latency = 0,
            obs::TraceContext trace = {});

  /// Tracer used for call/attempt/send spans; nullptr (the default)
  /// disables channel tracing entirely. The tracer no-ops without a sink,
  /// so wiring this is free for untelemetered worlds.
  void SetTracer(obs::Tracer* tracer) { tracer_ = tracer; }

  const std::string& name() const { return name_; }
  bool faulty() const { return injector_ != nullptr; }

 private:
  struct CallState;
  void TryAttempt(const std::shared_ptr<CallState>& state);
  void SendRequestCopies(const std::shared_ptr<CallState>& state);
  void DeliverRequest(const std::shared_ptr<CallState>& state,
                      obs::SpanId attempt_span);
  void Complete(const std::shared_ptr<CallState>& state,
                const Status& status);

  /// Opens the per-call root span (kNoSpan when tracing is off).
  obs::SpanId StartCallSpan(const CallOptions& options);
  void Annotate(obs::SpanId span, std::string key, std::string value) {
    if (tracer_ != nullptr && span != obs::kNoSpan) {
      tracer_->Annotate(span, std::move(key), std::move(value));
    }
  }
  void EndSpan(obs::SpanId span, bool ok) {
    if (tracer_ != nullptr && span != obs::kNoSpan) {
      tracer_->EndSpan(span, ok);
    }
  }

  ShardRef local_;
  ShardRef remote_;
  Rng& rng_;
  std::string name_;
  FaultInjector* injector_;
  std::function<bool()> remote_up_;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace adtc
