// Control-plane timing model of the TCSP (experiment T5 sweeps these).
#pragma once

#include "common/units.h"
#include "core/control_channel.h"

namespace adtc {

struct TcspConfig {
  /// Network user -> TCSP request latency (one way).
  SimDuration user_to_tcsp_latency = Milliseconds(40);
  /// TCSP -> ISP NMS instruction latency (one way, per ISP).
  SimDuration tcsp_to_isp_latency = Milliseconds(40);
  /// NMS-side configuration time per adaptive device.
  SimDuration device_config_time = Milliseconds(5);
  /// TCSP -> Internet number authority ownership lookup (round trip).
  SimDuration authority_query_latency = Milliseconds(100);
  /// Issued certificate lifetime.
  SimDuration certificate_validity = Seconds(30LL * 24 * 3600);
  /// Retry/backoff applied to TCSP->NMS and NMS->device channel calls
  /// when a fault injector is attached.
  RetryPolicy retry;
  /// One-way NMS -> peer-NMS relay latency (0 = synchronous relay when
  /// no fault injector is attached, the pre-fault behaviour).
  SimDuration nms_peer_latency = 0;
  /// Graceful degradation: when the TCSP is unreachable at deploy time,
  /// relay the deployment through the peer mesh of the first enrolled
  /// ISP NMS instead of failing the request.
  bool relay_fallback = false;
  /// Network-wide static plan verification ahead of ISP fan-out
  /// (analysis/network_verifier.h): path coverage, cross-device loops,
  /// composed rate/overhead bounds and filter budgets. A rejected plan
  /// fails the deployment with the witness attached to the report.
  bool verify_plan = true;
};

}  // namespace adtc
