// Control-plane timing model of the TCSP (experiment T5 sweeps these).
#pragma once

#include "common/units.h"

namespace adtc {

struct TcspConfig {
  /// Network user -> TCSP request latency (one way).
  SimDuration user_to_tcsp_latency = Milliseconds(40);
  /// TCSP -> ISP NMS instruction latency (one way, per ISP).
  SimDuration tcsp_to_isp_latency = Milliseconds(40);
  /// NMS-side configuration time per adaptive device.
  SimDuration device_config_time = Milliseconds(5);
  /// TCSP -> Internet number authority ownership lookup (round trip).
  SimDuration authority_query_latency = Milliseconds(100);
  /// Issued certificate lifetime.
  SimDuration certificate_validity = Seconds(30LL * 24 * 3600);
};

}  // namespace adtc
