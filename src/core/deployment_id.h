// Deployment identity for exactly-once control-plane effects.
//
// Every service deployment is stamped with a DeploymentId by its origin
// (the TCSP, or the entry NMS on the peer-relay fallback path). The id
// travels with the instruction through every channel hop, so an NMS or
// device that sees a duplicated, retried or relayed copy of an
// instruction it already applied returns the recorded outcome instead of
// re-applying — counter effects and graph installs happen exactly once
// per id no matter how often the message is (re)delivered. Ids are never
// reused: `seq` is monotonic per origin and 0 is reserved as invalid.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>

namespace adtc {

struct DeploymentId {
  /// 0 = the TCSP; an NMS-originated id carries a hash of the NMS name.
  std::uint64_t origin = 0;
  /// Monotonic per origin; 0 = "no id" (dedup disabled for this spec).
  std::uint64_t seq = 0;

  bool valid() const { return seq != 0; }
  bool operator==(const DeploymentId&) const = default;
};

struct DeploymentIdHash {
  std::size_t operator()(const DeploymentId& id) const {
    std::uint64_t x = id.origin * 0x9e3779b97f4a7c15ull ^ id.seq;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }
};

/// FNV-1a of an origin name — how an NMS derives its id origin tag.
inline std::uint64_t DeploymentOriginTag(std::string_view name) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h | 1;  // never collides with the TCSP's origin 0
}

}  // namespace adtc
