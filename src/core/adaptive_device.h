// The adaptive traffic-processing device attached to a router (Figs. 2, 6).
//
// Traffic entering the router is "redirected to a nearby adaptive device
// only if it carries an IP address as source or destination, which the
// adaptive device was setup for. Most traffic will use the direct path
// through the router." — implemented as two longest-prefix lookups per
// packet against the redirect tables; misses take the fast path with no
// further work.
//
// A redirected packet is processed in up to two stages (Sec. 4.1):
//   stage 1: the module graph of the *source* address owner,
//   stage 2: the module graph of the *destination* address owner,
// mirroring the send-then-receive control handover. Each stage runs under
// the runtime safety guard: src/dst/TTL immutability and no size growth
// are enforced on the wire no matter what the modules do; a violating
// deployment is quarantined and the operator notified (Sec. 4.5).
//
// Flow verdict cache: the redirect lookups and — for stages whose
// executed path consists only of pure modules (see Cacheability in
// core/component.h) — the full verdict are memoised per flow. The cache
// never changes semantics: it is generation-invalidated on every install,
// removal and quarantine, and revision-invalidated on module
// reconfiguration (blacklist edits, rule toggles), so a cached verdict is
// always the verdict the modules would produce if run.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/drop_reason.h"
#include "core/deployment_id.h"
#include "core/module_graph.h"
#include "core/safety.h"
#include "net/prefix_trie.h"
#include "net/router.h"
#include "obs/flight_recorder.h"
#include "obs/telemetry.h"
#include "obs/wall_clock.h"

namespace adtc {

/// Per-device datapath counters. Cells are obs::Counter so the device can
/// export them through the world MetricsRegistry (BindTelemetry) under
/// "device.as<node>.*" while call sites keep reading plain integers.
struct DeviceStats {
  obs::Counter fast_path_packets;   // no redirect-table match
  obs::Counter redirected_packets;  // entered the device
  obs::Counter stage1_runs;
  obs::Counter stage2_runs;
  obs::Counter dropped_packets;
  obs::Counter safety_violations;
  obs::Counter flow_cache_hits;    // verdict or lookup served from cache
  obs::Counter flow_cache_misses;  // cache enabled but no usable entry
  obs::Counter installs_applied;     // effectful InstallDeployment calls
  obs::Counter duplicate_installs;   // re-delivered ids served from record
  obs::Counter replays_rejected;     // known id, different content (attack)
  obs::Counter restarts;             // crash/restart cycles (state wiped)
  obs::Counter quarantines;          // deployments put under quarantine
  /// Drops attributed per taxonomy entry (indexed by DatapathDropReason);
  /// the sum over policy reasons equals dropped_packets.
  obs::Counter drops_by_reason[kDatapathDropReasonCount];
};

/// Everything needed to install a subscriber's processing on a device.
/// Graphs are optional per stage (std::nullopt = pass-through for that
/// stage); `scope` are the redirect prefixes. The caller (ISP NMS) must
/// have run the SafetyValidator already; the device re-checks the
/// essentials (scope within certificate, graphs validated) as defence in
/// depth.
struct DeploymentSpec {
  OwnershipCertificate cert;
  std::vector<Prefix> scope;
  std::optional<ModuleGraph> source_stage;
  std::optional<ModuleGraph> destination_stage;
  /// Optional operator-facing tag carried into events and reports.
  std::string label;
  /// Exactly-once handle: a re-delivered spec with a valid id the device
  /// already processed returns the recorded outcome with no effects.
  DeploymentId deployment_id;
};

/// Order-stable content digest over a spec's identity-relevant fields
/// (id, certificate subject + signature, scope). A receiver that already
/// holds a record for the spec's id compares digests to tell a benign
/// re-delivery (same digest → replay the record) from a replayed or
/// mutated instruction under a stolen id (mismatch → kReplayDetected).
std::uint64_t DeploymentSpecDigest(const DeploymentSpec& spec);

class AdaptiveDevice : public PacketProcessor {
 public:
  explicit AdaptiveDevice(NodeId node, EventSink* events = nullptr);
  ~AdaptiveDevice() override;

  /// Hooks this device into a world's telemetry: registers its counters
  /// as a registry collector and creates the wall-clock profiling
  /// histograms ("device.process_wall_ns", ...). Timers stay dormant
  /// until Telemetry::EnableProfiling(). Pass nullptr to detach.
  void BindTelemetry(obs::Telemetry* telemetry);

  /// Attaches (or detaches, with nullptr) the datapath flight recorder.
  /// When detached — the default — the per-packet cost is one pointer
  /// test; when attached every Process() exit appends a VerdictRecord.
  void AttachFlightRecorder(obs::FlightRecorder* recorder) {
    recorder_ = recorder;
  }
  obs::FlightRecorder* flight_recorder() const { return recorder_; }

  Status InstallDeployment(DeploymentSpec spec);

  Status RemoveDeployment(SubscriberId subscriber);

  /// Models a router crash + immediate restart: every RAM table is lost —
  /// installed module graphs, redirect tries, the flow verdict cache AND
  /// the per-id install record (it lives in the same RAM). The NMS
  /// anti-entropy resync re-installs desired deployments afterwards; the
  /// flow cache then repopulates under a fresh generation.
  void Restart();

  /// Puts the subscriber's deployment under quarantine (its graphs stop
  /// running; fail-open like a runtime safety violation). Used by the NMS
  /// to propagate an offender's quarantine to every device it manages.
  /// Returns true when a present, not-yet-quarantined deployment was
  /// quarantined by this call.
  bool Quarantine(SubscriberId subscriber);

  /// Installs already processed by id (duplicates were suppressed).
  std::size_t applied_install_count() const {
    return applied_installs_.size();
  }

  bool HasDeployment(SubscriberId subscriber) const {
    return deployments_.contains(subscriber);
  }
  bool IsQuarantined(SubscriberId subscriber) const;

  /// Module-graph access for services that read observation modules.
  ModuleGraph* StageGraph(SubscriberId subscriber, ProcessingStage stage);

  // PacketProcessor: the router datapath hook.
  Verdict Process(Packet& packet, const RouterContext& ctx) override;
  std::string_view name() const override { return "adaptive-device"; }

  // --- flow verdict cache ---------------------------------------------------

  /// Runtime switch, mainly for differential testing and benchmarking;
  /// defaults to on. Disabling does not clear entries — they stay and
  /// revalidate (generation + config revisions) if re-enabled.
  void set_flow_cache_enabled(bool enabled) { flow_cache_enabled_ = enabled; }
  bool flow_cache_enabled() const { return flow_cache_enabled_; }

  /// Drops every cached verdict (O(1): bumps the generation). Called
  /// internally on install/remove/quarantine; exposed for operators and
  /// tests.
  void InvalidateFlowCache() { generation_++; }

  std::size_t flow_cache_size() const { return flow_cache_.size(); }

  const DeviceStats& stats() const { return stats_; }
  NodeId node() const { return node_; }
  std::size_t deployment_count() const { return deployments_.size(); }
  std::size_t redirect_prefix_count() const { return src_redirect_.size(); }

 private:
  struct Deployment {
    OwnershipCertificate cert;
    std::vector<Prefix> scope;
    std::optional<ModuleGraph> source_stage;
    std::optional<ModuleGraph> destination_stage;
    std::string label;
    bool quarantined = false;
    std::uint64_t packets_seen = 0;
  };

  /// Exact flow identity: every input a pure module may branch on. Two
  /// packets with equal keys are guaranteed the same treatment by any
  /// pure-module stage under an unchanged configuration.
  struct FlowKey {
    Ipv4Address src;
    Ipv4Address dst;
    Protocol proto = Protocol::kUdp;
    std::uint16_t src_port = 0;
    std::uint16_t dst_port = 0;
    LinkKind in_kind = LinkKind::kPeer;
    NodeId in_from_node = kInvalidNode;

    bool operator==(const FlowKey&) const = default;
  };
  struct FlowKeyHash {
    std::size_t operator()(const FlowKey& key) const {
      auto mix = [](std::uint64_t x) {
        x += 0x9e3779b97f4a7c15ull;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
        return x ^ (x >> 31);
      };
      const std::uint64_t a =
          (static_cast<std::uint64_t>(key.src.bits()) << 32) |
          key.dst.bits();
      const std::uint64_t b =
          (static_cast<std::uint64_t>(key.proto) << 56) |
          (static_cast<std::uint64_t>(key.in_kind) << 48) |
          (static_cast<std::uint64_t>(key.src_port) << 32) |
          (static_cast<std::uint64_t>(key.dst_port) << 16);
      return static_cast<std::size_t>(
          mix(mix(a) ^ b) ^ mix(key.in_from_node));
    }
  };

  /// A memoised treatment for one flow. Validity = generation match plus
  /// config-revision match of both stage graphs; Deployment pointers are
  /// safe to store because every event that could invalidate them
  /// (install/remove/quarantine) bumps the generation first, and
  /// unordered_map never relocates its nodes.
  struct FlowCacheEntry {
    std::uint64_t generation = 0;
    std::uint64_t src_revision = 0;
    std::uint64_t dst_revision = 0;
    Deployment* src_dep = nullptr;
    Deployment* dst_dep = nullptr;
    /// Redirect-table outcome: did either table match? (false = fast path)
    bool redirected = false;
    /// True when the verdict below may be replayed without running the
    /// modules (every visited module was pure). False entries still save
    /// the two LPM lookups and deployment map probes.
    bool full_verdict = false;
    Verdict verdict = Verdict::kForward;
    std::uint8_t drop_stage = 0;  // 0 none, 1 stage1, 2 stage2
    /// Taxonomy attribution of a cached drop verdict, replayed into the
    /// per-reason counters and flight records on every hit.
    DatapathDropReason drop_reason = DatapathDropReason::kNone;
    bool stage1_ran = false;
    bool stage2_ran = false;
    /// Non-zero: replay payload truncation to this size on forward.
    std::uint32_t truncate_to = 0;
  };

  /// Outcome of one stage execution, including what the cache-fill path
  /// needs to decide cacheability.
  struct StageRun {
    Verdict verdict = Verdict::kForward;
    bool ran = false;   // graph present, not quarantined
    bool pure = true;   // every *visited* module was kPure/kPureTransform
    std::uint32_t truncate_to = 0;  // accumulated kPureTransform rewrite
    /// Graph attribution when verdict == kDrop (kNone otherwise).
    DatapathDropReason drop_reason = DatapathDropReason::kNone;
  };

  /// The effectful install path behind the DeploymentId dedup shield.
  Status InstallDeploymentImpl(DeploymentSpec spec);

  /// Runs one stage under the safety guard. `collect_cacheability`
  /// additionally classifies the executed path for the flow cache.
  StageRun RunStage(Deployment& deployment, ProcessingStage stage,
                    Packet& packet, const RouterContext& ctx,
                    NodeId in_from_node, bool collect_cacheability);

  /// Re-applies a fully cached verdict: replays the counter updates the
  /// uncached path would make (device stats, per-deployment packets_seen,
  /// graph processed/dropped) and any pure packet transform.
  Verdict ReplayCachedVerdict(FlowCacheEntry& entry, Packet& packet);

  /// Appends one flight record; callers guard on recorder_ != nullptr so
  /// the disabled path stays a single pointer test.
  void RecordFlight(const Packet& packet, const RouterContext& ctx,
                    Verdict verdict, DatapathDropReason reason,
                    bool cache_hit, bool redirected, bool stage2);

  bool EntryCurrent(const FlowCacheEntry& entry) const {
    if (entry.generation != generation_) return false;
    if (entry.src_dep != nullptr && entry.src_dep->source_stage &&
        entry.src_dep->source_stage->config_revision() != entry.src_revision) {
      return false;
    }
    if (entry.dst_dep != nullptr && entry.dst_dep->destination_stage &&
        entry.dst_dep->destination_stage->config_revision() !=
            entry.dst_revision) {
      return false;
    }
    return true;
  }

  static constexpr std::size_t kMaxFlowCacheEntries = 1 << 16;

  NodeId node_;
  EventSink* events_;
  DeviceStats stats_;
  obs::Telemetry* telemetry_ = nullptr;
  obs::FlightRecorder* recorder_ = nullptr;
  // Profiling histograms (owned by the registry); nullptr when unbound.
  Histogram* process_wall_ns_ = nullptr;
  Histogram* stage_wall_ns_ = nullptr;
  Histogram* lookup_wall_ns_ = nullptr;
  std::unordered_map<SubscriberId, Deployment> deployments_;
  /// Outcome of every id-stamped install ever delivered here, plus a
  /// content digest: a re-delivery of a known id with matching digest is
  /// a benign duplicate (replay the record); a digest mismatch is a
  /// replayed/mutated instruction and is rejected as kReplayDetected.
  /// Ids are never reused (monotonic per origin), so entries are
  /// permanent — until a Restart() wipes the device's RAM.
  struct InstallRecord {
    Status status;
    std::uint64_t digest = 0;
  };
  std::unordered_map<DeploymentId, InstallRecord, DeploymentIdHash>
      applied_installs_;
  PrefixTrie<SubscriberId> src_redirect_;
  PrefixTrie<SubscriberId> dst_redirect_;

  bool flow_cache_enabled_ = true;
  std::uint64_t generation_ = 0;
  std::unordered_map<FlowKey, FlowCacheEntry, FlowKeyHash> flow_cache_;
  /// Table sizes mirrored into relaxed-atomic cells: the telemetry
  /// collector reads them from the control shard while this device's
  /// shard is mid-window, so it must not touch the containers
  /// themselves (docs/sharding.md). Updated wherever the tables change.
  obs::Counter flow_cache_entries_gauge_;
  obs::Counter deployments_gauge_;
  obs::Counter redirect_prefixes_gauge_;
  std::vector<int> visited_scratch_;  // Execute() path buffer, reused
};

}  // namespace adtc
