// The adaptive traffic-processing device attached to a router (Figs. 2, 6).
//
// Traffic entering the router is "redirected to a nearby adaptive device
// only if it carries an IP address as source or destination, which the
// adaptive device was setup for. Most traffic will use the direct path
// through the router." — implemented as two longest-prefix lookups per
// packet against the redirect tables; misses take the fast path with no
// further work.
//
// A redirected packet is processed in up to two stages (Sec. 4.1):
//   stage 1: the module graph of the *source* address owner,
//   stage 2: the module graph of the *destination* address owner,
// mirroring the send-then-receive control handover. Each stage runs under
// the runtime safety guard: src/dst/TTL immutability and no size growth
// are enforced on the wire no matter what the modules do; a violating
// deployment is quarantined and the operator notified (Sec. 4.5).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/module_graph.h"
#include "core/safety.h"
#include "net/prefix_trie.h"
#include "net/router.h"
#include "obs/telemetry.h"
#include "obs/wall_clock.h"

namespace adtc {

/// Per-device datapath counters. Cells are obs::Counter so the device can
/// export them through the world MetricsRegistry (BindTelemetry) under
/// "device.as<node>.*" while call sites keep reading plain integers.
struct DeviceStats {
  obs::Counter fast_path_packets;   // no redirect-table match
  obs::Counter redirected_packets;  // entered the device
  obs::Counter stage1_runs;
  obs::Counter stage2_runs;
  obs::Counter dropped_packets;
  obs::Counter safety_violations;
};

class AdaptiveDevice : public PacketProcessor {
 public:
  explicit AdaptiveDevice(NodeId node, EventSink* events = nullptr);
  ~AdaptiveDevice() override;

  /// Hooks this device into a world's telemetry: registers its counters
  /// as a registry collector and creates the wall-clock profiling
  /// histograms ("device.process_wall_ns", ...). Timers stay dormant
  /// until Telemetry::EnableProfiling(). Pass nullptr to detach.
  void BindTelemetry(obs::Telemetry* telemetry);

  /// Installs a subscriber's processing on this device. Graphs are
  /// optional per stage (std::nullopt = pass-through for that stage).
  /// `scope` are the redirect prefixes — the caller (ISP NMS) must have
  /// run the SafetyValidator already; the device re-checks the essentials
  /// (scope within certificate, graphs validated) as defence in depth.
  Status InstallDeployment(const OwnershipCertificate& cert,
                           std::vector<Prefix> scope,
                           std::optional<ModuleGraph> source_stage,
                           std::optional<ModuleGraph> destination_stage);

  Status RemoveDeployment(SubscriberId subscriber);

  bool HasDeployment(SubscriberId subscriber) const {
    return deployments_.contains(subscriber);
  }
  bool IsQuarantined(SubscriberId subscriber) const;

  /// Module-graph access for services that read observation modules.
  ModuleGraph* StageGraph(SubscriberId subscriber, ProcessingStage stage);

  // PacketProcessor: the router datapath hook.
  Verdict Process(Packet& packet, const RouterContext& ctx) override;
  std::string_view name() const override { return "adaptive-device"; }

  const DeviceStats& stats() const { return stats_; }
  NodeId node() const { return node_; }
  std::size_t deployment_count() const { return deployments_.size(); }
  std::size_t redirect_prefix_count() const { return src_redirect_.size(); }

 private:
  struct Deployment {
    OwnershipCertificate cert;
    std::vector<Prefix> scope;
    std::optional<ModuleGraph> source_stage;
    std::optional<ModuleGraph> destination_stage;
    bool quarantined = false;
    std::uint64_t packets_seen = 0;
  };

  /// Runs one stage under the safety guard; returns the verdict.
  Verdict RunStage(Deployment& deployment, ProcessingStage stage,
                   Packet& packet, const RouterContext& ctx);

  NodeId node_;
  EventSink* events_;
  DeviceStats stats_;
  obs::Telemetry* telemetry_ = nullptr;
  // Profiling histograms (owned by the registry); nullptr when unbound.
  Histogram* process_wall_ns_ = nullptr;
  Histogram* stage_wall_ns_ = nullptr;
  Histogram* lookup_wall_ns_ = nullptr;
  std::unordered_map<SubscriberId, Deployment> deployments_;
  PrefixTrie<SubscriberId> src_redirect_;
  PrefixTrie<SubscriberId> dst_redirect_;
};

}  // namespace adtc
