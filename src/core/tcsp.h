// The Traffic Control Service Provider (Figs. 3-5).
//
// One TCSP serves many ISPs and many network users:
//  * Registration (Fig. 4): identity check, ownership verification against
//    the Internet number authority, certificate issuance.
//  * Service deployment (Fig. 5): maps a ServiceRequest onto the enrolled
//    ISPs' network-management systems, which configure their devices.
//    Control-plane latency is modelled (user->TCSP, TCSP->ISP, per-device
//    configuration time) so experiment T5 can measure worldwide
//    deployment convergence.
//  * Unreachability: when the TCSP is down (e.g. itself under DDoS),
//    deployment requests fail and users fall back to contacting an ISP
//    NMS directly, which relays peer-to-peer (IspNms::RelayDeploy).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/verifier.h"
#include "core/nms.h"
#include "core/ownership.h"
#include "core/tcsp_config.h"
#include "obs/span.h"

namespace adtc {

/// How a deployment reached the ISPs.
enum class DeployPath : std::uint8_t {
  kDirect,   // TCSP instructed every NMS itself
  kRelayed,  // TCSP unreachable; flooded through the NMS peer mesh
};

/// Per-ISP view of one deployment.
struct IspOutcome {
  std::string isp;
  Status status;
  std::uint32_t attempts = 0;  // channel attempts (1 = no retries)
  std::size_t devices_configured = 0;
};

struct DeploymentReport {
  /// Aggregate over all ISPs: the *worst* observed outcome (see
  /// ErrorSeverity); Ok only when every ISP accepted.
  Status status;
  std::size_t isps_configured = 0;
  std::size_t devices_configured = 0;
  /// Extra channel attempts summed over all ISPs (0 when fault-free).
  std::uint32_t retries = 0;
  DeployPath path = DeployPath::kDirect;
  std::vector<IspOutcome> isp_outcomes;
  /// Static admission analysis of the request's reference graphs
  /// (src/analysis): per-path worst-case bounds when proven, the violated
  /// invariant with a witness path when rejected. kNotRun when the
  /// request never produced an analyzable graph.
  analysis::AnalysisReport analysis;
  /// Network-wide static plan analysis (analysis/network_verifier.h):
  /// path coverage, cross-device loops, composed rate/overhead bounds
  /// and filter budgets over the concrete placement. kNotRun when plan
  /// verification is disabled, no ISP is enrolled, routing is unbuilt,
  /// or the deployment travelled the relay path.
  analysis::PlanReport plan;
  SimTime requested_at = 0;
  SimTime completed_at = 0;

  SimDuration Latency() const { return completed_at - requested_at; }
};

/// When a deployment's outcome is known (Fig. 5's handshake, with or
/// without the control-plane latency model).
enum class CompletionPolicy : std::uint8_t {
  /// All ISPs are configured inside the call; the returned report is
  /// final and a callback (if given) fires before the call returns.
  kImmediate,
  /// Control-plane latency is modelled: ISPs configure via scheduled
  /// simulator events and the callback fires once the slowest ISP
  /// finished. The returned report is provisional (completed_at == 0).
  kLatencyModelled,
};

/// TCSP counters; obs::Counter cells exported through the world registry
/// under "tcsp.*".
struct TcspStats {
  obs::Counter registrations_accepted;
  obs::Counter registrations_rejected;
  obs::Counter deployments_completed;
  obs::Counter deployments_failed;
  obs::Counter requests_while_unreachable;
  obs::Counter deploy_retries;    // extra TCSP->NMS channel attempts
  obs::Counter relay_fallbacks;   // deployments that took the peer mesh
  obs::Counter runtime_ops;       // activate/modify/read requests relayed
};

class Tcsp {
 public:
  Tcsp(Network& net, NumberAuthority& authority, std::string signing_key,
       TcspConfig config = {});
  ~Tcsp();

  /// "The TCSP ... sets up contracts with many ISPs" — enrolled NMSes
  /// receive deployment instructions. Also wires the ISP into the peer
  /// mesh (each new ISP peers with all previously enrolled ones).
  void EnrollIsp(IspNms* nms);
  std::size_t isp_count() const { return isps_.size(); }
  /// Enrolled NMSes in enrolment order (the detection controller samples
  /// and taps them; deterministic iteration order matters).
  const std::vector<IspNms*>& enrolled_isps() const { return isps_; }

  // --- Fig. 4: service registration -------------------------------------
  /// Synchronous registration (identity assumed verified when
  /// `identity_ok`): checks claimed ownership with the number authority
  /// and issues a certificate bound to a fresh subscriber id.
  Result<OwnershipCertificate> Register(const std::string& subject,
                                        std::vector<Prefix> claimed,
                                        bool identity_ok = true);

  /// Latency-modelled registration: the callback fires after the
  /// user->TCSP->authority round trips.
  void RegisterAsync(
      std::string subject, std::vector<Prefix> claimed,
      std::function<void(Result<OwnershipCertificate>)> done);

  /// "Traffic control can be executed by a designated party on behalf of
  /// a network address owner" (Sec. 4.1): issues a certificate for (a
  /// subset of) the owner's prefixes to a distinct subscriber. Requires
  /// the owner's valid certificate — the delegation is the owner's act.
  Result<OwnershipCertificate> RegisterDelegate(
      const OwnershipCertificate& owner_cert, std::string delegate_name,
      std::vector<Prefix> delegated_prefixes);

  // --- Fig. 5: service deployment ----------------------------------------
  /// Deploys across all enrolled ISPs. One entry point for both shapes of
  /// completion: kImmediate (default) configures synchronously and the
  /// returned report is final; kLatencyModelled schedules the per-ISP
  /// configuration through the simulator and reports through `done`.
  /// Either way every ISP is attempted, the first failure is recorded in
  /// the report's status, and the same DeploymentReport shape is used.
  DeploymentReport DeployService(
      const OwnershipCertificate& cert, const ServiceRequest& request,
      CompletionPolicy policy = CompletionPolicy::kImmediate,
      std::function<void(const DeploymentReport&)> done = nullptr);

  Status RemoveService(SubscriberId subscriber);

  /// Plan-soundness oracle entry: the data plane (or a test harness that
  /// can see ground truth) observed attack traffic reaching a victim of
  /// `subscriber` at `at_node` — traffic the plan verifier had proven
  /// would cross a filter. If the subscriber holds a coverage-proven
  /// plan, the contradiction is counted
  /// (analysis.plan_soundness_violations) and a kPlanSoundness event is
  /// fanned out to every enrolled NMS event log; returns whether a proof
  /// was contradicted.
  bool ReportUncoveredPathTraffic(SubscriberId subscriber, NodeId at_node);

  // --- runtime operations (Fig. 5, third phase) ----------------------------
  // "Once the service is deployed, a network user may activate, modify
  //  specific parameters or read logs of the service. Therefore it sends
  //  corresponding requests to the TCSP, which relays them to the
  //  appropriate ISP's network management systems."
  //
  // Each operation rides the TCSP->NMS control channels (one Call per
  // enrolled ISP), so with an injector attached it inherits the same
  // loss/retry/dedup semantics as deployment. The NMS-side handlers are
  // idempotent and completion aggregates in a once-only callback. On a
  // fault-free same-shard world every channel completes inline and the
  // returned value is final; otherwise the return is a provisional
  // kUnavailable-style snapshot and the final outcome arrives through
  // the optional `done` callback.

  /// Applies `fn` to every stage graph of the subscriber across all
  /// enrolled ISPs; returns the number of graphs visited. (Direct local
  /// iteration — the channel-riding operations below are built on the
  /// per-NMS equivalents.)
  std::size_t ForEachStageGraph(
      SubscriberId subscriber,
      const std::function<void(NodeId, ProcessingStage, ModuleGraph&)>& fn);

  /// Arms/disarms every firewall MatchModule of the subscriber.
  Status SetFirewallRulesActive(SubscriberId subscriber, bool active,
                                std::function<void(const Status&)> done =
                                    nullptr);

  /// Retargets every rate limiter of the subscriber.
  Status SetRateLimit(SubscriberId subscriber, double rate_pps,
                      std::function<void(const Status&)> done = nullptr);

  /// Aggregated statistics across the subscriber's vantage points.
  struct StatisticsReport {
    std::size_t vantage_points = 0;
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
  };
  Result<StatisticsReport> ReadStatistics(
      SubscriberId subscriber,
      std::function<void(const Result<StatisticsReport>&)> done = nullptr);

  /// Concatenated sampled-log tails across vantage points.
  Result<std::string> ReadLogs(
      SubscriberId subscriber, std::size_t max_lines_per_device = 5,
      std::function<void(const Result<std::string>&)> done = nullptr);

  // --- availability -------------------------------------------------------
  void set_reachable(bool reachable) { reachable_ = reachable; }
  bool reachable() const { return reachable_; }

  /// Routes every control channel (TCSP->NMS of all enrolled and future
  /// ISPs, plus their NMS->device and NMS->peer channels) through a
  /// fault plan and exports the injector's counters as "faults.*".
  /// The injector also decides TCSP outage windows (TcspUp). Pass
  /// nullptr to detach. Must outlive the Tcsp.
  void AttachFaultInjector(FaultInjector* injector);
  FaultInjector* fault_injector() const { return injector_; }

  const CertificateAuthority& certificate_authority() const { return ca_; }
  const SafetyValidator& validator() const { return validator_; }
  const TcspStats& stats() const { return stats_; }

  /// Home ASes of a prefix set (used for anti-spoof exemptions).
  static std::vector<NodeId> HomeNodes(const std::vector<Prefix>& prefixes);

 private:
  /// World tracer when a telemetry sink is attached, else nullptr.
  obs::Tracer* tracer() const;

  /// Operator switch AND the injector's outage schedule.
  bool TcspReachable() const;
  /// Lazily built TCSP->NMS channel for one enrolled ISP.
  ControlChannel& IspChannel(IspNms* nms);
  /// Runs the static verifier over the request's reference stage graphs
  /// so the outcome can be attached to the DeploymentReport. The
  /// authoritative admission gate is each NMS's AnalyzeDeployment (same
  /// shared validator); this pass only makes the proof visible to the
  /// requesting user.
  analysis::AnalysisReport AnalyzeRequest(
      const OwnershipCertificate& cert, const ServiceRequest& request,
      const std::vector<NodeId>& home_nodes) const;
  /// Assembles the concrete placement of `request` across the enrolled
  /// ISPs into the plan verifier's snapshot (placements, ingress/victim
  /// sets, per-router budgets). False when the request yields no
  /// analyzable plan (no graphs, or no selected device anywhere).
  bool BuildPlanView(const ServiceRequest& request,
                     const std::vector<NodeId>& home_nodes,
                     analysis::PlanView* out) const;
  /// Unreachable-TCSP degradation: floods the instruction through the
  /// peer mesh starting at the first enrolled NMS.
  DeploymentReport RelayFallback(
      const DeploymentInstruction& instr,
      const analysis::AnalysisReport& analysis, SimTime requested_at,
      obs::SpanId deploy_span,
      const std::function<void(const DeploymentReport&)>& done);

  Network& net_;
  NumberAuthority& authority_;
  CertificateAuthority ca_;
  SafetyValidator validator_;
  TcspConfig config_;
  std::vector<IspNms*> isps_;
  FaultInjector* injector_ = nullptr;
  /// Control-plane randomness (channel dice, backoff jitter) uses its
  /// own stream so attaching faults never perturbs the world Rng.
  Rng control_rng_{0x7c5c0de5eedULL};
  std::unordered_map<IspNms*, std::unique_ptr<ControlChannel>>
      isp_channels_;
  /// Victim (home) nodes of subscribers whose coverage proof is live —
  /// the plan-soundness oracle's ground truth. Entries are added when a
  /// coverage-requiring plan is proven at admission and removed with the
  /// service.
  std::unordered_map<SubscriberId, std::vector<NodeId>> proven_plans_;
  std::uint64_t next_deployment_seq_ = 1;
  SubscriberId next_subscriber_ = 1;
  bool reachable_ = true;
  TcspStats stats_;
};

}  // namespace adtc
