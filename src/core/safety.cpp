#include "core/safety.h"

namespace adtc {

SafetyValidator::SafetyValidator(SafetyLimits limits) : limits_(limits) {}

void SafetyValidator::VetModuleType(std::string type_name) {
  vetted_.insert(std::move(type_name));
}

bool SafetyValidator::IsVetted(std::string_view type_name) const {
  return vetted_.contains(std::string(type_name));
}

Status SafetyValidator::ValidateDeployment(
    const OwnershipCertificate& cert, const std::vector<Prefix>& scope,
    const ModuleGraph& graph) const {
  if (scope.empty()) {
    return InvalidArgument("deployment scope is empty");
  }
  if (scope.size() > limits_.max_scope_prefixes) {
    return ResourceExhausted("scope exceeds prefix cap");
  }
  // The fundamental restriction: control only over owned traffic.
  for (const Prefix& prefix : scope) {
    if (!cert.CoversPrefix(prefix)) {
      return PermissionDenied("scope prefix " + prefix.ToString() +
                              " outside certified ownership of '" +
                              cert.subject + "'");
    }
  }
  if (!graph.validated()) {
    return InvalidArgument("module graph failed validation");
  }
  if (graph.module_count() > limits_.max_modules_per_graph) {
    return ResourceExhausted("module graph exceeds module cap");
  }
  for (std::size_t i = 0; i < graph.module_count(); ++i) {
    const std::string_view type =
        graph.module(static_cast<int>(i))->type_name();
    if (!IsVetted(type)) {
      return SafetyViolation("module type '" + std::string(type) +
                             "' is not on the vetted catalog");
    }
  }
  if (graph.TotalDeclaredOverhead() >
      limits_.max_overhead_bytes_per_packet) {
    return SafetyViolation(
        "declared management overhead exceeds the allowance");
  }
  return Status::Ok();
}

SafetyValidator MakeStandardValidator(SafetyLimits limits) {
  SafetyValidator validator(limits);
  for (const char* type :
       {"match", "blacklist", "payload-delete", "counter", "anti-spoof",
        "rate-limit", "sampler", "logger", "statistics", "trigger",
        "traceback-store"}) {
    validator.VetModuleType(type);
  }
  return validator;
}

std::string_view InvariantViolationName(InvariantViolation violation) {
  switch (violation) {
    case InvariantViolation::kNone: return "none";
    case InvariantViolation::kSourceModified: return "source_modified";
    case InvariantViolation::kDestinationModified:
      return "destination_modified";
    case InvariantViolation::kTtlModified: return "ttl_modified";
    case InvariantViolation::kSizeIncreased: return "size_increased";
  }
  return "?";
}

InvariantViolation EnforceInvariants(const PacketInvariants& before,
                                  Packet& packet) {
  InvariantViolation first = InvariantViolation::kNone;
  if (packet.src != before.src) {
    packet.src = before.src;
    first = InvariantViolation::kSourceModified;
  }
  if (packet.dst != before.dst) {
    packet.dst = before.dst;
    if (first == InvariantViolation::kNone) {
      first = InvariantViolation::kDestinationModified;
    }
  }
  if (packet.ttl != before.ttl) {
    packet.ttl = before.ttl;
    if (first == InvariantViolation::kNone) {
      first = InvariantViolation::kTtlModified;
    }
  }
  if (packet.size_bytes > before.size_bytes) {
    packet.size_bytes = before.size_bytes;
    if (first == InvariantViolation::kNone) {
      first = InvariantViolation::kSizeIncreased;
    }
  }
  return first;
}

}  // namespace adtc
