#include "core/safety.h"

#include "net/network.h"

namespace adtc {

SafetyValidator::SafetyValidator(SafetyLimits limits) : limits_(limits) {}

void SafetyValidator::VetModuleType(std::string type_name) {
  vetted_.insert(std::move(type_name));
}

bool SafetyValidator::IsVetted(std::string_view type_name) const {
  return vetted_.contains(std::string(type_name));
}

analysis::GraphView BuildGraphView(const ModuleGraph& graph) {
  analysis::GraphView view;
  view.entry = graph.entry();
  view.modules.reserve(graph.module_count());
  for (std::size_t i = 0; i < graph.module_count(); ++i) {
    const int id = static_cast<int>(i);
    const Module* module = graph.module(id);
    analysis::ModuleView mv;
    mv.type_name = std::string(module->type_name());
    mv.signature = module->effect_signature();
    const std::size_t ports = graph.port_link_count(id);
    mv.ports.reserve(ports);
    for (std::size_t port = 0; port < ports; ++port) {
      const ModuleGraph::PortLink link =
          graph.port_link(id, static_cast<int>(port));
      analysis::PortView pv;
      pv.wired = link.wired;
      pv.is_terminal = link.is_terminal;
      pv.terminal_drop =
          link.is_terminal && link.terminal == ModuleGraph::Terminal::kDrop;
      pv.next = link.next;
      mv.ports.push_back(pv);
    }
    view.modules.push_back(std::move(mv));
  }
  return view;
}

analysis::NetworkView BuildNetworkView(const Network& net) {
  analysis::NetworkView view;
  view.node_count = net.node_count();
  const int count = static_cast<int>(view.node_count);
  view.next_hop.resize(view.node_count * view.node_count, -1);
  view.node_names.reserve(view.node_count);
  for (int from = 0; from < count; ++from) {
    view.node_names.push_back("AS" + std::to_string(from));
    for (int to = 0; to < count; ++to) {
      if (from == to) continue;
      const NodeId hop = net.NextHop(static_cast<NodeId>(from),
                                     static_cast<NodeId>(to));
      view.next_hop[static_cast<std::size_t>(from) * view.node_count +
                    static_cast<std::size_t>(to)] =
          hop == kInvalidNode ? -1 : static_cast<int>(hop);
    }
  }
  return view;
}

namespace {

// Admission checks 1-4 (scoping, well-formedness, catalog, overhead
// total) — everything that predates the static verifier.
Status PreAnalysisChecks(const SafetyValidator& validator,
                         const SafetyLimits& limits,
                         const OwnershipCertificate& cert,
                         const std::vector<Prefix>& scope,
                         const ModuleGraph& graph) {
  if (scope.empty()) {
    return InvalidArgument("deployment scope is empty");
  }
  if (scope.size() > limits.max_scope_prefixes) {
    return ResourceExhausted("scope exceeds prefix cap");
  }
  // The fundamental restriction: control only over owned traffic.
  for (const Prefix& prefix : scope) {
    if (!cert.CoversPrefix(prefix)) {
      return PermissionDenied("scope prefix " + prefix.ToString() +
                              " outside certified ownership of '" +
                              cert.subject + "'");
    }
  }
  if (!graph.validated()) {
    return InvalidArgument("module graph failed validation");
  }
  if (graph.module_count() > limits.max_modules_per_graph) {
    return ResourceExhausted("module graph exceeds module cap");
  }
  for (std::size_t i = 0; i < graph.module_count(); ++i) {
    const std::string_view type =
        graph.module(static_cast<int>(i))->type_name();
    if (!validator.IsVetted(type)) {
      return SafetyViolation("module type '" + std::string(type) +
                             "' is not on the vetted catalog");
    }
  }
  // No whole-graph overhead total here: the overhead allowance is a
  // per-packet quantity and a packet traverses one path, so the verifier
  // enforces it as the per-path sum (kByteAmplification) — strictly more
  // precise than the old TotalDeclaredOverhead() cap it replaces.
  return Status::Ok();
}

}  // namespace

DeploymentAnalysis SafetyValidator::AnalyzeDeployment(
    const OwnershipCertificate& cert, const std::vector<Prefix>& scope,
    const ModuleGraph& graph, const analysis::AnalysisContext& ctx) const {
  DeploymentAnalysis out;
  out.status = PreAnalysisChecks(*this, limits_, cert, scope, graph);
  if (!out.status.ok()) {
    ++stats_.graphs_rejected;
    return out;  // report stays kNotRun: the verifier never saw the graph
  }
  analysis::AnalysisLimits analysis_limits;
  analysis_limits.max_overhead_bytes_per_packet =
      limits_.max_overhead_bytes_per_packet;
  const analysis::GraphView view = BuildGraphView(graph);
  out.report = analysis::VerifyGraph(view, ctx, analysis_limits);
  stats_.violations_found += out.report.violations.size();
  if (!out.report.proven()) {
    ++stats_.graphs_rejected;
    const analysis::Violation& first = out.report.violations.front();
    out.status = SafetyViolation(
        "static analysis rejected deployment: " +
        std::string(analysis::InvariantKindName(first.kind)) + " — " +
        first.detail + " [witness: " +
        analysis::WitnessToString(view, first.witness_path) + "]");
    return out;
  }
  ++stats_.graphs_verified;
  return out;
}

analysis::PlanReport SafetyValidator::AnalyzePlan(
    const analysis::NetworkView& net_view, const analysis::PlanView& plan,
    const analysis::PlanLimits& limits) const {
  analysis::PlanReport report =
      analysis::VerifyDeploymentPlan(net_view, plan, limits);
  if (report.proven()) {
    ++stats_.plans_verified;
  } else if (report.status == analysis::PlanStatus::kRejected) {
    ++stats_.plans_rejected;
    stats_.violations_found += report.violations.size();
  }
  return report;
}

Status SafetyValidator::ValidateDeployment(
    const OwnershipCertificate& cert, const std::vector<Prefix>& scope,
    const ModuleGraph& graph) const {
  return AnalyzeDeployment(cert, scope, graph).status;
}

SafetyValidator MakeStandardValidator(SafetyLimits limits) {
  SafetyValidator validator(limits);
  for (const char* type :
       {"match", "blacklist", "payload-delete", "counter", "anti-spoof",
        "rate-limit", "sampler", "logger", "statistics", "trigger",
        "traceback-store"}) {
    validator.VetModuleType(type);
  }
  return validator;
}

std::string_view InvariantViolationName(InvariantViolation violation) {
  switch (violation) {
    case InvariantViolation::kNone: return "none";
    case InvariantViolation::kSourceModified: return "source_modified";
    case InvariantViolation::kDestinationModified:
      return "destination_modified";
    case InvariantViolation::kTtlModified: return "ttl_modified";
    case InvariantViolation::kSizeIncreased: return "size_increased";
    case InvariantViolation::kCount_: break;
  }
  return "?";
}

InvariantViolation EnforceInvariants(const PacketInvariants& before,
                                  Packet& packet) {
  InvariantViolation first = InvariantViolation::kNone;
  if (packet.src != before.src) {
    packet.src = before.src;
    first = InvariantViolation::kSourceModified;
  }
  if (packet.dst != before.dst) {
    packet.dst = before.dst;
    if (first == InvariantViolation::kNone) {
      first = InvariantViolation::kDestinationModified;
    }
  }
  if (packet.ttl != before.ttl) {
    packet.ttl = before.ttl;
    if (first == InvariantViolation::kNone) {
      first = InvariantViolation::kTtlModified;
    }
  }
  if (packet.size_bytes > before.size_bytes) {
    packet.size_bytes = before.size_bytes;
    if (first == InvariantViolation::kNone) {
      first = InvariantViolation::kSizeIncreased;
    }
  }
  return first;
}

}  // namespace adtc
