// IP address ownership: the concept the whole service rests on (Sec. 4.1).
//
// "We declare a network packet to be owned by these network users, who are
//  officially registered to hold either the destination or the source IP
//  address or both of that packet."
//
// NumberAuthority models ARIN/RIPE-style registries (Fig. 4's "Internet
// number authority"): an authoritative prefix -> owner database that the
// TCSP queries during registration to verify claimed ownership.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "net/ip.h"
#include "net/prefix_trie.h"

namespace adtc {

class NumberAuthority {
 public:
  /// Registers `owner` as holder of `prefix`. Fails on overlap with an
  /// existing allocation held by someone else (exact duplicates by the
  /// same owner are idempotent).
  Status Allocate(const Prefix& prefix, std::string owner);

  /// Delegates a sub-range of an existing allocation to a new holder —
  /// how a customer of an ISP comes to own its server addresses. Requires
  /// a covering allocation held by `parent_owner`; the suballocation takes
  /// longest-match precedence for ownership lookups.
  Status Suballocate(const Prefix& prefix, std::string owner,
                     std::string_view parent_owner);

  /// Ok iff `owner` holds an allocation covering `prefix` entirely.
  /// kNotFound: nothing in the registry covers the prefix at all;
  /// kPermissionDenied: covered, but every covering allocation is held by
  /// someone else.
  Status VerifyOwnership(std::string_view owner, const Prefix& prefix) const;

  /// Owner of the longest allocation containing `addr` ("" if none).
  std::string OwnerOf(Ipv4Address addr) const;

  /// All prefixes held by `owner`.
  std::vector<Prefix> AllocationsOf(std::string_view owner) const;

  std::size_t allocation_count() const { return allocations_.size(); }

 private:
  PrefixTrie<std::string> allocations_;
};

/// Convenience: allocate every node prefix of a topology to a synthetic
/// organisation name "as<N>" — the baseline registry state experiments
/// start from (specific hosts/subscribers then claim their own prefixes).
void AllocateTopologyPrefixes(NumberAuthority& authority,
                              std::size_t node_count);

/// Canonical organisation name for a node's AS ("as<N>").
std::string AsOrgName(NodeId node);

}  // namespace adtc
