// IPv4 addresses and CIDR prefixes.
//
// The simulator allocates addresses deterministically: the node (router)
// with dense id N owns the /20 prefix whose top 20 bits equal N, and hosts
// attached to it occupy the 4094 low slots. This keeps routing arithmetic
// O(1) while ownership matching in the traffic-control plane still uses
// real longest-prefix matching over arbitrary CIDR prefixes (PrefixTrie).
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/types.h"

namespace adtc {

class Ipv4Address {
 public:
  constexpr Ipv4Address() : bits_(0) {}
  constexpr explicit Ipv4Address(std::uint32_t bits) : bits_(bits) {}

  constexpr std::uint32_t bits() const { return bits_; }

  /// Dotted-quad "a.b.c.d".
  std::string ToString() const;

  /// Parses dotted-quad; nullopt on malformed input.
  static std::optional<Ipv4Address> Parse(std::string_view text);

  auto operator<=>(const Ipv4Address&) const = default;

 private:
  std::uint32_t bits_;
};

/// CIDR prefix: address + mask length in [0, 32].
class Prefix {
 public:
  constexpr Prefix() : addr_(), length_(0) {}
  /// Host bits of `addr` below the mask are zeroed.
  Prefix(Ipv4Address addr, int length);

  Ipv4Address address() const { return addr_; }
  int length() const { return length_; }

  bool Contains(Ipv4Address addr) const;
  /// True if `other` is fully inside this prefix (same or longer mask).
  bool Covers(const Prefix& other) const;

  std::string ToString() const;  // "a.b.c.d/len"
  static std::optional<Prefix> Parse(std::string_view text);

  /// /0 — matches everything.
  static Prefix Any() { return Prefix(Ipv4Address(0), 0); }
  /// /32 host route.
  static Prefix Host(Ipv4Address addr) { return Prefix(addr, 32); }

  auto operator<=>(const Prefix&) const = default;

 private:
  Ipv4Address addr_;
  int length_;
};

/// Bitmask with the top `length` bits set (length in [0,32]).
constexpr std::uint32_t PrefixMask(int length) {
  return length == 0 ? 0u : ~0u << (32 - length);
}

// ---------------------------------------------------------------------------
// Simulator address plan: node N owns the /20 at (N << 12).

inline constexpr int kNodePrefixLength = 20;
inline constexpr int kHostBits = 32 - kNodePrefixLength;
inline constexpr std::uint32_t kHostsPerNode = (1u << kHostBits) - 2;

/// The /20 prefix owned by a node.
Prefix NodePrefix(NodeId node);

/// Address of the node's own router interface (slot 0... we use slot 1).
Ipv4Address RouterAddress(NodeId node);

/// Address of host slot `slot` (1-based, <= kHostsPerNode) under a node.
Ipv4Address HostAddress(NodeId node, std::uint32_t slot);

/// Node that owns this address under the simulator address plan.
NodeId AddressNode(Ipv4Address addr);

/// Host slot within the owning node (0 = router interface).
std::uint32_t AddressSlot(Ipv4Address addr);

}  // namespace adtc
