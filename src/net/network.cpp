#include "net/network.h"

#include <algorithm>
#include <cassert>
#include <deque>

#include "common/drop_reason.h"

namespace adtc {

std::string_view LinkKindName(LinkKind kind) {
  switch (kind) {
    case LinkKind::kCustomerToProvider: return "cust->prov";
    case LinkKind::kProviderToCustomer: return "prov->cust";
    case LinkKind::kPeer: return "peer";
    case LinkKind::kAccessUp: return "access-up";
    case LinkKind::kAccessDown: return "access-down";
  }
  return "?";
}

std::string_view DropReasonName(DropReason reason) {
  switch (reason) {
    case DropReason::kQueueFull: return "queue_full";
    case DropReason::kTtlExpired: return "ttl_expired";
    case DropReason::kFiltered: return "filtered";
    case DropReason::kNoRoute: return "no_route";
    case DropReason::kNoHost: return "no_host";
    case DropReason::kHostDown: return "host_down";
    case DropReason::kHostOverload: return "host_overload";
    case DropReason::kLinkFault: return "link_fault";
    case DropReason::kCount_: break;
  }
  return "?";
}

Network::Network(std::uint64_t seed, std::size_t num_shards)
    : engine_(num_shards, seed),
      rng_(seed),
      metrics_(engine_.shard_count()),
      telemetry_(*engine_.control().get()) {
  // Span timestamps must come from the executing shard's clock, not the
  // control shard's (which is mid-window stale on worker threads).
  telemetry_.tracer().SetClock([this] { return engine_.Now(); });
  // Publish the world's exact per-class ground-truth counters through the
  // registry, so the time-series sampler sees attack/mitigation dynamics
  // without any extra accounting on the datapath. Cells are relaxed
  // atomics; a mid-window readout may trail the hot path by up to one
  // epoch (exact at every barrier).
  telemetry_.registry().AddCollector(this, [this](
                                               obs::MetricsSnapshot& out) {
    // Counters-only merge: the collector runs mid-window on the control
    // shard while other shards write their cells, so it must not touch
    // the non-atomic SummaryStats cell (docs/sharding.md).
    Metrics merged;
    for (const Metrics& cell : metrics_) merged.MergeCounters(cell);
    for (std::size_t c = 0; c < kTrafficClassCount; ++c) {
      const auto klass = static_cast<TrafficClass>(c);
      const std::string prefix =
          "net.class." + std::string(TrafficClassName(klass)) + ".";
      out.push_back({prefix + "sent",
                     static_cast<double>(merged.packets_sent[c])});
      out.push_back({prefix + "delivered",
                     static_cast<double>(merged.packets_delivered[c])});
      out.push_back(
          {prefix + "dropped", static_cast<double>(merged.dropped(klass))});
    }
    out.push_back({"net.attack_byte_hops",
                   static_cast<double>(merged.attack_byte_hops)});
    out.push_back({"net.legit_byte_hops",
                   static_cast<double>(merged.legit_byte_hops)});
    out.push_back({"sim.executed_events",
                   static_cast<double>(engine_.executed_events())});
    // The transport-caused entry of the datapath drop taxonomy: device
    // policy drops are counted per reason by each AdaptiveDevice, queue
    // overflows happen here in the packet network.
    std::uint64_t queue_drops = 0;
    for (std::size_t c = 0; c < kTrafficClassCount; ++c) {
      queue_drops += merged.packets_dropped[c][static_cast<std::size_t>(
          DropReason::kQueueFull)];
    }
    out.push_back(
        {std::string("net.drops.") +
             DatapathDropReasonName(DatapathDropReason::kQueueOverflow),
         static_cast<double>(queue_drops)});
    // Injected data-plane faults, aggregated and per link. Only exported
    // with an injector attached — which also guarantees a single shard,
    // so reading the links' plain counters here is race-free.
    if (injector_ != nullptr) {
      std::uint64_t lost = 0;
      std::uint64_t corrupted = 0;
      std::uint64_t flapped = 0;
      for (std::size_t l = 0; l < links_.size(); ++l) {
        const LinkStats& ls = links_[l].stats;
        lost += ls.fault_lost_packets;
        corrupted += ls.fault_corrupted_packets;
        flapped += ls.flap_dropped_packets;
        const std::uint64_t faults = ls.fault_lost_packets +
                                     ls.fault_corrupted_packets +
                                     ls.flap_dropped_packets;
        if (faults > 0) {
          const std::string link_prefix =
              "net.link" + std::to_string(l) + ".drops.";
          if (ls.fault_lost_packets > 0) {
            out.push_back({link_prefix + DatapathDropReasonName(
                                             DatapathDropReason::kLinkLoss),
                           static_cast<double>(ls.fault_lost_packets)});
          }
          if (ls.fault_corrupted_packets > 0) {
            out.push_back(
                {link_prefix +
                     DatapathDropReasonName(DatapathDropReason::kLinkCorrupt),
                 static_cast<double>(ls.fault_corrupted_packets)});
          }
          if (ls.flap_dropped_packets > 0) {
            out.push_back({link_prefix + DatapathDropReasonName(
                                             DatapathDropReason::kLinkDown),
                           static_cast<double>(ls.flap_dropped_packets)});
          }
        }
      }
      out.push_back(
          {std::string("net.drops.") +
               DatapathDropReasonName(DatapathDropReason::kLinkLoss),
           static_cast<double>(lost)});
      out.push_back(
          {std::string("net.drops.") +
               DatapathDropReasonName(DatapathDropReason::kLinkCorrupt),
           static_cast<double>(corrupted)});
      out.push_back(
          {std::string("net.drops.") +
               DatapathDropReasonName(DatapathDropReason::kLinkDown),
           static_cast<double>(flapped)});
    }
  });
}

void Network::AttachFaultInjector(FaultInjector* injector) {
  assert((injector == nullptr || engine_.shard_count() == 1) &&
         "data-plane fault injection is single-shard-only (the injector's "
         "RNG stream is unsynchronised)");
  injector_ = injector;
}

Metrics Network::metrics() const {
  Metrics merged = metrics_[0];
  for (std::size_t s = 1; s < metrics_.size(); ++s) {
    merged.Merge(metrics_[s]);
  }
  return merged;
}

NodeId Network::AddNode(NodeRole role, ShardId shard) {
  assert(!routing_built_ && "topology is frozen after FinalizeRouting()");
  assert(shard < engine_.shard_count() && "shard out of range");
  const auto id = static_cast<NodeId>(nodes_.size());
  Node node;
  node.role = role;
  node.shard = shard;
  nodes_.push_back(std::move(node));
  return id;
}

std::pair<LinkId, LinkId> Network::Connect(NodeId a, NodeId b,
                                           const LinkParams& params,
                                           LinkKind kind_ab) {
  assert(a < nodes_.size() && b < nodes_.size() && a != b);
  LinkKind kind_ba;
  switch (kind_ab) {
    case LinkKind::kCustomerToProvider:
      kind_ba = LinkKind::kProviderToCustomer;
      break;
    case LinkKind::kProviderToCustomer:
      kind_ba = LinkKind::kCustomerToProvider;
      break;
    default:
      kind_ba = LinkKind::kPeer;
      break;
  }

  const auto ab = static_cast<LinkId>(links_.size());
  links_.push_back(Link{LinkTarget::Node(a), LinkTarget::Node(b), kind_ab,
                        params, 0, 0, {}});
  const auto ba = static_cast<LinkId>(links_.size());
  links_.push_back(Link{LinkTarget::Node(b), LinkTarget::Node(a), kind_ba,
                        params, 0, 0, {}});

  nodes_[a].neighbours.emplace_back(b, ab);
  nodes_[b].neighbours.emplace_back(a, ba);
  return {ab, ba};
}

HostId Network::AttachEndpoint(std::unique_ptr<Endpoint> endpoint,
                               NodeId node, const LinkParams& access,
                               ShardId shard) {
  assert(node < nodes_.size());
  Node& router = nodes_[node];
  assert((shard == kInvalidShard || shard == router.shard) &&
         "endpoints live on their access router's shard");
  (void)shard;
  assert(router.host_slots.size() < kHostsPerNode &&
         "address space under this node exhausted");

  const auto host_id = static_cast<HostId>(hosts_.size());
  const auto slot = static_cast<std::uint32_t>(router.host_slots.size() + 1);

  const auto up = static_cast<LinkId>(links_.size());
  links_.push_back(Link{LinkTarget::Host(host_id), LinkTarget::Node(node),
                        LinkKind::kAccessUp, access, 0, 0, {}});
  const auto down = static_cast<LinkId>(links_.size());
  links_.push_back(Link{LinkTarget::Node(node), LinkTarget::Host(host_id),
                        LinkKind::kAccessDown, access, 0, 0, {}});

  HostRecord record;
  record.endpoint = std::move(endpoint);
  record.node = node;
  record.slot = slot;
  record.address = HostAddress(node, slot);
  record.uplink = up;
  record.downlink = down;
  hosts_.push_back(std::move(record));
  router.host_slots.push_back(host_id);

  hosts_.back().endpoint->Bind(*this, host_id);
  hosts_.back().endpoint->OnAttached();
  return host_id;
}

void Network::FinalizeRouting() {
  if (routing_built_) return;
  const std::size_t n = nodes_.size();
  next_hop_.assign(n * n, kInvalidNode);
  distance_.assign(n * n, UINT32_MAX);

  // One BFS per destination over the (undirected) router adjacency.
  // next_hop_[from * n + dest] = neighbour of `from` on a shortest path.
  std::deque<NodeId> queue;
  for (NodeId dest = 0; dest < n; ++dest) {
    const std::size_t base_dest = static_cast<std::size_t>(dest);
    distance_[dest * n + base_dest] = 0;
    next_hop_[dest * n + base_dest] = dest;
    queue.clear();
    queue.push_back(dest);
    while (!queue.empty()) {
      const NodeId at = queue.front();
      queue.pop_front();
      const std::uint32_t dist_at = distance_[at * n + dest];
      for (const auto& [neighbour, link] : nodes_[at].neighbours) {
        (void)link;
        std::uint32_t& dist_nb = distance_[neighbour * n + dest];
        if (dist_nb != UINT32_MAX) continue;
        dist_nb = dist_at + 1;
        // The neighbour reaches `dest` via `at`.
        next_hop_[neighbour * n + dest] = at;
        queue.push_back(neighbour);
      }
    }
  }
  routing_built_ = true;

  // Conservative lookahead: the epoch is the smallest propagation delay
  // of any link whose two sides live on different shards. Events cannot
  // cross shards faster than that, so the engine may run each shard one
  // epoch ahead without ever missing an arrival (docs/sharding.md).
  SimDuration min_cross = kSimTimeMax;
  for (const Link& link : links_) {
    if (ShardOf(link.from) == ShardOf(link.to)) continue;
    min_cross = std::min(min_cross, link.params.delay);
  }
  if (min_cross != kSimTimeMax) engine_.SetEpoch(min_cross);
}

ShardId Network::ShardOf(const LinkTarget& target) const {
  return target.is_host ? nodes_[hosts_[target.id].node].shard
                        : nodes_[target.id].shard;
}

void Network::AddProcessor(NodeId node, PacketProcessor* processor) {
  assert(node < nodes_.size() && processor != nullptr);
  nodes_[node].processors.push_back(processor);
}

void Network::RemoveProcessor(NodeId node, PacketProcessor* processor) {
  auto& chain = nodes_[node].processors;
  chain.erase(std::remove(chain.begin(), chain.end(), processor),
              chain.end());
}

HostId Network::HostAt(NodeId node, std::uint32_t slot) const {
  if (node >= nodes_.size()) return kInvalidHost;
  const auto& slots = nodes_[node].host_slots;
  if (slot == 0 || slot > slots.size()) return kInvalidHost;
  return slots[slot - 1];
}

HostId Network::HostByAddress(Ipv4Address addr) const {
  return HostAt(AddressNode(addr), AddressSlot(addr));
}

std::uint32_t Network::HopDistance(NodeId a, NodeId b) const {
  assert(routing_built_);
  if (a >= nodes_.size() || b >= nodes_.size()) return UINT32_MAX;
  return distance_[static_cast<std::size_t>(a) * nodes_.size() + b];
}

NodeId Network::NextHop(NodeId from, NodeId to) const {
  assert(routing_built_);
  if (from >= nodes_.size() || to >= nodes_.size()) return kInvalidNode;
  return next_hop_[static_cast<std::size_t>(from) * nodes_.size() + to];
}

std::vector<NodeId> Network::PathBetween(NodeId a, NodeId b) const {
  std::vector<NodeId> path;
  if (HopDistance(a, b) == UINT32_MAX) return path;
  NodeId at = a;
  path.push_back(at);
  while (at != b) {
    at = NextHop(at, b);
    if (at == kInvalidNode) return {};
    path.push_back(at);
  }
  return path;
}

PacketSerial Network::NextSerialFor(HostId host) {
  // Per-origin serial spaces: the high word tags the origin, the low word
  // counts its packets. Identities are unique world-wide yet independent
  // of how shards interleave — the determinism anchor for sharded runs.
  HostRecord& record = hosts_[host];
  return (static_cast<PacketSerial>(host) + 1) << 32 | ++record.next_serial;
}

PacketSerial Network::NextSerialForNode(NodeId node) {
  return (PacketSerial{1} << 63) |
         (static_cast<PacketSerial>(node) << 32) | ++nodes_[node].next_serial;
}

void Network::SendFromHost(HostId host, Packet packet) {
  assert(host < hosts_.size());
  const HostRecord& record = hosts_[host];
  // A sender may pre-stamp the serial (to correlate replies before the
  // packet leaves); in that case it has already recorded the send.
  if (packet.serial == 0) {
    packet.serial = NextSerialFor(host);
    packet.true_origin = host;
    packet.sent_at = Now();
    if (packet.payload_hash == 0) packet.payload_hash = packet.serial;
    metrics_cell().RecordSend(packet);
  }
  packet.hops = 0;
  LinkSend(record.uplink, std::move(packet));
}

void Network::InjectAtNode(NodeId node, Packet packet) {
  packet.serial = NextSerialForNode(node);
  packet.sent_at = Now();
  packet.hops = 0;
  if (packet.payload_hash == 0) packet.payload_hash = packet.serial;
  metrics_cell().RecordSend(packet);
  RouterReceive(node, kInvalidLink, std::move(packet));
}

void Network::LinkSend(LinkId link_id, Packet packet) {
  Link& link = links_[link_id];
  const SimTime now = Now();

  // Data-plane fault plan: flap windows and loss kill the packet before
  // it ever occupies the transmitter; corruption is decided here (on the
  // injector's own RNG stream) but charged at arrival, after the packet
  // consumed the link. Links without a plan consult no randomness.
  bool corrupted = false;
  if (injector_ != nullptr) {
    switch (injector_->PlanPacket(link_id, now)) {
      case PacketFate::kDeliver:
        break;
      case PacketFate::kLost:
        link.stats.fault_lost_packets++;
        link.stats.dropped_packets++;
        link.stats.dropped_bytes += packet.size_bytes;
        metrics_cell().RecordDrop(packet, DropReason::kLinkFault);
        return;
      case PacketFate::kLinkDown:
        link.stats.flap_dropped_packets++;
        link.stats.dropped_packets++;
        link.stats.dropped_bytes += packet.size_bytes;
        metrics_cell().RecordDrop(packet, DropReason::kLinkFault);
        return;
      case PacketFate::kCorrupted:
        corrupted = true;
        break;
      case PacketFate::kCount_:
        break;
    }
  }

  if (link.queued_bytes + packet.size_bytes >
      link.params.buffer_bytes) {
    link.stats.dropped_packets++;
    link.stats.dropped_bytes += packet.size_bytes;
    metrics_cell().RecordDrop(packet, DropReason::kQueueFull);
    if (drop_observer_) drop_observer_(packet, link_id);
    return;
  }

  const SimDuration tx = TransmissionDelay(packet.size_bytes,
                                           link.params.rate);
  const SimTime start = std::max(now, link.busy_until);
  const SimTime finish = start + tx;
  link.busy_until = finish;
  link.queued_bytes += packet.size_bytes;
  link.stats.busy_time += tx;
  link.stats.forwarded_packets++;
  link.stats.forwarded_bytes += packet.size_bytes;
  link.stats.forwarded_bytes_by_class[static_cast<std::size_t>(
      packet.klass)] += packet.size_bytes;
  metrics_cell().RecordHop(packet);

  const SimTime arrive = finish + link.params.delay;
  const std::uint32_t size = packet.size_bytes;
  // Link state (queued_bytes) is owned by the sending side's shard; the
  // arrival executes on the receiving side's shard. For a cross-shard
  // link, delay >= epoch guarantees the arrival lands beyond the current
  // window and crosses cleanly at the barrier.
  engine_.shard(ShardOf(link.from)).Post(finish, [this, link_id, size] {
    links_[link_id].queued_bytes -= size;
  });
  if (corrupted) {
    // The frame used the wire but fails the receiver's CRC: account the
    // fault on the sending side (injector worlds are single-shard, so
    // this is the same shard) and drop at arrival time.
    link.stats.fault_corrupted_packets++;
    engine_.shard(ShardOf(link.to))
        .Post(arrive, [this, p = std::move(packet)]() mutable {
          metrics_cell().RecordDrop(p, DropReason::kLinkFault);
        });
    return;
  }
  engine_.shard(ShardOf(link.to))
      .Post(arrive, [this, link_id, p = std::move(packet)]() mutable {
        LinkArrive(link_id, std::move(p));
      });
}

void Network::LinkArrive(LinkId link_id, Packet packet) {
  const Link& link = links_[link_id];
  if (link.to.is_host) {
    HostRecord& record = hosts_[link.to.id];
    if (!record.endpoint->IsUp()) {
      metrics_cell().RecordDrop(packet, DropReason::kHostDown);
      return;
    }
    metrics_cell().RecordDelivery(packet);
    record.endpoint->HandlePacket(std::move(packet));
    return;
  }
  RouterReceive(link.to.id, link_id, std::move(packet));
}

void Network::RouterReceive(NodeId node_id, LinkId in_link, Packet packet) {
  Node& node = nodes_[node_id];
  const bool local_dest = AddressNode(packet.dst) == node_id;

  // TTL is spent on every router traversal except final local delivery by
  // the first-hop router of the source (hops==0 means we're at the edge).
  if (!local_dest) {
    if (packet.ttl == 0) {
      metrics_cell().RecordDrop(packet, DropReason::kTtlExpired);
      MaybeSendIcmpError(node_id, packet, IcmpType::kTimeExceeded);
      return;
    }
    packet.ttl--;
  }
  packet.hops++;

  RouterContext ctx;
  ctx.net = this;
  ctx.node = node_id;
  ctx.role = node.role;
  ctx.in_link = in_link;
  ctx.in_kind = in_link == kInvalidLink ? LinkKind::kPeer
                                        : links_[in_link].kind;
  ctx.now = Now();

  // The processor chain consumes batches; link serialisation delivers one
  // packet per arrival event, so the router's batch is a batch of one
  // (stack-allocated, inline storage — no per-packet allocation). Benches
  // and future bulk-arrival paths hand larger batches to the same API.
  PacketBatch batch;
  batch.Add(packet);
  for (PacketProcessor* processor : node.processors) {
    processor->ProcessBatch(batch, ctx);
    if (batch.alive_count() == 0) {
      node.filtered++;
      metrics_cell().RecordDrop(packet, DropReason::kFiltered);
      return;
    }
  }

  if (local_dest) {
    DeliverLocal(node_id, in_link, std::move(packet));
    return;
  }

  const NodeId dest_node = AddressNode(packet.dst);
  if (dest_node >= nodes_.size()) {
    metrics_cell().RecordDrop(packet, DropReason::kNoRoute);
    MaybeSendIcmpError(node_id, packet, IcmpType::kDestUnreachable);
    return;
  }
  const NodeId next = NextHop(node_id, dest_node);
  if (next == kInvalidNode) {
    metrics_cell().RecordDrop(packet, DropReason::kNoRoute);
    MaybeSendIcmpError(node_id, packet, IcmpType::kDestUnreachable);
    return;
  }
  // Find the out link toward `next`.
  for (const auto& [neighbour, link] : node.neighbours) {
    if (neighbour == next) {
      node.forwarded++;
      LinkSend(link, std::move(packet));
      return;
    }
  }
  metrics_cell().RecordDrop(packet, DropReason::kNoRoute);
}

void Network::DeliverLocal(NodeId node_id, LinkId /*in_link*/,
                           Packet packet) {
  const std::uint32_t slot = AddressSlot(packet.dst);
  const HostId host = HostAt(node_id, slot);
  if (host == kInvalidHost) {
    metrics_cell().RecordDrop(packet, DropReason::kNoHost);
    MaybeSendIcmpError(node_id, packet, IcmpType::kDestUnreachable);
    return;
  }
  LinkSend(hosts_[host].downlink, std::move(packet));
}

void Network::MaybeSendIcmpError(NodeId node_id, const Packet& cause,
                                 IcmpType type) {
  if (!icmp_errors_) return;
  // Never generate errors in response to ICMP errors (RFC 1122) — this is
  // also what prevents error loops in the simulation.
  if (cause.proto == Protocol::kIcmp &&
      (cause.icmp == IcmpType::kDestUnreachable ||
       cause.icmp == IcmpType::kTimeExceeded)) {
    return;
  }
  Node& node = nodes_[node_id];
  // Token bucket: 10 errors/s per router, burst 10.
  const SimTime now = Now();
  if (node.icmp_refill_at == 0) node.icmp_refill_at = now;
  const double refill =
      static_cast<double>(now - node.icmp_refill_at) / 1e9 * 10.0;
  node.icmp_tokens = std::min(10.0, node.icmp_tokens + refill);
  node.icmp_refill_at = now;
  if (node.icmp_tokens < 1.0) return;
  node.icmp_tokens -= 1.0;

  Packet error;
  error.src = RouterAddress(node_id);
  error.dst = cause.src;
  error.proto = Protocol::kIcmp;
  error.icmp = type;
  error.size_bytes = 56;  // ICMP error: header + leading bytes of cause
  error.ttl = 64;
  // An ICMP error elicited by attack traffic is reflected collateral; the
  // router itself is innocent (Sec. 2.2 lists routers as reflectors).
  error.klass = (cause.klass == TrafficClass::kAttack ||
                 cause.klass == TrafficClass::kReflected)
                    ? TrafficClass::kReflected
                    : cause.klass;
  error.true_origin = kInvalidHost;  // originated by infrastructure
  error.spoofed_src = false;
  error.in_reply_to = cause.serial;
  InjectAtNode(node_id, std::move(error));
}

}  // namespace adtc
