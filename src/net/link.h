// Unidirectional link model: fixed rate, propagation delay and a drop-tail
// byte buffer. Serialisation is modelled exactly (busy-until bookkeeping),
// so a flooded uplink exhibits queueing delay growth followed by loss —
// the congestion behaviour DDoS experiments depend on.
#pragma once

#include <array>
#include <cstdint>

#include "common/types.h"
#include "common/units.h"
#include "net/packet.h"

namespace adtc {

/// Business relationship of a link, viewed in its transmission direction.
/// The *receiving* router uses this to classify where a packet came from
/// (e.g. ingress filtering and the anti-spoof module act only on traffic
/// arriving from customer/access edges, never on transit traffic).
enum class LinkKind : std::uint8_t {
  kCustomerToProvider,  // stub/customer AS -> its provider
  kProviderToCustomer,  // provider -> customer AS
  kPeer,                // settlement-free peering between transit ASes
  kAccessUp,            // end host -> its first-hop router
  kAccessDown,          // first-hop router -> end host
};

std::string_view LinkKindName(LinkKind kind);

/// True for the two edge kinds on which traffic *enters* the Internet
/// (direct hosts, customer ASes). This classification feeds both the
/// anti-spoof rules and the datapath flow key: a flow's treatment may
/// legitimately differ by arrival-edge kind, so cached verdicts are
/// keyed on it.
inline constexpr bool IsCustomerEdgeKind(LinkKind kind) {
  return kind == LinkKind::kAccessUp || kind == LinkKind::kCustomerToProvider;
}

struct LinkParams {
  BitRate rate = MegabitsPerSecond(100);
  SimDuration delay = Milliseconds(5);
  /// Drop-tail buffer in bytes (content waiting for or in serialisation).
  std::int64_t buffer_bytes = 256 * 1024;
};

/// One endpoint of a link: a router node or an attached host.
struct LinkTarget {
  bool is_host = false;
  std::uint32_t id = kInvalidNode;  // NodeId or HostId depending on is_host

  static LinkTarget Node(NodeId node) { return {false, node}; }
  static LinkTarget Host(HostId host) { return {true, host}; }
};

struct LinkStats {
  std::uint64_t forwarded_packets = 0;
  std::uint64_t forwarded_bytes = 0;
  std::uint64_t dropped_packets = 0;
  std::uint64_t dropped_bytes = 0;
  /// Injected data-plane faults on this link (zero unless a FaultInjector
  /// with a link plan is attached; see docs/fault_injection.md). Written
  /// on the sending side's shard — fault injection is single-shard-only.
  std::uint64_t fault_lost_packets = 0;
  std::uint64_t fault_corrupted_packets = 0;
  std::uint64_t flap_dropped_packets = 0;
  /// Forwarded bytes split by ground-truth class (measurement only).
  std::array<std::uint64_t, 5> forwarded_bytes_by_class{};
  /// Total time the transmitter was serialising (utilisation numerator).
  SimDuration busy_time = 0;

  double Utilisation(SimDuration elapsed) const {
    return elapsed > 0 ? static_cast<double>(busy_time) /
                             static_cast<double>(elapsed)
                       : 0.0;
  }
};

/// Link state. Owned by Network; all behaviour lives in Network so the
/// hot path stays branch-light and free of virtual dispatch.
struct Link {
  LinkTarget from;
  LinkTarget to;
  LinkKind kind = LinkKind::kPeer;
  LinkParams params;

  SimTime busy_until = 0;   // when the transmitter frees up
  std::int64_t queued_bytes = 0;
  LinkStats stats;
};

}  // namespace adtc
