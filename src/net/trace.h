// In-memory packet trace recorder.
//
// Implements the paper's "new ways of collecting traffic statistics" and
// "distributed network debugging" observation capability (Sec. 4.4): a
// bounded ring of per-packet records captured at a vantage point, with
// simple aggregate queries. Used by the logging/statistics device modules
// and the network-debugging example.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "common/units.h"
#include "net/packet.h"

namespace adtc {

struct TraceRecord {
  SimTime at = 0;
  Ipv4Address src;
  Ipv4Address dst;
  Protocol proto = Protocol::kUdp;
  std::uint16_t dst_port = 0;
  std::uint32_t size_bytes = 0;
  std::uint8_t ttl = 0;
  std::uint8_t hops = 0;
};

class PacketTrace {
 public:
  explicit PacketTrace(std::size_t capacity = 65536);

  void Record(const Packet& packet, SimTime now);

  std::size_t size() const { return count_ < capacity_ ? count_ : capacity_; }
  std::uint64_t total_recorded() const { return count_; }

  /// Records in chronological order (oldest retained first).
  std::vector<TraceRecord> Snapshot() const;

  /// Aggregate counts per destination port among retained records.
  std::vector<std::pair<std::uint16_t, std::uint64_t>> TopPorts(
      std::size_t k) const;

  /// Aggregate byte counts per source address among retained records.
  std::vector<std::pair<Ipv4Address, std::uint64_t>> TopSources(
      std::size_t k) const;

  /// Observed packet rate over the retained window (packets/s); 0 if the
  /// window spans no time.
  double ObservedRate() const;

  void Clear();

  /// One-line-per-record textual dump (tcpdump-flavoured), newest last.
  std::string Dump(std::size_t max_lines = 50) const;

 private:
  std::size_t capacity_;
  std::uint64_t count_ = 0;
  std::vector<TraceRecord> ring_;
};

}  // namespace adtc
