// World-level measurement counters.
//
// All quantities are derived from ground-truth packet labels, so they are
// exact (no sampling). The experiment harness reads these after a run.
//
// Sharded worlds keep one Metrics cell block per shard (contention-free
// single-writer hot path; cells are obs::Counter so the time-series
// sampler may read them mid-window from the control shard) and aggregate
// with Merge — Network::metrics() returns the merged view.
#pragma once

#include <array>
#include <cstdint>

#include "common/stats.h"
#include "net/packet.h"
#include "obs/metrics_registry.h"

namespace adtc {

enum class DropReason : std::uint8_t {
  kQueueFull = 0,
  kTtlExpired,
  kFiltered,      // dropped by a PacketProcessor (mitigation/device)
  kNoRoute,
  kNoHost,
  kHostDown,
  kHostOverload,  // host delivered but refused for lack of resources
  kLinkFault,     // injected data-plane fault (loss/corruption/flap)
  kCount_,
};

std::string_view DropReasonName(DropReason reason);

inline constexpr std::size_t kTrafficClassCount = 5;
inline constexpr std::size_t kDropReasonCount =
    static_cast<std::size_t>(DropReason::kCount_);

struct Metrics {
  std::array<obs::Counter, kTrafficClassCount> packets_sent{};
  std::array<obs::Counter, kTrafficClassCount> packets_delivered{};
  std::array<obs::Counter, kTrafficClassCount> bytes_sent{};
  std::array<obs::Counter, kTrafficClassCount> bytes_delivered{};
  std::array<std::array<obs::Counter, kDropReasonCount>, kTrafficClassCount>
      packets_dropped{};

  /// bytes x links traversed by attack+reflected traffic: the "network
  /// resources wasted for transporting attack traffic around the globe"
  /// quantity of Sec. 6.
  obs::Counter attack_byte_hops;
  obs::Counter legit_byte_hops;

  /// Hop count already travelled when a filter dropped an attack packet
  /// (distance-from-source metric of experiment T2).
  SummaryStats attack_drop_hops;

  std::uint64_t sent(TrafficClass c) const {
    return packets_sent[static_cast<std::size_t>(c)];
  }
  std::uint64_t delivered(TrafficClass c) const {
    return packets_delivered[static_cast<std::size_t>(c)];
  }
  std::uint64_t dropped(TrafficClass c) const {
    std::uint64_t total = 0;
    for (const auto& v : packets_dropped[static_cast<std::size_t>(c)]) {
      total += v;
    }
    return total;
  }
  std::uint64_t dropped(TrafficClass c, DropReason r) const {
    return packets_dropped[static_cast<std::size_t>(c)]
                          [static_cast<std::size_t>(r)];
  }

  void RecordSend(const Packet& p) {
    packets_sent[static_cast<std::size_t>(p.klass)]++;
    bytes_sent[static_cast<std::size_t>(p.klass)] += p.size_bytes;
  }
  void RecordDelivery(const Packet& p) {
    packets_delivered[static_cast<std::size_t>(p.klass)]++;
    bytes_delivered[static_cast<std::size_t>(p.klass)] += p.size_bytes;
  }
  void RecordDrop(const Packet& p, DropReason reason) {
    packets_dropped[static_cast<std::size_t>(p.klass)]
                   [static_cast<std::size_t>(reason)]++;
    if (reason == DropReason::kFiltered &&
        (p.klass == TrafficClass::kAttack ||
         p.klass == TrafficClass::kReflected)) {
      attack_drop_hops.Add(static_cast<double>(p.hops));
    }
  }
  void RecordHop(const Packet& p) {
    if (p.klass == TrafficClass::kAttack ||
        p.klass == TrafficClass::kReflected) {
      attack_byte_hops += p.size_bytes;
    } else if (p.klass == TrafficClass::kLegitimate) {
      legit_byte_hops += p.size_bytes;
    }
  }

  /// Folds another shard's counter cells into this one. The cells are
  /// relaxed atomics, so this is safe even while `other`'s shard is
  /// mid-window — the mid-window readout may trail the hot path, but
  /// never tears. Skips `attack_drop_hops` (not atomically readable).
  void MergeCounters(const Metrics& other) {
    for (std::size_t c = 0; c < kTrafficClassCount; ++c) {
      packets_sent[c] += other.packets_sent[c];
      packets_delivered[c] += other.packets_delivered[c];
      bytes_sent[c] += other.bytes_sent[c];
      bytes_delivered[c] += other.bytes_delivered[c];
      for (std::size_t r = 0; r < kDropReasonCount; ++r) {
        packets_dropped[c][r] += other.packets_dropped[c][r];
      }
    }
    attack_byte_hops += other.attack_byte_hops;
    legit_byte_hops += other.legit_byte_hops;
  }

  /// Folds another shard's full cell block into this one, including the
  /// SummaryStats cell (end-of-run or barrier-time aggregation only;
  /// never called while `other`'s shard runs).
  void Merge(const Metrics& other) {
    MergeCounters(other);
    attack_drop_hops.Merge(other.attack_drop_hops);
  }
};

}  // namespace adtc
