// World-level measurement counters.
//
// All quantities are derived from ground-truth packet labels, so they are
// exact (no sampling). The experiment harness reads these after a run.
#pragma once

#include <array>
#include <cstdint>

#include "common/stats.h"
#include "net/packet.h"

namespace adtc {

enum class DropReason : std::uint8_t {
  kQueueFull = 0,
  kTtlExpired,
  kFiltered,      // dropped by a PacketProcessor (mitigation/device)
  kNoRoute,
  kNoHost,
  kHostDown,
  kHostOverload,  // host delivered but refused for lack of resources
  kCount_,
};

std::string_view DropReasonName(DropReason reason);

inline constexpr std::size_t kTrafficClassCount = 5;
inline constexpr std::size_t kDropReasonCount =
    static_cast<std::size_t>(DropReason::kCount_);

struct Metrics {
  std::array<std::uint64_t, kTrafficClassCount> packets_sent{};
  std::array<std::uint64_t, kTrafficClassCount> packets_delivered{};
  std::array<std::uint64_t, kTrafficClassCount> bytes_sent{};
  std::array<std::uint64_t, kTrafficClassCount> bytes_delivered{};
  std::array<std::array<std::uint64_t, kDropReasonCount>, kTrafficClassCount>
      packets_dropped{};

  /// bytes x links traversed by attack+reflected traffic: the "network
  /// resources wasted for transporting attack traffic around the globe"
  /// quantity of Sec. 6.
  std::uint64_t attack_byte_hops = 0;
  std::uint64_t legit_byte_hops = 0;

  /// Hop count already travelled when a filter dropped an attack packet
  /// (distance-from-source metric of experiment T2).
  SummaryStats attack_drop_hops;

  std::uint64_t sent(TrafficClass c) const {
    return packets_sent[static_cast<std::size_t>(c)];
  }
  std::uint64_t delivered(TrafficClass c) const {
    return packets_delivered[static_cast<std::size_t>(c)];
  }
  std::uint64_t dropped(TrafficClass c) const {
    std::uint64_t total = 0;
    for (auto v : packets_dropped[static_cast<std::size_t>(c)]) total += v;
    return total;
  }
  std::uint64_t dropped(TrafficClass c, DropReason r) const {
    return packets_dropped[static_cast<std::size_t>(c)]
                          [static_cast<std::size_t>(r)];
  }

  void RecordSend(const Packet& p) {
    packets_sent[static_cast<std::size_t>(p.klass)]++;
    bytes_sent[static_cast<std::size_t>(p.klass)] += p.size_bytes;
  }
  void RecordDelivery(const Packet& p) {
    packets_delivered[static_cast<std::size_t>(p.klass)]++;
    bytes_delivered[static_cast<std::size_t>(p.klass)] += p.size_bytes;
  }
  void RecordDrop(const Packet& p, DropReason reason) {
    packets_dropped[static_cast<std::size_t>(p.klass)]
                   [static_cast<std::size_t>(reason)]++;
    if (reason == DropReason::kFiltered &&
        (p.klass == TrafficClass::kAttack ||
         p.klass == TrafficClass::kReflected)) {
      attack_drop_hops.Add(static_cast<double>(p.hops));
    }
  }
  void RecordHop(const Packet& p) {
    if (p.klass == TrafficClass::kAttack ||
        p.klass == TrafficClass::kReflected) {
      attack_byte_hops += p.size_bytes;
    } else if (p.klass == TrafficClass::kLegitimate) {
      legit_byte_hops += p.size_bytes;
    }
  }
};

}  // namespace adtc
