// Router node state and the packet-processor extension point.
//
// A router is deliberately dumb (Sec. 5.2 of the paper: "legacy Internet
// router with basic filtering and redirection mechanisms"): TTL handling,
// FIB forwarding, and an ordered chain of PacketProcessors. The adaptive
// device, ingress filters, pushback rate limiters etc. all attach through
// the same PacketProcessor interface.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "common/units.h"
#include "net/link.h"
#include "net/packet.h"

namespace adtc {

class Network;

/// Autonomous-system role. Peripheral (stub) ASes host customers; transit
/// ASes carry third-party traffic — the distinction the paper's anti-spoof
/// module must be aware of (Sec. 4.2).
enum class NodeRole : std::uint8_t { kTransit, kStub };

/// What a processor decides about a packet.
enum class Verdict : std::uint8_t { kForward, kDrop };

/// Context handed to processors along with the packet.
struct RouterContext {
  Network* net = nullptr;
  NodeId node = kInvalidNode;
  NodeRole role = NodeRole::kStub;
  LinkId in_link = kInvalidLink;
  /// Kind of the link the packet arrived on; kAccessUp means it came from
  /// a directly attached host of this router's AS.
  LinkKind in_kind = LinkKind::kPeer;
  SimTime now = 0;
};

/// Inline packet-path extension. Implementations must be side-effect-safe:
/// mutating wire fields is allowed only within the constraints enforced by
/// the core safety validator (never src/dst/TTL for TCS modules).
class PacketProcessor {
 public:
  virtual ~PacketProcessor() = default;
  virtual Verdict Process(Packet& packet, const RouterContext& ctx) = 0;
  virtual std::string_view name() const = 0;
};

/// Router node. Owned by Network.
struct Node {
  NodeRole role = NodeRole::kStub;
  /// Outgoing links keyed by neighbour node (adjacency order = insertion
  /// order; BFS tie-breaking depends on it, keep deterministic).
  std::vector<std::pair<NodeId, LinkId>> neighbours;
  /// Inline processors, run in attach order on every transiting packet.
  std::vector<PacketProcessor*> processors;
  /// Hosts attached here, by address slot (slot-1 indexes this vector).
  std::vector<HostId> host_slots;
  /// Simple token bucket limiting ICMP error generation.
  double icmp_tokens = 10.0;
  SimTime icmp_refill_at = 0;

  std::uint64_t forwarded = 0;
  std::uint64_t filtered = 0;
};

}  // namespace adtc
